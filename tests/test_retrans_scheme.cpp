// The two retransmission-buffer placements of paper Fig. 5: a shared
// output pool (evaluated as the paper's worst case) vs dedicated per-VC
// slots. The key behavioural difference: a trojan-wedged flit exhausts the
// shared pool and blocks the whole port, while per-VC slots confine the
// damage to the victim's VC.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace htnoc {
namespace {

Flit make_flit(PacketId packet, int seq, int len, VcId vc) {
  Flit f;
  f.packet = packet;
  f.seq = seq;
  f.length = len;
  f.vc = vc;
  if (len == 1) {
    f.type = FlitType::kHeadTail;
  } else if (seq == 0) {
    f.type = FlitType::kHead;
  } else if (seq == len - 1) {
    f.type = FlitType::kTail;
  } else {
    f.type = FlitType::kBody;
  }
  return f;
}

TEST(RetransScheme, PerVcCapacityIsPerVc) {
  NocConfig cfg;
  cfg.retrans_scheme = RetransmissionScheme::kPerVcBuffer;
  cfg.retrans_per_vc_depth = 2;
  Link link("l", 1);
  OutputUnit out(cfg, "out");
  out.connect(&link);
  EXPECT_EQ(out.capacity(), 2 * cfg.vcs_per_port);

  out.allocate_vc(0);
  out.accept(0, make_flit(1, 0, 8, 0), 2);
  out.accept(1, make_flit(1, 1, 8, 0), 3);
  // VC 0 is now full...
  EXPECT_FALSE(out.can_accept(0, TdmDomain::kD1));
  // ...but VC 1 still has room.
  EXPECT_TRUE(out.can_accept(1, TdmDomain::kD1));
  out.allocate_vc(1);
  EXPECT_NO_THROW(out.accept(2, make_flit(2, 0, 1, 1), 4));
}

TEST(RetransScheme, OutputPoolSharedAcrossVcs) {
  NocConfig cfg;  // default kOutputBuffer, depth 4
  Link link("l", 1);
  OutputUnit out(cfg, "out");
  out.connect(&link);
  out.allocate_vc(0);
  for (int i = 0; i < 4; ++i) out.accept(i, make_flit(1, i, 8, 0), i + 2);
  // The shared pool is exhausted for every VC.
  for (int vc = 0; vc < cfg.vcs_per_port; ++vc) {
    EXPECT_FALSE(out.can_accept(vc, TdmDomain::kD1)) << vc;
  }
}

TEST(RetransScheme, AcceptBeyondPerVcQuotaIsContractViolation) {
  NocConfig cfg;
  cfg.retrans_scheme = RetransmissionScheme::kPerVcBuffer;
  cfg.retrans_per_vc_depth = 1;
  Link link("l", 1);
  OutputUnit out(cfg, "out");
  out.connect(&link);
  out.allocate_vc(2);
  out.accept(0, make_flit(1, 0, 8, 2), 2);
  EXPECT_THROW(out.accept(1, make_flit(1, 1, 8, 2), 3), ContractViolation);
}

struct BlastRadius {
  std::uint64_t throughput_after = 0;
  int blocked_routers = 0;
};

BlastRadius attack_blast_radius(RetransmissionScheme scheme) {
  sim::SimConfig sc;
  sc.noc.retrans_scheme = scheme;
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = 1000;
  sc.attacks.push_back(a);
  sc.mode = sim::MitigationMode::kNone;
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 3;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  std::uint64_t at_attack = 0;
  for (Cycle c = 0; c < 2500; ++c) {
    gen.step();
    simulator.step();
    if (c == 999) at_attack = gen.stats().packets_delivered;
  }
  BlastRadius out;
  out.throughput_after = gen.stats().packets_delivered - at_attack;
  out.blocked_routers = net.sample_utilization().routers_with_blocked_port;
  return out;
}

TEST(RetransScheme, OutputPoolIsTheWorstCaseUnderAttack) {
  // The paper evaluates the output-buffer placement as the worst case. At
  // chip level the collapse is comparable (the wedge owns the whole
  // request-VC class either way), but the per-VC placement must never be
  // *worse*, and it keeps the reply class's dedicated slots free at the
  // attacked port — the port-level containment the placement buys.
  const BlastRadius pool = attack_blast_radius(RetransmissionScheme::kOutputBuffer);
  const BlastRadius per_vc = attack_blast_radius(RetransmissionScheme::kPerVcBuffer);
  EXPECT_GE(per_vc.throughput_after, pool.throughput_after);
  EXPECT_GT(pool.blocked_routers, 0);
}

TEST(RetransScheme, PerVcKeepsReplySlotsFreeAtAttackedPort) {
  // Deterministic port-level view: wedge the attacked output with request-
  // class flits under both schemes and check whether a reply-class flit
  // could still enter its retransmission buffer.
  for (const auto scheme : {RetransmissionScheme::kOutputBuffer,
                            RetransmissionScheme::kPerVcBuffer}) {
    NocConfig cfg;
    cfg.retrans_scheme = scheme;
    Link link("l", 1);
    link.set_disabled(true);  // nothing ever leaves: emulate a full wedge
    OutputUnit out(cfg, "out");
    out.connect(&link);
    out.allocate_vc(0);
    out.allocate_vc(1);
    // Fill every request-class slot the scheme allows.
    int i = 0;
    while (out.can_accept(0, TdmDomain::kD1)) {
      out.accept(i, make_flit(1, i, 8, 0), i + 2);
      ++i;
    }
    while (out.can_accept(1, TdmDomain::kD1)) {
      out.accept(i, make_flit(2, i - 2, 8, 1), i + 2);
      ++i;
    }
    const bool reply_slot_free = out.can_accept(3, TdmDomain::kD1);
    if (scheme == RetransmissionScheme::kPerVcBuffer) {
      EXPECT_TRUE(reply_slot_free);
    } else {
      EXPECT_FALSE(reply_slot_free);  // shared pool fully consumed
    }
  }
}

TEST(RetransScheme, BothSchemesDeliverCleanTraffic) {
  for (const auto scheme : {RetransmissionScheme::kOutputBuffer,
                            RetransmissionScheme::kPerVcBuffer}) {
    NocConfig cfg;
    cfg.retrans_scheme = scheme;
    Network net(cfg);
    traffic::DeliveryDispatcher disp;
    disp.install(net);
    traffic::AppTrafficModel model(net.geometry(), traffic::fft_profile());
    traffic::TrafficGenerator::Params gp;
    gp.seed = 9;
    gp.total_requests = 200;
    traffic::TrafficGenerator gen(net, model, gp, disp);
    Cycle c = 0;
    while (!gen.done() && c < 100000) {
      gen.step();
      net.step();
      ++c;
    }
    EXPECT_TRUE(gen.done()) << to_string(scheme);
  }
}

TEST(RetransScheme, SchemeStringsRoundTrip) {
  EXPECT_EQ(to_string(RetransmissionScheme::kOutputBuffer), "output");
  EXPECT_EQ(to_string(RetransmissionScheme::kPerVcBuffer), "per_vc");
  EXPECT_EQ(retransmission_scheme_from_string("output"),
            RetransmissionScheme::kOutputBuffer);
  EXPECT_EQ(retransmission_scheme_from_string("per_vc"),
            RetransmissionScheme::kPerVcBuffer);
  EXPECT_THROW((void)retransmission_scheme_from_string("bogus"),
               ContractViolation);
}

}  // namespace
}  // namespace htnoc
