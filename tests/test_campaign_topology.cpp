// The fault campaign's scenario distribution is a stability contract: the
// nightly soak's (seed, index) -> scenario mapping must not drift when new
// scenario dimensions land, or historical repro specs stop replaying the
// failures they were filed against. The golden summary below was recorded
// before the topology dimension existed; a default-spec campaign (no
// topology axis configured) must reproduce it byte for byte.
//
// Regenerating (only after an *intended* distribution change, with review):
//   HTNOC_UPDATE_GOLDEN=1 ./build/tests/test_campaign_topology
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "verify/campaign.hpp"

namespace {

using namespace htnoc;

verify::CampaignSpec default_spec() {
  verify::CampaignSpec spec;
  spec.seed = 0x601D;
  spec.scenarios = 48;
  spec.threads = 2;
  return spec;
}

std::string golden_file() {
  return std::string(HTNOC_GOLDEN_DIR) + "/campaign_default_summary.txt";
}

TEST(CampaignTopologyDefault, SummaryByteIdenticalToPreTopologyGolden) {
  const verify::CampaignResult result =
      verify::FaultCampaign(default_spec()).run();
  ASSERT_EQ(result.failures(), 0u) << result.summary_text();
  const std::string summary = result.summary_text();

  if (std::getenv("HTNOC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream os(golden_file());
    ASSERT_TRUE(os) << "cannot write " << golden_file();
    os << summary;
    return;
  }

  std::ifstream is(golden_file());
  ASSERT_TRUE(is) << "missing golden file " << golden_file()
                  << " (regenerate with HTNOC_UPDATE_GOLDEN=1)";
  std::stringstream want;
  want << is.rdbuf();
  EXPECT_EQ(want.str(), summary)
      << "default campaign distribution drifted from the pre-topology record";
}

TEST(CampaignTopologyMixed, MeshAndTorusScenariosRunCleanUnderAudit) {
  // The opt-in path: scenarios drawing fabrics from all three families must
  // run failure-free with the invariant auditor armed, and the descriptors
  // must show the dimension actually varies.
  verify::CampaignSpec spec = default_spec();
  spec.scenarios = 24;
  spec.topologies = {TopologyKind::kConcentratedMesh, TopologyKind::kMesh,
                     TopologyKind::kTorus};
  const verify::CampaignResult result = verify::FaultCampaign(spec).run();
  EXPECT_EQ(result.failures(), 0u) << result.summary_text();

  std::set<std::string> topos;
  for (const verify::ScenarioResult& s : result.scenarios) {
    const auto end = s.descriptor.find(' ');
    topos.insert(s.descriptor.substr(0, end));
  }
  EXPECT_GE(topos.size(), 3u)
      << "expected cmesh/mesh/torus scenarios in 24 draws";
}

}  // namespace
