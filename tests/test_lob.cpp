#include "mitigation/lob.hpp"

#include <gtest/gtest.h>

namespace htnoc::mitigation {
namespace {

Flit make_flit(PacketId packet, RouterId src, RouterId dest) {
  Flit f;
  f.packet = packet;
  f.seq = 0;
  f.src_router = src;
  f.dest_router = dest;
  return f;
}

TEST(LOb, NeverObfuscatesUntroubledFlits) {
  LObController lob;
  const Flit f = make_flit(1, 0, 5);
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_FALSE(lob.plan(attempt, f, attempt, /*escalate=*/false,
                          /*partner_available=*/true)
                     .active());
  }
  EXPECT_EQ(lob.stats().obfuscated_attempts, 0u);
}

TEST(LOb, EscalationStartsTheSequence) {
  LObController lob;
  const Flit f = make_flit(1, 0, 5);
  const ObfuscationTag t = lob.plan(10, f, 2, true, true);
  ASSERT_TRUE(t.active());
  EXPECT_EQ(t.method, ObfMethod::kInvert);
  EXPECT_EQ(t.granularity, ObfGranularity::kHeader);
}

TEST(LOb, NackAdvancesToNextMethod) {
  LObController lob;
  const Flit f = make_flit(1, 0, 5);
  const ObfuscationTag t1 = lob.plan(10, f, 2, true, true);
  lob.on_nack(11, f, t1);
  const ObfuscationTag t2 = lob.plan(12, f, 3, true, true);
  EXPECT_TRUE(t2.active());
  EXPECT_FALSE(t1.method == t2.method && t1.granularity == t2.granularity);
}

TEST(LOb, WalksEntireSequenceOnRepeatedFailure) {
  LObParams params;
  LObController lob(params);
  const Flit f = make_flit(1, 0, 5);
  std::set<std::pair<ObfMethod, ObfGranularity>> seen;
  ObfuscationTag t;
  for (std::size_t i = 0; i < params.sequence.size(); ++i) {
    t = lob.plan(10 + i, f, static_cast<int>(i) + 2, true, true);
    seen.insert({t.method, t.granularity});
    lob.on_nack(11 + i, f, t);
  }
  EXPECT_EQ(seen.size(), params.sequence.size());
  // Exhaustion wraps around rather than giving up.
  const ObfuscationTag again = lob.plan(100, f, 10, true, true);
  EXPECT_TRUE(again.active());
  EXPECT_EQ(lob.stats().method_exhaustions, 1u);
}

TEST(LOb, ScrambleSkippedWithoutPartner) {
  LObParams params;
  params.sequence = {{ObfMethod::kScramble, ObfGranularity::kFlit},
                     {ObfMethod::kInvert, ObfGranularity::kFlit}};
  LObController lob(params);
  const Flit f = make_flit(1, 0, 5);
  const ObfuscationTag t = lob.plan(10, f, 2, true, /*partner_available=*/false);
  EXPECT_EQ(t.method, ObfMethod::kInvert);  // scramble unusable, skipped
  // After that attempt fails, the walk wraps and scramble is chosen once a
  // partner shows up.
  lob.on_nack(11, f, t);
  const ObfuscationTag t2 = lob.plan(12, f, 3, true, /*partner_available=*/true);
  EXPECT_EQ(t2.method, ObfMethod::kScramble);
}

TEST(LOb, ScrambleOnlySequenceFallsBackToPlain) {
  LObParams params;
  params.sequence = {{ObfMethod::kScramble, ObfGranularity::kFlit}};
  LObController lob(params);
  const Flit f = make_flit(1, 0, 5);
  EXPECT_FALSE(lob.plan(10, f, 2, true, false).active());
}

TEST(LOb, SuccessIsLoggedPerFlow) {
  LObController lob;
  const Flit f = make_flit(1, 2, 9);
  const ObfuscationTag t1 = lob.plan(10, f, 2, true, true);
  lob.on_nack(11, f, t1);
  const ObfuscationTag t2 = lob.plan(12, f, 3, true, true);
  lob.on_ack(13, f, t2);
  EXPECT_EQ(lob.stats().successes, 1u);
  EXPECT_GE(lob.logged_method(2, 9), 1);

  // A different flit of the same flow jumps straight to the logged method.
  const Flit g = make_flit(2, 2, 9);
  const ObfuscationTag t3 = lob.plan(20, g, 2, true, true);
  EXPECT_EQ(t3.method, t2.method);
  EXPECT_EQ(t3.granularity, t2.granularity);
  EXPECT_EQ(lob.stats().log_hits, 1u);
}

TEST(LOb, LogDisabledWhenConfiguredOff) {
  LObParams params;
  params.use_success_log = false;
  LObController lob(params);
  const Flit f = make_flit(1, 2, 9);
  const ObfuscationTag t = lob.plan(10, f, 2, true, true);
  lob.on_ack(11, f, t);
  EXPECT_EQ(lob.logged_method(2, 9), -1);
}

TEST(LOb, AckOfPlainAttemptIsNotASuccess) {
  LObController lob;
  const Flit f = make_flit(1, 0, 5);
  lob.on_ack(10, f, ObfuscationTag{});
  EXPECT_EQ(lob.stats().successes, 0u);
}

TEST(LOb, FlitStateClearedAfterAck) {
  LObController lob;
  const Flit f = make_flit(1, 0, 5);
  const ObfuscationTag t = lob.plan(10, f, 2, true, true);
  lob.on_ack(11, f, t);
  // Same flit uid again (hypothetical new epoch): starts from the log, not
  // from stale per-flit state.
  const ObfuscationTag t2 = lob.plan(20, f, 0, true, true);
  EXPECT_TRUE(t2.active());
}

TEST(LOb, DistinctFlowsLogIndependently) {
  LObParams params;
  LObController lob(params);
  const Flit f1 = make_flit(1, 0, 5);
  const Flit f2 = make_flit(2, 1, 6);
  const ObfuscationTag a = lob.plan(10, f1, 2, true, true);
  lob.on_ack(11, f1, a);
  EXPECT_GE(lob.logged_method(0, 5), 0);
  EXPECT_EQ(lob.logged_method(1, 6), -1);
  (void)f2;
}

TEST(LOb, RejectsEmptySequence) {
  LObParams params;
  params.sequence.clear();
  EXPECT_THROW(LObController{params}, ContractViolation);
}

}  // namespace
}  // namespace htnoc::mitigation
