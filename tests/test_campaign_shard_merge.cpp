// Sharded campaigns: a strided N-way split of a campaign, run as N
// independent CampaignSpec{shard_index, shard_count} processes, must merge
// back into byte-for-byte the summary the unsharded campaign prints —
// across any thread count, through the JSON shard-summary round-trip, and
// with failure dedup grouping repeats of one violation signature.
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "verify/campaign.hpp"
#include "verify/campaign_json.hpp"
#include "verify/shard_merge.hpp"

namespace htnoc {
namespace {

using verify::CampaignResult;
using verify::CampaignSpec;
using verify::FaultCampaign;
using verify::merge_shards;
using verify::MergedCampaign;
using verify::MergeError;
using verify::ShardFailure;
using verify::ShardSummary;

CampaignSpec base_spec(std::uint64_t scenarios) {
  CampaignSpec spec;
  spec.seed = 0x20260807;
  spec.scenarios = scenarios;
  spec.threads = 2;
  return spec;
}

std::vector<ShardSummary> run_sharded(const CampaignSpec& base,
                                      std::uint64_t shards) {
  std::vector<ShardSummary> out;
  for (std::uint64_t i = 0; i < shards; ++i) {
    CampaignSpec s = base;
    s.shard_index = i;
    s.shard_count = shards;
    // The JSON round-trip is part of the path under test: shards travel
    // between CI jobs as documents, not in-process structs.
    out.push_back(verify::parse_shard_summary(json::to_string(
        verify::shard_summary_to_json(
            verify::summarize_shard(FaultCampaign(s).run())))));
  }
  return out;
}

TEST(CampaignShardMerge, FourShardMergeMatchesUnshardedBytes) {
  // 30 scenarios: not divisible by 4, so shard sizes differ (8,8,7,7) and
  // the remainder arithmetic is exercised too.
  const CampaignSpec base = base_spec(30);
  const CampaignResult whole = FaultCampaign(base).run();
  const MergedCampaign merged = merge_shards(run_sharded(base, 4));
  EXPECT_EQ(merged.summary_text(), whole.summary_text());
}

TEST(CampaignShardMerge, ShardCountIsAFreeParameter) {
  const CampaignSpec base = base_spec(13);
  const std::string whole = FaultCampaign(base).run().summary_text();
  for (const std::uint64_t shards : {2u, 3u, 5u, 13u}) {
    EXPECT_EQ(merge_shards(run_sharded(base, shards)).summary_text(), whole)
        << shards << " shards";
  }
}

TEST(CampaignShardMerge, ShardSummaryTextCarriesTheShardToken) {
  CampaignSpec s = base_spec(9);
  s.shard_index = 2;
  s.shard_count = 4;
  const CampaignResult r = FaultCampaign(s).run();
  EXPECT_NE(r.summary_text().find(" shard=2/4\n"), std::string::npos)
      << r.summary_text();
  EXPECT_EQ(r.scenarios.size(), 2u);  // 9 = 3+2+2+2 over shards 0..3
  for (const verify::ScenarioResult& sc : r.scenarios) {
    EXPECT_EQ(sc.index % 4, 2u);  // strided partition, global indices
  }
}

TEST(CampaignShardMerge, ShardSpecJsonRoundTrips) {
  const char* doc = R"({
    "seed": "0xBEEF",
    "scenarios": 100,
    "shard_index": 3,
    "shard_count": 8,
    "warmup_cycles": 500
  })";
  const CampaignSpec spec = verify::parse_campaign_spec(doc);
  EXPECT_EQ(spec.shard_index, 3u);
  EXPECT_EQ(spec.shard_count, 8u);
  EXPECT_EQ(spec.warmup_cycles, 500u);

  const std::string canon =
      json::to_string(verify::campaign_spec_to_json(spec));
  const CampaignSpec back = verify::parse_campaign_spec(canon);
  EXPECT_EQ(back.shard_index, spec.shard_index);
  EXPECT_EQ(back.shard_count, spec.shard_count);
  EXPECT_EQ(back.warmup_cycles, spec.warmup_cycles);
  EXPECT_EQ(json::to_string(verify::campaign_spec_to_json(back)), canon);

  EXPECT_THROW(
      (void)verify::parse_campaign_spec(R"({"shard_index": 1})"),
      std::exception);
  EXPECT_THROW(
      (void)verify::parse_campaign_spec(
          R"({"shard_index": 4, "shard_count": 4})"),
      std::exception);
  EXPECT_THROW((void)verify::parse_campaign_spec(R"({"shard_count": 0})"),
               std::exception);
}

TEST(CampaignShardMerge, ReproSpecCarriesWarmupCycles) {
  // A warmed scenario draws from a restricted space, so replaying it from
  // seed+index alone would rebuild the wrong scenario: the repro line must
  // carry warmup_cycles, and cold campaigns must keep their old bytes.
  const std::string cold = verify::format_repro({0xBEEF, 12});
  EXPECT_EQ(cold, "htnoc-campaign-repro seed=0xbeef index=12");
  const std::string warm = verify::format_repro({0xBEEF, 12, 500});
  EXPECT_EQ(warm, "htnoc-campaign-repro seed=0xbeef index=12 warmup=500");

  const auto parsed = verify::parse_repro(warm);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seed, 0xBEEFu);
  EXPECT_EQ(parsed->index, 12u);
  EXPECT_EQ(parsed->warmup, 500u);
  EXPECT_EQ(verify::parse_repro(cold)->warmup, 0u);

  CampaignSpec spec = base_spec(4);
  spec.warmup_cycles = 150;
  const std::string text = FaultCampaign(spec).run().summary_text();
  // Clean campaigns print no FAIL lines, but the merged/unsharded byte
  // contract covers failing ones too: both emitters thread warmup_cycles
  // into every format_repro call (exercised via the signature table below).
  EXPECT_EQ(text.find("warmup="), std::string::npos) << text;
}

TEST(CampaignShardMerge, DedupReportCarriesWarmupInRepro) {
  MergedCampaign m;
  m.seed = 0x5EED;
  m.scenarios = 10;
  m.warmup_cycles = 250;
  ShardFailure f;
  f.index = 3;
  f.descriptor = "warmup=250 mode=lob";
  f.error = "invariant audit failed:";
  f.violation = "KIND=lost packet=7";
  m.failures.push_back(f);
  EXPECT_NE(m.summary_text().find(
                "FAIL htnoc-campaign-repro seed=0x5eed index=3 warmup=250 "),
            std::string::npos)
      << m.summary_text();
  EXPECT_NE(m.summary_markdown().find("index=3 warmup=250"),
            std::string::npos)
      << m.summary_markdown();
}

TEST(CampaignShardMerge, MergeRejectsIncoherentShardSets) {
  const CampaignSpec base = base_spec(8);
  std::vector<ShardSummary> shards = run_sharded(base, 2);

  {
    std::vector<ShardSummary> missing = {shards[0]};
    EXPECT_THROW((void)merge_shards(missing), MergeError);
  }
  {
    std::vector<ShardSummary> dup = {shards[0], shards[0]};
    EXPECT_THROW((void)merge_shards(dup), MergeError);
  }
  {
    std::vector<ShardSummary> mixed = shards;
    mixed[1].seed ^= 1;
    EXPECT_THROW((void)merge_shards(mixed), MergeError);
  }
  {
    std::vector<ShardSummary> mixed_warmup = shards;
    mixed_warmup[1].warmup_cycles = 500;
    EXPECT_THROW((void)merge_shards(mixed_warmup), MergeError);
  }
  {
    std::vector<ShardSummary> cancelled = shards;
    cancelled[1].cancelled = true;
    EXPECT_THROW((void)merge_shards(cancelled), MergeError);
  }
  {
    std::vector<ShardSummary> partial = shards;
    partial[1].scenarios_run -= 1;
    EXPECT_THROW((void)merge_shards(partial), MergeError);
  }
  // Order independence: shards arrive in any order and still merge.
  std::vector<ShardSummary> reversed = {shards[1], shards[0]};
  EXPECT_EQ(merge_shards(reversed).summary_text(),
            merge_shards(shards).summary_text());
}

TEST(CampaignShardMerge, ViolationSignatureCollapsesDigits) {
  ShardFailure a;
  a.violation = "KIND=lost uid=41 packet=903 at cycle 1204";
  ShardFailure b;
  b.violation = "KIND=lost uid=7 packet=12 at cycle 88";
  ShardFailure c;
  c.violation = "KIND=duplicate uid=41 packet=903 at cycle 1204";
  EXPECT_EQ(verify::violation_signature(a), verify::violation_signature(b));
  EXPECT_NE(verify::violation_signature(a), verify::violation_signature(c));
  EXPECT_EQ(verify::violation_signature(a),
            "KIND=lost uid=# packet=# at cycle #");

  ShardFailure no_violation;
  no_violation.error = "exception: scenario 12 exploded";
  EXPECT_EQ(verify::violation_signature(no_violation),
            "exception: scenario # exploded");
}

TEST(CampaignShardMerge, DedupReportGroupsBySignature) {
  MergedCampaign m;
  m.seed = 0x5EED;
  m.scenarios = 100;
  for (const std::uint64_t idx : {7u, 21u, 50u}) {
    ShardFailure f;
    f.index = idx;
    f.descriptor = "desc-" + std::to_string(idx);
    f.error = "invariant audit failed:";
    f.violation = "KIND=lost packet=" + std::to_string(idx * 13);
    m.failures.push_back(f);
  }
  ShardFailure other;
  other.index = 33;
  other.descriptor = "desc-33";
  other.error = "invariant audit failed:";
  other.violation = "KIND=stuck packet=9";
  m.failures.push_back(other);

  const std::string md = m.summary_markdown();
  // Two signature groups: the lost-packet trio (lowest index 7 as the
  // representative) and the stuck singleton.
  EXPECT_NE(md.find("| 3 | KIND=lost packet=# |"), std::string::npos) << md;
  EXPECT_NE(md.find("index=7"), std::string::npos) << md;
  EXPECT_EQ(md.find("index=21"), std::string::npos) << md;
  EXPECT_NE(md.find("| 1 | KIND=stuck packet=# |"), std::string::npos) << md;
}

TEST(CampaignShardMerge, ShardedWarmupCampaignMergesToUnshardedBytes) {
  // Sharding composes with snapshot-forking warmup: every shard rebuilds
  // the same warmup blob (pure function of the seed) and the merged
  // verdict still equals the single-process run.
  CampaignSpec base = base_spec(10);
  base.warmup_cycles = 150;
  const std::string whole = FaultCampaign(base).run().summary_text();
  EXPECT_EQ(merge_shards(run_sharded(base, 4)).summary_text(), whole);
}

}  // namespace
}  // namespace htnoc
