// The parallel-step contract (Network::step, docs/SCALING.md): for any
// step_threads value, a run's network state evolution, captured traces, and
// campaign summaries are byte-identical to the serial schedule. These tests
// hash the full resident-flit census every cycle — not just end-of-run
// counters — so a single divergently-ordered flit anywhere in the fabric
// fails the run at the cycle it appears. The contract is fabric-agnostic,
// so the state-evolution tests run on the paper's 4x4 concentrated mesh,
// a plain 8x8 mesh and an 8x8 torus, plus a 64x64 mesh for the sharded
// large-fabric regime.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "sweep/runner.hpp"
#include "trace/export.hpp"
#include "traffic/app_profile.hpp"
#include "traffic/generator.hpp"
#include "verify/campaign.hpp"
#include "verify/census_digest.hpp"

namespace {

using namespace htnoc;

struct Fabric {
  const char* label;
  TopologyKind kind;
  int width = 4;
  int height = 4;
  int concentration = 1;
};

constexpr Fabric kFabrics[] = {
    {"cmesh4x4", TopologyKind::kConcentratedMesh, 4, 4, 4},
    {"mesh8x8", TopologyKind::kMesh, 8, 8, 1},
    {"torus8x8", TopologyKind::kTorus, 8, 8, 1},
};

void apply(const Fabric& f, NocConfig& noc) {
  noc.topology = f.kind;
  noc.mesh_width = f.width;
  noc.mesh_height = f.height;
  noc.concentration = f.concentration;
}

struct RunDigest {
  std::vector<std::uint64_t> per_cycle;  ///< state_digest after every cycle.
  Network::StepStats steps;
  std::uint64_t delivered = 0;
};

/// Drive an attacked (or idle) fabric for `cycles` under a fixed seed and
/// record the state digest after every single step() call.
RunDigest run_fabric(const Fabric& f, int step_threads, bool attacked,
                     Cycle cycles) {
  sim::SimConfig sc;
  apply(f, sc.noc);
  sc.noc.step_threads = step_threads;
  sc.noc.seed = 0xBEEF;
  sc.seed = 0xF00D;
  sc.mode = sim::MitigationMode::kLOb;
  if (attacked) {
    sim::AttackSpec atk;
    atk.link = {5, Direction::kEast};  // router 5 has an East link everywhere
    atk.tasp.kind = trojan::TargetKind::kDest;
    atk.tasp.target_dest = 0;
    atk.enable_killsw_at = 150;
    sc.attacks.push_back(atk);
  }
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();

  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppProfile profile = traffic::profile_by_name("facesim");
  traffic::AppTrafficModel model(net.geometry(), profile);
  traffic::TrafficGenerator::Params gp;
  gp.seed = 0x5EED;
  traffic::TrafficGenerator gen(net, model, gp, disp);

  RunDigest out;
  out.per_cycle.reserve(cycles);
  for (Cycle c = 0; c < cycles; ++c) {
    if (attacked) gen.step();
    simulator.step();
    out.per_cycle.push_back(verify::state_digest(net));
  }
  out.steps = net.step_stats();
  out.delivered = net.packets_delivered();
  return out;
}

void expect_same_evolution(const RunDigest& a, const RunDigest& b,
                           const char* label) {
  ASSERT_EQ(a.per_cycle.size(), b.per_cycle.size()) << label;
  for (std::size_t c = 0; c < a.per_cycle.size(); ++c) {
    ASSERT_EQ(a.per_cycle[c], b.per_cycle[c])
        << label << ": first divergence at cycle " << c;
  }
  EXPECT_EQ(a.delivered, b.delivered) << label;
  EXPECT_EQ(a.steps.router_steps, b.steps.router_steps) << label;
  EXPECT_EQ(a.steps.router_skips, b.steps.router_skips) << label;
  EXPECT_EQ(a.steps.ni_steps, b.steps.ni_steps) << label;
  EXPECT_EQ(a.steps.ni_skips, b.steps.ni_skips) << label;
}

class ParallelStepFabrics : public ::testing::TestWithParam<Fabric> {};

TEST_P(ParallelStepFabrics, AttackedStateEvolutionIsThreadInvariant) {
  const Fabric& f = GetParam();
  const RunDigest serial = run_fabric(f, 1, /*attacked=*/true, 600);
  const RunDigest two = run_fabric(f, 2, /*attacked=*/true, 600);
  const RunDigest eight = run_fabric(f, 8, /*attacked=*/true, 600);
  EXPECT_GT(serial.delivered, 0u);  // the fixture must actually move traffic
  expect_same_evolution(serial, two, "1 vs 2 threads");
  expect_same_evolution(serial, eight, "1 vs 8 threads");
}

TEST_P(ParallelStepFabrics, IdleStateEvolutionIsThreadInvariant) {
  // No traffic at all: the active-set fast path must agree with the serial
  // schedule on which units it skips, every cycle.
  const Fabric& f = GetParam();
  const RunDigest serial = run_fabric(f, 1, /*attacked=*/false, 300);
  const RunDigest eight = run_fabric(f, 8, /*attacked=*/false, 300);
  expect_same_evolution(serial, eight, "idle, 1 vs 8 threads");
}

INSTANTIATE_TEST_SUITE_P(Fabrics, ParallelStepFabrics,
                         ::testing::ValuesIn(kFabrics),
                         [](const auto& info) {
                           return std::string(info.param.label);
                         });

TEST(ParallelStepDeterminism, MoreThreadsThanRoutersClampsSafely) {
  const Fabric& f = kFabrics[0];  // 16 routers, 64 requested threads
  const RunDigest serial = run_fabric(f, 1, /*attacked=*/true, 200);
  const RunDigest wide = run_fabric(f, 64, /*attacked=*/true, 200);
  expect_same_evolution(serial, wide, "1 vs 64 threads (16 routers)");
}

/// The large-fabric regime the topology layer exists for: a 64x64 mesh
/// (4096 routers) stepped under worker sharding, with the invariant auditor
/// armed, must evolve bit-identically to the serial schedule and audit
/// clean. Traffic is injected by hand: AppTrafficModel's sampling tables
/// are quadratic in cores (134 MB here), overkill for a stepping test.
TEST(ParallelStepDeterminism, Mesh64x64ShardedStepMatchesSerialAndAuditsClean) {
  auto run = [](int step_threads) {
    sim::SimConfig sc;
    sc.noc.topology = TopologyKind::kMesh;
    sc.noc.mesh_width = 64;
    sc.noc.mesh_height = 64;
    sc.noc.concentration = 1;
    sc.noc.step_threads = step_threads;
    sc.noc.seed = 0xBEEF;
    sc.seed = 0xF00D;
    sc.audit.enabled = true;
    sc.audit.period = 64;
    sim::Simulator simulator(std::move(sc));
    Network& net = simulator.network();
    const int cores = net.geometry().num_cores();

    Rng rng(0x5EED);
    RunDigest out;
    for (Cycle c = 0; c < 240; ++c) {
      if (c < 80) {
        for (int k = 0; k < 32; ++k) {
          PacketInfo info;
          info.id = net.next_packet_id();
          info.src_core = static_cast<NodeId>(
              rng.next_below(static_cast<std::uint64_t>(cores)));
          info.dest_core = static_cast<NodeId>(
              rng.next_below(static_cast<std::uint64_t>(cores)));
          info.src_router = net.geometry().router_of_core(info.src_core);
          info.dest_router = net.geometry().router_of_core(info.dest_core);
          info.length = static_cast<int>(rng.next_in(1, 4));
          info.inject_cycle = net.now();
          const std::vector<std::uint64_t> payload(
              static_cast<std::size_t>(info.length), 0xDA7Aull);
          (void)net.try_inject(info, payload);
        }
      }
      simulator.step();
      out.per_cycle.push_back(verify::state_digest(net));
    }
    out.steps = net.step_stats();
    out.delivered = net.packets_delivered();
    EXPECT_TRUE(simulator.auditor()->clean())
        << simulator.auditor()->report();
    return out;
  };
  const RunDigest serial = run(1);
  const RunDigest sharded = run(8);
  EXPECT_GT(serial.delivered, 0u);
  expect_same_evolution(serial, sharded, "64x64 mesh, 1 vs 8 threads");
}

sweep::SweepSpec traced_spec(int step_threads) {
  sim::AttackSpec atk;
  atk.link = {4, Direction::kNorth};
  atk.tasp.kind = trojan::TargetKind::kDest;
  atk.tasp.target_dest = 0;
  atk.enable_killsw_at = 150;

  sweep::SweepSpec spec;
  spec.modes = {sim::MitigationMode::kNone, sim::MitigationMode::kLOb};
  spec.attack_scenarios = {{"none", {}}, {"single", {atk}}};
  spec.replicates = 2;
  spec.run_cycles = 400;
  spec.probe_period = 100;
  spec.base_seed = 0xD15EA5E;
  spec.base.noc.step_threads = step_threads;
  spec.base.trace.enabled = true;
  spec.base.trace.capacity = std::size_t{1} << 12;  // force ring wraparound
  return spec;
}

TEST(ParallelStepDeterminism, TraceStreamsAreByteIdentical) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "built with HTNOC_TRACE=0";
  // Both parallelism layers at once: sweep workers x step threads.
  const sweep::SweepResult serial = sweep::SweepRunner({2}).run(traced_spec(1));
  const sweep::SweepResult par = sweep::SweepRunner({2}).run(traced_spec(8));
  ASSERT_EQ(serial.failures(), 0u);
  ASSERT_EQ(par.failures(), 0u);
  ASSERT_EQ(serial.runs.size(), par.runs.size());
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    ASSERT_TRUE(serial.runs[i].trace && par.runs[i].trace) << "run " << i;
    EXPECT_EQ(trace::serialize_binary(*serial.runs[i].trace),
              trace::serialize_binary(*par.runs[i].trace))
        << "run " << i;
    EXPECT_EQ(serial.runs[i].metrics(), par.runs[i].metrics()) << "run " << i;
  }
}

TEST(ParallelStepDeterminism, CampaignSummariesAreByteIdentical) {
  // Campaign-strength equivalence: randomized adversarial scenarios (trojan
  // implants, kill-switch toggles, purge storms, fault injection) with the
  // invariant auditor armed, serial vs 8-way-stepped.
  verify::CampaignSpec spec;
  spec.seed = 0xA5A5;
  spec.scenarios = 24;
  spec.threads = 2;
  const std::string report = verify::FaultCampaign::equivalence_report(spec, 8);
  EXPECT_EQ(report, "") << report;
}

}  // namespace
