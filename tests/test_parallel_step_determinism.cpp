// The parallel-step contract (Network::step, docs/SCALING.md): for any
// step_threads value, a run's network state evolution, captured traces, and
// campaign summaries are byte-identical to the serial schedule. These tests
// hash the full resident-flit census every cycle — not just end-of-run
// counters — so a single divergently-ordered flit anywhere in the fabric
// fails the run at the cycle it appears.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sweep/runner.hpp"
#include "trace/export.hpp"
#include "traffic/app_profile.hpp"
#include "traffic/generator.hpp"
#include "verify/campaign.hpp"

namespace {

using namespace htnoc;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Order-sensitive digest of everything observable about the network: the
/// deterministic census walk (every resident flit's uid/packet/site/node/
/// port in walk order), the utilization probe, delivery and purge totals,
/// and the id allocator position.
std::uint64_t state_digest(const Network& net) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  std::vector<ResidentFlit> census;
  net.collect_resident(census);
  for (const ResidentFlit& f : census) {
    h = fnv1a(h, f.uid);
    h = fnv1a(h, f.packet);
    h = fnv1a(h, static_cast<std::uint64_t>(f.site));
    h = fnv1a(h, f.node);
    h = fnv1a(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(f.port)));
  }
  const Network::UtilizationSample u = net.sample_utilization();
  for (const int v : {u.input_port_flits, u.output_port_flits,
                      u.injection_port_flits, u.routers_all_cores_full,
                      u.routers_majority_cores_full,
                      u.routers_with_blocked_port}) {
    h = fnv1a(h, static_cast<std::uint64_t>(v));
  }
  h = fnv1a(h, net.packets_delivered());
  h = fnv1a(h, net.purge_totals().packets);
  h = fnv1a(h, net.purge_totals().flits);
  h = fnv1a(h, net.peek_next_packet_id());
  return h;
}

struct RunDigest {
  std::vector<std::uint64_t> per_cycle;  ///< state_digest after every cycle.
  Network::StepStats steps;
  std::uint64_t delivered = 0;
};

/// Drive an attacked (or idle) 4x4 mesh for `cycles` under a fixed seed and
/// record the state digest after every single step() call.
RunDigest run_mesh(int step_threads, bool attacked, Cycle cycles) {
  sim::SimConfig sc;
  sc.noc.step_threads = step_threads;
  sc.noc.seed = 0xBEEF;
  sc.seed = 0xF00D;
  sc.mode = sim::MitigationMode::kLOb;
  if (attacked) {
    sim::AttackSpec atk;
    atk.link = {5, Direction::kEast};
    atk.tasp.kind = trojan::TargetKind::kDest;
    atk.tasp.target_dest = 0;
    atk.enable_killsw_at = 150;
    sc.attacks.push_back(atk);
  }
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();

  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppProfile profile = traffic::profile_by_name("facesim");
  traffic::AppTrafficModel model(net.geometry(), profile);
  traffic::TrafficGenerator::Params gp;
  gp.seed = 0x5EED;
  traffic::TrafficGenerator gen(net, model, gp, disp);

  RunDigest out;
  out.per_cycle.reserve(cycles);
  for (Cycle c = 0; c < cycles; ++c) {
    if (attacked) gen.step();
    simulator.step();
    out.per_cycle.push_back(state_digest(net));
  }
  out.steps = net.step_stats();
  out.delivered = net.packets_delivered();
  return out;
}

void expect_same_evolution(const RunDigest& a, const RunDigest& b,
                           const char* label) {
  ASSERT_EQ(a.per_cycle.size(), b.per_cycle.size()) << label;
  for (std::size_t c = 0; c < a.per_cycle.size(); ++c) {
    ASSERT_EQ(a.per_cycle[c], b.per_cycle[c])
        << label << ": first divergence at cycle " << c;
  }
  EXPECT_EQ(a.delivered, b.delivered) << label;
  EXPECT_EQ(a.steps.router_steps, b.steps.router_steps) << label;
  EXPECT_EQ(a.steps.router_skips, b.steps.router_skips) << label;
  EXPECT_EQ(a.steps.ni_steps, b.steps.ni_steps) << label;
  EXPECT_EQ(a.steps.ni_skips, b.steps.ni_skips) << label;
}

TEST(ParallelStepDeterminism, AttackedMeshStateEvolutionIsThreadInvariant) {
  const RunDigest serial = run_mesh(1, /*attacked=*/true, 600);
  const RunDigest two = run_mesh(2, /*attacked=*/true, 600);
  const RunDigest eight = run_mesh(8, /*attacked=*/true, 600);
  EXPECT_GT(serial.delivered, 0u);  // the fixture must actually move traffic
  expect_same_evolution(serial, two, "1 vs 2 threads");
  expect_same_evolution(serial, eight, "1 vs 8 threads");
}

TEST(ParallelStepDeterminism, IdleMeshStateEvolutionIsThreadInvariant) {
  // No traffic at all: the active-set fast path must agree with the serial
  // schedule on which units it skips, every cycle.
  const RunDigest serial = run_mesh(1, /*attacked=*/false, 300);
  const RunDigest eight = run_mesh(8, /*attacked=*/false, 300);
  expect_same_evolution(serial, eight, "idle, 1 vs 8 threads");
}

TEST(ParallelStepDeterminism, MoreThreadsThanRoutersClampsSafely) {
  const RunDigest serial = run_mesh(1, /*attacked=*/true, 200);
  const RunDigest wide = run_mesh(64, /*attacked=*/true, 200);
  expect_same_evolution(serial, wide, "1 vs 64 threads (16 routers)");
}

sweep::SweepSpec traced_spec(int step_threads) {
  sim::AttackSpec atk;
  atk.link = {4, Direction::kNorth};
  atk.tasp.kind = trojan::TargetKind::kDest;
  atk.tasp.target_dest = 0;
  atk.enable_killsw_at = 150;

  sweep::SweepSpec spec;
  spec.modes = {sim::MitigationMode::kNone, sim::MitigationMode::kLOb};
  spec.attack_scenarios = {{"none", {}}, {"single", {atk}}};
  spec.replicates = 2;
  spec.run_cycles = 400;
  spec.probe_period = 100;
  spec.base_seed = 0xD15EA5E;
  spec.base.noc.step_threads = step_threads;
  spec.base.trace.enabled = true;
  spec.base.trace.capacity = std::size_t{1} << 12;  // force ring wraparound
  return spec;
}

TEST(ParallelStepDeterminism, TraceStreamsAreByteIdentical) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "built with HTNOC_TRACE=0";
  // Both parallelism layers at once: sweep workers x step threads.
  const sweep::SweepResult serial = sweep::SweepRunner({2}).run(traced_spec(1));
  const sweep::SweepResult par = sweep::SweepRunner({2}).run(traced_spec(8));
  ASSERT_EQ(serial.failures(), 0u);
  ASSERT_EQ(par.failures(), 0u);
  ASSERT_EQ(serial.runs.size(), par.runs.size());
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    ASSERT_TRUE(serial.runs[i].trace && par.runs[i].trace) << "run " << i;
    EXPECT_EQ(trace::serialize_binary(*serial.runs[i].trace),
              trace::serialize_binary(*par.runs[i].trace))
        << "run " << i;
    EXPECT_EQ(serial.runs[i].metrics(), par.runs[i].metrics()) << "run " << i;
  }
}

TEST(ParallelStepDeterminism, CampaignSummariesAreByteIdentical) {
  // Campaign-strength equivalence: randomized adversarial scenarios (trojan
  // implants, kill-switch toggles, purge storms, fault injection) with the
  // invariant auditor armed, serial vs 8-way-stepped.
  verify::CampaignSpec spec;
  spec.seed = 0xA5A5;
  spec.scenarios = 24;
  spec.threads = 2;
  const std::string report = verify::FaultCampaign::equivalence_report(spec, 8);
  EXPECT_EQ(report, "") << report;
}

}  // namespace
