// Network-wide packet purge (link-disable recovery): credits, VC
// allocations and buffers must all return to a consistent state, and the
// network must keep working afterwards.
#include <gtest/gtest.h>

#include "noc/network.hpp"

namespace htnoc {
namespace {

class PurgeTest : public ::testing::Test {
 protected:
  NocConfig cfg;
  Network net{cfg};

  PacketInfo make_packet(NodeId src, NodeId dest, int len) {
    PacketInfo info;
    info.id = net.next_packet_id();
    info.src_core = src;
    info.dest_core = dest;
    info.src_router = net.geometry().router_of_core(src);
    info.dest_router = net.geometry().router_of_core(dest);
    info.length = len;
    return info;
  }
};

TEST_F(PurgeTest, MidFlightPurgeLeavesNetworkQuiescent) {
  const PacketInfo info = make_packet(0, 63, 5);
  ASSERT_TRUE(net.try_inject(info, std::vector<std::uint64_t>(4, 7)));
  net.run(12);  // spread the wormhole across several routers
  ASSERT_TRUE(net.packet_in_flight(info.id));

  const auto purged = net.purge_packet(info.id);
  EXPECT_EQ(purged.size(), 1u);
  EXPECT_FALSE(net.packet_in_flight(info.id));
  net.run(20);  // let in-flight credits land
  EXPECT_TRUE(net.quiescent());
}

TEST_F(PurgeTest, PurgeAtEveryAgeLeavesConsistentState) {
  // Property sweep: purge the packet after k cycles for many k; afterwards
  // a fresh packet over the same path must still deliver (credits and VC
  // allocations were restored).
  for (int age = 1; age < 40; age += 2) {
    Network n{cfg};
    PacketInfo info;
    info.id = n.next_packet_id();
    info.src_core = 0;
    info.dest_core = 63;
    info.src_router = 0;
    info.dest_router = 15;
    info.length = 4;
    ASSERT_TRUE(n.try_inject(info, std::vector<std::uint64_t>(3, 1)));
    n.run(static_cast<Cycle>(age));
    (void)n.purge_packet(info.id);
    EXPECT_FALSE(n.packet_in_flight(info.id)) << "age " << age;

    int delivered = 0;
    n.set_delivery_callback([&](Cycle, const PacketInfo&, Cycle) { ++delivered; });
    PacketInfo fresh = info;
    fresh.id = n.next_packet_id();
    ASSERT_TRUE(n.try_inject(fresh, std::vector<std::uint64_t>(3, 2)));
    n.run(400);
    EXPECT_EQ(delivered, 1) << "age " << age;
    EXPECT_TRUE(n.quiescent()) << "age " << age;
  }
}

TEST_F(PurgeTest, PurgeOnlyTouchesTheVictim) {
  const PacketInfo a = make_packet(0, 63, 5);
  const PacketInfo b = make_packet(16, 47, 5);
  int delivered_b = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo& info, Cycle) {
    if (info.id == b.id) ++delivered_b;
  });
  ASSERT_TRUE(net.try_inject(a, std::vector<std::uint64_t>(4, 1)));
  ASSERT_TRUE(net.try_inject(b, std::vector<std::uint64_t>(4, 2)));
  net.run(10);
  (void)net.purge_packet(a.id);
  net.run(400);
  EXPECT_EQ(delivered_b, 1);
  EXPECT_TRUE(net.quiescent());
}

TEST_F(PurgeTest, HeavyTrafficPurgeStorm) {
  // Purge a third of all in-flight packets at a random-ish moment under
  // load; everything else must still deliver and the network must drain.
  std::vector<PacketId> ids;
  int delivered = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo&, Cycle) { ++delivered; });
  for (NodeId s = 0; s < 64; s += 2) {
    const PacketInfo info = make_packet(s, static_cast<NodeId>(63 - s), 3);
    if (net.try_inject(info, std::vector<std::uint64_t>(2, s))) {
      ids.push_back(info.id);
    }
    net.step();
  }
  int purged = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    if (net.packet_in_flight(ids[i])) {
      (void)net.purge_packet(ids[i]);
      ++purged;
    }
  }
  net.run(2000);
  EXPECT_GT(purged, 0);
  EXPECT_TRUE(net.quiescent());
  EXPECT_EQ(delivered + purged, static_cast<int>(ids.size()));
}

TEST_F(PurgeTest, PurgedPacketInNiQueueNeverEnters) {
  // Inject two packets at the same core; the second is still queued in the
  // NI when we purge it.
  const PacketInfo a = make_packet(0, 60, 4);
  const PacketInfo b = make_packet(0, 60, 4);
  ASSERT_TRUE(net.try_inject(a, std::vector<std::uint64_t>(3, 1)));
  ASSERT_TRUE(net.try_inject(b, std::vector<std::uint64_t>(3, 2)));
  (void)net.purge_packet(b.id);
  int delivered = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo& info, Cycle) {
    EXPECT_EQ(info.id, a.id);
    ++delivered;
  });
  net.run(400);
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(net.quiescent());
}

TEST_F(PurgeTest, FlitInLinkPhitAndRetransSlotCountedOnce) {
  // A transmitted-but-unacknowledged flit exists in two places at once: the
  // sender's retransmission slot (kInFlight) and the link's forward phit.
  // The purge accounting must deduplicate by uid and count it once.
  const PacketInfo info = make_packet(0, 60, 1);
  ASSERT_TRUE(net.try_inject(info, {}));
  OutputUnit& inj = net.ni(0).injection_port();
  Link* l = inj.link();
  ASSERT_NE(l, nullptr);
  bool dual = false;
  for (int i = 0; i < 20 && !dual; ++i) {
    net.step();
    bool slot_in_flight = false;
    for (int vc = 0; vc < cfg.vcs_per_port; ++vc) {
      if (!inj.inflight_uids(vc).empty()) slot_in_flight = true;
    }
    dual = slot_in_flight && l->has_packet(info.id);
  }
  ASSERT_TRUE(dual) << "never caught the flit in both locations";

  const auto before = net.purge_totals();
  (void)net.purge_packet(info.id);
  const auto after = net.purge_totals();
  EXPECT_EQ(after.packets, before.packets + 1);
  EXPECT_EQ(after.flits, before.flits + 1)
      << "one distinct flit in two locations must count once";
  EXPECT_FALSE(net.packet_in_flight(info.id));
  net.run(20);  // let in-flight credits land
  EXPECT_TRUE(net.quiescent());
  EXPECT_EQ(net.check_invariants(), "");
}

TEST_F(PurgeTest, PurgeRacingInFlightAckAtEveryOffset) {
  // Regression guard for a purge/ACK race on the retransmission slots: if a
  // purge lands on the same cycle an in-flight ACK for the same packet is
  // processed (or one cycle either side), a slot must not leak — neither
  // held forever (blocking the VC) nor double-released (freeing a slot the
  // ACK already freed, corrupting the credit ledger). Sweep the purge over
  // every cycle offset of a multi-hop flight so each interleaving of
  // {phit on wire, ACK on wire, slot kInFlight, slot retiring} is hit.
  for (int age = 0; age < 60; ++age) {
    Network n{cfg};
    PacketInfo info;
    info.id = n.next_packet_id();
    info.src_core = 0;
    info.dest_core = 63;  // r0 -> r15: the longest path, 6 hops
    info.src_router = 0;
    info.dest_router = 15;
    info.length = 5;
    ASSERT_TRUE(n.try_inject(info, std::vector<std::uint64_t>(4, 0xA5)));
    n.run(static_cast<Cycle>(age));
    (void)n.purge_packet(info.id);
    EXPECT_FALSE(n.packet_in_flight(info.id)) << "age " << age;
    n.run(40);  // drain straggling ACKs/NACKs for the purged packet

    // No retransmission slot anywhere in the fabric may still reference the
    // purged packet once its control traffic has drained.
    const auto holds_packet = [&](const OutputUnit& out) {
      for (int vc = 0; vc < cfg.vcs_per_port; ++vc) {
        for (const std::uint64_t uid : out.inflight_uids(vc)) {
          if ((uid >> 8) == info.id) return true;
        }
      }
      return false;
    };
    for (RouterId r = 0; r < cfg.num_routers(); ++r) {
      const Router& router = n.router(r);
      for (int p = 0; p < router.num_ports(); ++p) {
        EXPECT_FALSE(holds_packet(router.output(p)))
            << "router " << r << " port " << p << " age " << age;
      }
    }
    for (NodeId c = 0; c < n.geometry().num_cores(); ++c) {
      EXPECT_FALSE(holds_packet(n.ni(c).injection_port()))
          << "ni " << c << " age " << age;
    }
    EXPECT_TRUE(n.quiescent()) << "age " << age;
    EXPECT_EQ(n.check_invariants(), "") << "age " << age;

    // Credits and VC state must be fully restored: a fresh packet down the
    // same path still delivers.
    int delivered = 0;
    n.set_delivery_callback(
        [&](Cycle, const PacketInfo&, Cycle) { ++delivered; });
    PacketInfo retry = info;
    retry.id = n.next_packet_id();
    ASSERT_TRUE(n.try_inject(retry, std::vector<std::uint64_t>(4, 0x5A)));
    n.run(400);
    EXPECT_EQ(delivered, 1) << "age " << age;
    EXPECT_TRUE(n.quiescent()) << "age " << age;
  }
}

TEST_F(PurgeTest, DisabledLinkPlusPurgePlusReconfigureDelivers) {
  // The full rerouting recovery sequence, by hand.
  const PacketInfo victim = make_packet(16, 3, 5);  // r4 -> r0 via r4->N
  ASSERT_TRUE(net.try_inject(victim, std::vector<std::uint64_t>(4, 3)));
  net.run(8);
  net.disable_link({4, Direction::kNorth});
  net.disable_link({0, Direction::kSouth});
  (void)net.purge_packet(victim.id);
  for (RouterId r = 0; r < 16; ++r) net.router(r).invalidate_waiting_routes();
  net.use_updown_routing();

  int delivered = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo&, Cycle) { ++delivered; });
  PacketInfo retry = victim;
  retry.id = net.next_packet_id();
  ASSERT_TRUE(net.try_inject(retry, std::vector<std::uint64_t>(4, 4)));
  net.run(500);
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(net.quiescent());
}

}  // namespace
}  // namespace htnoc
