// Exhaustive equivalence between the fast table-driven `Secded` codec and
// the bit-serial `SecdedReference` oracle it replaced on the hot path:
// identical codewords from encode, identical full DecodeResult (status,
// data, syndrome, overall-parity flag, corrected position) over all 72
// single-bit and all 2,556 two-bit error patterns with randomized data,
// plus randomized higher-weight patterns. Also covers the de-virtualized
// CodecDispatch against the polymorphic codec_for() view for every scheme.
#include "ecc/secded_reference.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ecc/codec.hpp"

namespace htnoc::ecc {
namespace {

void expect_same_decode(const DecodeResult& fast, const DecodeResult& ref,
                        const std::string& what) {
  EXPECT_EQ(fast.status, ref.status) << what;
  EXPECT_EQ(fast.data, ref.data) << what;
  EXPECT_EQ(fast.syndrome, ref.syndrome) << what;
  EXPECT_EQ(fast.overall_parity_bad, ref.overall_parity_bad) << what;
  EXPECT_EQ(fast.corrected_position, ref.corrected_position) << what;
}

class SecdedEquivalence : public ::testing::Test {
 protected:
  const Secded& fast = secded();
  const SecdedReference& ref = secded_reference();
};

TEST_F(SecdedEquivalence, DataBitLayoutIdentical) {
  for (unsigned i = 0; i < Secded::kDataBits; ++i) {
    EXPECT_EQ(fast.position_of_data_bit(i), ref.position_of_data_bit(i)) << i;
  }
}

TEST_F(SecdedEquivalence, EncodeIdentical) {
  Rng rng(2016);
  for (const std::uint64_t d : {std::uint64_t{0}, ~std::uint64_t{0}}) {
    EXPECT_TRUE(fast.encode(d) == ref.encode(d)) << d;
  }
  for (int i = 0; i < 4096; ++i) {
    const std::uint64_t d = rng.next_u64();
    const Codeword72 f = fast.encode(d);
    const Codeword72 r = ref.encode(d);
    ASSERT_TRUE(f == r) << "data=" << d;
    EXPECT_EQ(fast.extract_data(f), d);
    EXPECT_EQ(ref.extract_data(r), d);
  }
}

TEST_F(SecdedEquivalence, CleanDecodeIdentical) {
  Rng rng(4);
  for (int i = 0; i < 1024; ++i) {
    const std::uint64_t d = rng.next_u64();
    expect_same_decode(fast.decode(fast.encode(d)), ref.decode(ref.encode(d)),
                       "clean");
  }
}

// All 72 single-bit error patterns, each over several random data words.
TEST_F(SecdedEquivalence, AllSingleBitErrorsIdentical) {
  Rng rng(71);
  for (unsigned pos = 0; pos < Secded::kCodeBits; ++pos) {
    for (int i = 0; i < 32; ++i) {
      const std::uint64_t d = rng.next_u64();
      Codeword72 cw = fast.encode(d);
      cw.flip(pos);
      const DecodeResult f = fast.decode(cw);
      expect_same_decode(f, ref.decode(cw), "pos=" + std::to_string(pos));
      EXPECT_EQ(f.status, DecodeStatus::kCorrectedSingle);
      EXPECT_EQ(f.data, d);
      EXPECT_TRUE(f.has_valid_data());
    }
  }
}

// All C(72,2) = 2,556 two-bit error patterns, each over random data.
TEST_F(SecdedEquivalence, AllDoubleBitErrorsIdentical) {
  Rng rng(2556);
  int patterns = 0;
  for (unsigned a = 0; a < Secded::kCodeBits; ++a) {
    for (unsigned b = a + 1; b < Secded::kCodeBits; ++b) {
      const std::uint64_t d = rng.next_u64();
      Codeword72 cw = fast.encode(d);
      cw.flip(a);
      cw.flip(b);
      const DecodeResult f = fast.decode(cw);
      expect_same_decode(
          f, ref.decode(cw),
          "a=" + std::to_string(a) + " b=" + std::to_string(b));
      EXPECT_EQ(f.status, DecodeStatus::kDetectedDouble);
      EXPECT_EQ(f.data, 0u) << "uncorrectable data must be zeroed";
      EXPECT_FALSE(f.has_valid_data());
      ++patterns;
    }
  }
  EXPECT_EQ(patterns, 2556);
}

// Higher-weight random patterns: outcomes may be miscorrections or
// detected-multiple, but both implementations must agree bit-for-bit.
TEST_F(SecdedEquivalence, RandomMultiBitErrorsIdentical) {
  Rng rng(0xBAD);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t d = rng.next_u64();
    Codeword72 cw = fast.encode(d);
    const int nflips = 3 + static_cast<int>(rng.next_below(5));  // 3..7
    for (int k = 0; k < nflips; ++k) {
      cw.flip(static_cast<unsigned>(rng.next_below(Secded::kCodeBits)));
    }
    const DecodeResult f = fast.decode(cw);
    expect_same_decode(f, ref.decode(cw), "iter=" + std::to_string(i));
    if (!f.has_valid_data()) {
      EXPECT_EQ(f.data, 0u);
    }
  }
}

// Fully random 72-bit words (not necessarily near any codeword).
TEST_F(SecdedEquivalence, RandomWordsIdentical) {
  Rng rng(777);
  for (int i = 0; i < 20000; ++i) {
    Codeword72 cw;
    cw.lo = rng.next_u64();
    cw.hi = static_cast<std::uint8_t>(rng.next_u64());
    expect_same_decode(fast.decode(cw), ref.decode(cw),
                       "iter=" + std::to_string(i));
  }
}

// The de-virtualized dispatch must agree with the polymorphic view that
// on-link inspectors and older tests still use, for every scheme.
class DispatchEquivalence : public ::testing::TestWithParam<EccScheme> {};

TEST_P(DispatchEquivalence, MatchesPolymorphicCodec) {
  const EccScheme scheme = GetParam();
  const CodecDispatch dispatch(scheme);
  const LinkCodec& poly = codec_for(scheme);
  EXPECT_EQ(dispatch.scheme(), scheme);
  EXPECT_EQ(dispatch.used_wires(), poly.used_wires());

  Rng rng(static_cast<std::uint64_t>(scheme) + 99);
  for (int i = 0; i < 2048; ++i) {
    const std::uint64_t d = rng.next_u64();
    Codeword72 cw = dispatch.encode(d);
    ASSERT_TRUE(cw == poly.encode(d));
    EXPECT_EQ(dispatch.extract_data(cw), poly.extract_data(cw));
    expect_same_decode(dispatch.decode(cw), poly.decode(cw), "clean");
    // Corrupt within the scheme's used wires and compare again.
    cw.flip(static_cast<unsigned>(rng.next_below(dispatch.used_wires())));
    if (rng.next_below(2) == 1) {
      cw.flip(static_cast<unsigned>(rng.next_below(dispatch.used_wires())));
    }
    const DecodeResult f = dispatch.decode(cw);
    expect_same_decode(f, poly.decode(cw), "faulted");
    if (!f.has_valid_data()) {
      EXPECT_EQ(f.data, 0u) << "uncorrectable data must be zeroed";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, DispatchEquivalence,
                         ::testing::Values(EccScheme::kSecded,
                                           EccScheme::kParity,
                                           EccScheme::kNone));

// A parity link fed an odd-weight error reports kDetectedMultiple and must
// not leak the corrupted word through DecodeResult.data.
TEST(ParityDecode, UncorrectableDataZeroed) {
  const std::uint64_t d = 0x0123456789ABCDEF;
  Codeword72 cw = parity_encode(d);
  cw.flip(3);
  const DecodeResult r = parity_decode(cw);
  EXPECT_EQ(r.status, DecodeStatus::kDetectedMultiple);
  EXPECT_FALSE(r.has_valid_data());
  EXPECT_EQ(r.data, 0u);
}

}  // namespace
}  // namespace htnoc::ecc
