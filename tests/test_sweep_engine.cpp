// Unit coverage for the sweep engine: grid expansion and seeding,
// aggregation math, worker-count resolution, and error containment when a
// run throws mid-sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/expect.hpp"
#include "sweep/emit.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

namespace htnoc {
namespace {

sweep::SweepSpec tiny_spec() {
  sweep::SweepSpec spec;
  spec.modes = {sim::MitigationMode::kNone};
  spec.attack_scenarios = {{"none", {}}};
  spec.profiles = {"blackscholes"};
  spec.rate_scales = {1.0};
  spec.replicates = 1;
  spec.run_cycles = 120;  // keep unit tests fast
  return spec;
}

sim::AttackSpec single_tasp(Cycle enable_at) {
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = enable_at;
  return a;
}

TEST(GridExpansion, CountsAndOrder) {
  sweep::SweepSpec spec = tiny_spec();
  spec.modes = {sim::MitigationMode::kNone, sim::MitigationMode::kLOb};
  spec.attack_scenarios = {{"none", {}}, {"single", {single_tasp(50)}}};
  spec.profiles = {"blackscholes", "fft", "ferret"};
  spec.rate_scales = {0.5, 1.0};
  spec.replicates = 3;

  const auto runs = sweep::expand(spec);
  EXPECT_EQ(spec.num_grid_points(), 2u * 2u * 3u * 2u);
  ASSERT_EQ(runs.size(), spec.num_grid_points() * 3u);

  // Replicates of a point are adjacent; points are mode-major.
  EXPECT_EQ(runs[0].point.linear, 0u);
  EXPECT_EQ(runs[0].replicate, 0);
  EXPECT_EQ(runs[1].point.linear, 0u);
  EXPECT_EQ(runs[1].replicate, 1);
  EXPECT_EQ(runs[3].point.linear, 1u);
  EXPECT_EQ(runs.front().mode, sim::MitigationMode::kNone);
  EXPECT_EQ(runs.back().mode, sim::MitigationMode::kLOb);
  EXPECT_EQ(runs.back().point.linear, spec.num_grid_points() - 1);
  EXPECT_EQ(runs.back().replicate, 2);
  // Rate is the innermost axis.
  EXPECT_EQ(runs[0].rate_scale, 0.5);
  EXPECT_EQ(runs[3].rate_scale, 1.0);
  EXPECT_EQ(runs[6].profile, "fft");
  // Attacks resolved by value.
  EXPECT_TRUE(runs[0].attacks.empty());
  const std::size_t runs_per_attack = 3 * 2 * 3;  // profiles*rates*reps
  EXPECT_EQ(runs[runs_per_attack].attack_name, "single");
  ASSERT_EQ(runs[runs_per_attack].attacks.size(), 1u);
}

TEST(GridExpansion, SeedsAreStableAndDistinct) {
  sweep::SweepSpec spec = tiny_spec();
  spec.modes = {sim::MitigationMode::kNone, sim::MitigationMode::kReroute};
  spec.rate_scales = {1.0, 1.5};
  spec.replicates = 4;

  const auto a = sweep::expand(spec);
  const auto b = sweep::expand(spec);
  ASSERT_EQ(a.size(), b.size());
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed) << "expansion must be reproducible";
    EXPECT_EQ(a[i].seed,
              sweep::derive_run_seed(spec.base_seed, a[i].point.linear,
                                     static_cast<std::uint64_t>(
                                         a[i].replicate)));
    seeds.insert(a[i].seed);
  }
  EXPECT_EQ(seeds.size(), a.size()) << "per-run seeds must not collide";

  // Seeds must not alias across the (point, replicate) diagonal.
  EXPECT_NE(sweep::derive_run_seed(1, 0, 1), sweep::derive_run_seed(1, 1, 0));
}

TEST(GridExpansion, EmptyAxesRejected) {
  {
    sweep::SweepSpec s = tiny_spec();
    s.modes.clear();
    EXPECT_THROW((void)sweep::expand(s), ContractViolation);
  }
  {
    sweep::SweepSpec s = tiny_spec();
    s.attack_scenarios.clear();
    EXPECT_THROW((void)sweep::expand(s), ContractViolation);
  }
  {
    sweep::SweepSpec s = tiny_spec();
    s.profiles.clear();
    EXPECT_THROW((void)sweep::expand(s), ContractViolation);
  }
  {
    sweep::SweepSpec s = tiny_spec();
    s.rate_scales.clear();
    EXPECT_THROW((void)sweep::expand(s), ContractViolation);
  }
  {
    sweep::SweepSpec s = tiny_spec();
    s.replicates = 0;
    EXPECT_THROW((void)sweep::expand(s), ContractViolation);
  }
  {
    sweep::SweepSpec s = tiny_spec();
    s.attack_scenarios = {{"", {}}};  // unnamed scenarios break labels
    EXPECT_THROW((void)sweep::expand(s), ContractViolation);
  }
}

TEST(Aggregation, HandComputedMeanStddevMinMax) {
  const auto a = sweep::aggregate_values({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(a.mean, 2.5);
  EXPECT_NEAR(a.stddev, std::sqrt(5.0 / 3.0), 1e-12);  // sample stddev
  EXPECT_DOUBLE_EQ(a.min, 1.0);
  EXPECT_DOUBLE_EQ(a.max, 4.0);

  const auto b = sweep::aggregate_values({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(b.mean, 5.0);
  EXPECT_NEAR(b.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(b.min, 2.0);
  EXPECT_DOUBLE_EQ(b.max, 9.0);

  const auto single = sweep::aggregate_values({42.0});
  EXPECT_DOUBLE_EQ(single.mean, 42.0);
  EXPECT_DOUBLE_EQ(single.stddev, 0.0);  // n < 2: no spread estimate
  EXPECT_DOUBLE_EQ(single.min, 42.0);
  EXPECT_DOUBLE_EQ(single.max, 42.0);

  const auto empty = sweep::aggregate_values({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.stddev, 0.0);
}

TEST(Aggregation, GroupsReplicatesByGridPoint) {
  sweep::SweepSpec spec = tiny_spec();
  spec.rate_scales = {0.5, 1.0};
  spec.replicates = 3;
  const auto result = sweep::SweepRunner({1}).run(spec);
  ASSERT_EQ(result.runs.size(), 6u);
  ASSERT_EQ(result.summary.size(), 2u);
  for (const auto& gs : result.summary) {
    EXPECT_EQ(gs.replicates, 3);
    EXPECT_EQ(gs.failures, 0);
    ASSERT_EQ(gs.metrics.size(), sweep::RunResult::metric_names().size());
  }
  // The aggregate of `delivered` must equal the hand-aggregated per-run
  // values of the same grid point.
  std::vector<double> delivered;
  for (const auto& r : result.runs) {
    if (r.spec.point.linear == 0) {
      delivered.push_back(static_cast<double>(r.traffic.packets_delivered));
    }
  }
  const auto expect = sweep::aggregate_values(delivered);
  const auto& got = result.summary[0].metrics[0];  // "delivered"
  EXPECT_DOUBLE_EQ(got.mean, expect.mean);
  EXPECT_DOUBLE_EQ(got.stddev, expect.stddev);
  EXPECT_DOUBLE_EQ(got.min, expect.min);
  EXPECT_DOUBLE_EQ(got.max, expect.max);
  // Replicates actually differ (the seeds decorrelate them), so the spread
  // of the (continuous-valued) mean latency is non-zero — the aggregation
  // is not degenerate.
  EXPECT_GT(result.summary[0].metrics[1].stddev, 0.0);  // "avg_latency"
}

TEST(SweepRunner, WorkerCountResolution) {
  EXPECT_GE(sweep::SweepRunner::resolve_threads(0, 100), 1);
  EXPECT_EQ(sweep::SweepRunner::resolve_threads(3, 100), 3);
  EXPECT_EQ(sweep::SweepRunner::resolve_threads(64, 5), 5)
      << "never more workers than runs";
  EXPECT_EQ(sweep::SweepRunner::resolve_threads(-2, 1), 1);
  EXPECT_EQ(sweep::SweepRunner::resolve_threads(8, 0), 8)
      << "zero runs: any positive count is fine";
}

TEST(SweepRunner, ExceptionMidSweepIsContained) {
  sweep::SweepSpec spec = tiny_spec();
  // Second grid point throws inside the run (unknown profile); the sweep
  // must still finish the good runs and report the error per-slot.
  spec.profiles = {"blackscholes", "no_such_profile"};
  spec.replicates = 2;
  const auto result = sweep::SweepRunner({2}).run(spec);
  ASSERT_EQ(result.runs.size(), 4u);
  EXPECT_EQ(result.failures(), 2u);
  for (const auto& r : result.runs) {
    if (r.spec.profile == "no_such_profile") {
      EXPECT_FALSE(r.ok);
      EXPECT_FALSE(r.error.empty());
    } else {
      EXPECT_TRUE(r.ok) << r.error;
      EXPECT_GT(r.traffic.packets_delivered, 0u);
    }
  }
  ASSERT_EQ(result.summary.size(), 2u);
  EXPECT_EQ(result.summary[0].replicates, 2);
  EXPECT_EQ(result.summary[0].failures, 0);
  EXPECT_EQ(result.summary[1].replicates, 0);
  EXPECT_EQ(result.summary[1].failures, 2);
  // Failed runs serialize with their error instead of metrics.
  const std::string json = sweep::to_json(result);
  EXPECT_NE(json.find("no_such_profile"), std::string::npos);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
}

TEST(SweepRunner, ProbeSeriesRecordedWhenEnabled) {
  sweep::SweepSpec spec = tiny_spec();
  spec.run_cycles = 200;
  spec.probe_period = 50;
  const auto result = sweep::SweepRunner({1}).run(spec);
  ASSERT_EQ(result.runs.size(), 1u);
  const auto& r = result.runs[0];
  ASSERT_EQ(r.util_series.size(), 4u);  // cycles 50,100,150,200
  ASSERT_EQ(r.throughput_series.size(), 4u);
  EXPECT_EQ(r.util_series[0].cycle, 50u);
  EXPECT_EQ(r.throughput_series.back().cycle, 200u);
  EXPECT_EQ(r.throughput_series.back().primary_delivered,
            r.traffic.packets_delivered);
}

}  // namespace
}  // namespace htnoc
