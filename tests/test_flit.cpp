#include "noc/flit.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace htnoc {
namespace {

PacketInfo make_info(int length) {
  PacketInfo info;
  info.id = 42;
  info.src_core = 7;
  info.dest_core = 33;
  info.src_router = 1;
  info.dest_router = 8;
  info.mem_addr = 0xCAFE0000;
  info.pclass = PacketClass::kRequest;
  info.domain = TdmDomain::kD2;
  info.length = length;
  info.inject_cycle = 100;
  return info;
}

TEST(Packetize, SingleFlitPacketIsHeadTail) {
  const auto flits = packetize(make_info(1), {});
  ASSERT_EQ(flits.size(), 1u);
  EXPECT_EQ(flits[0].type, FlitType::kHeadTail);
  EXPECT_TRUE(flits[0].is_head());
  EXPECT_TRUE(flits[0].is_tail());
}

TEST(Packetize, MultiFlitStructure) {
  const std::vector<std::uint64_t> payload = {0x11, 0x22, 0x33, 0x44};
  const auto flits = packetize(make_info(5), payload);
  ASSERT_EQ(flits.size(), 5u);
  EXPECT_EQ(flits[0].type, FlitType::kHead);
  EXPECT_EQ(flits[1].type, FlitType::kBody);
  EXPECT_EQ(flits[2].type, FlitType::kBody);
  EXPECT_EQ(flits[3].type, FlitType::kBody);
  EXPECT_EQ(flits[4].type, FlitType::kTail);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(flits[static_cast<std::size_t>(i)].seq, i);
    EXPECT_EQ(flits[static_cast<std::size_t>(i)].packet, 42u);
    EXPECT_EQ(flits[static_cast<std::size_t>(i)].length, 5);
  }
}

TEST(Packetize, HeadWireCarriesHeaderFields) {
  const auto flits = packetize(make_info(2), {0xABCD});
  const wire::HeaderFields h = wire::unpack_header(flits[0].wire);
  EXPECT_EQ(h.src, 1);
  EXPECT_EQ(h.dest, 8);
  EXPECT_EQ(h.mem_addr, 0xCAFE0000u);
  EXPECT_EQ(h.length, 2u);
  EXPECT_EQ(h.pclass, PacketClass::kRequest);
  EXPECT_EQ(h.type, FlitType::kHead);
}

TEST(Packetize, BodyWireCarriesStampedPayload) {
  const auto flits = packetize(make_info(3), {0x1111, 0x2222});
  EXPECT_EQ(wire::type_of(flits[1].wire), FlitType::kBody);
  EXPECT_EQ(wire::type_of(flits[2].wire), FlitType::kTail);
  // Payload bits below the type field survive.
  EXPECT_EQ(extract_bits(flits[1].wire, 0, 16), 0x1111u);
  EXPECT_EQ(extract_bits(flits[2].wire, 0, 16), 0x2222u);
}

TEST(Packetize, RejectsShortPayload) {
  EXPECT_THROW((void)packetize(make_info(4), {0x1}), ContractViolation);
}

TEST(Packetize, RejectsZeroLength) {
  EXPECT_THROW((void)packetize(make_info(0), {}), ContractViolation);
}

TEST(Flit, UidDistinguishesSeqAndPacket) {
  const auto a = packetize(make_info(3), {1, 2});
  PacketInfo other = make_info(3);
  other.id = 43;
  const auto b = packetize(other, {1, 2});
  EXPECT_NE(a[0].flit_uid(), a[1].flit_uid());
  EXPECT_NE(a[0].flit_uid(), b[0].flit_uid());
}

TEST(ObfuscationTag, DefaultInactive) {
  const ObfuscationTag t;
  EXPECT_FALSE(t.active());
  ObfuscationTag u;
  u.method = ObfMethod::kInvert;
  EXPECT_TRUE(u.active());
}

TEST(Strings, EnumNames) {
  EXPECT_EQ(to_string(ObfMethod::kScramble), "scramble");
  EXPECT_EQ(to_string(ObfGranularity::kHeader), "header");
  EXPECT_EQ(to_string(FlitType::kHeadTail), "head_tail");
  EXPECT_EQ(to_string(Direction::kNorth), "N");
}

}  // namespace
}  // namespace htnoc
