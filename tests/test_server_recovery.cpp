// Restart recovery and cancellation determinism: a daemon pointed at a
// --state-dir must come back from an abrupt death serving the same bytes
// it served before (terminal jobs) and re-running what it had accepted but
// never published (byte-identical again, by the determinism contract); and
// a cancelled campaign must summarize exactly like a shorter campaign that
// was never cancelled at all.
#include "server/state.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "server/server.hpp"
#include "sweep/emit.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec_json.hpp"
#include "verify/campaign.hpp"
#include "verify/campaign_json.hpp"

namespace htnoc::server {
namespace {

namespace fs = std::filesystem;

constexpr const char* kSweepSpec = R"({
  "modes": ["none", "lob"],
  "attacks": ["single"],
  "profiles": ["blackscholes"],
  "rates": [1.0],
  "replicates": 2,
  "seed": "0x5eed",
  "cycles": 250
})";

constexpr const char* kCampaignSpec = R"({
  "seed": "0x20260807",
  "scenarios": 6,
  "audit_period": 64
})";

std::string envelope(const std::string& kind, int jobs,
                     const std::string& spec) {
  return "{\"kind\":\"" + kind + "\",\"jobs\":" + std::to_string(jobs) +
         ",\"spec\":" + spec + "}";
}

/// A fresh per-test state directory under gtest's temp root.
fs::path fresh_state_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("htnoc_" + name);
  fs::remove_all(dir);
  return dir;
}

std::string wait_state(int port, std::uint64_t id) {
  for (int i = 0; i < 2000; ++i) {
    const HttpResponse r = http_get(port, "/runs/" + std::to_string(id));
    if (r.status != 200) return "http_" + std::to_string(r.status);
    const std::string& s =
        json::parse(r.body).find("state")->as_string();
    if (s == "done" || s == "failed" || s == "cancelled") return s;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return "timeout";
}

std::uint64_t submit_ok(int port, const std::string& body) {
  const HttpResponse r = http_post(port, "/runs", body);
  EXPECT_EQ(r.status, 202) << r.body;
  return json::as_uint64(*json::parse(r.body).find("id"));
}

std::string fetch(int port, const std::string& target) {
  const HttpResponse r = http_get(port, target);
  EXPECT_EQ(r.status, 200) << target << ": " << r.body;
  return r.body;
}

/// Reference bytes: the spec through the engine + emitters directly.
struct SweepReference {
  std::string summary_csv;
  std::string runs_csv;
  std::string result_json;
};

SweepReference reference_sweep(const std::string& spec_text) {
  const sweep::SweepSpec spec = sweep::parse_sweep_spec(spec_text);
  const sweep::SweepResult result =
      sweep::SweepRunner(sweep::SweepRunner::Options{}).run(spec);
  SweepReference ref;
  std::ostringstream s1;
  sweep::write_summary_csv(s1, result);
  ref.summary_csv = s1.str();
  std::ostringstream s2;
  sweep::write_runs_csv(s2, result);
  ref.runs_csv = s2.str();
  ref.result_json = sweep::to_json(result);
  return ref;
}

TEST(StateStore, RoundTripsRecordsEventsAndArtifacts) {
  const fs::path dir = fresh_state_dir("store_roundtrip");
  StateStore store(dir.string());

  JobInfo accepted;
  accepted.id = 3;
  accepted.kind = JobKind::kCampaign;
  accepted.state = JobState::kQueued;
  accepted.jobs = 2;
  accepted.step_threads = 4;
  store.save_accepted(accepted, "{\"spec\":true}");
  store.append_event(3, "{\"event\":\"job_submitted\"}");
  store.append_event(3, "{\"event\":\"job_started\"}");

  JobInfo terminal = accepted;
  terminal.id = 4;
  terminal.state = JobState::kDone;
  terminal.done = 6;
  terminal.total = 6;
  terminal.artifacts = {"summary.txt"};
  store.save_accepted(terminal, "{\"spec\":false}");
  store.save_terminal(terminal, {{"summary.txt", "all good\n"}});

  const RecoveredState rec = store.recover();
  EXPECT_TRUE(rec.warnings.empty());
  ASSERT_EQ(rec.jobs.size(), 2u);
  EXPECT_EQ(rec.jobs[0].info.id, 3u);
  EXPECT_EQ(rec.jobs[0].info.state, JobState::kQueued);
  EXPECT_EQ(rec.jobs[0].info.kind, JobKind::kCampaign);
  EXPECT_EQ(rec.jobs[0].info.jobs, 2);
  EXPECT_EQ(rec.jobs[0].info.step_threads, 4);
  EXPECT_EQ(rec.jobs[0].spec, "{\"spec\":true}");
  ASSERT_EQ(rec.jobs[0].events.size(), 2u);
  EXPECT_EQ(rec.jobs[0].events[1], "{\"event\":\"job_started\"}");
  EXPECT_EQ(rec.jobs[1].info.state, JobState::kDone);
  ASSERT_EQ(rec.jobs[1].info.artifacts.size(), 1u);
  EXPECT_EQ(store.read_artifact(4, "summary.txt"), "all good\n");

  // Traversal-shaped names never touch the filesystem.
  EXPECT_EQ(store.read_artifact(4, "../4/summary.txt"), std::nullopt);
  EXPECT_EQ(store.read_artifact(4, ".."), std::nullopt);
  EXPECT_EQ(store.read_artifact(4, "nope.txt"), std::nullopt);
}

TEST(StateStore, CorruptRecordsAreSkippedWithWarnings) {
  const fs::path dir = fresh_state_dir("store_corrupt");
  StateStore store(dir.string());

  JobInfo good;
  good.id = 1;
  good.state = JobState::kQueued;
  store.save_accepted(good, "{}");

  // A torn record (crash mid-write leaves the .tmp, never the real file),
  // a garbage record, and a record missing its spec.
  fs::create_directories(dir / "jobs" / "2");
  std::ofstream(dir / "jobs" / "2" / "job.json.tmp") << "{\"id\": 2";
  fs::create_directories(dir / "jobs" / "3");
  std::ofstream(dir / "jobs" / "3" / "job.json") << "not json at all";
  fs::create_directories(dir / "jobs" / "4");
  std::ofstream(dir / "jobs" / "4" / "job.json")
      << R"({"id":4,"kind":"sweep","state":"queued","jobs":1,)"
      << R"("step_threads":1,"done":0,"total":0,"error":"","artifacts":[]})";

  const RecoveredState rec = store.recover();
  ASSERT_EQ(rec.jobs.size(), 1u);  // only the good one survives
  EXPECT_EQ(rec.jobs[0].info.id, 1u);
  EXPECT_EQ(rec.warnings.size(), 3u);  // 2: no record; 3: garbage; 4: no spec
}

TEST(ServerRecovery, RestartServesIdenticalArtifactsFromDisk) {
  const fs::path dir = fresh_state_dir("restart");
  SinkSet sinks;

  std::uint64_t sweep_id = 0;
  std::uint64_t campaign_id = 0;
  {
    Server first(Server::Options{0, 2, 2, dir.string()}, &sinks);
    sweep_id = submit_ok(first.port(), envelope("sweep", 1, kSweepSpec));
    campaign_id =
        submit_ok(first.port(), envelope("campaign", 1, kCampaignSpec));
    ASSERT_EQ(wait_state(first.port(), sweep_id), "done");
    ASSERT_EQ(wait_state(first.port(), campaign_id), "done");
    first.shutdown();
  }

  // A second daemon on the same state dir serves the same runs — same
  // states, same artifact bytes — without re-running anything.
  Server second(Server::Options{0, 2, 2, dir.string()}, &sinks);
  const int port = second.port();
  const json::Value runs = json::parse(fetch(port, "/runs"));
  EXPECT_EQ(runs.find("runs")->as_array().size(), 2u);

  const SweepReference ref = reference_sweep(kSweepSpec);
  const std::string base = "/runs/" + std::to_string(sweep_id);
  EXPECT_EQ(fetch(port, base + "/summary.csv"), ref.summary_csv);
  EXPECT_EQ(fetch(port, base + "/runs.csv"), ref.runs_csv);
  EXPECT_EQ(fetch(port, base + "/result.json"), ref.result_json);

  verify::CampaignSpec direct = verify::parse_campaign_spec(kCampaignSpec);
  const verify::CampaignResult campaign = verify::FaultCampaign(direct).run();
  EXPECT_EQ(fetch(port, "/runs/" + std::to_string(campaign_id) +
                            "/summary.txt"),
            campaign.summary_text());

  // The replayed event history survived too, and new ids continue past
  // the recovered ones instead of colliding.
  const std::string events =
      fetch(port, "/runs/" + std::to_string(sweep_id) + "/events");
  EXPECT_NE(events.find("job_submitted"), std::string::npos);
  EXPECT_NE(events.find("job_finished"), std::string::npos);
  const std::uint64_t next_id =
      submit_ok(port, envelope("sweep", 1, kSweepSpec));
  EXPECT_GT(next_id, campaign_id);
  EXPECT_EQ(wait_state(port, next_id), "done");

  const json::Value stats = json::parse(fetch(port, "/stats"));
  EXPECT_EQ(json::as_uint64(*stats.find("counters")->find("jobs_recovered")),
            2u);
}

TEST(ServerRecovery, AcceptedButUnpublishedJobIsRequeuedAndRerun) {
  const fs::path dir = fresh_state_dir("requeue");

  // Simulate a daemon killed between acceptance and publication: the spec
  // and a queued-state record are on disk, nothing else.
  const sweep::SweepSpec parsed = sweep::parse_sweep_spec(kSweepSpec);
  const std::string canonical =
      json::to_string(sweep::sweep_spec_to_json(parsed));
  {
    StateStore store(dir.string());
    JobInfo info;
    info.id = 7;
    info.kind = JobKind::kSweep;
    info.state = JobState::kQueued;
    info.jobs = 1;
    info.step_threads = parsed.base.noc.step_threads;
    store.save_accepted(info, canonical);
  }

  SinkSet sinks;
  Server server(Server::Options{0, 2, 2, dir.string()}, &sinks);
  const int port = server.port();
  ASSERT_EQ(wait_state(port, 7), "done");

  const SweepReference ref = reference_sweep(kSweepSpec);
  EXPECT_EQ(fetch(port, "/runs/7/summary.csv"), ref.summary_csv);
  EXPECT_EQ(fetch(port, "/runs/7/result.json"), ref.result_json);
  // The re-run was recorded in the event replay.
  EXPECT_NE(fetch(port, "/runs/7/events").find("job_recovered"),
            std::string::npos);
}

TEST(CancelDeterminism, CancelledCampaignEqualsShorterCampaign) {
  // Single-threaded campaign with a stop token raised after 3 scenarios:
  // the claimed prefix is exactly [0, k), so the cancelled summary must be
  // byte-identical to an uncancelled k-scenario campaign — and reproducible
  // run over run.
  auto cancelled_run = [] {
    verify::CampaignSpec spec = verify::parse_campaign_spec(R"({
      "seed": "0x5eed", "scenarios": 10, "audit_period": 64})");
    spec.threads = 1;
    auto completed = std::make_shared<std::atomic<std::uint64_t>>(0);
    spec.progress = [completed](std::uint64_t done, std::uint64_t) {
      completed->store(done, std::memory_order_relaxed);
    };
    spec.should_stop = [completed] {
      return completed->load(std::memory_order_relaxed) >= 3;
    };
    return verify::FaultCampaign(spec).run();
  };

  const verify::CampaignResult first = cancelled_run();
  const verify::CampaignResult second = cancelled_run();
  EXPECT_TRUE(first.cancelled);
  EXPECT_EQ(first.scenarios.size(), second.scenarios.size());
  EXPECT_EQ(first.summary_text(), second.summary_text());
  EXPECT_EQ(first.summary_markdown(), second.summary_markdown());

  // Equivalence with the campaign that only ever asked for k scenarios.
  const std::uint64_t k = first.scenarios.size();
  ASSERT_GE(k, 3u);
  ASSERT_LT(k, 10u);
  verify::CampaignSpec shorter = verify::parse_campaign_spec(R"({
    "seed": "0x5eed", "scenarios": 10, "audit_period": 64})");
  shorter.threads = 1;
  shorter.scenarios = k;
  const verify::CampaignResult direct = verify::FaultCampaign(shorter).run();
  EXPECT_FALSE(direct.cancelled);
  EXPECT_EQ(first.summary_text(), direct.summary_text());
  EXPECT_EQ(first.summary_markdown(), direct.summary_markdown());
}

TEST(CancelDeterminism, CancelledSweepHoldsClaimedPrefix) {
  // Same property at the sweep layer: the cancelled result holds exactly
  // the claimed prefix of the expansion order, and its emitters match a
  // direct run truncated to the same prefix.
  sweep::SweepSpec spec = sweep::parse_sweep_spec(R"({
    "modes": ["none", "lob", "reroute"], "attacks": ["single"],
    "profiles": ["blackscholes"], "rates": [1.0],
    "replicates": 2, "seed": "0x5eed", "cycles": 120})");

  std::atomic<std::uint64_t> completed{0};
  sweep::SweepRunner::Options opts;
  opts.num_threads = 1;
  opts.progress = [&completed](std::size_t done, std::size_t) {
    completed.store(done, std::memory_order_relaxed);
  };
  opts.should_stop = [&completed] {
    return completed.load(std::memory_order_relaxed) >= 2;
  };
  const sweep::SweepResult result = sweep::SweepRunner(opts).run(spec);
  EXPECT_TRUE(result.cancelled);
  ASSERT_GE(result.runs.size(), 2u);
  ASSERT_LT(result.runs.size(), 6u);

  const sweep::SweepResult full =
      sweep::SweepRunner(sweep::SweepRunner::Options{}).run(spec);
  ASSERT_EQ(full.runs.size(), 6u);
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    EXPECT_EQ(result.runs[i].spec.label(), full.runs[i].spec.label()) << i;
    EXPECT_EQ(result.runs[i].metrics(), full.runs[i].metrics()) << i;
  }
}

}  // namespace
}  // namespace htnoc::server
