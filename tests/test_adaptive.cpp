#include "noc/adaptive.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "noc/network.hpp"
#include "traffic/generator.hpp"

namespace htnoc {
namespace {

class WestFirstTest : public ::testing::Test {
 protected:
  MeshGeometry geom{4, 4, 4};

  Flit flit_to(RouterId dest) const {
    Flit f;
    f.dest_router = dest;
    f.dest_core = geom.core_at(dest, 0);
    return f;
  }
};

TEST_F(WestFirstTest, WestwardHopsComeFirst) {
  WestFirstRouting wf(geom);
  // r7 (3,1) -> r0 (0,0): must go west, not north, until x matches.
  EXPECT_EQ(wf.route(7, flit_to(0)).out_port, kPortWest);
  EXPECT_EQ(wf.route(6, flit_to(0)).out_port, kPortWest);
  EXPECT_EQ(wf.route(5, flit_to(0)).out_port, kPortWest);
  EXPECT_EQ(wf.route(4, flit_to(0)).out_port, kPortNorth);
}

TEST_F(WestFirstTest, AdaptivePhasePicksLeastCongested) {
  int north_score = 10;
  int east_score = 1;
  WestFirstRouting wf(geom, [&](RouterId, int port) {
    if (port == kPortNorth) return north_score;
    if (port == kPortEast) return east_score;
    return 5;
  });
  // r8 (0,2) -> r3 (3,0): both E and N are productive.
  EXPECT_EQ(wf.route(8, flit_to(3)).out_port, kPortEast);
  east_score = 20;
  EXPECT_EQ(wf.route(8, flit_to(3)).out_port, kPortNorth);
}

TEST_F(WestFirstTest, AllPairsMinimalDelivery) {
  WestFirstRouting wf(geom);
  for (RouterId s = 0; s < 16; ++s) {
    for (RouterId d = 0; d < 16; ++d) {
      if (s == d) continue;
      RouterId here = s;
      int hops = 0;
      while (here != d) {
        const RouteDecision dec = wf.route(here, flit_to(d));
        ASSERT_GE(dec.out_port, 0);
        ASSERT_FALSE(is_local_port(dec.out_port));
        here = geom.neighbor(here, port_direction(dec.out_port));
        ++hops;
        ASSERT_LE(hops, 6);
      }
      EXPECT_EQ(hops, geom.hop_distance(s, d));
    }
  }
}

TEST_F(WestFirstTest, ProhibitedTurnsNeverTaken) {
  // Turn-model deadlock freedom: the two turns INTO west (N->W and S->W)
  // must never occur on any route.
  WestFirstRouting wf(geom);
  for (RouterId s = 0; s < 16; ++s) {
    for (RouterId d = 0; d < 16; ++d) {
      if (s == d) continue;
      RouterId here = s;
      Direction last = Direction::kLocal;
      while (here != d) {
        const RouteDecision dec = wf.route(here, flit_to(d));
        const Direction dir = port_direction(dec.out_port);
        if (dir == Direction::kWest) {
          EXPECT_TRUE(last == Direction::kLocal || last == Direction::kWest)
              << "illegal turn into west from " << to_string(last);
        }
        last = dir;
        here = geom.neighbor(here, dir);
      }
    }
  }
}

TEST_F(WestFirstTest, NetworkDeliversUnderWestFirst) {
  NocConfig cfg;
  Network net(cfg);
  net.use_west_first_routing();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 31;
  gp.total_requests = 300;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  Cycle c = 0;
  while (!gen.done() && c < 200000) {
    gen.step();
    net.step();
    ++c;
    if (c % 50 == 0) ASSERT_EQ(net.check_invariants(), "");
  }
  EXPECT_TRUE(gen.done());
}

TEST_F(WestFirstTest, AdaptiveSpreadsHotspotLoadAcrossPaths) {
  // Under x-y all r5->r3-ish traffic uses a single path; west-first with
  // congestion feedback spreads across E/N orders. Measure link usage
  // diversity for a fixed flow set.
  const auto run = [&](bool adaptive) {
    NocConfig cfg;
    Network net(cfg);
    if (adaptive) net.use_west_first_routing();
    int delivered = 0;
    net.set_delivery_callback([&](Cycle, const PacketInfo&, Cycle) { ++delivered; });
    for (int i = 0; i < 40; ++i) {
      PacketInfo info;
      info.id = net.next_packet_id();
      info.src_core = net.geometry().core_at(8, 0);   // r8 (0,2)
      info.dest_core = net.geometry().core_at(3, 0);  // r3 (3,0)
      info.src_router = 8;
      info.dest_router = 3;
      info.length = 3;
      while (!net.try_inject(info, {1, 2})) net.step();
      net.step();
    }
    net.run(800);
    // Count distinct mesh links used.
    int used = 0;
    for (const LinkRef& l : net.all_links()) {
      if (net.link(l.from, l.dir).stats().phits_sent > 0) ++used;
    }
    return std::make_pair(delivered, used);
  };
  const auto [xy_delivered, xy_links] = run(false);
  const auto [wf_delivered, wf_links] = run(true);
  EXPECT_EQ(xy_delivered, 40);
  EXPECT_EQ(wf_delivered, 40);
  EXPECT_GE(wf_links, xy_links);  // adaptive never uses fewer paths
}

TEST_F(WestFirstTest, RequiresHealthyTopology) {
  NocConfig cfg;
  Network net(cfg);
  net.disable_link({0, Direction::kEast});
  EXPECT_THROW(net.use_west_first_routing(), ContractViolation);
}

}  // namespace
}  // namespace htnoc
