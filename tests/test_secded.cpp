#include "ecc/secded.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace htnoc::ecc {
namespace {

class SecdedTest : public ::testing::Test {
 protected:
  const Secded& codec = secded();
};

TEST_F(SecdedTest, CleanRoundTrip) {
  for (const std::uint64_t d :
       {std::uint64_t{0}, ~std::uint64_t{0}, std::uint64_t{0xDEADBEEF12345678}}) {
    const Codeword72 cw = codec.encode(d);
    const DecodeResult r = codec.decode(cw);
    EXPECT_EQ(r.status, DecodeStatus::kClean);
    EXPECT_EQ(r.data, d);
    EXPECT_EQ(r.syndrome, 0);
    EXPECT_FALSE(needs_retransmission(r.status));
  }
}

TEST_F(SecdedTest, ExtractDataInvertsEncode) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t d = rng.next_u64();
    EXPECT_EQ(codec.extract_data(codec.encode(d)), d);
  }
}

// Property: every single-bit error in any of the 72 positions is corrected.
class SecdedSingleError : public ::testing::TestWithParam<unsigned> {};

TEST_P(SecdedSingleError, CorrectedAtEveryPosition) {
  const Secded& codec = secded();
  const unsigned pos = GetParam();
  Rng rng(pos * 977 + 13);
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t d = rng.next_u64();
    Codeword72 cw = codec.encode(d);
    cw.flip(pos);
    const DecodeResult r = codec.decode(cw);
    EXPECT_EQ(r.status, DecodeStatus::kCorrectedSingle) << "pos=" << pos;
    EXPECT_EQ(r.data, d) << "pos=" << pos;
    ASSERT_TRUE(r.corrected_position.has_value());
    EXPECT_EQ(*r.corrected_position, pos);
    EXPECT_FALSE(needs_retransmission(r.status));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPositions, SecdedSingleError,
                         ::testing::Range(0u, 72u));

// Property: every double-bit error is detected and never miscorrected —
// the exact ECC response the TASP trojan weaponizes.
TEST_F(SecdedTest, AllDoubleErrorsDetectedExhaustive) {
  const std::uint64_t d = 0xA5A5'5A5A'0F0F'F0F0ULL;
  const Codeword72 clean = codec.encode(d);
  for (unsigned i = 0; i < 72; ++i) {
    for (unsigned j = i + 1; j < 72; ++j) {
      Codeword72 cw = clean;
      cw.flip(i);
      cw.flip(j);
      const DecodeResult r = codec.decode(cw);
      EXPECT_EQ(r.status, DecodeStatus::kDetectedDouble)
          << "i=" << i << " j=" << j;
      EXPECT_TRUE(needs_retransmission(r.status));
    }
  }
}

TEST_F(SecdedTest, DoubleErrorsDetectedRandomData) {
  Rng rng(42);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t d = rng.next_u64();
    Codeword72 cw = codec.encode(d);
    const unsigned i = static_cast<unsigned>(rng.next_below(72));
    unsigned j;
    do {
      j = static_cast<unsigned>(rng.next_below(72));
    } while (j == i);
    cw.flip(i);
    cw.flip(j);
    EXPECT_TRUE(needs_retransmission(codec.decode(cw).status));
  }
}

TEST_F(SecdedTest, TripleErrorsNeverPassAsClean) {
  // Odd-weight >=3 errors either alias to a (wrong) "corrected single" — the
  // silent-corruption channel — or report as multiple. They must never look
  // clean.
  Rng rng(99);
  int sdc = 0;
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t d = rng.next_u64();
    Codeword72 cw = codec.encode(d);
    unsigned p[3];
    p[0] = static_cast<unsigned>(rng.next_below(72));
    do {
      p[1] = static_cast<unsigned>(rng.next_below(72));
    } while (p[1] == p[0]);
    do {
      p[2] = static_cast<unsigned>(rng.next_below(72));
    } while (p[2] == p[0] || p[2] == p[1]);
    for (const unsigned q : p) cw.flip(q);
    const DecodeResult r = codec.decode(cw);
    EXPECT_NE(r.status, DecodeStatus::kClean);
    EXPECT_NE(r.status, DecodeStatus::kDetectedDouble);
    if (r.status == DecodeStatus::kCorrectedSingle && r.data != d) ++sdc;
  }
  // Most triples mis-correct: this is precisely why a 3-bit payload trojan
  // causes silent data corruption instead of retransmission.
  EXPECT_GT(sdc, 0);
}

TEST_F(SecdedTest, ParityBitPositionsAreReserved) {
  for (unsigned pos : {0u, 1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    EXPECT_TRUE(Secded::is_check_position(pos)) << pos;
  }
  for (unsigned pos : {3u, 5u, 6u, 7u, 9u, 63u, 65u, 71u}) {
    EXPECT_FALSE(Secded::is_check_position(pos)) << pos;
  }
}

TEST_F(SecdedTest, DataPositionsAreDistinctAndNonCheck) {
  bool seen[72] = {};
  for (unsigned i = 0; i < Secded::kDataBits; ++i) {
    const unsigned pos = codec.position_of_data_bit(i);
    ASSERT_LT(pos, 72u);
    EXPECT_FALSE(Secded::is_check_position(pos));
    EXPECT_FALSE(seen[pos]);
    seen[pos] = true;
  }
}

TEST_F(SecdedTest, EncodedWordHasEvenTotalParity) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const Codeword72 cw = codec.encode(rng.next_u64());
    EXPECT_EQ(cw.popcount() % 2, 0);
  }
}

}  // namespace
}  // namespace htnoc::ecc
