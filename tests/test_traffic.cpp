#include "traffic/app_profile.hpp"

#include <gtest/gtest.h>

#include "traffic/generator.hpp"
#include "traffic/pattern.hpp"

namespace htnoc::traffic {
namespace {

class TrafficModelTest : public ::testing::Test {
 protected:
  MeshGeometry geom{4, 4, 4};
};

TEST_F(TrafficModelTest, ProfilesAreDistinctAndNamed) {
  const auto all = all_profiles();
  ASSERT_EQ(all.size(), 4u);
  std::set<std::string> names;
  for (const auto& p : all) names.insert(p.name);
  EXPECT_TRUE(names.contains("blackscholes"));
  EXPECT_TRUE(names.contains("facesim"));
  EXPECT_TRUE(names.contains("ferret"));
  EXPECT_TRUE(names.contains("fft"));
}

TEST_F(TrafficModelTest, LookupByNameAndUnknownThrows) {
  EXPECT_EQ(profile_by_name("fft").name, "fft");
  EXPECT_THROW((void)profile_by_name("doom"), ContractViolation);
}

TEST_F(TrafficModelTest, BlackscholesConcentratesOnRouter0) {
  // The Fig. 1 shape: router 0 is the busiest destination and demand decays
  // with distance.
  const AppTrafficModel model(geom, blackscholes_profile());
  const auto m = model.demand_matrix();
  double col0 = 0.0;
  double col15 = 0.0;
  for (int s = 0; s < 16; ++s) {
    col0 += m[static_cast<std::size_t>(s)][0];
    col15 += m[static_cast<std::size_t>(s)][15];
  }
  EXPECT_GT(col0, 4.0 * col15);
}

TEST_F(TrafficModelTest, DemandMatrixIsNormalized) {
  for (const auto& p : all_profiles()) {
    const AppTrafficModel model(geom, p);
    double total = 0.0;
    for (const auto& row : model.demand_matrix()) {
      for (const double v : row) total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << p.name;
  }
}

TEST_F(TrafficModelTest, SampledDestsMatchDemandShape) {
  const AppTrafficModel model(geom, blackscholes_profile());
  Rng rng(17);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 20000; ++i) {
    const NodeId d = model.pick_dest(37, rng);  // src core on router 9
    ASSERT_LT(d, 64);
    ASSERT_NE(d, 37);
    ++counts[geom.router_of_core(d)];
  }
  // Router 0 must dominate distant background routers even from far away.
  EXPECT_GT(counts[0], counts[15] * 2);
}

TEST_F(TrafficModelTest, LengthsWithinProfileBounds) {
  const auto p = fft_profile();
  const AppTrafficModel model(geom, p);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const int len = model.pick_length(rng);
    EXPECT_GE(len, p.min_len);
    EXPECT_LE(len, p.max_len);
  }
}

TEST_F(TrafficModelTest, MemAddressesWithinFootprint) {
  const auto p = ferret_profile();
  const AppTrafficModel model(geom, p);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t mem = model.pick_mem(rng);
    EXPECT_GE(mem, p.mem_base);
    EXPECT_LT(mem, p.mem_base + p.mem_span);
  }
}

TEST(Patterns, UniformAvoidsSelfAndCoversAll) {
  UniformRandom u(64);
  Rng rng(5);
  std::set<NodeId> seen;
  for (int i = 0; i < 5000; ++i) {
    const NodeId d = u.pick_dest(7, rng);
    EXPECT_NE(d, 7);
    seen.insert(d);
  }
  EXPECT_EQ(seen.size(), 63u);
}

TEST(Patterns, TransposeMirrorsCoordinates) {
  MeshGeometry geom{4, 4, 4};
  Transpose t(geom);
  Rng rng(1);
  // Core 4 is on router 1 = (1,0); transpose router = (0,1) = r4.
  const NodeId d = t.pick_dest(4, rng);
  EXPECT_EQ(geom.router_of_core(d), 4);
  EXPECT_EQ(geom.local_slot_of_core(d), 0);
}

TEST(Patterns, BitComplementReflects) {
  BitComplement b(64);
  Rng rng(1);
  EXPECT_EQ(b.pick_dest(0, rng), 63);
  EXPECT_EQ(b.pick_dest(63, rng), 0);
  EXPECT_EQ(b.pick_dest(10, rng), 53);
}

TEST(Patterns, HotspotFractionRespected) {
  Hotspot h(64, 0, 0.5);
  Rng rng(9);
  int hot = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (h.pick_dest(30, rng) == 0) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.5, 0.03);
}

class GeneratorTest : public ::testing::Test {
 protected:
  NocConfig cfg;
  Network net{cfg};
  DeliveryDispatcher dispatcher;

  void SetUp() override { dispatcher.install(net); }
};

TEST_F(GeneratorTest, CompletesFixedWorkload) {
  AppTrafficModel model(net.geometry(), blackscholes_profile());
  TrafficGenerator::Params p;
  p.seed = 7;
  p.total_requests = 100;
  TrafficGenerator gen(net, model, p, dispatcher);
  Cycle c = 0;
  while (!gen.done() && c < 100000) {
    gen.step();
    net.step();
    ++c;
  }
  EXPECT_TRUE(gen.done());
  EXPECT_EQ(gen.stats().requests_generated, 100u);
  EXPECT_EQ(gen.stats().packets_delivered, gen.stats().packets_injected);
  EXPECT_GT(gen.stats().replies_generated, 0u);
  EXPECT_GT(gen.stats().avg_latency(), 0.0);
}

TEST_F(GeneratorTest, DeterministicAcrossRuns) {
  auto run_once = [&]() {
    Network n2{cfg};
    DeliveryDispatcher d2;
    d2.install(n2);
    AppTrafficModel model(n2.geometry(), fft_profile());
    TrafficGenerator::Params p;
    p.seed = 99;
    p.total_requests = 50;
    TrafficGenerator gen(n2, model, p, d2);
    Cycle c = 0;
    while (!gen.done() && c < 100000) {
      gen.step();
      n2.step();
      ++c;
    }
    return std::make_pair(c, gen.stats().latency_sum);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(GeneratorTest, RestrictedCoreSetOnlyInjectsThere) {
  AppTrafficModel model(net.geometry(), blackscholes_profile());
  TrafficGenerator::Params p;
  p.seed = 3;
  p.total_requests = 30;
  p.cores = {5, 6};
  p.enable_replies = false;
  TrafficGenerator gen(net, model, p, dispatcher);
  Cycle c = 0;
  while (!gen.done() && c < 200000) {
    gen.step();
    net.step();
    ++c;
  }
  EXPECT_TRUE(gen.done());
  for (NodeId core = 0; core < 64; ++core) {
    const auto injected = net.ni(core).stats().packets_injected;
    if (core == 5 || core == 6) {
      EXPECT_GT(injected, 0u) << core;
    } else {
      EXPECT_EQ(injected, 0u) << core;
    }
  }
}

TEST_F(GeneratorTest, RequeueReinjectsWithFreshId) {
  AppTrafficModel model(net.geometry(), blackscholes_profile());
  TrafficGenerator::Params p;
  p.seed = 11;
  p.total_requests = 1;
  p.enable_replies = false;
  TrafficGenerator gen(net, model, p, dispatcher);
  // Generate + inject the single request.
  Cycle c = 0;
  while (gen.stats().packets_injected == 0 && c < 10000) {
    gen.step();
    net.step();
    ++c;
  }
  ASSERT_EQ(gen.outstanding(), 1u);
  // Simulate a purge of that packet.
  const PacketId original = net.next_packet_id() - 1;
  for (const PacketId dropped : net.purge_packet(original)) {
    gen.requeue(dropped);
  }
  EXPECT_EQ(gen.outstanding(), 0u);
  EXPECT_EQ(gen.backlog_size(), 1u);
  // It re-injects and completes.
  while (!gen.done() && c < 20000) {
    gen.step();
    net.step();
    ++c;
  }
  EXPECT_TRUE(gen.done());
}

}  // namespace
}  // namespace htnoc::traffic
