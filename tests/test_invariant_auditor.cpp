// The invariant auditor must (a) stay silent across every legitimate
// scenario the simulator can produce — attacks, mitigation, TDM, purges,
// transient faults — and (b) actually fire for each violation class, shown
// both by direct ledger manipulation and by the HTNOC_MUTATION_* mutant
// builds (see verify/mutation.hpp and scripts/mutation_check.sh).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "sim/simulator.hpp"
#include "traffic/generator.hpp"
#include "verify/campaign.hpp"
#include "verify/mutation.hpp"

namespace htnoc {
namespace {

sim::SimConfig audited_config() {
  sim::SimConfig sc;
  sc.audit.enabled = true;
  return sc;
}

/// The clean-scenario suite runs on every fabric family: the auditor's
/// silence must be a property of the protocol, not of the paper's 4x4
/// concentrated mesh.
struct FabricParam {
  const char* label;
  TopologyKind kind;
  int width = 4;
  int height = 4;
  int concentration = 1;
};

constexpr FabricParam kFabrics[] = {
    {"cmesh4x4", TopologyKind::kConcentratedMesh, 4, 4, 4},
    {"mesh8x8", TopologyKind::kMesh, 8, 8, 1},
    {"torus8x8", TopologyKind::kTorus, 8, 8, 1},
};

sim::SimConfig audited_config(const FabricParam& f) {
  sim::SimConfig sc = audited_config();
  sc.noc.topology = f.kind;
  sc.noc.mesh_width = f.width;
  sc.noc.mesh_height = f.height;
  sc.noc.concentration = f.concentration;
  return sc;
}

sim::AttackSpec dest_attack(Cycle enable_at) {
  sim::AttackSpec a;
  a.link = {1, Direction::kWest};  // r1 -> r0, the hotspot's feeder
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = enable_at;
  return a;
}

/// Drive `cycles` of profile traffic through an audited simulator;
/// returns the set of violation kinds (with the report in the test log).
std::set<verify::ViolationKind> run_audited(sim::SimConfig sc, Cycle cycles,
                                            double rate_scale = 1.0,
                                            Cycle purge_every = 0) {
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppProfile profile = traffic::blackscholes_profile();
  profile.injection_rate *= rate_scale;
  traffic::AppTrafficModel model(net.geometry(), profile);
  traffic::TrafficGenerator::Params gp;
  gp.seed = 99;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  simulator.set_drop_callback([&](PacketId id) { gen.requeue(id); });

  for (Cycle c = 0; c < cycles; ++c) {
    if (purge_every != 0 && c > 50 && c % purge_every == 0) {
      const PacketId hi = net.peek_next_packet_id();
      if (hi > 1) {
        for (const PacketId dropped :
             net.purge_packet(1 + static_cast<PacketId>(c) % (hi - 1))) {
          gen.requeue(dropped);
        }
      }
    }
    gen.step();
    simulator.step();
  }
  const verify::NetworkInvariantAuditor* aud = simulator.auditor();
  EXPECT_GT(aud->audits_run(), 0u);
  std::set<verify::ViolationKind> kinds;
  for (const verify::Violation& v : aud->violations()) kinds.insert(v.kind);
  EXPECT_TRUE(aud->clean() || !kinds.empty());
  if (!aud->clean()) ADD_FAILURE() << aud->report();
  return kinds;
}

// ---------------------------------------------------------------------------
// Clean scenarios: the auditor must not cry wolf.
// ---------------------------------------------------------------------------

class InvariantAuditorFabrics
    : public ::testing::TestWithParam<FabricParam> {};

TEST_P(InvariantAuditorFabrics, IdleNetwork) {
  sim::Simulator simulator(audited_config(GetParam()));
  simulator.run(200);
  EXPECT_TRUE(simulator.auditor()->clean()) << simulator.auditor()->report();
  EXPECT_EQ(simulator.auditor()->flits_tracked(), 0u);
}

TEST_P(InvariantAuditorFabrics, LoadedTraffic) {
  run_audited(audited_config(GetParam()), 600);
}

TEST_P(InvariantAuditorFabrics, AttackNoMitigation) {
  sim::SimConfig sc = audited_config(GetParam());
  sc.attacks.push_back(dest_attack(50));
  run_audited(std::move(sc), 700);
}

TEST_P(InvariantAuditorFabrics, AttackWithLOb) {
  sim::SimConfig sc = audited_config(GetParam());
  sc.mode = sim::MitigationMode::kLOb;
  sc.attacks.push_back(dest_attack(50));
  run_audited(std::move(sc), 700);
}

TEST_P(InvariantAuditorFabrics, AttackWithReroutePurges) {
  sim::SimConfig sc = audited_config(GetParam());
  sc.mode = sim::MitigationMode::kReroute;
  sc.reroute_latency = 60;
  sc.attacks.push_back(dest_attack(50));
  run_audited(std::move(sc), 900);
}

TEST_P(InvariantAuditorFabrics, SpontaneousPurgeStorm) {
  run_audited(audited_config(GetParam()), 700, 1.0, /*purge_every=*/53);
}

INSTANTIATE_TEST_SUITE_P(Fabrics, InvariantAuditorFabrics,
                         ::testing::ValuesIn(kFabrics),
                         [](const auto& info) {
                           return std::string(info.param.label);
                         });

TEST(InvariantAuditorClean, HeavyTrafficFullStepping) {
  sim::SimConfig sc = audited_config();
  sc.noc.active_step = false;
  run_audited(std::move(sc), 500, 2.0);
}

TEST(InvariantAuditorClean, TdmPerVcBuffers) {
  sim::SimConfig sc = audited_config();
  sc.noc.tdm_enabled = true;
  sc.noc.retrans_scheme = RetransmissionScheme::kPerVcBuffer;
  run_audited(std::move(sc), 500);
}

TEST(InvariantAuditorClean, TransientFaults) {
  sim::SimConfig sc = audited_config();
  sc.transient_phit_fault_prob = 1e-3;
  run_audited(std::move(sc), 600);
}

TEST(InvariantAuditorClean, AuditPeriodSampling) {
  sim::SimConfig sc = audited_config();
  sc.audit.period = 7;
  sim::Simulator simulator(std::move(sc));
  simulator.run(100);
  EXPECT_TRUE(simulator.auditor()->clean());
  EXPECT_LT(simulator.auditor()->audits_run(), 100u);
}

// ---------------------------------------------------------------------------
// Forced violations: drive the observer interface with lies and check each
// class fires. (The mutation builds prove the same end-to-end through real
// datapath bugs.)
// ---------------------------------------------------------------------------

class ForcedViolationTest : public ::testing::Test {
 protected:
  NocConfig cfg;
  Network net{cfg};
  verify::AuditConfig acfg{.enabled = true};
  verify::NetworkInvariantAuditor aud{net, acfg};

  PacketInfo packet(NodeId src, NodeId dest, int len) {
    PacketInfo info;
    info.id = net.next_packet_id();
    info.src_core = src;
    info.dest_core = dest;
    info.src_router = net.geometry().router_of_core(src);
    info.dest_router = net.geometry().router_of_core(dest);
    info.length = len;
    return info;
  }

  [[nodiscard]] std::set<verify::ViolationKind> kinds() const {
    std::set<verify::ViolationKind> k;
    for (const verify::Violation& v : aud.violations()) k.insert(v.kind);
    return k;
  }
};

TEST_F(ForcedViolationTest, GhostInjectionReportsFlitLoss) {
  net.set_audit(&aud);
  PacketInfo ghost = packet(0, 63, 3);
  aud.on_packet_injected(0, ghost);  // ledger says resident; fabric is empty
  net.step();
  aud.on_cycle_end();
  EXPECT_TRUE(kinds().contains(verify::ViolationKind::kFlitLoss))
      << aud.report();
}

TEST_F(ForcedViolationTest, UntrackedResidentReportsUnknownFlit) {
  // Inject for real but without the audit installed: the census finds flits
  // the ledger never saw.
  const PacketInfo info = packet(0, 63, 3);
  ASSERT_TRUE(net.try_inject(info, std::vector<std::uint64_t>(2, 1)));
  net.set_audit(&aud);
  net.step();
  aud.on_cycle_end();
  EXPECT_TRUE(kinds().contains(verify::ViolationKind::kUnknownFlit))
      << aud.report();
}

TEST_F(ForcedViolationTest, DoubleDeliveryReported) {
  const PacketInfo info = packet(0, 1, 1);
  aud.on_packet_injected(0, info);
  Flit f;
  f.packet = info.id;
  f.seq = 0;
  aud.on_flit_delivered(5, f);
  aud.on_flit_delivered(5, f);
  EXPECT_TRUE(kinds().contains(verify::ViolationKind::kDuplicateDelivery));
}

TEST_F(ForcedViolationTest, FalsePurgeReportsPurgeLeak) {
  net.set_audit(&aud);
  const PacketInfo info = packet(0, 63, 4);
  ASSERT_TRUE(net.try_inject(info, std::vector<std::uint64_t>(3, 2)));
  net.run(4);
  // Claim the packet was purged; its flits are in fact still resident.
  aud.on_flits_purged(net.now(), info.id, {});
  net.step();
  aud.on_cycle_end();
  EXPECT_TRUE(kinds().contains(verify::ViolationKind::kPurgeLeak))
      << aud.report();
}

TEST_F(ForcedViolationTest, ViolationReportIsDescriptive) {
  net.set_audit(&aud);
  PacketInfo ghost = packet(2, 50, 2);
  aud.on_packet_injected(0, ghost);
  net.step();
  aud.on_cycle_end();
  ASSERT_FALSE(aud.clean());
  const std::string text = aud.report();
  EXPECT_NE(text.find("flit_loss"), std::string::npos) << text;
  EXPECT_NE(text.find("packet"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Mutation self-test: in an HTNOC_MUTATION_* build, a targeted scenario and
// a small fixed-seed campaign must both catch the compiled bug.
// ---------------------------------------------------------------------------

TEST(MutationSelfTest, TargetedScenarioTripsExpectedKind) {
  if (verify::compiled_mutation()[0] == '\0') {
    GTEST_SKIP() << "clean build: no mutation compiled in";
  }
  sim::SimConfig sc = audited_config();
  sc.audit.deadlock_horizon = 120;  // catch starvation inside the run
  sc.attacks.push_back(dest_attack(40));
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppProfile profile = traffic::blackscholes_profile();
  profile.injection_rate *= 1.2;
  traffic::AppTrafficModel model(net.geometry(), profile);
  traffic::TrafficGenerator::Params gp;
  gp.seed = 7;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  simulator.set_drop_callback([&](PacketId id) { gen.requeue(id); });

  // Purge storms are what expose the purge-path mutation; for the others
  // they only add noise (and with DROP_ACK a purge of a delivered-but-
  // unACKed packet trips a credit contract check before the auditor gets
  // to report — the campaign still flags that run, but this test wants the
  // auditor's own verdict).
  const bool storm =
      verify::expected_violation() == verify::ViolationKind::kPurgeLeak;
  for (Cycle c = 0; c < 900; ++c) {
    if (storm && c > 60 && c % 13 == 0) {
      // Purge a recently injected packet — one old enough to have flits in
      // retransmission slots but young enough to still be in flight.
      const PacketId hi = net.peek_next_packet_id();
      const PacketId victim =
          hi > 9 ? hi - 1 - static_cast<PacketId>(c) % 8 : PacketId{1};
      if (hi > 1) {
        for (const PacketId dropped : net.purge_packet(victim)) {
          gen.requeue(dropped);
        }
      }
    }
    gen.step();
    simulator.step();
  }

  const verify::NetworkInvariantAuditor* aud = simulator.auditor();
  ASSERT_FALSE(aud->clean())
      << "mutation " << verify::compiled_mutation() << " was not caught";
  std::set<verify::ViolationKind> kinds;
  for (const verify::Violation& v : aud->violations()) kinds.insert(v.kind);
  EXPECT_TRUE(kinds.contains(verify::expected_violation()))
      << "mutation " << verify::compiled_mutation() << " expected "
      << verify::to_string(verify::expected_violation()) << "; got:\n"
      << aud->report();
}

TEST(MutationSelfTest, CampaignCatchesMutationWithReproSpec) {
  if (verify::compiled_mutation()[0] == '\0') {
    GTEST_SKIP() << "clean build: no mutation compiled in";
  }
  verify::CampaignSpec spec;
  spec.seed = 0xC0FFEE;
  spec.scenarios = 80;
  spec.threads = 2;
  spec.audit.deadlock_horizon = 150;
  const verify::CampaignResult result = verify::FaultCampaign(spec).run();
  ASSERT_GT(result.failures(), 0u)
      << "campaign missed mutation " << verify::compiled_mutation();

  // Every failure carries a parseable repro spec, and replaying it
  // reproduces the identical outcome.
  for (const verify::ScenarioResult& s : result.scenarios) {
    if (s.ok) continue;
    const std::string line = verify::format_repro({spec.seed, s.index});
    const auto parsed = verify::parse_repro(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(parsed->seed, spec.seed);
    EXPECT_EQ(parsed->index, s.index);
    const verify::ScenarioResult replay =
        verify::FaultCampaign::run_scenario(spec, s.index);
    EXPECT_FALSE(replay.ok);
    EXPECT_EQ(replay.error, s.error);
    EXPECT_EQ(replay.descriptor, s.descriptor);
    break;  // one replay is enough; the determinism test covers the rest
  }
}

}  // namespace
}  // namespace htnoc
