// Spec JSON codecs: the round-trip fixed point (parse -> serialize ->
// parse reaches a fixed point in one step), equivalence with the CLI
// attack presets, and a rejection corpus — unknown keys, wrong types and
// out-of-range values must all fail strict parsing with a path-tagged
// SpecError, for both the sweep and the campaign schema.
#include "sweep/spec_json.hpp"

#include <gtest/gtest.h>

#include <string>

#include "sweep/spec.hpp"
#include "verify/campaign_json.hpp"

namespace htnoc {
namespace {

using json::parse;
using json::to_string;
using sweep::SpecError;

std::string canon_sweep(const std::string& text) {
  return to_string(sweep::sweep_spec_to_json(sweep::parse_sweep_spec(text)));
}

std::string canon_campaign(const std::string& text) {
  return to_string(
      verify::campaign_spec_to_json(verify::parse_campaign_spec(text)));
}

TEST(SweepSpecJson, DefaultsRoundTrip) {
  const std::string once = canon_sweep("{}");
  EXPECT_EQ(canon_sweep(once), once) << once;
  // The canonical form is complete: every supported scalar appears.
  for (const char* key :
       {"modes", "attacks", "profiles", "rates", "replicates", "seed",
        "cycles", "requests", "cycle_budget", "probe_period",
        "primary_domain", "noc"}) {
    std::string needle("\"");
    needle += key;
    needle += '"';
    EXPECT_NE(once.find(needle), std::string::npos)
        << "missing " << key << " in " << once;
  }
}

TEST(SweepSpecJson, FullDocumentFixedPoint) {
  const char* doc = R"({
    "modes": ["none", "lob", "reroute"],
    "attacks": ["none", "single", "mem", "multi"],
    "profiles": ["blackscholes", "fft"],
    "rates": [0.5, 1.0, 1.5],
    "replicates": 4,
    "seed": "0xdead5eed",
    "cycles": 2500,
    "probe_period": 50,
    "primary_domain": "d2",
    "trace": {"enabled": true, "capacity": 4096},
    "background": {"profile": "fft", "rate": 0.25, "domain": "d2"},
    "noc": {"topology": "mesh", "mesh_width": 6, "mesh_height": 4,
            "concentration": 1, "vcs_per_port": 4, "buffer_depth": 8,
            "ecc": "parity", "tdm": false, "step_threads": 2}
  })";
  const std::string once = canon_sweep(doc);
  EXPECT_EQ(canon_sweep(once), once);

  const sweep::SweepSpec spec = sweep::parse_sweep_spec(doc);
  EXPECT_EQ(spec.modes.size(), 3u);
  EXPECT_EQ(spec.attack_scenarios.size(), 4u);
  EXPECT_EQ(spec.base_seed, 0xDEAD5EEDull);
  EXPECT_EQ(spec.base.noc.mesh_width, 6);
  EXPECT_EQ(spec.base.noc.step_threads, 2);
  EXPECT_TRUE(spec.base.trace.enabled);
  EXPECT_EQ(spec.base.trace.capacity, 4096u);
  ASSERT_TRUE(spec.background.has_value());
  EXPECT_DOUBLE_EQ(spec.background->injection_rate, 0.25);
  EXPECT_EQ(spec.primary_domain, TdmDomain::kD2);
}

TEST(SweepSpecJson, PresetsMatchExplicitImplants) {
  // Serializing a preset and re-parsing the explicit implant form must
  // build the same scenario — the named presets are pure shorthand.
  const sweep::SweepSpec named =
      sweep::parse_sweep_spec(R"({"attacks": ["multi"]})");
  const std::string expanded = to_string(sweep::sweep_spec_to_json(named));
  const sweep::SweepSpec relo = sweep::parse_sweep_spec(expanded);
  ASSERT_EQ(relo.attack_scenarios.size(), 1u);
  ASSERT_EQ(relo.attack_scenarios[0].attacks.size(), 3u);
  EXPECT_EQ(relo.attack_scenarios[0].attacks[1].link.from, 2);
  EXPECT_EQ(relo.attack_scenarios[0].attacks[1].link.dir, Direction::kWest);
  EXPECT_EQ(to_string(sweep::sweep_spec_to_json(relo)), expanded);
}

TEST(SweepSpecJson, ImplantEccFollowsNocBlockRegardlessOfOrder) {
  // The attacker knows the link's ECC scheme (Sec. III-B): implants are
  // tuned to noc.ecc even when "attacks" precedes "noc" in the document.
  const sweep::SweepSpec spec = sweep::parse_sweep_spec(
      R"({"attacks": ["single"], "noc": {"ecc": "parity"}})");
  ASSERT_EQ(spec.attack_scenarios.size(), 1u);
  ASSERT_EQ(spec.attack_scenarios[0].attacks.size(), 1u);
  EXPECT_EQ(spec.attack_scenarios[0].attacks[0].tasp.ecc,
            EccScheme::kParity);
}

TEST(SweepSpecJson, RejectionCorpus) {
  const char* corpus[] = {
      // Unknown keys, at every level.
      R"({"bogus": 1})",
      R"({"noc": {"bogus": 1}})",
      R"({"attacks": [{"name": "x", "implants": [], "bogus": 1}]})",
      R"({"background": {"profile": "fft", "bogus": 1}})",
      R"({"trace": {"bogus": true}})",
      // Wrong types.
      R"({"modes": "none"})",
      R"({"modes": [1]})",
      R"({"rates": [true]})",
      R"({"replicates": "three"})",
      R"({"noc": "cmesh"})",
      R"({"noc": {"tdm": "yes"}})",
      R"({"seed": 1.5})",
      R"({"background": 7})",
      // Out-of-range / unknown values.
      R"({"modes": ["teleport"]})",
      R"({"attacks": ["nuke"]})",
      R"({"profiles": ["solitaire"]})",
      R"({"rates": [0.0]})",
      R"({"rates": [-1.0]})",
      R"({"replicates": 0})",
      R"({"cycles": 0})",
      R"({"noc": {"topology": "hypercube"}})",
      R"({"noc": {"mesh_width": 1}})",
      R"({"noc": {"mesh_width": 65}})",
      R"({"noc": {"step_threads": 0}})",
      R"({"noc": {"step_threads": 257}})",
      R"({"noc": {"vcs_per_port": 17}})",
      R"({"primary_domain": "d3"})",
      R"({"background": {"rate": 11.0}})",
      // Structurally invalid configurations (NocConfig::validate()).
      R"({"noc": {"topology": "mesh", "concentration": 4}})",
      R"({"noc": {"tdm": true, "vcs_per_port": 3}})",
      // Empty axes make an empty grid.
      R"({"modes": []})",
      R"({"profiles": []})",
      R"({"rates": []})",
      // Not even JSON.
      "{",
      R"({"modes": ["none"],})",
  };
  for (const char* doc : corpus) {
    EXPECT_THROW((void)sweep::parse_sweep_spec(doc), std::exception)
        << "accepted: " << doc;
  }
}

TEST(SweepSpecJson, ErrorsNameTheOffendingPath) {
  try {
    (void)sweep::parse_sweep_spec(R"({"noc": {"step_threads": 0}})");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("noc.step_threads"),
              std::string::npos)
        << e.what();
  }
}

TEST(CampaignSpecJson, RoundTripFixedPoint) {
  const char* doc = R"({
    "seed": "0x20260807",
    "scenarios": 500,
    "step_threads": 2,
    "audit_period": 128,
    "topologies": ["cmesh", "mesh", "torus"]
  })";
  const std::string once = canon_campaign(doc);
  EXPECT_EQ(canon_campaign(once), once);

  const verify::CampaignSpec spec = verify::parse_campaign_spec(doc);
  EXPECT_EQ(spec.seed, 0x20260807ull);
  EXPECT_EQ(spec.scenarios, 500u);
  EXPECT_EQ(spec.step_threads, 2);
  EXPECT_EQ(spec.audit.period, 128u);
  ASSERT_EQ(spec.topologies.size(), 3u);
  EXPECT_EQ(spec.topologies[2], TopologyKind::kTorus);
}

TEST(CampaignSpecJson, DefaultsRoundTrip) {
  const std::string once = canon_campaign("{}");
  EXPECT_EQ(canon_campaign(once), once) << once;
}

TEST(CampaignSpecJson, RejectionCorpus) {
  const char* corpus[] = {
      R"({"bogus": 1})",
      // The execution knob lives in the submission envelope, not the spec.
      R"({"threads": 4})",
      R"({"jobs": 4})",
      R"({"seed": -1})",
      R"({"scenarios": 0})",
      R"({"scenarios": "many"})",
      R"({"step_threads": 0})",
      R"({"step_threads": 257})",
      R"({"audit_period": 0})",
      R"({"topologies": "cmesh"})",
      R"({"topologies": ["ring"]})",
      R"([])",
  };
  for (const char* doc : corpus) {
    EXPECT_THROW((void)verify::parse_campaign_spec(doc), std::exception)
        << "accepted: " << doc;
  }
}

}  // namespace
}  // namespace htnoc
