// The latency-auditor baseline and the paper's critique of it: it can see
// slow-downs, but a TASP that *stops* the targeted flow produces no late
// deliveries to observe, and benign bursts look like attacks.
#include <gtest/gtest.h>

#include "mitigation/latency_auditor.hpp"
#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace htnoc::mitigation {
namespace {

TEST(LatencyAuditor, LearnsBaselineDuringWarmup) {
  LatencyAuditor aud;
  for (int i = 0; i < 300; ++i) aud.observe(i, 20);
  EXPECT_NEAR(aud.baseline(), 20.0, 1.0);
  EXPECT_FALSE(aud.alarmed());
}

TEST(LatencyAuditor, AlarmsOnSustainedLatencyJump) {
  LatencyAuditor aud;
  Cycle t = 0;
  for (int i = 0; i < 300; ++i) aud.observe(++t, 20);
  for (int i = 0; i < 8; ++i) aud.observe(++t, 200);
  EXPECT_TRUE(aud.alarmed());
  EXPECT_EQ(aud.stats().alarms, 1u);
  EXPECT_GT(aud.stats().first_alarm_at, 300u);
}

TEST(LatencyAuditor, IsolatedSpikesDoNotAlarm) {
  LatencyAuditor aud;
  Cycle t = 0;
  for (int i = 0; i < 300; ++i) aud.observe(++t, 20);
  for (int i = 0; i < 50; ++i) {
    aud.observe(++t, i % 5 == 0 ? 150 : 21);  // scattered outliers
  }
  EXPECT_FALSE(aud.alarmed());
  EXPECT_GT(aud.stats().over_threshold, 0u);
}

TEST(LatencyAuditor, AlarmClearsOnRecovery) {
  LatencyAuditor aud;
  Cycle t = 0;
  for (int i = 0; i < 300; ++i) aud.observe(++t, 20);
  for (int i = 0; i < 10; ++i) aud.observe(++t, 200);
  ASSERT_TRUE(aud.alarmed());
  for (int i = 0; i < 5; ++i) aud.observe(++t, 21);
  EXPECT_FALSE(aud.alarmed());
}

TEST(LatencyAuditor, RejectsBadParams) {
  LatencyAuditor::Params p;
  p.threshold_factor = 0.5;
  EXPECT_THROW(LatencyAuditor{p}, ContractViolation);
  LatencyAuditor::Params q;
  q.baseline_alpha = 0.0;
  EXPECT_THROW(LatencyAuditor{q}, ContractViolation);
}

/// End-to-end: the blind spot. The TASP wedges the targeted flow entirely —
/// those packets never deliver, so the auditor (watching deliveries) sees
/// only the surviving traffic and fires late or never, while the
/// syndrome-based threat detector identifies the link within tens of cycles.
TEST(LatencyAuditor, MissesAFullWedgeThatThreatDetectorCatches) {
  sim::SimConfig sc;
  sc.mode = sim::MitigationMode::kLOb;
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = 2000;
  sc.attacks.push_back(a);
  // Give L-Ob only a method that cannot hide the dest field, so the wedge
  // persists and retransmissions keep flowing (we want the detector's
  // *classification*, not its cure, for this comparison).
  sc.lob.sequence = {{ObfMethod::kInvert, ObfGranularity::kPayload}};
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  LatencyAuditor auditor;
  disp.add_listener([&](Cycle now, const PacketInfo&, Cycle lat) {
    auditor.observe(now, lat);
  });
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 29;
  traffic::TrafficGenerator gen(net, model, gp, disp);

  Cycle detector_found_at = 0;
  for (Cycle c = 0; c < 4000; ++c) {
    gen.step();
    simulator.step();
    if (detector_found_at == 0 &&
        simulator.detector(0).classification(
            direction_port(Direction::kSouth)) ==
            mitigation::LinkThreatClass::kTrojan) {
      detector_found_at = c;
    }
  }
  ASSERT_GT(detector_found_at, 0u);
  EXPECT_LT(detector_found_at, 2200u);  // within ~200 cycles of the attack
  // The auditor either never alarmed, or alarmed later than the detector.
  if (auditor.stats().alarms > 0) {
    EXPECT_GT(auditor.stats().first_alarm_at, detector_found_at);
  }
}

}  // namespace
}  // namespace htnoc::mitigation
