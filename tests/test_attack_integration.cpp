// End-to-end reproduction of the paper's DoS mechanics (Sec. V-B2, Fig. 11):
// a single TASP trojan NACK-loops targeted flits, back-pressure builds,
// and most of the chip deadlocks — while a trojan-free run stays healthy.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace htnoc::sim {
namespace {

struct RunResult {
  Network::UtilizationSample before;  // just before killsw
  Network::UtilizationSample after;   // 500 cycles after killsw
  std::uint64_t delivered_before = 0;
  std::uint64_t delivered_after = 0;
  std::uint64_t trojan_injections = 0;
};

RunResult run_attack(bool enable_attack) {
  SimConfig sc;
  AttackSpec a;
  a.link = {4, Direction::kNorth};  // the x-dimension feeder into router 0
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = enable_attack ? 1500 : 100000000ULL;
  sc.attacks.push_back(a);
  sc.mode = MitigationMode::kNone;
  Simulator sim(std::move(sc));
  Network& net = sim.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 1;
  traffic::TrafficGenerator gen(net, model, gp, disp);

  RunResult res;
  for (Cycle c = 0; c < 2000; ++c) {
    gen.step();
    sim.step();
    if (c == 1499) {
      res.before = net.sample_utilization();
      res.delivered_before = gen.stats().packets_delivered;
    }
  }
  res.after = net.sample_utilization();
  res.delivered_after =
      gen.stats().packets_delivered - res.delivered_before;
  res.trojan_injections = sim.tasp(0).stats().injections;
  return res;
}

TEST(AttackIntegration, BaselineStaysHealthy) {
  const RunResult r = run_attack(false);
  EXPECT_EQ(r.trojan_injections, 0u);
  EXPECT_EQ(r.after.routers_with_blocked_port, 0);
  EXPECT_EQ(r.after.routers_all_cores_full, 0);
  EXPECT_GT(r.delivered_after, 300u);  // healthy throughput over 500 cycles
}

TEST(AttackIntegration, SingleTaspCollapsesTheNetwork) {
  const RunResult r = run_attack(true);
  EXPECT_GT(r.trojan_injections, 10u);
  // Paper: back pressure reaches 68% (11/16) of routers within 50-100
  // cycles; by 1500 cycles 81% of injection ports are dead. At t+500 we
  // already demand the bulk of that collapse.
  EXPECT_GE(r.after.routers_with_blocked_port, 10);
  EXPECT_GE(r.after.routers_majority_cores_full, 6);
  // Throughput collapse vs the healthy baseline period.
  EXPECT_LT(r.delivered_after, r.delivered_before / 4);
  // Buffer utilization grew substantially (Fig. 11a input-port curve).
  EXPECT_GT(r.after.input_port_flits, r.before.input_port_flits * 3);
}

TEST(AttackIntegration, UntargetedTrafficLinkSeesNoInjections) {
  // A trojan tuned to a dest that never crosses its link stays in Active
  // state without ever attacking.
  SimConfig sc;
  AttackSpec a;
  a.link = {4, Direction::kNorth};   // carries column-0 northbound traffic
  a.tasp.kind = trojan::TargetKind::kDestSrc;
  a.tasp.target_dest = 12;  // r12 is south of r4: never northbound via r4->N
  a.tasp.target_src = 0;
  a.enable_killsw_at = 0;
  sc.attacks.push_back(a);
  Simulator sim(std::move(sc));
  Network& net = sim.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 4;
  gp.total_requests = 300;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  Cycle c = 0;
  while (!gen.done() && c < 200000) {
    gen.step();
    sim.step();
    ++c;
  }
  EXPECT_TRUE(gen.done());
  EXPECT_EQ(sim.tasp(0).stats().injections, 0u);
  EXPECT_GT(sim.tasp(0).stats().flits_inspected, 0u);
}

TEST(AttackIntegration, VcTargetedTrojanAlsoWedges) {
  SimConfig sc;
  AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kVc;
  a.tasp.target_vc = 0;  // injection VC class of requests
  a.enable_killsw_at = 1000;
  sc.attacks.push_back(a);
  Simulator sim(std::move(sc));
  Network& net = sim.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 5;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  for (Cycle c = 0; c < 2500; ++c) {
    gen.step();
    sim.step();
  }
  EXPECT_GT(sim.tasp(0).stats().injections, 0u);
  EXPECT_GT(net.sample_utilization().routers_with_blocked_port, 0);
}

TEST(AttackIntegration, SdcVariantCorruptsSilentlyWithoutDos) {
  // The prior-work 3-bit SDC trojan (Yu & Frey style) corrupts data but
  // does not create back-pressure — the distinction motivating TASP.
  SimConfig sc;
  AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.tasp.pattern = trojan::PayloadPattern::kTripleSdc;
  a.enable_killsw_at = 500;
  sc.attacks.push_back(a);
  Simulator sim(std::move(sc));
  Network& net = sim.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 6;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  for (Cycle c = 0; c < 3000; ++c) {
    gen.step();
    sim.step();
  }
  EXPECT_GT(sim.tasp(0).stats().injections, 5u);
  // No blocked ports: most triple faults alias to bogus corrections and the
  // flits sail through corrupted.
  EXPECT_LE(net.sample_utilization().routers_with_blocked_port, 2);
  std::uint64_t sdc = 0;
  for (RouterId r = 0; r < 16; ++r) {
    for (int p = 0; p < net.router(r).num_ports(); ++p) {
      sdc += net.router(r).input(p).stats().silent_corruptions;
    }
  }
  EXPECT_GT(sdc, 0u);
}

}  // namespace
}  // namespace htnoc::sim
