#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace htnoc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(77);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(77);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(9);
  for (const std::uint64_t bound : {1ULL, 2ULL, 7ULL, 64ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng r(9);
  EXPECT_THROW((void)r.next_below(0), ContractViolation);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusive) {
  Rng r(11);
  bool lo_hit = false;
  bool hi_hit = false;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = r.next_in(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    lo_hit |= v == 3;
    hi_hit |= v == 5;
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r(21);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(5);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace htnoc
