#include "power/energy.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace htnoc::power {
namespace {

EnergyReport run_and_account(bool attack, bool lob) {
  sim::SimConfig sc;
  sc.mode = lob ? sim::MitigationMode::kLOb : sim::MitigationMode::kNone;
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = attack ? 500 : 100000000ULL;
  sc.attacks.push_back(a);
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 61;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  for (Cycle c = 0; c < 2500; ++c) {
    gen.step();
    simulator.step();
  }
  return account_energy(net);
}

TEST(Energy, CleanRunHasNegligibleOverhead) {
  const EnergyReport r = run_and_account(false, false);
  EXPECT_GT(r.useful_pj, 0.0);
  EXPECT_EQ(r.retransmission_pj, 0.0);
  EXPECT_EQ(r.correction_pj, 0.0);
  EXPECT_LT(r.overhead_fraction(), 0.01);
  EXPECT_GT(r.packets_delivered, 0u);
  EXPECT_GT(r.pj_per_packet(), 0.0);
}

TEST(Energy, AttackBurnsRetransmissionEnergyWhileDenyingThroughput) {
  const EnergyReport clean = run_and_account(false, false);
  const EnergyReport attacked = run_and_account(true, false);
  EXPECT_GT(attacked.retransmission_pj, 0.0);
  EXPECT_GT(attacked.overhead_fraction(), clean.overhead_fraction());
  // Noteworthy (and initially counter-intuitive): the wedged network's
  // TOTAL energy is lower than the healthy one's — a stalled chip moves
  // almost nothing. TASP is a throughput-denial attack, not an
  // energy-exhaustion attack; the waste is the retransmission loop burning
  // power while delivering zero work.
  EXPECT_LT(attacked.packets_delivered, clean.packets_delivered / 2);
  EXPECT_LT(attacked.useful_pj, clean.useful_pj);
}

TEST(Energy, LObTradesRetransmissionForObfuscationEnergy) {
  const EnergyReport wedged = run_and_account(true, false);
  const EnergyReport mitigated = run_and_account(true, true);
  EXPECT_GT(mitigated.obfuscation_pj, 0.0);
  // Obfuscating past the trojan stops the endless retransmission loop...
  EXPECT_LT(mitigated.retransmission_pj, wedged.retransmission_pj);
  // ...and buys real throughput for that energy: far more packets land,
  // at a comparable per-packet cost (the 1-3 cycle penalties are cheap).
  EXPECT_GT(mitigated.packets_delivered, wedged.packets_delivered * 3 / 2);
  EXPECT_LT(mitigated.pj_per_packet(), wedged.pj_per_packet() * 1.2);
}

TEST(Energy, TransientNoiseShowsUpAsCorrectionEnergy) {
  sim::SimConfig sc;
  sc.transient_phit_fault_prob = 0.01;
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 62;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  for (Cycle c = 0; c < 1500; ++c) {
    gen.step();
    simulator.step();
  }
  const EnergyReport r = account_energy(net);
  EXPECT_GT(r.correction_pj, 0.0);
}

TEST(Energy, BistScansCountTowardDetection) {
  NocConfig cfg;
  Network net(cfg);
  const EnergyReport r = account_energy(net, EnergyCosts{}, 7);
  EXPECT_DOUBLE_EQ(r.detection_pj, 7 * EnergyCosts{}.bist_scan_pj);
}

TEST(Energy, ReportPrints) {
  NocConfig cfg;
  Network net(cfg);
  std::stringstream ss;
  print_energy_report(ss, account_energy(net), "idle");
  EXPECT_NE(ss.str().find("useful transport"), std::string::npos);
  EXPECT_NE(ss.str().find("pJ/packet"), std::string::npos);
}

}  // namespace
}  // namespace htnoc::power
