// Replicate independence: a Simulator must carry no hidden global state,
// or parallel sweep replicates would contaminate each other. Two instances
// with identical configs stepped in interleaved order from one thread must
// produce exactly the stats of back-to-back execution, and interleaving
// with a *differently*-seeded instance must not perturb a run at all.
#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace htnoc {
namespace {

/// One self-contained run: simulator + traffic, attack + L-Ob mitigation
/// (the mode with the most auxiliary state: detectors, controllers).
struct Instance {
  std::unique_ptr<sim::Simulator> simulator;
  std::unique_ptr<traffic::DeliveryDispatcher> disp;
  std::unique_ptr<traffic::AppTrafficModel> model;
  std::unique_ptr<traffic::TrafficGenerator> gen;

  explicit Instance(std::uint64_t seed) {
    sim::SimConfig sc;
    sc.mode = sim::MitigationMode::kLOb;
    sc.seed = seed ^ 0x51u;
    sc.noc.seed = seed ^ 0x52u;
    sim::AttackSpec a;
    a.link = {4, Direction::kNorth};
    a.tasp.kind = trojan::TargetKind::kDest;
    a.tasp.target_dest = 0;
    a.enable_killsw_at = 100;
    sc.attacks = {a};
    simulator = std::make_unique<sim::Simulator>(std::move(sc));
    disp = std::make_unique<traffic::DeliveryDispatcher>();
    disp->install(simulator->network());
    model = std::make_unique<traffic::AppTrafficModel>(
        simulator->network().geometry(), traffic::blackscholes_profile());
    traffic::TrafficGenerator::Params gp;
    gp.seed = seed;
    gen = std::make_unique<traffic::TrafficGenerator>(simulator->network(),
                                                      *model, gp, *disp);
    simulator->set_drop_callback(
        [this](PacketId id) { gen->requeue(id); });
  }

  void step() {
    gen->step();
    simulator->step();
  }
};

struct Snapshot {
  traffic::TrafficGenerator::Stats traffic;
  sim::Simulator::Stats sim;
  std::uint64_t injections = 0;
  Network::UtilizationSample util;
  std::string invariants;
};

Snapshot snap(Instance& inst) {
  Snapshot s;
  s.traffic = inst.gen->stats();
  s.sim = inst.simulator->stats();
  s.injections = inst.simulator->tasp(0).stats().injections;
  s.util = inst.simulator->network().sample_utilization();
  s.invariants = inst.simulator->network().check_invariants();
  return s;
}

void expect_eq(const Snapshot& a, const Snapshot& b, const char* what) {
  EXPECT_EQ(a.traffic.requests_generated, b.traffic.requests_generated)
      << what;
  EXPECT_EQ(a.traffic.packets_injected, b.traffic.packets_injected) << what;
  EXPECT_EQ(a.traffic.packets_delivered, b.traffic.packets_delivered) << what;
  EXPECT_EQ(a.traffic.flits_injected, b.traffic.flits_injected) << what;
  EXPECT_EQ(a.traffic.latency_sum, b.traffic.latency_sum) << what;
  EXPECT_EQ(a.traffic.latency_max, b.traffic.latency_max) << what;
  EXPECT_EQ(a.traffic.backlog_peak, b.traffic.backlog_peak) << what;
  EXPECT_EQ(a.sim.links_disabled, b.sim.links_disabled) << what;
  EXPECT_EQ(a.sim.packets_purged, b.sim.packets_purged) << what;
  EXPECT_EQ(a.injections, b.injections) << what;
  EXPECT_EQ(a.util.input_port_flits, b.util.input_port_flits) << what;
  EXPECT_EQ(a.util.output_port_flits, b.util.output_port_flits) << what;
  EXPECT_EQ(a.util.injection_port_flits, b.util.injection_port_flits) << what;
  EXPECT_EQ(a.util.routers_with_blocked_port, b.util.routers_with_blocked_port)
      << what;
  EXPECT_EQ(a.invariants, "") << what;
  EXPECT_EQ(b.invariants, "") << what;
}

constexpr Cycle kCycles = 600;

TEST(ReplicateIndependence, InterleavedEqualsSequential) {
  // Reference: two identically-seeded instances run back-to-back.
  Snapshot seq_a, seq_b;
  {
    Instance a(0x11AA);
    for (Cycle c = 0; c < kCycles; ++c) a.step();
    seq_a = snap(a);
  }
  {
    Instance b(0x11AA);
    for (Cycle c = 0; c < kCycles; ++c) b.step();
    seq_b = snap(b);
  }
  expect_eq(seq_a, seq_b, "same seed, sequential: runs must be identical");

  // Interleaved A,B,A,B,... from the same thread.
  Instance a(0x11AA);
  Instance b(0x11AA);
  for (Cycle c = 0; c < kCycles; ++c) {
    a.step();
    b.step();
  }
  expect_eq(snap(a), seq_a, "interleaving changed instance A");
  expect_eq(snap(b), seq_b, "interleaving changed instance B");
}

TEST(ReplicateIndependence, ForeignInstanceDoesNotPerturb) {
  // A run interleaved with a differently-seeded neighbour must be
  // bit-identical to the same run executed alone.
  Snapshot solo;
  {
    Instance a(0x22BB);
    for (Cycle c = 0; c < kCycles; ++c) a.step();
    solo = snap(a);
  }
  Instance a(0x22BB);
  Instance other(0x33CC);
  for (Cycle c = 0; c < kCycles; ++c) {
    other.step();
    a.step();
    if (c % 3 == 0) other.step();  // deliberately lopsided interleave
  }
  expect_eq(snap(a), solo, "foreign instance leaked state into this run");
}

TEST(ReplicateIndependence, ConstructionOrderDoesNotMatter) {
  // Construct B first, A second, then run A: still identical to solo A —
  // catches global-counter leakage at construction time (e.g. a shared
  // PacketId source).
  Snapshot solo;
  {
    Instance a(0x44DD);
    for (Cycle c = 0; c < kCycles; ++c) a.step();
    solo = snap(a);
  }
  Instance first(0x9999);
  for (Cycle c = 0; c < 50; ++c) first.step();  // warm the other instance
  Instance a(0x44DD);
  for (Cycle c = 0; c < kCycles; ++c) a.step();
  expect_eq(snap(a), solo, "construction order leaked state");
}

}  // namespace
}  // namespace htnoc
