#include "noc/output_unit.hpp"

#include <gtest/gtest.h>

#include "noc/protocol.hpp"

namespace htnoc {
namespace {

Flit make_flit(PacketId packet, int seq, int len, VcId vc,
               std::uint64_t wire = 0x1234) {
  Flit f;
  f.packet = packet;
  f.seq = seq;
  f.length = len;
  f.vc = vc;
  f.wire = wire;
  if (len == 1) {
    f.type = FlitType::kHeadTail;
  } else if (seq == 0) {
    f.type = FlitType::kHead;
  } else if (seq == len - 1) {
    f.type = FlitType::kTail;
  } else {
    f.type = FlitType::kBody;
  }
  return f;
}

class OutputUnitTest : public ::testing::Test {
 protected:
  NocConfig cfg;
  Link link{"l", 1};
  OutputUnit out{cfg, "out"};

  void SetUp() override { out.connect(&link); }

  void deliver_and_ack(Cycle send_cycle, bool ok) {
    const auto arr = link.take_arrivals(send_cycle + 1);
    ASSERT_EQ(arr.size(), 1u);
    AckMsg a;
    a.packet = arr[0].flit.packet;
    a.seq = arr[0].flit.seq;
    a.attempt = arr[0].attempt;
    a.ok = ok;
    link.send_ack(send_cycle + 1, a);
  }
};

TEST_F(OutputUnitTest, VcAllocationLifecycle) {
  EXPECT_TRUE(out.vc_free(0));
  out.allocate_vc(0);
  EXPECT_FALSE(out.vc_free(0));
  EXPECT_THROW(out.allocate_vc(0), ContractViolation);
  out.release_vc(0);
  EXPECT_TRUE(out.vc_free(0));
  EXPECT_THROW(out.release_vc(0), ContractViolation);
}

TEST_F(OutputUnitTest, AcceptConsumesCreditAndTailReleasesVc) {
  out.allocate_vc(1);
  EXPECT_EQ(out.credits(1), cfg.buffer_depth);
  out.accept(0, make_flit(1, 0, 2, 1), 2);
  EXPECT_EQ(out.credits(1), cfg.buffer_depth - 1);
  EXPECT_FALSE(out.vc_free(1));
  out.accept(1, make_flit(1, 1, 2, 1), 3);
  EXPECT_EQ(out.credits(1), cfg.buffer_depth - 2);
  EXPECT_TRUE(out.vc_free(1));  // tail released the allocation
  EXPECT_EQ(out.occupancy(), 2);
}

TEST_F(OutputUnitTest, RejectsAcceptBeyondCapacity) {
  out.allocate_vc(0);
  // buffer_depth credits = 4 but retrans capacity also 4.
  for (int i = 0; i < cfg.retrans_depth; ++i) {
    out.accept(i, make_flit(1, i, 8, 0), i + 2);
  }
  EXPECT_FALSE(out.has_free_slot());
  EXPECT_THROW(out.accept(9, make_flit(1, 5, 8, 0), 11), ContractViolation);
}

TEST_F(OutputUnitTest, LtSendsWhenEligibleAndAckClearsSlot) {
  out.allocate_vc(0);
  out.accept(0, make_flit(7, 0, 1, 0), 2);
  out.step_lt(1);  // not yet eligible
  EXPECT_TRUE(link.take_arrivals(2).empty());
  out.step_lt(2);            // LT at 2, arrival at 3
  deliver_and_ack(2, true);  // ACK sent at 3, delivered at 4
  EXPECT_EQ(out.occupancy(), 1);  // still in-flight awaiting ack
  out.process_control(4);
  EXPECT_EQ(out.occupancy(), 0);
  EXPECT_EQ(out.stats().transmissions, 1u);
  EXPECT_EQ(out.stats().acks, 1u);
}

TEST_F(OutputUnitTest, NackTriggersRetransmissionWithBumpedAttempt) {
  out.allocate_vc(0);
  out.accept(0, make_flit(7, 0, 1, 0), 1);
  out.step_lt(1);             // LT at 1, arrival at 2
  deliver_and_ack(1, false);  // NACK sent at 2, delivered at 3
  out.process_control(3);
  EXPECT_EQ(out.stats().nacks, 1u);
  EXPECT_EQ(out.occupancy(), 1);
  out.step_lt(4);  // eligible again at nack_cycle + 1
  const auto arr = link.take_arrivals(5);
  ASSERT_EQ(arr.size(), 1u);
  EXPECT_EQ(arr[0].attempt, 1);
  EXPECT_EQ(out.stats().retransmissions, 1u);
}

TEST_F(OutputUnitTest, CreditReturnsRaiseCounter) {
  out.allocate_vc(2);
  out.accept(0, make_flit(1, 0, 1, 2), 2);
  EXPECT_EQ(out.credits(2), cfg.buffer_depth - 1);
  link.send_credit(5, CreditMsg{2});
  out.process_control(6);
  EXPECT_EQ(out.credits(2), cfg.buffer_depth);
}

TEST_F(OutputUnitTest, CreditOverflowIsInvariantViolation) {
  link.send_credit(0, CreditMsg{0});
  EXPECT_THROW(out.process_control(1), ContractViolation);
}

TEST_F(OutputUnitTest, OldestEligibleSlotSendsFirst) {
  out.allocate_vc(0);
  out.accept(0, make_flit(1, 0, 4, 0), 2);
  out.accept(1, make_flit(1, 1, 4, 0), 2);
  out.step_lt(2);
  const auto arr = link.take_arrivals(3);
  ASSERT_EQ(arr.size(), 1u);
  EXPECT_EQ(arr[0].flit.seq, 0);
}

TEST_F(OutputUnitTest, UnmatchedAckIsIgnoredAfterPurge) {
  out.allocate_vc(0);
  out.accept(0, make_flit(7, 0, 1, 0), 1);
  out.step_lt(1);
  (void)out.purge_packet(7, {});
  deliver_and_ack(1, true);
  EXPECT_NO_THROW(out.process_control(2));
  EXPECT_EQ(out.occupancy(), 0);
}

TEST_F(OutputUnitTest, PurgeRestoresCreditsForUnbufferedFlits) {
  out.allocate_vc(0);
  out.accept(0, make_flit(7, 0, 2, 0), 2);
  out.accept(1, make_flit(7, 1, 2, 0), 3);
  EXPECT_EQ(out.credits(0), cfg.buffer_depth - 2);
  EXPECT_EQ(out.purge_packet(7, {}), 2);
  EXPECT_EQ(out.credits(0), cfg.buffer_depth);
  EXPECT_EQ(out.occupancy(), 0);
}

TEST_F(OutputUnitTest, PurgeSkipsCreditForReceiverBufferedFlit) {
  out.allocate_vc(0);
  Flit f = make_flit(7, 0, 1, 0);
  const std::uint64_t uid = f.flit_uid();
  out.accept(0, std::move(f), 1);
  out.step_lt(1);  // now in flight
  EXPECT_EQ(out.purge_packet(7, {uid}), 1);
  // Credit must come back via the reverse channel instead.
  EXPECT_EQ(out.credits(0), cfg.buffer_depth - 1);
}

TEST_F(OutputUnitTest, BlockedDetectsStuckRetransmission) {
  out.allocate_vc(0);
  out.accept(0, make_flit(7, 0, 1, 0), 1);
  EXPECT_FALSE(out.blocked(10));
  EXPECT_TRUE(out.blocked(100));  // stale slot, no progress
}

TEST_F(OutputUnitTest, TdmHoldsFlitsOutsideTheirSlot) {
  NocConfig tdm_cfg;
  tdm_cfg.tdm_enabled = true;
  Link l2("l2", 1);
  OutputUnit o2(tdm_cfg, "o2");
  o2.connect(&l2);
  o2.allocate_vc(0);
  Flit f = make_flit(1, 0, 1, 0);
  f.domain = TdmDomain::kD2;  // odd cycles only
  o2.accept(0, std::move(f), 0);
  o2.step_lt(2);  // even: D1 slot
  EXPECT_TRUE(l2.take_arrivals(3).empty());
  o2.step_lt(3);  // odd: D2 slot
  EXPECT_EQ(l2.take_arrivals(4).size(), 1u);
}

TEST_F(OutputUnitTest, PacketsInSlotsListsDistinctIds) {
  out.allocate_vc(0);
  out.allocate_vc(1);
  out.accept(0, make_flit(5, 0, 4, 0), 2);
  out.accept(0, make_flit(6, 0, 1, 1), 2);
  out.accept(1, make_flit(5, 1, 4, 0), 3);
  const auto ids = out.packets_in_slots();
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_TRUE(out.has_packet(5));
  EXPECT_TRUE(out.has_packet(6));
  EXPECT_FALSE(out.has_packet(7));
}

}  // namespace
}  // namespace htnoc
