// Unit tests for the event-tracing subsystem (src/trace): record layout,
// ring-buffer semantics, category masking, exporter structure, and the
// instrumentation actually firing during attacked simulations.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/simulator.hpp"
#include "trace/events.hpp"
#include "trace/export.hpp"
#include "trace/forensics.hpp"
#include "trace/sink.hpp"
#include "traffic/generator.hpp"

namespace {

using namespace htnoc;

trace::Event event_at(Cycle cycle) {
  return trace::make_event(trace::EventType::kLinkTraversal, cycle,
                           trace::Scope::kLink, 0, 0);
}

/// A single dest-0 TASP on the column-0 feeder, kill switch at `enable_at`.
sim::SimConfig attacked_config(sim::MitigationMode mode, Cycle enable_at) {
  sim::SimConfig sc;
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = enable_at;
  sc.attacks.push_back(a);
  sc.mode = mode;
  return sc;
}

struct RunOutcome {
  std::uint64_t delivered = 0;
  std::uint64_t injections = 0;
  trace::TraceLog log;
};

RunOutcome run_attacked(sim::SimConfig sc, Cycle cycles) {
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params params;
  params.seed = 7;
  traffic::TrafficGenerator gen(net, model, params, disp);
  for (Cycle i = 0; i < cycles; ++i) {
    gen.step();
    simulator.step();
  }
  RunOutcome out;
  out.delivered = gen.stats().packets_delivered;
  out.injections = simulator.tasp(0).stats().injections;
  if (simulator.trace_sink() != nullptr) {
    out.log = simulator.trace_sink()->log();
  }
  return out;
}

bool has_event(const trace::TraceLog& log, trace::EventType t) {
  for (const trace::Event& e : log.events) {
    if (e.type == t) return true;
  }
  return false;
}

}  // namespace

TEST(TraceEvent, IsCompactPod) {
  EXPECT_EQ(sizeof(trace::Event), 40u);
  EXPECT_TRUE(std::is_trivially_copyable_v<trace::Event>);
}

TEST(TraceEvent, EveryTypeHasACategoryInsideTheMask) {
  for (int t = 0; t < static_cast<int>(trace::EventType::kCount_); ++t) {
    const auto type = static_cast<trace::EventType>(t);
    const std::uint32_t c = trace::raw(trace::category_of(type));
    EXPECT_NE(c, 0u) << "type " << t;
    EXPECT_EQ(c & (c - 1), 0u) << "type " << t << ": not a single bit";
    EXPECT_EQ(c & trace::raw(trace::Category::kAll), c) << "type " << t;
    EXPECT_STRNE(trace::to_string(type), "?");
  }
}

TEST(TraceEvent, ParseCategories) {
  EXPECT_EQ(trace::parse_categories("all"), trace::raw(trace::Category::kAll));
  EXPECT_EQ(trace::parse_categories("link,ecc"),
            trace::raw(trace::Category::kLink) |
                trace::raw(trace::Category::kEcc));
  EXPECT_EQ(trace::parse_categories("saturation"),
            trace::raw(trace::Category::kSaturation));
  EXPECT_THROW((void)trace::parse_categories("bogus"), std::invalid_argument);
}

TEST(TraceSink, RoundsCapacityUpToPowerOfTwo) {
  trace::TraceConfig cfg;
  cfg.capacity = 100;
  EXPECT_EQ(trace::TraceSink(cfg).capacity(), 128u);
  cfg.capacity = 1;
  EXPECT_EQ(trace::TraceSink(cfg).capacity(), 16u);
  cfg.capacity = 64;
  EXPECT_EQ(trace::TraceSink(cfg).capacity(), 64u);
}

TEST(TraceSink, RingKeepsTheNewestWindowInOrder) {
  trace::TraceConfig cfg;
  cfg.capacity = 16;
  trace::TraceSink sink(cfg);
  for (Cycle c = 0; c < 40; ++c) sink.record(event_at(c));
  EXPECT_EQ(sink.total_recorded(), 40u);
  const trace::TraceLog log = sink.log();
  ASSERT_EQ(log.events.size(), 16u);
  EXPECT_EQ(log.dropped(), 24u);
  for (std::size_t i = 0; i < log.events.size(); ++i) {
    EXPECT_EQ(log.events[i].cycle, 24 + i);  // oldest survivor first
  }
}

TEST(TraceSink, CategoryMaskGatesWants) {
  trace::TraceConfig cfg;
  cfg.categories = trace::raw(trace::Category::kLink);
  trace::TraceSink sink(cfg);
  EXPECT_TRUE(sink.wants(trace::Category::kLink));
  EXPECT_FALSE(sink.wants(trace::Category::kEcc));
  EXPECT_FALSE(sink.wants(trace::Category::kSaturation));

  const trace::Tap tap(&sink);
  EXPECT_EQ(tap.on(trace::Category::kLink), trace::kCompiledIn);
  EXPECT_FALSE(tap.on(trace::Category::kEcc));
  EXPECT_FALSE(trace::Tap{}.on(trace::Category::kLink));
}

TEST(TraceExport, BinaryImageHasHeaderAndRawRecords) {
  trace::TraceConfig cfg;
  cfg.capacity = 16;
  trace::TraceSink sink(cfg);
  sink.set_topology(16, 4, 4, 4);
  for (Cycle c = 0; c < 5; ++c) sink.record(event_at(c));
  const std::string img = trace::serialize_binary(sink.log());
  ASSERT_EQ(img.size(), 48u + 5u * sizeof(trace::Event));
  EXPECT_EQ(img.substr(0, 8), "HTNOCTRC");
}

TEST(TraceSim, AttackedRunEmitsTheDosCascade) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "built with HTNOC_TRACE=0";
  sim::SimConfig sc = attacked_config(sim::MitigationMode::kNone, 100);
  sc.trace.enabled = true;
  sc.trace.capacity = std::size_t{1} << 16;
  const RunOutcome out = run_attacked(std::move(sc), 800);

  ASSERT_GT(out.injections, 0u);
  EXPECT_TRUE(has_event(out.log, trace::EventType::kLinkTraversal));
  EXPECT_TRUE(has_event(out.log, trace::EventType::kTrojanTriggered));
  EXPECT_TRUE(has_event(out.log, trace::EventType::kTrojanPayloadAdvance));
  EXPECT_TRUE(has_event(out.log, trace::EventType::kEccUncorrectable));
  EXPECT_TRUE(has_event(out.log, trace::EventType::kNackSent));
  EXPECT_TRUE(has_event(out.log, trace::EventType::kRetransmission));

  const trace::ForensicReport rep = trace::analyze(out.log);
  ASSERT_NE(rep.first_trigger, trace::ForensicReport::kNever);
  ASSERT_NE(rep.first_uncorrectable, trace::ForensicReport::kNever);
  ASSERT_NE(rep.first_nack, trace::ForensicReport::kNever);
  EXPECT_LE(rep.first_trigger, rep.first_uncorrectable);
  EXPECT_LE(rep.first_uncorrectable, rep.first_nack);
  EXPECT_EQ(rep.trojan_injections, out.injections);
  EXPECT_GT(rep.nacks, 0u);

  // Exports render without blowing up and carry the expected structure.
  const std::string json = trace::to_chrome_json(out.log);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("trojan_triggered"), std::string::npos);
  std::ostringstream csv;
  trace::write_csv(csv, out.log);
  EXPECT_NE(csv.str().find("cycle,type,category"), std::string::npos);
  std::ostringstream timeline;
  trace::print_timeline(timeline, out.log, rep);
  EXPECT_NE(timeline.str().find("first trojan trigger"), std::string::npos);
}

TEST(TraceSim, LObModeEmitsDetectorAndObfuscationEvents) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "built with HTNOC_TRACE=0";
  sim::SimConfig sc = attacked_config(sim::MitigationMode::kLOb, 100);
  sc.trace.enabled = true;
  sc.trace.capacity = std::size_t{1} << 16;
  const RunOutcome out = run_attacked(std::move(sc), 800);

  ASSERT_GT(out.injections, 0u);
  EXPECT_TRUE(has_event(out.log, trace::EventType::kDetectorEscalation));
  EXPECT_TRUE(has_event(out.log, trace::EventType::kBistDispatched));
  EXPECT_TRUE(has_event(out.log, trace::EventType::kLObMethodApplied));
  const trace::ForensicReport rep = trace::analyze(out.log);
  EXPECT_NE(rep.first_escalation, trace::ForensicReport::kNever);
  EXPECT_NE(rep.first_lob_applied, trace::ForensicReport::kNever);
}

TEST(TraceSim, TracingDoesNotChangeSimulationResults) {
  sim::SimConfig traced = attacked_config(sim::MitigationMode::kNone, 100);
  traced.trace.enabled = true;
  traced.trace.capacity = std::size_t{1} << 14;
  const RunOutcome with_trace = run_attacked(std::move(traced), 600);
  const RunOutcome without = run_attacked(
      attacked_config(sim::MitigationMode::kNone, 100), 600);
  EXPECT_EQ(with_trace.delivered, without.delivered);
  EXPECT_EQ(with_trace.injections, without.injections);
}

TEST(TraceSim, DisabledTraceOwnsNoSink) {
  sim::Simulator simulator(attacked_config(sim::MitigationMode::kNone, 100));
  EXPECT_EQ(simulator.trace_sink(), nullptr);
}

TEST(TraceSim, PurgeAccountingMatchesTrace) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "built with HTNOC_TRACE=0";
  sim::SimConfig sc = attacked_config(sim::MitigationMode::kReroute, 100);
  sc.reroute_latency = 50;
  sc.trace.enabled = true;
  sc.trace.categories = trace::raw(trace::Category::kPurge) |
                        trace::raw(trace::Category::kReroute);
  sc.trace.capacity = std::size_t{1} << 14;

  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params params;
  params.seed = 7;
  traffic::TrafficGenerator gen(net, model, params, disp);
  for (Cycle i = 0; i < 1500; ++i) {
    gen.step();
    simulator.step();
  }

  const auto& st = simulator.stats();
  ASSERT_GT(st.links_disabled, 0) << "fixture never classified the trojan";
  ASSERT_GT(st.packets_purged, 0u);
  // Satellite check: the flit counter is the real (deduplicated) flit
  // count, which for multi-flit packets must exceed the packet count.
  EXPECT_GE(st.flits_purged_total, st.packets_purged);
  EXPECT_EQ(st.flits_purged_total, net.purge_totals().flits);

  const trace::TraceLog log = simulator.trace_sink()->log();
  ASSERT_EQ(log.dropped(), 0u) << "fixture too big for the ring";
  const trace::ForensicReport rep = trace::analyze(log);
  EXPECT_EQ(rep.packets_purged, net.purge_totals().packets);
  EXPECT_EQ(rep.flits_purged, st.flits_purged_total);
  EXPECT_TRUE(has_event(log, trace::EventType::kLinkDisabled));
  EXPECT_TRUE(has_event(log, trace::EventType::kRoutingReconfigured));
}
