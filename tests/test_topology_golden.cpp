// Golden-model differential suite for the topology/routing layer.
//
// The per-cycle FNV-1a census digests of the paper's 4x4 concentrated mesh
// were recorded from the legacy hard-coded fabric (the pre-topology-layer
// implementation) and checked in under tests/golden/. Every run since is
// byte-compared against that record under idle, loaded and attacked
// traffic, so any refactor of topology construction, routing selection or
// the step loop that changes even one flit placement on the seed fabric
// fails here at the exact cycle it diverges.
//
// Regenerating (only after an *intended* behavior change, with review):
//   HTNOC_UPDATE_GOLDEN=1 ./build/tests/test_topology_golden
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "traffic/app_profile.hpp"
#include "traffic/generator.hpp"
#include "verify/census_digest.hpp"

namespace {

using namespace htnoc;

enum class Load : std::uint8_t { kIdle, kLoaded, kAttacked };

/// Drive the seed 4x4 cmesh under a fixed-seed scenario and record the
/// state digest after every step() call.
std::vector<std::uint64_t> run_digests(Load load, Cycle cycles) {
  sim::SimConfig sc;
  sc.noc.seed = 0xBEEF;
  sc.seed = 0xF00D;
  if (load == Load::kAttacked) {
    sc.mode = sim::MitigationMode::kLOb;
    sim::AttackSpec atk;
    atk.link = {5, Direction::kEast};
    atk.tasp.kind = trojan::TargetKind::kDest;
    atk.tasp.target_dest = 0;
    atk.enable_killsw_at = 150;
    sc.attacks.push_back(atk);
  }
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();

  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppProfile profile = traffic::profile_by_name("facesim");
  traffic::AppTrafficModel model(net.geometry(), profile);
  traffic::TrafficGenerator::Params gp;
  gp.seed = 0x5EED;
  traffic::TrafficGenerator gen(net, model, gp, disp);

  std::vector<std::uint64_t> out;
  out.reserve(cycles);
  for (Cycle c = 0; c < cycles; ++c) {
    if (load != Load::kIdle) gen.step();
    simulator.step();
    out.push_back(verify::state_digest(net));
  }
  return out;
}

std::string golden_path(const std::string& name) {
  return std::string(HTNOC_GOLDEN_DIR) + "/" + name;
}

bool update_mode() { return std::getenv("HTNOC_UPDATE_GOLDEN") != nullptr; }

void write_golden(const std::string& name,
                  const std::vector<std::uint64_t>& digests) {
  std::ofstream os(golden_path(name));
  ASSERT_TRUE(os) << "cannot write " << golden_path(name);
  os << "# per-cycle FNV-1a census digests of the legacy 4x4 cmesh\n";
  char buf[32];
  for (const std::uint64_t d : digests) {
    std::snprintf(buf, sizeof buf, "%016llx\n",
                  static_cast<unsigned long long>(d));
    os << buf;
  }
}

std::vector<std::uint64_t> read_golden(const std::string& name) {
  std::ifstream is(golden_path(name));
  EXPECT_TRUE(is) << "missing golden file " << golden_path(name)
                  << " (regenerate with HTNOC_UPDATE_GOLDEN=1)";
  std::vector<std::uint64_t> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    out.push_back(std::stoull(line, nullptr, 16));
  }
  return out;
}

void check_against_golden(const std::string& name, Load load, Cycle cycles) {
  const std::vector<std::uint64_t> got = run_digests(load, cycles);
  if (update_mode()) {
    write_golden(name, got);
    return;
  }
  const std::vector<std::uint64_t> want = read_golden(name);
  ASSERT_EQ(want.size(), got.size()) << name;
  for (std::size_t c = 0; c < want.size(); ++c) {
    ASSERT_EQ(want[c], got[c])
        << name << ": first divergence from the legacy fabric at cycle " << c;
  }
}

TEST(TopologyGolden, IdleCmesh4x4MatchesLegacyFabric) {
  check_against_golden("cmesh4x4_idle.digests", Load::kIdle, 300);
}

TEST(TopologyGolden, LoadedCmesh4x4MatchesLegacyFabric) {
  check_against_golden("cmesh4x4_loaded.digests", Load::kLoaded, 600);
}

TEST(TopologyGolden, AttackedCmesh4x4MatchesLegacyFabric) {
  check_against_golden("cmesh4x4_attacked.digests", Load::kAttacked, 600);
}

}  // namespace
