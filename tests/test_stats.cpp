#include "stats/stats.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace htnoc::stats {
namespace {

TEST(UtilizationProbe, SamplesAtPeriod) {
  NocConfig cfg;
  Network net{cfg};
  UtilizationProbe probe(10);
  for (int i = 0; i < 35; ++i) {
    probe.maybe_sample(net);
    net.step();
  }
  EXPECT_EQ(probe.samples().size(), 4u);  // cycles 0, 10, 20, 30
  EXPECT_EQ(probe.samples()[2].cycle, 20u);
}

TEST(UtilizationProbe, CsvRebasesOrigin) {
  NocConfig cfg;
  Network net{cfg};
  UtilizationProbe probe(1);
  net.run(5);
  probe.sample_now(net);
  std::stringstream ss;
  probe.print_csv(ss, 3, "test");
  const std::string out = ss.str();
  EXPECT_NE(out.find("# test"), std::string::npos);
  EXPECT_NE(out.find("\n2,"), std::string::npos);  // 5 - 3
}

TEST(TrafficMatrix, CountsAndTotals) {
  MeshGeometry geom{4, 4, 4};
  TrafficMatrix m(geom);
  PacketInfo info;
  info.src_router = 1;
  info.dest_router = 9;
  m.record(info);
  m.record(info);
  info.dest_router = 2;
  m.record(info);
  EXPECT_EQ(m.count(1, 9), 2u);
  EXPECT_EQ(m.count(1, 2), 1u);
  EXPECT_EQ(m.row_total(1), 3u);
  EXPECT_EQ(m.col_total(9), 2u);
  EXPECT_EQ(m.grand_total(), 3u);
}

TEST(TrafficMatrix, PrintsWithoutCrashing) {
  MeshGeometry geom{4, 4, 4};
  TrafficMatrix m(geom);
  PacketInfo info;
  info.src_router = 0;
  info.dest_router = 15;
  m.record(info);
  std::stringstream ss;
  m.print_matrix(ss);
  m.print_source_heatmap(ss);
  EXPECT_FALSE(ss.str().empty());
}

TEST(LinkLoads, SharesSumToOne) {
  NocConfig cfg;
  Network net{cfg};
  // Push some traffic through.
  for (int i = 0; i < 20; ++i) {
    PacketInfo info;
    info.id = net.next_packet_id();
    info.src_core = 0;
    info.dest_core = 63;
    info.src_router = 0;
    info.dest_router = 15;
    info.length = 1;
    (void)net.try_inject(info, {});
    net.run(5);
  }
  net.run(400);
  const auto loads = measure_link_loads(net);
  EXPECT_EQ(loads.size(), 48u);
  double total = 0.0;
  for (const auto& l : loads) total += l.share;
  EXPECT_NEAR(total, 1.0, 1e-9);
  std::stringstream ss;
  print_link_loads(ss, loads, net.geometry());
  EXPECT_FALSE(ss.str().empty());
}

TEST(LinkLoads, XyPathLinksCarryTheTraffic) {
  NocConfig cfg;
  Network net{cfg};
  for (int i = 0; i < 10; ++i) {
    PacketInfo info;
    info.id = net.next_packet_id();
    info.src_core = 0;   // router 0
    info.dest_core = 12; // router 3: pure +x path
    info.src_router = 0;
    info.dest_router = 3;
    info.length = 1;
    (void)net.try_inject(info, {});
    net.run(3);
  }
  net.run(300);
  const auto loads = measure_link_loads(net);
  std::uint64_t east01 = 0;
  std::uint64_t north40 = 0;
  for (const auto& l : loads) {
    if (l.link.from == 0 && l.link.dir == Direction::kEast) east01 = l.phits;
    if (l.link.from == 4 && l.link.dir == Direction::kNorth) north40 = l.phits;
  }
  EXPECT_EQ(east01, 10u);
  EXPECT_EQ(north40, 0u);
}

TEST(LatencyStats, MeanMinMaxAndHistogram) {
  LatencyStats s;
  s.record(4);
  s.record(10);
  s.record(100);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.min(), 4u);
  EXPECT_EQ(s.max(), 100u);
  EXPECT_NEAR(s.mean(), 38.0, 0.01);
  std::stringstream ss;
  s.print(ss, "lat");
  EXPECT_NE(ss.str().find("n=3"), std::string::npos);
}

TEST(LatencyStats, EmptyIsSafe) {
  LatencyStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.p50(), 0.0);
  EXPECT_EQ(s.p99(), 0.0);
}

TEST(LatencyStats, PercentilesOfASingleSampleCollapseToIt) {
  LatencyStats s;
  s.record(5);
  EXPECT_EQ(s.p50(), 5.0);
  EXPECT_EQ(s.p95(), 5.0);
  EXPECT_EQ(s.p99(), 5.0);
}

TEST(LatencyStats, PercentilesInterpolateWithinHistogramBuckets) {
  LatencyStats s;
  for (Cycle v = 1; v <= 100; ++v) s.record(v);
  // The histogram only resolves power-of-two buckets, so assert bucket-level
  // accuracy plus monotonicity, not exact ranks.
  EXPECT_GE(s.p50(), 32.0);
  EXPECT_LE(s.p50(), 64.0);
  EXPECT_GE(s.p95(), 64.0);
  EXPECT_LE(s.p95(), 100.0);
  EXPECT_GE(s.p99(), 90.0);
  EXPECT_LE(s.p99(), 100.0);
  EXPECT_LE(s.p50(), s.p95());
  EXPECT_LE(s.p95(), s.p99());
  EXPECT_LE(s.p99(), static_cast<double>(s.max()));

  std::stringstream ss;
  s.print(ss, "lat");
  EXPECT_NE(ss.str().find("p50="), std::string::npos);
  EXPECT_NE(ss.str().find("p99="), std::string::npos);
}

TEST(LatencyStats, TailPercentileClampsToObservedMax) {
  LatencyStats s;
  s.record(3);
  s.record(5000);  // lands in the open last bucket
  EXPECT_LE(s.p99(), 5000.0);
  EXPECT_GE(s.p99(), 3.0);
}

TEST(LatencyStats, PercentileExtremeQuantilesAreDefined) {
  LatencyStats empty;
  EXPECT_EQ(empty.percentile(0.0), 0.0);
  EXPECT_EQ(empty.percentile(0.5), 0.0);
  EXPECT_EQ(empty.percentile(1.0), 0.0);

  LatencyStats s;
  s.record(7);
  s.record(19);
  s.record(400);
  // q at (or beyond, or NaN) the boundaries pins to the observed extremes.
  EXPECT_EQ(s.percentile(0.0), 7.0);
  EXPECT_EQ(s.percentile(-0.5), 7.0);
  EXPECT_EQ(s.percentile(1.0), 400.0);
  EXPECT_EQ(s.percentile(7.0), 400.0);
  EXPECT_EQ(s.percentile(std::numeric_limits<double>::quiet_NaN()), 7.0);
  // Interior quantiles stay within [min, max] and monotone.
  double prev = s.percentile(0.0);
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double v = s.percentile(q);
    EXPECT_GE(v, prev) << q;
    EXPECT_GE(v, 7.0) << q;
    EXPECT_LE(v, 400.0) << q;
    prev = v;
  }
}

TEST(LatencyStats, SingleSampleDefinedAtAllQuantiles) {
  LatencyStats s;
  s.record(42);
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(s.percentile(q), 42.0) << q;
  }
}

TEST(NetworkReport, SummarizesPipelineActivity) {
  NocConfig cfg;
  Network net{cfg};
  for (int i = 0; i < 6; ++i) {
    PacketInfo info;
    info.id = net.next_packet_id();
    info.src_core = 0;
    info.dest_core = 63;
    info.src_router = 0;
    info.dest_router = 15;
    info.length = 2;
    while (!net.try_inject(info, {std::uint64_t(i)})) net.step();
    net.step();
  }
  net.run(400);
  std::stringstream ss;
  print_network_report(ss, net);
  const std::string out = ss.str();
  EXPECT_NE(out.find("per-router pipeline activity"), std::string::npos);
  EXPECT_NE(out.find("link totals"), std::string::npos);
  EXPECT_NE(out.find("6 injected, 6 delivered"), std::string::npos);
  EXPECT_NE(out.find("0 silent corruptions"), std::string::npos);
}

TEST(NetworkReport, StallCountersAttributeBackPressure) {
  // Wedge a link by disabling it after a packet committed to it: the
  // upstream router's SA must record no-slot stalls once the retransmission
  // buffer fills.
  NocConfig cfg;
  Network net{cfg};
  for (int i = 0; i < 8; ++i) {
    PacketInfo info;
    info.id = net.next_packet_id();
    info.src_core = 0;
    info.dest_core = 4;  // r0 -> r1 over the east link
    info.src_router = 0;
    info.dest_router = 1;
    info.length = 4;
    while (!net.try_inject(info, std::vector<std::uint64_t>(3, 1))) net.step();
    net.step();
  }
  net.link(0, Direction::kEast).set_disabled(true);
  net.run(300);
  const auto& s = net.router(0).stats();
  EXPECT_GT(s.sa_stalls_no_slot, 0u);
}

}  // namespace
}  // namespace htnoc::stats
