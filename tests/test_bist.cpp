#include "mitigation/bist.hpp"

#include <gtest/gtest.h>

#include "trojan/tasp.hpp"

namespace htnoc::mitigation {
namespace {

TEST(Bist, CleanLinkReportsNothing) {
  Link l("l", 1);
  const BistReport r = bist_scan(l);
  EXPECT_FALSE(r.permanent_fault_found);
  EXPECT_TRUE(r.stuck_wires.empty());
}

TEST(Bist, FindsStuckAtOne) {
  Link l("l", 1);
  l.attach_injector(std::make_shared<PermanentFaultInjector>(
      std::map<unsigned, bool>{{17, true}}));
  const BistReport r = bist_scan(l);
  ASSERT_TRUE(r.permanent_fault_found);
  ASSERT_EQ(r.stuck_wires.size(), 1u);
  EXPECT_EQ(r.stuck_wires[0], 17u);
}

TEST(Bist, FindsStuckAtZero) {
  Link l("l", 1);
  l.attach_injector(std::make_shared<PermanentFaultInjector>(
      std::map<unsigned, bool>{{64, false}}));
  const BistReport r = bist_scan(l);
  ASSERT_TRUE(r.permanent_fault_found);
  EXPECT_EQ(r.stuck_wires[0], 64u);
}

TEST(Bist, FindsMultipleStuckWires) {
  Link l("l", 1);
  l.attach_injector(std::make_shared<PermanentFaultInjector>(
      std::map<unsigned, bool>{{0, true}, {35, false}, {71, true}}));
  const BistReport r = bist_scan(l);
  EXPECT_EQ(r.stuck_wires.size(), 3u);
}

TEST(Bist, TrojanStaysInvisible) {
  // The paper's core detection dilemma: a kill-switch-guarded trojan never
  // answers logic testing, so BIST comes back clean on an infected link.
  Link l("l", 1);
  trojan::TaspParams p;
  p.kind = trojan::TargetKind::kDest;
  p.target_dest = 0;
  auto t = std::make_shared<trojan::Tasp>(p);
  t->set_kill_switch(true);
  l.attach_injector(t);
  const BistReport r = bist_scan(l);
  EXPECT_FALSE(r.permanent_fault_found);
}

TEST(Bist, TrojanPlusPermanentFaultStillLocatesTheWire) {
  Link l("l", 1);
  l.attach_injector(std::make_shared<PermanentFaultInjector>(
      std::map<unsigned, bool>{{9, true}}));
  trojan::TaspParams p;
  auto t = std::make_shared<trojan::Tasp>(p);
  t->set_kill_switch(true);
  l.attach_injector(t);
  const BistReport r = bist_scan(l);
  ASSERT_TRUE(r.permanent_fault_found);
  EXPECT_EQ(r.stuck_wires[0], 9u);
}

}  // namespace
}  // namespace htnoc::mitigation
