#include "noc/fault_model.hpp"

#include <gtest/gtest.h>

#include "ecc/secded.hpp"

namespace htnoc {
namespace {

LinkPhit make_phit(std::uint64_t data) {
  LinkPhit p;
  p.flit.wire = data;
  p.codeword = ecc::secded().encode(data);
  return p;
}

TEST(TransientFaults, ZeroProbabilityNeverInjects) {
  TransientFaultInjector inj({.phit_fault_prob = 0.0}, 1);
  for (int i = 0; i < 1000; ++i) {
    LinkPhit p = make_phit(0x1234);
    const Codeword72 before = p.codeword;
    inj.on_traverse(i, p);
    EXPECT_EQ(p.codeword, before);
  }
  EXPECT_EQ(inj.faults_injected(), 0u);
}

TEST(TransientFaults, CertainProbabilityAlwaysInjects) {
  TransientFaultInjector inj({.phit_fault_prob = 1.0}, 2);
  for (int i = 0; i < 200; ++i) {
    LinkPhit p = make_phit(0xABCD);
    const Codeword72 before = p.codeword;
    inj.on_traverse(i, p);
    const int d = before.distance(p.codeword);
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 3);
  }
  EXPECT_EQ(inj.faults_injected(), 200u);
}

TEST(TransientFaults, FlipCountDistributionFollowsWeights) {
  TransientFaultInjector inj(
      {.phit_fault_prob = 1.0, .weight_1bit = 1.0, .weight_2bit = 0.0,
       .weight_3bit = 0.0},
      3);
  for (int i = 0; i < 200; ++i) {
    LinkPhit p = make_phit(0);
    const Codeword72 before = p.codeword;
    inj.on_traverse(i, p);
    EXPECT_EQ(before.distance(p.codeword), 1);
  }
}

TEST(TransientFaults, RateMatchesProbability) {
  TransientFaultInjector inj({.phit_fault_prob = 0.1}, 4);
  for (int i = 0; i < 20000; ++i) {
    LinkPhit p = make_phit(0);
    inj.on_traverse(i, p);
  }
  EXPECT_NEAR(static_cast<double>(inj.faults_injected()) / 20000.0, 0.1, 0.01);
}

TEST(TransientFaults, MostlySingleBitsAreCorrectable) {
  // The dominant transient outcome must be ECC-correctable — that is the
  // behaviour the trojan hides behind.
  TransientFaultInjector inj({.phit_fault_prob = 1.0}, 5);
  int correctable = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    LinkPhit p = make_phit(0x5A5A5A5A);
    inj.on_traverse(i, p);
    const auto r = ecc::secded().decode(p.codeword);
    if (r.status == ecc::DecodeStatus::kCorrectedSingle) ++correctable;
  }
  EXPECT_GT(correctable, n * 8 / 10);
}

TEST(PermanentFaults, StuckWiresForceTheirValue) {
  PermanentFaultInjector inj({{3, true}, {40, false}});
  LinkPhit p = make_phit(0);
  inj.on_traverse(0, p);
  EXPECT_TRUE(p.codeword.get(3));
  EXPECT_FALSE(p.codeword.get(40));

  LinkPhit q = make_phit(~std::uint64_t{0});
  inj.on_traverse(1, q);
  EXPECT_TRUE(q.codeword.get(3));
  EXPECT_FALSE(q.codeword.get(40));
}

TEST(PermanentFaults, NoChangeWhenValuesAlreadyMatch) {
  PermanentFaultInjector inj({{0, false}});
  LinkPhit p = make_phit(0);
  p.codeword = Codeword72{};  // bit 0 already 0
  inj.on_traverse(0, p);
  EXPECT_EQ(inj.faults_injected(), 0u);
}

TEST(PermanentFaults, VisibleToProbes) {
  PermanentFaultInjector inj({{7, true}});
  Codeword72 cw;
  inj.probe(cw);
  EXPECT_TRUE(cw.get(7));
}

TEST(PermanentFaults, RejectsOutOfRangeWire) {
  EXPECT_THROW(PermanentFaultInjector({{72, true}}), ContractViolation);
}

TEST(TransientFaults, NotVisibleToProbes) {
  TransientFaultInjector inj({.phit_fault_prob = 1.0}, 6);
  Codeword72 cw;
  inj.probe(cw);
  EXPECT_EQ(cw, Codeword72{});
}

}  // namespace
}  // namespace htnoc
