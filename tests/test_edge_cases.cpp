// Cross-cutting edge cases that none of the per-module suites cover:
// multi-trojan rerouting to completion, purge under TDM, reply-pressure at
// saturated NIs, replayer semantics, and probe bookkeeping.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/simulator.hpp"
#include "stats/stats.hpp"
#include "traffic/generator.hpp"
#include "traffic/replayer.hpp"

namespace htnoc {
namespace {

TEST(EdgeCases, TwoTrojansRerouteToCompletion) {
  sim::SimConfig sc;
  sc.mode = sim::MitigationMode::kReroute;
  sc.reroute_latency = 60;
  // Note: not {4,N} + {1,W} — disabling both of router 0's edges would
  // disconnect it; the policy disables links bidirectionally.
  for (const LinkRef l : {LinkRef{8, Direction::kNorth},
                          LinkRef{1, Direction::kWest}}) {
    sim::AttackSpec a;
    a.link = l;
    a.tasp.kind = trojan::TargetKind::kDest;
    a.tasp.target_dest = 0;
    a.enable_killsw_at = 600;
    sc.attacks.push_back(a);
  }
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 91;
  gp.total_requests = 800;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  simulator.set_drop_callback([&](PacketId id) { gen.requeue(id); });
  Cycle c = 0;
  while (!gen.done() && c < 500000) {
    gen.step();
    simulator.step();
    ++c;
  }
  EXPECT_TRUE(gen.done());
  // Both infected links (and their reverses) went out of service.
  EXPECT_GE(simulator.stats().links_disabled, 4);
  EXPECT_EQ(net.check_invariants(), "");
}

TEST(EdgeCases, PurgeUnderTdmKeepsBothDomainsConsistent) {
  NocConfig cfg;
  cfg.tdm_enabled = true;
  Network net(cfg);
  std::vector<PacketId> ids;
  for (int i = 0; i < 12; ++i) {
    PacketInfo info;
    info.id = net.next_packet_id();
    info.src_core = static_cast<NodeId>((i * 7) % 64);
    info.dest_core = static_cast<NodeId>((i * 13 + 5) % 64);
    if (info.dest_core == info.src_core) info.dest_core ^= 1;
    info.src_router = net.geometry().router_of_core(info.src_core);
    info.dest_router = net.geometry().router_of_core(info.dest_core);
    info.length = 3;
    info.domain = (i % 2 == 0) ? TdmDomain::kD1 : TdmDomain::kD2;
    if (net.try_inject(info, {1, 2})) ids.push_back(info.id);
    net.step();
  }
  // Purge every other one mid-flight.
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    (void)net.purge_packet(ids[i]);
    ASSERT_EQ(net.check_invariants(), "") << "after purge " << ids[i];
  }
  net.run(1500);
  EXPECT_TRUE(net.quiescent());
}

TEST(EdgeCases, ReplyPressureAtSaturatedDestination) {
  // Hammer one destination with requests whose replies must come back
  // through the saturated region; the request/reply VC split must keep the
  // protocol live (no request-reply deadlock).
  NocConfig cfg;
  Network net(cfg);
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  auto profile = traffic::blackscholes_profile();
  profile.injection_rate = 0.05;  // well above the hotspot's sink rate
  profile.reply_fraction = 1.0;   // every request generates a reply
  traffic::AppTrafficModel model(net.geometry(), profile);
  traffic::TrafficGenerator::Params gp;
  gp.seed = 92;
  gp.total_requests = 600;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  Cycle c = 0;
  while (!gen.done() && c < 1000000) {
    gen.step();
    net.step();
    ++c;
  }
  EXPECT_TRUE(gen.done());  // saturation slows but never deadlocks
  EXPECT_EQ(gen.stats().packets_delivered,
            gen.stats().requests_generated + gen.stats().replies_generated);
}

TEST(EdgeCases, ReplayerHonorsScheduleAndBackpressure) {
  NocConfig cfg;
  Network net(cfg);
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  std::vector<traffic::TraceRecord> trace;
  for (int i = 0; i < 30; ++i) {
    traffic::TraceRecord r;
    r.cycle = static_cast<Cycle>(i * 3 + 100);
    r.src_core = 0;  // all from one core: forces queue back-pressure
    r.dest_core = 63;
    r.length = 4;
    trace.push_back(r);
  }
  traffic::TraceReplayer rep(net, trace, disp);
  // Nothing injects before the first scheduled cycle.
  for (int i = 0; i < 99; ++i) {
    rep.step();
    net.step();
  }
  EXPECT_EQ(rep.stats().packets_injected, 0u);
  Cycle c = 99;
  while (!rep.done() && c < 100000) {
    rep.step();
    net.step();
    ++c;
  }
  EXPECT_TRUE(rep.done());
  EXPECT_EQ(rep.stats().packets_delivered, 30u);
}

TEST(EdgeCases, ReroutePolicyRefusesToDisconnectTheMesh) {
  // Trojans on BOTH of router 0's edges: the policy may disable at most
  // one of them; the other stays in service (refused) and L-Ob-less
  // traffic to r0 keeps suffering — but the network never throws or
  // partitions.
  sim::SimConfig sc;
  sc.mode = sim::MitigationMode::kReroute;
  sc.reroute_latency = 40;
  for (const LinkRef l : {LinkRef{4, Direction::kNorth},
                          LinkRef{1, Direction::kWest}}) {
    sim::AttackSpec a;
    a.link = l;
    a.tasp.kind = trojan::TargetKind::kDest;
    a.tasp.target_dest = 0;
    a.enable_killsw_at = 400;
    sc.attacks.push_back(a);
  }
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 93;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  simulator.set_drop_callback([&](PacketId id) { gen.requeue(id); });
  for (Cycle c = 0; c < 6000; ++c) {
    gen.step();
    EXPECT_NO_THROW(simulator.step());
  }
  EXPECT_EQ(simulator.stats().links_disabled, 2);  // one edge, both dirs
  EXPECT_GE(simulator.stats().reroutes_refused_disconnect, 1);
  EXPECT_EQ(net.check_invariants(), "");
}

TEST(EdgeCases, WouldDisconnectDetectsArticulationEdges) {
  NocConfig cfg;
  Network net(cfg);
  EXPECT_FALSE(net.would_disconnect({4, Direction::kNorth}));
  net.disable_link({1, Direction::kWest});
  net.disable_link({0, Direction::kEast});
  // r0's remaining edge is now an articulation edge.
  EXPECT_TRUE(net.would_disconnect({4, Direction::kNorth}));
  EXPECT_TRUE(net.would_disconnect({0, Direction::kSouth}));
  EXPECT_FALSE(net.would_disconnect({5, Direction::kWest}));
}

TEST(EdgeCases, ProbeClearAndResample) {
  NocConfig cfg;
  Network net(cfg);
  stats::UtilizationProbe probe(1);
  probe.sample_now(net);
  probe.sample_now(net);
  EXPECT_EQ(probe.samples().size(), 2u);
  probe.clear();
  EXPECT_TRUE(probe.samples().empty());
  probe.sample_now(net);
  EXPECT_EQ(probe.samples().size(), 1u);
}

TEST(EdgeCases, SimulatorWithNoAttacksIsJustANetwork) {
  sim::SimConfig sc;
  sim::Simulator simulator(std::move(sc));
  EXPECT_EQ(simulator.num_trojans(), 0u);
  Network& net = simulator.network();
  int delivered = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo&, Cycle) { ++delivered; });
  PacketInfo info;
  info.id = net.next_packet_id();
  info.src_core = 1;
  info.dest_core = 62;
  info.src_router = 0;
  info.dest_router = 15;
  info.length = 2;
  ASSERT_TRUE(net.try_inject(info, {9}));
  simulator.run(200);
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace htnoc
