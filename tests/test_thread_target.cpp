// Thread/process-id targeting — the last comparator option the paper's
// target block lists (Sec. III-B: "source, destination, virtual channel
// (VC), process or thread ID, and memory address").
#include <gtest/gtest.h>

#include "power/blocks.hpp"
#include "sim/simulator.hpp"
#include "traffic/generator.hpp"
#include "trojan/tasp.hpp"

namespace htnoc::trojan {
namespace {

TEST(ThreadTarget, WireCarriesThreadId) {
  wire::HeaderFields h;
  h.thread = 42;
  h.pid_low = 0x99;
  const std::uint64_t w = wire::pack_header(h);
  const wire::HeaderFields u = wire::unpack_header(w);
  EXPECT_EQ(u.thread, 42);
  EXPECT_EQ(u.pid_low, 0x99u);
}

TEST(ThreadTarget, PacketizeDefaultsThreadToSourceCore) {
  PacketInfo info;
  info.id = 1;
  info.src_core = 37;
  info.dest_core = 2;
  info.src_router = 9;
  info.dest_router = 0;
  info.length = 1;
  const auto flits = packetize(info, {});
  EXPECT_EQ(flits[0].thread, 37);
  EXPECT_EQ(wire::unpack_header(flits[0].wire).thread, 37);
}

TEST(ThreadTarget, ExplicitThreadOverrides) {
  PacketInfo info;
  info.id = 2;
  info.src_core = 37;
  info.dest_core = 2;
  info.src_router = 9;
  info.dest_router = 0;
  info.thread = 5;
  info.length = 1;
  const auto flits = packetize(info, {});
  EXPECT_EQ(flits[0].thread, 5);
}

TEST(ThreadTarget, ComparatorMatchesOnThread) {
  TaspParams p;
  p.kind = TargetKind::kThread;
  p.target_thread = 37;
  const Tasp t(p);

  wire::HeaderFields h;
  h.thread = 37;
  h.type = FlitType::kHead;
  EXPECT_TRUE(t.matches(wire::pack_header(h)));
  h.thread = 38;
  EXPECT_FALSE(t.matches(wire::pack_header(h)));
  EXPECT_EQ(target_width(TargetKind::kThread), 6u);
  EXPECT_EQ(to_string(TargetKind::kThread), "thread");
}

TEST(ThreadTarget, WedgesOnlyTheVictimThreadsTraffic) {
  // A thread-keyed trojan on a busy link: only the victim core's packets
  // get struck; everyone else's flow through the same link untouched.
  sim::SimConfig sc;
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = TargetKind::kThread;
  a.tasp.target_thread = 32;  // core 32 lives on router 8, routes via r4->N
  a.enable_killsw_at = 0;
  sc.attacks.push_back(a);
  sc.mode = sim::MitigationMode::kNone;
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);

  int victim_delivered = 0;
  int bystander_delivered = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo& info, Cycle) {
    if (info.src_core == 32) {
      ++victim_delivered;
    } else {
      ++bystander_delivered;
    }
  });

  // One victim packet (it will wedge one retransmission slot forever),
  // then a stream of bystander packets from the same router through the
  // same infected link.
  const auto send = [&](NodeId src) {
    PacketInfo info;
    info.id = net.next_packet_id();
    info.src_core = src;
    info.dest_core = 0;
    info.src_router = 8;
    info.dest_router = 0;
    info.length = 1;
    info.inject_cycle = net.now();
    while (!net.try_inject(info, {})) net.step();
    net.run(6);
  };
  simulator.step();  // cycle 0: the kill switch schedule fires
  send(32);  // victim thread
  for (int i = 0; i < 10; ++i) send(33);
  for (int i = 0; i < 600; ++i) simulator.step();
  EXPECT_EQ(bystander_delivered, 10);  // untouched traffic flows past
  EXPECT_EQ(victim_delivered, 0);      // the victim is NACK-looped forever
  EXPECT_GT(simulator.tasp(0).stats().injections, 10u);
}

TEST(ThreadTarget, Fig9AreaOrderingIncludesThread) {
  // 6-bit thread comparator sits between VC (2) and dest_src (8) in area.
  const double vc = power::tasp_block(TargetKind::kVc).area_um2();
  const double thread = power::tasp_block(TargetKind::kThread).area_um2();
  const double ds = power::tasp_block(TargetKind::kDestSrc).area_um2();
  EXPECT_LT(vc, thread);
  EXPECT_LT(thread, ds);
}

}  // namespace
}  // namespace htnoc::trojan
