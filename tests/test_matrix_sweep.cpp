// Configuration-space regression net: every trojan target kind against
// every mitigation mode, each run to workload completion (or to the
// documented non-completion for kNone against a sustained trigger). Also a
// randomized reroute property: random connected link-failure sets must
// always reconfigure and complete.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace htnoc {
namespace {

using trojan::TargetKind;

sim::AttackSpec attack_for(TargetKind kind) {
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = kind;
  a.tasp.target_dest = 0;
  a.tasp.target_src = 8;   // column-0 source whose dest-0 flow crosses r4->N
  a.tasp.target_vc = 0;
  a.tasp.target_thread = 32;  // a core on router 8
  a.tasp.target_mem = traffic::blackscholes_profile().mem_base;
  a.tasp.mem_mask = 0xF0000000u;
  a.enable_killsw_at = 500;
  return a;
}

class AttackDefenseMatrix
    : public ::testing::TestWithParam<std::tuple<TargetKind, sim::MitigationMode>> {};

TEST_P(AttackDefenseMatrix, WorkloadCompletesUnderMitigation) {
  const auto [kind, mode] = GetParam();
  sim::SimConfig sc;
  sc.mode = mode;
  sc.attacks = {attack_for(kind)};
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 7u + static_cast<std::uint64_t>(kind) * 13 +
            static_cast<std::uint64_t>(mode);
  gp.total_requests = 1500;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  simulator.set_drop_callback([&](PacketId id) { gen.requeue(id); });

  Cycle c = 0;
  while (!gen.done() && c < 400000) {
    gen.step();
    simulator.step();
    ++c;
  }
  EXPECT_TRUE(gen.done()) << trojan::to_string(kind) << " under "
                          << to_string(mode);
  EXPECT_EQ(net.check_invariants(), "");
  // The trigger actually fired for this kind (the sweep is meaningful).
  EXPECT_GT(simulator.tasp(0).stats().injections, 0u)
      << trojan::to_string(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAllDefenses, AttackDefenseMatrix,
    ::testing::Combine(::testing::Values(TargetKind::kDest, TargetKind::kSrc,
                                         TargetKind::kDestSrc,
                                         TargetKind::kMem, TargetKind::kVc,
                                         TargetKind::kThread,
                                         TargetKind::kFull),
                       ::testing::Values(sim::MitigationMode::kLOb,
                                         sim::MitigationMode::kReroute)));

class UnmitigatedMatrix : public ::testing::TestWithParam<TargetKind> {};

TEST_P(UnmitigatedMatrix, SustainedTriggerNeverCompletesWithoutMitigation) {
  const TargetKind kind = GetParam();
  sim::SimConfig sc;
  sc.mode = sim::MitigationMode::kNone;
  sc.attacks = {attack_for(kind)};
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 19u + static_cast<std::uint64_t>(kind);
  gp.total_requests = 1500;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  Cycle c = 0;
  while (!gen.done() && c < 30000) {
    gen.step();
    simulator.step();
    ++c;
  }
  EXPECT_FALSE(gen.done()) << trojan::to_string(kind)
                           << ": the first struck flit wedges forever";
  EXPECT_EQ(net.check_invariants(), "");
}

INSTANTIATE_TEST_SUITE_P(AllKinds, UnmitigatedMatrix,
                         ::testing::Values(TargetKind::kDest, TargetKind::kSrc,
                                           TargetKind::kMem,
                                           TargetKind::kThread,
                                           TargetKind::kFull));

TEST(RandomFailureSets, RerouteCompletesOverRandomConnectedFailures) {
  // Property: for random trojan-link sets whose bidirectional removal keeps
  // the mesh connected, the reroute policy always reconfigures and the
  // workload always completes.
  Rng rng(0xFEED5EED);
  for (int trial = 0; trial < 6; ++trial) {
    // Draw up to 4 random links, skipping draws that would disconnect.
    NocConfig probe_cfg;
    Network probe(probe_cfg);
    std::vector<LinkRef> links;
    for (int k = 0; k < 4; ++k) {
      const auto r = static_cast<RouterId>(rng.next_below(16));
      const auto d = static_cast<Direction>(rng.next_below(4));
      if (!probe.geometry().has_neighbor(r, d)) continue;
      if (probe.would_disconnect({r, d})) continue;
      probe.disable_link({r, d});
      probe.disable_link({probe.geometry().neighbor(r, d), opposite(d)});
      links.push_back({r, d});
    }
    if (links.empty()) continue;

    sim::SimConfig sc;
    sc.mode = sim::MitigationMode::kReroute;
    sc.reroute_latency = 50;
    for (const LinkRef& l : links) {
      sim::AttackSpec a;
      a.link = l;
      a.tasp.kind = TargetKind::kDest;
      a.tasp.target_dest = 0;
      a.enable_killsw_at = 400;
      sc.attacks.push_back(a);
    }
    sim::Simulator simulator(std::move(sc));
    Network& net = simulator.network();
    traffic::DeliveryDispatcher disp;
    disp.install(net);
    traffic::AppTrafficModel model(net.geometry(),
                                   traffic::blackscholes_profile());
    traffic::TrafficGenerator::Params gp;
    gp.seed = 100u + static_cast<std::uint64_t>(trial);
    gp.total_requests = 400;
    traffic::TrafficGenerator gen(net, model, gp, disp);
    simulator.set_drop_callback([&](PacketId id) { gen.requeue(id); });
    Cycle c = 0;
    while (!gen.done() && c < 500000) {
      gen.step();
      ASSERT_NO_THROW(simulator.step()) << "trial " << trial;
      ++c;
    }
    EXPECT_TRUE(gen.done()) << "trial " << trial;
    EXPECT_EQ(net.check_invariants(), "") << "trial " << trial;
  }
}

}  // namespace
}  // namespace htnoc
