// The trace determinism contract: a sweep's captured event traces — down to
// the serialized bytes — are a pure function of {spec, seed}, independent of
// worker thread count, and any single grid point replays byte-identically
// from its RunSpec alone.
#include <gtest/gtest.h>

#include "sweep/emit.hpp"
#include "sweep/runner.hpp"
#include "trace/export.hpp"
#include "trace/forensics.hpp"

namespace {

using namespace htnoc;

sim::AttackSpec single_tasp(Cycle enable_at) {
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = enable_at;
  return a;
}

sweep::SweepSpec fixture_spec() {
  sweep::SweepSpec spec;
  spec.modes = {sim::MitigationMode::kNone, sim::MitigationMode::kLOb};
  spec.attack_scenarios = {{"none", {}}, {"single", {single_tasp(150)}}};
  spec.replicates = 2;
  spec.run_cycles = 400;
  spec.probe_period = 100;
  spec.base_seed = 0xD15EA5E;
  spec.base.trace.enabled = true;
  // Small on purpose: several runs overflow the ring, so thread-invariance
  // also covers the wraparound path.
  spec.base.trace.capacity = std::size_t{1} << 12;
  return spec;
}

std::vector<std::string> trace_images(const sweep::SweepResult& r) {
  std::vector<std::string> out;
  out.reserve(r.runs.size());
  for (const sweep::RunResult& run : r.runs) {
    out.push_back(run.trace ? trace::serialize_binary(*run.trace)
                            : std::string{});
  }
  return out;
}

}  // namespace

TEST(TraceDeterminism, ThreadCountDoesNotChangeTraces) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "built with HTNOC_TRACE=0";
  const sweep::SweepSpec spec = fixture_spec();
  const sweep::SweepResult r1 = sweep::SweepRunner({1}).run(spec);
  const sweep::SweepResult r2 = sweep::SweepRunner({2}).run(spec);
  const sweep::SweepResult r8 = sweep::SweepRunner({8}).run(spec);
  ASSERT_EQ(r1.failures(), 0u);
  ASSERT_EQ(r2.failures(), 0u);
  ASSERT_EQ(r8.failures(), 0u);

  const std::vector<std::string> b1 = trace_images(r1);
  const std::vector<std::string> b2 = trace_images(r2);
  const std::vector<std::string> b8 = trace_images(r8);
  ASSERT_EQ(b1.size(), b2.size());
  ASSERT_EQ(b1.size(), b8.size());
  for (std::size_t i = 0; i < b1.size(); ++i) {
    EXPECT_FALSE(b1[i].empty()) << "run " << i << " captured no trace";
    EXPECT_EQ(b1[i], b2[i]) << "run " << i << ": 1 vs 2 threads";
    EXPECT_EQ(b1[i], b8[i]) << "run " << i << ": 1 vs 8 threads";
    // Byte-identical logs must render to byte-identical JSON too.
    ASSERT_TRUE(r1.runs[i].trace && r8.runs[i].trace);
    EXPECT_EQ(trace::to_chrome_json(*r1.runs[i].trace),
              trace::to_chrome_json(*r8.runs[i].trace))
        << "run " << i;
  }
}

TEST(TraceDeterminism, SingleGridPointReplaysByteIdentically) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "built with HTNOC_TRACE=0";
  const sweep::SweepSpec spec = fixture_spec();
  const std::vector<sweep::RunSpec> runs = sweep::expand(spec);
  // Pick an attacked point (the interesting one forensically).
  const sweep::RunSpec* attacked = nullptr;
  for (const sweep::RunSpec& rs : runs) {
    if (!rs.attacks.empty()) attacked = &rs;
  }
  ASSERT_NE(attacked, nullptr);

  const sweep::RunResult a = sweep::SweepRunner::run_single(spec, *attacked);
  const sweep::RunResult b = sweep::SweepRunner::run_single(spec, *attacked);
  ASSERT_TRUE(a.ok && b.ok);
  ASSERT_TRUE(a.trace && b.trace);
  EXPECT_EQ(trace::serialize_binary(*a.trace),
            trace::serialize_binary(*b.trace));
  EXPECT_EQ(trace::to_chrome_json(*a.trace), trace::to_chrome_json(*b.trace));
}

TEST(TraceDeterminism, TracingDoesNotPerturbSweepMetrics) {
  sweep::SweepSpec traced = fixture_spec();
  sweep::SweepSpec untraced = fixture_spec();
  untraced.base.trace.enabled = false;
  const sweep::SweepResult rt = sweep::SweepRunner({2}).run(traced);
  const sweep::SweepResult ru = sweep::SweepRunner({2}).run(untraced);
  ASSERT_EQ(rt.runs.size(), ru.runs.size());
  for (std::size_t i = 0; i < rt.runs.size(); ++i) {
    EXPECT_EQ(rt.runs[i].metrics(), ru.runs[i].metrics()) << "run " << i;
    EXPECT_EQ(ru.runs[i].trace, nullptr);
  }
}

TEST(TraceDeterminism, WavefrontAgreesWithUtilizationProbe) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "built with HTNOC_TRACE=0";
  sweep::SweepSpec spec = fixture_spec();
  spec.run_cycles = 900;  // give the DoS tree time to saturate
  const std::vector<sweep::RunSpec> runs = sweep::expand(spec);
  for (const sweep::RunSpec& rs : runs) {
    if (rs.attacks.empty() || rs.mode != sim::MitigationMode::kNone) continue;
    sweep::RunSpec capture = rs;
    // Saturation-only capture in a ring big enough to never wrap, so the
    // forensic blocked-at-end set is exact.
    capture.trace.categories = trace::raw(trace::Category::kSaturation);
    capture.trace.capacity = std::size_t{1} << 16;
    const sweep::RunResult res = sweep::SweepRunner::run_single(spec, capture);
    ASSERT_TRUE(res.ok);
    ASSERT_TRUE(res.trace);
    ASSERT_EQ(res.trace->dropped(), 0u);
    const trace::ForensicReport rep = trace::analyze(*res.trace);
    EXPECT_EQ(rep.routers_blocked_at_end,
              static_cast<std::size_t>(
                  res.final_util.routers_with_blocked_port))
        << rs.label();
    EXPECT_GT(rep.routers_ever_blocked, 0u) << rs.label();
  }
}
