#include "noc/routing.hpp"

#include <gtest/gtest.h>

namespace htnoc {
namespace {

class XyTest : public ::testing::Test {
 protected:
  MeshGeometry geom{4, 4, 4};
  XyRouting xy{geom};

  Flit flit_to(RouterId dest_router, NodeId dest_core) const {
    Flit f;
    f.dest_router = dest_router;
    f.dest_core = dest_core;
    return f;
  }
};

TEST_F(XyTest, LocalDelivery) {
  // dest core 2 lives on router 0, slot 2.
  const RouteDecision d = xy.route(0, flit_to(0, 2));
  EXPECT_EQ(d.out_port, kPortLocalBase + 2);
}

TEST_F(XyTest, XBeforeY) {
  // From r0 (0,0) to r15 (3,3): east first.
  EXPECT_EQ(xy.route(0, flit_to(15, 60)).out_port, kPortEast);
  // From r3 (3,0) to r12 (0,3): west first.
  EXPECT_EQ(xy.route(3, flit_to(12, 48)).out_port, kPortWest);
  // Same column: go vertical.
  EXPECT_EQ(xy.route(1, flit_to(13, 52)).out_port, kPortSouth);
  EXPECT_EQ(xy.route(13, flit_to(1, 4)).out_port, kPortNorth);
}

TEST_F(XyTest, EveryPairReachesDestination) {
  // Walk the route hop by hop for every (src, dest) pair; it must terminate
  // at the destination within the Manhattan distance.
  for (RouterId s = 0; s < 16; ++s) {
    for (NodeId dc = 0; dc < 64; ++dc) {
      const RouterId dr = geom.router_of_core(dc);
      RouterId here = s;
      int hops = 0;
      while (true) {
        const RouteDecision d = xy.route(here, flit_to(dr, dc));
        ASSERT_GE(d.out_port, 0);
        if (is_local_port(d.out_port)) {
          EXPECT_EQ(here, dr);
          EXPECT_EQ(d.out_port - kPortLocalBase, geom.local_slot_of_core(dc));
          break;
        }
        here = geom.neighbor(here, port_direction(d.out_port));
        ++hops;
        ASSERT_LE(hops, geom.hop_distance(s, dr)) << "non-minimal route";
      }
      EXPECT_EQ(hops, geom.hop_distance(s, dr));
    }
  }
}

TEST_F(XyTest, NoIllegalTurns) {
  // Dimension-order: once a packet moves vertically it never moves
  // horizontally again. Verify over all pairs.
  for (RouterId s = 0; s < 16; ++s) {
    for (RouterId dr = 0; dr < 16; ++dr) {
      if (s == dr) continue;
      RouterId here = s;
      bool moved_vertically = false;
      while (here != dr) {
        const RouteDecision d =
            xy.route(here, flit_to(dr, geom.core_at(dr, 0)));
        const Direction dir = port_direction(d.out_port);
        if (dir == Direction::kNorth || dir == Direction::kSouth) {
          moved_vertically = true;
        } else {
          EXPECT_FALSE(moved_vertically)
              << "y->x turn from " << s << " to " << dr;
        }
        here = geom.neighbor(here, dir);
      }
    }
  }
}

TEST_F(XyTest, PortConventions) {
  EXPECT_EQ(direction_port(Direction::kNorth), kPortNorth);
  EXPECT_EQ(direction_port(Direction::kWest), kPortWest);
  EXPECT_EQ(port_direction(2), Direction::kEast);
  EXPECT_FALSE(is_local_port(3));
  EXPECT_TRUE(is_local_port(4));
  EXPECT_EQ(xy.name(), "xy");
}

}  // namespace
}  // namespace htnoc
