#include <gtest/gtest.h>

#include "common/config.hpp"
#include "common/expect.hpp"
#include "common/log.hpp"
#include "common/types.hpp"

namespace htnoc {
namespace {

TEST(Config, DefaultsMatchPaperPlatform) {
  const NocConfig cfg;
  EXPECT_EQ(cfg.mesh_width, 4);
  EXPECT_EQ(cfg.mesh_height, 4);
  EXPECT_EQ(cfg.concentration, 4);
  EXPECT_EQ(cfg.num_cores(), 64);
  EXPECT_EQ(cfg.num_routers(), 16);
  EXPECT_EQ(cfg.vcs_per_port, 4);
  EXPECT_EQ(cfg.buffer_depth, 4);
  EXPECT_EQ(cfg.pipeline_depth(), 5);  // BW/RC, VA, SA, ST, LT
  EXPECT_EQ(cfg.ports_per_router(), 8);
  EXPECT_EQ(cfg.ecc_scheme, EccScheme::kSecded);
  EXPECT_EQ(cfg.retrans_scheme, RetransmissionScheme::kOutputBuffer);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, ValidateRejectsEachBadField) {
  const auto expect_invalid = [](auto mutate) {
    NocConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), ContractViolation);
  };
  expect_invalid([](NocConfig& c) { c.mesh_width = 1; });
  expect_invalid([](NocConfig& c) { c.mesh_height = 0; });
  expect_invalid([](NocConfig& c) { c.concentration = 0; });
  expect_invalid([](NocConfig& c) { c.concentration = 17; });
  expect_invalid([](NocConfig& c) { c.vcs_per_port = 0; });
  expect_invalid([](NocConfig& c) { c.buffer_depth = 0; });
  expect_invalid([](NocConfig& c) { c.retrans_depth = 0; });
  expect_invalid([](NocConfig& c) { c.retrans_per_vc_depth = 0; });
  expect_invalid([](NocConfig& c) { c.stage_lt = 0; });
  expect_invalid([](NocConfig& c) { c.injection_queue_depth = 0; });
  expect_invalid([](NocConfig& c) {
    c.tdm_enabled = true;
    c.vcs_per_port = 3;  // TDM needs an even split
  });
}

TEST(Contracts, MacrosThrowWithLocation) {
  try {
    HTNOC_EXPECT(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
  EXPECT_THROW(HTNOC_ENSURE(false), ContractViolation);
  EXPECT_THROW(HTNOC_INVARIANT(false), ContractViolation);
  EXPECT_NO_THROW(HTNOC_EXPECT(true));
}

TEST(Log, LevelGatesOutput) {
  const LogLevel before = Log::level();
  Log::set_level(LogLevel::kError);
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
  EXPECT_FALSE(Log::enabled(LogLevel::kInfo));
  Log::set_level(LogLevel::kDebug);
  EXPECT_TRUE(Log::enabled(LogLevel::kInfo));
  EXPECT_FALSE(Log::enabled(LogLevel::kTrace));
  // The helpers format lazily and never crash.
  log_error("e", 1);
  log_warn("w", 2.5);
  log_info("i ", std::string("x"));
  log_debug("d");
  Log::set_level(before);
}

TEST(Types, OppositeDirections) {
  EXPECT_EQ(opposite(Direction::kNorth), Direction::kSouth);
  EXPECT_EQ(opposite(Direction::kSouth), Direction::kNorth);
  EXPECT_EQ(opposite(Direction::kEast), Direction::kWest);
  EXPECT_EQ(opposite(Direction::kWest), Direction::kEast);
  EXPECT_EQ(opposite(Direction::kLocal), Direction::kLocal);
}

TEST(Types, HeadTailPredicates) {
  EXPECT_TRUE(is_head(FlitType::kHead));
  EXPECT_TRUE(is_head(FlitType::kHeadTail));
  EXPECT_FALSE(is_head(FlitType::kBody));
  EXPECT_FALSE(is_head(FlitType::kTail));
  EXPECT_TRUE(is_tail(FlitType::kTail));
  EXPECT_TRUE(is_tail(FlitType::kHeadTail));
  EXPECT_FALSE(is_tail(FlitType::kHead));
}

}  // namespace
}  // namespace htnoc
