#include "traffic/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "traffic/generator.hpp"
#include "traffic/replayer.hpp"

namespace htnoc::traffic {
namespace {

TraceRecord make_rec(Cycle cycle, NodeId src, NodeId dest, int len) {
  TraceRecord r;
  r.cycle = cycle;
  r.src_core = src;
  r.dest_core = dest;
  r.length = len;
  r.mem_addr = 0xBEEF00 + static_cast<std::uint32_t>(len);
  r.pclass = PacketClass::kRequest;
  r.domain = TdmDomain::kD2;
  return r;
}

TEST(Trace, WriteReadRoundTrip) {
  std::stringstream ss;
  {
    TraceWriter w(ss);
    w.append(make_rec(0, 1, 2, 3));
    w.append(make_rec(5, 10, 63, 1));
    w.append(make_rec(5, 0, 9, 5));
    EXPECT_EQ(w.count(), 3u);
  }
  const auto records = read_trace(ss);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], make_rec(0, 1, 2, 3));
  EXPECT_EQ(records[1], make_rec(5, 10, 63, 1));
  EXPECT_EQ(records[2], make_rec(5, 0, 9, 5));
}

TEST(Trace, CommentsAndBlankLinesIgnored) {
  std::stringstream ss("# header\n\n3 1 2 1 ff req 1\n# trailing\n");
  const auto records = read_trace(ss);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].cycle, 3u);
  EXPECT_EQ(records[0].mem_addr, 0xFFu);
  EXPECT_EQ(records[0].pclass, PacketClass::kRequest);
  EXPECT_EQ(records[0].domain, TdmDomain::kD1);
}

TEST(Trace, MalformedLineThrows) {
  std::stringstream ss("1 2 three 4 5 req 1\n");
  EXPECT_THROW((void)read_trace(ss), ContractViolation);
}

TEST(Trace, BadClassTokenThrows) {
  std::stringstream ss("1 2 3 1 ff nonsense 1\n");
  EXPECT_THROW((void)read_trace(ss), ContractViolation);
}

TEST(Trace, NonMonotoneCyclesThrow) {
  std::stringstream ss("5 1 2 1 0 req 1\n3 1 2 1 0 req 1\n");
  EXPECT_THROW((void)read_trace(ss), ContractViolation);
}

TEST(Trace, BadDomainThrows) {
  std::stringstream ss("1 2 3 1 0 req 7\n");
  EXPECT_THROW((void)read_trace(ss), ContractViolation);
}

TEST(Trace, RecorderCapturesInjections) {
  TraceRecorder rec;
  PacketInfo info;
  info.src_core = 4;
  info.dest_core = 40;
  info.length = 2;
  info.mem_addr = 0x1234;
  info.pclass = PacketClass::kReply;
  info.domain = TdmDomain::kD1;
  rec.record(77, info);
  ASSERT_EQ(rec.records().size(), 1u);
  EXPECT_EQ(rec.records()[0].cycle, 77u);
  EXPECT_EQ(rec.records()[0].dest_core, 40);

  std::stringstream ss;
  rec.write(ss);
  const auto back = read_trace(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].pclass, PacketClass::kReply);
}

TEST(Trace, RecordReplayWorkflowDeliversSamePackets) {
  NocConfig cfg;
  // Record a generator run.
  TraceRecorder recorder;
  std::uint64_t recorded_deliveries = 0;
  {
    Network net{cfg};
    DeliveryDispatcher disp;
    disp.install(net);
    AppTrafficModel model(net.geometry(), blackscholes_profile());
    TrafficGenerator::Params p;
    p.seed = 5;
    p.total_requests = 40;
    p.enable_replies = false;
    TrafficGenerator gen(net, model, p, disp);
    // Wrap injection recording by observing NI stats per cycle: simpler, we
    // record from the generator's own view via delivery (src, dest, len).
    Cycle c = 0;
    std::uint64_t last_injected = 0;
    while (!gen.done() && c < 100000) {
      gen.step();
      net.step();
      ++c;
      (void)last_injected;
    }
    recorded_deliveries = gen.stats().packets_delivered;
    // Build a synthetic trace with the same aggregate shape.
    Rng rng(5);
    AppTrafficModel model2(net.geometry(), blackscholes_profile());
    for (std::uint64_t i = 0; i < recorded_deliveries; ++i) {
      PacketInfo info;
      info.src_core = static_cast<NodeId>(rng.next_below(64));
      info.dest_core = model2.pick_dest(info.src_core, rng);
      info.length = model2.pick_length(rng);
      info.mem_addr = model2.pick_mem(rng);
      info.pclass = PacketClass::kRequest;
      recorder.record(i * 2, info);
    }
  }
  // Replay it.
  std::stringstream ss;
  recorder.write(ss);
  const auto trace = read_trace(ss);
  Network net{cfg};
  DeliveryDispatcher disp;
  disp.install(net);
  TraceReplayer rep(net, trace, disp);
  Cycle c = 0;
  while (!rep.done() && c < 200000) {
    rep.step();
    net.step();
    ++c;
  }
  EXPECT_TRUE(rep.done());
  EXPECT_EQ(rep.stats().packets_delivered, recorded_deliveries);
}

}  // namespace
}  // namespace htnoc::traffic
