// The simulator generalizes beyond the paper's 4x4 platform: larger meshes,
// different concentrations, and the attack/mitigation machinery on an 8x8.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace htnoc {
namespace {

NocConfig mesh8x8() {
  NocConfig cfg;
  cfg.mesh_width = 8;
  cfg.mesh_height = 8;
  cfg.concentration = 1;
  return cfg;
}

TEST(Scaling, EightByEightTopology) {
  Network net(mesh8x8());
  // 2*(7*8 + 8*7) = 224 unidirectional links.
  EXPECT_EQ(net.all_links().size(), 224u);
  EXPECT_EQ(net.geometry().num_cores(), 64);
}

TEST(Scaling, EightByEightDeliversUniformTraffic) {
  Network net(mesh8x8());
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  auto profile = traffic::blackscholes_profile();
  // Router ids in hotspots must exist; they do (0,1,4 < 64).
  traffic::AppTrafficModel model(net.geometry(), profile);
  traffic::TrafficGenerator::Params gp;
  gp.seed = 41;
  gp.total_requests = 300;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  Cycle c = 0;
  while (!gen.done() && c < 300000) {
    gen.step();
    net.step();
    ++c;
    if (c % 100 == 0) ASSERT_EQ(net.check_invariants(), "");
  }
  EXPECT_TRUE(gen.done());
}

TEST(Scaling, AttackAndLObWorkOnEightByEight) {
  sim::SimConfig sc;
  sc.noc = mesh8x8();
  sc.mode = sim::MitigationMode::kLOb;
  sim::AttackSpec a;
  a.link = {8, Direction::kNorth};  // column-0 feeder toward router 0
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = 500;
  sc.attacks.push_back(a);
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 42;
  gp.total_requests = 400;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  Cycle c = 0;
  while (!gen.done() && c < 400000) {
    gen.step();
    simulator.step();
    ++c;
  }
  EXPECT_TRUE(gen.done());
  EXPECT_GT(simulator.tasp(0).stats().injections, 0u);
}

TEST(Scaling, UpdownReconfiguresEightByEight) {
  Network net(mesh8x8());
  net.disable_link({9, Direction::kWest});
  net.disable_link({8, Direction::kEast});
  net.use_updown_routing();
  int delivered = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo&, Cycle) { ++delivered; });
  PacketInfo info;
  info.id = net.next_packet_id();
  info.src_core = 9;
  info.dest_core = 8;
  info.src_router = 9;
  info.dest_router = 8;
  info.length = 2;
  ASSERT_TRUE(net.try_inject(info, {1}));
  net.run(400);
  EXPECT_EQ(delivered, 1);
}

TEST(Scaling, RectangularMeshWithConcentrationTwo) {
  NocConfig cfg;
  cfg.mesh_width = 8;
  cfg.mesh_height = 2;
  cfg.concentration = 2;
  Network net(cfg);
  EXPECT_EQ(net.geometry().num_cores(), 32);
  int delivered = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo&, Cycle) { ++delivered; });
  PacketInfo info;
  info.id = net.next_packet_id();
  info.src_core = 0;
  info.dest_core = 31;
  info.src_router = 0;
  info.dest_router = 15;
  info.length = 3;
  ASSERT_TRUE(net.try_inject(info, {1, 2}));
  net.run(400);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.check_invariants(), "");
}

}  // namespace
}  // namespace htnoc
