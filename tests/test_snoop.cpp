#include "trojan/snoop.hpp"

#include <gtest/gtest.h>

#include "mitigation/e2e.hpp"
#include "noc/network.hpp"

namespace htnoc::trojan {
namespace {

std::uint64_t head_wire(RouterId src, RouterId dest, std::uint32_t mem) {
  wire::HeaderFields h;
  h.src = src;
  h.dest = dest;
  h.mem_addr = mem;
  h.type = FlitType::kHead;
  return wire::pack_header(h);
}

LinkPhit phit_of(std::uint64_t w) {
  LinkPhit p;
  p.flit.wire = w;
  p.codeword = ecc::secded().encode(w);
  return p;
}

TaspParams dest_params(RouterId dest) {
  TaspParams p;
  p.kind = TargetKind::kDest;
  p.target_dest = dest;
  return p;
}

TEST(Snoop, DormantWithoutKillSwitch) {
  SnoopingTrojan t(dest_params(3));
  LinkPhit p = phit_of(head_wire(0, 3, 0));
  t.on_traverse(1, p);
  EXPECT_EQ(t.stats().flits_captured, 0u);
}

TEST(Snoop, CapturesMatchingFlitsWithoutCorruption) {
  SnoopingTrojan t(dest_params(3));
  t.set_kill_switch(true);
  LinkPhit p = phit_of(head_wire(0, 3, 0xCAFE));
  const Codeword72 before = p.codeword;
  t.on_traverse(1, p);
  EXPECT_EQ(p.codeword, before);  // completely passive
  ASSERT_EQ(t.stats().flits_captured, 1u);
  EXPECT_EQ(t.captured().back(), p.flit.wire);
}

TEST(Snoop, IgnoresNonTargets) {
  SnoopingTrojan t(dest_params(3));
  t.set_kill_switch(true);
  LinkPhit p = phit_of(head_wire(0, 5, 0xCAFE));
  t.on_traverse(1, p);
  EXPECT_EQ(t.stats().flits_captured, 0u);
  EXPECT_EQ(t.stats().flits_inspected, 1u);
}

TEST(Snoop, ExfilBufferIsBounded) {
  SnoopingTrojan t(dest_params(3), /*exfil_capacity=*/4);
  t.set_kill_switch(true);
  for (std::uint32_t i = 0; i < 10; ++i) {
    LinkPhit p = phit_of(head_wire(0, 3, i));
    t.on_traverse(i, p);
  }
  EXPECT_EQ(t.stats().flits_captured, 10u);
  EXPECT_EQ(t.captured().size(), 4u);
  // Oldest captures evicted: the survivors are the last four mem values.
  EXPECT_EQ(wire::unpack_header(t.captured().front()).mem_addr, 6u);
}

TEST(Snoop, InvisibleToBist) {
  SnoopingTrojan t(dest_params(3));
  t.set_kill_switch(true);
  Codeword72 cw;
  t.probe(cw);
  EXPECT_EQ(cw, Codeword72{});
}

TEST(Snoop, E2eObfuscationDefeatsMemKeyedSnooping) {
  // The Fort-NoCs insight the paper builds on: scrambling the data payload
  // blinds a content-keyed snoop; routing fields remain exposed.
  TaspParams p;
  p.kind = TargetKind::kMem;
  p.target_mem = 0x40001000;
  SnoopingTrojan mem_snoop(p);
  mem_snoop.set_kill_switch(true);

  const mitigation::E2eObfuscator e2e(0xBEEF);
  const std::uint32_t scrambled = e2e.scramble_mem(2, 8, 0x40001000);
  LinkPhit phit = phit_of(head_wire(2, 8, scrambled));
  mem_snoop.on_traverse(1, phit);
  EXPECT_EQ(mem_snoop.stats().flits_captured, 0u);

  SnoopingTrojan dest_snoop(dest_params(8));
  dest_snoop.set_kill_switch(true);
  dest_snoop.on_traverse(2, phit);
  EXPECT_EQ(dest_snoop.stats().flits_captured, 1u);
}

TEST(Snoop, NetworkTrafficUnaffected) {
  NocConfig cfg;
  Network net(cfg);
  auto snoop = std::make_shared<SnoopingTrojan>(dest_params(0));
  snoop->set_kill_switch(true);
  net.link(4, Direction::kNorth).attach_injector(snoop);

  int delivered = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo&, Cycle) { ++delivered; });
  for (int i = 0; i < 10; ++i) {
    PacketInfo info;
    info.id = net.next_packet_id();
    info.src_core = net.geometry().core_at(8, 0);
    info.dest_core = 0;
    info.src_router = 8;
    info.dest_router = 0;
    info.length = 2;
    while (!net.try_inject(info, {0xAB})) net.step();
    net.step();
  }
  net.run(500);
  EXPECT_EQ(delivered, 10);
  EXPECT_GT(snoop->stats().flits_captured, 0u);
  EXPECT_EQ(net.check_invariants(), "");
}

}  // namespace
}  // namespace htnoc::trojan
