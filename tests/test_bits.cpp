#include "common/bits.hpp"

#include <gtest/gtest.h>

namespace htnoc {
namespace {

TEST(ExtractDeposit, RoundTripSmallFields) {
  std::uint64_t w = 0;
  w = deposit_bits(w, 0, 4, 0xA);
  w = deposit_bits(w, 4, 4, 0x5);
  w = deposit_bits(w, 8, 2, 0x3);
  EXPECT_EQ(extract_bits(w, 0, 4), 0xAu);
  EXPECT_EQ(extract_bits(w, 4, 4), 0x5u);
  EXPECT_EQ(extract_bits(w, 8, 2), 0x3u);
}

TEST(ExtractDeposit, DepositMasksOverflowingField) {
  const std::uint64_t w = deposit_bits(0, 4, 4, 0x1F5);  // only low 4 bits kept
  EXPECT_EQ(extract_bits(w, 4, 4), 0x5u);
  EXPECT_EQ(extract_bits(w, 0, 4), 0u);
  EXPECT_EQ(extract_bits(w, 8, 8), 0u);
}

TEST(ExtractDeposit, FullWidth) {
  const std::uint64_t v = 0xDEADBEEFCAFEF00DULL;
  EXPECT_EQ(extract_bits(v, 0, 64), v);
  EXPECT_EQ(deposit_bits(0, 0, 64, v), v);
}

TEST(ExtractDeposit, DepositPreservesOtherBits) {
  const std::uint64_t base = ~std::uint64_t{0};
  const std::uint64_t w = deposit_bits(base, 10, 32, 0);
  EXPECT_EQ(extract_bits(w, 10, 32), 0u);
  EXPECT_EQ(extract_bits(w, 0, 10), 0x3FFu);
  EXPECT_EQ(extract_bits(w, 42, 22), 0x3FFFFFu);
}

TEST(Codeword72, SetGetFlipAcrossBothWords) {
  Codeword72 cw;
  for (unsigned bit : {0u, 1u, 31u, 63u, 64u, 71u}) {
    EXPECT_FALSE(cw.get(bit));
    cw.set(bit, true);
    EXPECT_TRUE(cw.get(bit));
    cw.flip(bit);
    EXPECT_FALSE(cw.get(bit));
  }
}

TEST(Codeword72, PopcountAndDistance) {
  Codeword72 a;
  a.set(0, true);
  a.set(64, true);
  a.set(71, true);
  EXPECT_EQ(a.popcount(), 3);

  Codeword72 b = a;
  EXPECT_EQ(a.distance(b), 0);
  b.flip(5);
  b.flip(70);
  EXPECT_EQ(a.distance(b), 2);
}

TEST(Codeword72, Equality) {
  Codeword72 a;
  Codeword72 b;
  EXPECT_EQ(a, b);
  a.flip(40);
  EXPECT_NE(a, b);
  b.flip(40);
  EXPECT_EQ(a, b);
}

TEST(Codeword72, BitStringRendering) {
  Codeword72 cw;
  cw.set(0, true);
  const std::string s = to_bit_string(cw);
  ASSERT_EQ(s.size(), 72u);
  EXPECT_EQ(s.back(), '1');   // LSB printed last
  EXPECT_EQ(s.front(), '0');  // bit 71 clear
}

TEST(Parity64, MatchesPopcountParity) {
  EXPECT_FALSE(parity64(0));
  EXPECT_TRUE(parity64(1));
  EXPECT_TRUE(parity64(0x8000000000000000ULL));
  EXPECT_FALSE(parity64(0x8000000000000001ULL));
  EXPECT_FALSE(parity64(0xFFFFFFFFFFFFFFFFULL));  // 64 ones: even
}

}  // namespace
}  // namespace htnoc
