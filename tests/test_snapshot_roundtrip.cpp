// Snapshot/restore round-trip: a restored simulator must resume
// bit-identically — the same per-cycle state digests, the same serialized
// bytes at the end — across serial and parallel stepping, under attack and
// at idle. Plus the rejection surface: corrupt, truncated, mismatched or
// mid-version blobs must throw SnapshotError, never restore garbage.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sim/simulator.hpp"
#include "sweep/spec.hpp"
#include "traffic/app_profile.hpp"
#include "traffic/generator.hpp"
#include "verify/campaign.hpp"
#include "verify/census_digest.hpp"
#include "verify/snapshot.hpp"

namespace htnoc {
namespace {

using verify::load_snapshot;
using verify::save_snapshot;
using verify::SnapshotError;

/// A simulator plus the traffic machinery driving it, built exactly the
/// same way from the same config every time.
struct Rig {
  sim::Simulator sim;
  traffic::DeliveryDispatcher disp;
  traffic::AppTrafficModel model;
  traffic::TrafficGenerator gen;

  explicit Rig(const sim::SimConfig& cfg, double rate_scale = 1.0)
      : sim(cfg), model(sim.network().geometry(), scaled(rate_scale)),
        gen(sim.network(), model,
            [] {
              traffic::TrafficGenerator::Params gp;
              gp.seed = 0xFEED;
              return gp;
            }(),
            disp) {
    disp.install(sim.network());
    sim.set_drop_callback([this](PacketId id) { gen.requeue(id); });
  }

  static traffic::AppProfile scaled(double rate_scale) {
    traffic::AppProfile p = traffic::blackscholes_profile();
    p.injection_rate *= rate_scale;
    return p;
  }

  void step(Cycle n) {
    for (Cycle c = 0; c < n; ++c) {
      gen.step();
      sim.step();
    }
  }

  [[nodiscard]] std::vector<std::uint8_t> save() const {
    return save_snapshot(sim, {&gen});
  }

  void load(const std::vector<std::uint8_t>& blob) {
    load_snapshot(sim, {&gen}, blob);
  }
};

sim::SimConfig attacked_config(int step_threads) {
  sim::SimConfig cfg;
  cfg.noc.step_threads = step_threads;
  cfg.mode = sim::MitigationMode::kLOb;
  cfg.transient_phit_fault_prob = 1e-3;
  sim::AttackSpec atk;
  atk.link = {0, Direction::kEast};
  atk.tasp.kind = trojan::TargetKind::kDest;
  atk.tasp.target_dest = 5;
  // The kill switch fires inside the resumed window, so the trojan FSM
  // transition itself happens after restore.
  atk.enable_killsw_at = 400;
  cfg.attacks.push_back(atk);
  cfg.audit.enabled = true;
  cfg.trace.enabled = true;
  cfg.trace.capacity = 1 << 10;
  return cfg;
}

/// The heart of the tentpole: run A for `pre` cycles, snapshot, keep running
/// A; restore the blob into a fresh B; every subsequent cycle's state digest
/// must match, and at the end the two simulators must serialize to the very
/// same bytes (covering stats, auditor ledger, trace ring, RNG streams —
/// everything the digest does not reach).
void expect_bitwise_resume(const sim::SimConfig& cfg, Cycle pre, Cycle post) {
  Rig a(cfg);
  a.step(pre);
  const std::vector<std::uint8_t> blob = a.save();

  Rig b(cfg);
  b.load(blob);
  ASSERT_EQ(verify::state_digest(a.sim.network()),
            verify::state_digest(b.sim.network()));

  for (Cycle c = 0; c < post; ++c) {
    a.step(1);
    b.step(1);
    ASSERT_EQ(verify::state_digest(a.sim.network()),
              verify::state_digest(b.sim.network()))
        << "diverged " << (c + 1) << " cycles after restore";
  }
  EXPECT_EQ(a.save(), b.save())
      << "post-resume serialized state differs beyond the census digest";
  ASSERT_NE(a.sim.auditor(), nullptr);
  EXPECT_TRUE(a.sim.auditor()->clean()) << a.sim.auditor()->report();
  EXPECT_TRUE(b.sim.auditor()->clean()) << b.sim.auditor()->report();
}

TEST(SnapshotRoundtrip, AttackedResumesBitIdentically) {
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("step_threads=" + std::to_string(threads));
    expect_bitwise_resume(attacked_config(threads), 300, 250);
  }
}

TEST(SnapshotRoundtrip, IdleFabricResumesBitIdentically) {
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("step_threads=" + std::to_string(threads));
    sim::SimConfig cfg;
    cfg.noc.step_threads = threads;
    cfg.audit.enabled = true;
    // Injection throttled to a trickle: most of the fabric sits idle, so
    // the round-trip covers empty buffers, blank slots and quiet links.
    Rig a(cfg, 0.02);
    a.step(100);
    const auto blob = a.save();
    Rig b(cfg, 0.02);
    b.load(blob);
    a.step(100);
    b.step(100);
    EXPECT_EQ(a.save(), b.save());
  }
}

TEST(SnapshotRoundtrip, SnapshotAcrossThreadCountsIsIdentical) {
  // step_threads is outside the substrate fingerprint and outside the
  // state: the same history serializes to the same bytes at any setting.
  auto run = [](int threads) {
    sim::SimConfig cfg = attacked_config(threads);
    Rig r(cfg);
    r.step(350);
    std::vector<std::uint8_t> blob = r.save();
    // The fingerprint covers only the substrate, so blobs from different
    // step_threads are interchangeable — including their envelope bytes.
    return blob;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(SnapshotRoundtrip, RestoreAcrossThreadCounts) {
  // A blob saved from a serial run restores into a parallel-stepping
  // simulator and still resumes bit-identically.
  Rig a(attacked_config(1));
  a.step(300);
  const auto blob = a.save();
  a.step(200);

  Rig b(attacked_config(8));
  b.load(blob);
  b.step(200);
  EXPECT_EQ(verify::state_digest(a.sim.network()),
            verify::state_digest(b.sim.network()));
}

TEST(SnapshotRoundtrip, CorruptPayloadRejected) {
  Rig a(attacked_config(1));
  a.step(120);
  std::vector<std::uint8_t> blob = a.save();
  blob[blob.size() / 2] ^= 0x40;
  Rig b(attacked_config(1));
  EXPECT_THROW(b.load(blob), SnapshotError);
}

TEST(SnapshotRoundtrip, TruncatedBlobRejected) {
  Rig a(attacked_config(1));
  a.step(120);
  const std::vector<std::uint8_t> blob = a.save();
  Rig b(attacked_config(1));
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{10}, std::size_t{35}, blob.size() - 1}) {
    std::vector<std::uint8_t> cut(blob.begin(),
                                  blob.begin() + static_cast<long>(keep));
    EXPECT_THROW(b.load(cut), SnapshotError) << "kept " << keep << " bytes";
  }
}

TEST(SnapshotRoundtrip, BadMagicAndVersionRejected) {
  Rig a(attacked_config(1));
  a.step(50);
  std::vector<std::uint8_t> blob = a.save();
  Rig b(attacked_config(1));

  std::vector<std::uint8_t> wrong_magic = blob;
  wrong_magic[0] = 'X';
  EXPECT_THROW(b.load(wrong_magic), SnapshotError);

  std::vector<std::uint8_t> wrong_version = blob;
  wrong_version[8] ^= 0xFF;  // version u32 lives right after the magic
  EXPECT_THROW(b.load(wrong_version), SnapshotError);
}

TEST(SnapshotRoundtrip, SubstrateMismatchRejected) {
  Rig a(attacked_config(1));
  a.step(50);
  const auto blob = a.save();

  sim::SimConfig other = attacked_config(1);
  other.noc.buffer_depth += 2;
  Rig b(other);
  EXPECT_THROW(b.load(blob), SnapshotError);
}

TEST(SnapshotRoundtrip, GeneratorCountMismatchRejected) {
  Rig a(attacked_config(1));
  a.step(50);
  const auto blob = a.save();
  Rig b(attacked_config(1));
  EXPECT_THROW(load_snapshot(b.sim, {}, blob), SnapshotError);
}

TEST(SnapshotRoundtrip, CleanBlobForksIntoAttackedScenario) {
  // The campaign's warmup fork in miniature: a snapshot of a clean fabric
  // restores into a simulator carrying attacks and mitigation the blob has
  // never seen — injector prefix matching and empty mitigation sections
  // leave the new machinery fresh — and the fork is deterministic.
  sim::SimConfig clean;
  clean.audit.enabled = true;
  Rig warm(clean);
  warm.step(300);
  const auto blob = warm.save();

  sim::SimConfig hostile = attacked_config(1);
  hostile.trace.enabled = false;  // warmup had no sink; presence must match
  auto fork = [&] {
    Rig r(hostile);
    r.load(blob);
    r.step(400);
    return r.save();
  };
  const auto once = fork();
  EXPECT_EQ(once, fork());
  EXPECT_NE(once, blob);
}

TEST(SnapshotRoundtrip, WarmupCampaignDeterministicAndReplayable) {
  // End-to-end over the campaign layer: a snapshot-forking campaign is
  // deterministic across runs and thread counts, and run_scenario (the
  // repro path, which rebuilds the warmup blob itself) reproduces any
  // scenario byte-for-byte.
  verify::CampaignSpec spec;
  spec.seed = 0x5EED0;
  spec.scenarios = 6;
  spec.warmup_cycles = 200;
  spec.threads = 2;
  const verify::CampaignResult first = verify::FaultCampaign(spec).run();
  const verify::CampaignResult again = verify::FaultCampaign(spec).run();
  EXPECT_EQ(first.summary_text(), again.summary_text());

  for (const verify::ScenarioResult& s : first.scenarios) {
    const verify::ScenarioResult replay =
        verify::FaultCampaign::run_scenario(spec, s.index);
    EXPECT_EQ(replay.ok, s.ok) << s.descriptor;
    EXPECT_EQ(replay.descriptor, s.descriptor);
    EXPECT_EQ(replay.delivered, s.delivered) << s.descriptor;
    EXPECT_EQ(replay.purged, s.purged) << s.descriptor;
    EXPECT_EQ(replay.error, s.error) << s.descriptor;
  }
}

TEST(SnapshotRoundtrip, WarmupEquivalenceAcrossStepThreads) {
  verify::CampaignSpec spec;
  spec.seed = 0xA11CE;
  spec.scenarios = 4;
  spec.warmup_cycles = 150;
  EXPECT_EQ(verify::FaultCampaign::equivalence_report(spec, 4), "");
}

}  // namespace
}  // namespace htnoc
