#include "common/geometry.hpp"

#include <gtest/gtest.h>

namespace htnoc {
namespace {

class Geometry4x4 : public ::testing::Test {
 protected:
  MeshGeometry geom{4, 4, 4};  // the paper's 64-core CMesh
};

TEST_F(Geometry4x4, Sizes) {
  EXPECT_EQ(geom.num_routers(), 16);
  EXPECT_EQ(geom.num_cores(), 64);
  EXPECT_EQ(geom.concentration(), 4);
}

TEST_F(Geometry4x4, CoordRoundTrip) {
  for (RouterId r = 0; r < 16; ++r) {
    EXPECT_EQ(geom.router_at(geom.coord_of(r)), r);
  }
}

TEST_F(Geometry4x4, CornerNeighbors) {
  EXPECT_FALSE(geom.has_neighbor(0, Direction::kNorth));
  EXPECT_FALSE(geom.has_neighbor(0, Direction::kWest));
  EXPECT_TRUE(geom.has_neighbor(0, Direction::kEast));
  EXPECT_TRUE(geom.has_neighbor(0, Direction::kSouth));
  EXPECT_EQ(geom.neighbor(0, Direction::kEast), 1);
  EXPECT_EQ(geom.neighbor(0, Direction::kSouth), 4);

  EXPECT_FALSE(geom.has_neighbor(15, Direction::kSouth));
  EXPECT_FALSE(geom.has_neighbor(15, Direction::kEast));
  EXPECT_EQ(geom.neighbor(15, Direction::kNorth), 11);
  EXPECT_EQ(geom.neighbor(15, Direction::kWest), 14);
}

TEST_F(Geometry4x4, NeighborSymmetry) {
  for (RouterId r = 0; r < 16; ++r) {
    for (const Direction d : {Direction::kNorth, Direction::kSouth,
                              Direction::kEast, Direction::kWest}) {
      if (!geom.has_neighbor(r, d)) continue;
      const RouterId nb = geom.neighbor(r, d);
      ASSERT_TRUE(geom.has_neighbor(nb, opposite(d)));
      EXPECT_EQ(geom.neighbor(nb, opposite(d)), r);
    }
  }
}

TEST_F(Geometry4x4, CoreMapping) {
  for (NodeId c = 0; c < 64; ++c) {
    const RouterId r = geom.router_of_core(c);
    const int slot = geom.local_slot_of_core(c);
    EXPECT_EQ(geom.core_at(r, slot), c);
  }
  EXPECT_EQ(geom.router_of_core(0), 0);
  EXPECT_EQ(geom.router_of_core(3), 0);
  EXPECT_EQ(geom.router_of_core(4), 1);
  EXPECT_EQ(geom.router_of_core(63), 15);
}

TEST_F(Geometry4x4, HopDistance) {
  EXPECT_EQ(geom.hop_distance(0, 0), 0);
  EXPECT_EQ(geom.hop_distance(0, 1), 1);
  EXPECT_EQ(geom.hop_distance(0, 5), 2);
  EXPECT_EQ(geom.hop_distance(0, 15), 6);
  EXPECT_EQ(geom.hop_distance(3, 12), 6);
}

TEST_F(Geometry4x4, HopDistanceSymmetricAndTriangle) {
  for (RouterId a = 0; a < 16; ++a) {
    for (RouterId b = 0; b < 16; ++b) {
      EXPECT_EQ(geom.hop_distance(a, b), geom.hop_distance(b, a));
      for (RouterId c = 0; c < 16; ++c) {
        EXPECT_LE(geom.hop_distance(a, c),
                  geom.hop_distance(a, b) + geom.hop_distance(b, c));
      }
    }
  }
}

TEST(Geometry, RejectsDegenerateShapes) {
  EXPECT_THROW(MeshGeometry(0, 4, 4), ContractViolation);
  EXPECT_THROW(MeshGeometry(4, -1, 4), ContractViolation);
  EXPECT_THROW(MeshGeometry(4, 4, 0), ContractViolation);
}

TEST(Geometry, NonSquareMesh) {
  const MeshGeometry g(8, 2, 1);
  EXPECT_EQ(g.num_routers(), 16);
  EXPECT_EQ(g.num_cores(), 16);
  EXPECT_EQ(g.coord_of(9).x, 1);
  EXPECT_EQ(g.coord_of(9).y, 1);
  EXPECT_FALSE(g.has_neighbor(9, Direction::kSouth));
}

}  // namespace
}  // namespace htnoc
