// OS process migration as a mitigation complement (paper Sec. IV-B:
// "more aggressive approaches ... such as rerouting packets or invoking the
// OS to migrate processes from one network region to another which can be
// used to complement our proposed design").
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace htnoc::traffic {
namespace {

TEST(Migration, HotspotWeightMoves) {
  const MeshGeometry geom(4, 4, 4);
  AppTrafficModel model(geom, blackscholes_profile());
  Rng rng(71);
  int to_r0_before = 0;
  for (int i = 0; i < 5000; ++i) {
    if (geom.router_of_core(model.pick_dest(37, rng)) == 0) ++to_r0_before;
  }
  model.migrate_hotspot(0, 15);
  int to_r0_after = 0;
  int to_r15_after = 0;
  for (int i = 0; i < 5000; ++i) {
    const RouterId d = geom.router_of_core(model.pick_dest(37, rng));
    if (d == 0) ++to_r0_after;
    if (d == 15) ++to_r15_after;
  }
  EXPECT_LT(to_r0_after, to_r0_before / 3);
  EXPECT_GT(to_r15_after, to_r0_before / 3);
}

TEST(Migration, RejectsBadRouters) {
  const MeshGeometry geom(4, 4, 4);
  AppTrafficModel model(geom, blackscholes_profile());
  EXPECT_THROW(model.migrate_hotspot(99, 0), ContractViolation);
  EXPECT_THROW(model.migrate_hotspot(0, 99), ContractViolation);
}

TEST(Migration, StarvesTheTrojanOfTargets) {
  // Detection -> migrate the victim app away from router 0 -> the dest-0
  // trojan stops sighting targets and new traffic recovers. (Old wedged
  // flits stay wedged: migration complements, not replaces, L-Ob/reroute.)
  sim::SimConfig sc;
  sc.mode = sim::MitigationMode::kLOb;  // detector wired; L-Ob helps drain
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = 800;
  sc.attacks.push_back(a);
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  AppTrafficModel model(net.geometry(), blackscholes_profile());
  TrafficGenerator::Params gp;
  gp.seed = 72;
  TrafficGenerator gen(net, model, gp, disp);

  bool migrated = false;
  std::uint64_t sightings_at_migration = 0;
  for (Cycle c = 0; c < 4000; ++c) {
    gen.step();
    simulator.step();
    if (!migrated &&
        simulator.detector(0).classification(
            direction_port(Direction::kSouth)) ==
            mitigation::LinkThreatClass::kTrojan) {
      gen.migrate_hotspot(0, 15);  // OS moves the victim processes
      migrated = true;
      sightings_at_migration = simulator.tasp(0).stats().target_sightings;
    }
  }
  ASSERT_TRUE(migrated);
  EXPECT_EQ(gen.stats().migrations, 1u);
  // New traffic no longer feeds the trojan: sightings taper off (a small
  // residue drains from pre-migration backlogs).
  const std::uint64_t post = simulator.tasp(0).stats().target_sightings -
                             sightings_at_migration;
  EXPECT_LT(post, sightings_at_migration + 300);
  // The application keeps making progress after migration.
  EXPECT_GT(gen.stats().packets_delivered, 1000u);
}

}  // namespace
}  // namespace htnoc::traffic
