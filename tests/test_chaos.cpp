// Randomized stress ("chaos") testing: drive the network with randomized
// injections, purges, trojan toggles and fault bursts, checking the credit-
// conservation invariant throughout and full drain at the end. Seeds are
// fixed so failures reproduce exactly.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace htnoc {
namespace {

class ChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosTest, RandomOperationsPreserveInvariants) {
  Rng rng(GetParam());

  sim::SimConfig sc;
  sc.mode = sim::MitigationMode::kLOb;
  sc.transient_phit_fault_prob = 2e-4;
  // Two trojans with different targets and enable times.
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = 300 + rng.next_below(200);
  sc.attacks.push_back(a);
  sim::AttackSpec b;
  b.link = {9, Direction::kWest};
  b.tasp.kind = trojan::TargetKind::kSrc;
  b.tasp.target_src = 10;
  b.enable_killsw_at = 500 + rng.next_below(300);
  sc.attacks.push_back(b);

  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();

  std::map<PacketId, bool> outstanding;
  net.set_delivery_callback([&](Cycle, const PacketInfo& info, Cycle) {
    outstanding.erase(info.id);
  });

  const int num_cores = net.geometry().num_cores();
  Cycle horizon = 3000;
  for (Cycle c = 0; c < horizon; ++c) {
    // Random injections.
    const int injections = static_cast<int>(rng.next_below(3));
    for (int i = 0; i < injections; ++i) {
      PacketInfo info;
      info.id = net.next_packet_id();
      info.src_core = static_cast<NodeId>(rng.next_below(num_cores));
      do {
        info.dest_core = static_cast<NodeId>(rng.next_below(num_cores));
      } while (info.dest_core == info.src_core);
      info.src_router = net.geometry().router_of_core(info.src_core);
      info.dest_router = net.geometry().router_of_core(info.dest_core);
      info.length = 1 + static_cast<int>(rng.next_below(5));
      info.pclass =
          rng.next_bool(0.5) ? PacketClass::kRequest : PacketClass::kReply;
      info.inject_cycle = net.now();
      if (net.try_inject(info,
                         std::vector<std::uint64_t>(
                             static_cast<std::size_t>(info.length - 1),
                             rng.next_u64()))) {
        outstanding[info.id] = true;
      }
    }
    // Occasionally purge a random outstanding packet (recovery drill).
    if (!outstanding.empty() && rng.next_bool(0.01)) {
      auto it = outstanding.begin();
      std::advance(it, static_cast<long>(
                           rng.next_below(outstanding.size())));
      for (const PacketId dropped : net.purge_packet(it->first)) {
        outstanding.erase(dropped);
      }
    }
    // Occasionally toggle a trojan's kill switch.
    if (rng.next_bool(0.002)) {
      auto& t = simulator.tasp(rng.next_below(2));
      t.set_kill_switch(!t.kill_switch());
    }
    simulator.step();
    if (c % 13 == 0) {
      ASSERT_EQ(net.check_invariants(), "") << "seed " << GetParam()
                                            << " cycle " << c;
    }
  }

  // Silence the trojans and drain. L-Ob guarantees eventual delivery of the
  // wedged flits too.
  for (std::size_t t = 0; t < simulator.num_trojans(); ++t) {
    simulator.tasp(t).set_kill_switch(false);
  }
  Cycle drained = 0;
  while (!net.quiescent() && drained < 20000) {
    simulator.step();
    ++drained;
  }
  EXPECT_TRUE(net.quiescent()) << "seed " << GetParam();
  EXPECT_TRUE(outstanding.empty())
      << "seed " << GetParam() << ": " << outstanding.size()
      << " packets never delivered";
  EXPECT_EQ(net.check_invariants(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1ull, 2ull, 3ull, 1337ull,
                                           0xDEADBEEFull));

}  // namespace
}  // namespace htnoc
