#include "power/blocks.hpp"

#include <gtest/gtest.h>

namespace htnoc::power {
namespace {

using trojan::TargetKind;

TEST(PowerPrimitives, ComparatorScalesWithWidth) {
  EXPECT_LT(comparator(4).area_um2(), comparator(32).area_um2());
  EXPECT_LT(comparator(32).area_um2(), comparator(42).area_um2());
  EXPECT_LT(comparator(4).leakage_nw(), comparator(42).leakage_nw());
}

TEST(PowerPrimitives, CombinePreservesTotals) {
  const BlockEstimate a = comparator(8);
  const BlockEstimate b = payload_counter(8);
  const BlockEstimate c = BlockEstimate::combine("ab", {a, b});
  EXPECT_DOUBLE_EQ(c.gates, a.gates + b.gates);
  EXPECT_DOUBLE_EQ(c.flipflops, a.flipflops + b.flipflops);
  EXPECT_NEAR(c.area_um2(), a.area_um2() + b.area_um2(), 1e-9);
  EXPECT_NEAR(c.leakage_nw(), a.leakage_nw() + b.leakage_nw(), 1e-9);
  EXPECT_NEAR(c.dynamic_uw(), a.dynamic_uw() + b.dynamic_uw(), 1e-9);
  EXPECT_GE(c.logic_depth, std::max(a.logic_depth, b.logic_depth));
}

TEST(TaspModel, AreaOrderingMatchesPaperTableI) {
  // Paper ordering by area: VC < Dest = Src < DestSrc < Mem < Full.
  const double vc = tasp_block(TargetKind::kVc).area_um2();
  const double dest = tasp_block(TargetKind::kDest).area_um2();
  const double src = tasp_block(TargetKind::kSrc).area_um2();
  const double ds = tasp_block(TargetKind::kDestSrc).area_um2();
  const double mem = tasp_block(TargetKind::kMem).area_um2();
  const double full = tasp_block(TargetKind::kFull).area_um2();
  EXPECT_LT(vc, dest);
  EXPECT_DOUBLE_EQ(dest, src);
  EXPECT_LT(dest, ds);
  EXPECT_LT(ds, mem);
  EXPECT_LT(mem, full);
}

TEST(TaspModel, AbsoluteValuesNearPaperTableI) {
  // Calibration target: within 2x of every Table I area entry (the model is
  // a GE abstraction, not a synthesis run — see DESIGN.md).
  for (const auto& ref : tasp_paper_reference()) {
    const BlockEstimate b = tasp_block(ref.kind);
    EXPECT_GT(b.area_um2(), ref.area_um2 * 0.5) << to_string(ref.kind);
    EXPECT_LT(b.area_um2(), ref.area_um2 * 2.0) << to_string(ref.kind);
    EXPECT_GT(b.leakage_nw(), ref.leakage_nw * 0.4) << to_string(ref.kind);
    EXPECT_LT(b.leakage_nw(), ref.leakage_nw * 2.5) << to_string(ref.kind);
  }
}

TEST(TaspModel, DestVariantTightlyCalibrated) {
  // The Dest row is the calibration anchor: within 15%.
  const BlockEstimate b = tasp_block(TargetKind::kDest);
  EXPECT_NEAR(b.area_um2(), 33.516, 33.516 * 0.15);
  EXPECT_NEAR(b.dynamic_uw(), 9.9263, 9.9263 * 0.35);
  EXPECT_NEAR(b.leakage_nw(), 16.2355, 16.2355 * 0.25);
}

TEST(TaspModel, AllVariantsMeetTimingAt2GHz) {
  for (const auto& ref : tasp_paper_reference()) {
    const BlockEstimate b = tasp_block(ref.kind);
    EXPECT_TRUE(b.meets_timing()) << to_string(ref.kind);
    EXPECT_LT(b.delay_ns(), 0.5);
    EXPECT_GT(b.delay_ns(), 0.05);
  }
}

TEST(RouterModel, DynamicPowerDominatedByBuffers) {
  const NocConfig cfg;
  const RouterBreakdown rb = router_breakdown(cfg);
  const double total = rb.total.dynamic_uw();
  const double buf = rb.buffers.dynamic_uw() / total;
  const double xbar = rb.crossbar.dynamic_uw() / total;
  // Paper Fig. 8: buffers ~71%, crossbar ~18%.
  EXPECT_GT(buf, 0.55);
  EXPECT_LT(buf, 0.85);
  EXPECT_GT(xbar, 0.08);
  EXPECT_LT(xbar, 0.30);
}

TEST(RouterModel, LeakageEvenMoreBufferDominated) {
  const NocConfig cfg;
  const RouterBreakdown rb = router_breakdown(cfg);
  // Paper Fig. 8: buffer leakage ~88%; our GE model lands a little lower
  // because the SECDED codecs per port carry more leakage share.
  EXPECT_GT(rb.buffers.leakage_nw() / rb.total.leakage_nw(), 0.65);
  EXPECT_GT(rb.buffers.leakage_nw() / rb.total.leakage_nw(),
            rb.buffers.dynamic_uw() / rb.total.dynamic_uw());
}

TEST(RouterModel, SingleTaspIsAboutOnePercentOfRouterPower) {
  const NocConfig cfg;
  const RouterBreakdown rb = router_breakdown(cfg);
  const BlockEstimate t = tasp_block(TargetKind::kDest);
  const double frac = t.dynamic_uw() / rb.total.dynamic_uw();
  // Paper Fig. 8 pie: "Single TASP HT 1%".
  EXPECT_GT(frac, 0.002);
  EXPECT_LT(frac, 0.03);
}

TEST(NocModel, TaspOnAllLinksWellUnderOnePercentOfNocDynamic) {
  const NocConfig cfg;
  const NocBreakdown nb = noc_breakdown(cfg);
  const double frac = nb.tasp_all_links.dynamic_uw() /
                      (nb.routers.dynamic_uw() + nb.tasp_all_links.dynamic_uw());
  // Paper Fig. 8: 48 trojans = 0.56% of NoC dynamic power.
  EXPECT_GT(frac, 0.001);
  EXPECT_LT(frac, 0.02);
}

TEST(NocModel, WireAreaDominatesLikeThePaper) {
  const NocConfig cfg;
  const NocBreakdown nb = noc_breakdown(cfg);
  const double wire_frac = nb.global_wire_area_um2 / nb.total_area_um2();
  // Paper Fig. 8: global wire ~86%, active ~13%.
  EXPECT_GT(wire_frac, 0.80);
  EXPECT_LT(wire_frac, 0.92);
}

TEST(MitigationModel, OverheadMatchesPaperTableII) {
  const NocConfig cfg;
  const MitigationOverhead m = mitigation_overhead(cfg);
  // Paper: +2% area, +6% power over the router.
  EXPECT_GT(m.area_fraction_of_router, 0.01);
  EXPECT_LT(m.area_fraction_of_router, 0.04);
  EXPECT_GT(m.power_fraction_of_router, 0.03);
  EXPECT_LT(m.power_fraction_of_router, 0.10);
}

TEST(MitigationModel, BlocksMeetTiming) {
  EXPECT_TRUE(lob_block().meets_timing());
  EXPECT_TRUE(threat_detector_block().meets_timing());
}

TEST(PowerPrimitives, RejectDegenerateInputs) {
  EXPECT_THROW((void)comparator(0), ContractViolation);
  EXPECT_THROW((void)payload_counter(1), ContractViolation);
  EXPECT_THROW((void)fifo("f", 0), ContractViolation);
  EXPECT_THROW((void)crossbar(1, 64), ContractViolation);
}

TEST(PaperReference, CoversAllSixVariants) {
  EXPECT_EQ(tasp_paper_reference().size(), 6u);
  for (const auto& ref : tasp_paper_reference()) {
    EXPECT_DOUBLE_EQ(ref.timing_ns, 0.21);
    EXPECT_GT(ref.area_um2, 0.0);
  }
}

}  // namespace
}  // namespace htnoc::power
