#include "mitigation/threat_detector.hpp"

#include <gtest/gtest.h>

#include "trojan/tasp.hpp"

namespace htnoc::mitigation {
namespace {

FaultObservation make_obs(Cycle now, int port, PacketId packet, int seq,
                          std::uint8_t syndrome) {
  FaultObservation obs;
  obs.now = now;
  obs.receiver = 2;
  obs.in_port = port;
  obs.flit.packet = packet;
  obs.flit.seq = seq;
  obs.ecc.status = ecc::DecodeStatus::kDetectedDouble;
  obs.ecc.syndrome = syndrome;
  return obs;
}

TEST(ThreatDetector, FirstFaultIsPlainRetransmit) {
  RouterThreatDetector det;
  const NackAdvice a = det.on_uncorrectable(make_obs(10, 0, 1, 0, 0x21));
  EXPECT_FALSE(a.escalate_obfuscation);
  EXPECT_FALSE(a.request_bist);
  EXPECT_EQ(det.classification(0), LinkThreatClass::kTransient);
}

TEST(ThreatDetector, RepeatFaultEscalatesAndDispatchesBist) {
  RouterThreatDetector det;
  (void)det.on_uncorrectable(make_obs(10, 0, 1, 0, 0x21));
  const NackAdvice a = det.on_uncorrectable(make_obs(14, 0, 1, 0, 0x33));
  EXPECT_TRUE(a.escalate_obfuscation);
  EXPECT_TRUE(a.request_bist);
  EXPECT_EQ(det.classification(0), LinkThreatClass::kSuspect);
  EXPECT_EQ(det.port_stats(0).bist_scans, 1u);
}

TEST(ThreatDetector, CleanBistPlusRepeatsClassifiesTrojan) {
  Link link("l", 1);  // no permanent faults attached
  ThreatDetectorParams params;
  params.bist_latency = 4;
  RouterThreatDetector det(params);
  det.set_port_link(0, &link);

  // Two flits each faulting repeatedly.
  (void)det.on_uncorrectable(make_obs(10, 0, 1, 0, 0x21));
  (void)det.on_uncorrectable(make_obs(13, 0, 1, 0, 0x33));
  (void)det.on_uncorrectable(make_obs(16, 0, 2, 0, 0x21));
  (void)det.on_uncorrectable(make_obs(19, 0, 2, 0, 0x45));
  // BIST completes after the latency elapses; next observation picks it up.
  (void)det.on_uncorrectable(make_obs(30, 0, 2, 0, 0x50));
  EXPECT_EQ(det.classification(0), LinkThreatClass::kTrojan);
}

TEST(ThreatDetector, StuckWireClassifiesPermanent) {
  Link link("l", 1);
  link.attach_injector(std::make_shared<PermanentFaultInjector>(
      std::map<unsigned, bool>{{5, true}}));
  ThreatDetectorParams params;
  params.bist_latency = 4;
  RouterThreatDetector det(params);
  det.set_port_link(0, &link);

  (void)det.on_uncorrectable(make_obs(10, 0, 1, 0, 0x05));
  (void)det.on_uncorrectable(make_obs(13, 0, 1, 0, 0x05));
  (void)det.on_uncorrectable(make_obs(30, 0, 2, 0, 0x05));
  EXPECT_EQ(det.classification(0), LinkThreatClass::kPermanent);
}

TEST(ThreatDetector, ClassificationCallbackFiresOnce) {
  Link link("l", 1);
  ThreatDetectorParams params;
  params.bist_latency = 2;
  RouterThreatDetector det(params);
  det.set_port_link(0, &link);
  int calls = 0;
  LinkThreatClass last = LinkThreatClass::kClean;
  det.set_classification_callback([&](int port, LinkThreatClass cls) {
    ++calls;
    last = cls;
    EXPECT_EQ(port, 0);
  });
  for (int i = 0; i < 6; ++i) {
    (void)det.on_uncorrectable(
        make_obs(10 + static_cast<Cycle>(i) * 3, 0, 1 + (i / 2), i % 1, 0x21));
  }
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(last, LinkThreatClass::kTrojan);
}

TEST(ThreatDetector, PortsTrackedIndependently) {
  RouterThreatDetector det;
  (void)det.on_uncorrectable(make_obs(10, 0, 1, 0, 0x21));
  (void)det.on_uncorrectable(make_obs(11, 1, 2, 0, 0x21));
  EXPECT_EQ(det.port_stats(0).uncorrectable, 1u);
  EXPECT_EQ(det.port_stats(1).uncorrectable, 1u);
  EXPECT_EQ(det.port_stats(2).uncorrectable, 0u);
  EXPECT_EQ(det.classification(3), LinkThreatClass::kClean);
}

TEST(ThreatDetector, CorrectedFaultsCountedButBenign) {
  RouterThreatDetector det;
  FaultObservation obs = make_obs(5, 0, 1, 0, 0x07);
  obs.ecc.status = ecc::DecodeStatus::kCorrectedSingle;
  det.on_corrected(obs);
  det.on_corrected(obs);
  EXPECT_EQ(det.port_stats(0).corrected, 2u);
  EXPECT_EQ(det.classification(0), LinkThreatClass::kTransient);
}

TEST(ThreatDetector, HistoryCamEvictsOldEntries) {
  ThreatDetectorParams params;
  params.history_depth = 4;
  RouterThreatDetector det(params);
  // 8 distinct flits fault once each; the CAM holds only 4, so a repeat of
  // flit 1 after eviction looks like a first fault again (no escalation).
  for (PacketId p = 1; p <= 8; ++p) {
    (void)det.on_uncorrectable(make_obs(p * 2, 0, p, 0, 0x21));
  }
  const NackAdvice a = det.on_uncorrectable(make_obs(100, 0, 1, 0, 0x33));
  EXPECT_FALSE(a.escalate_obfuscation);
}

TEST(ThreatDetector, EscalateThresholdConfigurable) {
  ThreatDetectorParams params;
  params.escalate_after = 3;
  RouterThreatDetector det(params);
  (void)det.on_uncorrectable(make_obs(1, 0, 1, 0, 0x21));
  EXPECT_FALSE(det.on_uncorrectable(make_obs(4, 0, 1, 0, 0x22))
                   .escalate_obfuscation);
  EXPECT_TRUE(det.on_uncorrectable(make_obs(7, 0, 1, 0, 0x23))
                  .escalate_obfuscation);
}

TEST(ThreatDetector, SyndromeReuseFlagsSmallPayloadTrojans) {
  // Paper Sec. III-B: faults injected frequently onto the same wires draw
  // attention. A trojan with a tiny payload counter strikes one distinct
  // flit at a time (no per-flit repetition!) but reuses wire pairs; the
  // syndrome-frequency sketch catches it.
  Link link("l", 1);  // clean: BIST will find nothing
  ThreatDetectorParams params;
  params.bist_latency = 2;
  params.escalate_after = 2;
  RouterThreatDetector det(params);
  det.set_port_link(0, &link);
  // Distinct packets, each faulting once, always syndrome 0x21 — plus one
  // packet faulting twice so a BIST gets dispatched.
  (void)det.on_uncorrectable(make_obs(1, 0, 100, 0, 0x21));
  (void)det.on_uncorrectable(make_obs(4, 0, 100, 0, 0x21));  // dispatches BIST
  for (PacketId p = 1; p <= 6; ++p) {
    (void)det.on_uncorrectable(make_obs(10 + p * 3, 0, p, 0, 0x21));
  }
  EXPECT_EQ(det.classification(0), LinkThreatClass::kTrojan);
}

TEST(ThreatDetector, VariedSyndromesDoNotTripTheReuseHeuristic) {
  Link link("l", 1);
  ThreatDetectorParams params;
  params.bist_latency = 2;
  RouterThreatDetector det(params);
  det.set_port_link(0, &link);
  // Single faults on distinct flits with distinct syndromes: transient-like.
  for (PacketId p = 1; p <= 8; ++p) {
    (void)det.on_uncorrectable(
        make_obs(p * 5, 0, p, 0, static_cast<std::uint8_t>(0x10 + p)));
  }
  EXPECT_NE(det.classification(0), LinkThreatClass::kTrojan);
}

TEST(ThreatDetector, ToStringCoversAllClasses) {
  EXPECT_EQ(to_string(LinkThreatClass::kClean), "clean");
  EXPECT_EQ(to_string(LinkThreatClass::kTransient), "transient");
  EXPECT_EQ(to_string(LinkThreatClass::kSuspect), "suspect");
  EXPECT_EQ(to_string(LinkThreatClass::kPermanent), "permanent");
  EXPECT_EQ(to_string(LinkThreatClass::kTrojan), "trojan");
}

}  // namespace
}  // namespace htnoc::mitigation
