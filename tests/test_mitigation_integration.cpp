// End-to-end mitigation tests: the threat detector + L-Ob keep an attacked
// network running (Fig. 12b); rerouting also recovers but at higher cost
// (Fig. 10); and the detector correctly discriminates fault sources.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace htnoc::sim {
namespace {

struct Completion {
  bool done = false;
  Cycle cycles = 0;
  std::uint64_t lob_successes = 0;
  std::uint64_t trojan_injections = 0;
};

Completion run_to_completion(MitigationMode mode, std::uint64_t requests,
                             Cycle budget = 600000,
                             std::vector<LinkRef> infected = {
                                 {4, Direction::kNorth}}) {
  SimConfig sc;
  sc.mode = mode;
  for (const LinkRef& l : infected) {
    AttackSpec a;
    a.link = l;
    a.tasp.kind = trojan::TargetKind::kDest;
    a.tasp.target_dest = 0;
    a.enable_killsw_at = 1000;
    sc.attacks.push_back(a);
  }
  Simulator sim(std::move(sc));
  Network& net = sim.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 1;
  gp.total_requests = requests;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  sim.set_drop_callback([&](PacketId id) { gen.requeue(id); });

  Completion res;
  while (!gen.done() && res.cycles < budget) {
    gen.step();
    sim.step();
    ++res.cycles;
  }
  res.done = gen.done();
  res.trojan_injections = sim.tasp(0).stats().injections;
  if (mode == MitigationMode::kLOb) {
    res.lob_successes =
        sim.lob(4, direction_port(Direction::kNorth)).stats().successes;
  }
  return res;
}

TEST(MitigationIntegration, NoMitigationNeverCompletes) {
  const Completion r = run_to_completion(MitigationMode::kNone, 1000, 60000);
  EXPECT_FALSE(r.done);  // targeted flits retransmit forever
  EXPECT_GT(r.trojan_injections, 100u);
}

TEST(MitigationIntegration, LObCompletesDespiteActiveTrojan) {
  const Completion r = run_to_completion(MitigationMode::kLOb, 1000);
  EXPECT_TRUE(r.done);
  EXPECT_GT(r.trojan_injections, 0u);
  EXPECT_GT(r.lob_successes, 0u);
}

TEST(MitigationIntegration, RerouteCompletesByDisablingTheLink) {
  const Completion r = run_to_completion(MitigationMode::kReroute, 1000);
  EXPECT_TRUE(r.done);
}

TEST(MitigationIntegration, LObFasterThanReroutingUnderAttack) {
  // Fig. 10's headline: with several infected links, continuing to use them
  // through s2s obfuscation clearly beats disabling them and rerouting.
  // (At a single infected link the two are close; the bench sweeps the
  // infection percentage.)
  // Six infected links (12.5% of 48) on dest-0 paths, chosen so the mesh
  // stays connected after the rerouting policy disables them all.
  const std::vector<LinkRef> infected = {{2, Direction::kWest},
                                         {3, Direction::kWest},
                                         {5, Direction::kWest},
                                         {6, Direction::kWest},
                                         {9, Direction::kWest},
                                         {8, Direction::kNorth}};
  const Completion lob =
      run_to_completion(MitigationMode::kLOb, 2000, 600000, infected);
  const Completion rr =
      run_to_completion(MitigationMode::kReroute, 2000, 600000, infected);
  ASSERT_TRUE(lob.done);
  ASSERT_TRUE(rr.done);
  EXPECT_LT(lob.cycles, rr.cycles);
}

TEST(MitigationIntegration, DetectorClassifiesAttackedLinkAsTrojan) {
  SimConfig sc;
  sc.mode = MitigationMode::kLOb;
  AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = 500;
  sc.attacks.push_back(a);
  Simulator sim(std::move(sc));
  Network& net = sim.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 2;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  for (Cycle c = 0; c < 4000; ++c) {
    gen.step();
    sim.step();
  }
  // Router 0 receives the attacked link on its South input port.
  EXPECT_EQ(sim.detector(0).classification(direction_port(Direction::kSouth)),
            mitigation::LinkThreatClass::kTrojan);
  // Untouched ports stay clean/transient.
  EXPECT_NE(sim.detector(0).classification(direction_port(Direction::kEast)),
            mitigation::LinkThreatClass::kTrojan);
}

TEST(MitigationIntegration, LObPenaltyIsSmall) {
  // Average latency with the trojan + L-Ob stays within a modest factor of
  // the attack-free latency (paper: 1-3 cycle penalties only).
  auto avg_latency = [&](bool attack) {
    SimConfig sc;
    sc.mode = MitigationMode::kLOb;
    AttackSpec a;
    a.link = {4, Direction::kNorth};
    a.tasp.kind = trojan::TargetKind::kDest;
    a.tasp.target_dest = 0;
    a.enable_killsw_at = attack ? 0 : 100000000ULL;
    sc.attacks.push_back(a);
    Simulator sim(std::move(sc));
    Network& net = sim.network();
    traffic::DeliveryDispatcher disp;
    disp.install(net);
    traffic::AppTrafficModel model(net.geometry(),
                                   traffic::blackscholes_profile());
    traffic::TrafficGenerator::Params gp;
    gp.seed = 3;
    gp.total_requests = 600;
    traffic::TrafficGenerator gen(net, model, gp, disp);
    Cycle c = 0;
    while (!gen.done() && c < 600000) {
      gen.step();
      sim.step();
      ++c;
    }
    EXPECT_TRUE(gen.done());
    return gen.stats().avg_latency();
  };
  const double clean = avg_latency(false);
  const double attacked = avg_latency(true);
  EXPECT_LT(attacked, clean * 2.0);
}

TEST(MitigationIntegration, SuccessLogShortensLaterEscalations) {
  SimConfig sc;
  sc.mode = MitigationMode::kLOb;
  AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = 0;
  sc.attacks.push_back(a);
  Simulator sim(std::move(sc));
  Network& net = sim.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 4;
  gp.total_requests = 800;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  Cycle c = 0;
  while (!gen.done() && c < 600000) {
    gen.step();
    sim.step();
    ++c;
  }
  ASSERT_TRUE(gen.done());
  const auto& lob = sim.lob(4, direction_port(Direction::kNorth));
  EXPECT_GT(lob.stats().log_hits, 0u);
}

}  // namespace
}  // namespace htnoc::sim
