// TDM QoS (Fig. 12a): two time-division domains share the NoC; a TASP
// attack on domain D2 must not leak into D1.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace htnoc::sim {
namespace {

struct TdmResult {
  std::uint64_t d1_delivered_during_attack = 0;
  std::uint64_t d2_delivered_during_attack = 0;
  std::uint64_t d1_delivered_baseline = 0;
  std::uint64_t d2_delivered_baseline = 0;
};

TdmResult run_tdm(bool attack) {
  SimConfig sc;
  sc.noc.tdm_enabled = true;
  AttackSpec a;
  a.link = {4, Direction::kNorth};
  // The paper's trojan hunts a *target application*; we model that with a
  // memory-range comparator tuned to the D2 app's footprint, so D1 traffic
  // crossing the same link is not targeted (its containment is what TDM is
  // being tested for).
  a.tasp.kind = trojan::TargetKind::kMem;
  a.tasp.target_mem = traffic::blackscholes_profile().mem_base;
  a.tasp.mem_mask = 0xF0000000u;
  a.enable_killsw_at = attack ? 1500 : 100000000ULL;
  sc.attacks.push_back(a);
  Simulator sim(std::move(sc));
  Network& net = sim.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);

  // D1: background uniform-ish load. D2: the targeted blackscholes app.
  auto bg = traffic::fft_profile();
  bg.injection_rate = 0.008;
  traffic::AppTrafficModel m1(net.geometry(), bg);
  traffic::TrafficGenerator::Params p1;
  p1.seed = 10;
  p1.domain = TdmDomain::kD1;
  traffic::TrafficGenerator g1(net, m1, p1, disp);

  auto app = traffic::blackscholes_profile();
  app.injection_rate = 0.008;
  traffic::AppTrafficModel m2(net.geometry(), app);
  traffic::TrafficGenerator::Params p2;
  p2.seed = 20;
  p2.domain = TdmDomain::kD2;
  traffic::TrafficGenerator g2(net, m2, p2, disp);

  TdmResult res;
  std::uint64_t d1_at_attack = 0;
  std::uint64_t d2_at_attack = 0;
  for (Cycle c = 0; c < 3000; ++c) {
    g1.step();
    g2.step();
    sim.step();
    if (c == 1499) {
      res.d1_delivered_baseline = g1.stats().packets_delivered;
      res.d2_delivered_baseline = g2.stats().packets_delivered;
      d1_at_attack = res.d1_delivered_baseline;
      d2_at_attack = res.d2_delivered_baseline;
    }
  }
  res.d1_delivered_during_attack =
      g1.stats().packets_delivered - d1_at_attack;
  res.d2_delivered_during_attack =
      g2.stats().packets_delivered - d2_at_attack;
  return res;
}

TEST(Tdm, BothDomainsHealthyWithoutAttack) {
  const TdmResult r = run_tdm(false);
  EXPECT_GT(r.d1_delivered_during_attack, 100u);
  EXPECT_GT(r.d2_delivered_during_attack, 100u);
}

TEST(Tdm, AttackContainedToTargetDomain) {
  const TdmResult attacked = run_tdm(true);
  const TdmResult clean = run_tdm(false);
  // D2 (the target domain) collapses...
  EXPECT_LT(attacked.d2_delivered_during_attack,
            clean.d2_delivered_during_attack / 3);
  // ...while D1 keeps at least the bulk of its throughput (paper Fig. 12a:
  // the threat is contained to the attacked domain's resources).
  EXPECT_GT(attacked.d1_delivered_during_attack,
            clean.d1_delivered_during_attack / 2);
}

TEST(Tdm, DomainsUseDisjointVcClasses) {
  NocConfig cfg;
  cfg.tdm_enabled = true;
  const auto [d1lo, d1hi] =
      allowed_vc_range(PacketClass::kRequest, TdmDomain::kD1, cfg);
  const auto [d2lo, d2hi] =
      allowed_vc_range(PacketClass::kRequest, TdmDomain::kD2, cfg);
  EXPECT_LT(d1hi, d2lo);
  (void)d1lo;
  (void)d2hi;
}

}  // namespace
}  // namespace htnoc::sim
