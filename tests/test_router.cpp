// Router pipeline tests, driven through a real Network (NIs + links) so the
// 5-stage timing, credits and wormhole behaviour are exercised end to end.
#include "noc/router.hpp"

#include <gtest/gtest.h>

#include "noc/network.hpp"

namespace htnoc {
namespace {

class RouterPipelineTest : public ::testing::Test {
 protected:
  NocConfig cfg;
  Network net{cfg};

  PacketInfo make_packet(NodeId src, NodeId dest, int len) {
    PacketInfo info;
    info.id = net.next_packet_id();
    info.src_core = src;
    info.dest_core = dest;
    info.src_router = net.geometry().router_of_core(src);
    info.dest_router = net.geometry().router_of_core(dest);
    info.length = len;
    info.pclass = PacketClass::kRequest;
    return info;
  }

  std::vector<std::uint64_t> payload(int len) {
    return std::vector<std::uint64_t>(static_cast<std::size_t>(len), 0x77);
  }
};

TEST_F(RouterPipelineTest, SingleHopLatencyMatchesPipeline) {
  // Core 0 -> core 1 (same router 0): NI link + 5-stage pipeline + NI link.
  std::vector<Cycle> latencies;
  net.set_delivery_callback(
      [&](Cycle, const PacketInfo&, Cycle lat) { latencies.push_back(lat); });
  ASSERT_TRUE(net.try_inject(make_packet(0, 1, 1), {}));
  net.run(40);
  ASSERT_EQ(latencies.size(), 1u);
  // inject->NI queue->local link (1) -> BW/RC,VA,SA,ST (4) -> LT (1) -> NI.
  EXPECT_GE(latencies[0], 7u);
  EXPECT_LE(latencies[0], 12u);
}

TEST_F(RouterPipelineTest, PerHopCostIsFiveStages) {
  std::vector<Cycle> lat1hop;
  std::vector<Cycle> lat3hop;
  net.set_delivery_callback([&](Cycle, const PacketInfo& info, Cycle lat) {
    if (info.dest_router == 1) lat1hop.push_back(lat);
    if (info.dest_router == 3) lat3hop.push_back(lat);
  });
  ASSERT_TRUE(net.try_inject(make_packet(0, 4, 1), {}));   // r0 -> r1
  ASSERT_TRUE(net.try_inject(make_packet(0, 12, 1), {}));  // r0 -> r3
  net.run(80);
  ASSERT_EQ(lat1hop.size(), 1u);
  ASSERT_EQ(lat3hop.size(), 1u);
  // Two extra mesh hops at ~5-6 cycles each.
  const Cycle delta = lat3hop[0] - lat1hop[0];
  EXPECT_GE(delta, 8u);
  EXPECT_LE(delta, 14u);
}

TEST_F(RouterPipelineTest, MultiFlitPacketStaysContiguousPerVc) {
  std::uint64_t delivered_flits = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo& info, Cycle) {
    delivered_flits += static_cast<std::uint64_t>(info.length);
  });
  ASSERT_TRUE(net.try_inject(make_packet(0, 20, 5), payload(4)));
  net.run(100);
  EXPECT_EQ(delivered_flits, 5u);
}

TEST_F(RouterPipelineTest, ManyPacketsAllDeliveredNoLoss) {
  int delivered = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo&, Cycle) { ++delivered; });
  int injected = 0;
  for (NodeId src = 0; src < 64; src += 3) {
    for (NodeId dest = 1; dest < 64; dest += 17) {
      if (src == dest) continue;
      if (net.try_inject(make_packet(src, dest, 1 + (src % 4)),
                         payload(4))) {
        ++injected;
      }
      net.step();
    }
  }
  net.run(3000);
  EXPECT_EQ(delivered, injected);
  EXPECT_TRUE(net.quiescent());
}

TEST_F(RouterPipelineTest, RouterStatsCountSwitchedFlits) {
  ASSERT_TRUE(net.try_inject(make_packet(0, 4, 3), payload(2)));
  net.run(60);
  // All 3 flits crossed router 0 and router 1.
  EXPECT_EQ(net.router(0).stats().flits_switched, 3u);
  EXPECT_EQ(net.router(1).stats().flits_switched, 3u);
}

TEST_F(RouterPipelineTest, OccupancyReturnsToZeroAfterDrain) {
  for (int i = 0; i < 5; ++i) {
    // Retry while the injection queue is full; depth 8 holds two packets.
    while (!net.try_inject(make_packet(0, 60, 4), payload(3))) net.step();
  }
  net.run(500);
  for (RouterId r = 0; r < 16; ++r) {
    EXPECT_EQ(net.router(r).input_occupancy(), 0) << "router " << r;
    EXPECT_EQ(net.router(r).output_occupancy(), 0) << "router " << r;
  }
}

TEST_F(RouterPipelineTest, InvalidateWaitingRoutesForcesRecompute) {
  ASSERT_TRUE(net.try_inject(make_packet(0, 60, 1), {}));
  int delivered = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo&, Cycle) { ++delivered; });
  // Aggressively invalidate mid-flight every cycle; the packet must still
  // arrive (RC simply recomputes).
  for (int i = 0; i < 300; ++i) {
    for (RouterId r = 0; r < 16; ++r) net.router(r).invalidate_waiting_routes();
    net.step();
  }
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace htnoc
