#include "noc/network.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace htnoc {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NocConfig cfg;
  Network net{cfg};

  PacketInfo make_packet(NodeId src, NodeId dest, int len = 1) {
    PacketInfo info;
    info.id = net.next_packet_id();
    info.src_core = src;
    info.dest_core = dest;
    info.src_router = net.geometry().router_of_core(src);
    info.dest_router = net.geometry().router_of_core(dest);
    info.length = len;
    return info;
  }
};

TEST_F(NetworkTest, TopologyHas48MeshLinks) {
  // 4x4 mesh: 2*( (4-1)*4 + 4*(4-1) ) = 48 unidirectional links — the
  // paper's "TASP on all 48 links" worst case.
  EXPECT_EQ(net.all_links().size(), 48u);
}

TEST_F(NetworkTest, LinkAccessorsMatchGeometry) {
  EXPECT_TRUE(net.has_link(0, Direction::kEast));
  EXPECT_FALSE(net.has_link(0, Direction::kWest));
  EXPECT_TRUE(net.has_link(5, Direction::kNorth));
  EXPECT_EQ(net.link(0, Direction::kEast).latency(), cfg.stage_lt);
}

TEST_F(NetworkTest, CyclesAdvance) {
  EXPECT_EQ(net.now(), 0u);
  net.run(10);
  EXPECT_EQ(net.now(), 10u);
}

TEST_F(NetworkTest, InjectValidatesCoreIds) {
  PacketInfo bad = make_packet(0, 1);
  bad.src_core = 64;
  EXPECT_THROW((void)net.try_inject(bad, {}), ContractViolation);
}

TEST_F(NetworkTest, DeliveryCountsAggregate) {
  ASSERT_TRUE(net.try_inject(make_packet(3, 62), {}));
  ASSERT_TRUE(net.try_inject(make_packet(62, 3), {}));
  net.run(200);
  EXPECT_EQ(net.packets_injected(), 2u);
  EXPECT_EQ(net.packets_delivered(), 2u);
  EXPECT_TRUE(net.quiescent());
}

TEST_F(NetworkTest, UtilizationSampleCleanWhenIdle) {
  net.run(50);
  const auto s = net.sample_utilization();
  EXPECT_EQ(s.input_port_flits, 0);
  EXPECT_EQ(s.output_port_flits, 0);
  EXPECT_EQ(s.injection_port_flits, 0);
  EXPECT_EQ(s.routers_all_cores_full, 0);
  EXPECT_EQ(s.routers_with_blocked_port, 0);
}

TEST_F(NetworkTest, UtilizationSeesInFlightTraffic) {
  for (int i = 0; i < 10; ++i) {
    (void)net.try_inject(make_packet(0, 63, 5),
                         std::vector<std::uint64_t>(4, 1));
  }
  net.run(6);
  const auto s = net.sample_utilization();
  EXPECT_GT(s.injection_port_flits + s.input_port_flits + s.output_port_flits,
            0);
}

TEST_F(NetworkTest, DisableLinkTracksSet) {
  net.disable_link({0, Direction::kEast});
  EXPECT_TRUE(net.disabled_links().contains(LinkRef{0, Direction::kEast}));
  EXPECT_TRUE(net.link(0, Direction::kEast).disabled());
}

TEST_F(NetworkTest, UpdownReconfigurationDeliversAroundDeadLink) {
  net.disable_link({0, Direction::kEast});
  net.disable_link({1, Direction::kWest});
  net.use_updown_routing();
  int delivered = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo&, Cycle) { ++delivered; });
  ASSERT_TRUE(net.try_inject(make_packet(0, 4), {}));  // r0 -> r1
  net.run(300);
  EXPECT_EQ(delivered, 1);
}

TEST_F(NetworkTest, XyRoutingRequiresHealthyTopology) {
  net.disable_link({0, Direction::kEast});
  EXPECT_THROW(net.use_xy_routing(), ContractViolation);
}

TEST_F(NetworkTest, PurgeUnknownPacketIsHarmless) {
  const auto ids = net.purge_packet(9999);
  EXPECT_EQ(ids.size(), 1u);  // the requested id itself, nothing else
  EXPECT_TRUE(net.quiescent());
}

TEST_F(NetworkTest, PacketIdsAreUnique) {
  const PacketId a = net.next_packet_id();
  const PacketId b = net.next_packet_id();
  EXPECT_NE(a, b);
}

TEST_F(NetworkTest, NonDefaultGeometry) {
  NocConfig small;
  small.mesh_width = 2;
  small.mesh_height = 2;
  small.concentration = 1;
  Network n2(small);
  EXPECT_EQ(n2.all_links().size(), 8u);
  int delivered = 0;
  n2.set_delivery_callback([&](Cycle, const PacketInfo&, Cycle) { ++delivered; });
  PacketInfo info;
  info.id = n2.next_packet_id();
  info.src_core = 0;
  info.dest_core = 3;
  info.src_router = 0;
  info.dest_router = 3;
  info.length = 2;
  ASSERT_TRUE(n2.try_inject(info, {0xFF}));
  n2.run(100);
  EXPECT_EQ(delivered, 1);
}

TEST_F(NetworkTest, ActiveStepSkipsIdleNetworkEntirely) {
  // Nothing injected: every router and NI is provably idle every cycle.
  net.run(50);
  const auto& ss = net.step_stats();
  EXPECT_EQ(ss.router_steps, 0u);
  EXPECT_EQ(ss.router_skips, 50u * 16u);
  EXPECT_EQ(ss.ni_steps, 0u);
  EXPECT_EQ(ss.ni_skips, 50u * 64u);
}

TEST_F(NetworkTest, ActiveStepDisabledStepsEverything) {
  NocConfig full = cfg;
  full.active_step = false;
  Network n{full};
  n.run(10);
  const auto& ss = n.step_stats();
  EXPECT_EQ(ss.router_steps, 10u * 16u);
  EXPECT_EQ(ss.router_skips, 0u);
  EXPECT_EQ(ss.ni_steps, 10u * 64u);
  EXPECT_EQ(ss.ni_skips, 0u);
}

TEST_F(NetworkTest, ActiveStepIsBitExactWithFullStepping) {
  // Drive two identical networks — one skipping idle units, one stepping
  // everything — with the same staggered traffic; every delivery must
  // happen at the same cycle with the same latency, and the final state
  // must agree.
  NocConfig on = cfg;
  on.active_step = true;
  NocConfig off = cfg;
  off.active_step = false;
  Network a{on};
  Network b{off};

  using Delivery = std::tuple<PacketId, Cycle, Cycle>;
  std::vector<Delivery> da;
  std::vector<Delivery> db;
  a.set_delivery_callback([&](Cycle now, const PacketInfo& i, Cycle lat) {
    da.emplace_back(i.id, now, lat);
  });
  b.set_delivery_callback([&](Cycle now, const PacketInfo& i, Cycle lat) {
    db.emplace_back(i.id, now, lat);
  });

  for (NodeId s = 0; s < 64; s += 3) {
    PacketInfo info = make_packet(s, static_cast<NodeId>(63 - s), 3);
    PacketInfo mirror = info;
    ASSERT_EQ(a.try_inject(info, std::vector<std::uint64_t>(2, s)),
              b.try_inject(mirror, std::vector<std::uint64_t>(2, s)));
    a.run(2);
    b.run(2);
  }
  a.run(600);
  b.run(600);

  EXPECT_EQ(da, db);
  EXPECT_GT(da.size(), 0u);
  EXPECT_EQ(a.packets_delivered(), b.packets_delivered());
  EXPECT_TRUE(a.quiescent());
  EXPECT_TRUE(b.quiescent());
  EXPECT_EQ(a.check_invariants(), "");
  // The skipping run must actually have skipped while agreeing bit-exactly.
  EXPECT_GT(a.step_stats().router_skips, 0u);
  EXPECT_EQ(b.step_stats().router_skips, 0u);
}

TEST_F(NetworkTest, ConfigValidationRejectsBadShapes) {
  NocConfig bad;
  bad.mesh_width = 1;
  EXPECT_THROW(Network{bad}, ContractViolation);
  NocConfig bad2;
  bad2.vcs_per_port = 3;
  bad2.tdm_enabled = true;  // TDM needs an even VC split
  EXPECT_THROW(Network{bad2}, ContractViolation);
}

}  // namespace
}  // namespace htnoc
