#include "noc/network.hpp"

#include <gtest/gtest.h>

namespace htnoc {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NocConfig cfg;
  Network net{cfg};

  PacketInfo make_packet(NodeId src, NodeId dest, int len = 1) {
    PacketInfo info;
    info.id = net.next_packet_id();
    info.src_core = src;
    info.dest_core = dest;
    info.src_router = net.geometry().router_of_core(src);
    info.dest_router = net.geometry().router_of_core(dest);
    info.length = len;
    return info;
  }
};

TEST_F(NetworkTest, TopologyHas48MeshLinks) {
  // 4x4 mesh: 2*( (4-1)*4 + 4*(4-1) ) = 48 unidirectional links — the
  // paper's "TASP on all 48 links" worst case.
  EXPECT_EQ(net.all_links().size(), 48u);
}

TEST_F(NetworkTest, LinkAccessorsMatchGeometry) {
  EXPECT_TRUE(net.has_link(0, Direction::kEast));
  EXPECT_FALSE(net.has_link(0, Direction::kWest));
  EXPECT_TRUE(net.has_link(5, Direction::kNorth));
  EXPECT_EQ(net.link(0, Direction::kEast).latency(), cfg.stage_lt);
}

TEST_F(NetworkTest, CyclesAdvance) {
  EXPECT_EQ(net.now(), 0u);
  net.run(10);
  EXPECT_EQ(net.now(), 10u);
}

TEST_F(NetworkTest, InjectValidatesCoreIds) {
  PacketInfo bad = make_packet(0, 1);
  bad.src_core = 64;
  EXPECT_THROW((void)net.try_inject(bad, {}), ContractViolation);
}

TEST_F(NetworkTest, DeliveryCountsAggregate) {
  ASSERT_TRUE(net.try_inject(make_packet(3, 62), {}));
  ASSERT_TRUE(net.try_inject(make_packet(62, 3), {}));
  net.run(200);
  EXPECT_EQ(net.packets_injected(), 2u);
  EXPECT_EQ(net.packets_delivered(), 2u);
  EXPECT_TRUE(net.quiescent());
}

TEST_F(NetworkTest, UtilizationSampleCleanWhenIdle) {
  net.run(50);
  const auto s = net.sample_utilization();
  EXPECT_EQ(s.input_port_flits, 0);
  EXPECT_EQ(s.output_port_flits, 0);
  EXPECT_EQ(s.injection_port_flits, 0);
  EXPECT_EQ(s.routers_all_cores_full, 0);
  EXPECT_EQ(s.routers_with_blocked_port, 0);
}

TEST_F(NetworkTest, UtilizationSeesInFlightTraffic) {
  for (int i = 0; i < 10; ++i) {
    (void)net.try_inject(make_packet(0, 63, 5),
                         std::vector<std::uint64_t>(4, 1));
  }
  net.run(6);
  const auto s = net.sample_utilization();
  EXPECT_GT(s.injection_port_flits + s.input_port_flits + s.output_port_flits,
            0);
}

TEST_F(NetworkTest, DisableLinkTracksSet) {
  net.disable_link({0, Direction::kEast});
  EXPECT_TRUE(net.disabled_links().contains(LinkRef{0, Direction::kEast}));
  EXPECT_TRUE(net.link(0, Direction::kEast).disabled());
}

TEST_F(NetworkTest, UpdownReconfigurationDeliversAroundDeadLink) {
  net.disable_link({0, Direction::kEast});
  net.disable_link({1, Direction::kWest});
  net.use_updown_routing();
  int delivered = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo&, Cycle) { ++delivered; });
  ASSERT_TRUE(net.try_inject(make_packet(0, 4), {}));  // r0 -> r1
  net.run(300);
  EXPECT_EQ(delivered, 1);
}

TEST_F(NetworkTest, XyRoutingRequiresHealthyTopology) {
  net.disable_link({0, Direction::kEast});
  EXPECT_THROW(net.use_xy_routing(), ContractViolation);
}

TEST_F(NetworkTest, PurgeUnknownPacketIsHarmless) {
  const auto ids = net.purge_packet(9999);
  EXPECT_EQ(ids.size(), 1u);  // the requested id itself, nothing else
  EXPECT_TRUE(net.quiescent());
}

TEST_F(NetworkTest, PacketIdsAreUnique) {
  const PacketId a = net.next_packet_id();
  const PacketId b = net.next_packet_id();
  EXPECT_NE(a, b);
}

TEST_F(NetworkTest, NonDefaultGeometry) {
  NocConfig small;
  small.mesh_width = 2;
  small.mesh_height = 2;
  small.concentration = 1;
  Network n2(small);
  EXPECT_EQ(n2.all_links().size(), 8u);
  int delivered = 0;
  n2.set_delivery_callback([&](Cycle, const PacketInfo&, Cycle) { ++delivered; });
  PacketInfo info;
  info.id = n2.next_packet_id();
  info.src_core = 0;
  info.dest_core = 3;
  info.src_router = 0;
  info.dest_router = 3;
  info.length = 2;
  ASSERT_TRUE(n2.try_inject(info, {0xFF}));
  n2.run(100);
  EXPECT_EQ(delivered, 1);
}

TEST_F(NetworkTest, ConfigValidationRejectsBadShapes) {
  NocConfig bad;
  bad.mesh_width = 1;
  EXPECT_THROW(Network{bad}, ContractViolation);
  NocConfig bad2;
  bad2.vcs_per_port = 3;
  bad2.tdm_enabled = true;  // TDM needs an even VC split
  EXPECT_THROW(Network{bad2}, ContractViolation);
}

}  // namespace
}  // namespace htnoc
