// Focused tests of pipeline corner cases: VC-class exhaustion, wormhole
// atomicity, arbitration fairness under sustained contention, stale-phase
// recovery in up*/down*, and the reroute policy's reconfiguration latency.
#include <gtest/gtest.h>

#include "noc/updown.hpp"
#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace htnoc {
namespace {

PacketInfo make_packet(Network& net, NodeId src, NodeId dest, int len,
                       PacketClass pclass = PacketClass::kRequest) {
  PacketInfo info;
  info.id = net.next_packet_id();
  info.src_core = src;
  info.dest_core = dest;
  info.src_router = net.geometry().router_of_core(src);
  info.dest_router = net.geometry().router_of_core(dest);
  info.length = len;
  info.pclass = pclass;
  return info;
}

TEST(PipelineDetails, RepliesFlowWhileRequestVcsAreWedged) {
  // Wedge the request class across a link with a dest-keyed trojan, then
  // confirm reply-class packets still cross it (disjoint VC partition —
  // the protocol-deadlock defense).
  sim::SimConfig sc;
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kVc;
  a.tasp.target_vc = 0;  // strike only VC 0 traffic (request class)
  a.tasp.only_head_flits = true;
  a.enable_killsw_at = 0;
  sc.attacks.push_back(a);
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  simulator.step();  // fire the kill switch

  int req_delivered = 0;
  int rep_delivered = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo& info, Cycle) {
    (info.pclass == PacketClass::kRequest ? req_delivered : rep_delivered)++;
  });
  // Two wedged requests occupy two retransmission slots at r4->N; the
  // shared pool keeps room for the reply class. (With four victims the
  // pool itself would block replies — that is the test_retrans_scheme
  // per-VC story, not this one.)
  for (int i = 0; i < 2; ++i) {
    PacketInfo req = make_packet(net, 16, 0, 1, PacketClass::kRequest);
    while (!net.try_inject(req, {})) net.step();
    net.run(4);
  }
  for (int i = 0; i < 6; ++i) {
    PacketInfo rep = make_packet(net, 16, 0, 1, PacketClass::kReply);
    while (!net.try_inject(rep, {})) net.step();
    net.run(4);
  }
  for (int i = 0; i < 800; ++i) simulator.step();
  EXPECT_EQ(rep_delivered, 6);
  EXPECT_EQ(req_delivered, 0);  // every request is NACK-looped
}

TEST(PipelineDetails, WormholeFlitsNeverInterleaveWithinVc) {
  // Two multi-flit packets from different cores to the same destination:
  // each must reassemble exactly once with all its own flits (checked by
  // the NI's length accounting), even under heavy interleaving pressure.
  NocConfig cfg;
  Network net(cfg);
  int delivered = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo& info, Cycle) {
    EXPECT_EQ(info.length, 5);
    ++delivered;
  });
  for (NodeId src : {NodeId{20}, NodeId{24}, NodeId{28}, NodeId{40}}) {
    PacketInfo info = make_packet(net, src, 0, 5);
    while (!net.try_inject(info, std::vector<std::uint64_t>(4, src))) {
      net.step();
    }
  }
  net.run(600);
  EXPECT_EQ(delivered, 4);
  EXPECT_TRUE(net.quiescent());
}

TEST(PipelineDetails, SustainedContentionSharesLinkFairly) {
  // Two cores on different routers hammer flows that share the r4->r0
  // link; round-robin arbitration must keep their long-run deliveries
  // within 2x of each other.
  NocConfig cfg;
  Network net(cfg);
  int delivered[2] = {0, 0};
  net.set_delivery_callback([&](Cycle, const PacketInfo& info, Cycle) {
    if (info.src_core == 32) ++delivered[0];
    if (info.src_core == 48) ++delivered[1];
  });
  // Keep both sources saturated for a while.
  for (int round = 0; round < 120; ++round) {
    (void)net.try_inject(make_packet(net, 32, 0, 1), {});  // r8 -> r0
    (void)net.try_inject(make_packet(net, 48, 0, 1), {});  // r12 -> r0
    net.step();
    net.step();
  }
  net.run(800);
  EXPECT_GT(delivered[0], 30);
  EXPECT_GT(delivered[1], 30);
  const double ratio = static_cast<double>(delivered[0]) /
                       static_cast<double>(delivered[1]);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(PipelineDetails, UpdownPhaseFallbackRecoversStrandedPackets) {
  // A flit carrying a stale down-phase bit at a router whose legal down
  // moves were later disabled must re-enter the up phase (epoch reset)
  // instead of stalling forever.
  const MeshGeometry geom(4, 4, 4);
  // Kill r4's downward options: r4-r5 and r4-r8.
  const std::set<LinkRef> dead = {{4, Direction::kEast},
                                  {5, Direction::kWest},
                                  {4, Direction::kSouth},
                                  {8, Direction::kNorth}};
  const UpDownRouting ud(geom, dead);
  Flit f;
  f.dest_router = 8;
  f.dest_core = geom.core_at(8, 0);
  f.route_phase_down = true;  // stale phase from an earlier epoch
  const RouteDecision dec = ud.route(4, f);
  EXPECT_GE(dec.out_port, 0) << "stranded despite connectivity";
}

TEST(PipelineDetails, RerouteLatencyDelaysTheDisable) {
  const auto disable_time = [](Cycle latency) {
    sim::SimConfig sc;
    sc.mode = sim::MitigationMode::kReroute;
    sc.reroute_latency = latency;
    sim::AttackSpec a;
    a.link = {4, Direction::kNorth};
    a.tasp.kind = trojan::TargetKind::kDest;
    a.tasp.target_dest = 0;
    a.enable_killsw_at = 500;
    sc.attacks.push_back(a);
    sim::Simulator simulator(std::move(sc));
    Network& net = simulator.network();
    traffic::DeliveryDispatcher disp;
    disp.install(net);
    traffic::AppTrafficModel model(net.geometry(),
                                   traffic::blackscholes_profile());
    traffic::TrafficGenerator::Params gp;
    gp.seed = 81;
    traffic::TrafficGenerator gen(net, model, gp, disp);
    for (Cycle c = 0; c < 4000; ++c) {
      gen.step();
      simulator.step();
      if (simulator.stats().links_disabled > 0) return net.now();
    }
    return Cycle{0};
  };
  const Cycle fast = disable_time(10);
  const Cycle slow = disable_time(800);
  ASSERT_GT(fast, 0u);
  ASSERT_GT(slow, 0u);
  EXPECT_GE(slow, fast + 700);
}

TEST(PipelineDetails, AllProfilesProduceTheirDocumentedShape) {
  const MeshGeometry geom(4, 4, 4);
  for (const auto& profile : traffic::all_profiles()) {
    const traffic::AppTrafficModel model(geom, profile);
    const auto m = model.demand_matrix();
    // Every hotspot router attracts more traffic than the mean column.
    double mean_col = 0.0;
    std::vector<double> col(16, 0.0);
    for (int s = 0; s < 16; ++s) {
      for (int d = 0; d < 16; ++d) {
        col[static_cast<std::size_t>(d)] += m[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)];
        mean_col += m[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)];
      }
    }
    mean_col /= 16.0;
    for (const auto& [hr, w] : profile.hotspots) {
      EXPECT_GT(col[hr], mean_col) << profile.name << " hotspot r" << hr;
      (void)w;
    }
  }
}

TEST(PipelineDetails, TdmNiQueuesIsolateDomains) {
  // Fill one domain's NI queue; the other domain must still accept work at
  // the same core (per-domain source queues).
  NocConfig cfg;
  cfg.tdm_enabled = true;
  Network net(cfg);
  // Saturate D1's queue at core 0 (depth 8 flits).
  int accepted_d1 = 0;
  for (int i = 0; i < 5; ++i) {
    PacketInfo info = make_packet(net, 0, 60, 4);
    info.domain = TdmDomain::kD1;
    if (net.try_inject(info, std::vector<std::uint64_t>(3, 1))) ++accepted_d1;
  }
  EXPECT_LT(accepted_d1, 5);  // queue filled
  // D2 still has its own queue.
  PacketInfo d2 = make_packet(net, 0, 60, 4);
  d2.domain = TdmDomain::kD2;
  EXPECT_TRUE(net.try_inject(d2, std::vector<std::uint64_t>(3, 2)));
}

}  // namespace
}  // namespace htnoc
