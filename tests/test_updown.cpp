#include "noc/updown.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "common/rng.hpp"

namespace htnoc {
namespace {

class UpDownTest : public ::testing::Test {
 protected:
  MeshGeometry geom{4, 4, 4};

  Flit flit_to(RouterId dest, bool phase_down = false) const {
    Flit f;
    f.dest_router = dest;
    f.dest_core = geom.core_at(dest, 0);
    f.route_phase_down = phase_down;
    return f;
  }

  /// Walk a route end to end; returns hop count, asserting termination and
  /// the up*/down* ordering invariant (never up after down).
  int walk(const UpDownRouting& ud, RouterId src, RouterId dest) {
    RouterId here = src;
    bool down = false;
    int hops = 0;
    while (true) {
      Flit f = flit_to(dest, down);
      const RouteDecision d = ud.route(here, f);
      EXPECT_GE(d.out_port, 0) << "unroutable at " << here;
      if (d.out_port < 0) return -1;
      if (is_local_port(d.out_port)) {
        EXPECT_EQ(here, dest);
        return hops;
      }
      const Direction dir = port_direction(d.out_port);
      EXPECT_TRUE(ud.link_enabled(here, dir)) << "routed over dead link";
      const bool up_hop = ud.is_up(here, dir);
      if (down) EXPECT_FALSE(up_hop) << "down->up violation at " << here;
      down = d.next_phase_down;
      here = geom.neighbor(here, dir);
      ++hops;
      EXPECT_LE(hops, 32) << "route did not terminate";
      if (hops > 32) return -1;
    }
  }
};

TEST_F(UpDownTest, HealthyMeshAllPairsRoute) {
  const UpDownRouting ud(geom, {});
  for (RouterId s = 0; s < 16; ++s) {
    for (RouterId d = 0; d < 16; ++d) {
      if (s == d) continue;
      EXPECT_TRUE(ud.reachable(s, d));
      EXPECT_GE(walk(ud, s, d), geom.hop_distance(s, d));
    }
  }
}

TEST_F(UpDownTest, HealthyMeshLevelsAreBfsDepths) {
  const UpDownRouting ud(geom, {});
  EXPECT_EQ(ud.level(0), 0);
  EXPECT_EQ(ud.level(1), 1);
  EXPECT_EQ(ud.level(4), 1);
  EXPECT_EQ(ud.level(5), 2);
  EXPECT_EQ(ud.level(15), 6);
}

TEST_F(UpDownTest, SingleLinkFailureRoutesAround) {
  // Kill r4<->r0 (both directions, as the reconfiguration policy does).
  const std::set<LinkRef> dead = {{4, Direction::kNorth}, {0, Direction::kSouth}};
  const UpDownRouting ud(geom, dead);
  for (RouterId s = 0; s < 16; ++s) {
    for (RouterId d = 0; d < 16; ++d) {
      if (s != d) EXPECT_GE(walk(ud, s, d), 0);
    }
  }
  // Routes through the dead link are forbidden.
  EXPECT_FALSE(ud.link_enabled(4, Direction::kNorth));
  EXPECT_FALSE(ud.link_enabled(0, Direction::kSouth));
}

TEST_F(UpDownTest, HalfDeadEdgeTreatedAsFullyDead) {
  const std::set<LinkRef> dead = {{4, Direction::kNorth}};  // one direction
  const UpDownRouting ud(geom, dead);
  EXPECT_FALSE(ud.link_enabled(4, Direction::kNorth));
  EXPECT_FALSE(ud.link_enabled(0, Direction::kSouth));  // symmetric kill
  for (RouterId s = 0; s < 16; ++s) {
    for (RouterId d = 0; d < 16; ++d) {
      if (s != d) EXPECT_GE(walk(ud, s, d), 0);
    }
  }
}

TEST_F(UpDownTest, MultipleFailuresStillConnected) {
  Rng rng(2024);
  // 10 trials of 4 random dead edges each (bidirectional kills).
  for (int trial = 0; trial < 10; ++trial) {
    std::set<LinkRef> dead;
    for (int k = 0; k < 4; ++k) {
      const auto r = static_cast<RouterId>(rng.next_below(16));
      const auto d = static_cast<Direction>(rng.next_below(4));
      if (!geom.has_neighbor(r, d)) continue;
      dead.insert({r, d});
      dead.insert({geom.neighbor(r, d), opposite(d)});
    }
    try {
      const UpDownRouting ud(geom, dead);
      for (RouterId s = 0; s < 16; ++s) {
        for (RouterId t = 0; t < 16; ++t) {
          if (s != t) ASSERT_GE(walk(ud, s, t), 0) << "trial " << trial;
        }
      }
    } catch (const ContractViolation&) {
      // Legitimately disconnected draws are allowed to throw.
    }
  }
}

TEST_F(UpDownTest, ChannelDependencyGraphIsAcyclic) {
  // Deadlock freedom: build the channel dependency graph implied by legal
  // up*/down* moves and verify it has no cycle. A channel is (router, dir);
  // an edge exists when a packet can traverse channel A then channel B
  // under the phase rules.
  const UpDownRouting ud(geom, {});
  struct Chan {
    RouterId from;
    Direction dir;
    int phase_after;  // 0 after an up hop, 1 after a down hop
  };
  // Node id: link_index * 2 + phase_after.
  const int n = geom.num_routers() * 4 * 2;
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  const std::array<Direction, 4> dirs = {Direction::kNorth, Direction::kSouth,
                                         Direction::kEast, Direction::kWest};
  for (RouterId r = 0; r < 16; ++r) {
    for (const Direction d1 : dirs) {
      if (!geom.has_neighbor(r, d1) || !ud.link_enabled(r, d1)) continue;
      const bool up1 = ud.is_up(r, d1);
      const int phase1 = up1 ? 0 : 1;
      const RouterId mid = geom.neighbor(r, d1);
      for (const Direction d2 : dirs) {
        if (!geom.has_neighbor(mid, d2) || !ud.link_enabled(mid, d2)) continue;
        const bool up2 = ud.is_up(mid, d2);
        if (phase1 == 1 && up2) continue;  // illegal: up after down
        const int phase2 = up2 ? 0 : 1;
        adj[static_cast<std::size_t>(link_index({r, d1}) * 2 + phase1)].push_back(
            link_index({mid, d2}) * 2 + phase2);
      }
    }
  }
  // DFS cycle check.
  std::vector<int> color(static_cast<std::size_t>(n), 0);
  bool cyclic = false;
  std::function<void(int)> dfs = [&](int u) {
    color[static_cast<std::size_t>(u)] = 1;
    for (const int v : adj[static_cast<std::size_t>(u)]) {
      if (color[static_cast<std::size_t>(v)] == 1) {
        cyclic = true;
      } else if (color[static_cast<std::size_t>(v)] == 0) {
        dfs(v);
      }
    }
    color[static_cast<std::size_t>(u)] = 2;
  };
  for (int u = 0; u < n; ++u) {
    if (color[static_cast<std::size_t>(u)] == 0) dfs(u);
  }
  EXPECT_FALSE(cyclic) << "up*/down* channel dependency cycle found";
}

TEST_F(UpDownTest, DisconnectionThrows) {
  // Cut r15 off entirely (both its edges, both directions).
  const std::set<LinkRef> dead = {{15, Direction::kNorth},
                                  {11, Direction::kSouth},
                                  {15, Direction::kWest},
                                  {14, Direction::kEast}};
  EXPECT_THROW(UpDownRouting(geom, dead), ContractViolation);
}

TEST_F(UpDownTest, LocalDeliveryKeepsPhase) {
  const UpDownRouting ud(geom, {});
  Flit f = flit_to(3, true);
  const RouteDecision d = ud.route(3, f);
  EXPECT_TRUE(is_local_port(d.out_port));
  EXPECT_TRUE(d.next_phase_down);
}

}  // namespace
}  // namespace htnoc
