// Edge cases of the data-oriented flit storage (src/noc/pool.hpp,
// docs/PERFORMANCE.md): ring FIFO semantics across wrap and regrowth, arena
// exhaustion/regrowth under a purge storm, generation-checked handle reuse
// (the ABA guard), and a snapshot taken while scramble stations hold phits
// restoring the pool-backed state bit-identically.
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "common/expect.hpp"
#include "noc/input_unit.hpp"
#include "noc/link.hpp"
#include "noc/pool.hpp"
#include "sim/simulator.hpp"
#include "traffic/app_profile.hpp"
#include "traffic/generator.hpp"
#include "verify/census_digest.hpp"
#include "verify/snapshot.hpp"

namespace htnoc {
namespace {

// --- Ring ---

TEST(Ring, FifoAcrossWrapAndRegrowth) {
  pool::Ring<int> r;
  EXPECT_TRUE(r.empty());
  for (int i = 0; i < 6; ++i) r.push_back(i);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(r.front(), i);
    r.pop_front();
  }
  // head_ is now mid-buffer; pushing past the old tail wraps, then exceeds
  // capacity and regrows — order must survive both.
  for (int i = 6; i < 20; ++i) r.push_back(i);
  ASSERT_EQ(r.size(), 17u);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i], static_cast<int>(i) + 3);
  }
}

TEST(Ring, EraseAtPreservesOrder) {
  pool::Ring<int> r;
  for (int i = 0; i < 8; ++i) r.push_back(i);
  r.pop_front();
  r.pop_front();
  for (int i = 8; i < 12; ++i) r.push_back(i);  // wrapped layout
  r.erase_at(0);                                // == pop_front
  r.erase_at(3);                                // mid erase across the wrap
  std::vector<int> got;
  for (const int v : r) got.push_back(v);
  EXPECT_EQ(got, (std::vector<int>{3, 4, 5, 7, 8, 9, 10, 11}));
}

TEST(Ring, IterationMatchesIndexing) {
  pool::Ring<int> r;
  for (int i = 0; i < 5; ++i) r.push_back(i * 7);
  std::size_t i = 0;
  for (const int v : r) {
    EXPECT_EQ(v, r[i]);
    ++i;
  }
  EXPECT_EQ(i, r.size());
}

// --- FlitArena ---

Flit make_flit(PacketId packet, int seq, int len, VcId vc,
               std::uint64_t wire) {
  Flit f;
  f.packet = packet;
  f.seq = seq;
  f.length = len;
  f.vc = vc;
  f.wire = wire;
  if (len == 1) {
    f.type = FlitType::kHeadTail;
  } else if (seq == 0) {
    f.type = FlitType::kHead;
  } else if (seq == len - 1) {
    f.type = FlitType::kTail;
  } else {
    f.type = FlitType::kBody;
  }
  return f;
}

TEST(FlitArena, GrowsDeterministicallyPastInitialCapacity) {
  pool::FlitArena arena;
  EXPECT_EQ(arena.capacity(), 0u);
  std::vector<pool::FlitHandle> hs;
  for (int i = 0; i < 40; ++i) {
    hs.push_back(arena.alloc(make_flit(7, i, 64, 0, 0x1000u + i), 100 + i));
  }
  EXPECT_EQ(arena.live(), 40u);
  EXPECT_EQ(arena.capacity(), 64u);  // 16 -> 32 -> 64 doubling
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(arena.valid(hs[static_cast<std::size_t>(i)]));
    EXPECT_EQ(arena.flit(hs[static_cast<std::size_t>(i)]).seq, i);
    EXPECT_EQ(arena.arrival(hs[static_cast<std::size_t>(i)]),
              static_cast<Cycle>(100 + i));
  }
}

TEST(FlitArena, StaleHandleAfterReleaseIsInvalidNotAliased) {
  pool::FlitArena arena;
  const pool::FlitHandle h1 = arena.alloc(make_flit(1, 0, 1, 0, 0xAA), 5);
  arena.release(h1);
  // LIFO free list: the next alloc reuses h1's slot with a bumped
  // generation. The stale handle must neither validate nor alias the new
  // occupant (the ABA hazard of a purged stream racing a retransmission).
  const pool::FlitHandle h2 = arena.alloc(make_flit(2, 3, 4, 1, 0xBB), 9);
  EXPECT_EQ(h1.index(), h2.index());
  EXPECT_NE(h1.generation(), h2.generation());
  EXPECT_FALSE(arena.valid(h1));
  ASSERT_TRUE(arena.valid(h2));
  EXPECT_EQ(arena.flit(h2).packet, 2u);
  EXPECT_THROW((void)arena.flit(h1), ContractViolation);
  EXPECT_THROW(arena.release(h1), ContractViolation);  // double free
}

TEST(FlitArena, GenerationWrapsModulo256) {
  pool::FlitArena arena;
  pool::FlitHandle h = arena.alloc(make_flit(1, 0, 1, 0, 0), 0);
  const std::uint32_t slot = h.index();
  for (int i = 0; i < 256; ++i) {
    arena.release(h);
    h = arena.alloc(make_flit(1, i + 1, 1, 0, 0), 0);
    ASSERT_EQ(h.index(), slot);  // LIFO free list reuses the same slot
  }
  // 256 release/alloc rounds wrap the 8-bit generation back to its start:
  // the current handle is valid and the arena holds exactly one live flit.
  EXPECT_TRUE(arena.valid(h));
  EXPECT_EQ(arena.live(), 1u);
  EXPECT_EQ(arena.flit(h).seq, 256);
}

// --- InputUnit over the arena: purge-storm exhaustion and reuse ---

class PoolInputTest : public ::testing::Test {
 protected:
  NocConfig cfg;
  Link link{"l", 1};
  InputUnit in{cfg, 3, 2};
  Cycle now = 0;

  void SetUp() override { in.connect(&link); }

  void deliver(PacketId packet, int seq, int len, VcId vc) {
    LinkPhit p;
    p.flit = make_flit(packet, seq, len, vc, 0xF00 + static_cast<unsigned>(seq));
    p.codeword = ecc::secded().encode(p.flit.wire);
    link.send(now, std::move(p));
    ++now;
    in.process_arrivals(now);
    (void)link.take_acks(now + 1);
  }
};

TEST_F(PoolInputTest, PurgeStormExhaustsAndRegrowsArena) {
  // Three storm rounds, each buffering well past the arena's initial 16
  // slots (mutation self-tests legitimately overdrive the credit bound, so
  // the arena must regrow, never assert), then purging every packet.
  for (int round = 0; round < 3; ++round) {
    const int packets = 5;
    const int len = 6;
    for (int pk = 0; pk < packets; ++pk) {
      for (int seq = 0; seq < len; ++seq) {
        deliver(static_cast<PacketId>(100 * round + pk), seq, len,
                static_cast<VcId>(pk % cfg.vcs_per_port));
      }
    }
    EXPECT_EQ(in.occupancy(), packets * len);
    EXPECT_GE(in.arena().capacity(), 32u);

    int purged = 0;
    for (int pk = 0; pk < packets; ++pk) {
      const auto res =
          in.purge_packet(now, static_cast<PacketId>(100 * round + pk));
      purged += res.flits_purged;
      EXPECT_EQ(static_cast<int>(res.buffered_uids.size()), len);
    }
    EXPECT_EQ(purged, packets * len);
    EXPECT_EQ(in.occupancy(), 0);
    EXPECT_EQ(in.arena().live(), 0u);
    for (int pk = 0; pk < packets; ++pk) {
      EXPECT_FALSE(in.has_packet(static_cast<PacketId>(100 * round + pk)));
    }
    // Every purged flit returns its credit through the reverse channel.
    (void)link.take_credits(now + 2);
  }
}

TEST_F(PoolInputTest, ReorderedArrivalsThreadTheHandleList) {
  // NACK-style reordering: seq 2 lands before seq 1. The stream's intrusive
  // list must keep seq order, and pops must come out in order once the gap
  // fills.
  deliver(9, 0, 4, 0);
  deliver(9, 2, 4, 0);
  deliver(9, 3, 4, 0);
  EXPECT_TRUE(in.front_flit_ready(now, 0));  // seq 0 is in-order
  (void)in.pop_front_flit(now, 0);
  EXPECT_FALSE(in.front_flit_ready(now, 0));  // gap at seq 1
  deliver(9, 1, 4, 0);
  ++now;  // the gap-filler finishes its BW stage
  for (int seq = 1; seq < 4; ++seq) {
    ASSERT_TRUE(in.front_flit_ready(now, 0));
    EXPECT_EQ(in.pop_front_flit(now, 0).seq, seq);
  }
  EXPECT_EQ(in.occupancy(), 0);
  EXPECT_EQ(in.arena().live(), 0u);
}

// --- snapshot while scramble stations hold phits ---

struct Rig {
  sim::Simulator sim;
  traffic::DeliveryDispatcher disp;
  traffic::AppTrafficModel model;
  traffic::TrafficGenerator gen;

  explicit Rig(const sim::SimConfig& cfg)
      : sim(cfg), model(sim.network().geometry(), traffic::blackscholes_profile()),
        gen(sim.network(), model,
            [] {
              traffic::TrafficGenerator::Params gp;
              gp.seed = 0xFEED;
              return gp;
            }(),
            disp) {
    disp.install(sim.network());
    sim.set_drop_callback([this](PacketId id) { gen.requeue(id); });
  }

  void step(Cycle n) {
    for (Cycle c = 0; c < n; ++c) {
      gen.step();
      sim.step();
    }
  }
};

[[nodiscard]] int scramble_station_holds(const Network& net) {
  std::vector<ResidentFlit> res;
  net.collect_resident(res);
  int n = 0;
  for (const ResidentFlit& r : res) {
    if (r.site == FlitSite::kScrambleStation) ++n;
  }
  return n;
}

TEST(PoolSnapshot, MidScrambleStateRestoresBitIdentically) {
  // L-Ob under attack scrambles flits; a scrambled phit waits in the
  // receiver's station for its plain partner. Snapshot at a cycle where at
  // least one station entry is pending, restore into a fresh simulator, and
  // the pool-backed state (streams, arena contents, station) must resume
  // bit-identically.
  sim::SimConfig cfg;
  cfg.mode = sim::MitigationMode::kLOb;
  // Force the escalation ladder straight to scramble: the default sequence
  // starts with invert, which already slips past the comparator, so
  // stations would rarely hold.
  cfg.lob = mitigation::forced_lob_params(ObfMethod::kScramble,
                                          ObfGranularity::kFlit);
  sim::AttackSpec atk;
  atk.link = {0, Direction::kEast};
  atk.tasp.kind = trojan::TargetKind::kDest;
  atk.tasp.target_dest = 5;
  cfg.attacks.push_back(atk);
  cfg.audit.enabled = true;

  Rig a(cfg);
  bool snapshotted_mid_scramble = false;
  std::vector<std::uint8_t> blob;
  for (Cycle c = 0; c < 600; ++c) {
    a.step(1);
    if (scramble_station_holds(a.sim.network()) > 0) {
      blob = verify::save_snapshot(a.sim, {&a.gen});
      snapshotted_mid_scramble = true;
      break;
    }
  }
  ASSERT_TRUE(snapshotted_mid_scramble)
      << "attack scenario never left a scramble pending at a cycle boundary";

  Rig b(cfg);
  verify::load_snapshot(b.sim, {&b.gen}, blob);
  EXPECT_GT(scramble_station_holds(b.sim.network()), 0);
  ASSERT_EQ(verify::state_digest(a.sim.network()),
            verify::state_digest(b.sim.network()));
  for (Cycle c = 0; c < 200; ++c) {
    a.step(1);
    b.step(1);
    ASSERT_EQ(verify::state_digest(a.sim.network()),
              verify::state_digest(b.sim.network()))
        << "diverged " << (c + 1) << " cycles after the mid-scramble restore";
  }
  EXPECT_EQ(verify::save_snapshot(a.sim, {&a.gen}),
            verify::save_snapshot(b.sim, {&b.gen}));
}

}  // namespace
}  // namespace htnoc
