#include "noc/ni.hpp"

#include <gtest/gtest.h>

#include "noc/network.hpp"

namespace htnoc {
namespace {

class NiTest : public ::testing::Test {
 protected:
  NocConfig cfg;
  Network net{cfg};

  PacketInfo make_packet(NodeId src, NodeId dest, int len,
                         PacketClass pclass = PacketClass::kRequest) {
    PacketInfo info;
    info.id = net.next_packet_id();
    info.src_core = src;
    info.dest_core = dest;
    info.src_router = net.geometry().router_of_core(src);
    info.dest_router = net.geometry().router_of_core(dest);
    info.length = len;
    info.pclass = pclass;
    return info;
  }
};

TEST_F(NiTest, InjectionIsAtomicPerPacket) {
  NetworkInterface& ni = net.ni(0);
  // Queue depth 8: a 5-flit packet fits, then a 5-flit packet does not.
  EXPECT_TRUE(net.try_inject(make_packet(0, 10, 5),
                             std::vector<std::uint64_t>(4, 0)));
  EXPECT_FALSE(net.try_inject(make_packet(0, 10, 5),
                              std::vector<std::uint64_t>(4, 0)));
  EXPECT_TRUE(ni.injection_full());  // reject marks saturation
  EXPECT_EQ(ni.stats().inject_rejects, 1u);
  // A small packet still fits and clears the saturation flag.
  EXPECT_TRUE(net.try_inject(make_packet(0, 10, 3),
                             std::vector<std::uint64_t>(2, 0)));
  EXPECT_FALSE(ni.injection_full());
}

TEST_F(NiTest, InjectionOccupancyDrainsOverTime) {
  ASSERT_TRUE(net.try_inject(make_packet(0, 20, 5),
                             std::vector<std::uint64_t>(4, 0)));
  const int before = net.ni(0).injection_occupancy();
  EXPECT_GT(before, 0);
  net.run(100);
  EXPECT_EQ(net.ni(0).injection_occupancy(), 0);
}

TEST_F(NiTest, ReassemblyDeliversOnTail) {
  std::vector<int> lens;
  net.set_delivery_callback([&](Cycle, const PacketInfo& info, Cycle) {
    lens.push_back(info.length);
  });
  ASSERT_TRUE(net.try_inject(make_packet(5, 40, 4),
                             std::vector<std::uint64_t>(3, 9)));
  net.run(150);
  ASSERT_EQ(lens.size(), 1u);
  EXPECT_EQ(lens[0], 4);
  EXPECT_EQ(net.ni(40).stats().flits_delivered, 4u);
  EXPECT_EQ(net.ni(40).stats().packets_delivered, 1u);
}

TEST_F(NiTest, DeliveryCallbackCarriesLatencyAndIdentity) {
  PacketInfo sent = make_packet(2, 50, 2, PacketClass::kReply);
  PacketInfo got;
  Cycle latency = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo& info, Cycle lat) {
    got = info;
    latency = lat;
  });
  ASSERT_TRUE(net.try_inject(sent, {0x5}));
  net.run(150);
  EXPECT_EQ(got.id, sent.id);
  EXPECT_EQ(got.src_core, 2);
  EXPECT_EQ(got.dest_core, 50);
  EXPECT_EQ(got.pclass, PacketClass::kReply);
  EXPECT_GT(latency, 0u);
}

TEST_F(NiTest, RequestAndReplyClassesUseDisjointVcs) {
  const auto [rlo, rhi] = allowed_vc_range(PacketClass::kRequest,
                                           TdmDomain::kD1, cfg);
  const auto [plo, phi] = allowed_vc_range(PacketClass::kReply,
                                           TdmDomain::kD1, cfg);
  EXPECT_LT(rhi, plo);
  EXPECT_EQ(rlo, 0);
  EXPECT_EQ(phi, cfg.vcs_per_port - 1);
  (void)plo;
}

TEST_F(NiTest, TdmSplitsVcsByDomain) {
  NocConfig tdm = cfg;
  tdm.tdm_enabled = true;
  const auto [d1lo, d1hi] = allowed_vc_range(PacketClass::kRequest,
                                             TdmDomain::kD1, tdm);
  const auto [d2lo, d2hi] = allowed_vc_range(PacketClass::kRequest,
                                             TdmDomain::kD2, tdm);
  EXPECT_LE(d1hi, tdm.vcs_per_port / 2 - 1);
  EXPECT_GE(d2lo, tdm.vcs_per_port / 2);
  (void)d1lo;
  (void)d2hi;
}

TEST_F(NiTest, TdmSlotsAlternate) {
  EXPECT_TRUE(tdm_slot_allows(TdmDomain::kD1, 0));
  EXPECT_FALSE(tdm_slot_allows(TdmDomain::kD2, 0));
  EXPECT_FALSE(tdm_slot_allows(TdmDomain::kD1, 1));
  EXPECT_TRUE(tdm_slot_allows(TdmDomain::kD2, 1));
}

TEST_F(NiTest, BackToBackPacketsShareTheNi) {
  int delivered = 0;
  net.set_delivery_callback([&](Cycle, const PacketInfo&, Cycle) { ++delivered; });
  for (int i = 0; i < 6; ++i) {
    while (!net.try_inject(make_packet(0, 30, 2), {0x1})) net.step();
  }
  net.run(300);
  EXPECT_EQ(delivered, 6);
}

}  // namespace
}  // namespace htnoc
