#include "noc/input_unit.hpp"

#include <gtest/gtest.h>

#include "noc/obfuscation.hpp"

namespace htnoc {
namespace {

Flit make_flit(PacketId packet, int seq, int len, VcId vc, std::uint64_t wire) {
  Flit f;
  f.packet = packet;
  f.seq = seq;
  f.length = len;
  f.vc = vc;
  f.wire = wire;
  if (len == 1) {
    f.type = FlitType::kHeadTail;
  } else if (seq == 0) {
    f.type = FlitType::kHead;
  } else if (seq == len - 1) {
    f.type = FlitType::kTail;
  } else {
    f.type = FlitType::kBody;
  }
  return f;
}

LinkPhit phit_of(const Flit& f, ObfuscationTag tag = {},
                 std::uint64_t partner_wire = 0) {
  LinkPhit p;
  p.flit = f;
  std::uint64_t w = f.wire;
  if (tag.method == ObfMethod::kScramble) {
    w = obf::scramble(w, partner_wire, tag.granularity);
  } else if (tag.active()) {
    w = obf::apply(w, tag);
  }
  p.codeword = ecc::secded().encode(w);
  p.obf = tag;
  return p;
}

class InputUnitTest : public ::testing::Test {
 protected:
  NocConfig cfg;
  Link link{"l", 1};
  InputUnit in{cfg, 3, 2};

  void SetUp() override { in.connect(&link); }

  void send(Cycle cycle, LinkPhit p) {
    link.send(cycle, std::move(p));
    in.process_arrivals(cycle + 1);
  }
};

TEST_F(InputUnitTest, CleanFlitBufferedAndAcked) {
  send(0, phit_of(make_flit(1, 0, 1, 0, 0xAB)));
  EXPECT_EQ(in.occupancy(), 1);
  const auto acks = link.take_acks(2);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0].ok);
  EXPECT_EQ(acks[0].packet, 1u);
}

TEST_F(InputUnitTest, CorruptFlitNackedNotBuffered) {
  LinkPhit p = phit_of(make_flit(1, 0, 1, 0, 0xAB));
  p.codeword.flip(3);
  p.codeword.flip(40);
  send(0, std::move(p));
  EXPECT_EQ(in.occupancy(), 0);
  const auto acks = link.take_acks(2);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_FALSE(acks[0].ok);
  EXPECT_EQ(in.stats().nacks_sent, 1u);
}

TEST_F(InputUnitTest, SingleBitErrorCorrectedAndCounted) {
  LinkPhit p = phit_of(make_flit(1, 0, 1, 0, 0xAB));
  p.codeword.flip(10);
  send(0, std::move(p));
  EXPECT_EQ(in.occupancy(), 1);
  EXPECT_EQ(in.stats().corrected_singles, 1u);
  EXPECT_EQ(in.stats().silent_corruptions, 0u);
}

TEST_F(InputUnitTest, ForwardingGatedByBwStage) {
  send(0, phit_of(make_flit(1, 0, 1, 0, 0xAB)));
  EXPECT_FALSE(in.front_flit_ready(1, 0));  // BW takes a cycle
  EXPECT_TRUE(in.front_flit_ready(2, 0));
}

TEST_F(InputUnitTest, PopReturnsCreditAndRetiresStream) {
  send(0, phit_of(make_flit(1, 0, 1, 2, 0xAB)));
  ASSERT_TRUE(in.front_flit_ready(2, 2));
  const Flit f = in.pop_front_flit(2, 2);
  EXPECT_EQ(f.packet, 1u);
  EXPECT_EQ(in.occupancy(), 0);
  EXPECT_TRUE(in.vcbuf(2).streams.empty());
  const auto credits = link.take_credits(3);
  ASSERT_EQ(credits.size(), 1u);
  EXPECT_EQ(credits[0].vc, 2);
}

TEST_F(InputUnitTest, OutOfOrderArrivalReordersBySeq) {
  // seq 1 overtakes seq 0 (retransmission skip, paper Fig. 7).
  send(0, phit_of(make_flit(1, 1, 3, 0, 0x22)));
  EXPECT_FALSE(in.front_flit_ready(5, 0));  // seq 0 missing
  send(1, phit_of(make_flit(1, 0, 3, 0, 0x11)));
  ASSERT_TRUE(in.front_flit_ready(5, 0));
  EXPECT_EQ(in.pop_front_flit(5, 0).seq, 0);
  EXPECT_EQ(in.pop_front_flit(5, 0).seq, 1);
}

TEST_F(InputUnitTest, InterleavedPacketsFormSeparateStreams) {
  send(0, phit_of(make_flit(1, 0, 2, 0, 0x11)));
  send(1, phit_of(make_flit(2, 0, 1, 0, 0x22)));
  EXPECT_EQ(in.vcbuf(0).streams.size(), 2u);
  // Front stream (packet 1) gates the VC.
  EXPECT_EQ(in.vcbuf(0).streams.front().packet, 1u);
  // Packet 1's tail completes and retires; packet 2 becomes front.
  send(2, phit_of(make_flit(1, 1, 2, 0, 0x12)));
  (void)in.pop_front_flit(5, 0);
  (void)in.pop_front_flit(5, 0);
  EXPECT_EQ(in.vcbuf(0).streams.front().packet, 2u);
}

TEST_F(InputUnitTest, InvertedFlitRecoveredWithPenalty) {
  ObfuscationTag tag;
  tag.method = ObfMethod::kInvert;
  tag.granularity = ObfGranularity::kHeader;
  send(0, phit_of(make_flit(1, 0, 1, 0, 0xABCD), tag));
  EXPECT_EQ(in.occupancy(), 1);
  EXPECT_EQ(in.stats().silent_corruptions, 0u);
  // +1 cycle de-obfuscation penalty: ready at arrival(1)+penalty(1)+bw(1).
  EXPECT_FALSE(in.front_flit_ready(2, 0));
  EXPECT_TRUE(in.front_flit_ready(3, 0));
}

TEST_F(InputUnitTest, ScrambledFlitWaitsForPartner) {
  const Flit owner = make_flit(1, 0, 1, 0, 0x1111);
  const Flit partner = make_flit(2, 0, 1, 1, 0x2222);
  ObfuscationTag tag;
  tag.method = ObfMethod::kScramble;
  tag.granularity = ObfGranularity::kFlit;
  tag.partner_packet = partner.packet;
  tag.partner_seq = partner.seq;

  send(0, phit_of(owner, tag, partner.wire));
  EXPECT_EQ(in.stats().scramble_stalls, 1u);
  EXPECT_FALSE(in.front_flit_ready(10, 0));  // held in the station

  send(2, phit_of(partner));  // partner arrives plain
  EXPECT_TRUE(in.front_flit_ready(10, 0));
  EXPECT_TRUE(in.front_flit_ready(10, 1));
  EXPECT_EQ(in.pop_front_flit(10, 0).wire, 0x1111u);
  EXPECT_EQ(in.stats().silent_corruptions, 0u);
}

TEST_F(InputUnitTest, ScrambledFlitResolvesFromWireCacheWhenPartnerFirst) {
  const Flit owner = make_flit(1, 0, 1, 0, 0x1111);
  const Flit partner = make_flit(2, 0, 1, 1, 0x2222);
  send(0, phit_of(partner));  // partner first

  ObfuscationTag tag;
  tag.method = ObfMethod::kScramble;
  tag.granularity = ObfGranularity::kFlit;
  tag.partner_packet = partner.packet;
  tag.partner_seq = partner.seq;
  send(2, phit_of(owner, tag, partner.wire));
  EXPECT_EQ(in.stats().scramble_stalls, 0u);
  EXPECT_TRUE(in.front_flit_ready(10, 0));
  EXPECT_EQ(in.pop_front_flit(10, 0).wire, 0x1111u);
}

TEST_F(InputUnitTest, PurgeRemovesFlitsAndSendsCredits) {
  send(0, phit_of(make_flit(1, 0, 3, 0, 0x11)));
  send(1, phit_of(make_flit(1, 1, 3, 0, 0x12)));
  send(2, phit_of(make_flit(2, 0, 1, 1, 0x21)));
  (void)link.take_credits(100);  // drain
  const auto res = in.purge_packet(10, 1);
  EXPECT_EQ(res.flits_purged, 2);
  EXPECT_EQ(res.buffered_uids.size(), 2u);
  EXPECT_FALSE(in.has_packet(1));
  EXPECT_TRUE(in.has_packet(2));
  EXPECT_EQ(link.take_credits(100).size(), 2u);
}

TEST_F(InputUnitTest, PurgeFlagsDependentScrambledPackets) {
  const Flit owner = make_flit(5, 0, 1, 0, 0x1111);
  ObfuscationTag tag;
  tag.method = ObfMethod::kScramble;
  tag.granularity = ObfGranularity::kFlit;
  tag.partner_packet = 6;  // partner never arrives
  tag.partner_seq = 0;
  send(0, phit_of(owner, tag, 0x2222));
  const auto res = in.purge_packet(10, 6);  // purge the partner's packet
  EXPECT_EQ(res.flits_purged, 0);
  ASSERT_EQ(res.dependent_packets.size(), 1u);
  EXPECT_EQ(res.dependent_packets[0], 5u);
}

TEST_F(InputUnitTest, SilentCorruptionDetectedAgainstSideband) {
  // A 3-bit error can alias to a bogus "corrected" word: count it.
  LinkPhit p = phit_of(make_flit(1, 0, 1, 0, 0xAB));
  p.codeword.flip(3);
  p.codeword.flip(9);
  p.codeword.flip(30);
  send(0, std::move(p));
  const auto acks = link.take_acks(2);
  ASSERT_EQ(acks.size(), 1u);
  if (acks[0].ok) {
    EXPECT_EQ(in.stats().silent_corruptions, 1u);
  } else {
    EXPECT_EQ(in.occupancy(), 0);
  }
}

}  // namespace
}  // namespace htnoc
