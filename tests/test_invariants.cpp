// Property tests of the credit-conservation invariant: at every cycle
// boundary, for every (link, VC), buffer_depth = upstream credits + credits
// on the reverse wire + retransmission slots + receiver-buffered flits
// (minus ACK-in-flight overlap). Runs it through load, attacks, mitigation
// and purges.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace htnoc {
namespace {

TEST(Invariants, HoldOnIdleNetwork) {
  NocConfig cfg;
  Network net(cfg);
  EXPECT_EQ(net.check_invariants(), "");
  net.run(20);
  EXPECT_EQ(net.check_invariants(), "");
}

TEST(Invariants, HoldEveryCycleUnderLoad) {
  NocConfig cfg;
  Network net(cfg);
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 13;
  gp.total_requests = 300;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  Cycle c = 0;
  while (!gen.done() && c < 100000) {
    gen.step();
    net.step();
    ++c;
    ASSERT_EQ(net.check_invariants(), "") << "cycle " << c;
  }
  EXPECT_TRUE(gen.done());
}

class InvariantModeTest
    : public ::testing::TestWithParam<sim::MitigationMode> {};

TEST_P(InvariantModeTest, HoldUnderAttackAndMitigation) {
  sim::SimConfig sc;
  sc.mode = GetParam();
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = 200;
  sc.attacks.push_back(a);
  sc.reroute_latency = 50;
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 14;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  simulator.set_drop_callback([&](PacketId id) { gen.requeue(id); });
  for (Cycle c = 0; c < 2000; ++c) {
    gen.step();
    simulator.step();
    if (c % 7 == 0) {
      ASSERT_EQ(net.check_invariants(), "")
          << "cycle " << c << " mode " << to_string(GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, InvariantModeTest,
                         ::testing::Values(sim::MitigationMode::kNone,
                                           sim::MitigationMode::kLOb,
                                           sim::MitigationMode::kReroute));

TEST(Invariants, HoldAfterEveryPurge) {
  NocConfig cfg;
  Network net(cfg);
  std::vector<PacketId> ids;
  for (NodeId s = 0; s < 64; s += 5) {
    PacketInfo info;
    info.id = net.next_packet_id();
    info.src_core = s;
    info.dest_core = static_cast<NodeId>(63 - s);
    info.src_router = net.geometry().router_of_core(info.src_core);
    info.dest_router = net.geometry().router_of_core(info.dest_core);
    info.length = 4;
    if (net.try_inject(info, std::vector<std::uint64_t>(3, s))) {
      ids.push_back(info.id);
    }
    net.run(3);
  }
  for (const PacketId id : ids) {
    (void)net.purge_packet(id);
    ASSERT_EQ(net.check_invariants(), "") << "after purging " << id;
  }
  net.run(100);
  EXPECT_EQ(net.check_invariants(), "");
  EXPECT_TRUE(net.quiescent());
}

TEST(Invariants, HoldUnderTdm) {
  NocConfig cfg;
  cfg.tdm_enabled = true;
  Network net(cfg);
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel m1(net.geometry(), traffic::fft_profile());
  traffic::TrafficGenerator::Params p1;
  p1.seed = 15;
  p1.domain = TdmDomain::kD1;
  p1.total_requests = 150;
  traffic::TrafficGenerator g1(net, m1, p1, disp);
  traffic::AppTrafficModel m2(net.geometry(),
                              traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params p2;
  p2.seed = 16;
  p2.domain = TdmDomain::kD2;
  p2.total_requests = 150;
  traffic::TrafficGenerator g2(net, m2, p2, disp);
  Cycle c = 0;
  while ((!g1.done() || !g2.done()) && c < 100000) {
    g1.step();
    g2.step();
    net.step();
    ++c;
    if (c % 5 == 0) ASSERT_EQ(net.check_invariants(), "") << "cycle " << c;
  }
  EXPECT_TRUE(g1.done());
  EXPECT_TRUE(g2.done());
}

TEST(Invariants, HoldWithPerVcRetransmissionScheme) {
  NocConfig cfg;
  cfg.retrans_scheme = RetransmissionScheme::kPerVcBuffer;
  Network net(cfg);
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(), traffic::ferret_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 17;
  gp.total_requests = 200;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  Cycle c = 0;
  while (!gen.done() && c < 100000) {
    gen.step();
    net.step();
    ++c;
    if (c % 5 == 0) ASSERT_EQ(net.check_invariants(), "") << "cycle " << c;
  }
  EXPECT_TRUE(gen.done());
}

TEST(Invariants, GoldenDeterminismLock) {
  // Two identical runs must agree cycle for cycle (bit-reproducibility is a
  // stated design requirement); lock a fingerprint so regressions surface.
  auto fingerprint = []() {
    NocConfig cfg;
    Network net(cfg);
    traffic::DeliveryDispatcher disp;
    disp.install(net);
    traffic::AppTrafficModel model(net.geometry(),
                                   traffic::facesim_profile());
    traffic::TrafficGenerator::Params gp;
    gp.seed = 2025;
    gp.total_requests = 120;
    traffic::TrafficGenerator gen(net, model, gp, disp);
    Cycle c = 0;
    while (!gen.done() && c < 100000) {
      gen.step();
      net.step();
      ++c;
    }
    return std::make_tuple(c, gen.stats().latency_sum,
                           gen.stats().packets_delivered);
  };
  const auto a = fingerprint();
  const auto b = fingerprint();
  EXPECT_EQ(a, b);
  EXPECT_GT(std::get<2>(a), 120u);  // requests + replies
}

}  // namespace
}  // namespace htnoc
