// Property-based routing tests: randomized (topology, size, src, dst)
// tuples checked against the invariants every deterministic routing
// function in src/topology must hold —
//
//   minimality    every hop reduces the topology hop distance by exactly 1,
//                 so the walk takes hop_distance(src,dst) hops, no more;
//   loop freedom  an immediate corollary of minimality (distance is a
//                 strictly decreasing measure, no router repeats);
//   dimension     x is fully resolved before the first y hop and never
//   order         revisited — on a mesh this makes the channel dependency
//                 graph acyclic, which is the classic deadlock-freedom
//                 argument for dimension-order routing (Dally & Seitz).
//
// Every iteration's randomness derives from (base seed, iteration), so a
// failure prints a one-line repro:
//
//   htnoc-routing-repro HTNOC_ROUTING_SEED=0x<seed> HTNOC_ROUTING_ITER=<i>
//
// Re-run exactly that case with both variables in the environment
// (HTNOC_ROUTING_ITER pins the suite to the single failing iteration).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "noc/flit.hpp"
#include "noc/updown.hpp"
#include "sweep/spec.hpp"
#include "topology/topology.hpp"

namespace {

using namespace htnoc;

std::uint64_t base_seed() {
  if (const char* s = std::getenv("HTNOC_ROUTING_SEED")) {
    return std::stoull(s, nullptr, 0);
  }
  return 0x2026'0807;
}

/// < 0: run every iteration; >= 0: run only that one (repro mode).
long pinned_iteration() {
  if (const char* s = std::getenv("HTNOC_ROUTING_ITER")) {
    return std::stol(s);
  }
  return -1;
}

std::string repro_line(std::uint64_t seed, std::uint64_t iter) {
  std::ostringstream os;
  os << "htnoc-routing-repro HTNOC_ROUTING_SEED=0x" << std::hex << seed
     << std::dec << " HTNOC_ROUTING_ITER=" << iter;
  return os.str();
}

/// Draw a random fabric. Sizes span degenerate (2x2) through 8x8, with
/// rectangular grids included; kMesh keeps concentration 1 by definition.
std::unique_ptr<Topology> draw_topology(Rng& rng, NocConfig& cfg) {
  constexpr TopologyKind kKinds[] = {TopologyKind::kConcentratedMesh,
                                     TopologyKind::kMesh,
                                     TopologyKind::kTorus};
  cfg.topology = kKinds[rng.next_below(std::size(kKinds))];
  cfg.mesh_width = static_cast<int>(rng.next_in(2, 8));
  cfg.mesh_height = static_cast<int>(rng.next_in(2, 8));
  cfg.concentration = cfg.topology == TopologyKind::kMesh
                          ? 1
                          : static_cast<int>(rng.next_in(1, 4));
  return make_topology(cfg);
}

Flit head_to(const MeshGeometry& geom, NodeId dest_core) {
  Flit f;
  f.type = FlitType::kHeadTail;
  f.dest_core = dest_core;
  f.dest_router = geom.router_of_core(dest_core);
  return f;
}

[[nodiscard]] bool is_y_port(int port) {
  return port == kPortNorth || port == kPortSouth;
}
[[nodiscard]] bool is_x_port(int port) {
  return port == kPortEast || port == kPortWest;
}

TEST(RoutingProperties, DefaultRoutingIsMinimalLoopFreeDimensionOrdered) {
  const std::uint64_t seed = base_seed();
  const long pinned = pinned_iteration();
  for (std::uint64_t iter = 0; iter < 500; ++iter) {
    if (pinned >= 0 && iter != static_cast<std::uint64_t>(pinned)) continue;
    SCOPED_TRACE(repro_line(seed, iter));
    Rng rng(sweep::mix_seed(seed, iter));

    NocConfig cfg;
    const std::unique_ptr<Topology> topo = draw_topology(rng, cfg);
    const MeshGeometry& geom = topo->geometry();
    const std::unique_ptr<RoutingFunction> routing =
        topo->make_default_routing();

    const auto src = static_cast<RouterId>(
        rng.next_below(static_cast<std::uint64_t>(geom.num_routers())));
    const auto dest_core = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(geom.num_cores())));
    const Flit f = head_to(geom, dest_core);

    RouterId here = src;
    const int dist = topo->hop_distance(src, f.dest_router);
    bool y_started = false;
    for (int hop = 0; hop <= dist; ++hop) {
      const RouteDecision dec = routing->route(here, f);
      if (here == f.dest_router) {
        ASSERT_EQ(dec.out_port,
                  kPortLocalBase + geom.local_slot_of_core(dest_core))
            << routing->name() << ": wrong ejection port at r" << here;
        ASSERT_EQ(hop, dist)
            << routing->name() << ": route length != hop distance";
        break;
      }
      ASSERT_LT(hop, dist) << routing->name()
                           << ": still not at destination after " << dist
                           << " hops (loop or detour)";
      ASSERT_TRUE(is_x_port(dec.out_port) || is_y_port(dec.out_port))
          << routing->name() << ": non-mesh port " << dec.out_port << " at r"
          << here;
      if (is_y_port(dec.out_port)) {
        y_started = true;
      } else {
        ASSERT_FALSE(y_started)
            << routing->name()
            << ": x hop after a y hop breaks dimension order at r" << here;
      }
      const Direction d = port_direction(dec.out_port);
      ASSERT_TRUE(topo->has_neighbor(here, d))
          << routing->name() << ": routed off the fabric at r" << here;
      const RouterId next = topo->neighbor(here, d);
      ASSERT_EQ(topo->hop_distance(next, f.dest_router),
                topo->hop_distance(here, f.dest_router) - 1)
          << routing->name() << ": non-minimal hop r" << here << " -> r"
          << next;
      here = next;
    }
  }
}

TEST(RoutingProperties, TorusRoutingTakesTheShortRingWay) {
  // Directed spot check of the wrap behaviour the random walk exercises
  // statistically: edge-to-opposite-edge is one wrap hop, and the exact
  // half-way tie breaks East/South deterministically.
  NocConfig cfg;
  cfg.topology = TopologyKind::kTorus;
  cfg.mesh_width = 8;
  cfg.mesh_height = 8;
  cfg.concentration = 1;
  const std::unique_ptr<Topology> topo = make_topology(cfg);
  const MeshGeometry& geom = topo->geometry();
  const std::unique_ptr<RoutingFunction> routing =
      topo->make_default_routing();

  EXPECT_EQ(geom.hop_distance(geom.router_at({0, 0}), geom.router_at({7, 0})),
            1);
  // (0,0) -> (7,0): West around the wrap, not six hops East.
  EXPECT_EQ(routing
                ->route(geom.router_at({0, 0}),
                        head_to(geom, geom.core_at(geom.router_at({7, 0}), 0)))
                .out_port,
            kPortWest);
  // (0,0) -> (4,0): both ways are 4 hops; the tie breaks East.
  EXPECT_EQ(routing
                ->route(geom.router_at({0, 0}),
                        head_to(geom, geom.core_at(geom.router_at({4, 0}), 0)))
                .out_port,
            kPortEast);
  // (0,0) -> (0,4): the y tie breaks South.
  EXPECT_EQ(routing
                ->route(geom.router_at({0, 0}),
                        head_to(geom, geom.core_at(geom.router_at({0, 4}), 0)))
                .out_port,
            kPortSouth);
}

TEST(RoutingProperties, UpDownReachesEveryDestinationOnEveryFabric) {
  // Up*/down* is the reconfiguration fallback on all fabrics (its spanning
  // tree never uses wrap links it isn't given, so it is torus-safe). Not
  // minimal — the property here is reachability with a strictly bounded,
  // loop-classifiable walk: up hops strictly precede down hops, so a route
  // can visit at most 2 * num_routers channels.
  const std::uint64_t seed = base_seed();
  const long pinned = pinned_iteration();
  for (std::uint64_t iter = 0; iter < 200; ++iter) {
    if (pinned >= 0 && iter != static_cast<std::uint64_t>(pinned)) continue;
    SCOPED_TRACE(repro_line(seed, iter));
    Rng rng(sweep::mix_seed(seed ^ 0xDEAD, iter));

    NocConfig cfg;
    const std::unique_ptr<Topology> topo = draw_topology(rng, cfg);
    const MeshGeometry& geom = topo->geometry();
    const UpDownRouting routing(geom, {});

    const auto src = static_cast<RouterId>(
        rng.next_below(static_cast<std::uint64_t>(geom.num_routers())));
    const auto dest_core = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(geom.num_cores())));
    Flit f = head_to(geom, dest_core);

    RouterId here = src;
    const int bound = 2 * geom.num_routers();
    int hop = 0;
    for (; hop <= bound; ++hop) {
      const RouteDecision dec = routing.route(here, f);
      ASSERT_GE(dec.out_port, 0) << "up*/down* unroutable at r" << here;
      if (here == f.dest_router) {
        ASSERT_EQ(dec.out_port,
                  kPortLocalBase + geom.local_slot_of_core(dest_core));
        break;
      }
      const Direction d = port_direction(dec.out_port);
      ASSERT_TRUE(topo->has_neighbor(here, d));
      here = topo->neighbor(here, d);
      f.route_phase_down = dec.next_phase_down;
    }
    ASSERT_LE(hop, bound) << "up*/down* walk exceeded its channel bound";
  }
}

}  // namespace
