// The flit-reordering L-Ob method (paper Sec. I lists it with scrambling,
// inverting and shuffling): a scheduling-only action that holds a flagged
// flit so later flits overtake it. It defeats transmission-order-keyed
// triggers; a content-keyed trojan like TASP is immune — which the tests
// document explicitly.
#include <gtest/gtest.h>

#include "mitigation/lob.hpp"
#include "noc/output_unit.hpp"
#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace htnoc {
namespace {

Flit make_flit(PacketId packet, int seq, int len, VcId vc) {
  Flit f;
  f.packet = packet;
  f.seq = seq;
  f.length = len;
  f.vc = vc;
  f.type = len == 1             ? FlitType::kHeadTail
           : seq == 0           ? FlitType::kHead
           : seq == len - 1     ? FlitType::kTail
                                : FlitType::kBody;
  return f;
}

TEST(Reorder, TransformsAreIdentityOnWires) {
  ObfuscationTag tag;
  tag.method = ObfMethod::kReorder;
  tag.granularity = ObfGranularity::kFlit;
  EXPECT_EQ(obf::apply(0xDEAD, tag), 0xDEADu);
  EXPECT_EQ(obf::undo(0xDEAD, tag), 0xDEADu);
  EXPECT_EQ(obf::undo_penalty_cycles(ObfMethod::kReorder), 0);
  EXPECT_EQ(to_string(ObfMethod::kReorder), "reorder");
}

/// An L-Ob controller that always answers kReorder (for unit-testing the
/// output unit's scheduling behaviour).
class AlwaysReorder final : public LObController {
 public:
  ObfuscationTag plan(Cycle, const Flit&, int, bool, bool) override {
    ObfuscationTag t;
    t.method = fired_ ? ObfMethod::kNone : ObfMethod::kReorder;
    fired_ = true;
    return t;
  }
  void on_ack(Cycle, const Flit&, const ObfuscationTag&) override {}
  void on_nack(Cycle, const Flit&, const ObfuscationTag&) override {}

 private:
  bool fired_ = false;
};

TEST(Reorder, LaterFlitOvertakesHeldFlit) {
  NocConfig cfg;
  Link link("l", 1);
  OutputUnit out(cfg, "out");
  out.connect(&link);
  AlwaysReorder lob;
  out.set_lob(&lob);

  out.allocate_vc(0);
  out.allocate_vc(1);
  out.accept(0, make_flit(1, 0, 1, 0), 1);  // victim: reorder-held
  out.accept(0, make_flit(2, 0, 1, 1), 1);  // bystander
  out.step_lt(1);  // victim chosen, held for kReorderHold cycles
  EXPECT_TRUE(link.take_arrivals(2).empty());
  EXPECT_EQ(out.stats().reorder_holds, 1u);
  out.step_lt(2);  // bystander goes first
  auto arr = link.take_arrivals(3);
  ASSERT_EQ(arr.size(), 1u);
  EXPECT_EQ(arr[0].flit.packet, 2u);
  // Victim transmits after the hold expires, plain.
  out.step_lt(1 + OutputUnit::kReorderHold);
  arr = link.take_arrivals(2 + OutputUnit::kReorderHold);
  ASSERT_EQ(arr.size(), 1u);
  EXPECT_EQ(arr[0].flit.packet, 1u);
  EXPECT_FALSE(arr[0].obf.active());
}

TEST(Reorder, ControllerAdvancesPastReorderWithoutNack) {
  mitigation::LObParams params;
  params.sequence = {{ObfMethod::kReorder, ObfGranularity::kFlit},
                     {ObfMethod::kInvert, ObfGranularity::kHeader}};
  mitigation::LObController lob(params);
  Flit f = make_flit(1, 0, 1, 0);
  f.src_router = 0;
  f.dest_router = 5;
  const ObfuscationTag first = lob.plan(10, f, 2, true, false);
  EXPECT_EQ(first.method, ObfMethod::kReorder);
  // No NACK arrives for a reorder (nothing was transmitted); the next plan
  // must already be the next method.
  const ObfuscationTag second = lob.plan(13, f, 2, true, false);
  EXPECT_EQ(second.method, ObfMethod::kInvert);
}

TEST(Reorder, ContentKeyedTaspIsImmuneButWireMethodsStillWin) {
  // End-to-end: with reorder FIRST in the sequence, the victim flit is
  // delayed, retried plain, struck again, and finally escapes via invert —
  // the workload still completes. Documents that reordering alone cannot
  // defeat a DPI trojan (it keys on content, not order).
  sim::SimConfig sc;
  sc.mode = sim::MitigationMode::kLOb;
  sc.lob.sequence = {{ObfMethod::kReorder, ObfGranularity::kFlit},
                     {ObfMethod::kInvert, ObfGranularity::kHeader},
                     {ObfMethod::kShuffle, ObfGranularity::kHeader},
                     {ObfMethod::kScramble, ObfGranularity::kFlit}};
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = 500;
  sc.attacks.push_back(a);
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 19;
  gp.total_requests = 600;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  Cycle c = 0;
  while (!gen.done() && c < 400000) {
    gen.step();
    simulator.step();
    ++c;
  }
  EXPECT_TRUE(gen.done());
  const auto& out =
      net.router(4).output(direction_port(Direction::kNorth));
  EXPECT_GT(out.stats().reorder_holds, 0u);     // reorder was tried...
  EXPECT_GT(simulator.tasp(0).stats().injections,
            out.stats().reorder_holds);         // ...and did not stop TASP
  EXPECT_GT(simulator
                .lob(4, direction_port(Direction::kNorth))
                .stats()
                .successes,
            0u);                                // wire methods did
}

}  // namespace
}  // namespace htnoc
