#include "noc/wire.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace htnoc::wire {
namespace {

TEST(Wire, HeaderPackUnpackRoundTrip) {
  HeaderFields h;
  h.src = 5;
  h.dest = 12;
  h.vc = 3;
  h.mem_addr = 0xDEADBEEF;
  h.length = 5;
  h.pclass = PacketClass::kReply;
  h.thread = 21;
  h.pid_low = 0xBC;  // 8 wire bits
  h.type = FlitType::kHead;

  const HeaderFields u = unpack_header(pack_header(h));
  EXPECT_EQ(u.src, h.src);
  EXPECT_EQ(u.dest, h.dest);
  EXPECT_EQ(u.vc, h.vc);
  EXPECT_EQ(u.mem_addr, h.mem_addr);
  EXPECT_EQ(u.length, h.length);
  EXPECT_EQ(u.pclass, h.pclass);
  EXPECT_EQ(u.thread, h.thread);
  EXPECT_EQ(u.pid_low, h.pid_low);
  EXPECT_EQ(u.type, h.type);
}

TEST(Wire, FieldWidthsMatchPaperTableI) {
  // src 4, dest 4, VC 2, mem 32 => full target region 42 bits.
  EXPECT_EQ(kSrcWidth, 4u);
  EXPECT_EQ(kDestWidth, 4u);
  EXPECT_EQ(kVcWidth, 2u);
  EXPECT_EQ(kMemWidth, 32u);
  EXPECT_EQ(kSrcWidth + kDestWidth + kVcWidth + kMemWidth, kFullTargetWidth);
  EXPECT_EQ(kHeaderBits, 42u);
}

TEST(Wire, FieldsDoNotOverlap) {
  // Setting one field must not disturb the others.
  HeaderFields h;
  h.src = 0xF;
  std::uint64_t w = pack_header(h);
  EXPECT_EQ(unpack_header(w).dest, 0);
  EXPECT_EQ(unpack_header(w).mem_addr, 0u);

  HeaderFields m;
  m.mem_addr = 0xFFFFFFFFu;
  w = pack_header(m);
  EXPECT_EQ(unpack_header(w).src, 0);
  EXPECT_EQ(unpack_header(w).vc, 0);
  EXPECT_EQ(unpack_header(w).length, 0u);
}

TEST(Wire, TypeStampingPreservesPayloadBits) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t payload = rng.next_u64();
    const std::uint64_t w = stamp_type(payload, FlitType::kBody);
    EXPECT_EQ(type_of(w), FlitType::kBody);
    // All bits except the type field are untouched.
    const std::uint64_t mask =
        ~(((std::uint64_t{1} << kTypeWidth) - 1) << kTypePos);
    EXPECT_EQ(w & mask, payload & mask);
  }
}

TEST(Wire, AllFlitTypesRepresentable) {
  for (const FlitType t : {FlitType::kHead, FlitType::kBody, FlitType::kTail,
                           FlitType::kHeadTail}) {
    EXPECT_EQ(type_of(stamp_type(0, t)), t);
  }
}

TEST(Wire, FullTargetRegionIsLow42Bits) {
  HeaderFields h;
  h.src = 0xF;
  h.dest = 0xF;
  h.vc = 0x3;
  h.mem_addr = 0xFFFFFFFFu;
  const std::uint64_t w = pack_header(h);
  EXPECT_EQ(htnoc::extract_bits(w, 0, kFullTargetWidth),
            (std::uint64_t{1} << kFullTargetWidth) - 1);
}

}  // namespace
}  // namespace htnoc::wire
