// The strict JSON substrate under the spec codecs and the daemon: parse /
// serialize round-trips, duplicate-key and trailing-garbage rejection,
// line/column error positions, number formatting that survives a
// parse-print cycle, and the uint64-as-hex-string convention.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace htnoc::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-17.5").as_number(), -17.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const Value v = parse(R"({"a": [1, 2, {"b": "c"}], "d": {}})");
  const Object& o = v.as_object();
  ASSERT_EQ(o.size(), 2u);
  const Array& a = v.find("a")->as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].as_number(), 1.0);
  EXPECT_EQ(a[2].find("b")->as_string(), "c");
  EXPECT_TRUE(v.find("d")->as_object().empty());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  const Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  const Object& o = v.as_object();
  EXPECT_EQ(o[0].first, "z");
  EXPECT_EQ(o[1].first, "a");
  EXPECT_EQ(o[2].first, "m");
  EXPECT_EQ(to_string(v), R"({"z":1,"a":2,"m":3})");
}

TEST(Json, RejectsDuplicateKeys) {
  EXPECT_THROW(parse(R"({"a": 1, "a": 2})"), ParseError);
}

TEST(Json, RejectsTrailingGarbage) {
  EXPECT_THROW(parse("{} x"), ParseError);
  EXPECT_THROW(parse("1 2"), ParseError);
  EXPECT_THROW(parse("[1],"), ParseError);
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* doc :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "nul", "tru", "01", "+1",
        "1.", ".5", "\"unterminated", "\"bad\\q\"", "[1 2]", "{'a': 1}",
        "undefined", "NaN", "Infinity"}) {
    EXPECT_THROW(parse(doc), ParseError) << "doc: " << doc;
  }
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    parse("{\n  \"a\": 1,\n  \"a\": 2\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_GT(e.column(), 0);
  }
}

TEST(Json, StringEscapes) {
  const Value v = parse(R"("a\"b\\c\/d\n\tAé")");
  EXPECT_EQ(v.as_string(), "a\"b\\c/d\n\tA\xC3\xA9");
  // Surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(parse(R"("😀")").as_string(), "\xF0\x9F\x98\x80");
  // Control characters must be escaped on the way out.
  EXPECT_EQ(to_string(Value(std::string("a\nb\x01"))), "\"a\\nb\\u0001\"");
}

TEST(Json, NumberFormattingRoundTrips) {
  for (const double x : {0.0, 1.0, -1.0, 0.5, 1.5, 0.1, 1.0 / 3.0,
                         1e-10, 123456789.0, 9007199254740992.0, 2.5e-17}) {
    const std::string s = format_double(x);
    EXPECT_DOUBLE_EQ(parse(s).as_number(), x) << "formatted: " << s;
  }
  // Integral doubles print without an exponent or fraction.
  EXPECT_EQ(format_double(3000.0), "3000");
  EXPECT_EQ(format_double(-7.0), "-7");
}

TEST(Json, ParsePrintFixedPoint) {
  const char* doc =
      R"({"modes":["none","lob"],"rates":[0.5,1],"noc":{"tdm":true},"x":null})";
  const std::string once = to_string(parse(doc));
  const std::string twice = to_string(parse(once));
  EXPECT_EQ(once, twice);
  EXPECT_EQ(once, doc);
}

TEST(Json, PrettyPrinting) {
  const std::string pretty = to_string(parse(R"({"a":[1,2]})"), 1);
  EXPECT_EQ(pretty, "{\n \"a\": [\n  1,\n  2\n ]\n}");
}

TEST(Json, AsUint64AcceptsNumbersAndStrings) {
  EXPECT_EQ(as_uint64(parse("42")), 42u);
  EXPECT_EQ(as_uint64(parse("\"0x5eed\"")), 0x5EEDu);
  EXPECT_EQ(as_uint64(parse("\"123\"")), 123u);
  // Full 64-bit range only via strings (doubles stop being exact at 2^53).
  EXPECT_EQ(as_uint64(parse("\"0xffffffffffffffff\"")),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_THROW(as_uint64(parse("-1")), TypeError);
  EXPECT_THROW(as_uint64(parse("1.5")), TypeError);
  EXPECT_THROW(as_uint64(parse("9007199254740993")), TypeError);
  EXPECT_THROW(as_uint64(parse("\"nope\"")), TypeError);
  EXPECT_THROW(as_uint64(parse("true")), TypeError);
}

TEST(Json, TypeErrorsOnWrongAccess) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.as_object(), TypeError);
  EXPECT_THROW(v.as_string(), TypeError);
  EXPECT_THROW(v.as_number(), TypeError);
  EXPECT_THROW(v.as_bool(), TypeError);
  EXPECT_NO_THROW(v.as_array());
}

TEST(Json, SetAppendsMembersInOrder) {
  Value v{Object{}};
  v.set("a", Value(1));
  v.set("b", Value(2));
  EXPECT_EQ(to_string(v), R"({"a":1,"b":2})");
  EXPECT_THROW(Value(7).set("x", Value(1)), TypeError);
}

}  // namespace
}  // namespace htnoc::json
