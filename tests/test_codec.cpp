// The link-codec abstraction and, more importantly, the interplay between
// the error-control scheme and the trojan's payload design: a TASP is
// tuned to its link's ECC, and mis-tuning flips the attack's effect
// between denial-of-service and silent corruption.
#include "ecc/codec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "traffic/generator.hpp"
#include "trojan/tasp.hpp"

namespace htnoc::ecc {
namespace {

TEST(Codec, FactoryReturnsNamedSchemes) {
  EXPECT_EQ(codec_for(EccScheme::kSecded).name(), "secded");
  EXPECT_EQ(codec_for(EccScheme::kParity).name(), "parity");
  EXPECT_EQ(codec_for(EccScheme::kNone).name(), "none");
  EXPECT_EQ(codec_for(EccScheme::kSecded).used_wires(), 72u);
  EXPECT_EQ(codec_for(EccScheme::kParity).used_wires(), 65u);
  EXPECT_EQ(codec_for(EccScheme::kNone).used_wires(), 64u);
}

class CodecRoundTrip : public ::testing::TestWithParam<EccScheme> {};

TEST_P(CodecRoundTrip, CleanEncodeDecode) {
  const LinkCodec& codec = codec_for(GetParam());
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t d = rng.next_u64();
    const Codeword72 cw = codec.encode(d);
    const DecodeResult r = codec.decode(cw);
    EXPECT_EQ(r.status, DecodeStatus::kClean);
    EXPECT_EQ(r.data, d);
    EXPECT_EQ(codec.extract_data(cw), d);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, CodecRoundTrip,
                         ::testing::Values(EccScheme::kSecded,
                                           EccScheme::kParity,
                                           EccScheme::kNone));

TEST(Codec, ParityDetectsOddErrorsOnly) {
  const LinkCodec& codec = codec_for(EccScheme::kParity);
  const std::uint64_t d = 0x0123456789ABCDEFULL;
  Codeword72 one = codec.encode(d);
  one.flip(7);
  EXPECT_TRUE(needs_retransmission(codec.decode(one).status));

  Codeword72 two = codec.encode(d);
  two.flip(7);
  two.flip(40);
  const DecodeResult r = codec.decode(two);
  EXPECT_EQ(r.status, DecodeStatus::kClean);  // even-weight: invisible
  EXPECT_NE(r.data, d);                       // ...and corrupt
}

TEST(Codec, ParityBitItselfIsCovered) {
  const LinkCodec& codec = codec_for(EccScheme::kParity);
  Codeword72 cw = codec.encode(0xAA);
  cw.flip(64);
  EXPECT_TRUE(needs_retransmission(codec.decode(cw).status));
}

TEST(Codec, NoneNeverDetectsAnything) {
  const LinkCodec& codec = codec_for(EccScheme::kNone);
  Codeword72 cw = codec.encode(0xFFFF);
  cw.flip(0);
  cw.flip(1);
  cw.flip(2);
  EXPECT_EQ(codec.decode(cw).status, DecodeStatus::kClean);
}

TEST(Codec, SchemeStringsRoundTrip) {
  for (const auto s : {EccScheme::kSecded, EccScheme::kParity, EccScheme::kNone}) {
    EXPECT_EQ(ecc_scheme_from_string(to_string(s)), s);
  }
  EXPECT_THROW((void)ecc_scheme_from_string("crc"), ContractViolation);
}

// --- trojan / ECC interplay, end to end ---

struct SchemeOutcome {
  std::uint64_t delivered_after = 0;
  std::uint64_t sdc = 0;
  int blocked = 0;
};

SchemeOutcome run_scheme(EccScheme link_ecc, trojan::PayloadPattern pattern) {
  sim::SimConfig sc;
  sc.noc.ecc_scheme = link_ecc;
  sc.mode = sim::MitigationMode::kNone;
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.tasp.ecc = link_ecc;  // attacker knows the code
  a.tasp.pattern = pattern;
  a.enable_killsw_at = 800;
  sc.attacks.push_back(a);
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 51;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  std::uint64_t at_attack = 0;
  for (Cycle c = 0; c < 2000; ++c) {
    gen.step();
    simulator.step();
    if (c == 799) at_attack = gen.stats().packets_delivered;
  }
  SchemeOutcome out;
  out.delivered_after = gen.stats().packets_delivered - at_attack;
  for (RouterId r = 0; r < 16; ++r) {
    for (int p = 0; p < net.router(r).num_ports(); ++p) {
      out.sdc += net.router(r).input(p).stats().silent_corruptions;
    }
  }
  out.blocked = net.sample_utilization().routers_with_blocked_port;
  return out;
}

TEST(CodecInterplay, SecdedPlusTwoBitPayloadIsTheDos) {
  const SchemeOutcome o =
      run_scheme(EccScheme::kSecded, trojan::PayloadPattern::kDoubleDetectable);
  EXPECT_GT(o.blocked, 8);
  EXPECT_EQ(o.sdc, 0u);
}

TEST(CodecInterplay, ParityPlusTwoBitPayloadIsSilentCorruptionNotDos) {
  // The SECDED-tuned payload (even weight) is invisible to parity: packets
  // flow, data rots.
  const SchemeOutcome o =
      run_scheme(EccScheme::kParity, trojan::PayloadPattern::kDoubleDetectable);
  EXPECT_LE(o.blocked, 2);
  EXPECT_GT(o.sdc, 10u);
  EXPECT_GT(o.delivered_after, 500u);  // traffic keeps moving
}

TEST(CodecInterplay, ParityPlusSingleBitPayloadIsTheDos) {
  // Against parity (which corrects nothing), one flipped bit per sighting
  // already forces endless retransmission.
  const SchemeOutcome o = run_scheme(EccScheme::kParity,
                                     trojan::PayloadPattern::kSingleCorrectable);
  EXPECT_GT(o.blocked, 8);
}

TEST(CodecInterplay, SecdedAbsorbsSingleBitPayload) {
  const SchemeOutcome o = run_scheme(EccScheme::kSecded,
                                     trojan::PayloadPattern::kSingleCorrectable);
  EXPECT_LE(o.blocked, 2);
  EXPECT_EQ(o.sdc, 0u);  // every strike corrected inline
}

TEST(CodecInterplay, NoEccMeansPureSilentCorruption) {
  const SchemeOutcome o =
      run_scheme(EccScheme::kNone, trojan::PayloadPattern::kDoubleDetectable);
  EXPECT_LE(o.blocked, 2);
  EXPECT_GT(o.sdc, 10u);
}

TEST(CodecInterplay, CleanTrafficDeliversUnderEveryScheme) {
  for (const auto scheme :
       {EccScheme::kSecded, EccScheme::kParity, EccScheme::kNone}) {
    NocConfig cfg;
    cfg.ecc_scheme = scheme;
    Network net(cfg);
    traffic::DeliveryDispatcher disp;
    disp.install(net);
    traffic::AppTrafficModel model(net.geometry(), traffic::fft_profile());
    traffic::TrafficGenerator::Params gp;
    gp.seed = 52;
    gp.total_requests = 150;
    traffic::TrafficGenerator gen(net, model, gp, disp);
    Cycle c = 0;
    while (!gen.done() && c < 100000) {
      gen.step();
      net.step();
      ++c;
    }
    EXPECT_TRUE(gen.done()) << to_string(scheme);
    EXPECT_EQ(net.check_invariants(), "") << to_string(scheme);
  }
}

}  // namespace
}  // namespace htnoc::ecc
