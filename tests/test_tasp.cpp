#include "trojan/tasp.hpp"

#include <gtest/gtest.h>

#include <set>

#include "noc/flit.hpp"

namespace htnoc::trojan {
namespace {

std::uint64_t head_wire(RouterId src, RouterId dest, VcId vc, std::uint32_t mem) {
  wire::HeaderFields h;
  h.src = src;
  h.dest = dest;
  h.vc = vc;
  h.mem_addr = mem;
  h.type = FlitType::kHead;
  return wire::pack_header(h);
}

LinkPhit phit_of(std::uint64_t w) {
  LinkPhit p;
  p.flit.wire = w;
  p.codeword = ecc::secded().encode(w);
  return p;
}

TaspParams dest_params(RouterId dest) {
  TaspParams p;
  p.kind = TargetKind::kDest;
  p.target_dest = dest;
  return p;
}

TEST(Tasp, DormantWithoutKillSwitch) {
  Tasp t(dest_params(0));
  LinkPhit p = phit_of(head_wire(3, 0, 0, 0));
  const Codeword72 before = p.codeword;
  t.on_traverse(1, p);
  EXPECT_EQ(p.codeword, before);
  EXPECT_EQ(t.state(), Tasp::State::kIdle);
  EXPECT_EQ(t.stats().injections, 0u);
}

TEST(Tasp, KillSwitchPlusTargetTriggers) {
  Tasp t(dest_params(0));
  t.set_kill_switch(true);
  LinkPhit p = phit_of(head_wire(3, 0, 0, 0));
  const Codeword72 before = p.codeword;
  t.on_traverse(1, p);
  EXPECT_EQ(before.distance(p.codeword), 2);  // exactly two flipped wires
  EXPECT_EQ(t.state(), Tasp::State::kAttacking);
  EXPECT_EQ(t.stats().injections, 1u);
}

TEST(Tasp, NonTargetPassesUntouched) {
  Tasp t(dest_params(0));
  t.set_kill_switch(true);
  LinkPhit p = phit_of(head_wire(3, 7, 0, 0));  // dest 7 != 0
  const Codeword72 before = p.codeword;
  t.on_traverse(1, p);
  EXPECT_EQ(p.codeword, before);
  EXPECT_EQ(t.state(), Tasp::State::kActive);
  EXPECT_EQ(t.stats().target_sightings, 0u);
}

TEST(Tasp, TwoBitPayloadIsUncorrectableButDetectable) {
  Tasp t(dest_params(5));
  t.set_kill_switch(true);
  for (int i = 0; i < 20; ++i) {
    LinkPhit p = phit_of(head_wire(1, 5, 0, 0x100u + static_cast<unsigned>(i)));
    t.on_traverse(static_cast<Cycle>(i * 3), p);
    const auto r = ecc::secded().decode(p.codeword);
    EXPECT_TRUE(ecc::needs_retransmission(r.status)) << "injection " << i;
  }
}

TEST(Tasp, PayloadLocationsWalkAcrossStates) {
  TaspParams params = dest_params(0);
  params.payload_states = 8;
  Tasp t(params);
  std::set<std::vector<unsigned>> signatures;
  for (int s = 0; s < params.payload_states; ++s) {
    const auto wires = t.payload_wires(s);
    ASSERT_EQ(wires.size(), 2u);
    EXPECT_NE(wires[0], wires[1]);
    signatures.insert(wires);
  }
  // Locations shift between states (the transient-fault disguise).
  EXPECT_GT(signatures.size(), 4u);
}

TEST(Tasp, SequentialInjectionAdvancesPayloadState) {
  Tasp t(dest_params(0));
  t.set_kill_switch(true);
  EXPECT_EQ(t.payload_state(), 0);
  for (int i = 1; i <= 3; ++i) {
    LinkPhit p = phit_of(head_wire(2, 0, 0, 0));
    t.on_traverse(static_cast<Cycle>(i * 5), p);
    EXPECT_EQ(t.payload_state(), i % t.params().payload_states);
  }
}

TEST(Tasp, MinGapThrottlesInjections) {
  TaspParams params = dest_params(0);
  params.min_gap = 10;
  Tasp t(params);
  t.set_kill_switch(true);

  LinkPhit p1 = phit_of(head_wire(2, 0, 0, 0));
  t.on_traverse(100, p1);
  EXPECT_EQ(t.stats().injections, 1u);

  LinkPhit p2 = phit_of(head_wire(2, 0, 0, 0));
  const Codeword72 before = p2.codeword;
  t.on_traverse(105, p2);  // inside the gap: sighted but spared
  EXPECT_EQ(p2.codeword, before);
  EXPECT_EQ(t.stats().injections, 1u);
  EXPECT_EQ(t.stats().target_sightings, 2u);

  LinkPhit p3 = phit_of(head_wire(2, 0, 0, 0));
  t.on_traverse(110, p3);
  EXPECT_EQ(t.stats().injections, 2u);
}

TEST(Tasp, KillSwitchOffReturnsToIdle) {
  Tasp t(dest_params(0));
  t.set_kill_switch(true);
  LinkPhit p = phit_of(head_wire(2, 0, 0, 0));
  t.on_traverse(1, p);
  EXPECT_EQ(t.state(), Tasp::State::kAttacking);
  t.set_kill_switch(false);
  LinkPhit q = phit_of(head_wire(2, 0, 0, 0));
  const Codeword72 before = q.codeword;
  t.on_traverse(2, q);
  EXPECT_EQ(q.codeword, before);
  EXPECT_EQ(t.state(), Tasp::State::kIdle);
}

TEST(Tasp, BodyFlitsIgnoredWhenHeadOnly) {
  Tasp t(dest_params(0));
  t.set_kill_switch(true);
  // Body flit whose payload bits happen to decode as dest 0.
  const std::uint64_t w = wire::stamp_type(0, FlitType::kBody);
  LinkPhit p = phit_of(w);
  const Codeword72 before = p.codeword;
  t.on_traverse(1, p);
  EXPECT_EQ(p.codeword, before);
}

TEST(Tasp, TargetKindMatching) {
  struct Case {
    TargetKind kind;
    std::uint64_t matching;
    std::uint64_t non_matching;
  };
  TaspParams p;
  p.target_src = 3;
  p.target_dest = 7;
  p.target_vc = 1;
  p.target_mem = 0xAAAA0000;
  const std::vector<Case> cases = {
      {TargetKind::kSrc, head_wire(3, 9, 0, 0), head_wire(4, 9, 0, 0)},
      {TargetKind::kDest, head_wire(1, 7, 0, 0), head_wire(1, 8, 0, 0)},
      {TargetKind::kDestSrc, head_wire(3, 7, 2, 1), head_wire(3, 6, 2, 1)},
      {TargetKind::kVc, head_wire(0, 0, 1, 0), head_wire(0, 0, 2, 0)},
      {TargetKind::kMem, head_wire(0, 0, 0, 0xAAAA0000),
       head_wire(0, 0, 0, 0xAAAA0001)},
      {TargetKind::kFull, head_wire(3, 7, 1, 0xAAAA0000),
       head_wire(3, 7, 1, 0xAAAA0002)},
  };
  for (const auto& c : cases) {
    p.kind = c.kind;
    Tasp t(p);
    EXPECT_TRUE(t.matches(c.matching)) << to_string(c.kind);
    EXPECT_FALSE(t.matches(c.non_matching)) << to_string(c.kind);
  }
}

TEST(Tasp, MemMaskEnablesRangeTargeting) {
  TaspParams p;
  p.kind = TargetKind::kMem;
  p.target_mem = 0x12340000;
  p.mem_mask = 0xFFFF0000;  // whole 64 KiB page
  Tasp t(p);
  EXPECT_TRUE(t.matches(head_wire(0, 0, 0, 0x12340000)));
  EXPECT_TRUE(t.matches(head_wire(0, 0, 0, 0x1234BEEF)));
  EXPECT_FALSE(t.matches(head_wire(0, 0, 0, 0x12350000)));
}

TEST(Tasp, SilentCorruptionVariantFlipsThreeBits) {
  TaspParams p = dest_params(0);
  p.pattern = PayloadPattern::kTripleSdc;
  Tasp t(p);
  t.set_kill_switch(true);
  LinkPhit q = phit_of(head_wire(2, 0, 0, 0));
  const Codeword72 before = q.codeword;
  t.on_traverse(1, q);
  EXPECT_EQ(before.distance(q.codeword), 3);
}

TEST(Tasp, SingleCorrectableVariantIsAbsorbedByEcc) {
  TaspParams p = dest_params(0);
  p.pattern = PayloadPattern::kSingleCorrectable;
  Tasp t(p);
  t.set_kill_switch(true);
  LinkPhit q = phit_of(head_wire(2, 0, 0, 0));
  t.on_traverse(1, q);
  const auto r = ecc::secded().decode(q.codeword);
  EXPECT_EQ(r.status, ecc::DecodeStatus::kCorrectedSingle);
  EXPECT_EQ(r.data, q.flit.wire);
}

TEST(Tasp, NeverAnswersBistProbes) {
  Tasp t(dest_params(0));
  t.set_kill_switch(true);
  Codeword72 cw;
  t.probe(cw);
  EXPECT_EQ(cw, Codeword72{});
}

TEST(Tasp, TargetWidthsMatchPaperTableI) {
  EXPECT_EQ(target_width(TargetKind::kFull), 42u);
  EXPECT_EQ(target_width(TargetKind::kDest), 4u);
  EXPECT_EQ(target_width(TargetKind::kSrc), 4u);
  EXPECT_EQ(target_width(TargetKind::kDestSrc), 8u);
  EXPECT_EQ(target_width(TargetKind::kMem), 32u);
  EXPECT_EQ(target_width(TargetKind::kVc), 2u);
}

TEST(Tasp, RejectsDegenerateParams) {
  TaspParams p = dest_params(0);
  p.payload_states = 1;
  EXPECT_THROW(Tasp{p}, ContractViolation);
  p.payload_states = 8;
  p.min_gap = 0;
  EXPECT_THROW(Tasp{p}, ContractViolation);
}

}  // namespace
}  // namespace htnoc::trojan
