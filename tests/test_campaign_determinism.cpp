// The fault campaign must be a pure function of (seed, scenario count):
// identical summaries at any thread count, and any single scenario
// replayable in isolation from its repro spec. This is what makes the
// "seed + index" minimal repro from a 10k-scenario nightly soak trustworthy.
#include <gtest/gtest.h>

#include <string>

#include "verify/campaign.hpp"

namespace htnoc::verify {
namespace {

constexpr std::uint64_t kSeed = 42;
constexpr std::size_t kScenarios = 48;

CampaignSpec spec_with_threads(int threads) {
  CampaignSpec spec;
  spec.seed = kSeed;
  spec.scenarios = kScenarios;
  spec.threads = threads;
  return spec;
}

TEST(CampaignDeterminism, SummaryIdenticalAcrossThreadCounts) {
  const CampaignResult one = FaultCampaign(spec_with_threads(1)).run();
  const CampaignResult two = FaultCampaign(spec_with_threads(2)).run();
  const CampaignResult eight = FaultCampaign(spec_with_threads(8)).run();
  EXPECT_EQ(one.summary_text(), two.summary_text());
  EXPECT_EQ(one.summary_text(), eight.summary_text());
  EXPECT_EQ(one.summary_markdown(), eight.summary_markdown());
}

TEST(CampaignDeterminism, ScenariosPassOnCleanBuild) {
  // A clean (non-mutation) build must survive the randomized adversarial
  // scenarios with the auditor armed; this is the in-tree slice of the
  // nightly 10k soak.
  const CampaignResult result = FaultCampaign(spec_with_threads(0)).run();
  EXPECT_EQ(result.failures(), 0u) << result.summary_text();
  ASSERT_EQ(result.scenarios.size(), kScenarios);
  std::size_t audited = 0;
  for (const ScenarioResult& s : result.scenarios) {
    EXPECT_FALSE(s.descriptor.empty());
    if (s.audits > 0) ++audited;
  }
  EXPECT_EQ(audited, kScenarios);
}

TEST(CampaignDeterminism, IsolatedReplayMatchesCampaignSlot) {
  const CampaignResult result = FaultCampaign(spec_with_threads(4)).run();
  const CampaignSpec spec = spec_with_threads(0);
  for (const std::size_t index : {std::size_t{0}, std::size_t{17},
                                  kScenarios - 1}) {
    const ScenarioResult& slot = result.scenarios[index];
    const ScenarioResult replay = FaultCampaign::run_scenario(spec, index);
    EXPECT_EQ(replay.ok, slot.ok) << index;
    EXPECT_EQ(replay.descriptor, slot.descriptor) << index;
    EXPECT_EQ(replay.cycles, slot.cycles) << index;
    EXPECT_EQ(replay.delivered, slot.delivered) << index;
    EXPECT_EQ(replay.purged, slot.purged) << index;
    EXPECT_EQ(replay.flits_tracked, slot.flits_tracked) << index;
    EXPECT_EQ(replay.error, slot.error) << index;
  }
}

TEST(CampaignDeterminism, ScenarioDiversity) {
  // The descriptor string encodes the drawn knobs; across 48 scenarios the
  // generator must exercise attacks, mitigation, and fault injection, not
  // collapse onto one corner of the space.
  const CampaignResult result = FaultCampaign(spec_with_threads(0)).run();
  int with_attack = 0, with_mitigation = 0, with_fault = 0, with_storm = 0;
  for (const ScenarioResult& s : result.scenarios) {
    if (s.descriptor.find("attacks=") != std::string::npos &&
        s.descriptor.find("attacks=0") == std::string::npos) {
      ++with_attack;
    }
    if (s.descriptor.find("mode=lob") != std::string::npos ||
        s.descriptor.find("mode=reroute") != std::string::npos) {
      ++with_mitigation;
    }
    if (s.descriptor.find("transient=0 ") == std::string::npos ||
        s.descriptor.find("perm=0 ") == std::string::npos) {
      ++with_fault;
    }
    if (s.descriptor.find("storms=0") == std::string::npos) ++with_storm;
  }
  EXPECT_GT(with_attack, 5);
  EXPECT_GT(with_mitigation, 5);
  EXPECT_GT(with_fault, 5);
  EXPECT_GT(with_storm, 2);
}

TEST(CampaignDeterminism, ReproSpecRoundTrip) {
  const ReproSpec spec{0xDEADBEEFCAFEull, 421};
  const auto parsed = parse_repro(format_repro(spec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seed, spec.seed);
  EXPECT_EQ(parsed->index, spec.index);
}

TEST(CampaignDeterminism, ParseReproRejectsGarbage) {
  EXPECT_FALSE(parse_repro("").has_value());
  EXPECT_FALSE(parse_repro("seed=1 index=2").has_value());
  EXPECT_FALSE(parse_repro("htnoc-campaign-repro seed=zz index=1").has_value());
  EXPECT_FALSE(parse_repro("htnoc-campaign-repro seed=0x1").has_value());
}

}  // namespace
}  // namespace htnoc::verify
