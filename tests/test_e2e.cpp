#include "mitigation/e2e.hpp"

#include <gtest/gtest.h>

#include "trojan/tasp.hpp"

namespace htnoc::mitigation {
namespace {

TEST(E2e, PayloadScrambleRoundTrips) {
  const E2eObfuscator e2e(0x5ec3e7);
  const std::vector<std::uint64_t> words = {0x1111, 0x2222, 0xDEADBEEF};
  const auto scrambled = e2e.scramble_payload(3, 40, words);
  EXPECT_NE(scrambled, words);
  EXPECT_EQ(e2e.unscramble_payload(3, 40, scrambled), words);
}

TEST(E2e, MemScrambleIsInvolution) {
  const E2eObfuscator e2e(0x5ec3e7);
  const std::uint32_t mem = 0x12345678;
  const std::uint32_t s = e2e.scramble_mem(7, 9, mem);
  EXPECT_NE(s, mem);
  EXPECT_EQ(e2e.scramble_mem(7, 9, s), mem);
}

TEST(E2e, KeysDifferPerFlow) {
  const E2eObfuscator e2e(1);
  EXPECT_NE(e2e.key(0, 1), e2e.key(1, 0));
  EXPECT_NE(e2e.key(0, 1), e2e.key(0, 2));
  EXPECT_EQ(e2e.key(0, 1), e2e.key(0, 1));
}

TEST(E2e, PayloadScramblePreservesFlitTypeBits) {
  const E2eObfuscator e2e(42);
  const std::uint64_t body = wire::stamp_type(0xABCD, FlitType::kBody);
  const auto s = e2e.scramble_payload(1, 2, {body});
  EXPECT_EQ(wire::type_of(s[0]), FlitType::kBody);
}

TEST(E2e, DefeatsMemTargetedTrojan) {
  // E2e scrambling hides the memory address from a mem-tuned comparator.
  const E2eObfuscator e2e(0xFEED);
  trojan::TaspParams p;
  p.kind = trojan::TargetKind::kMem;
  p.target_mem = 0x40001000;
  const trojan::Tasp t(p);

  wire::HeaderFields h;
  h.mem_addr = e2e.scramble_mem(2, 8, 0x40001000);
  h.type = FlitType::kHead;
  EXPECT_FALSE(t.matches(wire::pack_header(h)));
}

TEST(E2e, CannotHideRoutingFieldsFromDestTargetedTrojan) {
  // The Fig. 11(a) failure: routers need src/dest/vc in the clear, so an
  // in-network DPI trojan keyed on dest still triggers under e2e
  // obfuscation.
  const E2eObfuscator e2e(0xFEED);
  trojan::TaspParams p;
  p.kind = trojan::TargetKind::kDest;
  p.target_dest = 0;
  const trojan::Tasp t(p);

  wire::HeaderFields h;
  h.dest = 0;  // must stay plain for routing
  h.mem_addr = e2e.scramble_mem(2, 0, 0x40001000);
  h.type = FlitType::kHead;
  EXPECT_TRUE(t.matches(wire::pack_header(h)));
}

TEST(E2e, DifferentSecretsGiveDifferentKeys) {
  const E2eObfuscator a(1);
  const E2eObfuscator b(2);
  EXPECT_NE(a.key(3, 4), b.key(3, 4));
}

}  // namespace
}  // namespace htnoc::mitigation
