#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "traffic/generator.hpp"

namespace htnoc::sim {
namespace {

AttackSpec dest_attack(LinkRef link, RouterId dest, Cycle enable_at) {
  AttackSpec a;
  a.link = link;
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = dest;
  a.enable_killsw_at = enable_at;
  return a;
}

TEST(Simulator, ConstructsAllModes) {
  for (const MitigationMode mode :
       {MitigationMode::kNone, MitigationMode::kLOb, MitigationMode::kReroute}) {
    SimConfig sc;
    sc.mode = mode;
    sc.attacks.push_back(dest_attack({4, Direction::kNorth}, 0, 100));
    Simulator sim(std::move(sc));
    EXPECT_EQ(sim.num_trojans(), 1u);
    EXPECT_FALSE(sim.tasp(0).kill_switch());
    sim.run(10);
  }
}

TEST(Simulator, ModeNames) {
  EXPECT_EQ(to_string(MitigationMode::kNone), "none");
  EXPECT_EQ(to_string(MitigationMode::kLOb), "lob");
  EXPECT_EQ(to_string(MitigationMode::kReroute), "reroute");
}

TEST(Simulator, KillSwitchScheduleFires) {
  SimConfig sc;
  sc.attacks.push_back(dest_attack({4, Direction::kNorth}, 0, 5));
  Simulator sim(std::move(sc));
  sim.run(5);
  EXPECT_FALSE(sim.tasp(0).kill_switch());
  sim.step();
  EXPECT_TRUE(sim.tasp(0).kill_switch());
}

TEST(Simulator, TransientFaultsInjectedWhenConfigured) {
  SimConfig sc;
  sc.transient_phit_fault_prob = 0.05;
  Simulator sim(std::move(sc));
  Network& net = sim.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 1;
  gp.total_requests = 300;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  Cycle c = 0;
  while (!gen.done() && c < 200000) {
    gen.step();
    sim.step();
    ++c;
  }
  // Despite faults everywhere, ECC + retransmission deliver everything.
  EXPECT_TRUE(gen.done());
  std::uint64_t faults = 0;
  for (const LinkRef& l : net.all_links()) {
    faults += net.link(l.from, l.dir).stats().phits_with_injected_faults;
  }
  EXPECT_GT(faults, 0u);
}

TEST(Simulator, PermanentFaultForcesRetransmissionsUntilRerouted) {
  SimConfig sc;
  sc.mode = MitigationMode::kReroute;
  // Stuck wires produce uncorrectable double errors on a busy link.
  sc.permanent_faults.push_back(
      {{0, Direction::kEast}, {{3, true}, {30, true}}});
  Simulator sim(std::move(sc));
  Network& net = sim.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 2;
  gp.total_requests = 200;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  sim.set_drop_callback([&](PacketId id) { gen.requeue(id); });
  Cycle c = 0;
  while (!gen.done() && c < 400000) {
    gen.step();
    sim.step();
    ++c;
  }
  EXPECT_TRUE(gen.done());
  // The faulty link was detected (as permanent) and taken out of service.
  EXPECT_GE(sim.stats().links_disabled, 2);  // both directions
  EXPECT_EQ(sim.detector(1).classification(direction_port(Direction::kWest)),
            mitigation::LinkThreatClass::kPermanent);
}

TEST(Simulator, RerouteModeDisablesAttackedLinkAndCompletes) {
  SimConfig sc;
  sc.mode = MitigationMode::kReroute;
  sc.attacks.push_back(dest_attack({4, Direction::kNorth}, 0, 500));
  Simulator sim(std::move(sc));
  Network& net = sim.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 3;
  gp.total_requests = 500;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  sim.set_drop_callback([&](PacketId id) { gen.requeue(id); });
  Cycle c = 0;
  while (!gen.done() && c < 400000) {
    gen.step();
    sim.step();
    ++c;
  }
  EXPECT_TRUE(gen.done());
  EXPECT_GE(sim.stats().links_disabled, 2);
  EXPECT_GE(sim.stats().routing_reconfigurations, 1);
  EXPECT_TRUE(net.disabled_links().contains(LinkRef{4, Direction::kNorth}));
  // The trojan can no longer see traffic.
  const auto inspected_at_disable = sim.tasp(0).stats().flits_inspected;
  sim.run(100);
  EXPECT_EQ(sim.tasp(0).stats().flits_inspected, inspected_at_disable);
}

TEST(Simulator, LObModeInstallsControllersOnMeshPorts) {
  SimConfig sc;
  sc.mode = MitigationMode::kLOb;
  Simulator sim(std::move(sc));
  EXPECT_TRUE(sim.has_lob());
  // Corner router 0 has E and S mesh ports only.
  EXPECT_NO_THROW(sim.lob(0, direction_port(Direction::kEast)));
  EXPECT_NO_THROW(sim.lob(5, direction_port(Direction::kNorth)));
}

}  // namespace
}  // namespace htnoc::sim
