#include "noc/arbiter.hpp"

#include <gtest/gtest.h>

#include <map>

namespace htnoc {
namespace {

class ArbiterKindTest : public ::testing::TestWithParam<ArbiterKind> {};

TEST_P(ArbiterKindTest, NoRequestsNoGrant) {
  auto arb = make_arbiter(GetParam(), 4);
  EXPECT_EQ(arb->arbitrate({false, false, false, false}), -1);
}

TEST_P(ArbiterKindTest, SingleRequesterAlwaysWins) {
  auto arb = make_arbiter(GetParam(), 4);
  for (int i = 0; i < 4; ++i) {
    std::vector<bool> req(4, false);
    req[static_cast<std::size_t>(i)] = true;
    EXPECT_EQ(arb->arbitrate(req), i);
    arb->update(i);
  }
}

TEST_P(ArbiterKindTest, GrantIsAlwaysARequester) {
  auto arb = make_arbiter(GetParam(), 5);
  for (int mask = 1; mask < 32; ++mask) {
    std::vector<bool> req(5);
    for (int i = 0; i < 5; ++i) req[static_cast<std::size_t>(i)] = (mask >> i) & 1;
    const int w = arb->arbitrate(req);
    ASSERT_GE(w, 0);
    EXPECT_TRUE(req[static_cast<std::size_t>(w)]);
    arb->update(w);
  }
}

TEST_P(ArbiterKindTest, LongRunFairnessUnderFullLoad) {
  auto arb = make_arbiter(GetParam(), 4);
  const std::vector<bool> all(4, true);
  std::map<int, int> wins;
  for (int i = 0; i < 4000; ++i) {
    const int w = arb->arbitrate(all);
    arb->update(w);
    ++wins[w];
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(wins[i], 1000) << "input " << i << " under " << arb->name();
  }
}

TEST_P(ArbiterKindTest, NoStarvationWithAsymmetricLoad) {
  // Input 0 requests always; input 3 requests every cycle too; both must
  // make progress.
  auto arb = make_arbiter(GetParam(), 4);
  std::map<int, int> wins;
  for (int i = 0; i < 1000; ++i) {
    const std::vector<bool> req = {true, false, false, true};
    const int w = arb->arbitrate(req);
    arb->update(w);
    ++wins[w];
  }
  EXPECT_GT(wins[0], 400);
  EXPECT_GT(wins[3], 400);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ArbiterKindTest,
                         ::testing::Values(ArbiterKind::kRoundRobin,
                                           ArbiterKind::kMatrix));

TEST(RoundRobinArbiter, RotatesAfterGrant) {
  RoundRobinArbiter arb(3);
  const std::vector<bool> all(3, true);
  EXPECT_EQ(arb.arbitrate(all), 0);
  arb.update(0);
  EXPECT_EQ(arb.arbitrate(all), 1);
  arb.update(1);
  EXPECT_EQ(arb.arbitrate(all), 2);
  arb.update(2);
  EXPECT_EQ(arb.arbitrate(all), 0);
}

TEST(RoundRobinArbiter, ArbitrateWithoutUpdateKeepsPriority) {
  RoundRobinArbiter arb(3);
  const std::vector<bool> all(3, true);
  EXPECT_EQ(arb.arbitrate(all), 0);
  EXPECT_EQ(arb.arbitrate(all), 0);  // no update -> same winner
}

TEST(MatrixArbiter, LeastRecentlyServedWins) {
  MatrixArbiter arb(3);
  const std::vector<bool> all(3, true);
  EXPECT_EQ(arb.arbitrate(all), 0);
  arb.update(0);
  // 0 just served: now lowest priority; 1 (older) wins.
  EXPECT_EQ(arb.arbitrate(all), 1);
  arb.update(1);
  EXPECT_EQ(arb.arbitrate(all), 2);
  arb.update(2);
  EXPECT_EQ(arb.arbitrate(all), 0);
}

TEST(Arbiter, RejectsMismatchedRequestSize) {
  RoundRobinArbiter arb(4);
  EXPECT_THROW((void)arb.arbitrate({true, false}), ContractViolation);
}

TEST(Arbiter, UpdateRejectsOutOfRange) {
  RoundRobinArbiter arb(4);
  EXPECT_THROW(arb.update(-1), ContractViolation);
  EXPECT_THROW(arb.update(4), ContractViolation);
}

}  // namespace
}  // namespace htnoc
