#include "noc/link.hpp"

#include <gtest/gtest.h>

#include "ecc/secded.hpp"

namespace htnoc {
namespace {

LinkPhit make_phit(PacketId packet, int seq, std::uint64_t data) {
  LinkPhit p;
  p.flit.packet = packet;
  p.flit.seq = seq;
  p.flit.wire = data;
  p.codeword = ecc::secded().encode(data);
  return p;
}

TEST(Link, DeliversAfterLatency) {
  Link l("l", 1);
  l.send(10, make_phit(1, 0, 0xAA));
  EXPECT_TRUE(l.take_arrivals(10).empty());
  const auto arr = l.take_arrivals(11);
  ASSERT_EQ(arr.size(), 1u);
  EXPECT_EQ(arr[0].flit.packet, 1u);
  EXPECT_EQ(arr[0].sent_cycle, 10u);
  EXPECT_TRUE(l.idle());
}

TEST(Link, MultiCycleLatency) {
  Link l("l", 3);
  l.send(0, make_phit(1, 0, 0));
  EXPECT_TRUE(l.take_arrivals(2).empty());
  EXPECT_EQ(l.take_arrivals(3).size(), 1u);
}

TEST(Link, OnePhitPerCycle) {
  Link l("l", 1);
  EXPECT_TRUE(l.can_send(5));
  l.send(5, make_phit(1, 0, 0));
  EXPECT_FALSE(l.can_send(5));
  EXPECT_TRUE(l.can_send(6));
}

TEST(Link, DoubleSendSameCycleIsContractViolation) {
  Link l("l", 1);
  l.send(5, make_phit(1, 0, 0));
  EXPECT_THROW(l.send(5, make_phit(1, 1, 0)), ContractViolation);
}

TEST(Link, DisabledLinkRejects) {
  Link l("l", 1);
  l.set_disabled(true);
  EXPECT_FALSE(l.can_send(0));
  l.set_disabled(false);
  EXPECT_TRUE(l.can_send(0));
}

TEST(Link, CreditChannelHasOneCycleDelay) {
  Link l("l", 1);
  l.send_credit(7, CreditMsg{2});
  EXPECT_TRUE(l.take_credits(7).empty());
  const auto credits = l.take_credits(8);
  ASSERT_EQ(credits.size(), 1u);
  EXPECT_EQ(credits[0].vc, 2);
}

TEST(Link, AckChannelDeliversInOrderWithDelay) {
  Link l("l", 1);
  AckMsg a;
  a.packet = 9;
  a.seq = 1;
  a.ok = false;
  a.escalate_obfuscation = true;
  l.send_ack(3, a);
  AckMsg b;
  b.packet = 9;
  b.seq = 2;
  b.ok = true;
  l.send_ack(4, b);
  EXPECT_TRUE(l.take_acks(3).empty());
  auto got = l.take_acks(4);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_FALSE(got[0].ok);
  EXPECT_TRUE(got[0].escalate_obfuscation);
  got = l.take_acks(5);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0].ok);
}

TEST(Link, StatsCountTraffic) {
  Link l("l", 1);
  l.send(0, make_phit(1, 0, 0));
  l.send(1, make_phit(1, 1, 0));
  l.send_ack(1, AckMsg{.ok = true});
  AckMsg n;
  n.ok = false;
  l.send_ack(2, n);
  l.send_credit(2, CreditMsg{0});
  EXPECT_EQ(l.stats().phits_sent, 2u);
  EXPECT_EQ(l.stats().acks_sent, 1u);
  EXPECT_EQ(l.stats().nacks_sent, 1u);
  EXPECT_EQ(l.stats().credits_sent, 1u);
}

TEST(Link, InjectorsRunInAttachOrderAndCountFaults) {
  Link l("l", 1);
  l.attach_injector(std::make_shared<PermanentFaultInjector>(
      std::map<unsigned, bool>{{0, true}}));
  l.send(0, make_phit(1, 0, 0));  // encoded zero word: bit 0 is 0 -> flipped
  EXPECT_EQ(l.stats().phits_with_injected_faults, 1u);
  const auto arr = l.take_arrivals(1);
  ASSERT_EQ(arr.size(), 1u);
  EXPECT_TRUE(arr[0].codeword.get(0));
}

TEST(Link, ProbeAppliesOnlyPassiveFaults) {
  Link l("l", 1);
  l.attach_injector(std::make_shared<PermanentFaultInjector>(
      std::map<unsigned, bool>{{5, true}}));
  l.attach_injector(
      std::make_shared<TransientFaultInjector>(TransientFaultInjector::Params{.phit_fault_prob = 1.0}, 7));
  Codeword72 cw;
  const Codeword72 out = l.probe(cw);
  EXPECT_TRUE(out.get(5));
  // Only the stuck bit differs.
  EXPECT_EQ(cw.distance(out), 1);
}

TEST(Link, PurgeRemovesInFlightPacketsSelectively) {
  Link l("l", 2);
  l.send(0, make_phit(10, 0, 0));
  l.send(1, make_phit(11, 0, 0));
  EXPECT_TRUE(l.has_packet(10));
  const auto uids = l.purge_packet(10);
  EXPECT_EQ(uids.size(), 1u);
  EXPECT_FALSE(l.has_packet(10));
  EXPECT_TRUE(l.has_packet(11));
  EXPECT_EQ(l.take_arrivals(3).size(), 1u);
}

TEST(Link, RejectsZeroLatency) {
  EXPECT_THROW(Link("bad", 0), ContractViolation);
}

}  // namespace
}  // namespace htnoc
