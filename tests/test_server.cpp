// The simulation daemon end to end, over real loopback HTTP: submitted
// jobs must produce artifacts byte-identical to the same spec run through
// the direct engine + emitters (the exact code path sweep_cli /
// campaign_cli use), for any queue interleaving and worker count; drain
// must leave every accepted job whole; malformed submissions must be
// rejected atomically; and the admin surface must answer.
#include "server/server.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <iterator>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sweep/emit.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec_json.hpp"
#include "verify/campaign.hpp"
#include "verify/campaign_json.hpp"

namespace htnoc::server {
namespace {

constexpr const char* kSweepSpec = R"({
  "modes": ["none", "lob"],
  "attacks": ["single"],
  "profiles": ["blackscholes"],
  "rates": [1.0],
  "replicates": 2,
  "seed": "0x5eed",
  "cycles": 250
})";

constexpr const char* kCampaignSpec = R"({
  "seed": "0x20260807",
  "scenarios": 6,
  "audit_period": 64
})";

std::string envelope(const std::string& kind, int jobs,
                     const std::string& spec) {
  return "{\"kind\":\"" + kind + "\",\"jobs\":" + std::to_string(jobs) +
         ",\"spec\":" + spec + "}";
}

/// Block until the run leaves queued/running (tests are quick; a stuck
/// job fails by timeout).
std::string wait_state(int port, std::uint64_t id) {
  for (int i = 0; i < 2000; ++i) {
    const HttpResponse r = http_get(port, "/runs/" + std::to_string(id));
    if (r.status != 200) return "http_" + std::to_string(r.status);
    const json::Value doc = json::parse(r.body);
    const std::string& s = doc.find("state")->as_string();
    if (s == "done" || s == "failed" || s == "cancelled") return s;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return "timeout";
}

/// Connect to the loopback server and return the raw fd (-1 on failure).
int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Send raw bytes (not necessarily a well-formed request) and read the
/// response to EOF — for exercising the transport below http_request().
std::string raw_roundtrip(int port, const std::string& bytes) {
  const int fd = connect_loopback(port);
  if (fd < 0) return "";
  ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  std::string out;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    out.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

std::uint64_t submit_ok(int port, const std::string& body) {
  const HttpResponse r = http_post(port, "/runs", body);
  EXPECT_EQ(r.status, 202) << r.body;
  return json::as_uint64(*json::parse(r.body).find("id"));
}

std::string fetch(int port, const std::string& target) {
  const HttpResponse r = http_get(port, target);
  EXPECT_EQ(r.status, 200) << target << ": " << r.body;
  return r.body;
}

/// The reference bytes: the same spec through the engine + emitters
/// directly (exactly what sweep_cli does with --spec).
struct SweepReference {
  std::string summary_csv;
  std::string runs_csv;
  std::string result_json;
};

SweepReference reference_sweep(const std::string& spec_text, int jobs) {
  const sweep::SweepSpec spec = sweep::parse_sweep_spec(spec_text);
  sweep::SweepRunner::Options opts;
  opts.num_threads = jobs;
  const sweep::SweepResult result = sweep::SweepRunner(opts).run(spec);
  SweepReference ref;
  std::ostringstream s1;
  sweep::write_summary_csv(s1, result);
  ref.summary_csv = s1.str();
  std::ostringstream s2;
  sweep::write_runs_csv(s2, result);
  ref.runs_csv = s2.str();
  ref.result_json = sweep::to_json(result);
  return ref;
}

TEST(Server, SweepOverHttpMatchesDirectEmittersByteForByte) {
  SinkSet sinks;
  Server server(Server::Options{0, 2, 2}, &sinks);
  const int port = server.port();

  const std::uint64_t id =
      submit_ok(port, envelope("sweep", 2, kSweepSpec));
  ASSERT_EQ(wait_state(port, id), "done");

  const SweepReference ref = reference_sweep(kSweepSpec, 1);
  const std::string base = "/runs/" + std::to_string(id);
  EXPECT_EQ(fetch(port, base + "/summary.csv"), ref.summary_csv);
  EXPECT_EQ(fetch(port, base + "/runs.csv"), ref.runs_csv);
  EXPECT_EQ(fetch(port, base + "/result.json"), ref.result_json);
}

TEST(Server, CampaignOverHttpMatchesDirectSummaries) {
  SinkSet sinks;
  Server server(Server::Options{0, 2, 2}, &sinks);
  const int port = server.port();

  const std::uint64_t id =
      submit_ok(port, envelope("campaign", 2, kCampaignSpec));
  ASSERT_EQ(wait_state(port, id), "done");

  verify::CampaignSpec spec = verify::parse_campaign_spec(kCampaignSpec);
  spec.threads = 1;
  const verify::CampaignResult direct = verify::FaultCampaign(spec).run();
  const std::string base = "/runs/" + std::to_string(id);
  EXPECT_EQ(fetch(port, base + "/summary.txt"), direct.summary_text());
  EXPECT_EQ(fetch(port, base + "/summary.md"), direct.summary_markdown());
}

TEST(Server, AnyInterleavingAndWorkerCountSameBytes) {
  // A tight core budget forces queueing and staggered admission; distinct
  // per-job worker counts exercise different run schedules. Every copy of
  // the sweep must still publish identical bytes.
  SinkSet sinks;
  Server server(Server::Options{0, 2, 4}, &sinks);
  const int port = server.port();

  std::vector<std::uint64_t> sweep_ids;
  for (const int jobs : {1, 2, 3}) {
    sweep_ids.push_back(
        submit_ok(port, envelope("sweep", jobs, kSweepSpec)));
  }
  const std::uint64_t campaign_id =
      submit_ok(port, envelope("campaign", 2, kCampaignSpec));

  for (const std::uint64_t id : sweep_ids) {
    ASSERT_EQ(wait_state(port, id), "done") << "sweep " << id;
  }
  ASSERT_EQ(wait_state(port, campaign_id), "done");

  const SweepReference ref = reference_sweep(kSweepSpec, 1);
  for (const std::uint64_t id : sweep_ids) {
    const std::string base = "/runs/" + std::to_string(id);
    EXPECT_EQ(fetch(port, base + "/summary.csv"), ref.summary_csv);
    EXPECT_EQ(fetch(port, base + "/runs.csv"), ref.runs_csv);
    EXPECT_EQ(fetch(port, base + "/result.json"), ref.result_json);
  }
}

TEST(Server, DrainFinishesEveryAcceptedJobWhole) {
  SinkSet sinks;
  auto server = std::make_unique<Server>(Server::Options{0, 1, 2}, &sinks);
  const int port = server->port();

  // Several queued jobs, then an immediate drain: all of them must still
  // complete and publish their full artifact set.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(submit_ok(port, envelope("sweep", 1, kSweepSpec)));
  }
  server->shutdown();

  const SweepReference ref = reference_sweep(kSweepSpec, 1);
  for (const std::uint64_t id : ids) {
    const std::optional<JobInfo> info = server->jobs().info(id);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->state, JobState::kDone) << "job " << id;
    const std::optional<std::string> summary =
        server->jobs().artifact(id, "summary.csv");
    ASSERT_TRUE(summary.has_value());
    EXPECT_EQ(*summary, ref.summary_csv);
    EXPECT_EQ(server->jobs().artifact(id, "result.json"), ref.result_json);
  }
}

TEST(Server, MalformedSubmissionsRejectedWithoutSideEffects) {
  SinkSet sinks;
  Server server(Server::Options{0, 1, 2}, &sinks);
  const int port = server.port();

  const char* bad_bodies[] = {
      "",
      "not json",
      R"({"kind": "sweep"})",                          // missing spec
      R"({"spec": {}})",                               // missing kind
      R"({"kind": "bake", "spec": {}})",               // unknown kind
      R"({"kind": "sweep", "spec": {"bogus": 1}})",    // unknown spec key
      R"({"kind": "sweep", "spec": {"rates": [0]}})",  // out of range
      R"({"kind": "sweep", "jobs": 0, "spec": {}})",   // jobs out of range
      R"({"kind": "sweep", "spec": {}, "extra": 1})",  // unknown envelope key
      R"({"kind": "campaign", "spec": {"threads": 2}})",
  };
  for (const char* body : bad_bodies) {
    const HttpResponse r = http_post(port, "/runs", body);
    EXPECT_EQ(r.status, 400) << "accepted: " << body;
  }

  // Nothing was enqueued; the rejections were counted.
  const json::Value stats = json::parse(fetch(port, "/stats"));
  const json::Value* counters = stats.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(json::as_uint64(*counters->find("jobs_submitted")), 0u);
  EXPECT_EQ(json::as_uint64(*counters->find("jobs_rejected")),
            std::size(bad_bodies));
  EXPECT_TRUE(json::parse(fetch(port, "/runs")).find("runs")->
              as_array().empty());
}

TEST(Server, AdminSurfaceAnswers) {
  SinkSet sinks;
  Server server(Server::Options{0, 2, 2}, &sinks);
  const int port = server.port();

  const json::Value health = json::parse(fetch(port, "/healthz"));
  EXPECT_EQ(health.find("status")->as_string(), "ok");

  const std::uint64_t id = submit_ok(port, envelope("sweep", 1, kSweepSpec));
  ASSERT_EQ(wait_state(port, id), "done");

  // /runs lists the job with its artifacts.
  const json::Value runs = json::parse(fetch(port, "/runs"));
  const json::Array& arr = runs.find("runs")->as_array();
  ASSERT_EQ(arr.size(), 1u);
  EXPECT_EQ(arr[0].find("kind")->as_string(), "sweep");
  EXPECT_EQ(arr[0].find("state")->as_string(), "done");

  // /config_dump embeds the canonical spec; re-parsing it reproduces the
  // job exactly (the canonical form is a fixed point).
  const json::Value dump = json::parse(fetch(port, "/config_dump"));
  const json::Array& jobs = dump.find("jobs")->as_array();
  ASSERT_EQ(jobs.size(), 1u);
  const json::Value* spec = jobs[0].find("spec");
  ASSERT_NE(spec, nullptr);
  const std::string canon = json::to_string(
      sweep::sweep_spec_to_json(sweep::sweep_spec_from_json(*spec)));
  EXPECT_EQ(canon, json::to_string(*spec));

  // /stats reports the request latency histogram via stats::LatencyStats.
  const json::Value stats = json::parse(fetch(port, "/stats"));
  const json::Value* lat = stats.find("request_latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_GT(lat->find("count")->as_number(), 0.0);
  EXPECT_EQ(lat->find("histogram")->as_array().size(), 10u);

  // Unknown endpoints and artifacts 404 without breaking the server.
  EXPECT_EQ(http_get(port, "/nope").status, 404);
  EXPECT_EQ(http_get(port, "/runs/999").status, 404);
  EXPECT_EQ(http_get(port, "/runs/" + std::to_string(id) + "/nope.csv")
                .status,
            404);
  EXPECT_EQ(http_get(port, "/runs/xyz").status, 404);
  EXPECT_EQ(http_request(port, "PUT", "/runs").status, 405);
}

TEST(Server, DrainingRefusesNewSubmissions) {
  SinkSet sinks;
  Server server(Server::Options{0, 1, 2}, &sinks);
  const int port = server.port();
  server.jobs().drain();
  const HttpResponse r = http_post(port, "/runs",
                                   envelope("sweep", 1, kSweepSpec));
  EXPECT_EQ(r.status, 503);
  const json::Value health = json::parse(fetch(port, "/healthz"));
  EXPECT_EQ(health.find("status")->as_string(), "draining");
}

TEST(Server, DuplicateContentLengthRejected) {
  // Two Content-Length headers — even agreeing ones — are the classic
  // request-smuggling desync vector; the transport must 400 them before
  // the handler ever sees a body.
  SinkSet sinks;
  Server server(Server::Options{0, 1, 2}, &sinks);
  const int port = server.port();

  const std::string smuggled[] = {
      "POST /runs HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 3\r\n"
      "\r\nhello",
      "POST /runs HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n"
      "\r\nhello",
      "GET /healthz HTTP/1.1\r\ncontent-length: 0\r\nContent-Length: 0\r\n"
      "\r\n",
  };
  for (const std::string& req : smuggled) {
    const std::string resp = raw_roundtrip(port, req);
    EXPECT_EQ(resp.rfind("HTTP/1.1 400", 0), 0u) << "accepted: " << req;
  }
  // A single Content-Length still works, whatever its case.
  const std::string ok = raw_roundtrip(
      port, "GET /healthz HTTP/1.1\r\ncOnTeNt-LeNgTh: 0\r\n\r\n");
  EXPECT_EQ(ok.rfind("HTTP/1.1 200", 0), 0u);
  // Nothing reached the job queue.
  EXPECT_TRUE(json::parse(fetch(port, "/runs")).find("runs")->
              as_array().empty());
}

TEST(Server, SlowClientDoesNotBlockGracefulDrain) {
  // A client that sends half a request and stalls used to pin a connection
  // worker in recv() forever, wedging stop()'s join. With the receive
  // timeout, drain completes promptly.
  SinkSet sinks;
  auto server = std::make_unique<Server>(
      Server::Options{0, 1, 2, "", /*recv_timeout_ms=*/100}, &sinks);
  const int port = server->port();

  const int stalled = connect_loopback(port);
  ASSERT_GE(stalled, 0);
  const char half[] = "POST /runs HTTP/1.1\r\nContent-Le";  // then: silence
  ASSERT_GT(::send(stalled, half, sizeof half - 1, MSG_NOSIGNAL), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  const auto start = std::chrono::steady_clock::now();
  const HttpResponse quit = http_post(port, "/quitquitquit", "");
  EXPECT_EQ(quit.status, 200);
  server->wait();
  server.reset();  // joins everything, including the stalled worker
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);

  // The stalled connection was answered 400, not abandoned silently.
  std::string resp;
  char chunk[256];
  for (;;) {
    const ssize_t n = ::recv(stalled, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    resp.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(stalled);
  EXPECT_EQ(resp.rfind("HTTP/1.1 400", 0), 0u) << resp;
}

TEST(Server, StateVocabularyIsStableAcrossSurfaces) {
  // The five job states are a wire contract; every surface spells them the
  // same way and the from_string inverses round-trip exactly.
  const std::pair<JobState, const char*> vocab[] = {
      {JobState::kQueued, "queued"},       {JobState::kRunning, "running"},
      {JobState::kDone, "done"},           {JobState::kCancelled, "cancelled"},
      {JobState::kFailed, "failed"},
  };
  for (const auto& [state, text] : vocab) {
    EXPECT_STREQ(to_string(state), text);
    const std::optional<JobState> parsed = job_state_from_string(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, state);
  }
  EXPECT_FALSE(job_state_from_string("canceled").has_value());  // one l: no
  EXPECT_FALSE(job_state_from_string("DONE").has_value());
  EXPECT_FALSE(job_state_from_string("").has_value());
  EXPECT_TRUE(job_kind_from_string("sweep").has_value());
  EXPECT_TRUE(job_kind_from_string("campaign").has_value());
  EXPECT_FALSE(job_kind_from_string("bake").has_value());

  // POST /runs acknowledges with the same vocabulary ("queued").
  SinkSet sinks;
  Server server(Server::Options{0, 2, 2}, &sinks);
  const HttpResponse r = http_post(server.port(), "/runs",
                                   envelope("sweep", 1, kSweepSpec));
  ASSERT_EQ(r.status, 202);
  EXPECT_EQ(json::parse(r.body).find("state")->as_string(), "queued");
  const std::uint64_t id = json::as_uint64(*json::parse(r.body).find("id"));
  // And /runs/<id> only ever reports vocabulary states until terminal.
  const std::string final_state = wait_state(server.port(), id);
  EXPECT_TRUE(job_state_from_string(final_state).has_value()) << final_state;
}

TEST(Server, CancelQueuedJobRemovedOutright) {
  // Budget 1: the first campaign occupies the whole budget, so the second
  // submission sits queued — DELETE removes it without it ever running.
  SinkSet sinks;
  Server server(Server::Options{0, 1, 2}, &sinks);
  const int port = server.port();

  const std::uint64_t running_id =
      submit_ok(port, envelope("campaign", 1, R"({"seed": "0x20260807",
        "scenarios": 12, "audit_period": 64})"));
  const std::uint64_t queued_id =
      submit_ok(port, envelope("sweep", 1, kSweepSpec));

  const HttpResponse del =
      http_delete(port, "/runs/" + std::to_string(queued_id));
  ASSERT_EQ(del.status, 200) << del.body;
  EXPECT_EQ(json::parse(del.body).find("state")->as_string(), "cancelled");

  // Idempotent: cancelling again is still a 200.
  EXPECT_EQ(http_delete(port, "/runs/" + std::to_string(queued_id)).status,
            200);
  // The listing agrees, and the job never produced artifacts.
  const json::Value info =
      json::parse(fetch(port, "/runs/" + std::to_string(queued_id)));
  EXPECT_EQ(info.find("state")->as_string(), "cancelled");
  EXPECT_TRUE(info.find("artifacts")->as_array().empty());

  // The survivor still completes; a finished run refuses cancellation.
  ASSERT_EQ(wait_state(port, running_id), "done");
  EXPECT_EQ(http_delete(port, "/runs/" + std::to_string(running_id)).status,
            409);
  // Unknown ids 404.
  EXPECT_EQ(http_delete(port, "/runs/999").status, 404);
  EXPECT_EQ(http_delete(port, "/nope").status, 404);
}

TEST(Server, CancelRunningCampaignFreesBudgetForNextJob) {
  // A long campaign is cancelled mid-flight: DELETE returns once the
  // engine acknowledges at a scenario boundary, the state is cancelled,
  // and the freed budget admits the next FIFO job.
  SinkSet sinks;
  Server server(Server::Options{0, 1, 2}, &sinks);
  const int port = server.port();

  const std::uint64_t big =
      submit_ok(port, envelope("campaign", 1, R"({"seed": "0xdead",
        "scenarios": 100000, "audit_period": 64})"));
  // Wait until it is demonstrably running (progress visible).
  for (int i = 0; i < 2000; ++i) {
    const json::Value info =
        json::parse(fetch(port, "/runs/" + std::to_string(big)));
    if (info.find("state")->as_string() == "running" &&
        json::as_uint64(*info.find("done")) > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const HttpResponse del = http_delete(port, "/runs/" + std::to_string(big));
  ASSERT_EQ(del.status, 200) << del.body;
  EXPECT_EQ(json::parse(del.body).find("state")->as_string(), "cancelled");

  // Budget is free again: a small job admitted behind it completes.
  const std::uint64_t next = submit_ok(port, envelope("sweep", 1, kSweepSpec));
  EXPECT_EQ(wait_state(port, next), "done");

  // The cancelled campaign kept its completed-prefix artifacts.
  const json::Value info =
      json::parse(fetch(port, "/runs/" + std::to_string(big)));
  EXPECT_EQ(info.find("state")->as_string(), "cancelled");
  EXPECT_FALSE(info.find("artifacts")->as_array().empty());
  const std::uint64_t done = json::as_uint64(*info.find("done"));
  EXPECT_LT(done, 100000u);

  // /stats counts the cancellation.
  const json::Value stats = json::parse(fetch(port, "/stats"));
  EXPECT_EQ(json::as_uint64(*stats.find("counters")->find("jobs_cancelled")),
            1u);
}

TEST(Server, EventsEndpointReplaysJobHistory) {
  SinkSet sinks;
  Server server(Server::Options{0, 2, 2}, &sinks);
  const int port = server.port();

  const std::uint64_t id = submit_ok(port, envelope("sweep", 1, kSweepSpec));
  ASSERT_EQ(wait_state(port, id), "done");

  const HttpResponse r =
      http_get(port, "/runs/" + std::to_string(id) + "/events");
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "application/x-ndjson");

  std::vector<std::string> events;
  std::istringstream lines(r.body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const json::Value doc = json::parse(line);  // every line is valid JSON
    events.push_back(doc.find("event")->as_string());
    EXPECT_EQ(json::as_uint64(*doc.find("job")), id);
  }
  // Full lifecycle, in order: submitted, started, ... finished.
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events.front(), "job_submitted");
  EXPECT_EQ(events[1], "job_started");
  EXPECT_EQ(events.back(), "job_finished");

  EXPECT_EQ(http_get(port, "/runs/999/events").status, 404);
}

TEST(JobQueueBudget, OverBudgetJobStillRunsAlone) {
  // cost = jobs x step_threads = 4 x 2 = 8 > budget 2: the FIFO head runs
  // once the queue is idle instead of deadlocking.
  SinkSet sinks;
  Server server(Server::Options{0, 2, 2}, &sinks);
  const int port = server.port();
  const std::string spec =
      R"({"modes": ["none"], "attacks": ["none"], "profiles": ["blackscholes"],
          "rates": [1.0], "replicates": 4, "cycles": 120,
          "noc": {"step_threads": 2, "vcs_per_port": 2}})";
  const std::uint64_t big = submit_ok(port, envelope("sweep", 4, spec));
  const std::uint64_t small =
      submit_ok(port, envelope("sweep", 1, kSweepSpec));
  EXPECT_EQ(wait_state(port, big), "done");
  EXPECT_EQ(wait_state(port, small), "done");
  const json::Value info =
      json::parse(fetch(port, "/runs/" + std::to_string(big)));
  EXPECT_EQ(info.find("cost")->as_number(), 8.0);
}

}  // namespace
}  // namespace htnoc::server
