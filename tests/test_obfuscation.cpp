#include "noc/obfuscation.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace htnoc::obf {
namespace {

constexpr ObfGranularity kGrans[] = {ObfGranularity::kFlit,
                                     ObfGranularity::kHeader,
                                     ObfGranularity::kPayload};

// Property: every method at every granularity is perfectly invertible.
class ObfRoundTrip
    : public ::testing::TestWithParam<std::tuple<ObfMethod, ObfGranularity>> {};

TEST_P(ObfRoundTrip, UndoRestoresOriginal) {
  const auto [method, gran] = GetParam();
  Rng rng(static_cast<std::uint64_t>(method) * 31 +
          static_cast<std::uint64_t>(gran));
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t w = rng.next_u64();
    const std::uint64_t partner = rng.next_u64();
    ObfuscationTag tag;
    tag.method = method;
    tag.granularity = gran;
    const std::uint64_t obf_w = apply(w, tag, partner);
    EXPECT_EQ(undo(obf_w, tag, partner), w);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ObfRoundTrip,
    ::testing::Combine(::testing::Values(ObfMethod::kInvert, ObfMethod::kShuffle,
                                         ObfMethod::kScramble),
                       ::testing::Values(ObfGranularity::kFlit,
                                         ObfGranularity::kHeader,
                                         ObfGranularity::kPayload)));

TEST(Obfuscation, InvertIsSelfInverse) {
  Rng rng(1);
  for (const auto g : kGrans) {
    const std::uint64_t w = rng.next_u64();
    EXPECT_EQ(invert(invert(w, g), g), w);
  }
}

TEST(Obfuscation, InvertChangesEveryWindowBit) {
  for (const auto g : kGrans) {
    const Window win = window_of(g);
    const std::uint64_t w = 0;
    const std::uint64_t inv = invert(w, g);
    const std::uint64_t expect_mask =
        (win.width >= 64 ? ~std::uint64_t{0}
                         : ((std::uint64_t{1} << win.width) - 1))
        << win.pos;
    EXPECT_EQ(inv, expect_mask);
  }
}

TEST(Obfuscation, ShuffleIsNeverIdentityOnAsymmetricData) {
  // A rotation must actually move bits for the DPI comparator to miss.
  for (const auto g : kGrans) {
    const Window win = window_of(g);
    const std::uint64_t w = std::uint64_t{1} << win.pos;  // single bit set
    EXPECT_NE(shuffle(w, g), w) << "granularity " << static_cast<int>(g);
  }
}

TEST(Obfuscation, ShuffleOnlyTouchesWindow) {
  Rng rng(3);
  for (const auto g : kGrans) {
    const Window win = window_of(g);
    const std::uint64_t w = rng.next_u64();
    const std::uint64_t s = shuffle(w, g);
    const std::uint64_t outside_mask =
        ~((win.width >= 64 ? ~std::uint64_t{0}
                           : ((std::uint64_t{1} << win.width) - 1))
          << win.pos);
    EXPECT_EQ(s & outside_mask, w & outside_mask);
  }
}

TEST(Obfuscation, ScrambleWithSelfZeroesWindow) {
  Rng rng(4);
  const std::uint64_t w = rng.next_u64();
  const std::uint64_t s = scramble(w, w, ObfGranularity::kFlit);
  EXPECT_EQ(s, 0u);
}

TEST(Obfuscation, ScrambleIsSelfInverseGivenPartner) {
  Rng rng(5);
  for (const auto g : kGrans) {
    const std::uint64_t w = rng.next_u64();
    const std::uint64_t partner = rng.next_u64();
    EXPECT_EQ(scramble(scramble(w, partner, g), partner, g), w);
  }
}

TEST(Obfuscation, HeaderObfuscationHidesDpiTargets) {
  // The attack-relevant property: after header-granularity obfuscation the
  // DPI target region reads differently (so a tuned comparator misses).
  // Invert guarantees it for any word; shuffle guarantees it whenever the
  // window is not rotation-symmetric (any realistic header).
  wire::HeaderFields h;
  h.dest = 0;
  h.src = 3;
  h.mem_addr = 0x40001000;  // realistic non-uniform header content
  const std::uint64_t w = wire::pack_header(h);
  for (const ObfMethod m : {ObfMethod::kInvert, ObfMethod::kShuffle}) {
    ObfuscationTag tag;
    tag.method = m;
    tag.granularity = ObfGranularity::kHeader;
    const std::uint64_t o = apply(w, tag);
    EXPECT_NE(extract_bits(o, 0, wire::kFullTargetWidth),
              extract_bits(w, 0, wire::kFullTargetWidth))
        << to_string(m) << " left the target region intact";
  }
  // Invert moves the dest field for every value, including dest = 0.
  ObfuscationTag inv;
  inv.method = ObfMethod::kInvert;
  inv.granularity = ObfGranularity::kHeader;
  EXPECT_NE(wire::unpack_header(apply(w, inv)).dest, h.dest);
}

TEST(Obfuscation, PayloadGranularityLeavesHeaderReadable) {
  wire::HeaderFields h;
  h.dest = 9;
  h.src = 2;
  h.mem_addr = 0x1234;
  const std::uint64_t w = wire::pack_header(h);
  ObfuscationTag tag;
  tag.method = ObfMethod::kInvert;
  tag.granularity = ObfGranularity::kPayload;
  const std::uint64_t o = apply(w, tag);
  EXPECT_EQ(wire::unpack_header(o).dest, h.dest);
  EXPECT_EQ(wire::unpack_header(o).src, h.src);
  EXPECT_EQ(wire::unpack_header(o).mem_addr, h.mem_addr);
}

TEST(Obfuscation, UndoPenaltiesMatchPaper) {
  // 1-3 cycle penalties (Sec. I / IV).
  EXPECT_EQ(undo_penalty_cycles(ObfMethod::kNone), 0);
  EXPECT_EQ(undo_penalty_cycles(ObfMethod::kInvert), 1);
  EXPECT_EQ(undo_penalty_cycles(ObfMethod::kShuffle), 1);
  EXPECT_GE(undo_penalty_cycles(ObfMethod::kScramble), 1);
}

TEST(Obfuscation, WindowsPartitionTheWireWord) {
  const Window header = window_of(ObfGranularity::kHeader);
  const Window payload = window_of(ObfGranularity::kPayload);
  const Window flit = window_of(ObfGranularity::kFlit);
  EXPECT_EQ(header.pos, 0u);
  EXPECT_EQ(header.pos + header.width, payload.pos);
  EXPECT_EQ(payload.pos + payload.width, 64u);
  EXPECT_EQ(flit.width, 64u);
}

}  // namespace
}  // namespace htnoc::obf
