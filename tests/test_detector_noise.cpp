// Threat-detector robustness under background transient noise: random
// faults must not be classified as trojans (false positives), and a real
// trojan must still be found amid the noise. This closes an evaluation gap
// the paper leaves implicit ("repetitive transient faults are unlikely").
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace htnoc {
namespace {

struct NoiseResult {
  int trojan_classifications = 0;
  int permanent_classifications = 0;
  int suspect_classifications = 0;
  std::uint64_t corrected = 0;
  std::uint64_t uncorrectable = 0;
  bool attacked_link_found = false;
};

NoiseResult run_noise(double fault_prob, bool with_trojan, Cycle horizon) {
  sim::SimConfig sc;
  sc.mode = sim::MitigationMode::kLOb;
  sc.transient_phit_fault_prob = fault_prob;
  if (with_trojan) {
    sim::AttackSpec a;
    a.link = {4, Direction::kNorth};
    a.tasp.kind = trojan::TargetKind::kDest;
    a.tasp.target_dest = 0;
    a.enable_killsw_at = 500;
    sc.attacks.push_back(a);
  }
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 23;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  for (Cycle c = 0; c < horizon; ++c) {
    gen.step();
    simulator.step();
  }

  NoiseResult res;
  for (RouterId r = 0; r < net.geometry().num_routers(); ++r) {
    const auto& det = simulator.detector(r);
    for (int port = 0; port < 4; ++port) {
      const auto cls = det.classification(port);
      const bool is_attacked_port =
          with_trojan && r == 0 && port == direction_port(Direction::kSouth);
      switch (cls) {
        case mitigation::LinkThreatClass::kTrojan:
          if (is_attacked_port) {
            res.attacked_link_found = true;
          } else {
            ++res.trojan_classifications;
          }
          break;
        case mitigation::LinkThreatClass::kPermanent:
          ++res.permanent_classifications;
          break;
        case mitigation::LinkThreatClass::kSuspect:
          ++res.suspect_classifications;
          break;
        default: break;
      }
      const auto stats = det.port_stats(port);
      res.corrected += stats.corrected;
      res.uncorrectable += stats.uncorrectable;
    }
  }
  return res;
}

TEST(DetectorNoise, RealisticTransientRateNoFalsePositives) {
  // 1e-4 per-phit fault rate is already far above realistic soft-error
  // rates; the detector must stay quiet.
  const NoiseResult r = run_noise(1e-4, false, 15000);
  EXPECT_GT(r.corrected + r.uncorrectable, 0u);  // noise actually flowed
  EXPECT_EQ(r.trojan_classifications, 0);
  EXPECT_EQ(r.permanent_classifications, 0);
}

TEST(DetectorNoise, HeavyTransientRateStillNoTrojanVerdicts) {
  // 1e-3: every ~1000th phit is struck. Repeat-faults on one flit require
  // consecutive strikes (p ~ 1e-6 per flit), so trojan verdicts must not
  // appear even here; isolated suspects are acceptable.
  const NoiseResult r = run_noise(1e-3, false, 15000);
  EXPECT_GT(r.corrected, 100u);
  EXPECT_EQ(r.trojan_classifications, 0);
  EXPECT_EQ(r.permanent_classifications, 0);
}

TEST(DetectorNoise, TrojanStillFoundAmidNoise) {
  const NoiseResult r = run_noise(1e-3, true, 8000);
  EXPECT_TRUE(r.attacked_link_found);
  EXPECT_EQ(r.trojan_classifications, 0);  // and only that link
}

TEST(DetectorNoise, MostTransientFaultsAreCorrectedInline) {
  // The ECC absorbs the overwhelming majority of transients without any
  // retransmission (the paper's premise for hiding among them).
  const NoiseResult r = run_noise(1e-3, false, 15000);
  EXPECT_GT(r.corrected, r.uncorrectable * 5);
}

}  // namespace
}  // namespace htnoc
