// Cross-mode determinism: the sweep engine must produce byte-identical
// results regardless of worker-thread count or schedule, and any single
// grid point must be exactly replayable from its RunSpec alone. These are
// the tests the TSan CI job runs to shake out data races in the engine.
#include <gtest/gtest.h>

#include "sweep/emit.hpp"
#include "sweep/runner.hpp"

namespace htnoc {
namespace {

sim::AttackSpec single_tasp(Cycle enable_at) {
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = enable_at;
  return a;
}

/// A grid that exercises attack + mitigation machinery, kept small enough
/// for the TSan job: 2 modes x 2 attacks x 2 replicates = 8 runs.
sweep::SweepSpec fixture_spec() {
  sweep::SweepSpec spec;
  spec.modes = {sim::MitigationMode::kNone, sim::MitigationMode::kLOb};
  spec.attack_scenarios = {{"none", {}}, {"single_tasp", {single_tasp(150)}}};
  spec.profiles = {"blackscholes"};
  spec.rate_scales = {1.0};
  spec.replicates = 2;
  spec.run_cycles = 400;
  spec.probe_period = 100;
  spec.base_seed = 0xD15EA5E;
  return spec;
}

void expect_samples_eq(const Network::UtilizationSample& a,
                       const Network::UtilizationSample& b) {
  EXPECT_EQ(a.cycle, b.cycle);
  EXPECT_EQ(a.input_port_flits, b.input_port_flits);
  EXPECT_EQ(a.output_port_flits, b.output_port_flits);
  EXPECT_EQ(a.injection_port_flits, b.injection_port_flits);
  EXPECT_EQ(a.routers_all_cores_full, b.routers_all_cores_full);
  EXPECT_EQ(a.routers_majority_cores_full, b.routers_majority_cores_full);
  EXPECT_EQ(a.routers_with_blocked_port, b.routers_with_blocked_port);
}

TEST(SweepDeterminism, ThreadCountDoesNotChangeResults) {
  const sweep::SweepSpec spec = fixture_spec();
  const auto r1 = sweep::SweepRunner({1}).run(spec);
  const auto r2 = sweep::SweepRunner({2}).run(spec);
  const auto r8 = sweep::SweepRunner({8}).run(spec);

  EXPECT_EQ(r1.threads_used, 1);
  EXPECT_EQ(r2.threads_used, 2);
  EXPECT_EQ(r8.threads_used, 8);
  EXPECT_EQ(r1.failures(), 0u);

  // The serialized document (per-run metrics + aggregates) is the
  // determinism contract: byte-identical across thread counts.
  const std::string j1 = sweep::to_json(r1);
  EXPECT_EQ(j1, sweep::to_json(r2));
  EXPECT_EQ(j1, sweep::to_json(r8));

  // The time series (not part of the JSON) must match too.
  ASSERT_EQ(r1.runs.size(), r8.runs.size());
  for (std::size_t i = 0; i < r1.runs.size(); ++i) {
    const auto& a = r1.runs[i];
    const auto& b = r8.runs[i];
    ASSERT_EQ(a.util_series.size(), b.util_series.size()) << a.spec.label();
    for (std::size_t k = 0; k < a.util_series.size(); ++k) {
      expect_samples_eq(a.util_series[k], b.util_series[k]);
    }
    ASSERT_EQ(a.throughput_series.size(), b.throughput_series.size());
    for (std::size_t k = 0; k < a.throughput_series.size(); ++k) {
      EXPECT_EQ(a.throughput_series[k].primary_delivered,
                b.throughput_series[k].primary_delivered);
    }
  }

  // Sanity: the attack grid points actually saw trojan activity, so the
  // byte-equality above compares non-trivial state.
  bool saw_injections = false;
  for (const auto& r : r1.runs) {
    if (r.trojan_injections > 0) saw_injections = true;
  }
  EXPECT_TRUE(saw_injections);
}

TEST(SweepDeterminism, CompletionModeThreadInvariance) {
  sweep::SweepSpec spec = fixture_spec();
  // Mitigated runs only: an unmitigated sustained trigger never completes
  // (that non-completion is itself regression-tested in test_matrix_sweep).
  spec.modes = {sim::MitigationMode::kLOb};
  spec.probe_period = 0;
  spec.total_requests = 150;  // run-to-completion termination
  spec.cycle_budget = 100000;
  const auto r1 = sweep::SweepRunner({1}).run(spec);
  const auto r4 = sweep::SweepRunner({4}).run(spec);
  EXPECT_EQ(sweep::to_json(r1), sweep::to_json(r4));
  for (const auto& r : r1.runs) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.completed) << r.spec.label();
  }
}

TEST(SweepDeterminism, SingleGridPointReplaysExactly) {
  const sweep::SweepSpec spec = fixture_spec();
  const auto swept = sweep::SweepRunner({8}).run(spec);

  for (const std::size_t idx : {std::size_t{2}, swept.runs.size() - 1}) {
    const auto& original = swept.runs[idx];
    ASSERT_TRUE(original.ok);
    // Replay from the RunSpec alone, in this thread, no pool involved.
    const auto replay = sweep::SweepRunner::run_single(spec, original.spec);

    EXPECT_EQ(replay.metrics(), original.metrics()) << original.spec.label();
    EXPECT_EQ(replay.cycles, original.cycles);
    EXPECT_EQ(replay.traffic.packets_delivered,
              original.traffic.packets_delivered);
    EXPECT_EQ(replay.traffic.latency_sum, original.traffic.latency_sum);
    EXPECT_EQ(replay.traffic.requests_generated,
              original.traffic.requests_generated);
    EXPECT_EQ(replay.trojan_injections, original.trojan_injections);
    EXPECT_EQ(replay.sim.links_disabled, original.sim.links_disabled);
    EXPECT_EQ(replay.sim.packets_purged, original.sim.packets_purged);
    expect_samples_eq(replay.final_util, original.final_util);
    ASSERT_EQ(replay.util_series.size(), original.util_series.size());
    for (std::size_t k = 0; k < replay.util_series.size(); ++k) {
      expect_samples_eq(replay.util_series[k], original.util_series[k]);
    }
  }
}

TEST(SweepDeterminism, SeedChangesResults) {
  // Guard against the seed being silently ignored: a different base_seed
  // must produce a different document.
  sweep::SweepSpec a = fixture_spec();
  sweep::SweepSpec b = fixture_spec();
  b.base_seed = a.base_seed + 1;
  const auto ra = sweep::SweepRunner({2}).run(a);
  const auto rb = sweep::SweepRunner({2}).run(b);
  EXPECT_NE(sweep::to_json(ra), sweep::to_json(rb));
}

}  // namespace
}  // namespace htnoc
