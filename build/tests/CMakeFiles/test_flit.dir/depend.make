# Empty dependencies file for test_flit.
# This may be replaced when dependencies are built.
