file(REMOVE_RECURSE
  "CMakeFiles/test_flit.dir/test_flit.cpp.o"
  "CMakeFiles/test_flit.dir/test_flit.cpp.o.d"
  "test_flit"
  "test_flit.pdb"
  "test_flit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
