# Empty dependencies file for test_threat_detector.
# This may be replaced when dependencies are built.
