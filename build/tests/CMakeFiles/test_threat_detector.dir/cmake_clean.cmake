file(REMOVE_RECURSE
  "CMakeFiles/test_threat_detector.dir/test_threat_detector.cpp.o"
  "CMakeFiles/test_threat_detector.dir/test_threat_detector.cpp.o.d"
  "test_threat_detector"
  "test_threat_detector.pdb"
  "test_threat_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threat_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
