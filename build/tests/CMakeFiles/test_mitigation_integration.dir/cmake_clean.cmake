file(REMOVE_RECURSE
  "CMakeFiles/test_mitigation_integration.dir/test_mitigation_integration.cpp.o"
  "CMakeFiles/test_mitigation_integration.dir/test_mitigation_integration.cpp.o.d"
  "test_mitigation_integration"
  "test_mitigation_integration.pdb"
  "test_mitigation_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mitigation_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
