# Empty dependencies file for test_retrans_scheme.
# This may be replaced when dependencies are built.
