file(REMOVE_RECURSE
  "CMakeFiles/test_retrans_scheme.dir/test_retrans_scheme.cpp.o"
  "CMakeFiles/test_retrans_scheme.dir/test_retrans_scheme.cpp.o.d"
  "test_retrans_scheme"
  "test_retrans_scheme.pdb"
  "test_retrans_scheme[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retrans_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
