file(REMOVE_RECURSE
  "CMakeFiles/test_latency_auditor.dir/test_latency_auditor.cpp.o"
  "CMakeFiles/test_latency_auditor.dir/test_latency_auditor.cpp.o.d"
  "test_latency_auditor"
  "test_latency_auditor.pdb"
  "test_latency_auditor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_latency_auditor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
