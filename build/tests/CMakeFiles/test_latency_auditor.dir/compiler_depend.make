# Empty compiler generated dependencies file for test_latency_auditor.
# This may be replaced when dependencies are built.
