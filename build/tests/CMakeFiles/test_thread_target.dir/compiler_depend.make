# Empty compiler generated dependencies file for test_thread_target.
# This may be replaced when dependencies are built.
