file(REMOVE_RECURSE
  "CMakeFiles/test_thread_target.dir/test_thread_target.cpp.o"
  "CMakeFiles/test_thread_target.dir/test_thread_target.cpp.o.d"
  "test_thread_target"
  "test_thread_target.pdb"
  "test_thread_target[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thread_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
