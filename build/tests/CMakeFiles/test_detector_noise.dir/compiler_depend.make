# Empty compiler generated dependencies file for test_detector_noise.
# This may be replaced when dependencies are built.
