file(REMOVE_RECURSE
  "CMakeFiles/test_detector_noise.dir/test_detector_noise.cpp.o"
  "CMakeFiles/test_detector_noise.dir/test_detector_noise.cpp.o.d"
  "test_detector_noise"
  "test_detector_noise.pdb"
  "test_detector_noise[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detector_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
