file(REMOVE_RECURSE
  "CMakeFiles/test_input_unit.dir/test_input_unit.cpp.o"
  "CMakeFiles/test_input_unit.dir/test_input_unit.cpp.o.d"
  "test_input_unit"
  "test_input_unit.pdb"
  "test_input_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_input_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
