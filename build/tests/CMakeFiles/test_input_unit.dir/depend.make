# Empty dependencies file for test_input_unit.
# This may be replaced when dependencies are built.
