# Empty dependencies file for test_tdm.
# This may be replaced when dependencies are built.
