file(REMOVE_RECURSE
  "CMakeFiles/test_lob.dir/test_lob.cpp.o"
  "CMakeFiles/test_lob.dir/test_lob.cpp.o.d"
  "test_lob"
  "test_lob.pdb"
  "test_lob[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
