# Empty compiler generated dependencies file for test_lob.
# This may be replaced when dependencies are built.
