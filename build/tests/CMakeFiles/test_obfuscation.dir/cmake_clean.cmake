file(REMOVE_RECURSE
  "CMakeFiles/test_obfuscation.dir/test_obfuscation.cpp.o"
  "CMakeFiles/test_obfuscation.dir/test_obfuscation.cpp.o.d"
  "test_obfuscation"
  "test_obfuscation.pdb"
  "test_obfuscation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obfuscation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
