# Empty dependencies file for test_obfuscation.
# This may be replaced when dependencies are built.
