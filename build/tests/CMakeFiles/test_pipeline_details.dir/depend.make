# Empty dependencies file for test_pipeline_details.
# This may be replaced when dependencies are built.
