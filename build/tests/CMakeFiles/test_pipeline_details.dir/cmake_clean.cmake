file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_details.dir/test_pipeline_details.cpp.o"
  "CMakeFiles/test_pipeline_details.dir/test_pipeline_details.cpp.o.d"
  "test_pipeline_details"
  "test_pipeline_details.pdb"
  "test_pipeline_details[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
