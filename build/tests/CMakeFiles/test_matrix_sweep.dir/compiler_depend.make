# Empty compiler generated dependencies file for test_matrix_sweep.
# This may be replaced when dependencies are built.
