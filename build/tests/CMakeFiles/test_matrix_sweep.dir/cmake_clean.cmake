file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_sweep.dir/test_matrix_sweep.cpp.o"
  "CMakeFiles/test_matrix_sweep.dir/test_matrix_sweep.cpp.o.d"
  "test_matrix_sweep"
  "test_matrix_sweep.pdb"
  "test_matrix_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
