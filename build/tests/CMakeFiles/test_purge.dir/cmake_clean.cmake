file(REMOVE_RECURSE
  "CMakeFiles/test_purge.dir/test_purge.cpp.o"
  "CMakeFiles/test_purge.dir/test_purge.cpp.o.d"
  "test_purge"
  "test_purge.pdb"
  "test_purge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_purge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
