# Empty dependencies file for test_purge.
# This may be replaced when dependencies are built.
