file(REMOVE_RECURSE
  "CMakeFiles/test_tasp.dir/test_tasp.cpp.o"
  "CMakeFiles/test_tasp.dir/test_tasp.cpp.o.d"
  "test_tasp"
  "test_tasp.pdb"
  "test_tasp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tasp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
