# Empty dependencies file for test_tasp.
# This may be replaced when dependencies are built.
