file(REMOVE_RECURSE
  "CMakeFiles/test_ni.dir/test_ni.cpp.o"
  "CMakeFiles/test_ni.dir/test_ni.cpp.o.d"
  "test_ni"
  "test_ni.pdb"
  "test_ni[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
