# Empty dependencies file for test_ni.
# This may be replaced when dependencies are built.
