# Empty dependencies file for bench_fig12_tdm_vs_lob.
# This may be replaced when dependencies are built.
