file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_tdm_vs_lob.dir/bench_fig12_tdm_vs_lob.cpp.o"
  "CMakeFiles/bench_fig12_tdm_vs_lob.dir/bench_fig12_tdm_vs_lob.cpp.o.d"
  "bench_fig12_tdm_vs_lob"
  "bench_fig12_tdm_vs_lob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_tdm_vs_lob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
