file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_fig9_tasp_overhead.dir/bench_tab1_fig9_tasp_overhead.cpp.o"
  "CMakeFiles/bench_tab1_fig9_tasp_overhead.dir/bench_tab1_fig9_tasp_overhead.cpp.o.d"
  "bench_tab1_fig9_tasp_overhead"
  "bench_tab1_fig9_tasp_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_fig9_tasp_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
