# Empty compiler generated dependencies file for bench_tab1_fig9_tasp_overhead.
# This may be replaced when dependencies are built.
