# Empty compiler generated dependencies file for bench_tab2_mitigation_overhead.
# This may be replaced when dependencies are built.
