file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_mitigation_overhead.dir/bench_tab2_mitigation_overhead.cpp.o"
  "CMakeFiles/bench_tab2_mitigation_overhead.dir/bench_tab2_mitigation_overhead.cpp.o.d"
  "bench_tab2_mitigation_overhead"
  "bench_tab2_mitigation_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_mitigation_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
