# Empty dependencies file for bench_fig8_power_pies.
# This may be replaced when dependencies are built.
