file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_power_pies.dir/bench_fig8_power_pies.cpp.o"
  "CMakeFiles/bench_fig8_power_pies.dir/bench_fig8_power_pies.cpp.o.d"
  "bench_fig8_power_pies"
  "bench_fig8_power_pies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_power_pies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
