# Empty compiler generated dependencies file for bench_attack_potency.
# This may be replaced when dependencies are built.
