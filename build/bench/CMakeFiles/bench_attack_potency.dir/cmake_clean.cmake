file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_potency.dir/bench_attack_potency.cpp.o"
  "CMakeFiles/bench_attack_potency.dir/bench_attack_potency.cpp.o.d"
  "bench_attack_potency"
  "bench_attack_potency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_potency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
