file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_dos_progression.dir/bench_fig11_dos_progression.cpp.o"
  "CMakeFiles/bench_fig11_dos_progression.dir/bench_fig11_dos_progression.cpp.o.d"
  "bench_fig11_dos_progression"
  "bench_fig11_dos_progression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_dos_progression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
