# Empty compiler generated dependencies file for bench_fig11_dos_progression.
# This may be replaced when dependencies are built.
