# Empty dependencies file for htnoc_sim.
# This may be replaced when dependencies are built.
