file(REMOVE_RECURSE
  "libhtnoc_sim.a"
)
