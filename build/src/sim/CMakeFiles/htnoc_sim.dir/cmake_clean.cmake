file(REMOVE_RECURSE
  "CMakeFiles/htnoc_sim.dir/simulator.cpp.o"
  "CMakeFiles/htnoc_sim.dir/simulator.cpp.o.d"
  "libhtnoc_sim.a"
  "libhtnoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htnoc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
