# Empty dependencies file for htnoc_ecc.
# This may be replaced when dependencies are built.
