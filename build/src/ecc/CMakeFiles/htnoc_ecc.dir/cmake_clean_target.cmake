file(REMOVE_RECURSE
  "libhtnoc_ecc.a"
)
