file(REMOVE_RECURSE
  "CMakeFiles/htnoc_ecc.dir/codec.cpp.o"
  "CMakeFiles/htnoc_ecc.dir/codec.cpp.o.d"
  "CMakeFiles/htnoc_ecc.dir/secded.cpp.o"
  "CMakeFiles/htnoc_ecc.dir/secded.cpp.o.d"
  "libhtnoc_ecc.a"
  "libhtnoc_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htnoc_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
