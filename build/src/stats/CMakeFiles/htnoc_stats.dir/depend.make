# Empty dependencies file for htnoc_stats.
# This may be replaced when dependencies are built.
