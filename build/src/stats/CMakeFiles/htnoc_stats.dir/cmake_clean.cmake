file(REMOVE_RECURSE
  "CMakeFiles/htnoc_stats.dir/stats.cpp.o"
  "CMakeFiles/htnoc_stats.dir/stats.cpp.o.d"
  "libhtnoc_stats.a"
  "libhtnoc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htnoc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
