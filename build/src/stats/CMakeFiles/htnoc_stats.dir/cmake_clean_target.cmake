file(REMOVE_RECURSE
  "libhtnoc_stats.a"
)
