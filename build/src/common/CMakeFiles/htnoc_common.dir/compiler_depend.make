# Empty compiler generated dependencies file for htnoc_common.
# This may be replaced when dependencies are built.
