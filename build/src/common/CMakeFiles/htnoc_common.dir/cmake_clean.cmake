file(REMOVE_RECURSE
  "CMakeFiles/htnoc_common.dir/bits.cpp.o"
  "CMakeFiles/htnoc_common.dir/bits.cpp.o.d"
  "CMakeFiles/htnoc_common.dir/config.cpp.o"
  "CMakeFiles/htnoc_common.dir/config.cpp.o.d"
  "CMakeFiles/htnoc_common.dir/log.cpp.o"
  "CMakeFiles/htnoc_common.dir/log.cpp.o.d"
  "CMakeFiles/htnoc_common.dir/types.cpp.o"
  "CMakeFiles/htnoc_common.dir/types.cpp.o.d"
  "libhtnoc_common.a"
  "libhtnoc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htnoc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
