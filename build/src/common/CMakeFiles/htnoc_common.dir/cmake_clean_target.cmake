file(REMOVE_RECURSE
  "libhtnoc_common.a"
)
