file(REMOVE_RECURSE
  "libhtnoc_power.a"
)
