file(REMOVE_RECURSE
  "CMakeFiles/htnoc_power.dir/blocks.cpp.o"
  "CMakeFiles/htnoc_power.dir/blocks.cpp.o.d"
  "CMakeFiles/htnoc_power.dir/energy.cpp.o"
  "CMakeFiles/htnoc_power.dir/energy.cpp.o.d"
  "libhtnoc_power.a"
  "libhtnoc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htnoc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
