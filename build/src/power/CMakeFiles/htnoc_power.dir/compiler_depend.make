# Empty compiler generated dependencies file for htnoc_power.
# This may be replaced when dependencies are built.
