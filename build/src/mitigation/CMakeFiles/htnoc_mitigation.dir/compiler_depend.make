# Empty compiler generated dependencies file for htnoc_mitigation.
# This may be replaced when dependencies are built.
