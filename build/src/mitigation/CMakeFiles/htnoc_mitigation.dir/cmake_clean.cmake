file(REMOVE_RECURSE
  "CMakeFiles/htnoc_mitigation.dir/lob.cpp.o"
  "CMakeFiles/htnoc_mitigation.dir/lob.cpp.o.d"
  "CMakeFiles/htnoc_mitigation.dir/threat_detector.cpp.o"
  "CMakeFiles/htnoc_mitigation.dir/threat_detector.cpp.o.d"
  "libhtnoc_mitigation.a"
  "libhtnoc_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htnoc_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
