# Empty dependencies file for htnoc_mitigation.
# This may be replaced when dependencies are built.
