file(REMOVE_RECURSE
  "libhtnoc_mitigation.a"
)
