file(REMOVE_RECURSE
  "libhtnoc_traffic.a"
)
