file(REMOVE_RECURSE
  "CMakeFiles/htnoc_traffic.dir/app_profile.cpp.o"
  "CMakeFiles/htnoc_traffic.dir/app_profile.cpp.o.d"
  "CMakeFiles/htnoc_traffic.dir/generator.cpp.o"
  "CMakeFiles/htnoc_traffic.dir/generator.cpp.o.d"
  "CMakeFiles/htnoc_traffic.dir/trace.cpp.o"
  "CMakeFiles/htnoc_traffic.dir/trace.cpp.o.d"
  "libhtnoc_traffic.a"
  "libhtnoc_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htnoc_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
