# Empty dependencies file for htnoc_traffic.
# This may be replaced when dependencies are built.
