
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/app_profile.cpp" "src/traffic/CMakeFiles/htnoc_traffic.dir/app_profile.cpp.o" "gcc" "src/traffic/CMakeFiles/htnoc_traffic.dir/app_profile.cpp.o.d"
  "/root/repo/src/traffic/generator.cpp" "src/traffic/CMakeFiles/htnoc_traffic.dir/generator.cpp.o" "gcc" "src/traffic/CMakeFiles/htnoc_traffic.dir/generator.cpp.o.d"
  "/root/repo/src/traffic/trace.cpp" "src/traffic/CMakeFiles/htnoc_traffic.dir/trace.cpp.o" "gcc" "src/traffic/CMakeFiles/htnoc_traffic.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/htnoc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/htnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/htnoc_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
