file(REMOVE_RECURSE
  "libhtnoc_trojan.a"
)
