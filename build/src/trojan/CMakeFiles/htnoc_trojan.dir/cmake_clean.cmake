file(REMOVE_RECURSE
  "CMakeFiles/htnoc_trojan.dir/tasp.cpp.o"
  "CMakeFiles/htnoc_trojan.dir/tasp.cpp.o.d"
  "libhtnoc_trojan.a"
  "libhtnoc_trojan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htnoc_trojan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
