# Empty dependencies file for htnoc_trojan.
# This may be replaced when dependencies are built.
