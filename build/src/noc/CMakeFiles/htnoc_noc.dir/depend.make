# Empty dependencies file for htnoc_noc.
# This may be replaced when dependencies are built.
