file(REMOVE_RECURSE
  "CMakeFiles/htnoc_noc.dir/flit.cpp.o"
  "CMakeFiles/htnoc_noc.dir/flit.cpp.o.d"
  "CMakeFiles/htnoc_noc.dir/input_unit.cpp.o"
  "CMakeFiles/htnoc_noc.dir/input_unit.cpp.o.d"
  "CMakeFiles/htnoc_noc.dir/network.cpp.o"
  "CMakeFiles/htnoc_noc.dir/network.cpp.o.d"
  "CMakeFiles/htnoc_noc.dir/ni.cpp.o"
  "CMakeFiles/htnoc_noc.dir/ni.cpp.o.d"
  "CMakeFiles/htnoc_noc.dir/output_unit.cpp.o"
  "CMakeFiles/htnoc_noc.dir/output_unit.cpp.o.d"
  "CMakeFiles/htnoc_noc.dir/router.cpp.o"
  "CMakeFiles/htnoc_noc.dir/router.cpp.o.d"
  "CMakeFiles/htnoc_noc.dir/updown.cpp.o"
  "CMakeFiles/htnoc_noc.dir/updown.cpp.o.d"
  "libhtnoc_noc.a"
  "libhtnoc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htnoc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
