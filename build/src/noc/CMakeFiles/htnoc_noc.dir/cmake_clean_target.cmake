file(REMOVE_RECURSE
  "libhtnoc_noc.a"
)
