
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/flit.cpp" "src/noc/CMakeFiles/htnoc_noc.dir/flit.cpp.o" "gcc" "src/noc/CMakeFiles/htnoc_noc.dir/flit.cpp.o.d"
  "/root/repo/src/noc/input_unit.cpp" "src/noc/CMakeFiles/htnoc_noc.dir/input_unit.cpp.o" "gcc" "src/noc/CMakeFiles/htnoc_noc.dir/input_unit.cpp.o.d"
  "/root/repo/src/noc/network.cpp" "src/noc/CMakeFiles/htnoc_noc.dir/network.cpp.o" "gcc" "src/noc/CMakeFiles/htnoc_noc.dir/network.cpp.o.d"
  "/root/repo/src/noc/ni.cpp" "src/noc/CMakeFiles/htnoc_noc.dir/ni.cpp.o" "gcc" "src/noc/CMakeFiles/htnoc_noc.dir/ni.cpp.o.d"
  "/root/repo/src/noc/output_unit.cpp" "src/noc/CMakeFiles/htnoc_noc.dir/output_unit.cpp.o" "gcc" "src/noc/CMakeFiles/htnoc_noc.dir/output_unit.cpp.o.d"
  "/root/repo/src/noc/router.cpp" "src/noc/CMakeFiles/htnoc_noc.dir/router.cpp.o" "gcc" "src/noc/CMakeFiles/htnoc_noc.dir/router.cpp.o.d"
  "/root/repo/src/noc/updown.cpp" "src/noc/CMakeFiles/htnoc_noc.dir/updown.cpp.o" "gcc" "src/noc/CMakeFiles/htnoc_noc.dir/updown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/htnoc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/htnoc_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
