// Demonstration of the paper's headline result: a single light-weight TASP
// hardware trojan, implanted on one link and woken by its external kill
// switch, deadlocks most of a 64-core chip within ~1500 cycles.
//
//   $ ./dos_attack_demo
//
// The demo narrates the attack phase by phase: dormant trojan, target
// acquisition, fault injection, back-pressure build-up and chip-wide
// injection deadlock.
#include <cstdio>

#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

int main() {
  using namespace htnoc;

  // The trojan sits on the column-0 northbound link into router 0 — the
  // funnel for all x-y traffic from rows 1-3 toward the application's
  // primary core — and is tuned to destination router 0 (a 4-bit
  // comparator, ~33 um2, invisible to BIST while the kill switch guards it).
  sim::SimConfig sc;
  sim::AttackSpec attack;
  attack.link = {4, Direction::kNorth};
  attack.tasp.kind = trojan::TargetKind::kDest;
  attack.tasp.target_dest = 0;
  attack.enable_killsw_at = 1500;
  sc.attacks.push_back(attack);
  sc.mode = sim::MitigationMode::kNone;  // the paper's Fig. 11(a) setting

  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();

  traffic::DeliveryDispatcher dispatcher;
  dispatcher.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params params;
  params.seed = 7;
  traffic::TrafficGenerator gen(net, model, params, dispatcher);

  std::printf("phase 1: trojan dormant (kill switch off), network warms up\n");
  std::uint64_t delivered_prev = 0;
  const auto report = [&](const char* tag) {
    const auto u = net.sample_utilization();
    const std::uint64_t delivered = gen.stats().packets_delivered;
    std::printf(
        "  [%5llu] %-22s throughput=%4llu pkts/500cyc  input_buf=%3d  "
        "blocked_routers=%2d/16  cores_deadlocked=%2d/16  trojan_hits=%llu\n",
        static_cast<unsigned long long>(net.now()), tag,
        static_cast<unsigned long long>(delivered - delivered_prev),
        u.input_port_flits, u.routers_with_blocked_port,
        u.routers_all_cores_full,
        static_cast<unsigned long long>(simulator.tasp(0).stats().injections));
    delivered_prev = delivered;
  };

  for (int window = 0; window < 3; ++window) {
    for (int i = 0; i < 500; ++i) {
      gen.step();
      simulator.step();
    }
    report("healthy");
  }

  std::printf("phase 2: kill switch thrown — the trojan scans link wires for "
              "dest=0 headers and flips 2 bits per sighting (SECDED detects, "
              "cannot correct, NACKs forever)\n");
  for (int window = 0; window < 4; ++window) {
    for (int i = 0; i < 500; ++i) {
      gen.step();
      simulator.step();
    }
    report(window == 0 ? "attack begins" : "back-pressure grows");
  }

  std::printf("phase 3: steady-state denial of service\n");
  for (int window = 0; window < 2; ++window) {
    for (int i = 0; i < 500; ++i) {
      gen.step();
      simulator.step();
    }
    report("deadlocked");
  }

  const auto u = net.sample_utilization();
  std::printf(
      "\nresult: %d/16 routers have a completely blocked port and %d/16 "
      "routers' injection ports are refusing work — a single %u-bit "
      "comparator took down the chip.\n",
      u.routers_with_blocked_port, u.routers_all_cores_full,
      trojan::target_width(trojan::TargetKind::kDest));
  std::printf("run ./mitigation_comparison to see the paper's defenses.\n");
  return 0;
}
