// htnoc_serverd — the simulation-as-a-service daemon. Accepts sweep and
// campaign specs as JSON over HTTP, runs them on a core-budgeted job queue
// and serves results through an Envoy-style admin surface (docs/SERVER.md).
//
//   htnoc_serverd --port 8080 --cores 8 --sink stdout --sink file:ops.jsonl
//
//   curl -d @examples/specs/sweep_smoke.json \
//        -H 'Content-Type: application/json' localhost:8080/runs
//   curl localhost:8080/runs/1/summary.csv
//
// SIGTERM / SIGINT (and POST /quitquitquit) drain gracefully: new
// submissions are refused, every accepted job finishes and publishes its
// whole artifact set, then the process exits 0.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "server/server.hpp"

namespace {

volatile std::sig_atomic_t g_shutdown_requested = 0;

void handle_signal(int) {
  // Async-signal-safe: just note the request; the watcher thread drains.
  g_shutdown_requested = 1;
}

void usage() {
  std::printf(
      "usage: htnoc_serverd [options]\n"
      "  --port N        listen port (default 0: kernel-assigned; the\n"
      "                  bound port is printed on startup)\n"
      "  --cores N       core budget for job admission (default:\n"
      "                  hardware concurrency); a job costs\n"
      "                  jobs x step_threads cores (docs/SCALING.md)\n"
      "  --sink S        add a streaming stat sink: stdout or file:<path>\n"
      "                  (repeatable; default: none)\n"
      "  --http-workers N  connection worker threads (default 4)\n"
      "  --state-dir D   persist job specs, events and artifacts under D\n"
      "                  and recover them on restart (default: in-memory\n"
      "                  only; see docs/SERVER.md)\n"
      "  --help          this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace htnoc::server;

  Server::Options opts;
  SinkSet sinks;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--port") {
        opts.port = std::stoi(value());
      } else if (arg == "--cores") {
        opts.core_budget = std::stoi(value());
      } else if (arg == "--sink") {
        sinks.add(make_sink(value()));
      } else if (arg == "--http-workers") {
        opts.http_workers = std::stoi(value());
      } else if (arg == "--state-dir") {
        opts.state_dir = value();
      } else {
        throw std::runtime_error("unknown option: " + arg);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "htnoc_serverd: %s\n", e.what());
    usage();
    return 2;
  }

  try {
    Server server(opts, &sinks);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    // The port line goes to stderr unbuffered so wrappers (the CI smoke
    // job, the tests) can scrape it even when stdout is a sink pipe.
    std::fprintf(stderr, "[serverd] listening on 127.0.0.1:%d\n",
                 server.port());
    std::fflush(stderr);

    // Park until a signal or POST /quitquitquit stops the server. The
    // signal flag is polled so the handler stays async-signal-safe.
    std::thread watcher([&server] {
      while (g_shutdown_requested == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      server.shutdown();
    });
    server.wait();
    g_shutdown_requested = 1;  // stopped via /quitquitquit: unpark watcher
    watcher.join();
    std::fprintf(stderr, "[serverd] drained, exiting\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "htnoc_serverd: %s\n", e.what());
    return 1;
  }
}
