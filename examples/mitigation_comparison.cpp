// Side-by-side comparison of the defenses against the same TASP attack:
//   none      — the Fig. 11(a) collapse,
//   L-Ob      — threat detector + switch-to-switch obfuscation (Fig. 12b),
//   reroute   — Ariadne-style link disable + up*/down* reconfiguration.
//
//   $ ./mitigation_comparison
#include <cstdio>

#include "power/energy.hpp"
#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace {

using namespace htnoc;

struct Outcome {
  bool completed = false;
  Cycle cycles = 0;
  double avg_latency = 0.0;
  std::uint64_t trojan_hits = 0;
  std::uint64_t obfuscation_successes = 0;
  int links_disabled = 0;
  power::EnergyReport energy;
};

Outcome run(sim::MitigationMode mode) {
  sim::SimConfig sc;
  sc.mode = mode;
  sim::AttackSpec attack;
  attack.link = {4, Direction::kNorth};
  attack.tasp.kind = trojan::TargetKind::kDest;
  attack.tasp.target_dest = 0;
  attack.enable_killsw_at = 1000;
  sc.attacks.push_back(attack);

  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher dispatcher;
  dispatcher.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params params;
  params.seed = 11;
  params.total_requests = 2000;
  traffic::TrafficGenerator gen(net, model, params, dispatcher);
  simulator.set_drop_callback([&](PacketId id) { gen.requeue(id); });

  Outcome out;
  while (!gen.done() && out.cycles < 150000) {
    gen.step();
    simulator.step();
    ++out.cycles;
  }
  out.completed = gen.done();
  out.avg_latency = gen.stats().avg_latency();
  out.trojan_hits = simulator.tasp(0).stats().injections;
  out.links_disabled = simulator.stats().links_disabled;
  if (mode == sim::MitigationMode::kLOb) {
    out.obfuscation_successes =
        simulator.lob(4, direction_port(Direction::kNorth)).stats().successes;
  }
  out.energy = power::account_energy(net);
  return out;
}

}  // namespace

int main() {
  using namespace htnoc;
  std::printf("running the same 2000-packet Blackscholes workload against a "
              "single TASP trojan under three policies...\n\n");
  std::printf("%-10s %-10s %-12s %-10s %-12s %-10s %-10s %-12s\n", "policy",
              "completed", "cycles", "avg_lat", "trojan_hits", "lob_wins",
              "links_off", "nJ(retx)");
  for (const auto mode :
       {sim::MitigationMode::kNone, sim::MitigationMode::kLOb,
        sim::MitigationMode::kReroute}) {
    const Outcome o = run(mode);
    char cycles[24];
    if (o.completed) {
      std::snprintf(cycles, sizeof cycles, "%llu",
                    static_cast<unsigned long long>(o.cycles));
    } else {
      std::snprintf(cycles, sizeof cycles, ">150000");
    }
    std::printf("%-10s %-10s %-12s %-10.1f %-12llu %-10llu %-10d %-12.1f\n",
                to_string(mode).c_str(), o.completed ? "yes" : "NO", cycles,
                o.avg_latency,
                static_cast<unsigned long long>(o.trojan_hits),
                static_cast<unsigned long long>(o.obfuscation_successes),
                o.links_disabled, o.energy.retransmission_pj / 1000.0);
  }
  std::printf(
      "\nreading: without mitigation the workload never finishes (the DoS); "
      "L-Ob finishes with small latency cost by obfuscating past the "
      "trojan; rerouting also finishes but gives up the link (and pays "
      "detour congestion as more links get infected — see "
      "bench_fig10_speedup).\n");
  return 0;
}
