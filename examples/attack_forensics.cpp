// attack_forensics — the paper's Fig. 11 DoS cascade, captured by the event
// tracer and reconstructed as an attack-forensics timeline.
//
//   $ ./attack_forensics [out_dir]
//
// Runs the single-TASP, no-mitigation scenario (warm-up, kill switch at
// cycle 1500, saturation by ~3000), then:
//   * prints the forensic timeline (trigger -> first uncorrectable NACK ->
//     saturation wavefront) to stdout,
//   * writes attack_forensics.trace.json (Chrome trace-event format; load
//     it in Perfetto or chrome://tracing), .trace.bin and .trace.csv into
//     out_dir (default "."),
//   * cross-checks the wavefront against the UtilizationProbe time-series —
//     the trace and the probe observe the same network, so the blocked-
//     router counts must agree exactly.
//
// Exit code is non-zero when the cross-check fails.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/simulator.hpp"
#include "stats/stats.hpp"
#include "trace/export.hpp"
#include "trace/forensics.hpp"
#include "traffic/generator.hpp"

int main(int argc, char** argv) {
  using namespace htnoc;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  if (!trace::kCompiledIn) {
    std::fprintf(stderr,
                 "attack_forensics: built with HTNOC_TRACE=0, nothing to "
                 "capture\n");
    return 0;
  }

  // Fig. 11 setup: one dest-0 TASP on the column-0 feeder link, no
  // mitigation, kill switch thrown after a 1500-cycle warm-up.
  sim::SimConfig sc;
  sim::AttackSpec attack;
  attack.link = {4, Direction::kNorth};
  attack.tasp.kind = trojan::TargetKind::kDest;
  attack.tasp.target_dest = 0;
  attack.enable_killsw_at = 1500;
  sc.attacks.push_back(attack);
  sc.mode = sim::MitigationMode::kNone;
  sc.trace.enabled = true;
  sc.trace.capacity = std::size_t{1} << 20;  // keep the whole run

  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();

  traffic::DeliveryDispatcher dispatcher;
  dispatcher.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params params;
  params.seed = 7;
  traffic::TrafficGenerator gen(net, model, params, dispatcher);

  stats::UtilizationProbe probe(50);
  for (int i = 0; i < 3000; ++i) {
    gen.step();
    simulator.step();
    probe.maybe_sample(net);
  }

  const trace::TraceLog log = simulator.trace_sink()->log();
  const trace::ForensicReport report = trace::analyze(log);

  std::ofstream json(out_dir + "/attack_forensics.trace.json");
  trace::write_chrome_json(json, log);
  std::ofstream bin(out_dir + "/attack_forensics.trace.bin",
                    std::ios::binary);
  trace::write_binary(bin, log);
  std::ofstream csv(out_dir + "/attack_forensics.trace.csv");
  trace::write_csv(csv, log);

  std::ofstream timeline(out_dir + "/attack_forensics.timeline.txt");
  trace::print_timeline(timeline, log, report);

  std::printf("wrote %s/attack_forensics.trace.{json,bin,csv} and "
              ".timeline.txt\n\n",
              out_dir.c_str());
  std::ostringstream to_stdout;
  trace::print_timeline(to_stdout, log, report);
  std::fputs(to_stdout.str().c_str(), stdout);

  // Cross-check: the trace's view of the final blocked-router set must
  // match the utilization probe's independent measurement.
  const auto final_util = net.sample_utilization();
  std::printf("\ncross-check vs UtilizationProbe:\n");
  std::printf("  trace blocked-at-end routers: %zu, probe: %d\n",
              report.routers_blocked_at_end,
              final_util.routers_with_blocked_port);
  std::printf("  trace deadlocked cores: %zu, probe all-cores-full "
              "routers: %d\n",
              report.cores_blocked_at_end, final_util.routers_all_cores_full);
  if (report.routers_blocked_at_end !=
      static_cast<std::size_t>(final_util.routers_with_blocked_port)) {
    std::fprintf(stderr,
                 "MISMATCH: trace and probe disagree on blocked routers\n");
    return 1;
  }
  std::printf("  agreement: OK\n");
  return 0;
}
