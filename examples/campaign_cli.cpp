// campaign_cli — run the randomized fault campaign (invariant auditor armed
// on every scenario) or deterministically replay one failing scenario from
// its repro spec.
//
//   campaign_cli --scenarios 10000 --seed 0x20260806 --jobs 8
//                --summary-md summary.md --repro-dir repros/
//   campaign_cli --repro "htnoc-campaign-repro seed=0x20260806 index=421"
//   campaign_cli --repro repros/repro-421.txt
//
// Exit status: 0 when every scenario passed, 1 on any failure (or a failing
// replay), 2 on usage errors.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "verify/campaign.hpp"
#include "verify/campaign_json.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: campaign_cli [--spec FILE.json]\n"
         "                    [--scenarios N] [--seed S] [--jobs N]\n"
         "                    [--audit-period N] [--topologies LIST]\n"
         "                    [--summary-md FILE]\n"
         "                    [--repro-dir DIR] [--quiet]\n"
         "       campaign_cli --repro SPEC-OR-FILE\n"
         "--spec loads the JSON campaign spec the htnoc_serverd daemon\n"
         "accepts (docs/SERVER.md); other flags override on top of it.\n";
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot read spec file: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Accept either a literal repro line or the path of a file whose first
/// matching line is one.
std::optional<htnoc::verify::ReproSpec> resolve_repro(const std::string& arg) {
  if (auto r = htnoc::verify::parse_repro(arg)) return r;
  std::ifstream in(arg);
  std::string line;
  while (in && std::getline(in, line)) {
    if (auto r = htnoc::verify::parse_repro(line)) return r;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  using htnoc::verify::CampaignResult;
  using htnoc::verify::CampaignSpec;
  using htnoc::verify::FaultCampaign;
  using htnoc::verify::ScenarioResult;

  CampaignSpec spec;
  spec.seed = 0x5EED;
  spec.scenarios = 1000;
  std::string summary_md;
  std::string repro_dir;
  std::string repro_arg;
  bool quiet = false;

  // --spec loads first (wherever it appears): identical input bytes mean
  // identical runs here and in the daemon, and later flags override.
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--spec") {
      try {
        spec = htnoc::verify::parse_campaign_spec(read_file(argv[i + 1]));
      } catch (const std::exception& e) {
        std::cerr << "campaign_cli: " << e.what() << "\n";
        return 2;
      }
      break;
    }
  }

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--spec") {
      (void)value();  // consumed by the first pass
    } else if (a == "--scenarios") {
      spec.scenarios = std::stoull(value(), nullptr, 0);
    } else if (a == "--seed") {
      spec.seed = std::stoull(value(), nullptr, 0);
    } else if (a == "--jobs") {
      spec.threads = std::stoi(value());
    } else if (a == "--audit-period") {
      spec.audit.period = std::stoull(value(), nullptr, 0);
    } else if (a == "--topologies") {
      // Comma-separated kinds, e.g. "cmesh,mesh,torus". Omitting the flag
      // keeps the historical all-cmesh scenario distribution byte-for-byte.
      std::string list = value();
      for (std::size_t pos = 0; pos <= list.size();) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        spec.topologies.push_back(
            htnoc::topology_kind_from_string(list.substr(pos, comma - pos)));
        pos = comma + 1;
      }
    } else if (a == "--summary-md") {
      summary_md = value();
    } else if (a == "--repro-dir") {
      repro_dir = value();
    } else if (a == "--repro") {
      repro_arg = value();
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else {
      usage();
      return 2;
    }
  }

  if (!repro_arg.empty()) {
    const auto r = resolve_repro(repro_arg);
    if (!r) {
      std::cerr << "campaign_cli: cannot parse repro spec from '" << repro_arg
                << "'\n";
      return 2;
    }
    CampaignSpec rspec = spec;
    rspec.seed = r->seed;
    const ScenarioResult res = FaultCampaign::run_scenario(rspec, r->index);
    std::cout << "replay " << htnoc::verify::format_repro(*r) << "\n"
              << "scenario: " << res.descriptor << "\n"
              << "cycles=" << res.cycles << " delivered=" << res.delivered
              << " purged=" << res.purged << " audits=" << res.audits
              << " flits_tracked=" << res.flits_tracked << "\n";
    if (res.ok) {
      std::cout << "result: CLEAN\n";
      return 0;
    }
    std::cout << "result: FAIL\n" << res.error << "\n";
    return 1;
  }

  FaultCampaign campaign(spec);
  const CampaignResult result = campaign.run();
  if (!quiet) std::cout << result.summary_text();

  if (!summary_md.empty()) {
    std::ofstream out(summary_md);
    out << result.summary_markdown();
  }
  if (!repro_dir.empty()) {
    for (const ScenarioResult& s : result.scenarios) {
      if (s.ok) continue;
      std::ofstream out(repro_dir + "/repro-" + std::to_string(s.index) +
                        ".txt");
      out << htnoc::verify::format_repro({spec.seed, s.index}) << "\n"
          << s.descriptor << "\n"
          << s.error << "\n";
    }
  }
  return result.failures() == 0 ? 0 : 1;
}
