// campaign_cli — run the randomized fault campaign (invariant auditor armed
// on every scenario) or deterministically replay one failing scenario from
// its repro spec.
//
//   campaign_cli --scenarios 10000 --seed 0x20260806 --jobs 8
//                --summary-md summary.md --repro-dir repros/
//   campaign_cli --scenarios 10000 --shard 1/4 --shard-summary shard1.json
//   campaign_cli --merge shard0.json shard1.json shard2.json shard3.json
//                --dedup-report dedup.md
//   campaign_cli --repro "htnoc-campaign-repro seed=0x20260806 index=421"
//   campaign_cli --repro repros/repro-421.txt
//
// Exit status: 0 when every scenario passed, 1 on any failure (or a failing
// replay, or a merged campaign with failures), 2 on usage/merge errors.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "verify/campaign.hpp"
#include "verify/campaign_json.hpp"
#include "verify/shard_merge.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: campaign_cli [--spec FILE.json]\n"
         "                    [--scenarios N] [--seed S] [--jobs N]\n"
         "                    [--audit-period N] [--topologies LIST]\n"
         "                    [--shard I/N] [--snapshot-warmup CYCLES]\n"
         "                    [--summary-md FILE] [--shard-summary FILE]\n"
         "                    [--repro-dir DIR] [--quiet]\n"
         "       campaign_cli --merge SHARD.json... [--summary-md FILE]\n"
         "                    [--dedup-report FILE] [--quiet]\n"
         "       campaign_cli --repro SPEC-OR-FILE\n"
         "--spec loads the JSON campaign spec the htnoc_serverd daemon\n"
         "accepts (docs/SERVER.md); other flags override on top of it.\n"
         "--shard runs one strided slice of the campaign; --shard-summary\n"
         "writes the shard's mergeable JSON document, and --merge combines\n"
         "a complete shard set into the unsharded campaign verdict.\n";
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot read spec file: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Accept either a literal repro line or the path of a file whose first
/// matching line is one.
std::optional<htnoc::verify::ReproSpec> resolve_repro(const std::string& arg) {
  if (auto r = htnoc::verify::parse_repro(arg)) return r;
  std::ifstream in(arg);
  std::string line;
  while (in && std::getline(in, line)) {
    if (auto r = htnoc::verify::parse_repro(line)) return r;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  using htnoc::verify::CampaignResult;
  using htnoc::verify::CampaignSpec;
  using htnoc::verify::FaultCampaign;
  using htnoc::verify::ScenarioResult;

  CampaignSpec spec;
  spec.seed = 0x5EED;
  spec.scenarios = 1000;
  std::string summary_md;
  std::string shard_summary;
  std::string dedup_report;
  std::string repro_dir;
  std::string repro_arg;
  std::vector<std::string> merge_files;
  bool merging = false;
  bool quiet = false;

  // --spec loads first (wherever it appears): identical input bytes mean
  // identical runs here and in the daemon, and later flags override.
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--spec") {
      try {
        spec = htnoc::verify::parse_campaign_spec(read_file(argv[i + 1]));
      } catch (const std::exception& e) {
        std::cerr << "campaign_cli: " << e.what() << "\n";
        return 2;
      }
      break;
    }
  }

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--spec") {
      (void)value();  // consumed by the first pass
    } else if (a == "--scenarios") {
      spec.scenarios = std::stoull(value(), nullptr, 0);
    } else if (a == "--seed") {
      spec.seed = std::stoull(value(), nullptr, 0);
    } else if (a == "--jobs") {
      spec.threads = std::stoi(value());
    } else if (a == "--audit-period") {
      spec.audit.period = std::stoull(value(), nullptr, 0);
    } else if (a == "--topologies") {
      // Comma-separated kinds, e.g. "cmesh,mesh,torus". Omitting the flag
      // keeps the historical all-cmesh scenario distribution byte-for-byte.
      std::string list = value();
      for (std::size_t pos = 0; pos <= list.size();) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        spec.topologies.push_back(
            htnoc::topology_kind_from_string(list.substr(pos, comma - pos)));
        pos = comma + 1;
      }
    } else if (a == "--shard") {
      // I/N: run shard I of an N-way split (strided global indices).
      const std::string v = value();
      const std::size_t slash = v.find('/');
      if (slash == std::string::npos) {
        std::cerr << "campaign_cli: --shard expects I/N, got '" << v << "'\n";
        return 2;
      }
      try {
        spec.shard_index = std::stoull(v.substr(0, slash), nullptr, 0);
        spec.shard_count = std::stoull(v.substr(slash + 1), nullptr, 0);
      } catch (const std::exception&) {
        std::cerr << "campaign_cli: --shard expects I/N, got '" << v << "'\n";
        return 2;
      }
      if (spec.shard_count == 0 || spec.shard_index >= spec.shard_count) {
        std::cerr << "campaign_cli: --shard needs I < N, got '" << v << "'\n";
        return 2;
      }
    } else if (a == "--snapshot-warmup") {
      spec.warmup_cycles = std::stoull(value(), nullptr, 0);
    } else if (a == "--merge") {
      // Consumes every following non-flag argument as a shard summary file.
      merging = true;
      while (i + 1 < argc && argv[i + 1][0] != '-') {
        merge_files.emplace_back(argv[++i]);
      }
    } else if (a == "--summary-md") {
      summary_md = value();
    } else if (a == "--shard-summary") {
      shard_summary = value();
    } else if (a == "--dedup-report") {
      dedup_report = value();
    } else if (a == "--repro-dir") {
      repro_dir = value();
    } else if (a == "--repro") {
      repro_arg = value();
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else {
      usage();
      return 2;
    }
  }

  if (merging) {
    if (merge_files.empty()) {
      std::cerr << "campaign_cli: --merge needs at least one shard summary\n";
      return 2;
    }
    try {
      std::vector<htnoc::verify::ShardSummary> shards;
      shards.reserve(merge_files.size());
      for (const std::string& path : merge_files) {
        shards.push_back(
            htnoc::verify::parse_shard_summary(read_file(path)));
      }
      const htnoc::verify::MergedCampaign merged =
          htnoc::verify::merge_shards(shards);
      if (!quiet) std::cout << merged.summary_text();
      if (!summary_md.empty()) {
        std::ofstream out(summary_md);
        out << merged.summary_markdown();
      }
      if (!dedup_report.empty()) {
        std::ofstream out(dedup_report);
        out << merged.summary_markdown();
      }
      return merged.failures.empty() ? 0 : 1;
    } catch (const std::exception& e) {
      std::cerr << "campaign_cli: " << e.what() << "\n";
      return 2;
    }
  }

  if (!repro_arg.empty()) {
    const auto r = resolve_repro(repro_arg);
    if (!r) {
      std::cerr << "campaign_cli: cannot parse repro spec from '" << repro_arg
                << "'\n";
      return 2;
    }
    CampaignSpec rspec = spec;
    rspec.seed = r->seed;
    rspec.warmup_cycles = r->warmup;
    const ScenarioResult res = FaultCampaign::run_scenario(rspec, r->index);
    std::cout << "replay " << htnoc::verify::format_repro(*r) << "\n"
              << "scenario: " << res.descriptor << "\n"
              << "cycles=" << res.cycles << " delivered=" << res.delivered
              << " purged=" << res.purged << " audits=" << res.audits
              << " flits_tracked=" << res.flits_tracked << "\n";
    if (res.ok) {
      std::cout << "result: CLEAN\n";
      return 0;
    }
    std::cout << "result: FAIL\n" << res.error << "\n";
    return 1;
  }

  FaultCampaign campaign(spec);
  const CampaignResult result = campaign.run();
  if (!quiet) std::cout << result.summary_text();

  if (!summary_md.empty()) {
    std::ofstream out(summary_md);
    out << result.summary_markdown();
  }
  if (!shard_summary.empty()) {
    std::ofstream out(shard_summary);
    out << htnoc::json::to_string(
               htnoc::verify::shard_summary_to_json(
                   htnoc::verify::summarize_shard(result)),
               2)
        << "\n";
  }
  if (!repro_dir.empty()) {
    for (const ScenarioResult& s : result.scenarios) {
      if (s.ok) continue;
      std::ofstream out(repro_dir + "/repro-" + std::to_string(s.index) +
                        ".txt");
      out << htnoc::verify::format_repro(
                 {spec.seed, s.index, spec.warmup_cycles})
          << "\n"
          << s.descriptor << "\n"
          << s.error << "\n";
    }
  }
  return result.failures() == 0 ? 0 : 1;
}
