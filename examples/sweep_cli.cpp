// sweep_cli — compose and run a parallel experiment sweep from the command
// line: a cartesian grid over mitigation mode x attack placement x traffic
// profile x injection-rate scale x seed replicates, executed on N worker
// threads with bit-deterministic results (same output for any -j).
//
//   sweep_cli --modes none,lob,reroute --attacks none,single \
//             --profiles blackscholes,fft --rates 0.5,1.0,1.5 \
//             --replicates 4 --cycles 3000 --jobs 8 --json sweep.json
//
// Prints the aggregated summary (mean/stddev/min/max per grid point) as
// CSV on stdout; --json / --runs-csv write the full result to files.
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sweep/emit.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec_json.hpp"
#include "trace/export.hpp"
#include "trace/forensics.hpp"

namespace {

using namespace htnoc;

void usage() {
  std::printf(
      "usage: sweep_cli [options]\n"
      "  --spec FILE        load a sweep spec from JSON (the schema the\n"
      "                     htnoc_serverd daemon accepts; docs/SERVER.md);\n"
      "                     other flags override on top of it\n"
      "  --modes M,..       mitigation modes: none, lob, reroute "
      "(default none)\n"
      "  --attacks A,..     attack scenarios: none, single, mem, multi "
      "(default none)\n"
      "  --profiles P,..    traffic profiles: blackscholes, facesim, "
      "ferret, fft\n"
      "  --rates R,..       injection-rate scale factors (default 1.0)\n"
      "  --replicates N     seed replicates per grid point (default 3)\n"
      "  --cycles N         fixed-horizon run length (default 3000)\n"
      "  --requests N       run to completion of N requests instead\n"
      "  --budget N         cycle budget in completion mode (default 2e6)\n"
      "  --seed S           sweep base seed (default 0x5EED)\n"
      "  --jobs N           worker threads (default: $HTNOC_JOBS or cores)\n"
      "  --json FILE        write the full result as JSON\n"
      "  --runs-csv FILE    write per-run metrics as CSV\n"
      "  --trace DIR        capture an event trace per run; writes\n"
      "                     <label>.trace.{bin,json} + .timeline.txt to DIR\n"
      "  --trace-categories C,..  categories to capture (default all);\n"
      "                     e.g. link,ecc,retransmission,saturation\n"
      "  --help             this text\n");
}

/// A run label like "mode=lob attack=single ... rep=0" as a filename stem.
std::string sanitize_label(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (const char c : label) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                          c == '=' || c == '.' || c == '-'
                      ? c
                      : '_');
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Whole-file slurp for --spec (throws on unreadable path).
std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot read spec file: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace htnoc;
  sweep::SweepSpec spec;
  spec.replicates = 3;
  int jobs = 0;
  std::string json_path;
  std::string runs_csv_path;
  std::string trace_dir;

  try {
    // --spec loads first (wherever it appears), so every other flag
    // overrides on top of the file — the same precedence whatever the
    // argument order.
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--spec") == 0) {
        if (i + 1 >= argc) throw std::runtime_error("--spec needs a value");
        // The file carries the spec schema's defaults (replicates 1, like
        // the daemon), not the CLI's replicates=3 — identical input bytes
        // must mean identical runs in both front ends.
        spec = sweep::parse_sweep_spec(read_file(argv[i + 1]));
        break;
      }
    }
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--spec") {
        (void)value();  // consumed by the first pass
      } else if (arg == "--modes") {
        spec.modes.clear();
        for (const auto& m : split_csv(value())) {
          spec.modes.push_back(sweep::mitigation_mode_from_string(m));
        }
      } else if (arg == "--attacks") {
        spec.attack_scenarios.clear();
        for (const auto& a : split_csv(value())) {
          spec.attack_scenarios.push_back(sweep::attack_scenario_preset(a));
        }
      } else if (arg == "--profiles") {
        spec.profiles = split_csv(value());
      } else if (arg == "--rates") {
        spec.rate_scales.clear();
        for (const auto& r : split_csv(value())) {
          spec.rate_scales.push_back(std::stod(r));
        }
      } else if (arg == "--replicates") {
        spec.replicates = std::stoi(value());
      } else if (arg == "--cycles") {
        spec.run_cycles = std::stoull(value());
      } else if (arg == "--requests") {
        spec.total_requests = std::stoull(value());
      } else if (arg == "--budget") {
        spec.cycle_budget = std::stoull(value());
      } else if (arg == "--seed") {
        spec.base_seed = std::stoull(value(), nullptr, 0);
      } else if (arg == "--jobs") {
        jobs = std::stoi(value());
      } else if (arg == "--json") {
        json_path = value();
      } else if (arg == "--runs-csv") {
        runs_csv_path = value();
      } else if (arg == "--trace") {
        trace_dir = value();
        spec.base.trace.enabled = true;
      } else if (arg == "--trace-categories") {
        spec.base.trace.categories = trace::parse_categories(value());
      } else {
        throw std::runtime_error("unknown option: " + arg);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_cli: %s\n", e.what());
    usage();
    return 2;
  }

  try {
    const auto t0 = std::chrono::steady_clock::now();
    sweep::SweepRunner::Options runner_opts;
    runner_opts.num_threads = jobs;
    const sweep::SweepRunner runner(runner_opts);
    const sweep::SweepResult result = runner.run(spec);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    sweep::write_summary_csv(std::cout, result);
    if (!json_path.empty()) {
      std::ofstream f(json_path);
      sweep::write_json(f, result);
    }
    if (!runs_csv_path.empty()) {
      std::ofstream f(runs_csv_path);
      sweep::write_runs_csv(f, result);
    }
    if (!trace_dir.empty()) {
      if (!trace::kCompiledIn) {
        std::fprintf(stderr,
                     "[sweep] --trace ignored: built with HTNOC_TRACE=0\n");
      }
      std::filesystem::create_directories(trace_dir);
      std::size_t written = 0;
      for (const auto& r : result.runs) {
        if (!r.ok || !r.trace) continue;
        const std::string stem =
            trace_dir + "/" + sanitize_label(r.spec.label());
        {
          std::ofstream f(stem + ".trace.bin", std::ios::binary);
          trace::write_binary(f, *r.trace);
        }
        {
          std::ofstream f(stem + ".trace.json");
          trace::write_chrome_json(f, *r.trace);
        }
        {
          std::ofstream f(stem + ".timeline.txt");
          trace::print_timeline(f, *r.trace, trace::analyze(*r.trace));
        }
        ++written;
      }
      std::fprintf(stderr, "[sweep] wrote %zu trace(s) to %s\n", written,
                   trace_dir.c_str());
    }

    std::fprintf(stderr,
                 "[sweep] %zu runs (%zu grid points x %d replicates) on %d "
                 "thread(s) in %.2fs, %zu failed\n",
                 result.runs.size(), spec.num_grid_points(), spec.replicates,
                 result.threads_used, secs, result.failures());
    for (const auto& r : result.runs) {
      if (!r.ok) {
        std::fprintf(stderr, "[sweep] FAILED %s: %s\n", r.spec.label().c_str(),
                     r.error.c_str());
      }
    }
    return result.failures() == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_cli: %s\n", e.what());
    return 1;
  }
}
