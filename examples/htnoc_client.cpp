// htnoc_client — tiny command-line client for htnoc_serverd, sharing the
// daemon's own HTTP helpers (no curl dependency in tests or CI).
//
//   htnoc_client --port 8080 submit sweep examples/specs/sweep_smoke.json
//   htnoc_client --port 8080 wait 1
//   htnoc_client --port 8080 get /runs/1/summary.csv
//   htnoc_client --port 8080 cancel 1
//   htnoc_client --port 8080 quit
//
// `submit` prints the new run id on stdout; `wait` polls /runs/<id> until
// the job leaves the queue/running states and exits 0 (done), 1 (failed)
// or 3 (cancelled); `cancel` DELETEs the run; `get` prints the raw
// response body.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <fstream>
#include <sstream>

#include "common/json.hpp"
#include "server/http.hpp"

namespace {

void usage() {
  std::printf(
      "usage: htnoc_client --port N COMMAND [args]\n"
      "  submit KIND FILE   POST the spec file as {kind, spec}; prints the\n"
      "                     run id (KIND: sweep or campaign)\n"
      "  submit-jobs KIND N FILE  same, with run-level workers N\n"
      "  wait ID            poll /runs/ID until done (exit 0) / failed (1)\n"
      "                     / cancelled (3)\n"
      "  cancel ID          DELETE /runs/ID (cancel a queued/running job);\n"
      "                     prints the final state\n"
      "  get TARGET         GET any admin path, print the body\n"
      "  quit               POST /quitquitquit (graceful drain)\n");
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot read file: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Wrap raw spec text into the submission envelope without re-encoding the
/// spec (the daemon parses it strictly anyway).
std::string make_envelope(const std::string& kind, int jobs,
                          const std::string& spec_text) {
  std::string out = "{\"kind\":\"" + kind + "\"";
  if (jobs > 0) out += ",\"jobs\":" + std::to_string(jobs);
  out += ",\"spec\":" + spec_text + "}";
  return out;
}

/// Pull a field out of a small admin response without a full bind layer.
const htnoc::json::Value* find_field(const htnoc::json::Value& doc,
                                     const char* key) {
  return doc.is_object() ? doc.find(key) : nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace htnoc;
  using namespace htnoc::server;

  int port = 0;
  std::vector<std::string> args;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--port") {
        if (i + 1 >= argc) throw std::runtime_error("--port needs a value");
        port = std::stoi(argv[++i]);
      } else {
        args.push_back(arg);
      }
    }
    if (port <= 0) throw std::runtime_error("--port is required");
    if (args.empty()) throw std::runtime_error("missing command");

    const std::string& cmd = args[0];
    if (cmd == "submit" || cmd == "submit-jobs") {
      const bool with_jobs = cmd == "submit-jobs";
      const std::size_t want = with_jobs ? 4 : 3;
      if (args.size() != want) throw std::runtime_error(cmd + ": bad args");
      const std::string& kind = args[1];
      const int jobs = with_jobs ? std::stoi(args[2]) : 0;
      const std::string spec = read_file(args.back());
      const HttpResponse r =
          http_post(port, "/runs", make_envelope(kind, jobs, spec));
      if (r.status != 202) {
        std::fprintf(stderr, "htnoc_client: submit failed (%d): %s\n",
                     r.status, r.body.c_str());
        return 1;
      }
      const json::Value doc = json::parse(r.body);
      const json::Value* id = find_field(doc, "id");
      if (id == nullptr) throw std::runtime_error("no id in response");
      std::printf("%llu\n",
                  static_cast<unsigned long long>(json::as_uint64(*id)));
      return 0;
    }
    if (cmd == "wait") {
      if (args.size() != 2) throw std::runtime_error("wait: bad args");
      const std::string target = "/runs/" + args[1];
      for (;;) {
        const HttpResponse r = http_get(port, target);
        if (r.status != 200) {
          std::fprintf(stderr, "htnoc_client: %s -> %d\n", target.c_str(),
                       r.status);
          return 1;
        }
        const json::Value doc = json::parse(r.body);
        const json::Value* state = find_field(doc, "state");
        if (state == nullptr) throw std::runtime_error("no state field");
        const std::string& s = state->as_string();
        if (s == "done") return 0;
        if (s == "failed") {
          std::fprintf(stderr, "htnoc_client: run %s failed\n",
                       args[1].c_str());
          return 1;
        }
        if (s == "cancelled") {
          std::fprintf(stderr, "htnoc_client: run %s cancelled\n",
                       args[1].c_str());
          return 3;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    if (cmd == "cancel") {
      if (args.size() != 2) throw std::runtime_error("cancel: bad args");
      const HttpResponse r = http_delete(port, "/runs/" + args[1]);
      if (r.status != 200) {
        std::fprintf(stderr, "htnoc_client: cancel failed (%d): %s\n",
                     r.status, r.body.c_str());
        return 1;
      }
      const json::Value doc = json::parse(r.body);
      const json::Value* state = find_field(doc, "state");
      std::printf("%s\n",
                  state != nullptr ? state->as_string().c_str() : "?");
      return 0;
    }
    if (cmd == "get") {
      if (args.size() != 2) throw std::runtime_error("get: bad args");
      const HttpResponse r = http_get(port, args[1]);
      std::fwrite(r.body.data(), 1, r.body.size(), stdout);
      return r.status == 200 ? 0 : 1;
    }
    if (cmd == "quit") {
      const HttpResponse r = http_post(port, "/quitquitquit", "");
      return r.status == 200 ? 0 : 1;
    }
    throw std::runtime_error("unknown command: " + cmd);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "htnoc_client: %s\n", e.what());
    usage();
    return 2;
  }
}
