// Quickstart: build a 64-core concentrated-mesh NoC, drive it with an
// application traffic profile, and read back the basic statistics.
//
//   $ ./quickstart
//
// This touches the three layers most users need: Network (the cycle-
// accurate NoC), AppTrafficModel/TrafficGenerator (workloads), and the
// utilization/latency statistics.
#include <cstdio>
#include <iostream>

#include "noc/network.hpp"
#include "stats/stats.hpp"
#include "traffic/generator.hpp"

int main() {
  using namespace htnoc;

  // 1. Configure the NoC. Defaults reproduce the paper's platform: 4x4
  //    mesh, 4 cores per router, 4 VCs/port, 4-deep buffers, 5-stage
  //    pipeline, x-y routing at 2 GHz, SECDED link ECC. Each input/output
  //    unit resolves cfg.ecc_scheme once at construction into the
  //    branch-free ecc::CodecDispatch, so changing the scheme here is the
  //    only ECC decision you make — there is no per-phit dispatch cost.
  //    cfg.step_threads > 1 shards large meshes across worker threads
  //    with bit-identical results (docs/SCALING.md); at this 4x4 size the
  //    serial default is the right choice.
  NocConfig cfg;
  Network net(cfg);
  std::printf("built a %dx%d mesh, %d cores, %zu inter-router links\n",
              cfg.mesh_width, cfg.mesh_height, cfg.num_cores(),
              net.all_links().size());

  // 2. Attach a workload: the Blackscholes-like profile concentrates
  //    traffic on router 0 with distance decay (paper Fig. 1).
  traffic::DeliveryDispatcher dispatcher;
  dispatcher.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params params;
  params.seed = 2024;
  params.total_requests = 2000;
  traffic::TrafficGenerator gen(net, model, params, dispatcher);

  // Optional: record latencies ourselves via a second listener.
  stats::LatencyStats latency;
  dispatcher.add_listener([&](Cycle, const PacketInfo&, Cycle lat) {
    latency.record(lat);
  });

  // 3. Run to completion: one generator step + one network step per cycle.
  while (!gen.done()) {
    gen.step();
    net.step();
  }

  // 4. Read the results.
  std::printf("completed in %llu cycles\n",
              static_cast<unsigned long long>(net.now()));
  std::printf("packets: %llu injected, %llu delivered (replies included)\n",
              static_cast<unsigned long long>(gen.stats().packets_injected),
              static_cast<unsigned long long>(gen.stats().packets_delivered));
  latency.print(std::cout, "packet latency");
  return 0;
}
