// Trace record / replay workflow: capture a workload's injections to a
// trace file, then replay it bit-identically — with and without a trojan —
// the way the paper replays PARSEC/SPLASH-2 traces against attack
// configurations.
//
//   $ ./trace_workflow [trace_path]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/simulator.hpp"
#include "traffic/generator.hpp"
#include "traffic/replayer.hpp"
#include "traffic/trace.hpp"

int main(int argc, char** argv) {
  using namespace htnoc;
  const std::string path = argc > 1 ? argv[1] : "ferret_trace.txt";

  // --- 1. capture: sample the ferret application model into a trace ---
  // (With real hardware this is where a PARSEC capture would be imported;
  // here the parametric model plays the application.)
  traffic::TraceRecorder recorder;
  {
    const MeshGeometry geom(4, 4, 4);
    traffic::AppTrafficModel model(geom, traffic::ferret_profile());
    Rng rng(99);
    Cycle t = 0;
    for (std::uint64_t i = 0; i < 1500; ++i) {
      PacketInfo info;
      info.src_core = static_cast<NodeId>(rng.next_below(64));
      info.dest_core = model.pick_dest(info.src_core, rng);
      info.length = model.pick_length(rng);
      info.mem_addr = model.pick_mem(rng);
      info.pclass = PacketClass::kRequest;
      recorder.record(t, info);
      t += 1 + (i % 3);  // bursty-ish injection spacing
    }
  }
  {
    std::ofstream f(path);
    recorder.write(f);
  }
  std::printf("recorded %zu packets to %s\n", recorder.records().size(),
              path.c_str());

  // --- 2. replay: identical trace, clean vs attacked ---
  const auto replay = [&](bool attacked) {
    std::ifstream f(path);
    const auto trace = traffic::read_trace(f);
    sim::SimConfig sc;
    sc.mode = attacked ? sim::MitigationMode::kLOb : sim::MitigationMode::kNone;
    if (attacked) {
      sim::AttackSpec a;
      a.link = {4, Direction::kNorth};
      a.tasp.kind = trojan::TargetKind::kMem;
      a.tasp.target_mem = traffic::ferret_profile().mem_base;
      a.tasp.mem_mask = 0xF0000000u;
      a.enable_killsw_at = 0;
      sc.attacks.push_back(a);
    }
    sim::Simulator simulator(std::move(sc));
    Network& net = simulator.network();
    traffic::DeliveryDispatcher dispatcher;
    dispatcher.install(net);
    traffic::TraceReplayer rep(net, trace, dispatcher);
    Cycle c = 0;
    while (!rep.done() && c < 1000000) {
      rep.step();
      simulator.step();
      ++c;
    }
    std::printf("  %-22s delivered %llu/%zu packets in %llu cycles "
                "(mean latency %.1f)\n",
                attacked ? "with TASP + L-Ob:" : "clean:",
                static_cast<unsigned long long>(rep.stats().packets_delivered),
                trace.size(), static_cast<unsigned long long>(c),
                rep.stats().packets_delivered
                    ? static_cast<double>(rep.stats().latency_sum) /
                          static_cast<double>(rep.stats().packets_delivered)
                    : 0.0);
  };
  std::printf("replaying the trace twice:\n");
  replay(false);
  replay(true);
  std::printf("same workload, same order — only the trojan differs.\n");
  return 0;
}
