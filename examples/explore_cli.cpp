// Interactive experiment explorer: compose your own attack/defense scenario
// from the command line without writing code.
//
//   $ ./explore_cli --app facesim --mode lob --attack 4:N --target dest=0 \
//                   --cycles 5000
//   $ ./explore_cli --help
//
// Prints a time series of throughput and saturation metrics plus a final
// summary — the fastest way to poke at the system's behaviour space.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include <iostream>

#include "sim/simulator.hpp"
#include "stats/stats.hpp"
#include "traffic/generator.hpp"

namespace {

using namespace htnoc;

struct Options {
  std::string app = "blackscholes";
  std::string mode = "none";
  std::string routing = "xy";
  std::string scheme = "output";
  std::vector<LinkRef> attack_links;
  trojan::TargetKind target_kind = trojan::TargetKind::kDest;
  std::uint64_t target_value = 0;
  Cycle killsw_at = 1000;
  Cycle cycles = 4000;
  bool tdm = false;
  bool report = false;
  std::uint64_t seed = 1;
  double rate_scale = 1.0;
};

void usage() {
  std::printf(
      "explore_cli — compose a TASP attack/defense scenario\n\n"
      "  --app NAME        blackscholes|facesim|ferret|fft (default "
      "blackscholes)\n"
      "  --mode M          none|lob|reroute (default none)\n"
      "  --routing R       xy|west_first (default xy)\n"
      "  --scheme S        output|per_vc retransmission buffers (default "
      "output)\n"
      "  --attack R:D      implant a TASP on router R's link in direction "
      "D (N|S|E|W); repeatable\n"
      "  --target K=V      dest|src|vc|mem|full =value (default dest=0)\n"
      "  --killsw CYC      enable the kill switch at cycle CYC (default "
      "1000)\n"
      "  --cycles N        simulate N cycles (default 4000)\n"
      "  --rate X          scale the app's injection rate by X\n"
      "  --tdm             enable two-domain TDM QoS\n"
      "  --report          print the full per-router pipeline report\n"
      "  --seed N          traffic seed\n");
}

Direction parse_dir(char c) {
  switch (c) {
    case 'N': return Direction::kNorth;
    case 'S': return Direction::kSouth;
    case 'E': return Direction::kEast;
    case 'W': return Direction::kWest;
    default: throw ContractViolation(std::string("bad direction ") + c);
  }
}

trojan::TargetKind parse_kind(const std::string& k) {
  if (k == "dest") return trojan::TargetKind::kDest;
  if (k == "src") return trojan::TargetKind::kSrc;
  if (k == "vc") return trojan::TargetKind::kVc;
  if (k == "mem") return trojan::TargetKind::kMem;
  if (k == "full") return trojan::TargetKind::kFull;
  if (k == "dest_src") return trojan::TargetKind::kDestSrc;
  throw ContractViolation("bad target kind " + k);
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw ContractViolation(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return false;
    if (arg == "--app") {
      opt.app = next();
    } else if (arg == "--mode") {
      opt.mode = next();
    } else if (arg == "--routing") {
      opt.routing = next();
    } else if (arg == "--scheme") {
      opt.scheme = next();
    } else if (arg == "--attack") {
      const std::string v = next();
      const auto colon = v.find(':');
      if (colon == std::string::npos || colon + 2 != v.size()) {
        throw ContractViolation("--attack expects R:D, got " + v);
      }
      opt.attack_links.push_back(
          {static_cast<RouterId>(std::stoi(v.substr(0, colon))),
           parse_dir(v[colon + 1])});
    } else if (arg == "--target") {
      const std::string v = next();
      const auto eq = v.find('=');
      if (eq == std::string::npos) {
        throw ContractViolation("--target expects K=V, got " + v);
      }
      opt.target_kind = parse_kind(v.substr(0, eq));
      opt.target_value = std::stoull(v.substr(eq + 1), nullptr, 0);
    } else if (arg == "--killsw") {
      opt.killsw_at = std::stoull(next());
    } else if (arg == "--cycles") {
      opt.cycles = std::stoull(next());
    } else if (arg == "--rate") {
      opt.rate_scale = std::stod(next());
    } else if (arg == "--seed") {
      opt.seed = std::stoull(next());
    } else if (arg == "--tdm") {
      opt.tdm = true;
    } else if (arg == "--report") {
      opt.report = true;
    } else {
      throw ContractViolation("unknown flag " + arg);
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    if (!parse_args(argc, argv, opt)) {
      usage();
      return 0;
    }
  } catch (const std::exception& e) {
    std::printf("error: %s\n\n", e.what());
    usage();
    return 2;
  }

  sim::SimConfig sc;
  sc.noc.tdm_enabled = opt.tdm;
  sc.noc.retrans_scheme = retransmission_scheme_from_string(opt.scheme);
  sc.mode = opt.mode == "lob"       ? sim::MitigationMode::kLOb
            : opt.mode == "reroute" ? sim::MitigationMode::kReroute
                                    : sim::MitigationMode::kNone;
  if (opt.attack_links.empty()) {
    opt.attack_links.push_back({4, Direction::kNorth});
  }
  for (const LinkRef& l : opt.attack_links) {
    sim::AttackSpec a;
    a.link = l;
    a.tasp.kind = opt.target_kind;
    a.tasp.target_dest = static_cast<RouterId>(opt.target_value);
    a.tasp.target_src = static_cast<RouterId>(opt.target_value);
    a.tasp.target_vc = static_cast<VcId>(opt.target_value);
    a.tasp.target_mem = static_cast<std::uint32_t>(opt.target_value);
    a.enable_killsw_at = opt.killsw_at;
    sc.attacks.push_back(a);
  }

  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  if (opt.routing == "west_first") net.use_west_first_routing();

  traffic::DeliveryDispatcher disp;
  disp.install(net);
  auto profile = traffic::profile_by_name(opt.app);
  profile.injection_rate *= opt.rate_scale;
  traffic::AppTrafficModel model(net.geometry(), profile);
  traffic::TrafficGenerator::Params gp;
  gp.seed = opt.seed;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  simulator.set_drop_callback([&](PacketId id) { gen.requeue(id); });

  std::printf("app=%s mode=%s routing=%s scheme=%s trojans=%zu "
              "target=%s killsw@%llu\n\n",
              opt.app.c_str(), opt.mode.c_str(), opt.routing.c_str(),
              opt.scheme.c_str(), simulator.num_trojans(),
              trojan::to_string(opt.target_kind).c_str(),
              static_cast<unsigned long long>(opt.killsw_at));
  std::printf("%8s %10s %10s %8s %10s %12s\n", "cycle", "delivered",
              "thru/250c", "blocked", "cores_full", "trojan_hits");

  const Cycle report_every = 250;
  std::uint64_t prev = 0;
  for (Cycle c = 0; c < opt.cycles; ++c) {
    gen.step();
    simulator.step();
    if ((c + 1) % report_every == 0) {
      const auto u = net.sample_utilization();
      std::uint64_t hits = 0;
      for (std::size_t t = 0; t < simulator.num_trojans(); ++t) {
        hits += simulator.tasp(t).stats().injections;
      }
      std::printf("%8llu %10llu %10llu %8d %10d %12llu\n",
                  static_cast<unsigned long long>(c + 1),
                  static_cast<unsigned long long>(
                      gen.stats().packets_delivered),
                  static_cast<unsigned long long>(
                      gen.stats().packets_delivered - prev),
                  u.routers_with_blocked_port, u.routers_all_cores_full,
                  static_cast<unsigned long long>(hits));
      prev = gen.stats().packets_delivered;
    }
  }

  std::printf("\nsummary: %llu delivered, avg latency %.1f, backlog %zu, "
              "links disabled %d, packets purged %llu\n",
              static_cast<unsigned long long>(gen.stats().packets_delivered),
              gen.stats().avg_latency(), gen.backlog_size(),
              simulator.stats().links_disabled,
              static_cast<unsigned long long>(
                  simulator.stats().packets_purged));
  if (opt.report) {
    std::printf("\n");
    stats::print_network_report(std::cout, net);
  }
  return 0;
}
