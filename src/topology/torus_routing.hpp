// Ring-shortest dimension-order routing for the torus. Same x-then-y
// discipline as XyRouting, but each dimension picks the shorter way around
// its ring, with a fixed East/South tie-break when both ways are equal so
// the route stays a pure function of (here, dest). Every hop reduces the
// torus hop distance by exactly one, so routes are minimal and loop-free
// (asserted by tests/test_routing_properties.cpp). Deadlock freedom across
// the wrap links would need dateline VCs, which the 4-VC router does not
// dedicate; docs/ARCHITECTURE.md discusses the gap.
#pragma once

#include <string>

#include "common/geometry.hpp"
#include "common/types.hpp"
#include "noc/flit.hpp"
#include "noc/routing.hpp"

namespace htnoc {

class TorusXyRouting final : public RoutingFunction {
 public:
  explicit TorusXyRouting(const MeshGeometry& geom) : geom_(geom) {}

  [[nodiscard]] RouteDecision route(RouterId here, const Flit& f) const override {
    if (f.dest_router == here) {
      return {kPortLocalBase + geom_.local_slot_of_core(f.dest_core), false};
    }
    const MeshCoord c = geom_.coord_of(here);
    const MeshCoord d = geom_.coord_of(f.dest_router);
    if (d.x != c.x) {
      const int east = (d.x - c.x + geom_.width()) % geom_.width();
      return {east * 2 <= geom_.width() ? kPortEast : kPortWest, false};
    }
    const int south = (d.y - c.y + geom_.height()) % geom_.height();
    return {south * 2 <= geom_.height() ? kPortSouth : kPortNorth, false};
  }

  [[nodiscard]] std::string name() const override { return "torus_xy"; }

 private:
  MeshGeometry geom_;
};

}  // namespace htnoc
