// Fabric topology abstraction (BookSim's Network/routefunc split, scoped to
// the grids this repo studies). A Topology owns the node/link graph and
// names the default routing function for it; Network consumes the graph and
// stays agnostic of how it was generated. The paper's hard-coded 4x4
// concentrated mesh is ConcentratedMeshTopology and is bit-exact with the
// legacy layout (locked by tests/test_topology_golden.cpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/geometry.hpp"
#include "common/types.hpp"
#include "noc/routing.hpp"

namespace htnoc {

/// One directed inter-router link: `from` drives its `dir` output port into
/// router `to`. Enumeration order is part of the determinism contract:
/// routers ascending, directions N,S,E,W within a router — exactly the
/// order the legacy Network constructor wired links in.
struct TopoLink {
  RouterId from = kInvalidRouter;
  Direction dir = Direction::kNorth;
  RouterId to = kInvalidRouter;

  [[nodiscard]] constexpr bool operator==(const TopoLink&) const noexcept = default;
};

/// Static description of a fabric: the router/core graph plus the routing
/// function that matches it. Implementations are immutable after
/// construction; Network copies what it needs and never calls back during
/// stepping, so a Topology can be shared across runs.
class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual TopologyKind kind() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Coordinate system; wrap-aware on the torus.
  [[nodiscard]] virtual const MeshGeometry& geometry() const noexcept = 0;

  /// All directed inter-router links in canonical order (see TopoLink).
  [[nodiscard]] virtual std::vector<TopoLink> links() const;

  [[nodiscard]] virtual bool has_neighbor(RouterId r, Direction d) const;
  [[nodiscard]] virtual RouterId neighbor(RouterId r, Direction d) const;

  /// Minimal hop count between routers (ring-aware on the torus).
  [[nodiscard]] virtual int hop_distance(RouterId a, RouterId b) const;

  /// The deadlock-free dimension-order routing function native to this
  /// fabric (x-y on meshes, ring-shortest x-y on the torus).
  [[nodiscard]] virtual std::unique_ptr<RoutingFunction> make_default_routing() const = 0;

  /// True when turn-model adaptive routing (west-first) is sound here.
  /// Wrap-around links reintroduce the rightmost-column dependency the
  /// turn model relies on breaking, so the torus answers false.
  [[nodiscard]] virtual bool supports_turn_model() const noexcept = 0;
};

/// Shared base for the 2-D grid family: everything is derived from a
/// MeshGeometry, concrete subclasses only pick kind/name/routing.
class GridTopology : public Topology {
 public:
  [[nodiscard]] const MeshGeometry& geometry() const noexcept override {
    return geom_;
  }

 protected:
  explicit GridTopology(MeshGeometry geom) : geom_(geom) {}

  MeshGeometry geom_;
};

/// The paper's platform: width x height routers, `concentration` cores per
/// router, x-y routing. Default 4x4 with concentration 4 (64 cores).
class ConcentratedMeshTopology final : public GridTopology {
 public:
  ConcentratedMeshTopology(int width, int height, int concentration)
      : GridTopology(MeshGeometry(width, height, concentration)) {}

  [[nodiscard]] TopologyKind kind() const noexcept override {
    return TopologyKind::kConcentratedMesh;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<RoutingFunction> make_default_routing() const override;
  [[nodiscard]] bool supports_turn_model() const noexcept override { return true; }
};

/// Plain k x k mesh, one core per router — the large-fabric scaling shape.
class MeshTopology final : public GridTopology {
 public:
  MeshTopology(int width, int height)
      : GridTopology(MeshGeometry(width, height, /*concentration=*/1)) {}

  [[nodiscard]] TopologyKind kind() const noexcept override {
    return TopologyKind::kMesh;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<RoutingFunction> make_default_routing() const override;
  [[nodiscard]] bool supports_turn_model() const noexcept override { return true; }
};

/// Mesh with wrap-around links in both dimensions and ring-shortest
/// dimension-order routing.
class TorusTopology final : public GridTopology {
 public:
  TorusTopology(int width, int height, int concentration)
      : GridTopology(MeshGeometry(width, height, concentration, /*wrap=*/true)) {}

  [[nodiscard]] TopologyKind kind() const noexcept override {
    return TopologyKind::kTorus;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<RoutingFunction> make_default_routing() const override;
  [[nodiscard]] bool supports_turn_model() const noexcept override { return false; }
};

/// Build the topology a NocConfig describes. The config must already be
/// validated (kMesh implies concentration == 1).
[[nodiscard]] std::unique_ptr<Topology> make_topology(const NocConfig& cfg);

}  // namespace htnoc
