#include "topology/topology.hpp"

#include "common/expect.hpp"
#include "topology/torus_routing.hpp"

namespace htnoc {
namespace {

constexpr Direction kDirs[] = {Direction::kNorth, Direction::kSouth,
                               Direction::kEast, Direction::kWest};

}  // namespace

std::vector<TopoLink> Topology::links() const {
  const MeshGeometry& g = geometry();
  std::vector<TopoLink> out;
  out.reserve(static_cast<std::size_t>(g.num_routers()) * 4);
  for (int r = 0; r < g.num_routers(); ++r) {
    const auto rid = static_cast<RouterId>(r);
    for (Direction d : kDirs) {
      if (g.has_neighbor(rid, d)) out.push_back({rid, d, g.neighbor(rid, d)});
    }
  }
  return out;
}

bool Topology::has_neighbor(RouterId r, Direction d) const {
  return geometry().has_neighbor(r, d);
}

RouterId Topology::neighbor(RouterId r, Direction d) const {
  return geometry().neighbor(r, d);
}

int Topology::hop_distance(RouterId a, RouterId b) const {
  return geometry().hop_distance(a, b);
}

std::string ConcentratedMeshTopology::name() const {
  return "cmesh" + std::to_string(geom_.width()) + "x" +
         std::to_string(geom_.height()) + "c" +
         std::to_string(geom_.concentration());
}

std::unique_ptr<RoutingFunction> ConcentratedMeshTopology::make_default_routing() const {
  return std::make_unique<XyRouting>(geom_);
}

std::string MeshTopology::name() const {
  return "mesh" + std::to_string(geom_.width()) + "x" +
         std::to_string(geom_.height());
}

std::unique_ptr<RoutingFunction> MeshTopology::make_default_routing() const {
  return std::make_unique<XyRouting>(geom_);
}

std::string TorusTopology::name() const {
  std::string n = "torus" + std::to_string(geom_.width()) + "x" +
                  std::to_string(geom_.height());
  if (geom_.concentration() > 1) n += "c" + std::to_string(geom_.concentration());
  return n;
}

std::unique_ptr<RoutingFunction> TorusTopology::make_default_routing() const {
  return std::make_unique<TorusXyRouting>(geom_);
}

std::unique_ptr<Topology> make_topology(const NocConfig& cfg) {
  switch (cfg.topology) {
    case TopologyKind::kConcentratedMesh:
      return std::make_unique<ConcentratedMeshTopology>(
          cfg.mesh_width, cfg.mesh_height, cfg.concentration);
    case TopologyKind::kMesh:
      HTNOC_EXPECT(cfg.concentration == 1);
      return std::make_unique<MeshTopology>(cfg.mesh_width, cfg.mesh_height);
    case TopologyKind::kTorus:
      return std::make_unique<TorusTopology>(cfg.mesh_width, cfg.mesh_height,
                                             cfg.concentration);
  }
  throw ContractViolation("unknown topology kind");
}

}  // namespace htnoc
