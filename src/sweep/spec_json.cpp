#include "sweep/spec_json.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/expect.hpp"
#include "traffic/app_profile.hpp"

namespace htnoc::sweep {

namespace {

using json::Value;

[[noreturn]] void bad(const std::string& path, const std::string& msg) {
  throw SpecError(path + ": " + msg);
}

std::string hex_string(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

// --- typed accessors: json::TypeError re-thrown with the field path ---

std::uint64_t get_u64(const Value& v, const std::string& path) {
  try {
    return json::as_uint64(v);
  } catch (const json::TypeError& e) {
    bad(path, e.what());
  }
}

std::uint64_t get_u64_range(const Value& v, const std::string& path,
                            std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t x = get_u64(v, path);
  if (x < lo || x > hi) {
    bad(path, "value " + std::to_string(x) + " out of range [" +
                  std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return x;
}

int get_int_range(const Value& v, const std::string& path, int lo, int hi) {
  return static_cast<int>(
      get_u64_range(v, path, static_cast<std::uint64_t>(lo),
                    static_cast<std::uint64_t>(hi)));
}

double get_number(const Value& v, const std::string& path) {
  try {
    return v.as_number();
  } catch (const json::TypeError& e) {
    bad(path, e.what());
  }
}

bool get_bool(const Value& v, const std::string& path) {
  try {
    return v.as_bool();
  } catch (const json::TypeError& e) {
    bad(path, e.what());
  }
}

const std::string& get_string(const Value& v, const std::string& path) {
  try {
    return v.as_string();
  } catch (const json::TypeError& e) {
    bad(path, e.what());
  }
}

const json::Object& get_object(const Value& v, const std::string& path) {
  try {
    return v.as_object();
  } catch (const json::TypeError& e) {
    bad(path, e.what());
  }
}

const json::Array& get_array(const Value& v, const std::string& path) {
  try {
    return v.as_array();
  } catch (const json::TypeError& e) {
    bad(path, e.what());
  }
}

// --- enum string forms ---

Direction direction_from_string(const std::string& s,
                                const std::string& path) {
  if (s == "north") return Direction::kNorth;
  if (s == "south") return Direction::kSouth;
  if (s == "east") return Direction::kEast;
  if (s == "west") return Direction::kWest;
  bad(path, "unknown direction \"" + s +
                "\" (expected north/south/east/west)");
}

std::string direction_to_json_string(Direction d) {
  switch (d) {
    case Direction::kNorth: return "north";
    case Direction::kSouth: return "south";
    case Direction::kEast: return "east";
    case Direction::kWest: return "west";
    default: return "local";
  }
}

trojan::TargetKind target_kind_from_string(const std::string& s,
                                           const std::string& path) {
  if (s == "full") return trojan::TargetKind::kFull;
  if (s == "dest") return trojan::TargetKind::kDest;
  if (s == "src") return trojan::TargetKind::kSrc;
  if (s == "dest_src") return trojan::TargetKind::kDestSrc;
  if (s == "mem") return trojan::TargetKind::kMem;
  if (s == "vc") return trojan::TargetKind::kVc;
  if (s == "thread") return trojan::TargetKind::kThread;
  bad(path, "unknown target kind \"" + s + "\"");
}

trojan::PayloadPattern payload_pattern_from_string(const std::string& s,
                                                   const std::string& path) {
  if (s == "double_detectable") return trojan::PayloadPattern::kDoubleDetectable;
  if (s == "single_correctable") {
    return trojan::PayloadPattern::kSingleCorrectable;
  }
  if (s == "triple_sdc") return trojan::PayloadPattern::kTripleSdc;
  bad(path, "unknown payload pattern \"" + s + "\"");
}

std::string payload_pattern_to_string(trojan::PayloadPattern p) {
  switch (p) {
    case trojan::PayloadPattern::kDoubleDetectable: return "double_detectable";
    case trojan::PayloadPattern::kSingleCorrectable:
      return "single_correctable";
    case trojan::PayloadPattern::kTripleSdc: return "triple_sdc";
  }
  return "?";
}

TdmDomain domain_from_string(const std::string& s, const std::string& path) {
  if (s == "d1") return TdmDomain::kD1;
  if (s == "d2") return TdmDomain::kD2;
  bad(path, "unknown TDM domain \"" + s + "\" (expected d1/d2)");
}

// --- attack implants ---

LinkRef link_from_json(const Value& v, const std::string& path) {
  LinkRef link{0, Direction::kNorth};
  bool have_router = false;
  for (const auto& [key, val] : get_object(v, path)) {
    const std::string p = path + "." + key;
    if (key == "router") {
      link.from = static_cast<RouterId>(get_int_range(val, p, 0, 4095));
      have_router = true;
    } else if (key == "dir") {
      link.dir = direction_from_string(get_string(val, p), p);
    } else {
      bad(p, "unknown key");
    }
  }
  if (!have_router) bad(path, "missing \"router\"");
  return link;
}

sim::AttackSpec implant_from_json(const Value& v, const std::string& path,
                                  EccScheme ecc) {
  sim::AttackSpec a;
  a.tasp.ecc = ecc;
  bool have_link = false;
  for (const auto& [key, val] : get_object(v, path)) {
    const std::string p = path + "." + key;
    if (key == "link") {
      a.link = link_from_json(val, p);
      have_link = true;
    } else if (key == "enable_at") {
      a.enable_killsw_at = get_u64(val, p);
    } else if (key == "tasp") {
      for (const auto& [tk, tv] : get_object(val, p)) {
        const std::string tp = p + "." + tk;
        if (tk == "kind") {
          a.tasp.kind = target_kind_from_string(get_string(tv, tp), tp);
        } else if (tk == "src") {
          a.tasp.target_src =
              static_cast<RouterId>(get_int_range(tv, tp, 0, 4095));
        } else if (tk == "dest") {
          a.tasp.target_dest =
              static_cast<RouterId>(get_int_range(tv, tp, 0, 4095));
        } else if (tk == "vc") {
          a.tasp.target_vc = static_cast<VcId>(get_int_range(tv, tp, 0, 15));
        } else if (tk == "thread") {
          a.tasp.target_thread =
              static_cast<std::uint8_t>(get_int_range(tv, tp, 0, 63));
        } else if (tk == "mem") {
          a.tasp.target_mem = static_cast<std::uint32_t>(
              get_u64_range(tv, tp, 0, 0xFFFFFFFFull));
        } else if (tk == "mem_mask") {
          a.tasp.mem_mask = static_cast<std::uint32_t>(
              get_u64_range(tv, tp, 0, 0xFFFFFFFFull));
        } else if (tk == "payload_states") {
          a.tasp.payload_states = get_int_range(tv, tp, 2, 256);
        } else if (tk == "min_gap") {
          a.tasp.min_gap = get_u64_range(tv, tp, 1, 1'000'000);
        } else if (tk == "only_head_flits") {
          a.tasp.only_head_flits = get_bool(tv, tp);
        } else if (tk == "pattern") {
          a.tasp.pattern = payload_pattern_from_string(get_string(tv, tp), tp);
        } else {
          bad(tp, "unknown key");
        }
      }
    } else {
      bad(p, "unknown key");
    }
  }
  if (!have_link) bad(path, "missing \"link\"");
  return a;
}

Value implant_to_json(const sim::AttackSpec& a) {
  json::Object link;
  link.emplace_back("router", Value(static_cast<int>(a.link.from)));
  link.emplace_back("dir", Value(direction_to_json_string(a.link.dir)));
  json::Object tasp;
  tasp.emplace_back("kind", Value(trojan::to_string(a.tasp.kind)));
  tasp.emplace_back("src", Value(static_cast<int>(a.tasp.target_src)));
  tasp.emplace_back("dest", Value(static_cast<int>(a.tasp.target_dest)));
  tasp.emplace_back("vc", Value(static_cast<int>(a.tasp.target_vc)));
  tasp.emplace_back("thread", Value(static_cast<int>(a.tasp.target_thread)));
  tasp.emplace_back("mem", Value(hex_string(a.tasp.target_mem)));
  tasp.emplace_back("mem_mask", Value(hex_string(a.tasp.mem_mask)));
  tasp.emplace_back("payload_states", Value(a.tasp.payload_states));
  tasp.emplace_back("min_gap",
                    Value(static_cast<double>(a.tasp.min_gap)));
  tasp.emplace_back("only_head_flits", Value(a.tasp.only_head_flits));
  tasp.emplace_back("pattern", Value(payload_pattern_to_string(a.tasp.pattern)));
  json::Object implant;
  implant.emplace_back("link", Value(std::move(link)));
  implant.emplace_back("enable_at",
                       Value(static_cast<double>(a.enable_killsw_at)));
  implant.emplace_back("tasp", Value(std::move(tasp)));
  return Value(std::move(implant));
}

// --- noc block ---

void noc_from_json(const Value& v, NocConfig& noc, const std::string& path) {
  for (const auto& [key, val] : get_object(v, path)) {
    const std::string p = path + "." + key;
    if (key == "topology") {
      const std::string& s = get_string(val, p);
      try {
        noc.topology = topology_kind_from_string(s);
      } catch (const std::exception&) {
        bad(p, "unknown topology \"" + s + "\" (expected cmesh/mesh/torus)");
      }
    } else if (key == "mesh_width") {
      noc.mesh_width = get_int_range(val, p, 2, 64);
    } else if (key == "mesh_height") {
      noc.mesh_height = get_int_range(val, p, 2, 64);
    } else if (key == "concentration") {
      noc.concentration = get_int_range(val, p, 1, 16);
    } else if (key == "vcs_per_port") {
      noc.vcs_per_port = get_int_range(val, p, 1, 16);
    } else if (key == "buffer_depth") {
      noc.buffer_depth = get_int_range(val, p, 1, 64);
    } else if (key == "retrans_scheme") {
      const std::string& s = get_string(val, p);
      try {
        noc.retrans_scheme = retransmission_scheme_from_string(s);
      } catch (const std::exception&) {
        bad(p, "unknown scheme \"" + s + "\" (expected output/per_vc)");
      }
    } else if (key == "retrans_depth") {
      noc.retrans_depth = get_int_range(val, p, 1, 64);
    } else if (key == "retrans_per_vc_depth") {
      noc.retrans_per_vc_depth = get_int_range(val, p, 1, 64);
    } else if (key == "ecc") {
      const std::string& s = get_string(val, p);
      try {
        noc.ecc_scheme = ecc_scheme_from_string(s);
      } catch (const std::exception&) {
        bad(p, "unknown ecc \"" + s + "\" (expected secded/parity/none)");
      }
    } else if (key == "injection_queue_depth") {
      noc.injection_queue_depth = get_int_range(val, p, 1, 1024);
    } else if (key == "tdm") {
      noc.tdm_enabled = get_bool(val, p);
    } else if (key == "active_step") {
      noc.active_step = get_bool(val, p);
    } else if (key == "step_threads") {
      noc.step_threads = get_int_range(val, p, 1, 256);
    } else {
      bad(p, "unknown key");
    }
  }
}

Value noc_to_json(const NocConfig& noc) {
  json::Object o;
  o.emplace_back("topology", Value(to_string(noc.topology)));
  o.emplace_back("mesh_width", Value(noc.mesh_width));
  o.emplace_back("mesh_height", Value(noc.mesh_height));
  o.emplace_back("concentration", Value(noc.concentration));
  o.emplace_back("vcs_per_port", Value(noc.vcs_per_port));
  o.emplace_back("buffer_depth", Value(noc.buffer_depth));
  o.emplace_back("retrans_scheme", Value(to_string(noc.retrans_scheme)));
  o.emplace_back("retrans_depth", Value(noc.retrans_depth));
  o.emplace_back("retrans_per_vc_depth", Value(noc.retrans_per_vc_depth));
  o.emplace_back("ecc", Value(to_string(noc.ecc_scheme)));
  o.emplace_back("injection_queue_depth", Value(noc.injection_queue_depth));
  o.emplace_back("tdm", Value(noc.tdm_enabled));
  o.emplace_back("active_step", Value(noc.active_step));
  o.emplace_back("step_threads", Value(noc.step_threads));
  return Value(std::move(o));
}

}  // namespace

sim::MitigationMode mitigation_mode_from_string(const std::string& s) {
  if (s == "none") return sim::MitigationMode::kNone;
  if (s == "lob") return sim::MitigationMode::kLOb;
  if (s == "reroute") return sim::MitigationMode::kReroute;
  throw SpecError("unknown mitigation mode \"" + s +
                  "\" (expected none/lob/reroute)");
}

AttackScenario attack_scenario_preset(const std::string& name) {
  AttackScenario sc;
  sc.name = name;
  if (name == "none") return sc;
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.enable_killsw_at = 1000;
  if (name == "single") {
    // The paper's setup: one dest-targeted TASP on the column-0 feeder.
    a.tasp.kind = trojan::TargetKind::kDest;
    a.tasp.target_dest = 0;
    sc.attacks.push_back(a);
  } else if (name == "mem") {
    // Application-targeted DPI on the Blackscholes memory footprint.
    a.tasp.kind = trojan::TargetKind::kMem;
    a.tasp.target_mem = traffic::blackscholes_profile().mem_base;
    a.tasp.mem_mask = 0xF0000000u;
    sc.attacks.push_back(a);
  } else if (name == "multi") {
    // Three implants on distinct dest-0 feeder links (Fig. 10's ~5-10%).
    for (const LinkRef l : {LinkRef{4, Direction::kNorth},
                            LinkRef{2, Direction::kWest},
                            LinkRef{8, Direction::kNorth}}) {
      sim::AttackSpec m;
      m.link = l;
      m.tasp.kind = trojan::TargetKind::kDest;
      m.tasp.target_dest = 0;
      m.enable_killsw_at = 1000;
      sc.attacks.push_back(m);
    }
  } else {
    throw SpecError("unknown attack scenario preset \"" + name +
                    "\" (expected none/single/mem/multi)");
  }
  return sc;
}

AttackScenario attack_scenario_from_json(const json::Value& v,
                                         EccScheme ecc) {
  if (v.is_string()) {
    AttackScenario sc = attack_scenario_preset(v.as_string());
    for (sim::AttackSpec& a : sc.attacks) a.tasp.ecc = ecc;
    return sc;
  }
  AttackScenario sc;
  bool have_name = false;
  for (const auto& [key, val] : get_object(v, "attacks[]")) {
    const std::string p = "attacks[]." + key;
    if (key == "name") {
      sc.name = get_string(val, p);
      have_name = true;
    } else if (key == "implants") {
      std::size_t i = 0;
      for (const Value& iv : get_array(val, p)) {
        sc.attacks.push_back(implant_from_json(
            iv, p + "[" + std::to_string(i) + "]", ecc));
        ++i;
      }
    } else {
      bad(p, "unknown key");
    }
  }
  if (!have_name || sc.name.empty()) {
    bad("attacks[]", "scenario needs a non-empty \"name\"");
  }
  return sc;
}

json::Value attack_scenario_to_json(const AttackScenario& sc) {
  json::Object o;
  o.emplace_back("name", Value(sc.name));
  json::Array implants;
  implants.reserve(sc.attacks.size());
  for (const sim::AttackSpec& a : sc.attacks) {
    implants.push_back(implant_to_json(a));
  }
  o.emplace_back("implants", Value(std::move(implants)));
  return Value(std::move(o));
}

SweepSpec sweep_spec_from_json(const json::Value& doc) {
  const json::Object& root = get_object(doc, "spec");
  SweepSpec spec;

  // The noc block decides the implant ECC tuning, so resolve it before the
  // attack scenarios regardless of document order.
  for (const auto& [key, val] : root) {
    if (key == "noc") noc_from_json(val, spec.base.noc, "noc");
  }

  for (const auto& [key, val] : root) {
    if (key == "noc") continue;  // handled above
    if (key == "modes") {
      spec.modes.clear();
      for (const Value& m : get_array(val, "modes")) {
        spec.modes.push_back(
            mitigation_mode_from_string(get_string(m, "modes[]")));
      }
      if (spec.modes.empty()) bad("modes", "must be non-empty");
    } else if (key == "attacks") {
      spec.attack_scenarios.clear();
      for (const Value& a : get_array(val, "attacks")) {
        spec.attack_scenarios.push_back(
            attack_scenario_from_json(a, spec.base.noc.ecc_scheme));
      }
      if (spec.attack_scenarios.empty()) bad("attacks", "must be non-empty");
    } else if (key == "profiles") {
      spec.profiles.clear();
      for (const Value& p : get_array(val, "profiles")) {
        const std::string& name = get_string(p, "profiles[]");
        try {
          (void)traffic::profile_by_name(name);
        } catch (const std::exception&) {
          bad("profiles[]", "unknown application profile \"" + name + "\"");
        }
        spec.profiles.push_back(name);
      }
      if (spec.profiles.empty()) bad("profiles", "must be non-empty");
    } else if (key == "rates") {
      spec.rate_scales.clear();
      for (const Value& r : get_array(val, "rates")) {
        const double x = get_number(r, "rates[]");
        if (!(x > 0.0) || !std::isfinite(x) || x > 1000.0) {
          bad("rates[]", "rate scale must be in (0, 1000]");
        }
        spec.rate_scales.push_back(x);
      }
      if (spec.rate_scales.empty()) bad("rates", "must be non-empty");
    } else if (key == "replicates") {
      spec.replicates = get_int_range(val, "replicates", 1, 100000);
    } else if (key == "seed") {
      spec.base_seed = get_u64(val, "seed");
    } else if (key == "cycles") {
      spec.run_cycles = get_u64_range(val, "cycles", 1, 100'000'000);
    } else if (key == "requests") {
      spec.total_requests = get_u64(val, "requests");
    } else if (key == "cycle_budget") {
      spec.cycle_budget = get_u64_range(val, "cycle_budget", 1,
                                        std::numeric_limits<Cycle>::max());
    } else if (key == "probe_period") {
      spec.probe_period = get_u64(val, "probe_period");
    } else if (key == "primary_domain") {
      spec.primary_domain =
          domain_from_string(get_string(val, "primary_domain"),
                             "primary_domain");
    } else if (key == "trace") {
      for (const auto& [tk, tv] : get_object(val, "trace")) {
        const std::string p = "trace." + tk;
        if (tk == "enabled") {
          spec.base.trace.enabled = get_bool(tv, p);
        } else if (tk == "capacity") {
          spec.base.trace.capacity = static_cast<std::size_t>(
              get_u64_range(tv, p, 16, std::size_t{1} << 24));
        } else {
          bad(p, "unknown key");
        }
      }
    } else if (key == "background") {
      if (val.is_null()) {
        spec.background.reset();
        continue;
      }
      BackgroundTraffic bg;
      for (const auto& [bk, bv] : get_object(val, "background")) {
        const std::string p = "background." + bk;
        if (bk == "profile") {
          bg.profile = get_string(bv, p);
          try {
            (void)traffic::profile_by_name(bg.profile);
          } catch (const std::exception&) {
            bad(p, "unknown application profile \"" + bg.profile + "\"");
          }
        } else if (bk == "rate") {
          bg.injection_rate = get_number(bv, p);
          if (!std::isfinite(bg.injection_rate) || bg.injection_rate < 0.0 ||
              bg.injection_rate > 10.0) {
            bad(p, "rate must be in [0, 10]");
          }
        } else if (bk == "domain") {
          bg.domain = domain_from_string(get_string(bv, p), p);
        } else {
          bad(p, "unknown key");
        }
      }
      spec.background = bg;
    } else {
      bad(key, "unknown key in sweep spec");
    }
  }

  try {
    spec.base.noc.validate();
  } catch (const std::exception& e) {
    throw SpecError(std::string("noc: invalid configuration: ") + e.what());
  }
  return spec;
}

SweepSpec parse_sweep_spec(const std::string& text) {
  return sweep_spec_from_json(json::parse(text));
}

json::Value sweep_spec_to_json(const SweepSpec& spec) {
  json::Object o;
  json::Array modes;
  for (const sim::MitigationMode m : spec.modes) {
    modes.emplace_back(sim::to_string(m));
  }
  o.emplace_back("modes", Value(std::move(modes)));
  json::Array attacks;
  for (const AttackScenario& sc : spec.attack_scenarios) {
    attacks.push_back(attack_scenario_to_json(sc));
  }
  o.emplace_back("attacks", Value(std::move(attacks)));
  json::Array profiles;
  for (const std::string& p : spec.profiles) profiles.emplace_back(p);
  o.emplace_back("profiles", Value(std::move(profiles)));
  json::Array rates;
  for (const double r : spec.rate_scales) rates.emplace_back(r);
  o.emplace_back("rates", Value(std::move(rates)));
  o.emplace_back("replicates", Value(spec.replicates));
  o.emplace_back("seed", Value(hex_string(spec.base_seed)));
  o.emplace_back("cycles", Value(static_cast<double>(spec.run_cycles)));
  o.emplace_back("requests", Value(static_cast<double>(spec.total_requests)));
  o.emplace_back("cycle_budget",
                 Value(static_cast<double>(spec.cycle_budget)));
  o.emplace_back("probe_period",
                 Value(static_cast<double>(spec.probe_period)));
  o.emplace_back("primary_domain",
                 Value(spec.primary_domain == TdmDomain::kD1 ? "d1" : "d2"));
  if (spec.base.trace.enabled) {
    json::Object tr;
    tr.emplace_back("enabled", Value(true));
    tr.emplace_back("capacity",
                    Value(static_cast<double>(spec.base.trace.capacity)));
    o.emplace_back("trace", Value(std::move(tr)));
  }
  if (spec.background) {
    json::Object bg;
    bg.emplace_back("profile", Value(spec.background->profile));
    bg.emplace_back("rate", Value(spec.background->injection_rate));
    bg.emplace_back("domain",
                    Value(spec.background->domain == TdmDomain::kD1 ? "d1"
                                                                    : "d2"));
    o.emplace_back("background", Value(std::move(bg)));
  }
  o.emplace_back("noc", noc_to_json(spec.base.noc));
  return Value(std::move(o));
}

}  // namespace htnoc::sweep
