#include "sweep/spec.hpp"

#include <cstdio>

#include "common/expect.hpp"

namespace htnoc::sweep {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string format_rate(double scale) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3g", scale);
  return buf;
}

}  // namespace

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  return splitmix64(seed ^ splitmix64(salt));
}

std::uint64_t derive_run_seed(std::uint64_t base_seed,
                              std::uint64_t point_linear,
                              std::uint64_t replicate) {
  // Three chained splitmix64 rounds decorrelate the coordinates; xor alone
  // would alias {point=1, rep=0} with {point=0, rep=1}.
  return splitmix64(splitmix64(splitmix64(base_seed) ^ point_linear) ^
                    (replicate * 0xd1342543de82ef95ULL));
}

std::string RunSpec::point_label() const {
  std::string s = "mode=" + sim::to_string(mode);
  s += " attack=" + attack_name;
  s += " profile=" + profile;
  s += " rate=" + format_rate(rate_scale);
  return s;
}

std::string RunSpec::label() const {
  return point_label() + " rep=" + std::to_string(replicate);
}

std::vector<RunSpec> expand(const SweepSpec& spec) {
  HTNOC_EXPECT(!spec.modes.empty());
  HTNOC_EXPECT(!spec.attack_scenarios.empty());
  HTNOC_EXPECT(!spec.profiles.empty());
  HTNOC_EXPECT(!spec.rate_scales.empty());
  HTNOC_EXPECT(spec.replicates >= 1);
  for (const AttackScenario& a : spec.attack_scenarios) {
    HTNOC_EXPECT(!a.name.empty());
  }

  std::vector<RunSpec> runs;
  runs.reserve(spec.num_grid_points() *
               static_cast<std::size_t>(spec.replicates));
  std::size_t linear = 0;
  for (std::size_t mi = 0; mi < spec.modes.size(); ++mi) {
    for (std::size_t ai = 0; ai < spec.attack_scenarios.size(); ++ai) {
      for (std::size_t pi = 0; pi < spec.profiles.size(); ++pi) {
        for (std::size_t ri = 0; ri < spec.rate_scales.size(); ++ri) {
          for (int rep = 0; rep < spec.replicates; ++rep) {
            RunSpec rs;
            rs.point = {mi, ai, pi, ri, linear};
            rs.replicate = rep;
            rs.seed = derive_run_seed(spec.base_seed, linear,
                                      static_cast<std::uint64_t>(rep));
            rs.mode = spec.modes[mi];
            rs.attack_name = spec.attack_scenarios[ai].name;
            rs.attacks = spec.attack_scenarios[ai].attacks;
            rs.profile = spec.profiles[pi];
            rs.rate_scale = spec.rate_scales[ri];
            rs.trace = spec.base.trace;
            runs.push_back(std::move(rs));
          }
          ++linear;
        }
      }
    }
  }
  return runs;
}

}  // namespace htnoc::sweep
