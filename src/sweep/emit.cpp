#include "sweep/emit.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace htnoc::sweep {

namespace {

/// Shortest exact decimal form of a double: integral values print as plain
/// integers ("500", not "5e+02"); everything else tries increasing "%.g"
/// precision until the text round-trips ("%.17g" alone is exact but prints
/// 0.10000000000000001).
std::string fmt_double(double v) {
  char buf[40];
  if (v == 0.0) return "0";  // also normalizes -0
  if (v == std::floor(v) && std::fabs(v) < 9007199254740992.0) {  // 2^53
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == v) break;
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void write_summary_csv(std::ostream& os, const SweepResult& result) {
  os << "point,label,replicates,failures,metric,mean,stddev,min,max\n";
  const auto& names = RunResult::metric_names();
  for (const GridSummary& gs : result.summary) {
    for (std::size_t k = 0; k < names.size(); ++k) {
      const MetricAggregate& a = gs.metrics[k];
      os << gs.point_linear << ",\"" << gs.label << "\"," << gs.replicates
         << ',' << gs.failures << ',' << names[k] << ',' << fmt_double(a.mean)
         << ',' << fmt_double(a.stddev) << ',' << fmt_double(a.min) << ','
         << fmt_double(a.max) << '\n';
    }
  }
}

void write_runs_csv(std::ostream& os, const SweepResult& result) {
  const auto& names = RunResult::metric_names();
  os << "point,label,replicate,seed,ok";
  for (const std::string& n : names) os << ',' << n;
  os << '\n';
  for (const RunResult& r : result.runs) {
    os << r.spec.point.linear << ",\"" << r.spec.point_label() << "\","
       << r.spec.replicate << ',' << r.spec.seed << ',' << (r.ok ? 1 : 0);
    if (r.ok) {
      for (const double m : r.metrics()) os << ',' << fmt_double(m);
    } else {
      for (std::size_t k = 0; k < names.size(); ++k) os << ',';
    }
    os << '\n';
  }
}

void write_json(std::ostream& os, const SweepResult& result) {
  const auto& names = RunResult::metric_names();
  os << "{\n  \"metric_names\": [";
  for (std::size_t k = 0; k < names.size(); ++k) {
    os << (k ? ", " : "") << '"' << names[k] << '"';
  }
  os << "],\n  \"runs\": [\n";
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    const RunResult& r = result.runs[i];
    os << "    {\"point\": " << r.spec.point.linear
       << ", \"replicate\": " << r.spec.replicate
       // uint64 seeds exceed JSON's exact-integer range; keep as a string.
       << ", \"seed\": \"" << r.spec.seed << '"' << ", \"label\": \""
       << json_escape(r.spec.point_label()) << '"'
       << ", \"ok\": " << (r.ok ? "true" : "false");
    if (r.ok) {
      os << ", \"completed\": " << (r.completed ? "true" : "false")
         << ", \"metrics\": [";
      const std::vector<double> m = r.metrics();
      for (std::size_t k = 0; k < m.size(); ++k) {
        os << (k ? ", " : "") << fmt_double(m[k]);
      }
      os << ']';
    } else {
      os << ", \"error\": \"" << json_escape(r.error) << '"';
    }
    os << '}' << (i + 1 < result.runs.size() ? "," : "") << '\n';
  }
  os << "  ],\n  \"summary\": [\n";
  for (std::size_t i = 0; i < result.summary.size(); ++i) {
    const GridSummary& gs = result.summary[i];
    os << "    {\"point\": " << gs.point_linear << ", \"label\": \""
       << json_escape(gs.label) << '"' << ", \"replicates\": " << gs.replicates
       << ", \"failures\": " << gs.failures << ", \"metrics\": {";
    for (std::size_t k = 0; k < names.size(); ++k) {
      const MetricAggregate& a = gs.metrics[k];
      os << (k ? ", " : "") << '"' << names[k] << "\": {\"mean\": "
         << fmt_double(a.mean) << ", \"stddev\": " << fmt_double(a.stddev)
         << ", \"min\": " << fmt_double(a.min)
         << ", \"max\": " << fmt_double(a.max) << '}';
    }
    os << "}}" << (i + 1 < result.summary.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

std::string to_json(const SweepResult& result) {
  std::ostringstream os;
  write_json(os, result);
  return os.str();
}

}  // namespace htnoc::sweep
