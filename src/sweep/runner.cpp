#include "sweep/runner.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "common/expect.hpp"
#include "traffic/app_profile.hpp"

namespace htnoc::sweep {

const std::vector<std::string>& RunResult::metric_names() {
  static const std::vector<std::string> kNames = {
      "delivered",         "avg_latency",      "latency_max",
      "requests",          "injected",         "flits_injected",
      "backlog_peak",      "bg_delivered",     "trojan_injections",
      "lob_successes",     "lob_log_hits",     "links_disabled",
      "packets_purged",    "reconfigurations", "reroutes_refused",
      "completed",         "cycles",           "util_input",
      "util_output",       "util_injection",   "util_blocked",
      "util_majority_full", "util_all_full",
  };
  return kNames;
}

std::vector<double> RunResult::metrics() const {
  return {
      static_cast<double>(traffic.packets_delivered),
      traffic.avg_latency(),
      static_cast<double>(traffic.latency_max),
      static_cast<double>(traffic.requests_generated),
      static_cast<double>(traffic.packets_injected),
      static_cast<double>(traffic.flits_injected),
      static_cast<double>(traffic.backlog_peak),
      static_cast<double>(background.packets_delivered),
      static_cast<double>(trojan_injections),
      static_cast<double>(lob_successes),
      static_cast<double>(lob_log_hits),
      static_cast<double>(sim.links_disabled),
      static_cast<double>(sim.packets_purged),
      static_cast<double>(sim.routing_reconfigurations),
      static_cast<double>(sim.reroutes_refused_disconnect),
      completed ? 1.0 : 0.0,
      static_cast<double>(cycles),
      static_cast<double>(final_util.input_port_flits),
      static_cast<double>(final_util.output_port_flits),
      static_cast<double>(final_util.injection_port_flits),
      static_cast<double>(final_util.routers_with_blocked_port),
      static_cast<double>(final_util.routers_majority_cores_full),
      static_cast<double>(final_util.routers_all_cores_full),
  };
}

MetricAggregate aggregate_values(const std::vector<double>& v) {
  MetricAggregate a;
  if (v.empty()) return a;
  double sum = 0.0;
  a.min = v.front();
  a.max = v.front();
  for (const double x : v) {
    sum += x;
    if (x < a.min) a.min = x;
    if (x > a.max) a.max = x;
  }
  a.mean = sum / static_cast<double>(v.size());
  if (v.size() >= 2) {
    double ss = 0.0;
    for (const double x : v) ss += (x - a.mean) * (x - a.mean);
    a.stddev = std::sqrt(ss / static_cast<double>(v.size() - 1));
  }
  return a;
}

std::vector<GridSummary> aggregate(const std::vector<RunResult>& runs) {
  const std::size_t nm = RunResult::metric_names().size();
  std::vector<GridSummary> out;
  // Runs arrive in expansion order: all replicates of a point adjacent.
  for (std::size_t i = 0; i < runs.size();) {
    const std::size_t point = runs[i].spec.point.linear;
    GridSummary gs;
    gs.point_linear = point;
    gs.label = runs[i].spec.point_label();
    std::vector<std::vector<double>> columns(nm);
    for (; i < runs.size() && runs[i].spec.point.linear == point; ++i) {
      if (!runs[i].ok) {
        ++gs.failures;
        continue;
      }
      const std::vector<double> m = runs[i].metrics();
      HTNOC_EXPECT(m.size() == nm);
      for (std::size_t k = 0; k < nm; ++k) columns[k].push_back(m[k]);
      ++gs.replicates;
    }
    gs.metrics.reserve(nm);
    for (std::size_t k = 0; k < nm; ++k) {
      gs.metrics.push_back(aggregate_values(columns[k]));
    }
    out.push_back(std::move(gs));
  }
  return out;
}

int SweepRunner::resolve_threads(int requested, std::size_t num_runs) {
  return resolve_threads(requested, num_runs, 1);
}

int SweepRunner::resolve_threads(int requested, std::size_t num_runs,
                                 int step_threads) {
  int n = requested;
  if (n <= 0) {
    if (const char* env = std::getenv("HTNOC_JOBS")) {
      n = std::atoi(env);
    }
  }
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    // Auto-resolution composes with the per-run parallel step: each run
    // occupies step_threads cores, so the run-level pool shrinks to keep
    // jobs x step_threads <= hardware_concurrency (explicit requests and
    // $HTNOC_JOBS are the user's call and pass through untouched).
    if (step_threads > 1) n /= step_threads;
  }
  if (n <= 0) n = 1;
  if (num_runs >= 1 && static_cast<std::size_t>(n) > num_runs) {
    n = static_cast<int>(num_runs);
  }
  return n;
}

RunResult SweepRunner::run_single(const SweepSpec& spec, const RunSpec& rs) {
  RunResult res;
  res.spec = rs;

  sim::SimConfig sc = spec.base;
  sc.mode = rs.mode;
  sc.attacks = rs.attacks;
  sc.seed = mix_seed(rs.seed, 1);
  sc.noc.seed = mix_seed(rs.seed, 2);
  sc.trace = rs.trace;
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();

  traffic::DeliveryDispatcher disp;
  disp.install(net);

  traffic::AppProfile profile = traffic::profile_by_name(rs.profile);
  profile.injection_rate *= rs.rate_scale;
  traffic::AppTrafficModel model(net.geometry(), profile);
  traffic::TrafficGenerator::Params gp;
  gp.seed = mix_seed(rs.seed, 3);
  gp.total_requests = spec.total_requests;
  gp.domain = spec.primary_domain;
  if (spec.transform_factory) gp.packet_transform = spec.transform_factory(rs);
  traffic::TrafficGenerator gen(net, model, gp, disp);

  std::unique_ptr<traffic::TrafficGenerator> bg;
  std::unique_ptr<traffic::AppTrafficModel> bg_model;
  if (spec.background) {
    traffic::AppProfile bp = traffic::profile_by_name(spec.background->profile);
    if (spec.background->injection_rate > 0.0) {
      bp.injection_rate = spec.background->injection_rate;
    }
    bg_model = std::make_unique<traffic::AppTrafficModel>(net.geometry(), bp);
    traffic::TrafficGenerator::Params bgp;
    bgp.seed = mix_seed(rs.seed, 4);
    bgp.domain = spec.background->domain;
    bg = std::make_unique<traffic::TrafficGenerator>(net, *bg_model, bgp,
                                                     disp);
  }

  simulator.set_drop_callback([&](PacketId id) {
    gen.requeue(id);       // no-op for ids it does not own
    if (bg) bg->requeue(id);
  });

  const bool completion_mode = spec.total_requests > 0;
  const Cycle horizon = completion_mode ? spec.cycle_budget : spec.run_cycles;
  for (Cycle c = 0; c < horizon; ++c) {
    if (completion_mode && gen.done()) break;
    if (bg) bg->step();
    gen.step();
    simulator.step();
    ++res.cycles;
    if (spec.probe_period > 0 && net.now() % spec.probe_period == 0) {
      res.util_series.push_back(net.sample_utilization());
      res.throughput_series.push_back(
          {net.now(), gen.stats().packets_delivered,
           bg ? bg->stats().packets_delivered : 0});
    }
  }

  res.completed = completion_mode ? gen.done() : true;
  res.traffic = gen.stats();
  if (bg) res.background = bg->stats();
  res.sim = simulator.stats();
  for (std::size_t t = 0; t < simulator.num_trojans(); ++t) {
    res.trojan_injections += simulator.tasp(t).stats().injections;
  }
  if (simulator.has_lob()) {
    const MeshGeometry& geom = net.geometry();
    for (RouterId r = 0; r < geom.num_routers(); ++r) {
      for (int port = 0; port < 4; ++port) {
        if (!geom.has_neighbor(r, port_direction(port))) continue;
        const auto& ls = simulator.lob(r, port).stats();
        res.lob_successes += ls.successes;
        res.lob_log_hits += ls.log_hits;
      }
    }
  }
  res.final_util = net.sample_utilization();
  if (const trace::TraceSink* sink = simulator.trace_sink()) {
    res.trace = std::make_shared<const trace::TraceLog>(sink->log());
  }
  if (const verify::NetworkInvariantAuditor* aud = simulator.auditor();
      aud != nullptr && !aud->clean()) {
    res.ok = false;
    res.error = "invariant audit failed:\n" + aud->report();
    return res;
  }
  res.ok = true;
  return res;
}

SweepResult SweepRunner::run(const SweepSpec& spec) const {
  std::vector<RunSpec> runs = expand(spec);
  SweepResult out;
  out.runs.resize(runs.size());
  const int nthreads = resolve_threads(opts_.num_threads, runs.size(),
                                       spec.base.noc.step_threads);
  out.threads_used = nthreads;

  // Index-addressed result slots + an atomic work cursor: no ordering or
  // locking anywhere, and the output is independent of the schedule.
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> stopped{false};
  auto worker = [&]() {
    for (;;) {
      // Cooperative cancellation at run granularity: the stop token is
      // polled before a claim, never mid-run, so every claimed run
      // finishes whole and the claimed set stays the prefix [0, cursor).
      if (opts_.should_stop && opts_.should_stop()) {
        stopped.store(true, std::memory_order_relaxed);
        return;
      }
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= runs.size()) return;
      try {
        out.runs[i] = run_single(spec, runs[i]);
      } catch (const std::exception& e) {
        out.runs[i].spec = runs[i];
        out.runs[i].ok = false;
        out.runs[i].error = e.what();
      } catch (...) {
        out.runs[i].spec = runs[i];
        out.runs[i].ok = false;
        out.runs[i].error = "unknown exception";
      }
      if (opts_.progress) {
        opts_.progress(done.fetch_add(1, std::memory_order_relaxed) + 1,
                       runs.size());
      }
    }
  };

  if (nthreads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(nthreads));
    for (int t = 0; t < nthreads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (stopped.load(std::memory_order_relaxed)) {
    // Every claimed index is < cursor and every index < cursor was claimed
    // (and has finished, since workers re-poll only between runs), so the
    // completed work is exactly this prefix.
    out.cancelled = true;
    out.runs.resize(std::min(cursor.load(std::memory_order_relaxed),
                             runs.size()));
  }
  out.summary = aggregate(out.runs);
  return out;
}

}  // namespace htnoc::sweep
