// Experiment sweep specification: a cartesian grid over the axes the paper
// (and its successors) actually vary — mitigation mode × attack placement ×
// traffic pattern × injection rate × seed replicate — expanded into a flat
// list of fully-resolved, independently-runnable `RunSpec`s.
//
// Determinism contract: every run's RNG seed is derived purely from
// `{base_seed, grid-point linear index, replicate}` with a splitmix64-style
// mix, so a run is bit-reproducible in isolation, regardless of which
// worker thread executes it, in what order, or alongside which other runs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "noc/flit.hpp"
#include "sim/simulator.hpp"

namespace htnoc::sweep {

/// One named trojan placement evaluated as a grid axis value (e.g. "none",
/// "single_tasp", "5pct_infected").
struct AttackScenario {
  std::string name;
  std::vector<sim::AttackSpec> attacks;
};

/// A secondary traffic source sharing the network with the primary one
/// (e.g. the D1 background domain of the Fig. 12 TDM experiment).
struct BackgroundTraffic {
  std::string profile = "fft";
  /// Absolute injection-rate override; <= 0 keeps the profile's own rate.
  double injection_rate = 0.0;
  TdmDomain domain = TdmDomain::kD1;
};

/// Position of a run in the sweep grid. `linear` indexes grid points in
/// expansion order (mode-major, then attack, profile, rate); replicates of
/// the same point share a `linear` value.
struct GridPoint {
  std::size_t mode_idx = 0;
  std::size_t attack_idx = 0;
  std::size_t profile_idx = 0;
  std::size_t rate_idx = 0;
  std::size_t linear = 0;
};

/// A fully-resolved unit of work: everything `run_single` needs, with no
/// reference back to axis containers.
struct RunSpec {
  GridPoint point;
  int replicate = 0;
  std::uint64_t seed = 0;  ///< Derived; see derive_run_seed().

  sim::MitigationMode mode = sim::MitigationMode::kNone;
  std::string attack_name;
  std::vector<sim::AttackSpec> attacks;
  std::string profile;
  double rate_scale = 1.0;

  /// Per-run trace capture, copied from SweepSpec::base.trace by expand().
  /// Replay tooling can flip `enabled` on one RunSpec to capture a single
  /// grid point without re-running (or tracing) the whole sweep.
  trace::TraceConfig trace;

  /// "mode=lob attack=single profile=blackscholes rate=1.00" — stable key
  /// shared by all replicates of a grid point.
  [[nodiscard]] std::string point_label() const;
  /// point_label() plus " rep=<k>".
  [[nodiscard]] std::string label() const;
};

/// The sweep grid plus everything shared by all runs (base configuration,
/// termination rule, observation settings).
struct SweepSpec {
  /// Template configuration; per-run the engine overrides `mode`,
  /// `attacks` and the seeds from the grid point. The fabric — topology
  /// kind, mesh dimensions, concentration — is set here and shared by every
  /// run of the sweep (`base.noc.topology` et al.; see src/topology).
  sim::SimConfig base;

  // --- grid axes (each must be non-empty; validated by expand()) ---
  std::vector<sim::MitigationMode> modes{sim::MitigationMode::kNone};
  std::vector<AttackScenario> attack_scenarios{{"none", {}}};
  std::vector<std::string> profiles{"blackscholes"};
  /// Multipliers applied to the profile's injection_rate.
  std::vector<double> rate_scales{1.0};
  int replicates = 1;

  std::uint64_t base_seed = 0x5EED;

  // --- termination ---
  /// total_requests == 0: run exactly `run_cycles` cycles (figure mode).
  /// total_requests  > 0: run to workload completion or `cycle_budget`.
  Cycle run_cycles = 3000;
  std::uint64_t total_requests = 0;
  Cycle cycle_budget = 2'000'000;

  // --- observation ---
  /// Sample utilization + throughput every `probe_period` cycles (0 = off).
  Cycle probe_period = 0;

  /// TDM domain of the primary generator (the measured application).
  TdmDomain primary_domain = TdmDomain::kD1;
  /// Optional second generator (e.g. TDM background load).
  std::optional<BackgroundTraffic> background;

  /// Optional per-packet transform factory (e.g. e2e obfuscation). Called
  /// once per run, possibly concurrently from several worker threads, so it
  /// must be re-entrant; the returned transform is owned by that run alone.
  std::function<std::function<void(PacketInfo&)>(const RunSpec&)>
      transform_factory;

  [[nodiscard]] std::size_t num_grid_points() const noexcept {
    return modes.size() * attack_scenarios.size() * profiles.size() *
           rate_scales.size();
  }
};

/// Deterministic per-run seed: a splitmix64-style mix of the three
/// coordinates. Identical for a given {base_seed, point, replicate} on
/// every platform, thread count and schedule.
[[nodiscard]] std::uint64_t derive_run_seed(std::uint64_t base_seed,
                                            std::uint64_t point_linear,
                                            std::uint64_t replicate);

/// Stateless re-mix for deriving independent sub-streams (network RNG,
/// traffic RNG, ...) from one run seed.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt);

/// Expand the grid into runs, replicate-minor (all replicates of a grid
/// point are adjacent, grid points in mode-major order). Throws
/// ContractViolation on an empty axis or replicates < 1.
[[nodiscard]] std::vector<RunSpec> expand(const SweepSpec& spec);

}  // namespace htnoc::sweep
