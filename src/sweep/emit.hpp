// Deterministic CSV / JSON serialization of sweep results. Output depends
// only on the runs' contents (never on thread count, schedule or wall
// clock), so byte-comparing two emissions is a valid determinism check —
// the cross-mode determinism tests and CI rely on that.
#pragma once

#include <ostream>
#include <string>

#include "sweep/runner.hpp"

namespace htnoc::sweep {

/// Long-format aggregate table: one row per (grid point, metric) with
/// mean/stddev/min/max over the point's successful replicates.
void write_summary_csv(std::ostream& os, const SweepResult& result);

/// Per-run scalar metrics, one row per run (replicates included).
void write_runs_csv(std::ostream& os, const SweepResult& result);

/// Full result (per-run metrics + aggregates) as a single JSON document.
/// threads_used is deliberately omitted.
void write_json(std::ostream& os, const SweepResult& result);

/// write_json into a string (the determinism tests byte-compare these).
[[nodiscard]] std::string to_json(const SweepResult& result);

}  // namespace htnoc::sweep
