// Thread-pool execution of an expanded sweep. Each run owns its entire
// simulation state (Simulator, generators, probes, RNG streams seeded from
// the RunSpec), workers claim runs off a lock-free atomic cursor, and every
// result is written into a pre-allocated slot addressed by run index — so
// the result vector, the aggregates and the serialized output are
// byte-identical whether the sweep ran on 1 thread or 64.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <memory>

#include "noc/network.hpp"
#include "sweep/spec.hpp"
#include "trace/sink.hpp"
#include "traffic/generator.hpp"

namespace htnoc::sweep {

/// Cumulative deliveries at a probe sampling instant (the raw material of
/// the Fig. 11/12 time-series).
struct ThroughputSample {
  Cycle cycle = 0;
  std::uint64_t primary_delivered = 0;
  std::uint64_t background_delivered = 0;
};

/// Everything one run produced. Scalar metrics are exposed as a fixed
/// name->value schema (metric_names() / metrics()) so aggregation and the
/// emitters never hard-code field lists twice.
struct RunResult {
  RunSpec spec;
  bool ok = false;
  std::string error;  ///< Exception text when ok == false.

  /// Workload finished inside the budget (always true in fixed-cycle mode).
  bool completed = false;
  Cycle cycles = 0;

  traffic::TrafficGenerator::Stats traffic;     ///< Primary generator.
  traffic::TrafficGenerator::Stats background;  ///< Zeros when unused.
  sim::Simulator::Stats sim;
  std::uint64_t trojan_injections = 0;
  std::uint64_t lob_successes = 0;
  std::uint64_t lob_log_hits = 0;
  Network::UtilizationSample final_util;

  // Populated only when spec.probe_period > 0.
  std::vector<Network::UtilizationSample> util_series;
  std::vector<ThroughputSample> throughput_series;

  /// Captured event trace; non-null only when the run's trace config was
  /// enabled (and tracing is compiled in). Shared so copying results stays
  /// cheap; the log itself is immutable once the run finishes.
  std::shared_ptr<const trace::TraceLog> trace;

  /// Scalar metric values, parallel to metric_names().
  [[nodiscard]] std::vector<double> metrics() const;
  [[nodiscard]] static const std::vector<std::string>& metric_names();
};

struct MetricAggregate {
  double mean = 0.0;
  double stddev = 0.0;  ///< Sample stddev (n-1); 0 when n < 2.
  double min = 0.0;
  double max = 0.0;
};

/// Mean/stddev/min/max over a metric's replicate values, accumulated in
/// index order (deterministic FP summation order).
[[nodiscard]] MetricAggregate aggregate_values(const std::vector<double>& v);

/// Aggregated replicates of one grid point.
struct GridSummary {
  std::size_t point_linear = 0;
  std::string label;    ///< RunSpec::point_label() of the point.
  int replicates = 0;   ///< Successful runs aggregated.
  int failures = 0;     ///< Replicates that errored (excluded from stats).
  std::vector<MetricAggregate> metrics;  ///< Parallel to metric_names().
};

struct SweepResult {
  std::vector<RunResult> runs;       ///< In expansion order.
  std::vector<GridSummary> summary;  ///< One per grid point, in order.
  int threads_used = 1;  ///< Informational; never serialized by emitters.
  /// True when Options::should_stop ended the sweep early; `runs` then
  /// holds exactly the claimed prefix of the expansion order.
  bool cancelled = false;

  [[nodiscard]] std::size_t failures() const {
    std::size_t n = 0;
    for (const RunResult& r : runs) n += r.ok ? 0 : 1;
    return n;
  }
};

/// Group runs by grid point (expansion order) and aggregate each metric
/// over the point's successful replicates.
[[nodiscard]] std::vector<GridSummary> aggregate(
    const std::vector<RunResult>& runs);

class SweepRunner {
 public:
  struct Options {
    /// Worker threads. <= 0: use $HTNOC_JOBS if set, else
    /// hardware_concurrency divided by the per-run step_threads (so
    /// sweep-level × step-level parallelism never oversubscribes the
    /// machine; see docs/SCALING.md). An explicit request is taken as-is.
    /// Always clamped to [1, number of runs].
    int num_threads = 0;

    /// Invoked after each run finishes with (runs completed so far, total
    /// runs). Called from worker threads, possibly concurrently — the
    /// callee synchronizes. Purely observational: it must not (and cannot)
    /// affect results, which stay byte-identical with or without it. The
    /// server's /runs endpoint feeds per-job progress from this.
    std::function<void(std::size_t, std::size_t)> progress = nullptr;

    /// Cooperative stop token, polled before each run is claimed (run
    /// granularity: a run in flight always finishes whole). When it returns
    /// true, no further runs start, the claimed prefix completes, and the
    /// result comes back with `cancelled == true` and `runs` truncated to
    /// that prefix. Called from worker threads, possibly concurrently — it
    /// must be thread-safe (typically a load of an std::atomic<bool>). The
    /// server's DELETE /runs/<id> feeds this; like `progress` it is not
    /// part of the spec document (the spec codec never sees it). Because
    /// workers claim run indices off a single atomic cursor, the completed
    /// set is always the exact prefix [0, k) — so a cancelled sweep's
    /// emitted artifacts for a fixed stop point k are byte-identical to a
    /// sweep over the first k runs.
    std::function<bool()> should_stop = nullptr;
  };

  SweepRunner() = default;
  explicit SweepRunner(Options opts) : opts_(opts) {}

  /// Resolve a requested thread count against the environment and the
  /// amount of work (exposed for tests).
  [[nodiscard]] static int resolve_threads(int requested,
                                           std::size_t num_runs);

  /// As above, composed with intra-run stepping parallelism: when the
  /// run-level count is auto-resolved from the hardware, it is divided by
  /// `step_threads` so jobs × step_threads stays within the core budget.
  /// Explicit requests (> 0, or $HTNOC_JOBS) are honored unchanged.
  [[nodiscard]] static int resolve_threads(int requested,
                                           std::size_t num_runs,
                                           int step_threads);

  /// Expand and execute the whole sweep. A run that throws is recorded in
  /// its slot (ok == false, error set); the remaining runs still execute.
  [[nodiscard]] SweepResult run(const SweepSpec& spec) const;

  /// Execute one fully-resolved run in the calling thread — deterministic
  /// replay of any grid point from its RunSpec (throws on failure).
  [[nodiscard]] static RunResult run_single(const SweepSpec& spec,
                                            const RunSpec& rs);

 private:
  Options opts_{};
};

}  // namespace htnoc::sweep
