// JSON codec for SweepSpec — the single source of truth for experiment
// specs shared by `sweep_cli --spec`, the simulation server's HTTP job
// submission and the tests, so the CLI and the daemon cannot drift.
//
// Contract:
//   * parsing is strict — unknown keys, wrong types and out-of-range
//     values raise SpecError naming the offending field;
//   * serialization is canonical — every supported field is emitted, in a
//     fixed order, so `to_json(from_json(doc))` is a fixed point and two
//     equal specs serialize to identical bytes;
//   * uint64-valued fields (seeds) are serialized as strings ("0x5eed")
//     because JSON numbers lose exactness above 2^53; parsing accepts a
//     number or a decimal/hex string everywhere an integer is expected.
//
// The schema is documented field-by-field in docs/SERVER.md.
#pragma once

#include <stdexcept>
#include <string>

#include "common/json.hpp"
#include "sweep/spec.hpp"

namespace htnoc::sweep {

/// Spec validation/parse failure; the message names the JSON path.
class SpecError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Parse a full sweep spec from its JSON document. Strict (see above);
/// fields left out of the document keep SweepSpec's defaults.
[[nodiscard]] SweepSpec sweep_spec_from_json(const json::Value& doc);

/// Convenience: json::parse + sweep_spec_from_json (ParseError passes
/// through; all spec-level problems surface as SpecError).
[[nodiscard]] SweepSpec parse_sweep_spec(const std::string& text);

/// Canonical serialization: every supported field, fixed order. The
/// `transform_factory` hook is not representable in JSON and is omitted
/// (as are SweepRunner::Options' `progress` / `should_stop` runtime
/// hooks, which live on the runner, not the spec).
[[nodiscard]] json::Value sweep_spec_to_json(const SweepSpec& spec);

/// The named attack-scenario presets the CLI has always offered ("none",
/// "single", "mem", "multi"); shared so a preset means the same implants
/// in a JSON spec, on the sweep_cli command line and over HTTP.
[[nodiscard]] AttackScenario attack_scenario_preset(const std::string& name);

/// One scenario from either a preset name string or a full
/// {"name":..., "implants":[...]} object. `ecc` is the link code implants
/// are tuned against (the attacker knows the code; pass noc.ecc_scheme).
[[nodiscard]] AttackScenario attack_scenario_from_json(const json::Value& v,
                                                       EccScheme ecc);
[[nodiscard]] json::Value attack_scenario_to_json(const AttackScenario& sc);

[[nodiscard]] sim::MitigationMode mitigation_mode_from_string(
    const std::string& s);

}  // namespace htnoc::sweep
