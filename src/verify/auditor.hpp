// Whole-fabric invariant auditing (the machine-checked half of the paper's
// correctness argument): every injected flit is exactly-once accounted for
// across VC buffers, link phits, retransmission slots, the purge log and
// the NI sinks; credit counters match free buffer slots; retransmission
// slots are never leaked past an ACK or purge; and no router starves past a
// configurable horizon without the saturation detector firing.
//
// The auditor is a FlitAuditObserver: the network pushes lifecycle events
// (injected / delivered / purged) into a per-uid ledger, and on_cycle_end()
// walks a census of every resident flit (Network::collect_resident) against
// that ledger. Anything that does not reconcile becomes a Violation,
// annotated with the tail of the event trace when a sink is attached.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "noc/network.hpp"
#include "trace/sink.hpp"

namespace htnoc::verify {

enum class ViolationKind : std::uint8_t {
  kFlitLoss,            ///< Ledger-resident flit absent from the census.
  kDuplicateDelivery,   ///< A flit was consumed by an NI sink twice.
  kPurgeLeak,           ///< Flit of a purged packet still resident.
  kAckSlotLeak,         ///< Delivered flit still resident past the grace.
  kUnknownFlit,         ///< Resident/delivered flit never injected.
  kCreditConservation,  ///< Per-(link, VC) credit accounting broke.
  kSilentStarvation,    ///< Starved VC with no saturation report.
};

[[nodiscard]] const char* to_string(ViolationKind k) noexcept;

struct AuditConfig {
  bool enabled = false;
  /// Audit every `period` cycles (1 = every cycle).
  Cycle period = 1;
  /// Cycles a delivered flit may remain resident upstream while its final
  /// ACK clears the retransmission slot (reverse channel is 1 cycle; 8
  /// leaves slack for the de-obfuscation penalty).
  Cycle ack_grace = 8;
  /// Cycles a ready front flit may sit unserved, with no saturation report
  /// on its router, before the auditor calls it silent starvation.
  Cycle deadlock_horizon = 250;
  /// Stop recording after this many violations (the first is the story).
  std::size_t max_violations = 16;
  /// Trace events of context attached to each violation (when a sink is
  /// installed).
  std::size_t trace_context = 8;
};

struct Violation {
  Cycle cycle = 0;
  ViolationKind kind = ViolationKind::kFlitLoss;
  std::uint64_t uid = 0;             ///< Flit uid, or a kind-specific key.
  PacketId packet = kInvalidPacket;  ///< kInvalidPacket when not per-packet.
  std::string detail;
  /// Tail of the event trace at detection time (empty without a sink).
  std::vector<trace::Event> context;

  [[nodiscard]] std::string to_string() const;
};

class NetworkInvariantAuditor final : public FlitAuditObserver {
 public:
  NetworkInvariantAuditor(Network& net, AuditConfig cfg)
      : net_(net), cfg_(cfg) {}

  /// Attach the trace sink whose tail is copied into violations.
  void set_trace_sink(const trace::TraceSink* sink) { sink_ = sink; }

  // --- FlitAuditObserver ---
  void on_packet_injected(Cycle now, const PacketInfo& info) override;
  void on_flit_delivered(Cycle now, const Flit& flit) override;
  void on_flits_purged(Cycle now, PacketId p,
                       const std::vector<std::uint64_t>& uids) override;

  /// Run the per-cycle checks (subject to cfg.period). Call after the
  /// network has fully stepped the cycle.
  void on_cycle_end();

  [[nodiscard]] bool clean() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::uint64_t audits_run() const noexcept {
    return audits_run_;
  }
  [[nodiscard]] std::uint64_t flits_tracked() const noexcept {
    return flits_tracked_;
  }

  /// Human-readable report of every recorded violation (empty when clean).
  [[nodiscard]] std::string report() const;

 private:
  friend struct StateCodec;  // snapshot/restore (src/verify/snapshot.cpp)

  struct LedgerEntry {
    enum class State : std::uint8_t { kResident, kDelivered, kPurged };
    PacketId packet = kInvalidPacket;
    State state = State::kResident;
    Cycle since = 0;  ///< Cycle of the last state change.
  };

  /// Per-(router, port, vc) head-of-line progress watch.
  struct HolWatch {
    PacketId packet = kInvalidPacket;
    int next_seq = -1;
    Cycle ready_since = 0;
  };

  void audit(Cycle now);
  void check_census(Cycle now);
  void check_starvation(Cycle now);
  void record(Cycle now, ViolationKind kind, std::uint64_t uid, PacketId packet,
              std::string detail);
  /// True when this (kind, key) was already reported (suppress repeats of a
  /// persistent condition across audit cycles).
  [[nodiscard]] bool already_reported(ViolationKind kind, std::uint64_t key);

  Network& net_;
  AuditConfig cfg_;
  const trace::TraceSink* sink_ = nullptr;

  // std::map keeps ledger walks in uid order — violation order is
  // deterministic for a given simulation regardless of platform.
  std::map<std::uint64_t, LedgerEntry> ledger_;
  std::set<PacketId> purged_packets_;
  std::vector<Violation> violations_;
  std::set<std::pair<std::uint64_t, int>> reported_;
  std::vector<ResidentFlit> census_;  ///< Reused scratch.
  std::vector<HolWatch> hol_;         ///< Indexed router-major.
  std::uint64_t audits_run_ = 0;
  std::uint64_t flits_tracked_ = 0;
};

}  // namespace htnoc::verify
