// JSON codec for CampaignSpec — shared by `campaign_cli --spec`, the
// simulation server's HTTP job submission and the tests (the sweep-side
// counterpart lives in src/sweep/spec_json.hpp; same contract).
//
// Strict parse (unknown keys / wrong types / out-of-range values raise
// sweep::SpecError with the field path), canonical serialization (every
// supported field, fixed order, seeds as hex strings), and
// to_json(from_json(doc)) is a fixed point.
//
// Execution knobs that do not change the drawn scenarios — the worker
// thread count and the `progress` / `should_stop` runtime hooks — are
// deliberately NOT part of the spec document; they belong to the
// submitting CLI/server request (`--jobs`, the job envelope's "jobs"
// field, the server's DELETE /runs/<id> cancellation token).
#pragma once

#include <string>

#include "common/json.hpp"
#include "sweep/spec_json.hpp"
#include "verify/campaign.hpp"

namespace htnoc::verify {

[[nodiscard]] CampaignSpec campaign_spec_from_json(const json::Value& doc);
[[nodiscard]] CampaignSpec parse_campaign_spec(const std::string& text);
[[nodiscard]] json::Value campaign_spec_to_json(const CampaignSpec& spec);

}  // namespace htnoc::verify
