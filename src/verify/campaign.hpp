// Randomized fault campaign: thousands of adversarial scenarios — trojan
// placements, kill-switch toggling mid-flight, transient/permanent fault
// mixes, forced L-Ob methods, purge storms, hotspot migration under attack —
// derived deterministically from a single seed, each run with the invariant
// auditor armed. A failing scenario yields a minimal repro spec
// (seed + scenario index) that replays the exact simulation.
//
// Built on the PR-1 sweep engine's determinism primitives: per-scenario
// seeds come from sweep::derive_run_seed / mix_seed, threads claim work off
// an atomic cursor, and results land in index-addressed slots — so the
// campaign summary is byte-identical at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "verify/auditor.hpp"

namespace htnoc::verify {

struct CampaignSpec {
  std::uint64_t seed = 1;
  std::uint64_t scenarios = 1000;
  /// Worker threads; <= 0 resolves like SweepRunner ($HTNOC_JOBS, then
  /// hardware concurrency).
  int threads = 0;
  /// Auditor configuration applied to every scenario; `enabled` is forced
  /// on by the campaign (an unaudited campaign proves nothing).
  AuditConfig audit;
  /// Intra-run parallel stepping applied to every scenario (see
  /// NocConfig::step_threads). Not part of the scenario draw: the same
  /// (seed, index) builds the same scenario at any value, so a campaign is
  /// expected to produce a byte-identical summary for any step_threads —
  /// the property equivalence_report() checks.
  int step_threads = 1;
  /// Deterministic sharding: this process runs only the global scenario
  /// indices congruent to `shard_index` mod `shard_count` (a strided
  /// partition, so every shard samples the whole index range). Scenario
  /// draws depend only on (seed, global index) — sharding moves work between
  /// processes without perturbing a single RNG draw, and the shard
  /// summaries merge (verify/shard_merge.hpp) into bytes identical to the
  /// unsharded campaign's summary_text().
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
  /// Snapshot-forking warmup. 0 (the default) leaves the classic campaign
  /// untouched. When > 0, every scenario resumes from one shared snapshot
  /// of a clean default fabric warmed up for this many cycles under
  /// blackscholes traffic (computed once per campaign from `seed` alone,
  /// then restored into each scenario's freshly built — and freshly
  /// attacked — simulator). Warmed scenarios draw from a restricted space:
  /// the substrate is pinned to the snapshot's fabric, but attacks, faults,
  /// mitigation modes and mid-run events still randomize, now against a
  /// network already full of in-flight traffic.
  Cycle warmup_cycles = 0;
  /// Fabric families each scenario may draw from. Empty (the default) means
  /// every scenario runs the paper's 4x4 concentrated mesh AND the draw
  /// sequence stays exactly what it was before this knob existed, so the
  /// default campaign's summary is byte-identical to historical recordings
  /// (locked by tests/test_campaign_topology.cpp). Non-empty adds one draw
  /// per scenario picking a kind from this list (plus a size draw for
  /// kMesh), uniformly.
  std::vector<TopologyKind> topologies;
  /// Invoked after each scenario finishes with (scenarios completed so far,
  /// total scenarios). Called from worker threads, possibly concurrently —
  /// the callee synchronizes. Observational only; results are byte-identical
  /// with or without it. Not part of the spec document (campaign_json.cpp
  /// never serializes it) and ignored by comparisons.
  std::function<void(std::uint64_t, std::uint64_t)> progress = nullptr;
  /// Cooperative stop token, polled before each scenario is claimed
  /// (scenario granularity: a scenario in flight always finishes whole).
  /// When it returns true the campaign ends early: the claimed prefix of
  /// scenario indices completes and the result carries `cancelled == true`
  /// with `scenarios` truncated to that prefix. Must be thread-safe
  /// (typically an std::atomic<bool> load). Like `progress`, an execution
  /// hook, not a scenario parameter: never serialized by campaign_json.cpp
  /// and it cannot perturb the draw sequence — a campaign cancelled after
  /// k scenarios summarizes byte-identically to a k-scenario campaign of
  /// the same seed (the server's DELETE /runs/<id> relies on this).
  std::function<bool()> should_stop = nullptr;
};

/// Everything needed to replay one failing scenario exactly. A scenario
/// from a snapshot-forking campaign draws from a restricted space, so its
/// repro line must carry the campaign's warmup_cycles too.
struct ReproSpec {
  std::uint64_t seed = 0;
  std::uint64_t index = 0;
  Cycle warmup = 0;
};

/// One line: "htnoc-campaign-repro seed=0x<hex> index=<dec>", plus
/// " warmup=<dec>" when the campaign forked from a warmup snapshot.
[[nodiscard]] std::string format_repro(const ReproSpec& r);
/// Parse a format_repro() line (leading/trailing text tolerated per field).
[[nodiscard]] std::optional<ReproSpec> parse_repro(const std::string& line);

struct ScenarioResult {
  std::uint64_t index = 0;
  bool ok = false;
  /// Auditor report or exception text when ok == false.
  std::string error;
  /// Compact human-readable description of the randomized scenario.
  std::string descriptor;
  Cycle cycles = 0;
  std::uint64_t delivered = 0;
  std::uint64_t purged = 0;
  std::uint64_t audits = 0;
  std::uint64_t flits_tracked = 0;
  std::size_t violations = 0;
};

struct CampaignResult {
  CampaignSpec spec;
  std::vector<ScenarioResult> scenarios;  ///< Indexed by scenario index.
  int threads_used = 1;  ///< Informational; never serialized.
  /// True when CampaignSpec::should_stop ended the campaign early;
  /// `scenarios` then holds exactly the claimed prefix of indices.
  bool cancelled = false;

  [[nodiscard]] std::size_t failures() const {
    std::size_t n = 0;
    for (const ScenarioResult& s : scenarios) n += s.ok ? 0 : 1;
    return n;
  }

  /// Deterministic plain-text summary — byte-identical for a given
  /// (seed, scenarios) at any thread count. Failing scenarios are listed
  /// with their repro specs.
  [[nodiscard]] std::string summary_text() const;
  /// GitHub-flavoured markdown table for CI job summaries.
  [[nodiscard]] std::string summary_markdown() const;
};

class FaultCampaign {
 public:
  explicit FaultCampaign(CampaignSpec spec) : spec_(std::move(spec)) {}

  /// Run the whole campaign (parallel, deterministic).
  [[nodiscard]] CampaignResult run() const;

  /// Build and run scenario `index` of campaign `seed` in the calling
  /// thread — the repro entry point. Bit-identical to the same scenario
  /// inside a full campaign run.
  [[nodiscard]] static ScenarioResult run_scenario(const CampaignSpec& spec,
                                                  std::uint64_t index);

  /// Serial-vs-parallel equivalence mode: run the whole campaign twice,
  /// once with step_threads = 1 and once with step_threads as given, and
  /// compare the deterministic summaries byte for byte. Returns the empty
  /// string on equivalence, else a description naming the first diverging
  /// scenario (with its repro spec). This is the campaign-strength version
  /// of test_parallel_step_determinism: thousands of adversarial scenarios
  /// asserting the parallel step changes nothing.
  [[nodiscard]] static std::string equivalence_report(CampaignSpec spec,
                                                      int step_threads);

 private:
  CampaignSpec spec_;
};

}  // namespace htnoc::verify
