#include "verify/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <iomanip>
#include <iterator>
#include <map>
#include <memory>
#include <sstream>
#include <thread>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"
#include "topology/topology.hpp"
#include "traffic/app_profile.hpp"
#include "traffic/generator.hpp"
#include "verify/snapshot.hpp"

namespace htnoc::verify {

std::string format_repro(const ReproSpec& r) {
  std::ostringstream os;
  os << "htnoc-campaign-repro seed=0x" << std::hex << r.seed << std::dec
     << " index=" << r.index;
  if (r.warmup > 0) {
    os << " warmup=" << r.warmup;
  }
  return os.str();
}

std::optional<ReproSpec> parse_repro(const std::string& line) {
  // The marker distinguishes a repro line from arbitrary seed=... text when
  // scanning log files.
  if (line.find("htnoc-campaign-repro") == std::string::npos) {
    return std::nullopt;
  }
  const auto seed_pos = line.find("seed=");
  const auto index_pos = line.find("index=");
  if (seed_pos == std::string::npos || index_pos == std::string::npos) {
    return std::nullopt;
  }
  ReproSpec r;
  try {
    r.seed = std::stoull(line.substr(seed_pos + 5), nullptr, 0);
    r.index = std::stoull(line.substr(index_pos + 6), nullptr, 0);
    const auto warmup_pos = line.find("warmup=");
    if (warmup_pos != std::string::npos) {
      r.warmup = std::stoull(line.substr(warmup_pos + 7), nullptr, 0);
    }
  } catch (const std::exception&) {
    return std::nullopt;
  }
  return r;
}

namespace {

/// Scenario parameters drawn from the per-index RNG, plus the mid-run
/// adversarial event schedule the driver loop applies.
struct Scenario {
  sim::SimConfig config;
  std::string profile;
  double rate_scale = 1.0;
  Cycle cycles = 0;
  bool background = false;
  std::string bg_profile;
  double bg_rate = 0.0;

  struct KillToggle {
    Cycle at = 0;
    std::size_t trojan = 0;
    bool on = false;
  };
  std::vector<KillToggle> toggles;
  std::vector<Cycle> purge_storms;  ///< Cycles with one random purge each.
  Cycle migrate_at = 0;  ///< 0 = no migration event.
  RouterId migrate_to = 0;

  std::string descriptor;
};

const char* const kProfiles[] = {"blackscholes", "facesim", "ferret", "fft"};

std::vector<LinkRef> mesh_links(const NocConfig& noc) {
  // The topology's canonical order (routers ascending, N,S,E,W) is exactly
  // the order this helper always enumerated, so cmesh campaigns keep
  // drawing the same attack links.
  std::vector<LinkRef> links;
  for (const TopoLink& l : make_topology(noc)->links()) {
    links.push_back({l.from, l.dir});
  }
  return links;
}

trojan::TaspParams draw_tasp(Rng& rng, const NocConfig& noc) {
  trojan::TaspParams t;
  constexpr trojan::TargetKind kKinds[] = {
      trojan::TargetKind::kFull, trojan::TargetKind::kDest,
      trojan::TargetKind::kSrc,  trojan::TargetKind::kDestSrc,
      trojan::TargetKind::kMem,  trojan::TargetKind::kVc,
      trojan::TargetKind::kThread};
  t.kind = kKinds[rng.next_below(std::size(kKinds))];
  const auto routers = static_cast<std::uint64_t>(noc.num_routers());
  t.target_src = static_cast<RouterId>(rng.next_below(routers));
  t.target_dest = static_cast<RouterId>(rng.next_below(routers));
  t.target_vc = static_cast<VcId>(
      rng.next_below(static_cast<std::uint64_t>(noc.vcs_per_port)));
  t.target_thread = static_cast<std::uint8_t>(rng.next_below(64));
  t.target_mem = 0x1000'0000u + static_cast<std::uint32_t>(
                                    rng.next_below(0x0100'0000u));
  // Half the memory-keyed implants target a whole page, not one address.
  if (rng.next_bool(0.5)) t.mem_mask = 0xFFFFF000u;
  t.ecc = noc.ecc_scheme;  // the attacker knows the link code (Sec. III-B)
  t.payload_states = static_cast<int>(rng.next_in(4, 16));
  t.min_gap = rng.next_in(1, 4);
  t.only_head_flits = rng.next_bool(0.8);
  const double p = rng.next_double();
  t.pattern = p < 0.7 ? trojan::PayloadPattern::kDoubleDetectable
              : p < 0.9 ? trojan::PayloadPattern::kSingleCorrectable
                        : trojan::PayloadPattern::kTripleSdc;
  return t;
}

/// All scenario randomness is drawn here, in one fixed order, from the
/// index-derived RNG — the scenario is a pure function of (seed, index).
Scenario draw_scenario(const CampaignSpec& spec, std::uint64_t index) {
  const std::uint64_t run_seed = sweep::derive_run_seed(spec.seed, index, 0);
  Rng rng(run_seed);
  Scenario s;
  sim::SimConfig& sc = s.config;

  // Topology dimension — strictly opt-in. An empty list (the default) must
  // consume zero draws so the default campaign's draw sequence, and with it
  // every historical summary byte, stays identical (RNG-draw-order is a
  // compatibility contract; see tests/test_campaign_topology.cpp).
  if (!spec.topologies.empty()) {
    sc.noc.topology =
        spec.topologies[rng.next_below(spec.topologies.size())];
    if (sc.noc.topology == TopologyKind::kMesh) {
      const int k = rng.next_bool(0.5) ? 8 : 4;
      sc.noc.mesh_width = k;
      sc.noc.mesh_height = k;
    }
  }

  sc.noc.concentration = rng.next_bool(0.5) ? 4 : 2;
  if (sc.noc.topology == TopologyKind::kMesh) sc.noc.concentration = 1;
  sc.noc.buffer_depth = rng.next_bool(0.5) ? 4 : 2;
  sc.noc.retrans_scheme = rng.next_bool(0.5)
                              ? RetransmissionScheme::kOutputBuffer
                              : RetransmissionScheme::kPerVcBuffer;
  sc.noc.tdm_enabled = rng.next_bool(0.2);
  sc.noc.active_step = rng.next_bool(0.8);
  const double eccd = rng.next_double();
  sc.noc.ecc_scheme = eccd < 0.7   ? EccScheme::kSecded
                      : eccd < 0.9 ? EccScheme::kParity
                                   : EccScheme::kNone;
  sc.seed = sweep::mix_seed(run_seed, 1);
  sc.noc.seed = sweep::mix_seed(run_seed, 2);

  const double moded = rng.next_double();
  sc.mode = moded < 0.30   ? sim::MitigationMode::kNone
            : moded < 0.65 ? sim::MitigationMode::kLOb
                           : sim::MitigationMode::kReroute;
  sc.reroute_latency = rng.next_in(20, 400);

  // Trojan implants.
  const std::vector<LinkRef> links = mesh_links(sc.noc);
  const std::uint64_t num_attacks = rng.next_below(4);
  for (std::uint64_t a = 0; a < num_attacks; ++a) {
    sim::AttackSpec atk;
    atk.link = links[rng.next_below(links.size())];
    atk.tasp = draw_tasp(rng, sc.noc);
    atk.enable_killsw_at = rng.next_in(50, 400);
    sc.attacks.push_back(atk);
  }
  // Kill-switch toggling mid-flight: off, then on again (the trojan FSM
  // must go quiet and recover without wedging anything).
  if (num_attacks > 0 && rng.next_bool(0.4)) {
    for (std::size_t a = 0; a < sc.attacks.size(); ++a) {
      const Cycle off = sc.attacks[a].enable_killsw_at + rng.next_in(50, 200);
      s.toggles.push_back({off, a, false});
      s.toggles.push_back({off + rng.next_in(50, 200), a, true});
    }
  }

  // Background fault environment.
  double transient = 0.0;
  if (rng.next_bool(0.5)) {
    transient = std::pow(10.0, -(2.0 + 2.0 * rng.next_double()));
    sc.transient_phit_fault_prob = transient;
  }
  std::uint64_t permanent_wires = 0;
  if (rng.next_bool(0.15)) {
    permanent_wires = rng.next_in(1, 3);
    std::map<unsigned, bool> stuck;
    while (stuck.size() < permanent_wires) {
      stuck[static_cast<unsigned>(rng.next_below(72))] = rng.next_bool(0.5);
    }
    sc.permanent_faults.emplace_back(links[rng.next_below(links.size())],
                                     std::move(stuck));
  }

  // L-Ob method forcing (40% of L-Ob scenarios pin one method).
  std::string lob_force = "-";
  if (sc.mode == sim::MitigationMode::kLOb && rng.next_bool(0.4)) {
    constexpr ObfMethod kMethods[] = {ObfMethod::kInvert, ObfMethod::kShuffle,
                                      ObfMethod::kScramble};
    constexpr ObfGranularity kGrans[] = {ObfGranularity::kHeader,
                                         ObfGranularity::kFlit,
                                         ObfGranularity::kPayload};
    ObfMethod m = kMethods[rng.next_below(std::size(kMethods))];
    ObfGranularity g = kGrans[rng.next_below(std::size(kGrans))];
    // Scrambling XORs two whole wire images; partial-window scramble is not
    // a defined mode.
    if (m == ObfMethod::kScramble) g = ObfGranularity::kFlit;
    sc.lob = mitigation::forced_lob_params(m, g);
    lob_force = to_string(m) + "/" + to_string(g);
  }

  // Traffic.
  s.profile = kProfiles[rng.next_below(std::size(kProfiles))];
  s.rate_scale = 0.3 + 1.7 * rng.next_double();
  if (sc.noc.tdm_enabled) {
    s.background = true;
    s.bg_profile = kProfiles[rng.next_below(std::size(kProfiles))];
    s.bg_rate = 0.01 + 0.04 * rng.next_double();
  }

  s.cycles = rng.next_in(300, 1500);

  // Purge storms: spontaneous network-wide purges of random live packets
  // (the reroute recovery path exercised without waiting for a reroute).
  if (rng.next_bool(0.3)) {
    const std::uint64_t storms = rng.next_in(1, 20);
    for (std::uint64_t i = 0; i < storms; ++i) {
      s.purge_storms.push_back(rng.next_in(50, s.cycles - 1));
    }
    std::sort(s.purge_storms.begin(), s.purge_storms.end());
  }

  // Hotspot migration under attack (the paper's OS-level complement).
  if (rng.next_bool(0.15)) {
    s.migrate_at = rng.next_in(100, 300);
    s.migrate_to = static_cast<RouterId>(
        rng.next_below(static_cast<std::uint64_t>(sc.noc.num_routers())));
  }

  sc.audit = spec.audit;
  sc.audit.enabled = true;
  // Applied after every RNG draw: step_threads is an execution knob, not a
  // scenario parameter, so changing it must not perturb the draw sequence
  // (equivalence_report depends on the two campaigns drawing identical
  // scenarios).
  sc.noc.step_threads = spec.step_threads;

  std::ostringstream d;
  d << "topo=" << to_string(sc.noc.topology) << sc.noc.mesh_width << "x"
    << sc.noc.mesh_height << " mode=" << sim::to_string(sc.mode) << " ecc="
    << to_string(sc.noc.ecc_scheme) << " conc=" << sc.noc.concentration
    << " buf=" << sc.noc.buffer_depth
    << " scheme=" << to_string(sc.noc.retrans_scheme)
    << " tdm=" << (sc.noc.tdm_enabled ? 1 : 0)
    << " astep=" << (sc.noc.active_step ? 1 : 0)
    << " attacks=" << num_attacks << " toggles=" << s.toggles.size()
    << " transient=" << std::setprecision(3) << transient
    << " perm=" << permanent_wires << " lob=" << lob_force
    << " storms=" << s.purge_storms.size()
    << " migrate=" << (s.migrate_at != 0 ? 1 : 0) << " profile=" << s.profile
    << " rate=" << std::fixed << std::setprecision(2) << s.rate_scale
    << " cycles=" << s.cycles;
  s.descriptor = d.str();
  return s;
}

/// Restricted draw for snapshot-forking campaigns (warmup_cycles > 0): the
/// substrate is pinned to the warmup snapshot's default fabric, so none of
/// the structural knobs (topology, concentration, buffers, retransmission,
/// TDM, ECC) are drawn — but attacks, mitigation, background faults and the
/// mid-run event schedule still randomize, with every scheduled cycle
/// shifted past the warmup window (the restored network resumes at cycle
/// `warmup_cycles`, and kill switches / storms / migration all key off the
/// absolute network clock).
Scenario draw_warmup_scenario(const CampaignSpec& spec, std::uint64_t index) {
  const std::uint64_t run_seed = sweep::derive_run_seed(spec.seed, index, 0);
  Rng rng(run_seed);
  const Cycle warm = spec.warmup_cycles;
  Scenario s;
  sim::SimConfig& sc = s.config;

  sc.seed = sweep::mix_seed(run_seed, 1);
  sc.noc.seed = sweep::mix_seed(run_seed, 2);

  const double moded = rng.next_double();
  sc.mode = moded < 0.30   ? sim::MitigationMode::kNone
            : moded < 0.65 ? sim::MitigationMode::kLOb
                           : sim::MitigationMode::kReroute;
  sc.reroute_latency = rng.next_in(20, 400);

  const std::vector<LinkRef> links = mesh_links(sc.noc);
  const std::uint64_t num_attacks = rng.next_below(4);
  for (std::uint64_t a = 0; a < num_attacks; ++a) {
    sim::AttackSpec atk;
    atk.link = links[rng.next_below(links.size())];
    atk.tasp = draw_tasp(rng, sc.noc);
    atk.enable_killsw_at = warm + rng.next_in(50, 400);
    sc.attacks.push_back(atk);
  }
  if (num_attacks > 0 && rng.next_bool(0.4)) {
    for (std::size_t a = 0; a < sc.attacks.size(); ++a) {
      const Cycle off = sc.attacks[a].enable_killsw_at + rng.next_in(50, 200);
      s.toggles.push_back({off, a, false});
      s.toggles.push_back({off + rng.next_in(50, 200), a, true});
    }
  }

  double transient = 0.0;
  if (rng.next_bool(0.5)) {
    transient = std::pow(10.0, -(2.0 + 2.0 * rng.next_double()));
    sc.transient_phit_fault_prob = transient;
  }
  std::uint64_t permanent_wires = 0;
  if (rng.next_bool(0.15)) {
    permanent_wires = rng.next_in(1, 3);
    std::map<unsigned, bool> stuck;
    while (stuck.size() < permanent_wires) {
      stuck[static_cast<unsigned>(rng.next_below(72))] = rng.next_bool(0.5);
    }
    sc.permanent_faults.emplace_back(links[rng.next_below(links.size())],
                                     std::move(stuck));
  }

  std::string lob_force = "-";
  if (sc.mode == sim::MitigationMode::kLOb && rng.next_bool(0.4)) {
    constexpr ObfMethod kMethods[] = {ObfMethod::kInvert, ObfMethod::kShuffle,
                                      ObfMethod::kScramble};
    constexpr ObfGranularity kGrans[] = {ObfGranularity::kHeader,
                                         ObfGranularity::kFlit,
                                         ObfGranularity::kPayload};
    ObfMethod m = kMethods[rng.next_below(std::size(kMethods))];
    ObfGranularity g = kGrans[rng.next_below(std::size(kGrans))];
    if (m == ObfMethod::kScramble) g = ObfGranularity::kFlit;
    sc.lob = mitigation::forced_lob_params(m, g);
    lob_force = to_string(m) + "/" + to_string(g);
  }

  // Traffic continues from the snapshot's blackscholes generator; the
  // profile is not drawn (the restored model state would override it).
  s.profile = "blackscholes";

  s.cycles = rng.next_in(300, 1500);

  if (rng.next_bool(0.3)) {
    const std::uint64_t storms = rng.next_in(1, 20);
    for (std::uint64_t i = 0; i < storms; ++i) {
      s.purge_storms.push_back(warm + rng.next_in(50, s.cycles - 1));
    }
    std::sort(s.purge_storms.begin(), s.purge_storms.end());
  }

  if (rng.next_bool(0.15)) {
    s.migrate_at = warm + rng.next_in(100, 300);
    s.migrate_to = static_cast<RouterId>(
        rng.next_below(static_cast<std::uint64_t>(sc.noc.num_routers())));
  }

  sc.audit = spec.audit;
  sc.audit.enabled = true;
  sc.noc.step_threads = spec.step_threads;

  std::ostringstream d;
  d << "warmup=" << warm << " mode=" << sim::to_string(sc.mode)
    << " attacks=" << num_attacks << " toggles=" << s.toggles.size()
    << " transient=" << std::setprecision(3) << transient
    << " perm=" << permanent_wires << " lob=" << lob_force
    << " storms=" << s.purge_storms.size()
    << " migrate=" << (s.migrate_at != 0 ? 1 : 0) << " cycles=" << s.cycles;
  s.descriptor = d.str();
  return s;
}

/// Build the campaign's shared warmup snapshot: a clean default fabric (no
/// attacks, no faults, no mitigation) carrying `warmup_cycles` of
/// blackscholes traffic, audited from cycle 0 so restored scenarios inherit
/// a live ledger. Depends only on (seed, warmup_cycles, audit config) — one
/// blob serves every scenario on every shard.
std::vector<std::uint8_t> build_warmup_blob(const CampaignSpec& spec) {
  sim::SimConfig wc;
  wc.seed = sweep::mix_seed(spec.seed, 11);
  wc.noc.seed = sweep::mix_seed(spec.seed, 12);
  wc.audit = spec.audit;
  wc.audit.enabled = true;

  sim::Simulator simulator(std::move(wc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = sweep::mix_seed(spec.seed, 13);
  gp.domain = TdmDomain::kD1;
  traffic::TrafficGenerator gen(net, model, gp, disp);

  for (Cycle c = 0; c < spec.warmup_cycles; ++c) {
    gen.step();
    simulator.step();
  }
  return save_snapshot(simulator, {&gen});
}

ScenarioResult run_scenario_impl(const CampaignSpec& spec, std::uint64_t index,
                                 const std::vector<std::uint8_t>* warmup) {
  ScenarioResult res;
  res.index = index;
  const bool warmed = spec.warmup_cycles > 0;
  Scenario sn = warmed ? draw_warmup_scenario(spec, index)
                       : draw_scenario(spec, index);
  res.descriptor = sn.descriptor;
  const std::uint64_t run_seed = sweep::derive_run_seed(spec.seed, index, 0);

  sim::Simulator simulator(std::move(sn.config));
  Network& net = simulator.network();

  traffic::DeliveryDispatcher disp;
  disp.install(net);

  traffic::AppProfile profile = traffic::profile_by_name(sn.profile);
  if (!warmed) profile.injection_rate *= sn.rate_scale;
  traffic::AppTrafficModel model(net.geometry(), profile);
  traffic::TrafficGenerator::Params gp;
  gp.seed = warmed ? sweep::mix_seed(spec.seed, 13)
                   : sweep::mix_seed(run_seed, 3);
  gp.domain = TdmDomain::kD1;
  traffic::TrafficGenerator gen(net, model, gp, disp);

  if (warmed) {
    // Fork the shared warmed-up fabric into this scenario's simulator: the
    // blob's clean links prefix-match under the scenario's freshly attached
    // trojans/fault injectors, and its empty mitigation sections leave the
    // scenario's detectors and L-Ob controllers fresh.
    load_snapshot(simulator, {&gen}, *warmup);
  }

  std::unique_ptr<traffic::AppTrafficModel> bg_model;
  std::unique_ptr<traffic::TrafficGenerator> bg;
  if (sn.background) {
    traffic::AppProfile bp = traffic::profile_by_name(sn.bg_profile);
    bp.injection_rate = sn.bg_rate;
    bg_model = std::make_unique<traffic::AppTrafficModel>(net.geometry(), bp);
    traffic::TrafficGenerator::Params bgp;
    bgp.seed = sweep::mix_seed(run_seed, 4);
    bgp.domain = TdmDomain::kD2;
    bg = std::make_unique<traffic::TrafficGenerator>(net, *bg_model, bgp,
                                                     disp);
  }

  simulator.set_drop_callback([&](PacketId id) {
    gen.requeue(id);
    if (bg) bg->requeue(id);
  });

  Rng storm_rng(sweep::mix_seed(run_seed, 7));
  std::size_t storm_next = 0;
  const RouterId migrate_from =
      profile.hotspots.empty() ? RouterId{0} : profile.hotspots.front().first;

  // A warmed scenario resumes at the snapshot's cycle and plays its drawn
  // cycle budget on top; every scheduled event was drawn in absolute cycles.
  const Cycle start = warmed ? spec.warmup_cycles : 0;
  for (Cycle c = start; c < start + sn.cycles; ++c) {
    for (const Scenario::KillToggle& t : sn.toggles) {
      if (t.at == c) simulator.tasp(t.trojan).set_kill_switch(t.on);
    }
    if (sn.migrate_at != 0 && sn.migrate_at == c) {
      gen.migrate_hotspot(migrate_from, sn.migrate_to);
    }
    while (storm_next < sn.purge_storms.size() &&
           sn.purge_storms[storm_next] == c) {
      ++storm_next;
      const PacketId hi = net.peek_next_packet_id();
      if (hi <= 1) continue;
      const PacketId victim = 1 + storm_rng.next_below(hi - 1);
      for (const PacketId dropped : net.purge_packet(victim)) {
        gen.requeue(dropped);
        if (bg) bg->requeue(dropped);
      }
    }
    if (bg) bg->step();
    gen.step();
    simulator.step();
  }

  res.cycles = sn.cycles;
  res.delivered = net.packets_delivered();
  res.purged = net.purge_totals().packets;
  const NetworkInvariantAuditor* aud = simulator.auditor();
  res.audits = aud->audits_run();
  res.flits_tracked = aud->flits_tracked();
  res.violations = aud->violations().size();
  res.ok = aud->clean();
  if (!res.ok) res.error = "invariant audit failed:\n" + aud->report();
  return res;
}

}  // namespace

namespace {

ScenarioResult run_scenario_guarded(const CampaignSpec& spec,
                                    std::uint64_t index,
                                    const std::vector<std::uint8_t>* warmup) {
  try {
    return run_scenario_impl(spec, index, warmup);
  } catch (const std::exception& e) {
    ScenarioResult res;
    res.index = index;
    res.ok = false;
    res.error = std::string("exception: ") + e.what();
    // Re-draw just the descriptor so the failure table still says what the
    // scenario looked like; draw_scenario is deterministic and cannot throw
    // for an index the campaign already drew once.
    try {
      res.descriptor = (spec.warmup_cycles > 0
                            ? draw_warmup_scenario(spec, index)
                            : draw_scenario(spec, index))
                           .descriptor;
    } catch (const std::exception&) {
    }
    return res;
  }
}

}  // namespace

ScenarioResult FaultCampaign::run_scenario(const CampaignSpec& spec,
                                           std::uint64_t index) {
  // The repro path rebuilds the warmup snapshot from scratch — the blob is
  // a pure function of (seed, warmup_cycles, audit), so a replayed failure
  // resumes from the exact bytes the campaign forked.
  std::vector<std::uint8_t> warmup;
  if (spec.warmup_cycles > 0) warmup = build_warmup_blob(spec);
  return run_scenario_guarded(spec, index,
                              spec.warmup_cycles > 0 ? &warmup : nullptr);
}

CampaignResult FaultCampaign::run() const {
  HTNOC_EXPECT(spec_.shard_count >= 1);
  HTNOC_EXPECT(spec_.shard_index < spec_.shard_count);
  CampaignResult out;
  out.spec = spec_;
  // Strided partition: this shard owns global indices shard_index,
  // shard_index + shard_count, ... — `local` of them.
  const std::uint64_t local =
      spec_.scenarios / spec_.shard_count +
      (spec_.shard_index < spec_.scenarios % spec_.shard_count ? 1 : 0);
  out.scenarios.resize(static_cast<std::size_t>(local));
  const int nthreads = sweep::SweepRunner::resolve_threads(
      spec_.threads, static_cast<std::size_t>(local), spec_.step_threads);
  out.threads_used = nthreads;

  // One warmup snapshot serves the whole campaign; workers restore from it
  // concurrently (load_snapshot only reads the blob).
  std::vector<std::uint8_t> warmup;
  if (spec_.warmup_cycles > 0) warmup = build_warmup_blob(spec_);
  const std::vector<std::uint8_t>* warmup_ptr =
      spec_.warmup_cycles > 0 ? &warmup : nullptr;

  std::atomic<std::uint64_t> cursor{0};
  std::atomic<std::uint64_t> done{0};
  std::atomic<bool> stopped{false};
  auto worker = [&]() {
    for (;;) {
      // Stop token polled only between scenarios: a claimed scenario always
      // finishes whole, and the claimed set stays the prefix [0, cursor).
      if (spec_.should_stop && spec_.should_stop()) {
        stopped.store(true, std::memory_order_relaxed);
        return;
      }
      const std::uint64_t k = cursor.fetch_add(1, std::memory_order_relaxed);
      if (k >= local) return;
      const std::uint64_t global = spec_.shard_index + k * spec_.shard_count;
      out.scenarios[static_cast<std::size_t>(k)] =
          run_scenario_guarded(spec_, global, warmup_ptr);
      if (spec_.progress) {
        spec_.progress(done.fetch_add(1, std::memory_order_relaxed) + 1,
                       local);
      }
    }
  };
  if (nthreads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(nthreads));
    for (int t = 0; t < nthreads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (stopped.load(std::memory_order_relaxed)) {
    // Truncating to the claimed prefix makes a cancelled campaign's summary
    // a pure function of the stop point: scenario draws depend only on
    // (seed, index), so the summary equals that of a `cursor`-scenario
    // campaign with the same seed (locked by tests/test_server_recovery).
    out.cancelled = true;
    out.scenarios.resize(static_cast<std::size_t>(std::min<std::uint64_t>(
        cursor.load(std::memory_order_relaxed), local)));
  }
  return out;
}

std::string FaultCampaign::equivalence_report(CampaignSpec spec,
                                              int step_threads) {
  HTNOC_EXPECT(step_threads >= 1);
  spec.step_threads = 1;
  const CampaignResult serial = FaultCampaign(spec).run();
  spec.step_threads = step_threads;
  const CampaignResult parallel = FaultCampaign(spec).run();

  if (serial.summary_text() == parallel.summary_text()) return {};

  std::ostringstream os;
  os << "campaign diverges between step_threads=1 and step_threads="
     << step_threads << "\n";
  const std::size_t n =
      std::min(serial.scenarios.size(), parallel.scenarios.size());
  for (std::size_t i = 0; i < n; ++i) {
    const ScenarioResult& a = serial.scenarios[i];
    const ScenarioResult& b = parallel.scenarios[i];
    if (a.ok == b.ok && a.delivered == b.delivered && a.purged == b.purged &&
        a.audits == b.audits && a.flits_tracked == b.flits_tracked &&
        a.error == b.error) {
      continue;
    }
    os << "first divergence at scenario " << i << " ("
       << format_repro({spec.seed, a.index, spec.warmup_cycles}) << ")\n"
       << "  " << a.descriptor << "\n"
       << "  serial:   ok=" << a.ok << " delivered=" << a.delivered
       << " purged=" << a.purged << " audits=" << a.audits
       << " flits=" << a.flits_tracked << "\n"
       << "  parallel: ok=" << b.ok << " delivered=" << b.delivered
       << " purged=" << b.purged << " audits=" << b.audits
       << " flits=" << b.flits_tracked << "\n";
    return os.str();
  }
  os << "(per-scenario counters match; summaries differ elsewhere)\n";
  return os.str();
}

namespace {

std::string first_line(const std::string& s) {
  const auto nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

}  // namespace

std::string CampaignResult::summary_text() const {
  std::uint64_t delivered = 0, purged = 0, audits = 0, flits = 0;
  for (const ScenarioResult& s : scenarios) {
    delivered += s.delivered;
    purged += s.purged;
    audits += s.audits;
    flits += s.flits_tracked;
  }
  std::ostringstream os;
  os << "htnoc fault campaign seed=0x" << std::hex << spec.seed << std::dec
     << " scenarios=" << scenarios.size();
  // The shard token only appears on shard summaries, so an unsharded run's
  // bytes are untouched (and are what merge_shards reconstructs).
  if (spec.shard_count > 1) {
    os << " shard=" << spec.shard_index << "/" << spec.shard_count;
  }
  os << "\n";
  os << "failures=" << failures() << " delivered=" << delivered
     << " purged=" << purged << " audits=" << audits
     << " flits_tracked=" << flits << "\n";
  for (const ScenarioResult& s : scenarios) {
    if (s.ok) continue;
    os << "FAIL " << format_repro({spec.seed, s.index, spec.warmup_cycles})
       << " " << s.descriptor << "\n";
    os << "  " << first_line(s.error) << "\n";
  }
  return os.str();
}

std::string CampaignResult::summary_markdown() const {
  std::uint64_t delivered = 0, purged = 0, audits = 0, flits = 0;
  for (const ScenarioResult& s : scenarios) {
    delivered += s.delivered;
    purged += s.purged;
    audits += s.audits;
    flits += s.flits_tracked;
  }
  std::ostringstream os;
  os << "| scenarios | failures | packets delivered | packets purged | "
        "audit cycles | flits tracked |\n";
  os << "|---|---|---|---|---|---|\n";
  os << "| " << scenarios.size() << " | " << failures() << " | " << delivered
     << " | " << purged << " | " << audits << " | " << flits << " |\n";
  if (failures() > 0) {
    os << "\n### Failing scenarios\n\n";
    os << "| index | repro | scenario | first violation |\n";
    os << "|---|---|---|---|\n";
    std::size_t listed = 0;
    for (const ScenarioResult& s : scenarios) {
      if (s.ok) continue;
      if (listed == 50) {
        os << "| … | | " << (failures() - listed) << " more | |\n";
        break;
      }
      os << "| " << s.index << " | `"
         << format_repro({spec.seed, s.index, spec.warmup_cycles}) << "` | "
         << s.descriptor << " | "
         << first_line(s.error.find('\n') != std::string::npos
                           ? s.error.substr(s.error.find('\n') + 1)
                           : s.error)
         << " |\n";
      ++listed;
    }
  }
  return os.str();
}

}  // namespace htnoc::verify
