// Order-sensitive FNV-1a digest of the full observable network state: the
// deterministic census walk (Network::collect_resident), the utilization
// probe, delivery/purge totals and the packet-id allocator position. One
// 64-bit word per cycle pins the whole fabric's evolution: a single
// divergently-placed flit anywhere changes the digest at the cycle it
// appears.
//
// Shared by the parallel-step determinism tests (serial vs sharded
// schedules) and the topology golden-model differential suite (refactored
// fabric vs the checked-in legacy digests in tests/golden/).
#pragma once

#include <cstdint>

#include "noc/network.hpp"

namespace htnoc::verify {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ull;

/// Fold one 64-bit word into an FNV-1a hash, byte by byte.
[[nodiscard]] constexpr std::uint64_t fnv1a_u64(std::uint64_t h,
                                                std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Digest of everything observable about `net` at the current cycle.
[[nodiscard]] std::uint64_t state_digest(const Network& net);

}  // namespace htnoc::verify
