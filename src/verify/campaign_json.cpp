#include "verify/campaign_json.hpp"

#include <cstdio>

namespace htnoc::verify {

namespace {

using json::Value;
using sweep::SpecError;

[[noreturn]] void bad(const std::string& path, const std::string& msg) {
  throw SpecError(path + ": " + msg);
}

std::uint64_t get_u64(const Value& v, const std::string& path) {
  try {
    return json::as_uint64(v);
  } catch (const json::TypeError& e) {
    bad(path, e.what());
  }
}

std::uint64_t get_u64_range(const Value& v, const std::string& path,
                            std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t x = get_u64(v, path);
  if (x < lo || x > hi) {
    bad(path, "value " + std::to_string(x) + " out of range [" +
                  std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return x;
}

std::string hex_string(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

CampaignSpec campaign_spec_from_json(const json::Value& doc) {
  const json::Object* root = nullptr;
  try {
    root = &doc.as_object();
  } catch (const json::TypeError& e) {
    bad("spec", e.what());
  }
  CampaignSpec spec;
  for (const auto& [key, val] : *root) {
    if (key == "seed") {
      spec.seed = get_u64(val, "seed");
    } else if (key == "scenarios") {
      spec.scenarios = get_u64_range(val, "scenarios", 1, 100'000'000);
    } else if (key == "step_threads") {
      spec.step_threads =
          static_cast<int>(get_u64_range(val, "step_threads", 1, 256));
    } else if (key == "audit_period") {
      spec.audit.period = get_u64_range(val, "audit_period", 1, 1'000'000);
    } else if (key == "shard_index") {
      spec.shard_index = get_u64(val, "shard_index");
    } else if (key == "shard_count") {
      spec.shard_count = get_u64_range(val, "shard_count", 1, 65'536);
    } else if (key == "warmup_cycles") {
      spec.warmup_cycles = get_u64_range(val, "warmup_cycles", 0, 10'000'000);
    } else if (key == "topologies") {
      const json::Array* arr = nullptr;
      try {
        arr = &val.as_array();
      } catch (const json::TypeError& e) {
        bad("topologies", e.what());
      }
      spec.topologies.clear();
      for (const Value& t : *arr) {
        std::string name;
        try {
          name = t.as_string();
        } catch (const json::TypeError& e) {
          bad("topologies[]", e.what());
        }
        try {
          spec.topologies.push_back(topology_kind_from_string(name));
        } catch (const std::exception&) {
          bad("topologies[]", "unknown topology \"" + name +
                                  "\" (expected cmesh/mesh/torus)");
        }
      }
    } else {
      bad(key, "unknown key in campaign spec");
    }
  }
  // Cross-field check after the loop: key order in the document is free.
  if (spec.shard_index >= spec.shard_count) {
    bad("shard_index", "value " + std::to_string(spec.shard_index) +
                           " must be < shard_count (" +
                           std::to_string(spec.shard_count) + ")");
  }
  return spec;
}

CampaignSpec parse_campaign_spec(const std::string& text) {
  return campaign_spec_from_json(json::parse(text));
}

json::Value campaign_spec_to_json(const CampaignSpec& spec) {
  json::Object o;
  o.emplace_back("seed", Value(hex_string(spec.seed)));
  o.emplace_back("scenarios", Value(static_cast<double>(spec.scenarios)));
  o.emplace_back("step_threads", Value(spec.step_threads));
  o.emplace_back("audit_period",
                 Value(static_cast<double>(spec.audit.period)));
  o.emplace_back("shard_index",
                 Value(static_cast<double>(spec.shard_index)));
  o.emplace_back("shard_count",
                 Value(static_cast<double>(spec.shard_count)));
  o.emplace_back("warmup_cycles",
                 Value(static_cast<double>(spec.warmup_cycles)));
  json::Array topos;
  for (const TopologyKind k : spec.topologies) {
    topos.emplace_back(to_string(k));
  }
  o.emplace_back("topologies", Value(std::move(topos)));
  return Value(std::move(o));
}

}  // namespace htnoc::verify
