// Deterministic full-state snapshot/restore of a running Simulator.
//
// save_snapshot serializes every piece of mutable simulation state — router
// input buffers and scramble stations, retransmission slots, in-flight link
// phits and reverse-channel messages, NI queues, arbiter priorities, fault-
// injector and trojan FSMs, detector/L-Ob state, the invariant auditor's
// ledger, the trace ring window and every RNG stream — into a versioned,
// integrity-checked binary blob. load_snapshot restores that blob into a
// freshly constructed Simulator built from a substrate-compatible SimConfig;
// the restored simulation then resumes bit-identically (same per-cycle
// state digests, same trace bytes) at any step_threads setting.
//
// The blob's envelope carries a fingerprint of the substrate configuration
// (topology, buffer geometry, ECC/retransmission schemes, pipeline depths —
// everything that shapes the serialized containers) so a blob can only be
// restored into a structurally identical fabric. Seeds, attack schedules,
// mitigation mode and step_threads are deliberately NOT part of the
// fingerprint: the fault campaign's snapshot-forking warmup restores one
// warmed-up fabric into many differently attacked scenarios.
//
// Snapshots are only valid at a cycle boundary (between Simulator::step
// calls): the two-phase step's staging buffers must be empty, and save
// throws SnapshotError if they are not.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace htnoc {
struct NocConfig;
}
namespace htnoc::sim {
class Simulator;
}
namespace htnoc::traffic {
class TrafficGenerator;
}

namespace htnoc::verify {

/// Snapshot save/restore failed: incompatible target, corrupt or truncated
/// blob, or a simulator not at a cycle boundary.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

/// Current snapshot layout version (envelope field). Bump on any layout
/// change; load_snapshot rejects other versions.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// FNV-1a over the structural NocConfig fields a blob depends on (topology,
/// dimensions, buffer/VC geometry, retransmission + ECC schemes, pipeline
/// stage latencies, injection queue depth, TDM). Excludes seeds,
/// step_threads and active_step — those do not shape the serialized state.
[[nodiscard]] std::uint64_t substrate_fingerprint(const NocConfig& cfg);

/// Serialize the simulator (and the traffic generators driving it, in
/// attach order) at the current cycle boundary. Throws SnapshotError when
/// mid-cycle staging buffers are non-empty.
[[nodiscard]] std::vector<std::uint8_t> save_snapshot(
    const sim::Simulator& sim,
    const std::vector<const traffic::TrafficGenerator*>& generators = {});

/// Restore a blob into a freshly constructed Simulator whose SimConfig has
/// the same substrate fingerprint. `generators` must pair with the blob's
/// generator sections (same count, same order). Component sections beyond
/// the substrate follow a fork-friendly contract: link fault injectors are
/// prefix-matched by name (a blob saved with fewer injectors leaves the
/// extras fresh — how a clean warmup forks into attacked scenarios), and an
/// empty detector/L-Ob section leaves the target's mitigation state fresh.
/// Auditor and trace-sink presence must match exactly. Throws SnapshotError
/// on any mismatch, bad magic/version, truncation or digest failure.
void load_snapshot(sim::Simulator& sim,
                   const std::vector<traffic::TrafficGenerator*>& generators,
                   const std::vector<std::uint8_t>& blob);

}  // namespace htnoc::verify
