#include "verify/shard_merge.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

namespace htnoc::verify {

namespace {

std::string first_line(const std::string& s) {
  const auto nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

std::string second_line(const std::string& s) {
  const auto nl = s.find('\n');
  if (nl == std::string::npos) return {};
  return first_line(s.substr(nl + 1));
}

std::string hex_string(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

[[noreturn]] void bad(const std::string& msg) { throw MergeError(msg); }

std::uint64_t get_u64(const json::Value& doc, const char* key) {
  const json::Value* v = doc.find(key);
  if (v == nullptr) bad(std::string("shard summary missing key: ") + key);
  try {
    return json::as_uint64(*v);
  } catch (const json::TypeError& e) {
    bad(std::string(key) + ": " + e.what());
  }
}

std::string get_str(const json::Value& doc, const char* key) {
  const json::Value* v = doc.find(key);
  if (v == nullptr) bad(std::string("shard summary missing key: ") + key);
  try {
    return v->as_string();
  } catch (const json::TypeError& e) {
    bad(std::string(key) + ": " + e.what());
  }
}

}  // namespace

ShardSummary summarize_shard(const CampaignResult& result) {
  ShardSummary s;
  s.seed = result.spec.seed;
  s.scenarios = result.spec.scenarios;
  s.shard_index = result.spec.shard_index;
  s.shard_count = result.spec.shard_count;
  s.scenarios_run = result.scenarios.size();
  s.warmup_cycles = result.spec.warmup_cycles;
  s.cancelled = result.cancelled;
  for (const ScenarioResult& r : result.scenarios) {
    s.delivered += r.delivered;
    s.purged += r.purged;
    s.audits += r.audits;
    s.flits_tracked += r.flits_tracked;
    if (r.ok) continue;
    ShardFailure f;
    f.index = r.index;
    f.descriptor = r.descriptor;
    f.error = first_line(r.error);
    f.violation = second_line(r.error);
    s.failures.push_back(std::move(f));
  }
  // Workers fill result.scenarios in local-slot order, which is already
  // ascending global order within a shard; sort anyway so the invariant
  // merge_shards relies on never depends on the producer.
  std::sort(s.failures.begin(), s.failures.end(),
            [](const ShardFailure& a, const ShardFailure& b) {
              return a.index < b.index;
            });
  return s;
}

json::Value shard_summary_to_json(const ShardSummary& s) {
  json::Object o;
  o.emplace_back("seed", json::Value(hex_string(s.seed)));
  o.emplace_back("scenarios", json::Value(static_cast<double>(s.scenarios)));
  o.emplace_back("shard_index",
                 json::Value(static_cast<double>(s.shard_index)));
  o.emplace_back("shard_count",
                 json::Value(static_cast<double>(s.shard_count)));
  o.emplace_back("scenarios_run",
                 json::Value(static_cast<double>(s.scenarios_run)));
  o.emplace_back("warmup_cycles",
                 json::Value(static_cast<double>(s.warmup_cycles)));
  o.emplace_back("cancelled", json::Value(s.cancelled));
  o.emplace_back("delivered", json::Value(static_cast<double>(s.delivered)));
  o.emplace_back("purged", json::Value(static_cast<double>(s.purged)));
  o.emplace_back("audits", json::Value(static_cast<double>(s.audits)));
  o.emplace_back("flits_tracked",
                 json::Value(static_cast<double>(s.flits_tracked)));
  json::Array failures;
  for (const ShardFailure& f : s.failures) {
    json::Object fo;
    fo.emplace_back("index", json::Value(static_cast<double>(f.index)));
    fo.emplace_back("descriptor", json::Value(f.descriptor));
    fo.emplace_back("error", json::Value(f.error));
    fo.emplace_back("violation", json::Value(f.violation));
    failures.emplace_back(std::move(fo));
  }
  o.emplace_back("failures", json::Value(std::move(failures)));
  return json::Value(std::move(o));
}

ShardSummary shard_summary_from_json(const json::Value& doc) {
  ShardSummary s;
  s.seed = get_u64(doc, "seed");
  s.scenarios = get_u64(doc, "scenarios");
  s.shard_index = get_u64(doc, "shard_index");
  s.shard_count = get_u64(doc, "shard_count");
  s.scenarios_run = get_u64(doc, "scenarios_run");
  s.warmup_cycles = get_u64(doc, "warmup_cycles");
  const json::Value* cancelled = doc.find("cancelled");
  if (cancelled == nullptr) bad("shard summary missing key: cancelled");
  try {
    s.cancelled = cancelled->as_bool();
  } catch (const json::TypeError& e) {
    bad(std::string("cancelled: ") + e.what());
  }
  s.delivered = get_u64(doc, "delivered");
  s.purged = get_u64(doc, "purged");
  s.audits = get_u64(doc, "audits");
  s.flits_tracked = get_u64(doc, "flits_tracked");
  const json::Value* failures = doc.find("failures");
  if (failures == nullptr) bad("shard summary missing key: failures");
  try {
    for (const json::Value& fv : failures->as_array()) {
      ShardFailure f;
      f.index = get_u64(fv, "index");
      f.descriptor = get_str(fv, "descriptor");
      f.error = get_str(fv, "error");
      f.violation = get_str(fv, "violation");
      s.failures.push_back(std::move(f));
    }
  } catch (const json::TypeError& e) {
    bad(std::string("failures: ") + e.what());
  }
  return s;
}

ShardSummary parse_shard_summary(const std::string& text) {
  try {
    return shard_summary_from_json(json::parse(text));
  } catch (const json::ParseError& e) {
    bad(std::string("shard summary is not valid JSON: ") + e.what());
  }
}

MergedCampaign merge_shards(const std::vector<ShardSummary>& shards) {
  if (shards.empty()) bad("no shard summaries to merge");
  const ShardSummary& head = shards.front();
  if (head.shard_count != shards.size()) {
    bad("expected " + std::to_string(head.shard_count) +
        " shard summaries, got " + std::to_string(shards.size()));
  }
  std::vector<bool> seen(shards.size(), false);
  MergedCampaign m;
  m.seed = head.seed;
  m.scenarios = head.scenarios;
  m.warmup_cycles = head.warmup_cycles;
  std::uint64_t run_total = 0;
  for (const ShardSummary& s : shards) {
    if (s.seed != head.seed || s.scenarios != head.scenarios ||
        s.shard_count != head.shard_count ||
        s.warmup_cycles != head.warmup_cycles) {
      bad("shard " + std::to_string(s.shard_index) +
          " belongs to a different campaign (seed/scenarios/shard_count/"
          "warmup_cycles mismatch)");
    }
    if (s.shard_index >= s.shard_count) {
      bad("shard index " + std::to_string(s.shard_index) +
          " out of range for shard_count " + std::to_string(s.shard_count));
    }
    if (seen[static_cast<std::size_t>(s.shard_index)]) {
      bad("duplicate shard index " + std::to_string(s.shard_index));
    }
    seen[static_cast<std::size_t>(s.shard_index)] = true;
    if (s.cancelled) {
      bad("shard " + std::to_string(s.shard_index) +
          " was cancelled; the shard set is incomplete");
    }
    const std::uint64_t expect =
        s.scenarios / s.shard_count +
        (s.shard_index < s.scenarios % s.shard_count ? 1 : 0);
    if (s.scenarios_run != expect) {
      bad("shard " + std::to_string(s.shard_index) + " ran " +
          std::to_string(s.scenarios_run) + " scenarios, expected " +
          std::to_string(expect));
    }
    run_total += s.scenarios_run;
    m.delivered += s.delivered;
    m.purged += s.purged;
    m.audits += s.audits;
    m.flits_tracked += s.flits_tracked;
    m.failures.insert(m.failures.end(), s.failures.begin(), s.failures.end());
  }
  if (run_total != head.scenarios) {
    bad("shards ran " + std::to_string(run_total) +
        " scenarios in total, campaign expects " +
        std::to_string(head.scenarios));
  }
  // Interleave the shards' (already sorted) failure lists into the global
  // index order the unsharded summary prints.
  std::sort(m.failures.begin(), m.failures.end(),
            [](const ShardFailure& a, const ShardFailure& b) {
              return a.index < b.index;
            });
  return m;
}

std::string MergedCampaign::summary_text() const {
  std::ostringstream os;
  os << "htnoc fault campaign seed=0x" << std::hex << seed << std::dec
     << " scenarios=" << scenarios << "\n";
  os << "failures=" << failures.size() << " delivered=" << delivered
     << " purged=" << purged << " audits=" << audits
     << " flits_tracked=" << flits_tracked << "\n";
  for (const ShardFailure& f : failures) {
    os << "FAIL " << format_repro({seed, f.index, warmup_cycles}) << " "
       << f.descriptor << "\n";
    os << "  " << f.error << "\n";
  }
  return os.str();
}

std::string violation_signature(const ShardFailure& f) {
  const std::string& src = f.violation.empty() ? f.error : f.violation;
  std::string sig;
  sig.reserve(src.size());
  bool in_digits = false;
  for (const char c : src) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      if (!in_digits) sig.push_back('#');
      in_digits = true;
    } else {
      sig.push_back(c);
      in_digits = false;
    }
  }
  return sig;
}

std::string MergedCampaign::summary_markdown() const {
  std::ostringstream os;
  os << "| scenarios | failures | packets delivered | packets purged | "
        "audit cycles | flits tracked |\n";
  os << "|---|---|---|---|---|---|\n";
  os << "| " << scenarios << " | " << failures.size() << " | " << delivered
     << " | " << purged << " | " << audits << " | " << flits_tracked
     << " |\n";
  if (failures.empty()) return os.str();

  // One row per distinct violation signature; the representative is the
  // lowest-index failure, and map iteration keeps the table ordered by
  // signature for deterministic output.
  std::map<std::string, std::pair<const ShardFailure*, std::size_t>> groups;
  for (const ShardFailure& f : failures) {
    auto [it, inserted] =
        groups.emplace(violation_signature(f), std::make_pair(&f, 1u));
    if (!inserted) {
      ++it->second.second;
      if (f.index < it->second.first->index) it->second.first = &f;
    }
  }
  os << "\n### Distinct failure signatures\n\n";
  os << "| count | signature | repro | scenario |\n";
  os << "|---|---|---|---|\n";
  for (const auto& [sig, group] : groups) {
    const ShardFailure& rep = *group.first;
    os << "| " << group.second << " | " << sig << " | `"
       << format_repro({seed, rep.index, warmup_cycles}) << "` | "
       << rep.descriptor << " |\n";
  }
  return os.str();
}

}  // namespace htnoc::verify
