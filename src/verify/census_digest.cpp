#include "verify/census_digest.hpp"

#include <vector>

namespace htnoc::verify {

std::uint64_t state_digest(const Network& net) {
  std::uint64_t h = kFnvOffsetBasis;
  std::vector<ResidentFlit> census;
  net.collect_resident(census);
  for (const ResidentFlit& f : census) {
    h = fnv1a_u64(h, f.uid);
    h = fnv1a_u64(h, f.packet);
    h = fnv1a_u64(h, static_cast<std::uint64_t>(f.site));
    h = fnv1a_u64(h, f.node);
    h = fnv1a_u64(
        h, static_cast<std::uint64_t>(static_cast<std::int64_t>(f.port)));
  }
  const Network::UtilizationSample u = net.sample_utilization();
  for (const int v : {u.input_port_flits, u.output_port_flits,
                      u.injection_port_flits, u.routers_all_cores_full,
                      u.routers_majority_cores_full,
                      u.routers_with_blocked_port}) {
    h = fnv1a_u64(h, static_cast<std::uint64_t>(v));
  }
  h = fnv1a_u64(h, net.packets_delivered());
  h = fnv1a_u64(h, net.purge_totals().packets);
  h = fnv1a_u64(h, net.purge_totals().flits);
  h = fnv1a_u64(h, net.peek_next_packet_id());
  return h;
}

}  // namespace htnoc::verify
