// The snapshot codec. Every stateful simulation class befriends
// verify::StateCodec, and all serialization logic lives here in one
// translation unit so the blob layout is a single readable document.
//
// Save and restore share one field-by-field walk: the template parameter is
// either a Saver (wrapping serial::Writer) or a Loader (wrapping
// serial::Reader), so the two directions can never fall out of sync. Sizes
// fixed by construction (VC counts, port counts, router counts) are written
// and verified rather than resized; cycle-boundary staging buffers must be
// empty and are checked, not serialized.
#include "verify/snapshot.hpp"

#include <array>
#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "mitigation/lob.hpp"
#include "mitigation/threat_detector.hpp"
#include "noc/arbiter.hpp"
#include "noc/fault_model.hpp"
#include "noc/flit.hpp"
#include "noc/input_unit.hpp"
#include "noc/link.hpp"
#include "noc/network.hpp"
#include "noc/ni.hpp"
#include "noc/output_unit.hpp"
#include "noc/router.hpp"
#include "sim/simulator.hpp"
#include "trace/events.hpp"
#include "trace/sink.hpp"
#include "traffic/app_profile.hpp"
#include "traffic/generator.hpp"
#include "trojan/tasp.hpp"
#include "verify/auditor.hpp"
#include "verify/census_digest.hpp"

namespace htnoc::verify {

namespace {

/// Archive wrapper for saving: every accessor writes the value it is given.
struct Saver {
  static constexpr bool kLoading = false;
  serial::Writer w;

  void u8(std::uint8_t& v) { w.u8(v); }
  void u16(std::uint16_t& v) { w.u16(v); }
  void u32(std::uint32_t& v) { w.u32(v); }
  void u64(std::uint64_t& v) { w.u64(v); }
  void i32(std::int32_t& v) { w.i32(v); }
  void i64(std::int64_t& v) { w.i64(v); }
  void b(bool& v) { w.b(v); }
  void f64(double& v) { w.f64(v); }
  void str(std::string& v) { w.str(v); }
};

/// Archive wrapper for loading: every accessor overwrites the value.
struct Loader {
  static constexpr bool kLoading = true;
  serial::Reader r;

  Loader(const std::uint8_t* data, std::size_t size) : r(data, size) {}

  void u8(std::uint8_t& v) { v = r.u8(); }
  void u16(std::uint16_t& v) { v = r.u16(); }
  void u32(std::uint32_t& v) { v = r.u32(); }
  void u64(std::uint64_t& v) { v = r.u64(); }
  void i32(std::int32_t& v) { v = r.i32(); }
  void i64(std::int64_t& v) { v = r.i64(); }
  void b(bool& v) { v = r.b(); }
  void f64(double& v) { v = r.f64(); }
  void str(std::string& v) { v = r.str(); }
};

template <class Ar>
void io_int(Ar& ar, int& v) {
  std::int32_t t = static_cast<std::int32_t>(v);
  ar.i32(t);
  if constexpr (Ar::kLoading) v = t;
}

template <class Ar, class E>
void io_enum8(Ar& ar, E& e) {
  std::uint8_t v = static_cast<std::uint8_t>(e);
  ar.u8(v);
  if constexpr (Ar::kLoading) e = static_cast<E>(v);
}

/// A container size fixed by construction: written on save, verified on
/// load (the target was built from a substrate-compatible config, so a
/// mismatch means the blob lies about the fingerprint).
template <class Ar>
void fixed_size(Ar& ar, std::size_t actual, const char* what) {
  std::uint64_t n = actual;
  ar.u64(n);
  if (n != actual) {
    throw SnapshotError(std::string("snapshot size mismatch in ") + what);
  }
}

/// Resizable sequence (vector/deque) of default-constructible elements.
template <class Ar, class C, class Fn>
void io_seq(Ar& ar, C& c, Fn f) {
  std::uint64_t n = c.size();
  ar.u64(n);
  if constexpr (Ar::kLoading) {
    c.clear();
    c.resize(static_cast<std::size_t>(n));
  }
  for (auto& e : c) f(ar, e);
}

/// std::vector<bool> (proxy references), size fixed by construction.
template <class Ar>
void io_bool_vec(Ar& ar, std::vector<bool>& v, const char* what) {
  fixed_size(ar, v.size(), what);
  for (std::size_t i = 0; i < v.size(); ++i) {
    bool bit = v[i];
    ar.b(bit);
    if constexpr (Ar::kLoading) v[i] = bit;
  }
}

template <class Ar, class M, class KFn, class VFn>
void io_map(Ar& ar, M& m, KFn kf, VFn vf) {
  std::uint64_t n = m.size();
  ar.u64(n);
  if constexpr (Ar::kLoading) {
    m.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      typename M::key_type k{};
      kf(ar, k);
      typename M::mapped_type v{};
      vf(ar, v);
      m.emplace(std::move(k), std::move(v));
    }
  } else {
    for (auto& [k, v] : m) {
      auto key = k;
      kf(ar, key);
      vf(ar, v);
    }
  }
}

template <class Ar, class S, class Fn>
void io_set(Ar& ar, S& s, Fn f) {
  std::uint64_t n = s.size();
  ar.u64(n);
  if constexpr (Ar::kLoading) {
    s.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      typename S::value_type v{};
      f(ar, v);
      s.insert(std::move(v));
    }
  } else {
    for (const auto& e : s) {
      auto v = e;
      f(ar, v);
    }
  }
}

constexpr char kMagic[8] = {'H', 'T', 'N', 'O', 'C', 'S', 'N', 'P'};
// magic + version + fingerprint + payload size + payload digest.
constexpr std::size_t kEnvelopeSize = 8 + 4 + 8 + 8 + 8;

[[nodiscard]] std::uint64_t payload_digest(const std::uint8_t* data,
                                           std::size_t n) {
  std::uint64_t h = kFnvOffsetBasis;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

/// The befriended codec. One static template member per class; every member
/// works for both Saver and Loader so layout symmetry is structural.
struct StateCodec {
  // --- plain value types ---

  template <class Ar>
  static void io(Ar& ar, Flit& f) {
    ar.u64(f.packet);
    io_int(ar, f.seq);
    io_enum8(ar, f.type);
    ar.u16(f.src_core);
    ar.u16(f.dest_core);
    ar.u16(f.src_router);
    ar.u16(f.dest_router);
    ar.u32(f.mem_addr);
    io_enum8(ar, f.pclass);
    io_enum8(ar, f.domain);
    ar.u8(f.thread);
    io_int(ar, f.length);
    ar.u64(f.inject_cycle);
    ar.u8(f.vc);
    ar.b(f.route_phase_down);
    ar.u64(f.wire);
  }

  template <class Ar>
  static void io(Ar& ar, PacketInfo& p) {
    ar.u64(p.id);
    ar.u16(p.src_core);
    ar.u16(p.dest_core);
    ar.u16(p.src_router);
    ar.u16(p.dest_router);
    ar.u32(p.mem_addr);
    io_enum8(ar, p.pclass);
    io_enum8(ar, p.domain);
    ar.u8(p.thread);
    io_int(ar, p.length);
    ar.u64(p.inject_cycle);
  }

  template <class Ar>
  static void io(Ar& ar, Codeword72& c) {
    ar.u64(c.lo);
    ar.u8(c.hi);
  }

  template <class Ar>
  static void io(Ar& ar, ObfuscationTag& t) {
    io_enum8(ar, t.method);
    io_enum8(ar, t.granularity);
    ar.u64(t.partner_packet);
    io_int(ar, t.partner_seq);
  }

  template <class Ar>
  static void io(Ar& ar, LinkPhit& p) {
    io(ar, p.flit);
    io(ar, p.codeword);
    io(ar, p.obf);
    ar.u64(p.sent_cycle);
    io_int(ar, p.attempt);
  }

  template <class Ar>
  static void io(Ar& ar, trace::Event& e) {
    ar.u64(e.cycle);
    ar.u64(e.packet);
    ar.u64(e.arg);
    ar.u32(e.seq);
    ar.u16(e.node);
    io_enum8(ar, e.type);
    io_enum8(ar, e.scope);
    std::uint8_t port = static_cast<std::uint8_t>(e.port);
    ar.u8(port);
    if constexpr (Ar::kLoading) e.port = static_cast<std::int8_t>(port);
    ar.u8(e.vc);
    ar.u8(e.aux);
    ar.u8(e.flags);
    ar.u32(e.reserved);
  }

  template <class Ar>
  static void io_rng(Ar& ar, Rng& rng) {
    std::array<std::uint64_t, 4> s = rng.state();
    for (auto& word : s) ar.u64(word);
    if constexpr (Ar::kLoading) rng.set_state(s);
  }

  // --- links and their fault injectors ---

  template <class Ar>
  static void io_injector(Ar& ar, LinkFaultInjector& inj,
                          const std::string& link_name) {
    std::string name = inj.name();
    ar.str(name);
    if constexpr (Ar::kLoading) {
      if (name != inj.name()) {
        throw SnapshotError("fault injector mismatch on link '" + link_name +
                            "': blob has '" + name + "', target has '" +
                            inj.name() + "'");
      }
    }
    if (auto* t = dynamic_cast<trojan::Tasp*>(&inj)) {
      ar.b(t->killsw_);
      io_enum8(ar, t->state_);
      io_int(ar, t->payload_state_);
      ar.u64(t->last_injection_);
      ar.b(t->injected_once_);
      ar.u64(t->stats_.flits_inspected);
      ar.u64(t->stats_.target_sightings);
      ar.u64(t->stats_.injections);
    } else if (auto* tr = dynamic_cast<TransientFaultInjector*>(&inj)) {
      io_rng(ar, tr->rng_);
      ar.u64(tr->faults_injected_);
    } else if (auto* perm = dynamic_cast<PermanentFaultInjector*>(&inj)) {
      // stuck_ is construction-time configuration.
      ar.u64(perm->faults_injected_);
    } else {
      throw SnapshotError("unserializable fault injector '" + name +
                          "' on link '" + link_name + "'");
    }
  }

  template <class Ar>
  static void io_link(Ar& ar, Link& l) {
    ar.b(l.disabled_);
    ar.i64(l.last_send_cycle_);
    io_seq(ar, l.in_flight_, [](Ar& a, auto& f) {
      a.u64(f.arrive);
      StateCodec::io(a, f.phit);
    });
    io_seq(ar, l.credits_, [](Ar& a, auto& c) {
      a.u64(c.arrive);
      a.u8(c.msg.vc);
    });
    io_seq(ar, l.acks_, [](Ar& a, auto& p) {
      a.u64(p.arrive);
      a.u64(p.msg.packet);
      io_int(a, p.msg.seq);
      io_int(a, p.msg.attempt);
      a.b(p.msg.ok);
      a.b(p.msg.escalate_obfuscation);
      a.b(p.msg.bist_requested);
    });
    ar.u64(l.stats_.phits_sent);
    ar.u64(l.stats_.phits_with_injected_faults);
    ar.u64(l.stats_.credits_sent);
    ar.u64(l.stats_.acks_sent);
    ar.u64(l.stats_.nacks_sent);
    // Injectors are matched as a prefix of the target's attach order: a
    // blob saved with fewer injectors (the clean warmup fabric) leaves the
    // target's extra injectors (the scenario's trojans/faults) fresh.
    std::uint64_t n = l.injectors_.size();
    ar.u64(n);
    if constexpr (Ar::kLoading) {
      if (n > l.injectors_.size()) {
        throw SnapshotError("snapshot has more fault injectors than link '" +
                            l.name_ + "'");
      }
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      io_injector(ar, *l.injectors_[static_cast<std::size_t>(i)], l.name_);
    }
  }

  template <class Ar>
  static void io_link_array(Ar& ar, std::vector<std::unique_ptr<Link>>& links,
                            const char* what) {
    fixed_size(ar, links.size(), what);
    for (auto& l : links) {
      bool present = l != nullptr;
      const bool actual = present;
      ar.b(present);
      if constexpr (Ar::kLoading) {
        if (present != actual) {
          throw SnapshotError(std::string("link presence mismatch in ") + what);
        }
      }
      if (l != nullptr) io_link(ar, *l);
    }
  }

  // --- router units ---

  template <class Ar>
  static void io_input(Ar& ar, InputUnit& in) {
    if (!in.staged_arrivals_.empty()) {
      throw SnapshotError(
          "input unit has staged arrivals; snapshots only at cycle "
          "boundaries");
    }
    // Streams serialize their arena-resident flits as count + (flit,
    // arrival) pairs in list (seq-ascending) order — byte-identical to the
    // pre-pool per-stream deque layout. On load the arena is rebuilt from
    // scratch: reset once per input unit, then flits re-allocated in walk
    // order (ascending slots, LIFO free list), so a restored run's handle
    // assignment is a pure function of the restored logical state.
    if constexpr (Ar::kLoading) in.arena_.reset();
    fixed_size(ar, in.vcs_.size(), "input VC count");
    for (auto& vb : in.vcs_) {
      io_seq(ar, vb.streams, [&in](Ar& a, auto& s) {
        a.u64(s.packet);
        std::uint64_t nflits = static_cast<std::uint64_t>(s.flit_count);
        a.u64(nflits);
        if constexpr (Ar::kLoading) {
          pool::FlitHandle prev{};
          s.head = s.tail = pool::FlitHandle{};
          s.flit_count = 0;
          s.front_seq = -1;
          for (std::uint64_t i = 0; i < nflits; ++i) {
            Flit f;
            StateCodec::io(a, f);
            std::uint64_t arrival = 0;
            a.u64(arrival);
            const pool::FlitHandle h = in.arena_.alloc(f, arrival);
            if (prev.null()) {
              s.head = h;
              s.front_seq = f.seq;
            } else {
              in.arena_.set_next(prev, h);
            }
            s.tail = h;
            prev = h;
            ++s.flit_count;
          }
        } else {
          for (pool::FlitHandle h = s.head; !h.null(); h = in.arena_.next(h)) {
            StateCodec::io(a, in.arena_.flit(h));
            std::uint64_t arrival = in.arena_.arrival(h);
            a.u64(arrival);
          }
        }
        io_int(a, s.next_seq);
        io_enum8(a, s.state);
        io_int(a, s.out_port);
        a.b(s.phase_down_next);
        io_int(a, s.out_vc);
        a.u64(s.va_eligible);
        a.u64(s.sa_eligible);
      });
      io_int(ar, vb.occupancy);
    }
    io_seq(ar, in.station_, [](Ar& a, auto& e) {
      StateCodec::io(a, e.phit);
      a.u64(e.decoded_word);
      a.u64(e.arrived);
    });
    io_seq(ar, in.wire_cache_, [](Ar& a, auto& cw) {
      a.u64(cw.packet);
      io_int(a, cw.seq);
      a.u64(cw.wire);
    });
    ar.u64(in.stats_.flits_received);
    ar.u64(in.stats_.nacks_sent);
    ar.u64(in.stats_.corrected_singles);
    ar.u64(in.stats_.silent_corruptions);
    ar.u64(in.stats_.scramble_stalls);
  }

  template <class Ar>
  static void io_output(Ar& ar, OutputUnit& out) {
    if (!out.staged_credits_.empty() || !out.staged_acks_.empty()) {
      throw SnapshotError(
          "output unit has staged control messages; snapshots only at cycle "
          "boundaries");
    }
    io_bool_vec(ar, out.vc_allocated_, "output VC allocation");
    fixed_size(ar, out.credits_.size(), "output credit counters");
    for (auto& c : out.credits_) io_int(ar, c);
    fixed_size(ar, out.last_credit_gain_.size(), "credit-gain timestamps");
    for (auto& c : out.last_credit_gain_) ar.u64(c);
    // The SoA slot lanes serialize interleaved per slot, byte-identical to
    // the old AoS Slot layout. Meta fields mirrored from the flit
    // (packet/seq/vc/domain) are reconstructed on load, not stored twice.
    std::uint64_t nslots = out.meta_.size();
    ar.u64(nslots);
    if constexpr (Ar::kLoading) {
      out.meta_.assign(static_cast<std::size_t>(nslots),
                       OutputUnit::SlotMeta{});
      out.payload_.assign(static_cast<std::size_t>(nslots),
                          OutputUnit::SlotPayload{});
    }
    for (std::size_t i = 0; i < nslots; ++i) {
      auto& m = out.meta_[i];
      auto& p = out.payload_[i];
      StateCodec::io(ar, p.flit);
      io_enum8(ar, m.state);
      ar.u64(m.eligible);
      ar.u64(m.entered);
      io_int(ar, m.attempt);
      ar.b(m.escalate);
      ar.b(m.forced_plain);
      StateCodec::io(ar, p.last_tag);
      if constexpr (Ar::kLoading) {
        m.packet = p.flit.packet;
        m.seq = p.flit.seq;
        m.vc = p.flit.vc;
        m.domain = p.flit.domain;
      }
    }
    ar.u64(out.stats_.flits_accepted);
    ar.u64(out.stats_.transmissions);
    ar.u64(out.stats_.retransmissions);
    ar.u64(out.stats_.acks);
    ar.u64(out.stats_.nacks);
    ar.u64(out.stats_.obfuscated_sends);
    ar.u64(out.stats_.reorder_holds);
    ar.u64(out.stats_.last_successful_lt);
  }

  template <class Ar>
  static void io_arbiter(Ar& ar, Arbiter& arb) {
    auto* rr = dynamic_cast<RoundRobinArbiter*>(&arb);
    auto* mx = dynamic_cast<MatrixArbiter*>(&arb);
    std::uint8_t kind = rr != nullptr ? 0 : 1;
    const std::uint8_t actual = kind;
    ar.u8(kind);
    if constexpr (Ar::kLoading) {
      if (kind != actual) throw SnapshotError("arbiter kind mismatch");
    }
    if (rr != nullptr) {
      io_int(ar, rr->next_);
    } else if (mx != nullptr) {
      fixed_size(ar, mx->prio_.size(), "matrix arbiter rows");
      for (auto& row : mx->prio_) io_bool_vec(ar, row, "matrix arbiter row");
    } else {
      throw SnapshotError("unserializable arbiter");
    }
  }

  template <class Ar>
  static void io_router(Ar& ar, Router& r) {
    ar.u64(r.stats_.flits_switched);
    ar.u64(r.stats_.rc_computations);
    ar.u64(r.stats_.rc_stalls_unroutable);
    ar.u64(r.stats_.va_grants);
    ar.u64(r.stats_.va_stalls_no_free_vc);
    ar.u64(r.stats_.sa_requests);
    ar.u64(r.stats_.sa_stalls_no_slot);
    ar.u64(r.stats_.sa_stalls_no_credit);
    fixed_size(ar, r.va_arbiters_.size(), "VA arbiters");
    for (auto& a : r.va_arbiters_) io_arbiter(ar, *a);
    fixed_size(ar, r.sa_input_arbiters_.size(), "SA input arbiters");
    for (auto& a : r.sa_input_arbiters_) io_arbiter(ar, *a);
    fixed_size(ar, r.sa_output_arbiters_.size(), "SA output arbiters");
    for (auto& a : r.sa_output_arbiters_) io_arbiter(ar, *a);
    fixed_size(ar, r.inputs_.size(), "router input ports");
    for (auto& in : r.inputs_) io_input(ar, *in);
    fixed_size(ar, r.outputs_.size(), "router output ports");
    for (auto& out : r.outputs_) io_output(ar, *out);
  }

  template <class Ar>
  static void io_ni(Ar& ar, NetworkInterface& ni) {
    if (!ni.pending_ejections_.empty()) {
      throw SnapshotError(
          "NI has staged ejections; snapshots only at cycle boundaries");
    }
    for (auto& s : ni.streams_) {
      io_seq(ar, s.queue, [](Ar& a, Flit& f) { StateCodec::io(a, f); });
      io_int(ar, s.out_vc);
      a_u64(ar, s.packet);
    }
    ar.b(ni.saturated_);
    ar.u64(ni.stats_.packets_injected);
    ar.u64(ni.stats_.packets_delivered);
    ar.u64(ni.stats_.flits_delivered);
    ar.u64(ni.stats_.inject_rejects);
    io_output(ar, ni.out_);
    io_input(ar, ni.in_);
  }

  // PacketId is std::uint64_t; this exists only to keep io_ni readable.
  template <class Ar>
  static void a_u64(Ar& ar, std::uint64_t& v) {
    ar.u64(v);
  }

  // --- the network ---

  static void reinstall_routing(Network& net) {
    // The routing tables are a pure function of topology + disabled links,
    // so restore re-runs the original installer instead of serializing
    // them. A fresh Network already carries the default routing.
    switch (net.routing_mode_) {
      case Network::RoutingMode::kWestFirst:
        net.use_west_first_routing();
        break;
      case Network::RoutingMode::kUpDown:
        net.use_updown_routing();
        break;
      case Network::RoutingMode::kDefault:
        break;
    }
  }

  template <class Ar>
  static void io_network(Ar& ar, Network& net) {
    ar.u64(net.now_);
    ar.u64(net.next_packet_id_);
    io_set(ar, net.disabled_, [](Ar& a, LinkRef& l) {
      a.u16(l.from);
      io_enum8(a, l.dir);
    });
    ar.u64(net.purge_totals_.packets);
    ar.u64(net.purge_totals_.flits);
    ar.u64(net.step_stats_.router_steps);
    ar.u64(net.step_stats_.router_skips);
    ar.u64(net.step_stats_.ni_steps);
    ar.u64(net.step_stats_.ni_skips);
    io_seq(ar, net.router_blocked_, [](Ar& a, char& c) {
      std::uint8_t v = static_cast<std::uint8_t>(c);
      a.u8(v);
      if constexpr (Ar::kLoading) c = static_cast<char>(v);
    });
    io_enum8(ar, net.routing_mode_);
    // Reinstall before the routers load: up*/down* reconstruction sends
    // kWaitVA streams back through RC, which must not clobber the restored
    // stream states.
    if constexpr (Ar::kLoading) reinstall_routing(net);
    fixed_size(ar, net.routers_.size(), "router count");
    for (auto& r : net.routers_) io_router(ar, *r);
    io_link_array(ar, net.mesh_links_, "mesh links");
    io_link_array(ar, net.inj_links_, "injection links");
    io_link_array(ar, net.ej_links_, "ejection links");
    fixed_size(ar, net.nis_.size(), "NI count");
    for (auto& ni : net.nis_) io_ni(ar, *ni);
  }

  // --- mitigation components ---

  template <class Ar>
  static void io_port_state(Ar& ar,
                            mitigation::RouterThreatDetector::PortState& ps) {
    // ps.link deliberately not serialized: wiring from construction.
    io_seq(ar, ps.history, [](Ar& a, auto& h) {
      a.u64(h.uid);
      io_int(a, h.fault_count);
      a.u8(h.last_syndrome);
      a.b(h.syndrome_moved);
      a.u64(h.last_seen);
    });
    io_int(ar, ps.repeat_fault_flits);
    io_int(ar, ps.max_moving_fault_count);
    io_map(
        ar, ps.syndrome_counts, [](Ar& a, std::uint8_t& k) { a.u8(k); },
        [](Ar& a, int& v) { io_int(a, v); });
    io_int(ar, ps.max_syndrome_repeat);
    ar.b(ps.bist_pending);
    ar.u64(ps.bist_done_at);
    ar.b(ps.bist_ran);
    ar.b(ps.bist_report.permanent_fault_found);
    io_seq(ar, ps.bist_report.stuck_wires, [](Ar& a, unsigned& wire) {
      std::uint32_t v = wire;
      a.u32(v);
      if constexpr (Ar::kLoading) wire = v;
    });
    io_enum8(ar, ps.cls);
    ar.u64(ps.stats.uncorrectable);
    ar.u64(ps.stats.corrected);
    ar.u64(ps.stats.clean);
    ar.u64(ps.stats.escalations_advised);
    ar.u64(ps.stats.bist_scans);
  }

  template <class Ar>
  static void io_detector(Ar& ar, mitigation::RouterThreatDetector& det) {
    std::uint64_t n = det.ports_.size();
    ar.u64(n);
    if constexpr (Ar::kLoading) {
      // Merge into existing entries so set_port_link wiring survives.
      for (std::uint64_t i = 0; i < n; ++i) {
        int port = 0;
        io_int(ar, port);
        io_port_state(ar, det.ports_[port]);
      }
    } else {
      for (auto& [port, ps] : det.ports_) {
        int p = port;
        io_int(ar, p);
        io_port_state(ar, ps);
      }
    }
  }

  template <class Ar>
  static void io_lob(Ar& ar, mitigation::LObController& lob) {
    io_map(
        ar, lob.flit_states_, [](Ar& a, std::uint64_t& k) { a.u64(k); },
        [](Ar& a, auto& fs) {
          io_int(a, fs.seq_index);
          a.b(fs.active);
        });
    io_map(
        ar, lob.success_log_, [](Ar& a, std::uint32_t& k) { a.u32(k); },
        [](Ar& a, int& v) { io_int(a, v); });
    ar.u64(lob.stats_.obfuscated_attempts);
    ar.u64(lob.stats_.successes);
    ar.u64(lob.stats_.method_exhaustions);
    ar.u64(lob.stats_.log_hits);
  }

  // --- verification / observability ---

  template <class Ar>
  static void io_auditor(Ar& ar, NetworkInvariantAuditor& aud) {
    io_map(
        ar, aud.ledger_, [](Ar& a, std::uint64_t& k) { a.u64(k); },
        [](Ar& a, auto& e) {
          a.u64(e.packet);
          io_enum8(a, e.state);
          a.u64(e.since);
        });
    io_set(ar, aud.purged_packets_, [](Ar& a, PacketId& p) { a.u64(p); });
    io_seq(ar, aud.violations_, [](Ar& a, Violation& v) {
      a.u64(v.cycle);
      io_enum8(a, v.kind);
      a.u64(v.uid);
      a.u64(v.packet);
      a.str(v.detail);
      io_seq(a, v.context,
             [](Ar& aa, trace::Event& e) { StateCodec::io(aa, e); });
    });
    io_set(ar, aud.reported_, [](Ar& a, std::pair<std::uint64_t, int>& p) {
      a.u64(p.first);
      io_int(a, p.second);
    });
    io_seq(ar, aud.hol_, [](Ar& a, auto& h) {
      a.u64(h.packet);
      io_int(a, h.next_seq);
      a.u64(h.ready_since);
    });
    ar.u64(aud.audits_run_);
    ar.u64(aud.flits_tracked_);
  }

  template <class Ar>
  static void io_trace(Ar& ar, trace::TraceSink& sink) {
    std::uint64_t cap = sink.ring_.size();
    std::uint32_t cats = sink.cfg_.categories;
    const std::uint64_t actual_cap = cap;
    const std::uint32_t actual_cats = cats;
    ar.u64(cap);
    ar.u32(cats);
    if constexpr (Ar::kLoading) {
      if (cap != actual_cap || cats != actual_cats) {
        throw SnapshotError("trace sink configuration mismatch");
      }
    }
    ar.u64(sink.head_);
    // Only the surviving window [head - n, head) is observable (snapshot()
    // never reaches older slots), so that window is all that round-trips.
    const std::uint64_t n = sink.head_ < cap ? sink.head_ : cap;
    for (std::uint64_t i = sink.head_ - n; i < sink.head_; ++i) {
      io(ar, sink.ring_[static_cast<std::size_t>(i) & sink.mask_]);
    }
  }

  // --- traffic generators ---

  template <class Ar>
  static void io_model(Ar& ar, traffic::AppTrafficModel& m) {
    traffic::AppProfile& p = m.profile_;
    ar.str(p.name);
    ar.f64(p.injection_rate);
    io_seq(ar, p.hotspots, [](Ar& a, std::pair<RouterId, double>& h) {
      a.u16(h.first);
      a.f64(h.second);
    });
    ar.f64(p.background_weight);
    ar.f64(p.distance_decay);
    ar.f64(p.reply_fraction);
    io_int(ar, p.min_len);
    io_int(ar, p.max_len);
    ar.u32(p.mem_base);
    ar.u32(p.mem_span);
    // The sampling tables are a pure function of the profile + geometry.
    if constexpr (Ar::kLoading) m.rebuild_tables();
  }

  template <class Ar>
  static void io_generator(Ar& ar, traffic::TrafficGenerator& g) {
    io_rng(ar, g.rng_);
    fixed_size(ar, g.backlog_.size(), "generator backlog lanes");
    for (auto& q : g.backlog_) {
      io_seq(ar, q, [](Ar& a, PacketInfo& p) { StateCodec::io(a, p); });
    }
    io_map(
        ar, g.mine_, [](Ar& a, PacketId& k) { a.u64(k); },
        [](Ar& a, PacketInfo& v) { StateCodec::io(a, v); });
    ar.u64(g.outstanding_);
    ar.u64(g.stats_.requests_generated);
    ar.u64(g.stats_.replies_generated);
    ar.u64(g.stats_.packets_injected);
    ar.u64(g.stats_.packets_delivered);
    ar.u64(g.stats_.flits_injected);
    ar.u64(g.stats_.backlog_peak);
    ar.u64(g.stats_.latency_sum);
    ar.u64(g.stats_.migrations);
    ar.u64(g.stats_.latency_max);
    io_model(ar, g.model_);
  }

  // --- the whole simulator ---

  template <class Ar>
  static void io_all(Ar& ar, sim::Simulator& s,
                     const std::vector<traffic::TrafficGenerator*>& gens) {
    io_network(ar, *s.net_);

    // Trojan state rides in the link injector sections; detectors and L-Ob
    // controllers are fork-friendly: an empty blob section (a warmup saved
    // with mitigation off) leaves the target's mitigation state fresh.
    std::uint64_t nd = s.detectors_.size();
    ar.u64(nd);
    if (nd != 0) {
      if (nd != s.detectors_.size()) {
        throw SnapshotError("threat detector count mismatch");
      }
      for (auto& d : s.detectors_) io_detector(ar, *d);
    }

    std::uint64_t nl = s.lobs_.size();
    ar.u64(nl);
    if (nl != 0) {
      if (nl != s.lobs_.size()) {
        throw SnapshotError("L-Ob controller count mismatch");
      }
      for (auto& [key, lob] : s.lobs_) {
        std::uint16_t router = key.first;
        int port = key.second;
        ar.u16(router);
        io_int(ar, port);
        if constexpr (Ar::kLoading) {
          if (router != key.first || port != key.second) {
            throw SnapshotError("L-Ob controller key mismatch");
          }
        }
        io_lob(ar, *lob);
      }
    }

    io_seq(ar, s.pending_reroutes_, [](Ar& a, auto& pr) {
      a.u16(pr.receiver);
      io_int(a, pr.in_port);
      a.u64(pr.ready_at);
    });
    io_int(ar, s.stats_.links_disabled);
    ar.u64(s.stats_.packets_purged);
    ar.u64(s.stats_.flits_purged_total);
    io_int(ar, s.stats_.routing_reconfigurations);
    io_int(ar, s.stats_.reroutes_refused_disconnect);

    // Auditor and trace presence are strict: restoring an audited run into
    // an unaudited simulator (or vice versa) would desynchronize the ledger
    // against the resident census on the very next audit.
    bool has_auditor = s.auditor_ != nullptr;
    const bool target_auditor = has_auditor;
    ar.b(has_auditor);
    if constexpr (Ar::kLoading) {
      if (has_auditor != target_auditor) {
        throw SnapshotError("auditor presence mismatch");
      }
    }
    if (target_auditor) io_auditor(ar, *s.auditor_);

    bool has_trace = s.trace_sink_ != nullptr;
    const bool target_trace = has_trace;
    ar.b(has_trace);
    if constexpr (Ar::kLoading) {
      if (has_trace != target_trace) {
        throw SnapshotError("trace sink presence mismatch");
      }
    }
    if (target_trace) io_trace(ar, *s.trace_sink_);

    std::uint64_t ng = gens.size();
    ar.u64(ng);
    if constexpr (Ar::kLoading) {
      if (ng != gens.size()) {
        throw SnapshotError("traffic generator count mismatch: blob has " +
                            std::to_string(ng) + ", caller passed " +
                            std::to_string(gens.size()));
      }
    }
    for (auto* g : gens) io_generator(ar, *g);
  }
};

std::uint64_t substrate_fingerprint(const NocConfig& cfg) {
  std::uint64_t h = kFnvOffsetBasis;
  h = fnv1a_u64(h, static_cast<std::uint64_t>(cfg.topology));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(cfg.mesh_width));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(cfg.mesh_height));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(cfg.concentration));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(cfg.vcs_per_port));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(cfg.buffer_depth));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(cfg.retrans_scheme));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(cfg.retrans_depth));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(cfg.retrans_per_vc_depth));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(cfg.ecc_scheme));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(cfg.stage_bw_rc));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(cfg.stage_va));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(cfg.stage_sa));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(cfg.stage_st));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(cfg.stage_lt));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(cfg.injection_queue_depth));
  h = fnv1a_u64(h, cfg.tdm_enabled ? 1 : 0);
  return h;
}

std::vector<std::uint8_t> save_snapshot(
    const sim::Simulator& sim,
    const std::vector<const traffic::TrafficGenerator*>& generators) {
  // The codec walk is direction-agnostic and never mutates on save; the
  // const_casts keep one template serving both directions.
  std::vector<traffic::TrafficGenerator*> gens;
  gens.reserve(generators.size());
  for (const auto* g : generators) {
    gens.push_back(const_cast<traffic::TrafficGenerator*>(g));
  }
  Saver ar;
  StateCodec::io_all(ar, const_cast<sim::Simulator&>(sim), gens);
  const std::vector<std::uint8_t> payload = ar.w.take();

  serial::Writer env;
  for (char c : kMagic) env.u8(static_cast<std::uint8_t>(c));
  env.u32(kSnapshotVersion);
  env.u64(substrate_fingerprint(sim.config().noc));
  env.u64(payload.size());
  env.u64(payload_digest(payload.data(), payload.size()));
  std::vector<std::uint8_t> blob = env.take();
  blob.insert(blob.end(), payload.begin(), payload.end());
  return blob;
}

void load_snapshot(sim::Simulator& sim,
                   const std::vector<traffic::TrafficGenerator*>& generators,
                   const std::vector<std::uint8_t>& blob) {
  if (blob.size() < kEnvelopeSize) {
    throw SnapshotError("snapshot blob truncated: no envelope");
  }
  serial::Reader env(blob.data(), kEnvelopeSize);
  for (char c : kMagic) {
    if (env.u8() != static_cast<std::uint8_t>(c)) {
      throw SnapshotError("bad snapshot magic");
    }
  }
  const std::uint32_t version = env.u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError("unsupported snapshot version " +
                        std::to_string(version));
  }
  const std::uint64_t fp = env.u64();
  const std::uint64_t want = substrate_fingerprint(sim.config().noc);
  if (fp != want) {
    throw SnapshotError(
        "substrate fingerprint mismatch: the blob was saved from a "
        "structurally different NocConfig");
  }
  const std::uint64_t payload_size = env.u64();
  const std::uint64_t digest = env.u64();
  if (blob.size() - kEnvelopeSize != payload_size) {
    throw SnapshotError("snapshot blob truncated: payload size mismatch");
  }
  const std::uint8_t* payload = blob.data() + kEnvelopeSize;
  if (payload_digest(payload, static_cast<std::size_t>(payload_size)) !=
      digest) {
    throw SnapshotError("snapshot integrity digest mismatch");
  }
  // Structural parsing only starts on a digest-verified payload, so any
  // Truncated below means a layout bug, not user-corrupted input. On throw
  // the target simulator is partially written and must be discarded.
  try {
    Loader ar(payload, static_cast<std::size_t>(payload_size));
    StateCodec::io_all(ar, sim, generators);
    if (!ar.r.done()) {
      throw SnapshotError("snapshot payload has trailing bytes");
    }
  } catch (const serial::Truncated&) {
    throw SnapshotError("snapshot payload truncated mid-record");
  }
}

}  // namespace htnoc::verify
