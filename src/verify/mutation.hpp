// Mutation self-test registry. Each mutation is a deliberately wrong
// behavior compiled into the NoC substrate behind an HTNOC_MUTATION_* macro
// (configure with -DHTNOC_MUTATION=<NAME>); CI builds every mutant and runs
// the auditor self-test to prove each violation class is actually caught —
// an auditor that never fires is indistinguishable from one that works.
#pragma once

#include "verify/auditor.hpp"

namespace htnoc::verify {

/// Name of the mutation compiled into this binary ("" for a clean build).
[[nodiscard]] constexpr const char* compiled_mutation() noexcept {
#if defined(HTNOC_MUTATION_DROP_ACK)
  return "DROP_ACK";
#elif defined(HTNOC_MUTATION_PURGE_SLOT_LEAK)
  return "PURGE_SLOT_LEAK";
#elif defined(HTNOC_MUTATION_SKIP_CREDIT)
  return "SKIP_CREDIT";
#elif defined(HTNOC_MUTATION_EXTRA_CREDIT)
  return "EXTRA_CREDIT";
#elif defined(HTNOC_MUTATION_DOUBLE_DELIVER)
  return "DOUBLE_DELIVER";
#elif defined(HTNOC_MUTATION_LOSE_FLIT)
  return "LOSE_FLIT";
#elif defined(HTNOC_MUTATION_PHANTOM_FLIT)
  return "PHANTOM_FLIT";
#elif defined(HTNOC_MUTATION_BLIND_SATURATION)
  return "BLIND_SATURATION";
#else
  return "";
#endif
}

/// The violation class this binary's mutation must (at minimum) trip.
/// Mutations cascade — DROP_ACK also breaks credit conservation, exactly as
/// the real hardware fault would — so tests assert the expected kind is
/// present, not that it is the only kind reported.
[[nodiscard]] constexpr ViolationKind expected_violation() noexcept {
#if defined(HTNOC_MUTATION_DROP_ACK)
  return ViolationKind::kAckSlotLeak;
#elif defined(HTNOC_MUTATION_PURGE_SLOT_LEAK)
  return ViolationKind::kPurgeLeak;
#elif defined(HTNOC_MUTATION_SKIP_CREDIT)
  return ViolationKind::kCreditConservation;
#elif defined(HTNOC_MUTATION_EXTRA_CREDIT)
  return ViolationKind::kCreditConservation;
#elif defined(HTNOC_MUTATION_DOUBLE_DELIVER)
  return ViolationKind::kDuplicateDelivery;
#elif defined(HTNOC_MUTATION_LOSE_FLIT)
  return ViolationKind::kFlitLoss;
#elif defined(HTNOC_MUTATION_PHANTOM_FLIT)
  return ViolationKind::kUnknownFlit;
#elif defined(HTNOC_MUTATION_BLIND_SATURATION)
  return ViolationKind::kSilentStarvation;
#else
  return ViolationKind::kFlitLoss;  // unused in clean builds
#endif
}

}  // namespace htnoc::verify
