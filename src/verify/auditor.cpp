#include "verify/auditor.hpp"

#include <algorithm>
#include <sstream>

namespace htnoc::verify {

const char* to_string(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::kFlitLoss: return "flit_loss";
    case ViolationKind::kDuplicateDelivery: return "duplicate_delivery";
    case ViolationKind::kPurgeLeak: return "purge_leak";
    case ViolationKind::kAckSlotLeak: return "ack_slot_leak";
    case ViolationKind::kUnknownFlit: return "unknown_flit";
    case ViolationKind::kCreditConservation: return "credit_conservation";
    case ViolationKind::kSilentStarvation: return "silent_starvation";
  }
  return "?";
}

namespace {

/// FNV-1a — a stable dedup key for string-valued violations.
std::uint64_t hash_detail(const std::string& s) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t uid_of(PacketId p, int seq) noexcept {
  return (static_cast<std::uint64_t>(p) << 8) ^
         static_cast<std::uint64_t>(seq & 0xFF);
}

}  // namespace

std::string Violation::to_string() const {
  std::ostringstream os;
  os << "cycle " << cycle << ": " << verify::to_string(kind);
  if (packet != kInvalidPacket) os << " packet=" << packet;
  if (uid != 0) os << " uid=0x" << std::hex << uid << std::dec;
  if (!detail.empty()) os << " — " << detail;
  if (!context.empty()) os << " [" << context.size() << " trace events]";
  return os.str();
}

void NetworkInvariantAuditor::on_packet_injected(Cycle now,
                                                 const PacketInfo& info) {
  for (int seq = 0; seq < info.length; ++seq) {
    const std::uint64_t uid = uid_of(info.id, seq);
    auto [it, inserted] = ledger_.try_emplace(
        uid, LedgerEntry{info.id, LedgerEntry::State::kResident, now});
    if (!inserted) {
      record(now, ViolationKind::kUnknownFlit, uid, info.id,
             "packet id reused at injection");
      it->second = LedgerEntry{info.id, LedgerEntry::State::kResident, now};
    }
    ++flits_tracked_;
  }
}

void NetworkInvariantAuditor::on_flit_delivered(Cycle now, const Flit& flit) {
  const std::uint64_t uid = flit.flit_uid();
  const auto it = ledger_.find(uid);
  if (it == ledger_.end()) {
    record(now, ViolationKind::kUnknownFlit, uid, flit.packet,
           "delivered flit was never injected");
    return;
  }
  switch (it->second.state) {
    case LedgerEntry::State::kResident:
      it->second.state = LedgerEntry::State::kDelivered;
      it->second.since = now;
      break;
    case LedgerEntry::State::kDelivered:
      record(now, ViolationKind::kDuplicateDelivery, uid, flit.packet,
             "flit consumed by an ejection sink twice");
      break;
    case LedgerEntry::State::kPurged:
      record(now, ViolationKind::kPurgeLeak, uid, flit.packet,
             "flit delivered after its packet was purged");
      break;
  }
}

void NetworkInvariantAuditor::on_flits_purged(
    Cycle now, PacketId p, const std::vector<std::uint64_t>& uids) {
  purged_packets_.insert(p);
  for (const std::uint64_t uid : uids) {
    const auto it = ledger_.find(uid);
    if (it == ledger_.end()) {
      record(now, ViolationKind::kUnknownFlit, uid, p,
             "purged flit was never injected");
      continue;
    }
    it->second.state = LedgerEntry::State::kPurged;
    it->second.since = now;
  }
  // The purge claims the whole packet left the fabric, so flip every
  // still-resident flit of `p` — not only the listed uids. A purge that
  // skipped a slot (and its uid) is then still caught by the census as a
  // kPurgeLeak instead of silently passing as "resident".
  const std::uint64_t lo = uid_of(p, 0);
  for (auto it = ledger_.lower_bound(lo);
       it != ledger_.end() && it->first <= (lo | 0xFF); ++it) {
    if (it->second.packet != p) continue;
    if (it->second.state == LedgerEntry::State::kResident) {
      it->second.state = LedgerEntry::State::kPurged;
      it->second.since = now;
    }
  }
}

void NetworkInvariantAuditor::on_cycle_end() {
  const Cycle now = net_.now();
  if (cfg_.period > 1 && now % cfg_.period != 0) return;
  ++audits_run_;
  audit(now);
}

void NetworkInvariantAuditor::audit(Cycle now) {
  check_census(now);
  const std::string credit = net_.check_invariants();
  if (!credit.empty()) {
    record(now, ViolationKind::kCreditConservation, hash_detail(credit),
           kInvalidPacket, credit);
  }
  check_starvation(now);
}

void NetworkInvariantAuditor::check_census(Cycle now) {
  census_.clear();
  net_.collect_resident(census_);
  std::sort(census_.begin(), census_.end(),
            [](const ResidentFlit& a, const ResidentFlit& b) {
              return a.uid < b.uid;
            });

  // Merge-walk the sorted census against the uid-ordered ledger.
  std::size_t i = 0;
  auto it = ledger_.begin();
  while (i < census_.size() || it != ledger_.end()) {
    if (it == ledger_.end() ||
        (i < census_.size() && census_[i].uid < it->first)) {
      // Census uid with no ledger entry: a flit that was never injected.
      const ResidentFlit& r = census_[i];
      std::ostringstream os;
      os << "resident flit without an injection record at "
         << htnoc::to_string(r.site) << " node=" << r.node
         << " port=" << static_cast<int>(r.port);
      record(now, ViolationKind::kUnknownFlit, r.uid, r.packet, os.str());
      const std::uint64_t uid = r.uid;
      while (i < census_.size() && census_[i].uid == uid) ++i;
      continue;
    }
    if (i >= census_.size() || it->first < census_[i].uid) {
      // Ledger uid absent from the census.
      LedgerEntry& e = it->second;
      if (e.state == LedgerEntry::State::kResident) {
        std::ostringstream os;
        os << "flit vanished from the fabric (resident since cycle "
           << e.since << ")";
        record(now, ViolationKind::kFlitLoss, it->first, e.packet, os.str());
        it = ledger_.erase(it);
      } else if (now > e.since + cfg_.ack_grace) {
        // Fully retired (delivered/purged, no residue left): garbage-collect
        // so the ledger tracks only in-flight and recently-retired flits.
        it = ledger_.erase(it);
      } else {
        ++it;
      }
      continue;
    }
    // Present in both. A flit may occupy several sites at once (slot +
    // receiver buffer while the ACK is in flight); all share the verdict.
    const std::uint64_t uid = it->first;
    const LedgerEntry& e = it->second;
    const ResidentFlit& r = census_[i];
    if (e.state == LedgerEntry::State::kPurged) {
      std::ostringstream os;
      os << "flit of purged packet still resident at "
         << htnoc::to_string(r.site) << " node=" << r.node
         << " port=" << static_cast<int>(r.port);
      record(now, ViolationKind::kPurgeLeak, uid, e.packet, os.str());
    } else if (e.state == LedgerEntry::State::kDelivered &&
               now > e.since + cfg_.ack_grace) {
      std::ostringstream os;
      os << "flit delivered at cycle " << e.since << " still resident at "
         << htnoc::to_string(r.site) << " node=" << r.node
         << " port=" << static_cast<int>(r.port)
         << " (ACK never cleared the slot?)";
      record(now, ViolationKind::kAckSlotLeak, uid, e.packet, os.str());
    }
    while (i < census_.size() && census_[i].uid == uid) ++i;
    ++it;
  }
}

void NetworkInvariantAuditor::check_starvation(Cycle now) {
  const auto& geom = net_.geometry();
  const int routers = geom.num_routers();
  if (routers == 0) return;
  const int ports = net_.router(0).num_ports();
  const int vcs = net_.config().vcs_per_port;
  hol_.resize(static_cast<std::size_t>(routers) *
              static_cast<std::size_t>(ports) * static_cast<std::size_t>(vcs));

  for (int r = 0; r < routers; ++r) {
    Router& router = net_.router(static_cast<RouterId>(r));
    // Any blocked output port means the saturation machinery has fired (or
    // would, were anyone sampling): back-pressure stalls on this router are
    // accounted for and not "silent".
    bool blocked = false;
    for (int p = 0; p < ports && !blocked; ++p) {
      blocked = router.output(p).blocked(now);
    }
    for (int p = 0; p < ports; ++p) {
      const InputUnit& in = router.input(p);
      for (int vc = 0; vc < vcs; ++vc) {
        HolWatch& w =
            hol_[(static_cast<std::size_t>(r) * static_cast<std::size_t>(ports) +
                  static_cast<std::size_t>(p)) *
                     static_cast<std::size_t>(vcs) +
                 static_cast<std::size_t>(vc)];
        const auto& buf = in.vcbuf(vc);
        // Only committed (kActive) streams are watched: a stream holding an
        // output VC with its in-order flit ready has nothing between it and
        // the crossbar except arbitration (fair) or back-pressure (which
        // shows up as a blocked output port above).
        if (buf.streams.empty() ||
            buf.streams.front().state != InputUnit::PacketStream::State::kActive ||
            !in.front_flit_ready(now, vc)) {
          w = HolWatch{};
          continue;
        }
        const InputUnit::PacketStream& s = buf.streams.front();
        if (w.packet != s.packet || w.next_seq != s.next_seq) {
          w.packet = s.packet;
          w.next_seq = s.next_seq;
          w.ready_since = now;
          continue;
        }
        if (blocked) {
          // Progress is legitimately stalled; restart the clock so the watch
          // re-arms only after the congestion report clears.
          w.ready_since = now;
          continue;
        }
        if (now - w.ready_since >= cfg_.deadlock_horizon) {
          std::ostringstream os;
          os << "router " << r << " port " << p << " vc " << vc
             << ": in-order flit of packet " << s.packet << " (seq "
             << s.next_seq << ") ready but unserved for "
             << (now - w.ready_since)
             << " cycles with no blocked-port report";
          const std::uint64_t key =
              (static_cast<std::uint64_t>(r) << 32) |
              (static_cast<std::uint64_t>(p) << 16) |
              static_cast<std::uint64_t>(vc);
          record(now, ViolationKind::kSilentStarvation, key, s.packet,
                 os.str());
          w.ready_since = now;  // re-arm instead of re-reporting every cycle
        }
      }
    }
  }
}

void NetworkInvariantAuditor::record(Cycle now, ViolationKind kind,
                                     std::uint64_t uid, PacketId packet,
                                     std::string detail) {
  if (already_reported(kind, uid)) return;
  if (violations_.size() >= cfg_.max_violations) return;
  Violation v;
  v.cycle = now;
  v.kind = kind;
  v.uid = uid;
  v.packet = packet;
  v.detail = std::move(detail);
  if (sink_ != nullptr && cfg_.trace_context > 0) {
    std::vector<trace::Event> tail = sink_->snapshot();
    if (tail.size() > cfg_.trace_context) {
      tail.erase(tail.begin(),
                 tail.end() - static_cast<std::ptrdiff_t>(cfg_.trace_context));
    }
    v.context = std::move(tail);
  }
  violations_.push_back(std::move(v));
}

bool NetworkInvariantAuditor::already_reported(ViolationKind kind,
                                               std::uint64_t key) {
  return !reported_.emplace(key, static_cast<int>(kind)).second;
}

std::string NetworkInvariantAuditor::report() const {
  std::ostringstream os;
  for (const Violation& v : violations_) os << v.to_string() << "\n";
  return os.str();
}

}  // namespace htnoc::verify
