// Merging sharded fault-campaign runs back into one verdict.
//
// A campaign split over N processes (CampaignSpec::shard_index/shard_count)
// produces N shard summaries. summarize_shard() distills a shard's
// CampaignResult into the portable ShardSummary document (JSON round-trip
// below), and merge_shards() recombines the N documents — validating that
// they really are the complete, compatible shard set of one campaign — into
// a MergedCampaign whose summary_text() is byte-identical to the
// summary_text() of the same campaign run unsharded in a single process.
// That byte equality is the CI contract: the sharded-soak workflow `cmp`s
// the merged summary against a single-process run on every PR.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "verify/campaign.hpp"

namespace htnoc::verify {

/// Shard summaries passed to merge_shards() are inconsistent: wrong count,
/// mixed campaigns, duplicate/missing shard indices, or a cancelled shard.
class MergeError : public std::runtime_error {
 public:
  explicit MergeError(const std::string& what) : std::runtime_error(what) {}
};

/// One failing scenario, as carried across the shard boundary. `error` is
/// the first line of the scenario's error text (what summary_text prints
/// under the FAIL line); `violation` is the line after it — the first
/// concrete violation — which drives failure deduplication.
struct ShardFailure {
  std::uint64_t index = 0;  ///< Global scenario index.
  std::string descriptor;
  std::string error;
  std::string violation;
};

/// The portable distillation of one shard's CampaignResult.
struct ShardSummary {
  std::uint64_t seed = 0;
  std::uint64_t scenarios = 0;  ///< Whole-campaign total, not this shard's.
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
  std::uint64_t scenarios_run = 0;  ///< This shard's local count.
  Cycle warmup_cycles = 0;
  bool cancelled = false;
  std::uint64_t delivered = 0;
  std::uint64_t purged = 0;
  std::uint64_t audits = 0;
  std::uint64_t flits_tracked = 0;
  std::vector<ShardFailure> failures;  ///< Ascending global index.
};

[[nodiscard]] ShardSummary summarize_shard(const CampaignResult& result);

[[nodiscard]] json::Value shard_summary_to_json(const ShardSummary& s);
/// Throws MergeError on malformed documents.
[[nodiscard]] ShardSummary shard_summary_from_json(const json::Value& doc);
[[nodiscard]] ShardSummary parse_shard_summary(const std::string& text);

/// The recombined campaign.
struct MergedCampaign {
  std::uint64_t seed = 0;
  std::uint64_t scenarios = 0;
  Cycle warmup_cycles = 0;
  std::uint64_t delivered = 0;
  std::uint64_t purged = 0;
  std::uint64_t audits = 0;
  std::uint64_t flits_tracked = 0;
  std::vector<ShardFailure> failures;  ///< Ascending global index.

  /// Byte-identical to CampaignResult::summary_text() of the same campaign
  /// run unsharded.
  [[nodiscard]] std::string summary_text() const;
  /// Markdown for CI job summaries: totals plus the deduplicated failure
  /// table (one row per distinct violation signature, with a repro spec for
  /// its lowest-index representative).
  [[nodiscard]] std::string summary_markdown() const;
};

/// Merge a complete shard set (any order). Throws MergeError unless the
/// summaries share one (seed, scenarios, shard_count), cover shard indices
/// 0..N-1 exactly once, none was cancelled, and the local counts sum to the
/// campaign total.
[[nodiscard]] MergedCampaign merge_shards(
    const std::vector<ShardSummary>& shards);

/// Deduplication key for a failure: its first violation line with every
/// digit run collapsed to '#', so the same invariant breach at different
/// cycles/packets/routers maps to one signature.
[[nodiscard]] std::string violation_signature(const ShardFailure& f);

}  // namespace htnoc::verify
