#include "stats/stats.hpp"

#include <iomanip>

namespace htnoc::stats {

void UtilizationProbe::print_csv(std::ostream& os, Cycle origin,
                                 const std::string& label) const {
  os << "# " << label << '\n'
     << "cycle,input_port,output_port,injection_port,all_cores_full,"
        "majority_cores_full,port_blocked\n";
  for (const auto& s : samples_) {
    const auto rebased =
        static_cast<long long>(s.cycle) - static_cast<long long>(origin);
    os << rebased << ',' << s.input_port_flits << ',' << s.output_port_flits
       << ',' << s.injection_port_flits << ',' << s.routers_all_cores_full
       << ',' << s.routers_majority_cores_full << ','
       << s.routers_with_blocked_port << '\n';
  }
}

void TrafficMatrix::print_matrix(std::ostream& os) const {
  const int nr = geom_.num_routers();
  os << "src\\dst";
  for (int d = 0; d < nr; ++d) os << std::setw(7) << d;
  os << '\n';
  for (int s = 0; s < nr; ++s) {
    os << std::setw(7) << s;
    for (int d = 0; d < nr; ++d) {
      os << std::setw(7) << counts_[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)];
    }
    os << '\n';
  }
}

void TrafficMatrix::print_source_heatmap(std::ostream& os) const {
  for (int y = 0; y < geom_.height(); ++y) {
    for (int x = 0; x < geom_.width(); ++x) {
      os << std::setw(9) << row_total(geom_.router_at({x, y}));
    }
    os << '\n';
  }
}

std::vector<LinkLoad> measure_link_loads(Network& net) {
  std::vector<LinkLoad> loads;
  std::uint64_t total = 0;
  for (const LinkRef& l : net.all_links()) {
    LinkLoad ld;
    ld.link = l;
    ld.phits = net.link(l.from, l.dir).stats().phits_sent;
    total += ld.phits;
    loads.push_back(ld);
  }
  for (auto& ld : loads) {
    ld.share = total == 0 ? 0.0
                          : static_cast<double>(ld.phits) /
                                static_cast<double>(total);
  }
  return loads;
}

void print_link_loads(std::ostream& os, const std::vector<LinkLoad>& loads,
                      const MeshGeometry& geom) {
  os << "link(from->dir)   phits     share\n";
  for (const auto& ld : loads) {
    const auto c = geom.coord_of(ld.link.from);
    os << 'r' << std::setw(2) << ld.link.from << '(' << c.x << ',' << c.y
       << ")->" << to_string(ld.link.dir) << "  " << std::setw(9) << ld.phits
       << "  " << std::fixed << std::setprecision(4) << ld.share * 100.0
       << "%\n";
  }
}

void print_network_report(std::ostream& os, Network& net) {
  const auto& geom = net.geometry();
  os << "=== network report @ cycle " << net.now() << " ===\n";

  os << "\nper-router pipeline activity:\n"
     << "router  switched     rc  rc_unrt     va  va_novc  sa_noslot "
        "sa_nocred  arb_loss  in_occ  out_occ\n";
  Router::Stats total{};
  for (RouterId r = 0; r < geom.num_routers(); ++r) {
    const Router& router = net.router(r);
    const auto& s = router.stats();
    os << std::setw(6) << r << std::setw(10) << s.flits_switched
       << std::setw(7) << s.rc_computations << std::setw(9)
       << s.rc_stalls_unroutable << std::setw(7) << s.va_grants
       << std::setw(9) << s.va_stalls_no_free_vc << std::setw(11)
       << s.sa_stalls_no_slot << std::setw(10) << s.sa_stalls_no_credit
       << std::setw(10) << s.sa_arbitration_losses() << std::setw(8)
       << router.input_occupancy() << std::setw(9)
       << router.output_occupancy() << '\n';
    total.flits_switched += s.flits_switched;
    total.rc_computations += s.rc_computations;
    total.rc_stalls_unroutable += s.rc_stalls_unroutable;
    total.va_grants += s.va_grants;
    total.va_stalls_no_free_vc += s.va_stalls_no_free_vc;
    total.sa_requests += s.sa_requests;
    total.sa_stalls_no_slot += s.sa_stalls_no_slot;
    total.sa_stalls_no_credit += s.sa_stalls_no_credit;
  }
  os << " total" << std::setw(10) << total.flits_switched << std::setw(7)
     << total.rc_computations << std::setw(9) << total.rc_stalls_unroutable
     << std::setw(7) << total.va_grants << std::setw(9)
     << total.va_stalls_no_free_vc << std::setw(11) << total.sa_stalls_no_slot
     << std::setw(10) << total.sa_stalls_no_credit << std::setw(10)
     << total.sa_arbitration_losses() << '\n';

  os << "\nlink totals:\n";
  std::uint64_t phits = 0;
  std::uint64_t faulted = 0;
  std::uint64_t acks = 0;
  std::uint64_t nacks = 0;
  for (const LinkRef& l : net.all_links()) {
    const auto& ls = net.link(l.from, l.dir).stats();
    phits += ls.phits_sent;
    faulted += ls.phits_with_injected_faults;
    acks += ls.acks_sent;
    nacks += ls.nacks_sent;
  }
  os << "  mesh phits " << phits << ", faulted " << faulted << ", acks "
     << acks << ", nacks " << nacks << '\n';

  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t rejects = 0;
  std::uint64_t corrected = 0;
  std::uint64_t sdc = 0;
  for (NodeId c = 0; c < geom.num_cores(); ++c) {
    const auto& ns = net.ni(c).stats();
    injected += ns.packets_injected;
    delivered += ns.packets_delivered;
    rejects += ns.inject_rejects;
  }
  for (RouterId r = 0; r < geom.num_routers(); ++r) {
    for (int p = 0; p < net.router(r).num_ports(); ++p) {
      const auto& is = net.router(r).input(p).stats();
      corrected += is.corrected_singles;
      sdc += is.silent_corruptions;
    }
  }
  os << "  NI packets: " << injected << " injected, " << delivered
     << " delivered, " << rejects << " rejected\n";
  os << "  ECC: " << corrected << " inline corrections, " << sdc
     << " silent corruptions\n";
  const auto& purges = net.purge_totals();
  os << "  purges: " << purges.packets << " packets, " << purges.flits
     << " flits removed\n";
}

double LatencyStats::percentile(double q) const {
  // Defined edge cases: no samples -> 0 (nothing observed); q at or below 0
  // -> the observed minimum; q at or past 1 -> the observed maximum; one
  // sample -> that sample (min_ == max_). NaN is treated as q = 0.
  if (count_ == 0) return 0.0;
  if (!(q > 0.0)) return static_cast<double>(min_);
  if (q >= 1.0 || count_ == 1) return static_cast<double>(max_);
  // Rank of the requested quantile, 1-based (nearest-rank definition).
  const double rank = q * static_cast<double>(count_ - 1) + 1.0;
  std::uint64_t cum = 0;
  Cycle lo = 0;
  Cycle hi = 8;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = hist_[b];
    if (in_bucket > 0 && rank <= static_cast<double>(cum + in_bucket)) {
      // The open last bucket and the extremes are clamped to observed data.
      const double bucket_lo =
          std::max(static_cast<double>(lo), static_cast<double>(min_));
      const double bucket_hi =
          b + 1 == kBuckets
              ? static_cast<double>(max_)
              : std::min(static_cast<double>(hi), static_cast<double>(max_));
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      return bucket_lo + frac * std::max(0.0, bucket_hi - bucket_lo);
    }
    cum += in_bucket;
    lo = hi;
    hi *= 2;
  }
  return static_cast<double>(max_);
}

void LatencyStats::print(std::ostream& os, const std::string& label) const {
  os << label << ": n=" << count_ << " mean=" << std::fixed
     << std::setprecision(2) << mean() << " min=" << min_ << " max=" << max_
     << " p50=" << std::setprecision(1) << p50() << " p95=" << p95()
     << " p99=" << p99() << "\n  histogram(cycles):";
  Cycle bound = 8;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    os << " <" << bound << ":" << hist_[b];
    bound *= 2;
  }
  os << '\n';
}

json::Value LatencyStats::to_json() const {
  json::Object o;
  o.emplace_back("count", json::Value(static_cast<double>(count_)));
  o.emplace_back("mean", json::Value(mean()));
  o.emplace_back("min", json::Value(static_cast<double>(min_)));
  o.emplace_back("max", json::Value(static_cast<double>(max_)));
  o.emplace_back("p50", json::Value(p50()));
  o.emplace_back("p95", json::Value(p95()));
  o.emplace_back("p99", json::Value(p99()));
  json::Array hist;
  hist.reserve(kBuckets);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    hist.emplace_back(static_cast<double>(hist_[b]));
  }
  o.emplace_back("histogram", json::Value(std::move(hist)));
  return json::Value(std::move(o));
}

}  // namespace htnoc::stats
