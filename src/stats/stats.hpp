// Measurement utilities: time-series sampling of the paper's utilization
// metrics (Figs. 11/12), traffic matrices (Fig. 1), latency statistics and
// a channel-level deadlock/saturation monitor.
#pragma once

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "common/json.hpp"
#include "noc/network.hpp"

namespace htnoc::stats {

/// Periodic sampler of Network::UtilizationSample.
class UtilizationProbe {
 public:
  explicit UtilizationProbe(Cycle period = 10) : period_(period) {
    HTNOC_EXPECT(period >= 1);
  }

  /// Call once per cycle; records every `period` cycles.
  void maybe_sample(const Network& net) {
    if (net.now() % period_ == 0) samples_.push_back(net.sample_utilization());
  }
  void sample_now(const Network& net) {
    samples_.push_back(net.sample_utilization());
  }

  [[nodiscard]] const std::vector<Network::UtilizationSample>& samples() const {
    return samples_;
  }
  void clear() { samples_.clear(); }

  /// Print a CSV table with cycles re-based to `origin` (Fig. 11's x-axis
  /// is "cycles after TASP enabled").
  void print_csv(std::ostream& os, Cycle origin = 0,
                 const std::string& label = "") const;

 private:
  Cycle period_;
  std::vector<Network::UtilizationSample> samples_;
};

/// Router-to-router packet counts plus per-link flit counts (Fig. 1).
class TrafficMatrix {
 public:
  explicit TrafficMatrix(const MeshGeometry& geom)
      : geom_(geom),
        counts_(static_cast<std::size_t>(geom.num_routers()),
                std::vector<std::uint64_t>(
                    static_cast<std::size_t>(geom.num_routers()), 0)) {}

  void record(const PacketInfo& info) {
    ++counts_[info.src_router][info.dest_router];
  }

  [[nodiscard]] std::uint64_t count(RouterId src, RouterId dest) const {
    return counts_[src][dest];
  }
  [[nodiscard]] std::uint64_t row_total(RouterId src) const {
    std::uint64_t n = 0;
    for (const auto v : counts_[src]) n += v;
    return n;
  }
  [[nodiscard]] std::uint64_t col_total(RouterId dest) const {
    std::uint64_t n = 0;
    for (const auto& row : counts_) n += row[dest];
    return n;
  }
  [[nodiscard]] std::uint64_t grand_total() const {
    std::uint64_t n = 0;
    for (RouterId r = 0; r < geom_.num_routers(); ++r) n += row_total(r);
    return n;
  }

  /// Fig. 1(a): source/destination matrix.
  void print_matrix(std::ostream& os) const;
  /// Fig. 1(b): per-router source totals laid out geographically.
  void print_source_heatmap(std::ostream& os) const;

 private:
  MeshGeometry geom_;
  std::vector<std::vector<std::uint64_t>> counts_;
};

/// Fig. 1(c): share of total traffic crossing each mesh link, measured from
/// the links' phit counters.
struct LinkLoad {
  LinkRef link;
  std::uint64_t phits = 0;
  double share = 0.0;  ///< Fraction of all link traversals.
};
[[nodiscard]] std::vector<LinkLoad> measure_link_loads(Network& net);
void print_link_loads(std::ostream& os, const std::vector<LinkLoad>& loads,
                      const MeshGeometry& geom);

/// Full post-run report: per-router pipeline activity (RC/VA/SA grants and
/// stall attribution), link traffic/fault/retransmission totals, NI
/// injection/ejection counts. The go-to diagnostic when a run behaves
/// unexpectedly.
void print_network_report(std::ostream& os, Network& net);

/// Streaming latency statistics with a coarse histogram.
class LatencyStats {
 public:
  void record(Cycle latency) {
    ++count_;
    sum_ += latency;
    max_ = std::max(max_, latency);
    min_ = count_ == 1 ? latency : std::min(min_, latency);
    std::size_t bucket = 0;
    Cycle bound = 8;
    while (bucket + 1 < kBuckets && latency >= bound) {
      bound *= 2;
      ++bucket;
    }
    ++hist_[bucket];
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] Cycle max() const noexcept { return max_; }
  [[nodiscard]] Cycle min() const noexcept { return min_; }

  /// Estimated latency at quantile `q` in [0, 1], linearly interpolated
  /// within the power-of-two histogram bucket holding that rank (the open
  /// last bucket is clamped to the observed max). Exact for bucket
  /// boundaries; within a bucket the error is bounded by the bucket width.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double p50() const { return percentile(0.50); }
  [[nodiscard]] double p95() const { return percentile(0.95); }
  [[nodiscard]] double p99() const { return percentile(0.99); }

  void print(std::ostream& os, const std::string& label) const;

  /// Structured export for streaming stat sinks and the server's /stats
  /// endpoint: {"count", "mean", "min", "max", "p50", "p95", "p99",
  /// "histogram": [per-bucket counts, buckets <8, <16, ..., rest]}.
  [[nodiscard]] json::Value to_json() const;

 private:
  static constexpr std::size_t kBuckets = 10;  // <8, <16, ..., <2048, rest
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  Cycle max_ = 0;
  Cycle min_ = 0;
  std::uint64_t hist_[kBuckets] = {};
};

}  // namespace htnoc::stats
