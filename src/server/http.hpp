// Minimal dependency-free HTTP/1.1 transport for the simulation daemon:
// a loopback listener with a bounded connection-worker pool, plus the
// blocking client helper the bundled CLI client and the tests share. Only
// the subset the admin surface needs is implemented — one request per
// connection (the server always answers `Connection: close`), methods GET,
// POST and DELETE, bodies framed by a single Content-Length header
// (duplicates are rejected — the classic request-smuggling vector).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace htnoc::server {

struct HttpRequest {
  std::string method;  ///< "GET", "POST" or "DELETE" (others are rejected).
  std::string target;  ///< Request path, e.g. "/runs/3" (no query support).
  std::string body;    ///< Raw body bytes (empty unless Content-Length > 0).
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Reason phrase for the handful of status codes the daemon emits.
[[nodiscard]] const char* status_text(int status);

/// Loopback-only HTTP server. Construction binds and listens (throwing on
/// failure), so port() is valid immediately — pass port 0 to let the kernel
/// pick an ephemeral port (the tests and the CI smoke job rely on this).
/// Requests are handled on a fixed pool of connection workers fed from an
/// accept thread; the handler runs concurrently and must synchronize any
/// shared state it touches.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    int port = 0;         ///< 0: ephemeral.
    int num_workers = 4;  ///< Connection workers (clamped to >= 1).
    /// SO_RCVTIMEO applied to every accepted connection. A client that
    /// stalls mid-request (half-sent headers or a short body) times out
    /// and is answered 400 instead of pinning a worker forever — without
    /// this, a single slow client could wedge the graceful-drain path.
    /// <= 0 disables the timeout (the tests use tiny values).
    int recv_timeout_ms = 10000;
  };

  HttpServer(const Options& opts, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound TCP port (resolved even when Options::port was 0).
  [[nodiscard]] int port() const noexcept { return port_; }

  /// Stop accepting, drain in-flight connections, join all threads.
  /// Idempotent; also run by the destructor.
  void stop();

 private:
  void accept_loop();
  void worker_loop();
  void handle_connection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  int recv_timeout_ms_ = 0;
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> pending_;  ///< Accepted fds awaiting a worker.

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

/// Blocking one-shot request against a loopback server. Throws
/// std::runtime_error on connection or protocol failure; HTTP error
/// statuses are returned, not thrown.
[[nodiscard]] HttpResponse http_request(int port, const std::string& method,
                                        const std::string& target,
                                        const std::string& body = "");

/// Conveniences over http_request().
[[nodiscard]] HttpResponse http_get(int port, const std::string& target);
[[nodiscard]] HttpResponse http_post(int port, const std::string& target,
                                     const std::string& body);
[[nodiscard]] HttpResponse http_delete(int port, const std::string& target);

}  // namespace htnoc::server
