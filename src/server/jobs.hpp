// Multi-tenant job queue: accepted sweep / campaign specs run on worker
// threads admitted against a core budget (a job occupies its run-level
// `jobs` workers times the spec's intra-run `step_threads`, the same
// jobs x step_threads product docs/SCALING.md budgets for the CLIs).
// Admission is strict FIFO — the head job waits until its cost fits, and a
// job costing more than the whole budget still runs, alone — so no job can
// be starved by cheaper late arrivals.
//
// Determinism contract: a job's artifacts are produced by re-parsing its
// canonical spec JSON and running the exact engine + emitters the CLIs
// use, so the bytes are identical to a sweep_cli/campaign_cli run of the
// same spec, for any queue interleaving and worker count. Artifacts are
// built off to the side and published atomically under the queue lock —
// readers (and a SIGTERM drain) never observe a partially-written result.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "server/sink.hpp"

namespace htnoc::server {

class StateStore;

enum class JobKind { kSweep, kCampaign };

/// The full job-state vocabulary every surface (POST /runs responses,
/// /runs listings, sink events, persisted records) draws from. These five
/// strings are a wire contract — clients and the on-disk state format
/// parse them — locked by tests/test_server.cpp (StateVocabulary).
enum class JobState { kQueued, kRunning, kDone, kCancelled, kFailed };

[[nodiscard]] const char* to_string(JobKind k);
[[nodiscard]] const char* to_string(JobState s);
/// Inverses of to_string (nullopt for anything outside the vocabulary);
/// the persisted-state codec round-trips through these.
[[nodiscard]] std::optional<JobKind> job_kind_from_string(
    const std::string& s);
[[nodiscard]] std::optional<JobState> job_state_from_string(
    const std::string& s);

/// Immutable-once-published snapshot of one job for the admin surface.
struct JobInfo {
  std::uint64_t id = 0;
  JobKind kind = JobKind::kSweep;
  JobState state = JobState::kQueued;
  int jobs = 1;          ///< Run-level worker threads.
  int step_threads = 1;  ///< Intra-run stepping threads (from the spec).
  std::uint64_t done = 0;   ///< Runs / scenarios finished so far.
  std::uint64_t total = 0;  ///< 0 until the job starts.
  std::string error;        ///< Set when state == kFailed.
  /// Names servable once the job is terminal: the full set for kDone, the
  /// completed-prefix set for kCancelled, empty for kFailed.
  std::vector<std::string> artifacts;
};

/// Monotonically increasing totals for /stats (per process; restart
/// recovery does not replay them).
struct JobCounters {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;  ///< Envelope or spec failed strict parsing.
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::uint64_t recovered = 0;  ///< Jobs restored from --state-dir.
};

/// Outcome of JobQueue::cancel().
struct CancelResult {
  enum class Status {
    kNotFound,  ///< Unknown job id.
    kConflict,  ///< Job already reached kDone / kFailed.
    kOk,        ///< Job is (now) cancelled — or finished first; see state.
  };
  Status status = Status::kNotFound;
  /// Final state when status != kNotFound.
  JobState state = JobState::kQueued;
};

class JobQueue {
 public:
  struct Options {
    /// Core budget jobs are admitted against; <= 0 resolves to
    /// hardware_concurrency (minimum 1).
    int core_budget = 0;
    /// Observability fan-out; may be null. Not owned.
    SinkSet* sinks = nullptr;
    /// When non-empty, every job's spec, state, events and artifacts are
    /// persisted under this directory (see state.hpp for the layout) and
    /// the constructor recovers whatever a previous process left there:
    /// terminal jobs become servable again, accepted-but-unpublished jobs
    /// are re-queued. Empty (the default): in-memory only, as before.
    std::string state_dir;
  };

  explicit JobQueue(const Options& opts);
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Parse a submission envelope — {"kind": "sweep"|"campaign",
  /// "jobs": N (optional, default 1), "spec": {...}} — strictly, enqueue
  /// the job and return its id. Throws sweep::SpecError (including
  /// json::ParseError wrapped) on any malformed input; nothing is
  /// enqueued in that case. Throws std::runtime_error when draining.
  std::uint64_t submit(const std::string& envelope_json);

  [[nodiscard]] std::optional<JobInfo> info(std::uint64_t id) const;
  [[nodiscard]] std::vector<JobInfo> list() const;

  /// Artifact bytes, or nullopt when the job or artifact does not exist
  /// (artifacts appear only when the job reaches a terminal state). Served
  /// from memory, or transparently from the state dir for recovered jobs.
  [[nodiscard]] std::optional<std::string> artifact(
      std::uint64_t id, const std::string& name) const;

  /// Cooperative cancellation (DELETE /runs/<id>): a queued job is removed
  /// from the FIFO and marked cancelled immediately; a running job has its
  /// stop token raised and this call blocks until the engine acknowledges
  /// at the next run/scenario boundary — so it returns within one scenario
  /// of work, with the job's core budget already released. Cancelling an
  /// already-cancelled job is an idempotent success; a job that reached
  /// kDone/kFailed first reports kConflict.
  CancelResult cancel(std::uint64_t id);

  /// The job's JSON-lines event history (every sink event it emitted, in
  /// order, bounded by a per-job ring) — the replay feed behind
  /// GET /runs/<id>/events. nullopt: unknown id.
  [[nodiscard]] std::optional<std::vector<std::string>> events(
      std::uint64_t id) const;

  /// The canonical spec JSON the job runs from (nullopt: unknown id).
  [[nodiscard]] std::optional<std::string> canonical_spec(
      std::uint64_t id) const;

  [[nodiscard]] JobCounters counters() const;
  [[nodiscard]] int core_budget() const noexcept { return budget_; }
  [[nodiscard]] int cores_in_use() const;
  [[nodiscard]] std::size_t queued() const;
  [[nodiscard]] std::size_t running() const;
  [[nodiscard]] bool draining() const;

  /// Graceful shutdown: refuse new submissions, run every job already
  /// accepted to completion, then stop the scheduler. Every accepted job
  /// is kDone or kFailed when this returns. Idempotent.
  void drain();

 private:
  struct Job {
    JobInfo info;
    std::string spec;  ///< Canonical spec JSON (the single source of truth).
    /// In-memory artifact bytes. Empty for recovered jobs whose artifacts
    /// live in the state dir (artifact() falls through to the store).
    std::map<std::string, std::string> artifacts;
    /// Cooperative stop token shared with the engine's should_stop hook;
    /// shared_ptr so the hook outlives queue-side bookkeeping races.
    std::shared_ptr<std::atomic<bool>> stop =
        std::make_shared<std::atomic<bool>>(false);
    /// Replay ring for GET /runs/<id>/events (oldest first, bounded).
    std::deque<std::string> events;
  };

  void scheduler_loop();
  void run_job(std::uint64_t id);
  void execute_sweep(Job& job, std::map<std::string, std::string>& artifacts,
                     std::uint64_t id, bool& cancelled);
  void execute_campaign(Job& job,
                        std::map<std::string, std::string>& artifacts,
                        bool& cancelled);
  void emit_job_event(const char* event, const Job& job);
  /// Record one event line everywhere it flows: the job's replay ring, the
  /// state dir (if any) and the sink fan-out. Caller holds mu_.
  void record_event(Job& job, const json::Value& event);
  void recover_state();
  [[nodiscard]] static int cost_of(const JobInfo& info) {
    return info.jobs * info.step_threads;
  }
  void report_progress(std::uint64_t id, std::uint64_t done,
                       std::uint64_t total);

  int budget_ = 1;
  SinkSet* sinks_ = nullptr;
  std::unique_ptr<StateStore> store_;  ///< Null when persistence is off.

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Job> jobs_;
  std::deque<std::uint64_t> fifo_;  ///< Queued ids in submission order.
  int running_cost_ = 0;
  std::size_t running_count_ = 0;
  JobCounters counters_;
  bool draining_ = false;
  bool stop_scheduler_ = false;

  std::map<std::uint64_t, std::thread> active_;   ///< Joined by scheduler.
  std::vector<std::uint64_t> finished_threads_;   ///< Ready to join.
  std::thread scheduler_;
};

}  // namespace htnoc::server
