// Multi-tenant job queue: accepted sweep / campaign specs run on worker
// threads admitted against a core budget (a job occupies its run-level
// `jobs` workers times the spec's intra-run `step_threads`, the same
// jobs x step_threads product docs/SCALING.md budgets for the CLIs).
// Admission is strict FIFO — the head job waits until its cost fits, and a
// job costing more than the whole budget still runs, alone — so no job can
// be starved by cheaper late arrivals.
//
// Determinism contract: a job's artifacts are produced by re-parsing its
// canonical spec JSON and running the exact engine + emitters the CLIs
// use, so the bytes are identical to a sweep_cli/campaign_cli run of the
// same spec, for any queue interleaving and worker count. Artifacts are
// built off to the side and published atomically under the queue lock —
// readers (and a SIGTERM drain) never observe a partially-written result.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "server/sink.hpp"

namespace htnoc::server {

enum class JobKind { kSweep, kCampaign };
enum class JobState { kQueued, kRunning, kDone, kFailed };

[[nodiscard]] const char* to_string(JobKind k);
[[nodiscard]] const char* to_string(JobState s);

/// Immutable-once-published snapshot of one job for the admin surface.
struct JobInfo {
  std::uint64_t id = 0;
  JobKind kind = JobKind::kSweep;
  JobState state = JobState::kQueued;
  int jobs = 1;          ///< Run-level worker threads.
  int step_threads = 1;  ///< Intra-run stepping threads (from the spec).
  std::uint64_t done = 0;   ///< Runs / scenarios finished so far.
  std::uint64_t total = 0;  ///< 0 until the job starts.
  std::string error;        ///< Set when state == kFailed.
  std::vector<std::string> artifacts;  ///< Names servable once kDone.
};

/// Monotonically increasing totals for /stats.
struct JobCounters {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;  ///< Envelope or spec failed strict parsing.
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
};

class JobQueue {
 public:
  struct Options {
    /// Core budget jobs are admitted against; <= 0 resolves to
    /// hardware_concurrency (minimum 1).
    int core_budget = 0;
    /// Observability fan-out; may be null. Not owned.
    SinkSet* sinks = nullptr;
  };

  explicit JobQueue(const Options& opts);
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Parse a submission envelope — {"kind": "sweep"|"campaign",
  /// "jobs": N (optional, default 1), "spec": {...}} — strictly, enqueue
  /// the job and return its id. Throws sweep::SpecError (including
  /// json::ParseError wrapped) on any malformed input; nothing is
  /// enqueued in that case. Throws std::runtime_error when draining.
  std::uint64_t submit(const std::string& envelope_json);

  [[nodiscard]] std::optional<JobInfo> info(std::uint64_t id) const;
  [[nodiscard]] std::vector<JobInfo> list() const;

  /// Artifact bytes, or nullopt when the job or artifact does not exist
  /// (artifacts appear only when the job reaches kDone).
  [[nodiscard]] std::optional<std::string> artifact(
      std::uint64_t id, const std::string& name) const;

  /// The canonical spec JSON the job runs from (nullopt: unknown id).
  [[nodiscard]] std::optional<std::string> canonical_spec(
      std::uint64_t id) const;

  [[nodiscard]] JobCounters counters() const;
  [[nodiscard]] int core_budget() const noexcept { return budget_; }
  [[nodiscard]] int cores_in_use() const;
  [[nodiscard]] std::size_t queued() const;
  [[nodiscard]] std::size_t running() const;
  [[nodiscard]] bool draining() const;

  /// Graceful shutdown: refuse new submissions, run every job already
  /// accepted to completion, then stop the scheduler. Every accepted job
  /// is kDone or kFailed when this returns. Idempotent.
  void drain();

 private:
  struct Job {
    JobInfo info;
    std::string spec;  ///< Canonical spec JSON (the single source of truth).
    std::map<std::string, std::string> artifacts;
  };

  void scheduler_loop();
  void run_job(std::uint64_t id);
  void execute_sweep(Job& job, std::map<std::string, std::string>& artifacts,
                     std::uint64_t id);
  void execute_campaign(Job& job,
                        std::map<std::string, std::string>& artifacts);
  void emit_job_event(const char* event, const Job& job);
  [[nodiscard]] static int cost_of(const JobInfo& info) {
    return info.jobs * info.step_threads;
  }
  void report_progress(std::uint64_t id, std::uint64_t done,
                       std::uint64_t total);

  int budget_ = 1;
  SinkSet* sinks_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Job> jobs_;
  std::deque<std::uint64_t> fifo_;  ///< Queued ids in submission order.
  int running_cost_ = 0;
  std::size_t running_count_ = 0;
  JobCounters counters_;
  bool draining_ = false;
  bool stop_scheduler_ = false;

  std::map<std::uint64_t, std::thread> active_;   ///< Joined by scheduler.
  std::vector<std::uint64_t> finished_threads_;   ///< Ready to join.
  std::thread scheduler_;
};

}  // namespace htnoc::server
