// Pluggable streaming stat sinks: the daemon narrates its lifecycle and
// every job's progress as one compact JSON object per line ("JSON lines"),
// pushed through whichever sinks the operator configured. Sinks are
// side-channel observability only — job results never flow through them,
// so a slow or failing sink cannot perturb the byte-identical artifacts.
#pragma once

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace htnoc::server {

/// One JSON-lines consumer. write() receives a complete event object and
/// is called from multiple threads; implementations serialize internally.
class StatSink {
 public:
  virtual ~StatSink() = default;
  virtual void write(const json::Value& event) = 0;
  /// Push buffered lines to the underlying device (no-op by default).
  virtual void flush() {}
};

/// JSON lines to stdout — the "pipe the daemon into jq" sink.
class StdoutSink : public StatSink {
 public:
  void write(const json::Value& event) override;
  void flush() override;

 private:
  std::mutex mu_;
};

/// JSON lines appended to a file. Opens on construction (throws on
/// failure); every line is flushed so a crash loses at most the line being
/// written.
class FileSink : public StatSink {
 public:
  explicit FileSink(const std::string& path);
  ~FileSink() override;
  void write(const json::Value& event) override;
  void flush() override;

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

/// Fan-out held by the server; owns its sinks. Thread-safe via the sinks'
/// own locking. An empty set is valid (events are dropped).
class SinkSet {
 public:
  void add(std::unique_ptr<StatSink> sink) {
    sinks_.push_back(std::move(sink));
  }
  [[nodiscard]] std::size_t size() const noexcept { return sinks_.size(); }

  void emit(const json::Value& event) {
    for (const auto& s : sinks_) s->write(event);
  }
  void flush() {
    for (const auto& s : sinks_) s->flush();
  }

 private:
  std::vector<std::unique_ptr<StatSink>> sinks_;
};

/// Parse a sink description from the CLI: "stdout" or "file:<path>".
/// Throws std::runtime_error on anything else.
[[nodiscard]] std::unique_ptr<StatSink> make_sink(const std::string& desc);

}  // namespace htnoc::server
