#include "server/state.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"

namespace htnoc::server {

namespace fs = std::filesystem;

namespace {

using json::Value;

/// Write bytes to `<path>.tmp`, fsync, then rename over `path` — the
/// standard atomic-replace idiom, so a reader (or a post-crash recovery
/// scan) sees either the old file or the new one, never a torn write.
void write_file_atomic(const fs::path& path, const std::string& bytes) {
  const fs::path tmp = path.string() + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("state: cannot open " + tmp.string() + ": " +
                             std::strerror(errno));
  }
  const char* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int e = errno;
      ::close(fd);
      throw std::runtime_error("state: write failed for " + tmp.string() +
                               ": " + std::strerror(e));
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must not become durable ahead of the
  // data it commits.
  if (::fsync(fd) < 0) {
    const int e = errno;
    ::close(fd);
    throw std::runtime_error("state: fsync failed for " + tmp.string() +
                             ": " + std::strerror(e));
  }
  ::close(fd);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("state: rename " + tmp.string() + " -> " +
                             path.string() + ": " + ec.message());
  }
}

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

Value record_json(const JobInfo& info) {
  json::Object o;
  o.emplace_back("id", Value(static_cast<double>(info.id)));
  o.emplace_back("kind", Value(to_string(info.kind)));
  o.emplace_back("state", Value(to_string(info.state)));
  o.emplace_back("jobs", Value(info.jobs));
  o.emplace_back("step_threads", Value(info.step_threads));
  o.emplace_back("done", Value(static_cast<double>(info.done)));
  o.emplace_back("total", Value(static_cast<double>(info.total)));
  o.emplace_back("error", Value(info.error));
  json::Array arts;
  for (const std::string& a : info.artifacts) arts.emplace_back(a);
  o.emplace_back("artifacts", Value(std::move(arts)));
  return Value(std::move(o));
}

const Value& req(const Value& doc, const char* key) {
  const Value* v = doc.find(key);
  if (v == nullptr) {
    throw std::runtime_error(std::string("missing field \"") + key + "\"");
  }
  return *v;
}

JobInfo record_from_json(const std::string& text) {
  const Value doc = json::parse(text);
  JobInfo info;
  info.id = json::as_uint64(req(doc, "id"));
  const std::optional<JobKind> kind =
      job_kind_from_string(req(doc, "kind").as_string());
  if (!kind) throw std::runtime_error("unknown job kind in record");
  info.kind = *kind;
  const std::optional<JobState> state =
      job_state_from_string(req(doc, "state").as_string());
  if (!state) throw std::runtime_error("unknown job state in record");
  info.state = *state;
  info.jobs = static_cast<int>(json::as_uint64(req(doc, "jobs")));
  info.step_threads =
      static_cast<int>(json::as_uint64(req(doc, "step_threads")));
  info.done = json::as_uint64(req(doc, "done"));
  info.total = json::as_uint64(req(doc, "total"));
  info.error = req(doc, "error").as_string();
  for (const Value& a : req(doc, "artifacts").as_array()) {
    info.artifacts.push_back(a.as_string());
  }
  return info;
}

/// Artifact names come from the fixed emitter vocabulary, but the store
/// still refuses anything that could leave its directory.
bool safe_artifact_name(const std::string& name) {
  return !name.empty() && name != "." && name != ".." &&
         name.find('/') == std::string::npos &&
         name.find('\\') == std::string::npos;
}

void discard_tmp_files(const fs::path& dir) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".tmp") fs::remove(entry.path(), ec);
  }
}

}  // namespace

StateStore::StateStore(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(fs::path(root_) / "jobs", ec);
  if (ec) {
    throw std::runtime_error("state: cannot create " + root_ + "/jobs: " +
                             ec.message());
  }
  // Probe writability now so a misconfigured --state-dir fails at startup,
  // not on the first submission.
  write_file_atomic(fs::path(root_) / ".writable", "");
}

void StateStore::save_accepted(const JobInfo& info, const std::string& spec) {
  const fs::path dir = fs::path(root_) / "jobs" / std::to_string(info.id);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("state: cannot create " + dir.string() + ": " +
                             ec.message());
  }
  write_file_atomic(dir / "spec.json", spec);
  write_file_atomic(dir / "job.json",
                    json::to_string(record_json(info)) + "\n");
}

void StateStore::save_terminal(
    const JobInfo& info,
    const std::map<std::string, std::string>& artifacts) {
  const fs::path dir = fs::path(root_) / "jobs" / std::to_string(info.id);
  const fs::path art_dir = dir / "artifacts";
  std::error_code ec;
  fs::create_directories(art_dir, ec);
  if (ec) {
    throw std::runtime_error("state: cannot create " + art_dir.string() +
                             ": " + ec.message());
  }
  for (const auto& [name, bytes] : artifacts) {
    if (!safe_artifact_name(name)) {
      throw std::runtime_error("state: unsafe artifact name \"" + name +
                               "\"");
    }
    write_file_atomic(art_dir / name, bytes);
  }
  // The record goes last: naming the artifacts only after they all exist
  // makes it the commit point a recovery scan can trust.
  write_file_atomic(dir / "job.json",
                    json::to_string(record_json(info)) + "\n");
}

void StateStore::append_event(std::uint64_t id, const std::string& line) {
  const fs::path path =
      fs::path(root_) / "jobs" / std::to_string(id) / "events.jsonl";
  std::lock_guard<std::mutex> lock(events_mu_);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return;  // observability only; never fail the job
  std::fwrite(line.data(), 1, line.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

std::optional<std::string> StateStore::read_artifact(
    std::uint64_t id, const std::string& name) const {
  if (!safe_artifact_name(name)) return std::nullopt;
  return read_file(fs::path(root_) / "jobs" / std::to_string(id) /
                   "artifacts" / name);
}

RecoveredState StateStore::recover() const {
  RecoveredState out;
  const fs::path jobs_dir = fs::path(root_) / "jobs";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(jobs_dir, ec)) {
    if (!entry.is_directory()) continue;
    const fs::path dir = entry.path();
    discard_tmp_files(dir);
    discard_tmp_files(dir / "artifacts");
    const std::optional<std::string> record = read_file(dir / "job.json");
    if (!record) {
      // A crash between mkdir and the first record leaves an empty dir;
      // nothing was acknowledged to any client, so nothing to recover.
      out.warnings.push_back(dir.string() + ": no job record, skipped");
      continue;
    }
    PersistedJob job;
    try {
      job.info = record_from_json(*record);
    } catch (const std::exception& e) {
      out.warnings.push_back(dir.string() + ": unreadable record (" +
                             e.what() + "), skipped");
      continue;
    }
    const std::optional<std::string> spec = read_file(dir / "spec.json");
    if (!spec) {
      out.warnings.push_back(dir.string() + ": missing spec.json, skipped");
      continue;
    }
    job.spec = *spec;
    if (const std::optional<std::string> events =
            read_file(dir / "events.jsonl")) {
      std::istringstream lines(*events);
      std::string line;
      while (std::getline(lines, line)) {
        if (!line.empty()) job.events.push_back(line);
      }
    }
    out.jobs.push_back(std::move(job));
  }
  std::sort(out.jobs.begin(), out.jobs.end(),
            [](const PersistedJob& a, const PersistedJob& b) {
              return a.info.id < b.info.id;
            });
  return out;
}

}  // namespace htnoc::server
