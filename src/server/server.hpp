// The simulation-as-a-service daemon: HTTP transport + job queue + stat
// sinks behind an Envoy-style admin surface (see docs/SERVER.md for the
// full API reference):
//
//   GET  /healthz            liveness ("ok", or "draining")
//   GET  /stats              counters, gauges and request-latency histogram
//   GET  /runs               every job the daemon has accepted
//   POST /runs               submit {"kind", "jobs"?, "spec"} -> 202 + id
//   GET  /runs/<id>          one job: state, progress, artifact names
//   GET  /runs/<id>/<name>   artifact bytes (byte-identical to the CLIs)
//   GET  /runs/<id>/events   the job's JSON-lines event history (replay)
//   DELETE /runs/<id>        cancel: queued jobs vanish, running jobs stop
//                            at the next run/scenario boundary
//   GET  /config_dump        effective options + canonical spec of each job
//   POST /quitquitquit       graceful drain-and-stop
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "server/http.hpp"
#include "server/jobs.hpp"
#include "server/sink.hpp"
#include "stats/stats.hpp"

namespace htnoc::server {

class Server {
 public:
  struct Options {
    int port = 0;         ///< 0: ephemeral (the bound port is port()).
    int core_budget = 0;  ///< <= 0: hardware_concurrency.
    int http_workers = 4;
    /// Passed through to JobQueue::Options::state_dir: when non-empty,
    /// jobs persist there and the constructor recovers a previous
    /// process's state. Empty: in-memory only.
    std::string state_dir;
    /// Per-connection receive timeout (HttpServer::Options); <= 0 off.
    int recv_timeout_ms = 10000;
  };

  /// Binds and starts serving immediately; throws on bind failure. The
  /// sink set must outlive the server.
  Server(const Options& opts, SinkSet* sinks);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] int port() const noexcept { return http_->port(); }
  [[nodiscard]] JobQueue& jobs() noexcept { return jobs_; }

  /// Graceful shutdown: refuse new work, finish every accepted job, stop
  /// the listener. Safe to call from a signal-watcher thread; idempotent.
  void shutdown();

  /// Block until shutdown() has completed (the daemon main's park).
  void wait();

 private:
  HttpResponse handle(const HttpRequest& req);
  HttpResponse handle_get(const std::string& target);
  HttpResponse handle_post(const HttpRequest& req);
  HttpResponse handle_delete(const std::string& target);
  HttpResponse stats_response();
  HttpResponse config_dump();

  Options opts_;
  SinkSet* sinks_;
  JobQueue jobs_;
  std::unique_ptr<HttpServer> http_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> quit_requested_{false};
  std::thread quit_thread_;  ///< Runs shutdown() for POST /quitquitquit.

  std::mutex stats_mu_;
  std::uint64_t requests_total_ = 0;
  stats::LatencyStats request_latency_us_;
};

/// JSON error body {"error": "<msg>"} with the given status.
[[nodiscard]] HttpResponse error_response(int status, const std::string& msg);

}  // namespace htnoc::server
