// On-disk job state for the daemon's opt-in `--state-dir` persistence:
// each accepted job owns one directory holding its canonical spec, a
// small state record, its streamed event history and (once terminal) its
// artifacts. Every file is written tmp-file + rename so a crash — up to
// and including SIGKILL mid-publish — leaves either the old record or the
// new one, never a torn file; the job record is always written last, so
// it is the commit point for the artifacts it names.
//
//   <root>/jobs/<id>/job.json        id, kind, state, error, artifact names
//   <root>/jobs/<id>/spec.json       canonical spec text (byte-exact)
//   <root>/jobs/<id>/events.jsonl    the job's JSON-lines sink history
//   <root>/jobs/<id>/artifacts/<name>
//
// Recovery (JobQueue's constructor) replays this layout: terminal jobs
// come back servable (artifacts are read from disk on demand), and jobs
// that were accepted but never reached a terminal record are re-queued to
// run again from their canonical spec — which, by the determinism
// contract, reproduces byte-identical artifacts.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "server/jobs.hpp"

namespace htnoc::server {

/// One job directory as found on disk during recovery.
struct PersistedJob {
  JobInfo info;
  std::string spec;                 ///< Canonical spec JSON text.
  std::vector<std::string> events;  ///< events.jsonl lines, oldest first.
};

/// Everything a recovery scan found. `warnings` names job directories that
/// were skipped as unreadable (a corrupt record must not take the daemon
/// down with it).
struct RecoveredState {
  std::vector<PersistedJob> jobs;  ///< Sorted by id.
  std::vector<std::string> warnings;
};

class StateStore {
 public:
  /// Opens (creating if needed) the store rooted at `root`; throws
  /// std::runtime_error when the directory cannot be created or written.
  explicit StateStore(std::string root);

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  [[nodiscard]] const std::string& root() const noexcept { return root_; }

  /// Persist a freshly accepted (or recovery-re-queued) job: spec.json
  /// first, then the queued-state record.
  void save_accepted(const JobInfo& info, const std::string& spec);

  /// Persist a terminal job: every artifact tmp+rename'd into artifacts/,
  /// then the record naming them (the commit point). An interrupted call
  /// leaves the previous record, so recovery re-runs the job.
  void save_terminal(const JobInfo& info,
                     const std::map<std::string, std::string>& artifacts);

  /// Append one JSON line to the job's events.jsonl (best effort: event
  /// history is observability, so failures are swallowed rather than
  /// failing the job).
  void append_event(std::uint64_t id, const std::string& line);

  /// Artifact bytes of a terminal job, or nullopt when absent. Rejects
  /// names that could escape the artifacts directory.
  [[nodiscard]] std::optional<std::string> read_artifact(
      std::uint64_t id, const std::string& name) const;

  /// Scan the store, discarding stale *.tmp leftovers. Never throws for a
  /// malformed job directory — it is reported in `warnings` and skipped.
  [[nodiscard]] RecoveredState recover() const;

 private:
  std::string root_;
  std::mutex events_mu_;  ///< Serializes events.jsonl appends.
};

}  // namespace htnoc::server
