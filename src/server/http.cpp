#include "server/http.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace htnoc::server {

namespace {

constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 64 * 1024 * 1024;

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Write all of `data`, retrying on EINTR / short writes.
bool send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

std::string serialize_response(const HttpResponse& r) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                    status_text(r.status) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += r.body;
  return out;
}

/// Case-insensitive ASCII prefix match ("content-length:" etc.).
bool iprefix(const std::string& line, const char* prefix) {
  std::size_t i = 0;
  for (; prefix[i] != '\0'; ++i) {
    if (i >= line.size()) return false;
    const char a = line[i];
    const char b = prefix[i];
    const char al = (a >= 'A' && a <= 'Z') ? static_cast<char>(a + 32) : a;
    if (al != b) return false;
  }
  return true;
}

/// Read from fd until the header terminator, then Content-Length body
/// bytes. Returns false on malformed or oversized input.
bool read_request(int fd, HttpRequest& req) {
  std::string buf;
  std::size_t header_end = std::string::npos;
  char chunk[4096];
  while (header_end == std::string::npos) {
    if (buf.size() > kMaxHeaderBytes) return false;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // peer closed before a full request
    buf.append(chunk, static_cast<std::size_t>(n));
    header_end = buf.find("\r\n\r\n");
  }

  // Request line: METHOD SP target SP HTTP/1.x
  const std::size_t line_end = buf.find("\r\n");
  const std::string line = buf.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0
                                                                  : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (req.method.empty() || req.target.empty() || req.target[0] != '/') {
    return false;
  }

  std::size_t content_length = 0;
  bool have_content_length = false;
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    const std::size_t eol = buf.find("\r\n", pos);
    const std::string header = buf.substr(pos, eol - pos);
    pos = eol + 2;
    if (iprefix(header, "content-length:")) {
      // Exactly one Content-Length is allowed: picking either copy of a
      // duplicated header is how request-smuggling desyncs start, so the
      // request is rejected outright.
      if (have_content_length) return false;
      have_content_length = true;
      const std::string v = header.substr(15);
      char* end = nullptr;
      const unsigned long long n =
          std::strtoull(v.c_str(), &end, 10);
      if (end == v.c_str() || n > kMaxBodyBytes) return false;
      content_length = static_cast<std::size_t>(n);
    }
  }

  std::string body = buf.substr(header_end + 4);
  while (body.size() < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    body.append(chunk, static_cast<std::size_t>(n));
  }
  body.resize(content_length);  // ignore pipelined extra bytes
  req.body = std::move(body);
  return true;
}

}  // namespace

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

HttpServer::HttpServer(const Options& opts, Handler handler)
    : handler_(std::move(handler)), recv_timeout_ms_(opts.recv_timeout_ms) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const int e = errno;
    ::close(listen_fd_);
    errno = e;
    sys_fail("bind");
  }
  if (::listen(listen_fd_, 64) < 0) {
    const int e = errno;
    ::close(listen_fd_);
    errno = e;
    sys_fail("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    const int e = errno;
    ::close(listen_fd_);
    errno = e;
    sys_fail("getsockname");
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));

  const int nworkers = opts.num_workers < 1 ? 1 : opts.num_workers;
  workers_.reserve(static_cast<std::size_t>(nworkers));
  for (int i = 0; i < nworkers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  // shutdown() unblocks the accept(2) in the acceptor thread.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Close any connections that were accepted but never picked up.
  std::lock_guard<std::mutex> lock(mu_);
  for (const int fd : pending_) ::close(fd);
  pending_.clear();
}

void HttpServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or fatal error): stop accepting
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.push_back(fd);
    }
    cv_.notify_one();
  }
}

void HttpServer::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_.load() || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    handle_connection(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  if (recv_timeout_ms_ > 0) {
    // A stalled client times recv(2) out (EAGAIN) and falls into the
    // malformed-request path below instead of blocking this worker —
    // stop() joins the workers, so an unbounded recv would block drain.
    timeval tv{};
    tv.tv_sec = recv_timeout_ms_ / 1000;
    tv.tv_usec = (recv_timeout_ms_ % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
  HttpRequest req;
  HttpResponse resp;
  if (!read_request(fd, req)) {
    resp.status = 400;
    resp.body = "{\"error\":\"malformed request\"}\n";
  } else if (req.method != "GET" && req.method != "POST" &&
             req.method != "DELETE") {
    resp.status = 405;
    resp.body = "{\"error\":\"method not allowed\"}\n";
  } else {
    try {
      resp = handler_(req);
    } catch (const std::exception& e) {
      resp = HttpResponse{};
      resp.status = 500;
      resp.body = std::string("{\"error\":\"") + e.what() + "\"}\n";
    }
  }
  const std::string wire = serialize_response(resp);
  send_all(fd, wire.data(), wire.size());
  ::close(fd);
}

HttpResponse http_request(int port, const std::string& method,
                          const std::string& target,
                          const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    sys_fail("connect");
  }

  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: 127.0.0.1\r\n";
  wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  wire += "Connection: close\r\n\r\n";
  wire += body;
  if (!send_all(fd, wire.data(), wire.size())) {
    ::close(fd);
    throw std::runtime_error("send failed");
  }

  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int e = errno;
      ::close(fd);
      errno = e;
      sys_fail("recv");
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos || raw.rfind("HTTP/1.", 0) != 0) {
    throw std::runtime_error("malformed HTTP response");
  }
  HttpResponse resp;
  const std::size_t sp = raw.find(' ');
  resp.status = std::atoi(raw.c_str() + sp + 1);
  const std::size_t line_end = raw.find("\r\n");
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    const std::size_t eol = raw.find("\r\n", pos);
    const std::string header = raw.substr(pos, eol - pos);
    pos = eol + 2;
    if (iprefix(header, "content-type:")) {
      std::size_t v = 13;
      while (v < header.size() && header[v] == ' ') ++v;
      resp.content_type = header.substr(v);
    }
  }
  resp.body = raw.substr(header_end + 4);
  return resp;
}

HttpResponse http_get(int port, const std::string& target) {
  return http_request(port, "GET", target);
}

HttpResponse http_post(int port, const std::string& target,
                       const std::string& body) {
  return http_request(port, "POST", target, body);
}

HttpResponse http_delete(int port, const std::string& target) {
  return http_request(port, "DELETE", target);
}

}  // namespace htnoc::server
