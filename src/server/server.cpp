#include "server/server.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "sweep/spec_json.hpp"

namespace htnoc::server {

namespace {

using json::Value;

/// Split "/runs/3/summary.csv" into segments; empty segments rejected by
/// returning an empty vector.
std::vector<std::string> split_path(const std::string& target) {
  std::vector<std::string> out;
  std::size_t pos = 1;  // skip leading '/'
  while (pos <= target.size()) {
    const std::size_t next = target.find('/', pos);
    const std::size_t end = next == std::string::npos ? target.size() : next;
    if (end == pos) return {};  // empty segment ("//" or trailing "/")
    out.push_back(target.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

bool parse_id(const std::string& s, std::uint64_t& id) {
  if (s.empty() || s.size() > 18) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  id = v;
  return true;
}

Value job_to_json(const JobInfo& info) {
  json::Object o;
  o.emplace_back("id", Value(static_cast<double>(info.id)));
  o.emplace_back("kind", Value(to_string(info.kind)));
  o.emplace_back("state", Value(to_string(info.state)));
  o.emplace_back("jobs", Value(info.jobs));
  o.emplace_back("step_threads", Value(info.step_threads));
  o.emplace_back("cost", Value(info.jobs * info.step_threads));
  o.emplace_back("done", Value(static_cast<double>(info.done)));
  o.emplace_back("total", Value(static_cast<double>(info.total)));
  if (!info.error.empty()) o.emplace_back("error", Value(info.error));
  json::Array arts;
  for (const std::string& a : info.artifacts) arts.emplace_back(a);
  o.emplace_back("artifacts", Value(std::move(arts)));
  return Value(std::move(o));
}

std::string content_type_for(const std::string& artifact) {
  if (artifact.size() >= 4 &&
      artifact.compare(artifact.size() - 4, 4, ".csv") == 0) {
    return "text/csv";
  }
  if (artifact.size() >= 5 &&
      artifact.compare(artifact.size() - 5, 5, ".json") == 0) {
    return "application/json";
  }
  return "text/plain";
}

}  // namespace

HttpResponse error_response(int status, const std::string& msg) {
  json::Object o;
  o.emplace_back("error", Value(msg));
  HttpResponse r;
  r.status = status;
  r.body = json::to_string(Value(std::move(o))) + "\n";
  return r;
}

Server::Server(const Options& opts, SinkSet* sinks)
    : opts_(opts), sinks_(sinks), jobs_(JobQueue::Options{
                                      opts.core_budget, sinks,
                                      opts.state_dir}) {
  HttpServer::Options ho;
  ho.port = opts.port;
  ho.num_workers = opts.http_workers;
  ho.recv_timeout_ms = opts.recv_timeout_ms;
  http_ = std::make_unique<HttpServer>(
      ho, [this](const HttpRequest& req) { return handle(req); });
  if (sinks_ != nullptr) {
    json::Object o;
    o.emplace_back("event", Value("server_started"));
    o.emplace_back("port", Value(http_->port()));
    o.emplace_back("core_budget", Value(jobs_.core_budget()));
    sinks_->emit(Value(std::move(o)));
  }
}

Server::~Server() {
  shutdown();
  if (quit_thread_.joinable()) quit_thread_.join();
}

void Server::shutdown() {
  if (shutting_down_.exchange(true)) {
    wait();
    return;
  }
  if (sinks_ != nullptr) {
    json::Object o;
    o.emplace_back("event", Value("server_stopping"));
    sinks_->emit(Value(std::move(o)));
  }
  // Order matters: drain first (accepted jobs finish and publish whole
  // artifacts), then stop the listener so in-flight admin reads complete.
  jobs_.drain();
  http_->stop();
  if (sinks_ != nullptr) sinks_->flush();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
    cv_.notify_all();
  }
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return stopped_; });
}

HttpResponse Server::handle(const HttpRequest& req) {
  const auto start = std::chrono::steady_clock::now();
  HttpResponse resp;
  if (req.method == "GET") {
    resp = handle_get(req.target);
  } else if (req.method == "DELETE") {
    resp = handle_delete(req.target);
  } else {
    resp = handle_post(req);
  }
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++requests_total_;
    request_latency_us_.record(static_cast<Cycle>(us));
  }
  return resp;
}

HttpResponse Server::handle_get(const std::string& target) {
  if (target == "/healthz") {
    json::Object o;
    o.emplace_back("status",
                   Value(jobs_.draining() ? "draining" : "ok"));
    HttpResponse r;
    r.body = json::to_string(Value(std::move(o))) + "\n";
    return r;
  }
  if (target == "/stats") return stats_response();
  if (target == "/config_dump") return config_dump();
  if (target == "/runs") {
    json::Array arr;
    for (const JobInfo& info : jobs_.list()) arr.push_back(job_to_json(info));
    json::Object o;
    o.emplace_back("runs", Value(std::move(arr)));
    HttpResponse r;
    r.body = json::to_string(Value(std::move(o)), 1) + "\n";
    return r;
  }

  const std::vector<std::string> parts = split_path(target);
  if (parts.size() >= 2 && parts[0] == "runs") {
    std::uint64_t id = 0;
    if (!parse_id(parts[1], id)) {
      return error_response(404, "bad run id \"" + parts[1] + "\"");
    }
    if (parts.size() == 2) {
      const std::optional<JobInfo> info = jobs_.info(id);
      if (!info) return error_response(404, "no such run");
      HttpResponse r;
      r.body = json::to_string(job_to_json(*info), 1) + "\n";
      return r;
    }
    if (parts.size() == 3 && parts[2] == "events") {
      // "events" is outside the artifact-name vocabulary, so this route
      // cannot shadow a real artifact.
      const std::optional<std::vector<std::string>> lines = jobs_.events(id);
      if (!lines) return error_response(404, "no such run");
      std::string body;
      for (const std::string& line : *lines) {
        body += line;
        body += '\n';
      }
      HttpResponse r;
      r.content_type = "application/x-ndjson";
      r.body = std::move(body);
      return r;
    }
    if (parts.size() == 3) {
      const std::optional<std::string> bytes = jobs_.artifact(id, parts[2]);
      if (!bytes) return error_response(404, "no such artifact");
      HttpResponse r;
      r.content_type = content_type_for(parts[2]);
      r.body = *bytes;
      return r;
    }
  }
  return error_response(404, "no such endpoint");
}

HttpResponse Server::handle_delete(const std::string& target) {
  const std::vector<std::string> parts = split_path(target);
  if (parts.size() != 2 || parts[0] != "runs") {
    return error_response(404, "no such endpoint");
  }
  std::uint64_t id = 0;
  if (!parse_id(parts[1], id)) {
    return error_response(404, "bad run id \"" + parts[1] + "\"");
  }
  const CancelResult result = jobs_.cancel(id);
  switch (result.status) {
    case CancelResult::Status::kNotFound:
      return error_response(404, "no such run");
    case CancelResult::Status::kConflict:
      return error_response(409, std::string("run already ") +
                                     to_string(result.state));
    case CancelResult::Status::kOk:
      break;
  }
  json::Object o;
  o.emplace_back("id", Value(static_cast<double>(id)));
  // Normally "cancelled"; "done" when the job beat the stop token to the
  // finish line — the caller learns the truth either way.
  o.emplace_back("state", Value(to_string(result.state)));
  HttpResponse r;
  r.body = json::to_string(Value(std::move(o))) + "\n";
  return r;
}

HttpResponse Server::handle_post(const HttpRequest& req) {
  if (req.target == "/quitquitquit") {
    // Shut down from a separate thread: drain() blocks on running jobs and
    // the HTTP worker serving this request must answer first. The thread is
    // a member so the destructor can join it.
    if (!quit_requested_.exchange(true)) {
      quit_thread_ = std::thread([this] { shutdown(); });
    }
    json::Object o;
    o.emplace_back("status", Value("draining"));
    HttpResponse r;
    r.body = json::to_string(Value(std::move(o))) + "\n";
    return r;
  }
  if (req.target == "/runs") {
    try {
      const std::uint64_t id = jobs_.submit(req.body);
      json::Object o;
      o.emplace_back("id", Value(static_cast<double>(id)));
      o.emplace_back("state", Value("queued"));
      HttpResponse r;
      r.status = 202;
      r.body = json::to_string(Value(std::move(o))) + "\n";
      return r;
    } catch (const sweep::SpecError& e) {
      return error_response(400, e.what());
    } catch (const std::runtime_error& e) {
      return error_response(503, e.what());
    }
  }
  return error_response(404, "no such endpoint");
}

HttpResponse Server::stats_response() {
  const JobCounters c = jobs_.counters();
  json::Object o;
  json::Object counters;
  counters.emplace_back("jobs_submitted",
                        Value(static_cast<double>(c.submitted)));
  counters.emplace_back("jobs_rejected",
                        Value(static_cast<double>(c.rejected)));
  counters.emplace_back("jobs_completed",
                        Value(static_cast<double>(c.completed)));
  counters.emplace_back("jobs_cancelled",
                        Value(static_cast<double>(c.cancelled)));
  counters.emplace_back("jobs_failed", Value(static_cast<double>(c.failed)));
  counters.emplace_back("jobs_recovered",
                        Value(static_cast<double>(c.recovered)));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    counters.emplace_back("http_requests",
                          Value(static_cast<double>(requests_total_)));
  }
  o.emplace_back("counters", Value(std::move(counters)));
  json::Object gauges;
  gauges.emplace_back("jobs_queued",
                      Value(static_cast<double>(jobs_.queued())));
  gauges.emplace_back("jobs_running",
                      Value(static_cast<double>(jobs_.running())));
  gauges.emplace_back("cores_in_use", Value(jobs_.cores_in_use()));
  gauges.emplace_back("core_budget", Value(jobs_.core_budget()));
  o.emplace_back("gauges", Value(std::move(gauges)));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    o.emplace_back("request_latency_us", request_latency_us_.to_json());
  }
  HttpResponse r;
  r.body = json::to_string(Value(std::move(o)), 1) + "\n";
  return r;
}

HttpResponse Server::config_dump() {
  json::Object options;
  options.emplace_back("port", Value(http_->port()));
  options.emplace_back("core_budget", Value(jobs_.core_budget()));
  options.emplace_back("http_workers", Value(opts_.http_workers));
  options.emplace_back("state_dir", Value(opts_.state_dir));
  options.emplace_back("recv_timeout_ms", Value(opts_.recv_timeout_ms));
  options.emplace_back(
      "sinks",
      Value(static_cast<double>(sinks_ != nullptr ? sinks_->size() : 0)));
  json::Object o;
  o.emplace_back("options", Value(std::move(options)));
  json::Array jobs;
  for (const JobInfo& info : jobs_.list()) {
    json::Object j;
    j.emplace_back("id", Value(static_cast<double>(info.id)));
    j.emplace_back("kind", Value(to_string(info.kind)));
    j.emplace_back("jobs", Value(info.jobs));
    if (const std::optional<std::string> spec =
            jobs_.canonical_spec(info.id)) {
      // The canonical text is itself JSON; embed it as a structured value.
      j.emplace_back("spec", json::parse(*spec));
    }
    jobs.push_back(Value(std::move(j)));
  }
  o.emplace_back("jobs", Value(std::move(jobs)));
  HttpResponse r;
  r.body = json::to_string(Value(std::move(o)), 1) + "\n";
  return r;
}

}  // namespace htnoc::server
