#include "server/sink.hpp"

#include <stdexcept>

namespace htnoc::server {

void StdoutSink::write(const json::Value& event) {
  const std::string line = json::to_string(event) + "\n";
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), stdout);
}

void StdoutSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fflush(stdout);
}

FileSink::FileSink(const std::string& path) {
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open sink file: " + path);
  }
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileSink::write(const json::Value& event) {
  const std::string line = json::to_string(event) + "\n";
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

void FileSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fflush(file_);
}

std::unique_ptr<StatSink> make_sink(const std::string& desc) {
  if (desc == "stdout") return std::make_unique<StdoutSink>();
  if (desc.rfind("file:", 0) == 0) {
    const std::string path = desc.substr(5);
    if (path.empty()) throw std::runtime_error("file sink needs a path");
    return std::make_unique<FileSink>(path);
  }
  throw std::runtime_error("unknown sink \"" + desc +
                           "\" (expected stdout or file:<path>)");
}

}  // namespace htnoc::server
