#include "server/jobs.hpp"

#include <sstream>
#include <stdexcept>
#include <thread>

#include "sweep/emit.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec_json.hpp"
#include "trace/export.hpp"
#include "verify/campaign.hpp"
#include "verify/campaign_json.hpp"

namespace htnoc::server {

namespace {

using json::Value;

[[noreturn]] void bad(const std::string& path, const std::string& msg) {
  throw sweep::SpecError(path + ": " + msg);
}

}  // namespace

const char* to_string(JobKind k) {
  return k == JobKind::kSweep ? "sweep" : "campaign";
}

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

JobQueue::JobQueue(const Options& opts) : sinks_(opts.sinks) {
  budget_ = opts.core_budget;
  if (budget_ <= 0) {
    budget_ = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (budget_ <= 0) budget_ = 1;
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

JobQueue::~JobQueue() { drain(); }

std::uint64_t JobQueue::submit(const std::string& envelope_json) {
  // Parse the envelope strictly before touching any queue state, so a
  // malformed submission is a pure no-op.
  Value doc = [&] {
    try {
      return json::parse(envelope_json);
    } catch (const json::ParseError& e) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.rejected;
      throw sweep::SpecError(std::string("envelope: ") + e.what());
    }
  }();

  JobKind kind = JobKind::kSweep;
  bool have_kind = false;
  int jobs = 1;
  const Value* spec_value = nullptr;
  try {
    for (const auto& [key, val] : doc.as_object()) {
      if (key == "kind") {
        const std::string& s = val.as_string();
        if (s == "sweep") {
          kind = JobKind::kSweep;
        } else if (s == "campaign") {
          kind = JobKind::kCampaign;
        } else {
          bad("kind", "unknown job kind \"" + s +
                          "\" (expected sweep/campaign)");
        }
        have_kind = true;
      } else if (key == "jobs") {
        const std::uint64_t n = json::as_uint64(val);
        if (n < 1 || n > 256) bad("jobs", "must be in [1, 256]");
        jobs = static_cast<int>(n);
      } else if (key == "spec") {
        spec_value = &val;
      } else {
        bad(key, "unknown key in submission envelope");
      }
    }
    if (!have_kind) bad("kind", "missing");
    if (spec_value == nullptr) bad("spec", "missing");
  } catch (const json::TypeError& e) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rejected;
    throw sweep::SpecError(std::string("envelope: ") + e.what());
  } catch (const sweep::SpecError&) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rejected;
    throw;
  }

  // Parse the spec strictly and re-serialize it: the canonical text is what
  // the job will run from, and what /config_dump reports.
  std::string canonical;
  int step_threads = 1;
  try {
    if (kind == JobKind::kSweep) {
      const sweep::SweepSpec spec = sweep::sweep_spec_from_json(*spec_value);
      canonical = json::to_string(sweep::sweep_spec_to_json(spec));
      step_threads = spec.base.noc.step_threads;
    } else {
      const verify::CampaignSpec spec =
          verify::campaign_spec_from_json(*spec_value);
      canonical = json::to_string(verify::campaign_spec_to_json(spec));
      step_threads = spec.step_threads;
    }
  } catch (const sweep::SpecError&) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rejected;
    throw;
  }

  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      throw std::runtime_error("server is draining; submissions refused");
    }
    id = next_id_++;
    Job& job = jobs_[id];
    job.info.id = id;
    job.info.kind = kind;
    job.info.state = JobState::kQueued;
    job.info.jobs = jobs;
    job.info.step_threads = step_threads;
    job.spec = std::move(canonical);
    fifo_.push_back(id);
    ++counters_.submitted;
    emit_job_event("job_submitted", job);
  }
  cv_.notify_all();
  return id;
}

std::optional<JobInfo> JobQueue::info(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.info;
}

std::vector<JobInfo> JobQueue::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job.info);
  return out;
}

std::optional<std::string> JobQueue::artifact(std::uint64_t id,
                                              const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const auto art = it->second.artifacts.find(name);
  if (art == it->second.artifacts.end()) return std::nullopt;
  return art->second;
}

std::optional<std::string> JobQueue::canonical_spec(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.spec;
}

JobCounters JobQueue::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

int JobQueue::cores_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_cost_;
}

std::size_t JobQueue::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fifo_.size();
}

std::size_t JobQueue::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_count_;
}

bool JobQueue::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void JobQueue::drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    stop_scheduler_ = true;
  }
  cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  if (sinks_ != nullptr) sinks_->flush();
}

void JobQueue::scheduler_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Reap finished job threads (they announce themselves via
    // finished_threads_ right before exiting).
    while (!finished_threads_.empty()) {
      const std::uint64_t id = finished_threads_.back();
      finished_threads_.pop_back();
      const auto it = active_.find(id);
      if (it != active_.end()) {
        it->second.join();
        active_.erase(it);
      }
    }

    if (stop_scheduler_ && fifo_.empty() && running_count_ == 0 &&
        active_.empty()) {
      return;
    }

    // Strict FIFO: only the head is considered. An over-budget head runs
    // once the queue is otherwise idle, so it cannot be starved.
    if (!fifo_.empty()) {
      const std::uint64_t id = fifo_.front();
      Job& job = jobs_.at(id);
      const int cost = cost_of(job.info);
      if (running_cost_ == 0 || running_cost_ + cost <= budget_) {
        fifo_.pop_front();
        job.info.state = JobState::kRunning;
        running_cost_ += cost;
        ++running_count_;
        emit_job_event("job_started", job);
        active_.emplace(id, std::thread([this, id] { run_job(id); }));
        continue;
      }
    }

    cv_.wait(lock);
  }
}

void JobQueue::run_job(std::uint64_t id) {
  JobKind kind = JobKind::kSweep;
  {
    std::lock_guard<std::mutex> lock(mu_);
    kind = jobs_.at(id).info.kind;
  }

  // Artifacts are built entirely off to the side; nothing below touches
  // queue state until the single publication step at the end.
  std::map<std::string, std::string> artifacts;
  std::string error;
  try {
    Job snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      snapshot.info = jobs_.at(id).info;
      snapshot.spec = jobs_.at(id).spec;
    }
    if (kind == JobKind::kSweep) {
      execute_sweep(snapshot, artifacts, id);
    } else {
      execute_campaign(snapshot, artifacts);
    }
  } catch (const std::exception& e) {
    error = e.what();
  } catch (...) {
    error = "unknown exception";
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    Job& job = jobs_.at(id);
    if (error.empty()) {
      job.artifacts = std::move(artifacts);
      job.info.artifacts.clear();
      for (const auto& [name, bytes] : job.artifacts) {
        job.info.artifacts.push_back(name);
      }
      job.info.state = JobState::kDone;
      ++counters_.completed;
    } else {
      job.info.state = JobState::kFailed;
      job.info.error = error;
      ++counters_.failed;
    }
    running_cost_ -= cost_of(job.info);
    --running_count_;
    finished_threads_.push_back(id);
    emit_job_event("job_finished", job);
  }
  cv_.notify_all();
}

void JobQueue::execute_sweep(Job& job,
                             std::map<std::string, std::string>& artifacts,
                             std::uint64_t id) {
  const sweep::SweepSpec spec = sweep::parse_sweep_spec(job.spec);
  sweep::SweepRunner::Options opts;
  opts.num_threads = job.info.jobs;
  opts.progress = [this, id](std::size_t done, std::size_t total) {
    report_progress(id, done, total);
  };
  const sweep::SweepResult result = sweep::SweepRunner(opts).run(spec);

  std::ostringstream summary;
  sweep::write_summary_csv(summary, result);
  artifacts["summary.csv"] = summary.str();
  std::ostringstream runs;
  sweep::write_runs_csv(runs, result);
  artifacts["runs.csv"] = runs.str();
  artifacts["result.json"] = sweep::to_json(result);

  // Runs that captured an event trace additionally publish it in Chrome
  // trace-event form, ready for Perfetto.
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    if (result.runs[i].trace) {
      artifacts["trace_run" + std::to_string(i) + ".json"] =
          trace::to_chrome_json(*result.runs[i].trace);
    }
  }
}

void JobQueue::execute_campaign(
    Job& job, std::map<std::string, std::string>& artifacts) {
  verify::CampaignSpec spec = verify::parse_campaign_spec(job.spec);
  spec.threads = job.info.jobs;
  const std::uint64_t id = job.info.id;
  spec.progress = [this, id](std::uint64_t done, std::uint64_t total) {
    report_progress(id, done, total);
  };
  const verify::CampaignResult result = verify::FaultCampaign(spec).run();
  artifacts["summary.txt"] = result.summary_text();
  artifacts["summary.md"] = result.summary_markdown();
}

void JobQueue::report_progress(std::uint64_t id, std::uint64_t done,
                               std::uint64_t total) {
  bool emit = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Job& job = jobs_.at(id);
    job.info.done = done;
    job.info.total = total;
    // Sinks see ~5% granularity (and always the final update); /runs/<id>
    // always reports the exact live counters.
    const std::uint64_t stride = total >= 20 ? total / 20 : 1;
    emit = done == total || done % stride == 0;
  }
  if (emit && sinks_ != nullptr) {
    json::Object o;
    o.emplace_back("event", Value("job_progress"));
    o.emplace_back("job", Value(static_cast<double>(id)));
    o.emplace_back("done", Value(static_cast<double>(done)));
    o.emplace_back("total", Value(static_cast<double>(total)));
    sinks_->emit(Value(std::move(o)));
  }
}

void JobQueue::emit_job_event(const char* event, const Job& job) {
  if (sinks_ == nullptr) return;
  json::Object o;
  o.emplace_back("event", Value(event));
  o.emplace_back("job", Value(static_cast<double>(job.info.id)));
  o.emplace_back("kind", Value(to_string(job.info.kind)));
  o.emplace_back("state", Value(to_string(job.info.state)));
  o.emplace_back("jobs", Value(job.info.jobs));
  o.emplace_back("step_threads", Value(job.info.step_threads));
  o.emplace_back("cost", Value(cost_of(job.info)));
  if (!job.info.error.empty()) {
    o.emplace_back("error", Value(job.info.error));
  }
  if (job.info.state == JobState::kDone) {
    o.emplace_back("artifacts",
                   Value(static_cast<double>(job.info.artifacts.size())));
  }
  sinks_->emit(Value(std::move(o)));
}

}  // namespace htnoc::server
