#include "server/jobs.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "server/state.hpp"
#include "sweep/emit.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec_json.hpp"
#include "trace/export.hpp"
#include "verify/campaign.hpp"
#include "verify/campaign_json.hpp"

namespace htnoc::server {

namespace {

using json::Value;

/// Per-job replay ring bound: generously above the ~25 lifecycle +
/// progress events a job emits, small enough that a million-run daemon
/// cannot be memory-bombed through its own observability.
constexpr std::size_t kEventRingCap = 1024;

[[noreturn]] void bad(const std::string& path, const std::string& msg) {
  throw sweep::SpecError(path + ": " + msg);
}

}  // namespace

const char* to_string(JobKind k) {
  return k == JobKind::kSweep ? "sweep" : "campaign";
}

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

std::optional<JobKind> job_kind_from_string(const std::string& s) {
  if (s == "sweep") return JobKind::kSweep;
  if (s == "campaign") return JobKind::kCampaign;
  return std::nullopt;
}

std::optional<JobState> job_state_from_string(const std::string& s) {
  if (s == "queued") return JobState::kQueued;
  if (s == "running") return JobState::kRunning;
  if (s == "done") return JobState::kDone;
  if (s == "cancelled") return JobState::kCancelled;
  if (s == "failed") return JobState::kFailed;
  return std::nullopt;
}

JobQueue::JobQueue(const Options& opts) : sinks_(opts.sinks) {
  budget_ = opts.core_budget;
  if (budget_ <= 0) {
    budget_ = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (budget_ <= 0) budget_ = 1;
  if (!opts.state_dir.empty()) {
    store_ = std::make_unique<StateStore>(opts.state_dir);
    recover_state();
  }
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

JobQueue::~JobQueue() { drain(); }

void JobQueue::recover_state() {
  // Runs before the scheduler thread exists, so no locking is needed; the
  // queue is rebuilt exactly as a drain would have left it, except that
  // jobs caught mid-flight go back to the head of the FIFO.
  const RecoveredState recovered = store_->recover();
  for (const std::string& w : recovered.warnings) {
    if (sinks_ != nullptr) {
      json::Object o;
      o.emplace_back("event", Value("state_warning"));
      o.emplace_back("detail", Value(w));
      sinks_->emit(Value(std::move(o)));
    }
  }
  for (const PersistedJob& pj : recovered.jobs) {
    Job& job = jobs_[pj.info.id];
    job.info = pj.info;
    job.spec = pj.spec;
    for (const std::string& line : pj.events) {
      job.events.push_back(line);
      if (job.events.size() > kEventRingCap) job.events.pop_front();
    }
    next_id_ = std::max(next_id_, pj.info.id + 1);
    ++counters_.recovered;
    if (job.info.state == JobState::kQueued ||
        job.info.state == JobState::kRunning) {
      // Accepted but never published: the terminal record never landed, so
      // whatever the old process was doing is void — re-run from the
      // canonical spec (deterministic: the artifacts come out byte-equal).
      job.info.state = JobState::kQueued;
      job.info.done = 0;
      job.info.total = 0;
      job.info.error.clear();
      job.info.artifacts.clear();
      store_->save_accepted(job.info, job.spec);
      fifo_.push_back(pj.info.id);
      emit_job_event("job_recovered", job);
    }
  }
}

std::uint64_t JobQueue::submit(const std::string& envelope_json) {
  // Parse the envelope strictly before touching any queue state, so a
  // malformed submission is a pure no-op.
  Value doc = [&] {
    try {
      return json::parse(envelope_json);
    } catch (const json::ParseError& e) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.rejected;
      throw sweep::SpecError(std::string("envelope: ") + e.what());
    }
  }();

  JobKind kind = JobKind::kSweep;
  bool have_kind = false;
  int jobs = 1;
  const Value* spec_value = nullptr;
  try {
    for (const auto& [key, val] : doc.as_object()) {
      if (key == "kind") {
        const std::string& s = val.as_string();
        if (const std::optional<JobKind> k = job_kind_from_string(s)) {
          kind = *k;
        } else {
          bad("kind", "unknown job kind \"" + s +
                          "\" (expected sweep/campaign)");
        }
        have_kind = true;
      } else if (key == "jobs") {
        const std::uint64_t n = json::as_uint64(val);
        if (n < 1 || n > 256) bad("jobs", "must be in [1, 256]");
        jobs = static_cast<int>(n);
      } else if (key == "spec") {
        spec_value = &val;
      } else {
        bad(key, "unknown key in submission envelope");
      }
    }
    if (!have_kind) bad("kind", "missing");
    if (spec_value == nullptr) bad("spec", "missing");
  } catch (const json::TypeError& e) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rejected;
    throw sweep::SpecError(std::string("envelope: ") + e.what());
  } catch (const sweep::SpecError&) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rejected;
    throw;
  }

  // Parse the spec strictly and re-serialize it: the canonical text is what
  // the job will run from, and what /config_dump reports.
  std::string canonical;
  int step_threads = 1;
  try {
    if (kind == JobKind::kSweep) {
      const sweep::SweepSpec spec = sweep::sweep_spec_from_json(*spec_value);
      canonical = json::to_string(sweep::sweep_spec_to_json(spec));
      step_threads = spec.base.noc.step_threads;
    } else {
      const verify::CampaignSpec spec =
          verify::campaign_spec_from_json(*spec_value);
      canonical = json::to_string(verify::campaign_spec_to_json(spec));
      step_threads = spec.step_threads;
    }
  } catch (const sweep::SpecError&) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rejected;
    throw;
  }

  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      throw std::runtime_error("server is draining; submissions refused");
    }
    id = next_id_++;
    Job& job = jobs_[id];
    job.info.id = id;
    job.info.kind = kind;
    job.info.state = JobState::kQueued;
    job.info.jobs = jobs;
    job.info.step_threads = step_threads;
    job.spec = std::move(canonical);
    if (store_ != nullptr) {
      // Persist before acknowledging: once the client holds an id, a crash
      // must not lose the job. A disk failure rejects the submission whole.
      try {
        store_->save_accepted(job.info, job.spec);
      } catch (const std::exception&) {
        jobs_.erase(id);
        --next_id_;
        throw;
      }
    }
    fifo_.push_back(id);
    ++counters_.submitted;
    emit_job_event("job_submitted", job);
  }
  cv_.notify_all();
  return id;
}

std::optional<JobInfo> JobQueue::info(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.info;
}

std::vector<JobInfo> JobQueue::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job.info);
  return out;
}

std::optional<std::string> JobQueue::artifact(std::uint64_t id,
                                              const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const auto art = it->second.artifacts.find(name);
  if (art != it->second.artifacts.end()) return art->second;
  // Recovered jobs keep their bytes on disk only; serve them transparently
  // when the published name list vouches for the artifact.
  const JobInfo& info = it->second.info;
  if (store_ != nullptr &&
      std::find(info.artifacts.begin(), info.artifacts.end(), name) !=
          info.artifacts.end()) {
    return store_->read_artifact(id, name);
  }
  return std::nullopt;
}

std::optional<std::string> JobQueue::canonical_spec(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.spec;
}

std::optional<std::vector<std::string>> JobQueue::events(
    std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return std::vector<std::string>(it->second.events.begin(),
                                  it->second.events.end());
}

CancelResult JobQueue::cancel(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return {CancelResult::Status::kNotFound, JobState::kQueued};
  }
  Job& job = it->second;
  switch (job.info.state) {
    case JobState::kDone:
    case JobState::kFailed:
      return {CancelResult::Status::kConflict, job.info.state};
    case JobState::kCancelled:  // idempotent
      return {CancelResult::Status::kOk, JobState::kCancelled};
    case JobState::kQueued: {
      // Removed outright: it never starts, never holds budget.
      fifo_.erase(std::remove(fifo_.begin(), fifo_.end(), id), fifo_.end());
      job.info.state = JobState::kCancelled;
      ++counters_.cancelled;
      emit_job_event("job_cancelled", job);
      if (store_ != nullptr) store_->save_terminal(job.info, {});
      cv_.notify_all();
      return {CancelResult::Status::kOk, JobState::kCancelled};
    }
    case JobState::kRunning: {
      // Raise the engine's stop token and wait for the run/scenario
      // boundary: run_job publishes the terminal state (normally
      // kCancelled; kDone if the engine finished first) and releases the
      // job's core budget before notifying.
      job.stop->store(true, std::memory_order_relaxed);
      cv_.wait(lock, [this, id] {
        return jobs_.at(id).info.state != JobState::kRunning;
      });
      return {CancelResult::Status::kOk, jobs_.at(id).info.state};
    }
  }
  return {CancelResult::Status::kNotFound, JobState::kQueued};
}

JobCounters JobQueue::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

int JobQueue::cores_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_cost_;
}

std::size_t JobQueue::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fifo_.size();
}

std::size_t JobQueue::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_count_;
}

bool JobQueue::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void JobQueue::drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    stop_scheduler_ = true;
  }
  cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  if (sinks_ != nullptr) sinks_->flush();
}

void JobQueue::scheduler_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Reap finished job threads (they announce themselves via
    // finished_threads_ right before exiting).
    while (!finished_threads_.empty()) {
      const std::uint64_t id = finished_threads_.back();
      finished_threads_.pop_back();
      const auto it = active_.find(id);
      if (it != active_.end()) {
        it->second.join();
        active_.erase(it);
      }
    }

    if (stop_scheduler_ && fifo_.empty() && running_count_ == 0 &&
        active_.empty()) {
      return;
    }

    // Strict FIFO: only the head is considered. An over-budget head runs
    // once the queue is otherwise idle, so it cannot be starved.
    if (!fifo_.empty()) {
      const std::uint64_t id = fifo_.front();
      Job& job = jobs_.at(id);
      const int cost = cost_of(job.info);
      if (running_cost_ == 0 || running_cost_ + cost <= budget_) {
        fifo_.pop_front();
        job.info.state = JobState::kRunning;
        running_cost_ += cost;
        ++running_count_;
        emit_job_event("job_started", job);
        active_.emplace(id, std::thread([this, id] { run_job(id); }));
        continue;
      }
    }

    cv_.wait(lock);
  }
}

void JobQueue::run_job(std::uint64_t id) {
  // Artifacts are built entirely off to the side; nothing below touches
  // queue state until the single publication step at the end.
  std::map<std::string, std::string> artifacts;
  std::string error;
  bool cancelled = false;
  try {
    Job snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      snapshot.info = jobs_.at(id).info;
      snapshot.spec = jobs_.at(id).spec;
      snapshot.stop = jobs_.at(id).stop;
    }
    if (snapshot.info.kind == JobKind::kSweep) {
      execute_sweep(snapshot, artifacts, id, cancelled);
    } else {
      execute_campaign(snapshot, artifacts, cancelled);
    }
  } catch (const std::exception& e) {
    error = e.what();
  } catch (...) {
    error = "unknown exception";
  }

  // Assemble the terminal record and commit it to disk BEFORE the
  // in-memory publish: the state dir never claims more than memory serves,
  // and no disk I/O happens under the queue lock on the hot path.
  JobInfo final_info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    final_info = jobs_.at(id).info;
  }
  if (error.empty()) {
    final_info.state = cancelled ? JobState::kCancelled : JobState::kDone;
    for (const auto& [name, bytes] : artifacts) {
      final_info.artifacts.push_back(name);
    }
  } else {
    final_info.state = JobState::kFailed;
    final_info.error = error;
  }
  if (store_ != nullptr) {
    try {
      store_->save_terminal(final_info, artifacts);
    } catch (const std::exception& e) {
      // A job whose results cannot be made durable must not report
      // success — the restart-recovery contract would be a lie.
      final_info.state = JobState::kFailed;
      final_info.error = std::string("state persistence failed: ") + e.what();
      final_info.artifacts.clear();
      artifacts.clear();
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    Job& job = jobs_.at(id);
    const int cost = cost_of(job.info);
    job.info = final_info;
    job.artifacts = std::move(artifacts);
    switch (job.info.state) {
      case JobState::kDone: ++counters_.completed; break;
      case JobState::kCancelled: ++counters_.cancelled; break;
      default: ++counters_.failed; break;
    }
    running_cost_ -= cost;
    --running_count_;
    finished_threads_.push_back(id);
    emit_job_event("job_finished", job);
  }
  cv_.notify_all();
}

void JobQueue::execute_sweep(Job& job,
                             std::map<std::string, std::string>& artifacts,
                             std::uint64_t id, bool& cancelled) {
  const sweep::SweepSpec spec = sweep::parse_sweep_spec(job.spec);
  sweep::SweepRunner::Options opts;
  opts.num_threads = job.info.jobs;
  opts.progress = [this, id](std::size_t done, std::size_t total) {
    report_progress(id, done, total);
  };
  const std::shared_ptr<std::atomic<bool>> stop = job.stop;
  opts.should_stop = [stop] {
    return stop->load(std::memory_order_relaxed);
  };
  const sweep::SweepResult result = sweep::SweepRunner(opts).run(spec);
  cancelled = result.cancelled;

  // A cancelled sweep publishes the artifacts of its completed prefix —
  // the emitters run over the truncated (deterministic) result.
  std::ostringstream summary;
  sweep::write_summary_csv(summary, result);
  artifacts["summary.csv"] = summary.str();
  std::ostringstream runs;
  sweep::write_runs_csv(runs, result);
  artifacts["runs.csv"] = runs.str();
  artifacts["result.json"] = sweep::to_json(result);

  // Runs that captured an event trace additionally publish it in Chrome
  // trace-event form, ready for Perfetto.
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    if (result.runs[i].trace) {
      artifacts["trace_run" + std::to_string(i) + ".json"] =
          trace::to_chrome_json(*result.runs[i].trace);
    }
  }
}

void JobQueue::execute_campaign(
    Job& job, std::map<std::string, std::string>& artifacts,
    bool& cancelled) {
  verify::CampaignSpec spec = verify::parse_campaign_spec(job.spec);
  spec.threads = job.info.jobs;
  const std::uint64_t id = job.info.id;
  spec.progress = [this, id](std::uint64_t done, std::uint64_t total) {
    report_progress(id, done, total);
  };
  const std::shared_ptr<std::atomic<bool>> stop = job.stop;
  spec.should_stop = [stop] {
    return stop->load(std::memory_order_relaxed);
  };
  const verify::CampaignResult result = verify::FaultCampaign(spec).run();
  cancelled = result.cancelled;
  artifacts["summary.txt"] = result.summary_text();
  artifacts["summary.md"] = result.summary_markdown();
}

void JobQueue::report_progress(std::uint64_t id, std::uint64_t done,
                               std::uint64_t total) {
  bool emit = false;
  std::string line;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Job& job = jobs_.at(id);
    job.info.done = done;
    job.info.total = total;
    // Sinks see ~5% granularity (and always the final update); /runs/<id>
    // always reports the exact live counters.
    const std::uint64_t stride = total >= 20 ? total / 20 : 1;
    emit = done == total || done % stride == 0;
    if (emit) {
      json::Object o;
      o.emplace_back("event", Value("job_progress"));
      o.emplace_back("job", Value(static_cast<double>(id)));
      o.emplace_back("done", Value(static_cast<double>(done)));
      o.emplace_back("total", Value(static_cast<double>(total)));
      line = json::to_string(Value(std::move(o)));
      job.events.push_back(line);
      if (job.events.size() > kEventRingCap) job.events.pop_front();
    }
  }
  if (!emit) return;
  // Disk and sink I/O stay off the queue lock; per-job ordering holds
  // because one job thread emits all of a job's progress.
  if (store_ != nullptr) store_->append_event(id, line);
  if (sinks_ != nullptr) sinks_->emit(json::parse(line));
}

void JobQueue::record_event(Job& job, const json::Value& event) {
  const std::string line = json::to_string(event);
  job.events.push_back(line);
  if (job.events.size() > kEventRingCap) job.events.pop_front();
  if (store_ != nullptr) store_->append_event(job.info.id, line);
  if (sinks_ != nullptr) sinks_->emit(event);
}

void JobQueue::emit_job_event(const char* event, const Job& job) {
  json::Object o;
  o.emplace_back("event", Value(event));
  o.emplace_back("job", Value(static_cast<double>(job.info.id)));
  o.emplace_back("kind", Value(to_string(job.info.kind)));
  o.emplace_back("state", Value(to_string(job.info.state)));
  o.emplace_back("jobs", Value(job.info.jobs));
  o.emplace_back("step_threads", Value(job.info.step_threads));
  o.emplace_back("cost", Value(cost_of(job.info)));
  if (!job.info.error.empty()) {
    o.emplace_back("error", Value(job.info.error));
  }
  if (job.info.state == JobState::kDone ||
      job.info.state == JobState::kCancelled) {
    o.emplace_back("artifacts",
                   Value(static_cast<double>(job.info.artifacts.size())));
  }
  record_event(const_cast<Job&>(job), Value(std::move(o)));
}

}  // namespace htnoc::server
