// TraceSink: a preallocated power-of-two ring buffer of Event records plus
// the per-category enable mask, and Tap, the value-type handle components
// hold. The hot-path contract: with HTNOC_TRACE compiled out, Tap::on() is
// constant-false and every emit site folds away; compiled in but disabled,
// it is one branch on a cached pointer + one mask test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/expect.hpp"
#include "trace/events.hpp"

namespace htnoc::verify {
struct StateCodec;  // snapshot/restore (src/verify/snapshot.cpp)
}

// Compile-time kill switch: build with -DHTNOC_TRACE=0 to remove every
// instrumentation branch from the binary.
#ifndef HTNOC_TRACE
#define HTNOC_TRACE 1
#endif

namespace htnoc::trace {

inline constexpr bool kCompiledIn = HTNOC_TRACE != 0;

struct TraceConfig {
  bool enabled = false;
  std::uint32_t categories = raw(Category::kAll);
  /// Ring capacity in records; rounded up to a power of two (>= 16). The
  /// default window holds 64Ki events (~2.5 MiB).
  std::size_t capacity = std::size_t{1} << 16;
};

/// The exportable artifact a sink produces: configuration + topology
/// metadata + the surviving chronological event window.
struct TraceLog {
  TraceConfig config;
  std::uint16_t num_routers = 0;
  std::uint8_t mesh_width = 0;
  std::uint8_t mesh_height = 0;
  std::uint8_t concentration = 0;
  std::uint8_t topology_kind = 0;  ///< htnoc::TopologyKind (0 = cmesh).
  std::uint64_t total_recorded = 0;  ///< Including overwritten records.
  std::vector<Event> events;         ///< Oldest first.

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return total_recorded - events.size();
  }
};

class TraceSink final {
 public:
  explicit TraceSink(const TraceConfig& cfg) : cfg_(cfg) {
    std::size_t cap = 16;
    while (cap < cfg.capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Is this category being captured? (The caller-side filter; record()
  /// itself is unconditional.)
  [[nodiscard]] bool wants(Category c) const noexcept {
    return (cfg_.categories & raw(c)) != 0;
  }

  void record(const Event& e) noexcept {
    if (stage_tls_ != nullptr) {
      // Parallel-step staging: this worker's events go to its shard buffer;
      // Network::step replays them into the ring in deterministic unit
      // order at the phase barrier. (push_back can allocate; an OOM here
      // terminates, which is the only honest option inside noexcept.)
      stage_tls_->push_back(e);
      return;
    }
    ring_[static_cast<std::size_t>(head_) & mask_] = e;
    ++head_;
  }

  /// Redirect this thread's record() calls into `stage` (nullptr restores
  /// direct ring writes). Thread-local, so concurrent shard workers stage
  /// independently; the main thread merges the buffers afterwards.
  static void set_thread_stage(std::vector<Event>* stage) noexcept {
    stage_tls_ = stage;
  }

  /// Recorded by Network::set_trace so exports are self-describing.
  void set_topology(std::uint16_t num_routers, std::uint8_t width,
                    std::uint8_t height, std::uint8_t concentration,
                    std::uint8_t topology_kind = 0) noexcept {
    num_routers_ = num_routers;
    mesh_width_ = width;
    mesh_height_ = height;
    concentration_ = concentration;
    topology_kind_ = topology_kind;
  }

  [[nodiscard]] std::uint64_t total_recorded() const noexcept { return head_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] const TraceConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint16_t num_routers() const noexcept {
    return num_routers_;
  }

  /// Snapshot the surviving window, oldest record first.
  [[nodiscard]] std::vector<Event> snapshot() const {
    std::vector<Event> out;
    const std::uint64_t n =
        head_ < ring_.size() ? head_ : static_cast<std::uint64_t>(ring_.size());
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = head_ - n; i < head_; ++i) {
      out.push_back(ring_[static_cast<std::size_t>(i) & mask_]);
    }
    return out;
  }

  [[nodiscard]] TraceLog log() const {
    TraceLog l;
    l.config = cfg_;
    l.num_routers = num_routers_;
    l.mesh_width = mesh_width_;
    l.mesh_height = mesh_height_;
    l.concentration = concentration_;
    l.topology_kind = topology_kind_;
    l.total_recorded = head_;
    l.events = snapshot();
    return l;
  }

 private:
  friend struct htnoc::verify::StateCodec;

  static inline thread_local std::vector<Event>* stage_tls_ = nullptr;

  TraceConfig cfg_;
  std::vector<Event> ring_;
  std::size_t mask_ = 0;
  std::uint64_t head_ = 0;  ///< Monotonic; ring index is head_ & mask_.
  std::uint16_t num_routers_ = 0;
  std::uint8_t mesh_width_ = 0;
  std::uint8_t mesh_height_ = 0;
  std::uint8_t concentration_ = 0;
  std::uint8_t topology_kind_ = 0;
};

/// The handle instrumented components store by value. Null (the default)
/// means tracing is off for that component; on() is the single branch the
/// hot paths pay.
class Tap {
 public:
  constexpr Tap() noexcept = default;
  explicit constexpr Tap(TraceSink* sink) noexcept : sink_(sink) {}

  [[nodiscard]] bool on(Category c) const noexcept {
    if constexpr (!kCompiledIn) {
      return false;
    } else {
      return sink_ != nullptr && sink_->wants(c);
    }
  }

  /// Only call after on(category_of(e.type)) returned true.
  void emit(const Event& e) const noexcept {
    if constexpr (kCompiledIn) {
      HTNOC_EXPECT(sink_ != nullptr);
      sink_->record(e);
    } else {
      (void)e;
    }
  }

  [[nodiscard]] TraceSink* sink() const noexcept { return sink_; }

 private:
  TraceSink* sink_ = nullptr;
};

}  // namespace htnoc::trace
