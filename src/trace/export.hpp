// Exporters for a captured TraceLog: a raw binary image (the byte-identity
// determinism contract), Chrome trace-event JSON loadable in Perfetto /
// chrome://tracing (one track per router, per link and per core), and a
// flat CSV for ad-hoc analysis.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/sink.hpp"

namespace htnoc::trace {

/// Raw binary image: fixed header + the Event records verbatim. Two logs
/// from identical runs serialize to identical bytes (the replay contract
/// test_trace_determinism enforces).
[[nodiscard]] std::string serialize_binary(const TraceLog& log);
void write_binary(std::ostream& os, const TraceLog& log);

/// Chrome trace-event JSON (the `{"traceEvents": [...]}` object form).
/// Routers, links and cores each get a process with one thread per unit;
/// block/unblock pairs become duration events, everything else instants.
[[nodiscard]] std::string to_chrome_json(const TraceLog& log);
void write_chrome_json(std::ostream& os, const TraceLog& log);

/// One row per event: cycle,type,category,scope,node,port,vc,packet,seq,
/// aux,arg.
void write_csv(std::ostream& os, const TraceLog& log);

}  // namespace htnoc::trace
