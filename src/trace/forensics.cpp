#include "trace/forensics.hpp"

#include <algorithm>
#include <ostream>
#include <set>
#include <sstream>

namespace htnoc::trace {
namespace {

// Display names matching the detector's LinkThreatClass and the noc layer's
// ObfMethod encodings (documented in docs/OBSERVABILITY.md). The trace
// layer sits below mitigation/, so the mapping is by convention.
const char* class_name(std::uint8_t c) {
  switch (c) {
    case 0: return "clean";
    case 1: return "transient";
    case 2: return "suspect";
    case 3: return "permanent";
    case 4: return "trojan";
    default: return "unknown";
  }
}

const char* method_name(std::uint64_t m) {
  switch (m) {
    case 0: return "none";
    case 1: return "invert";
    case 2: return "shuffle";
    case 3: return "scramble";
    case 4: return "reorder";
    default: return "unknown";
  }
}

std::string unit_name(const Event& e) {
  const char* kDirs = "NSEW";
  std::ostringstream os;
  switch (e.scope) {
    case Scope::kRouter:
      os << "router " << e.node;
      if (e.port >= 0) os << " port " << static_cast<int>(e.port);
      break;
    case Scope::kLink:
      if (e.port >= 0 && e.port < 4) {
        os << "link r" << e.node << "." << kDirs[e.port];
      } else if (e.port == kLinkPortInjection) {
        os << "link core" << e.node << ".inj";
      } else {
        os << "link core" << e.node << ".ej";
      }
      break;
    case Scope::kCore:
      os << "core " << e.node;
      break;
    case Scope::kNetwork:
      os << "network";
      break;
  }
  return os.str();
}

void milestone(ForensicReport& r, Cycle& slot, const Event& e,
               const std::string& text) {
  if (slot != ForensicReport::kNever) return;
  slot = e.cycle;
  r.ladder.push_back({e.cycle, text});
}

}  // namespace

ForensicReport analyze(const TraceLog& log) {
  ForensicReport r;
  r.num_routers = log.num_routers;

  std::set<std::uint16_t> ever_blocked;
  std::set<std::uint16_t> blocked_now;
  std::set<std::uint16_t> cores_blocked_now;
  std::vector<ForensicReport::WavefrontEntry> wavefront;

  const std::size_t half =
      r.num_routers > 0 ? (r.num_routers + 1) / 2 : ~std::size_t{0};
  // The paper's claim: back-pressure reaches >= 68% of routers (11 of 16
  // in the 4x4 CMesh) within ~50-100 cycles of the sustained trigger.
  const std::size_t majority68 =
      r.num_routers > 0
          ? (static_cast<std::size_t>(r.num_routers) * 68 + 99) / 100
          : ~std::size_t{0};

  // The wavefront measures the *attack's* spread, so it starts at the first
  // trigger; momentary congestion blocks during warm-up don't count. With
  // no trigger in the window the whole window is the measurement.
  Cycle trigger_cycle = ForensicReport::kNever;
  for (const Event& e : log.events) {
    if (e.type == EventType::kTrojanTriggered) {
      trigger_cycle = e.cycle;  // events are chronological
      break;
    }
  }

  const auto add_to_wavefront = [&](std::uint16_t node, Cycle cycle) {
    if (!ever_blocked.insert(node).second) return;
    wavefront.push_back({node, cycle});
    if (ever_blocked.size() == half) r.cycle_half_blocked = cycle;
    if (ever_blocked.size() == majority68) {
      r.cycle_majority68_blocked = cycle;
    }
  };

  for (const Event& e : log.events) {
    switch (e.type) {
      case EventType::kTrojanTriggered:
        ++r.trojan_injections;
        if (r.first_trigger == ForensicReport::kNever) {
          // Routers already wedged when the attack began are part of the
          // saturated set from t0 onward.
          for (const std::uint16_t node : blocked_now) {
            add_to_wavefront(node, e.cycle);
          }
        }
        milestone(r, r.first_trigger, e,
                  "first trojan trigger on " + unit_name(e) + " (packet " +
                      std::to_string(e.packet) + " seq " +
                      std::to_string(e.seq) + ")");
        break;
      case EventType::kLinkFaultInjected:
        milestone(r, r.first_fault_injected, e,
                  "first corrupted codeword crossed " + unit_name(e));
        break;
      case EventType::kEccUncorrectable:
        ++r.uncorrectable_flits;
        milestone(r, r.first_uncorrectable, e,
                  "first uncorrectable ECC word at " + unit_name(e));
        break;
      case EventType::kNackSent:
        ++r.nacks;
        milestone(r, r.first_nack, e, "first NACK sent from " + unit_name(e));
        break;
      case EventType::kRetransmission:
        ++r.retransmissions;
        break;
      case EventType::kDetectorEscalation:
        milestone(r, r.first_escalation, e,
                  "detector advised obfuscation escalation at " +
                      unit_name(e) + " (fault count " +
                      std::to_string(e.aux) + ")");
        break;
      case EventType::kLObMethodApplied:
        milestone(r, r.first_lob_applied, e,
                  std::string("L-Ob applied method '") + method_name(e.arg) +
                      "' at " + unit_name(e));
        break;
      case EventType::kLObMethodSuccess:
        milestone(r, r.first_lob_success, e,
                  std::string("L-Ob method '") + method_name(e.arg) +
                      "' succeeded (ACK) at " + unit_name(e));
        break;
      case EventType::kBistDispatched:
        milestone(r, r.first_bist_dispatch, e,
                  "BIST dispatched at " + unit_name(e));
        break;
      case EventType::kBistCompleted:
        milestone(r, r.first_bist_complete, e,
                  std::string("BIST completed at ") + unit_name(e) +
                      (e.aux ? " (permanent fault found)" : " (link clean)"));
        break;
      case EventType::kDetectorClassified:
        r.final_class = e.aux;
        if (e.aux >= 3) {  // permanent / trojan verdicts end the ladder
          milestone(r, r.first_classification, e,
                    std::string("detector classified ") + unit_name(e) +
                        " as " + class_name(e.aux));
        } else {
          r.ladder.push_back({e.cycle, std::string("detector reclassified ") +
                                           unit_name(e) + " as " +
                                           class_name(e.aux)});
        }
        break;
      case EventType::kLinkDisabled:
        milestone(r, r.first_link_disabled, e,
                  "reroute policy disabled " + unit_name(e));
        break;
      case EventType::kRoutingReconfigured:
        milestone(r, r.first_reconfiguration, e,
                  "routing reconfigured (up*/down*), " +
                      std::to_string(e.arg) + " links disabled");
        break;
      case EventType::kPacketPurged:
        ++r.packets_purged;
        r.flits_purged += e.arg;
        break;
      case EventType::kRouterBlocked:
        blocked_now.insert(e.node);
        if (trigger_cycle == ForensicReport::kNever ||
            e.cycle >= trigger_cycle) {
          add_to_wavefront(e.node, e.cycle);
        }
        break;
      case EventType::kRouterUnblocked:
        blocked_now.erase(e.node);
        break;
      case EventType::kInjectionBlocked:
        cores_blocked_now.insert(e.node);
        break;
      case EventType::kInjectionUnblocked:
        cores_blocked_now.erase(e.node);
        break;
      default:
        break;
    }
  }

  std::sort(wavefront.begin(), wavefront.end(),
            [](const auto& a, const auto& b) {
              return a.first_blocked != b.first_blocked
                         ? a.first_blocked < b.first_blocked
                         : a.router < b.router;
            });
  r.wavefront = std::move(wavefront);
  r.routers_ever_blocked = ever_blocked.size();
  r.routers_blocked_at_end = blocked_now.size();
  r.cores_blocked_at_end = cores_blocked_now.size();
  std::sort(r.ladder.begin(), r.ladder.end(),
            [](const auto& a, const auto& b) { return a.cycle < b.cycle; });
  return r;
}

void print_timeline(std::ostream& os, const TraceLog& log,
                    const ForensicReport& r) {
  constexpr Cycle kNever = ForensicReport::kNever;
  os << "=== attack forensics timeline ===\n";
  os << "window: " << log.events.size() << " events captured ("
     << log.total_recorded << " recorded, " << log.dropped()
     << " dropped by ring)";
  if (!log.events.empty()) {
    os << ", cycles " << log.events.front().cycle << ".."
       << log.events.back().cycle;
  }
  os << "\n";
  os << "volume: " << r.trojan_injections << " trojan injections, "
     << r.uncorrectable_flits << " uncorrectable flits, " << r.nacks
     << " NACKs, " << r.retransmissions << " retransmissions, "
     << r.packets_purged << " packets purged (" << r.flits_purged
     << " flits)\n\n";

  os << "--- escalation ladder ---\n";
  if (r.ladder.empty()) os << "(no milestones in window)\n";
  for (const auto& m : r.ladder) {
    os << "cycle " << m.cycle;
    if (r.first_trigger != kNever && m.cycle >= r.first_trigger) {
      os << " (+" << m.cycle - r.first_trigger << ")";
    }
    os << ": " << m.text << "\n";
  }

  os << "\n--- saturation wavefront ---\n";
  if (r.wavefront.empty()) {
    os << "(no router ever blocked)\n";
  } else {
    os << "router  first_blocked";
    if (r.first_trigger != kNever) os << "  after_trigger";
    os << "  cumulative\n";
    std::size_t n = 0;
    for (const auto& w : r.wavefront) {
      ++n;
      os << "r" << w.router << (w.router < 10 ? " " : "") << "      "
         << w.first_blocked;
      if (r.first_trigger != kNever) {
        if (w.first_blocked >= r.first_trigger) {
          os << "  +" << w.first_blocked - r.first_trigger;
        } else {
          os << "  (pre-trigger)";
        }
      }
      os << "  " << n << "/" << r.num_routers << "\n";
    }
  }

  os << "\nsummary: " << r.routers_ever_blocked << "/" << r.num_routers
     << " routers ever blocked, " << r.routers_blocked_at_end
     << " still blocked at end of window, " << r.cores_blocked_at_end
     << " cores refusing injections\n";
  if (r.cycle_majority68_blocked != kNever) {
    os << ">=68% of routers first blocked by cycle "
       << r.cycle_majority68_blocked;
    const Cycle d = r.trigger_to_majority68();
    if (d != kNever) {
      os << " — " << d << " cycles after the first trigger (paper claims"
         << " ~50-100)";
    }
    os << "\n";
  } else {
    os << ">=68% wavefront mark not reached in this window\n";
  }
}

}  // namespace htnoc::trace
