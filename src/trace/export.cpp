#include "trace/export.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <utility>

namespace htnoc::trace {
namespace {

constexpr char kMagic[8] = {'H', 'T', 'N', 'O', 'C', 'T', 'R', 'C'};
constexpr std::uint32_t kBinaryVersion = 1;

template <typename T>
void append_raw(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

// Process ids of the Chrome-trace track groups, one per Scope.
constexpr int kPidNetwork = 0;
constexpr int kPidRouters = 1;
constexpr int kPidLinks = 2;
constexpr int kPidCores = 3;

struct Track {
  int pid = kPidNetwork;
  int tid = 0;
};

Track track_of(const Event& e) {
  switch (e.scope) {
    case Scope::kRouter:
      return {kPidRouters, static_cast<int>(e.node)};
    case Scope::kLink:
      return {kPidLinks,
              static_cast<int>(e.node) * 8 + std::max<int>(0, e.port)};
    case Scope::kCore:
      return {kPidCores, static_cast<int>(e.node)};
    case Scope::kNetwork:
      break;
  }
  return {kPidNetwork, 0};
}

std::string track_name(const Event& e) {
  const char* kDirs = "NSEW";
  std::ostringstream os;
  switch (e.scope) {
    case Scope::kRouter:
      os << "router " << e.node;
      break;
    case Scope::kLink:
      if (e.port >= 0 && e.port < 4) {
        os << "link r" << e.node << "." << kDirs[e.port];
      } else if (e.port == kLinkPortInjection) {
        os << "link core" << e.node << ".inj";
      } else if (e.port == kLinkPortEjection) {
        os << "link core" << e.node << ".ej";
      } else {
        os << "link r" << e.node << ".?";
      }
      break;
    case Scope::kCore:
      os << "core " << e.node;
      break;
    case Scope::kNetwork:
      os << "network";
      break;
  }
  return os.str();
}

void emit_args(std::ostream& os, const Event& e) {
  os << "{\"packet\":" << e.packet << ",\"seq\":" << e.seq
     << ",\"vc\":" << static_cast<int>(e.vc)
     << ",\"port\":" << static_cast<int>(e.port)
     << ",\"aux\":" << static_cast<int>(e.aux) << ",\"arg\":" << e.arg << "}";
}

}  // namespace

std::string serialize_binary(const TraceLog& log) {
  std::string out;
  out.reserve(48 + log.events.size() * sizeof(Event));
  out.append(kMagic, sizeof(kMagic));
  append_raw(out, kBinaryVersion);
  append_raw(out, log.config.categories);
  append_raw(out, static_cast<std::uint64_t>(log.config.capacity));
  append_raw(out, log.total_recorded);
  append_raw(out, static_cast<std::uint64_t>(log.events.size()));
  append_raw(out, log.num_routers);
  append_raw(out, log.mesh_width);
  append_raw(out, log.mesh_height);
  append_raw(out, log.concentration);
  // Former padding byte; 0 remains the concentrated-mesh default, so
  // pre-topology traces parse identically.
  append_raw(out, log.topology_kind);
  append_raw(out, std::uint8_t{0});
  append_raw(out, std::uint8_t{0});
  for (const Event& e : log.events) append_raw(out, e);
  return out;
}

void write_binary(std::ostream& os, const TraceLog& log) {
  const std::string bytes = serialize_binary(log);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void write_chrome_json(std::ostream& os, const TraceLog& log) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Metadata: name every process and every thread actually used, in
  // deterministic (pid, tid) order.
  const std::map<int, const char*> process_names = {
      {kPidNetwork, "network"},
      {kPidRouters, "routers"},
      {kPidLinks, "links"},
      {kPidCores, "cores"}};
  std::map<std::pair<int, int>, std::string> threads;
  for (const Event& e : log.events) {
    const Track t = track_of(e);
    threads.emplace(std::make_pair(t.pid, t.tid), track_name(e));
  }
  std::set<int> pids;
  for (const auto& [key, name] : threads) pids.insert(key.first);
  for (const int pid : pids) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << process_names.at(pid)
       << "\"}}";
  }
  for (const auto& [key, name] : threads) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
       << ",\"tid\":" << key.second << ",\"args\":{\"name\":\"" << name
       << "\"}}";
  }

  // Block/unblock pairs become duration (B/E) events so saturation shows
  // as solid spans per track; everything else is an instant. An unblock
  // whose begin fell off the ring window degrades to an instant.
  std::map<std::pair<int, int>, Cycle> open_spans;
  Cycle last_cycle = 0;
  for (const Event& e : log.events) {
    const Track t = track_of(e);
    const std::pair<int, int> key{t.pid, t.tid};
    last_cycle = std::max(last_cycle, e.cycle);
    const bool is_block = e.type == EventType::kRouterBlocked ||
                          e.type == EventType::kInjectionBlocked;
    const bool is_unblock = e.type == EventType::kRouterUnblocked ||
                            e.type == EventType::kInjectionUnblocked;
    if (is_block && open_spans.find(key) == open_spans.end()) {
      open_spans.emplace(key, e.cycle);
      sep();
      os << "{\"name\":\"blocked\",\"ph\":\"B\",\"ts\":" << e.cycle
         << ",\"pid\":" << t.pid << ",\"tid\":" << t.tid << ",\"args\":";
      emit_args(os, e);
      os << "}";
      continue;
    }
    if (is_unblock && open_spans.erase(key) > 0) {
      sep();
      os << "{\"name\":\"blocked\",\"ph\":\"E\",\"ts\":" << e.cycle
         << ",\"pid\":" << t.pid << ",\"tid\":" << t.tid << "}";
      continue;
    }
    sep();
    os << "{\"name\":\"" << to_string(e.type)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.cycle
       << ",\"pid\":" << t.pid << ",\"tid\":" << t.tid << ",\"args\":";
    emit_args(os, e);
    os << "}";
  }
  // Close spans still open at the end of the window so viewers nest them.
  for (const auto& [key, begin] : open_spans) {
    sep();
    os << "{\"name\":\"blocked\",\"ph\":\"E\",\"ts\":" << last_cycle + 1
       << ",\"pid\":" << key.first << ",\"tid\":" << key.second << "}";
  }
  os << "\n]}\n";
}

std::string to_chrome_json(const TraceLog& log) {
  std::ostringstream os;
  write_chrome_json(os, log);
  return os.str();
}

void write_csv(std::ostream& os, const TraceLog& log) {
  os << "cycle,type,category,scope,node,port,vc,packet,seq,aux,arg\n";
  for (const Event& e : log.events) {
    os << e.cycle << "," << to_string(e.type) << ","
       << to_string(category_of(e.type)) << "," << to_string(e.scope) << ","
       << e.node << "," << static_cast<int>(e.port) << ","
       << static_cast<int>(e.vc) << "," << e.packet << "," << e.seq << ","
       << static_cast<int>(e.aux) << "," << e.arg << "\n";
  }
}

}  // namespace htnoc::trace
