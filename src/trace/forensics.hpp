// Attack forensics: reconstructs the paper's Fig. 11 DoS cascade from a
// TraceLog — first trojan trigger, first uncorrectable NACK, the detector /
// L-Ob escalation ladder, and the saturation wavefront (the cycle each
// router first reported a blocked port), including the "≥68% of routers
// blocked within ~50–100 cycles" check.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/sink.hpp"

namespace htnoc::trace {

struct ForensicReport {
  static constexpr Cycle kNever = ~Cycle{0};

  // First-occurrence milestones (kNever when not observed in the window).
  Cycle first_trigger = kNever;
  Cycle first_fault_injected = kNever;
  Cycle first_uncorrectable = kNever;
  Cycle first_nack = kNever;
  Cycle first_escalation = kNever;
  Cycle first_lob_applied = kNever;
  Cycle first_lob_success = kNever;
  Cycle first_bist_dispatch = kNever;
  Cycle first_bist_complete = kNever;
  Cycle first_classification = kNever;  ///< First trojan/permanent verdict.
  std::uint8_t final_class = 0;         ///< Detector class code at the end.
  Cycle first_link_disabled = kNever;
  Cycle first_reconfiguration = kNever;

  // Volume counters over the captured window.
  std::uint64_t trojan_injections = 0;
  std::uint64_t uncorrectable_flits = 0;
  std::uint64_t nacks = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t packets_purged = 0;
  std::uint64_t flits_purged = 0;

  /// The saturation wavefront: the cycle each router *first* reported a
  /// blocked port at or after the first trojan trigger (the whole window
  /// when no trigger was captured), sorted by cycle then router id.
  /// Momentary pre-attack congestion blocks are excluded — the wavefront
  /// measures the attack's spread, not warm-up noise.
  struct WavefrontEntry {
    std::uint16_t router = 0;
    Cycle first_blocked = kNever;
  };
  std::vector<WavefrontEntry> wavefront;
  std::uint16_t num_routers = 0;
  std::size_t routers_ever_blocked = 0;
  std::size_t routers_blocked_at_end = 0;  ///< Open blocked spans.
  std::size_t cores_blocked_at_end = 0;    ///< NIs still refusing work.
  /// Cycle the cumulative wavefront reached >= 50% / >= 68% of routers.
  Cycle cycle_half_blocked = kNever;
  Cycle cycle_majority68_blocked = kNever;

  /// Chronological narrative of first-occurrence milestones.
  struct Milestone {
    Cycle cycle = 0;
    std::string text;
  };
  std::vector<Milestone> ladder;

  /// Cycles from first trigger to the 68% wavefront mark (kNever if either
  /// milestone is missing) — the paper's Fig. 11 claim.
  [[nodiscard]] Cycle trigger_to_majority68() const noexcept {
    if (first_trigger == kNever || cycle_majority68_blocked == kNever) {
      return kNever;
    }
    return cycle_majority68_blocked - first_trigger;
  }
};

[[nodiscard]] ForensicReport analyze(const TraceLog& log);

/// Human-readable timeline: milestones, the wavefront table and the
/// saturation summary.
void print_timeline(std::ostream& os, const TraceLog& log,
                    const ForensicReport& report);

}  // namespace htnoc::trace
