#include "trace/events.hpp"

#include <stdexcept>
#include <vector>

namespace htnoc::trace {

const char* to_string(EventType t) noexcept {
  switch (t) {
    case EventType::kLinkTraversal: return "link_traversal";
    case EventType::kLinkFaultInjected: return "link_fault_injected";
    case EventType::kEccCorrected: return "ecc_corrected";
    case EventType::kEccUncorrectable: return "ecc_uncorrectable";
    case EventType::kNackSent: return "nack_sent";
    case EventType::kRetransmission: return "retransmission";
    case EventType::kTrojanTriggered: return "trojan_triggered";
    case EventType::kTrojanPayloadAdvance: return "trojan_payload_advance";
    case EventType::kDetectorEscalation: return "detector_escalation";
    case EventType::kDetectorClassified: return "detector_classified";
    case EventType::kBistDispatched: return "bist_dispatched";
    case EventType::kBistCompleted: return "bist_completed";
    case EventType::kLObMethodApplied: return "lob_method_applied";
    case EventType::kLObMethodSuccess: return "lob_method_success";
    case EventType::kLObExhausted: return "lob_exhausted";
    case EventType::kLinkDisabled: return "link_disabled";
    case EventType::kRerouteRefused: return "reroute_refused";
    case EventType::kRoutingReconfigured: return "routing_reconfigured";
    case EventType::kPacketPurged: return "packet_purged";
    case EventType::kInjectionBlocked: return "injection_blocked";
    case EventType::kInjectionUnblocked: return "injection_unblocked";
    case EventType::kRouterBlocked: return "router_blocked";
    case EventType::kRouterUnblocked: return "router_unblocked";
    case EventType::kCount_: break;
  }
  return "unknown";
}

const char* to_string(Category c) noexcept {
  switch (c) {
    case Category::kLink: return "link";
    case Category::kEcc: return "ecc";
    case Category::kRetransmission: return "retransmission";
    case Category::kTrojan: return "trojan";
    case Category::kDetector: return "detector";
    case Category::kLOb: return "lob";
    case Category::kBist: return "bist";
    case Category::kReroute: return "reroute";
    case Category::kPurge: return "purge";
    case Category::kInjection: return "injection";
    case Category::kSaturation: return "saturation";
    case Category::kAll: return "all";
    case Category::kNone: return "none";
  }
  return "unknown";
}

const char* to_string(Scope s) noexcept {
  switch (s) {
    case Scope::kNetwork: return "network";
    case Scope::kRouter: return "router";
    case Scope::kLink: return "link";
    case Scope::kCore: return "core";
  }
  return "unknown";
}

std::uint32_t parse_categories(const std::string& csv) {
  static const std::vector<Category> kBits = {
      Category::kLink,     Category::kEcc,   Category::kRetransmission,
      Category::kTrojan,   Category::kDetector, Category::kLOb,
      Category::kBist,     Category::kReroute,  Category::kPurge,
      Category::kInjection, Category::kSaturation};
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string name = csv.substr(pos, comma - pos);
    pos = comma + 1;
    if (name.empty()) continue;
    if (name == "all") {
      mask |= raw(Category::kAll);
      continue;
    }
    bool found = false;
    for (const Category c : kBits) {
      if (name == to_string(c)) {
        mask |= raw(c);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument("unknown trace category: " + name);
    }
  }
  return mask;
}

}  // namespace htnoc::trace
