// Event taxonomy for the cycle-accurate tracing subsystem: fixed-size POD
// records, a category bitmask for selective capture, and the mapping from
// event type to category. Everything here depends only on common/ so the
// trace layer sits below noc/ in the library graph.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>

#include "common/types.hpp"

namespace htnoc::trace {

/// What happened. Each type belongs to exactly one Category (category_of).
enum class EventType : std::uint8_t {
  // -- link layer --
  kLinkTraversal = 0,    ///< A phit started crossing a link.
  kLinkFaultInjected,    ///< An attached injector mutated the codeword.
  // -- ECC / retransmission protocol --
  kEccCorrected,         ///< Receiver corrected a single-bit error.
  kEccUncorrectable,     ///< Receiver saw a detectable-but-uncorrectable word.
  kNackSent,             ///< NACK issued (aux carries the detector advice).
  kRetransmission,       ///< Sender re-sent a previously NACKed flit.
  // -- trojan --
  kTrojanTriggered,      ///< Comparator matched and the payload fired.
  kTrojanPayloadAdvance, ///< Payload FSM moved to its next state.
  // -- detector / BIST --
  kDetectorEscalation,   ///< Detector advised obfuscation escalation.
  kDetectorClassified,   ///< Port threat class changed (aux = new class).
  kBistDispatched,       ///< BIST scan scheduled (arg = completion cycle).
  kBistCompleted,        ///< BIST scan finished (aux = permanent fault found).
  // -- L-Ob obfuscation --
  kLObMethodApplied,     ///< An obfuscation method protected a transmission.
  kLObMethodSuccess,     ///< An obfuscated transmission was ACKed.
  kLObExhausted,         ///< The method sequence wrapped without success.
  // -- reroute / purge --
  kLinkDisabled,         ///< Reroute policy disabled a link.
  kRerouteRefused,       ///< Disabling would disconnect the mesh; refused.
  kRoutingReconfigured,  ///< up*/down* tables recomputed.
  kPacketPurged,         ///< A packet's flits were purged (arg = flit count).
  // -- saturation observability --
  kInjectionBlocked,     ///< An NI source queue filled ("core full").
  kInjectionUnblocked,   ///< The queue accepted work again.
  kRouterBlocked,        ///< A router first reports a blocked port.
  kRouterUnblocked,      ///< The router's ports all recovered.
  kCount_,               ///< Sentinel; not a real event.
};

inline constexpr int kNumEventTypes = static_cast<int>(EventType::kCount_);

/// Capture-filter bitmask. A TraceSink records an event only when the
/// event's category bit is enabled.
enum class Category : std::uint32_t {
  kNone = 0,
  kLink = 1u << 0,
  kEcc = 1u << 1,
  kRetransmission = 1u << 2,
  kTrojan = 1u << 3,
  kDetector = 1u << 4,
  kLOb = 1u << 5,
  kBist = 1u << 6,
  kReroute = 1u << 7,
  kPurge = 1u << 8,
  kInjection = 1u << 9,
  kSaturation = 1u << 10,
  kAll = (1u << 11) - 1,
};

[[nodiscard]] constexpr std::uint32_t raw(Category c) noexcept {
  return static_cast<std::uint32_t>(c);
}

[[nodiscard]] constexpr Category category_of(EventType t) noexcept {
  switch (t) {
    case EventType::kLinkTraversal:
    case EventType::kLinkFaultInjected:
      return Category::kLink;
    case EventType::kEccCorrected:
    case EventType::kEccUncorrectable:
    case EventType::kNackSent:
      return Category::kEcc;
    case EventType::kRetransmission:
      return Category::kRetransmission;
    case EventType::kTrojanTriggered:
    case EventType::kTrojanPayloadAdvance:
      return Category::kTrojan;
    case EventType::kDetectorEscalation:
    case EventType::kDetectorClassified:
      return Category::kDetector;
    case EventType::kBistDispatched:
    case EventType::kBistCompleted:
      return Category::kBist;
    case EventType::kLObMethodApplied:
    case EventType::kLObMethodSuccess:
    case EventType::kLObExhausted:
      return Category::kLOb;
    case EventType::kLinkDisabled:
    case EventType::kRerouteRefused:
    case EventType::kRoutingReconfigured:
      return Category::kReroute;
    case EventType::kPacketPurged:
      return Category::kPurge;
    case EventType::kInjectionBlocked:
    case EventType::kInjectionUnblocked:
      return Category::kInjection;
    case EventType::kRouterBlocked:
    case EventType::kRouterUnblocked:
      return Category::kSaturation;
    case EventType::kCount_:
      return Category::kNone;
  }
  return Category::kNone;
}

/// Where the event happened — selects the track an exporter files it under.
enum class Scope : std::uint8_t {
  kNetwork = 0,  ///< Global (reconfiguration, purge). node unused.
  kRouter,       ///< node = router id, port = router port (or -1).
  kLink,         ///< node = source router/core, port = direction code.
  kCore,         ///< node = core id (NI-side events).
};

/// Port codes used with Scope::kLink: 0..3 are mesh directions (N/S/E/W,
/// matching Direction), 4 is the injection link (core -> router) and 5 the
/// ejection link (router -> core).
inline constexpr std::int8_t kLinkPortInjection = 4;
inline constexpr std::int8_t kLinkPortEjection = 5;

/// One trace record. Exactly 40 bytes with every byte explicitly covered —
/// no implicit padding — so raw serialization is deterministic. The meaning
/// of arg/aux/vc is per-EventType (see docs/OBSERVABILITY.md).
struct Event {
  Cycle cycle = 0;
  PacketId packet = 0;
  std::uint64_t arg = 0;       ///< Type-specific payload (wire word, count..).
  std::uint32_t seq = 0;       ///< Flit sequence number within the packet.
  std::uint16_t node = 0;      ///< Router/core id per Scope.
  EventType type = EventType::kLinkTraversal;
  Scope scope = Scope::kNetwork;
  std::int8_t port = -1;       ///< Port / direction code; -1 when unused.
  std::uint8_t vc = 0;
  std::uint8_t aux = 0;        ///< Type-specific small payload.
  std::uint8_t flags = 0;
  std::uint32_t reserved = 0;  ///< Keeps sizeof == 40 without padding bytes.
};

static_assert(sizeof(Event) == 40, "Event must stay a fixed 40-byte record");
static_assert(std::is_trivially_copyable_v<Event>,
              "Event must be memcpy-safe for binary serialization");

/// Convenience constructor for the common fields; callers fill the rest.
[[nodiscard]] inline Event make_event(EventType t, Cycle cycle, Scope scope,
                                      std::uint16_t node,
                                      std::int8_t port = -1) noexcept {
  Event e;
  e.type = t;
  e.cycle = cycle;
  e.scope = scope;
  e.node = node;
  e.port = port;
  return e;
}

[[nodiscard]] const char* to_string(EventType t) noexcept;
[[nodiscard]] const char* to_string(Category c) noexcept;  ///< Single bit only.
[[nodiscard]] const char* to_string(Scope s) noexcept;

/// Parse a comma-separated category list ("trojan,ecc,saturation" or "all")
/// into a bitmask. Throws std::invalid_argument on unknown names.
[[nodiscard]] std::uint32_t parse_categories(const std::string& csv);

}  // namespace htnoc::trace
