// TASP — the target-activated sequential-payload hardware trojan (paper
// Sec. III, Fig. 3). Implanted on a link, it consists of
//   (i)  a target block: comparators over a tunable slice of the wire image
//        (source, destination, VC, memory address, or combinations),
//   (ii) a Y-bit payload counter FSM that walks the fault locations between
//        injections so repeated faults masquerade as transients, and
//   (iii) an XOR tree that flips exactly two wires per injection — enough
//        for SECDED to *detect* but never *correct*, forcing endless
//        retransmission (the DoS mechanism).
//
// Enabling requires both the externally driven kill switch AND a target
// sighting; until then the FSM holds its state and the trojan is electri-
// cally quiet (only leakage is observable, Sec. V-A).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/expect.hpp"
#include "ecc/codec.hpp"
#include "noc/fault_model.hpp"
#include "noc/wire.hpp"
#include "trace/sink.hpp"

namespace htnoc::verify {
struct StateCodec;  // snapshot/restore (src/verify/snapshot.cpp)
}

namespace htnoc::trojan {

/// Which packet characteristics the target comparator is tuned to
/// (Table I / Fig. 9 evaluate the area/power of each variant).
enum class TargetKind : std::uint8_t {
  kFull,     ///< All 42 DPI bits: src+dest+vc+mem.
  kDest,     ///< Destination router (4 bits).
  kSrc,      ///< Source router (4 bits).
  kDestSrc,  ///< Destination and source (8 bits).
  kMem,      ///< Memory address (32 bits).
  kVc,       ///< Virtual channel id (2 bits).
  kThread,   ///< Originating thread/process id (6 bits) — the remaining
             ///< comparator option the paper lists (Sec. III-B).
};

[[nodiscard]] std::string to_string(TargetKind k);
/// Comparator bit-width of each variant (paper: src 4, dest 4, VC 2,
/// dest_src 8, mem 32, full 42).
[[nodiscard]] unsigned target_width(TargetKind k);

/// The fault signature the payload injects per trigger.
enum class PayloadPattern : std::uint8_t {
  kDoubleDetectable,  ///< 2-bit flips: detected, uncorrectable -> DoS (TASP).
  kSingleCorrectable, ///< 1-bit flips: absorbed by ECC (prior-work SDC HTs).
  kTripleSdc,         ///< 3-bit flips: may alias to a bogus "correction" (SDC).
};

struct TaspParams {
  TargetKind kind = TargetKind::kDest;
  /// Field values the comparator is tuned to; only those selected by `kind`
  /// participate in the match.
  RouterId target_src = 0;
  RouterId target_dest = 0;
  VcId target_vc = 0;
  std::uint8_t target_thread = 0;
  std::uint32_t target_mem = 0;
  /// Mask applied to the memory-address comparator (1 = compare). Allows
  /// range targeting, e.g. a whole page.
  std::uint32_t mem_mask = 0xFFFFFFFFu;

  /// The link code the attacker designed against ("we assume the attacker
  /// has knowledge of the ECC between links", Sec. III-B). Determines how
  /// the comparator taps the wires.
  EccScheme ecc = EccScheme::kSecded;

  int payload_states = 8;  ///< Y: size of the payload counter FSM.
  /// Minimum cycles between injections. 1 = strike every sighting (the
  /// paper's TASP; its observed ~10-cycle cadence is the retransmission
  /// round-trip, not a designed cooldown). Larger values model a stealthier
  /// duty-cycled variant (ablation).
  Cycle min_gap = 1;
  bool only_head_flits = true;  ///< DPI keys on header flits.
  PayloadPattern pattern = PayloadPattern::kDoubleDetectable;
};

class Tasp final : public LinkFaultInjector {
 public:
  enum class State : std::uint8_t { kIdle, kActive, kAttacking };

  struct Stats {
    std::uint64_t flits_inspected = 0;
    std::uint64_t target_sightings = 0;
    std::uint64_t injections = 0;
  };

  explicit Tasp(TaspParams params);

  /// The externally driven backdoor kill switch. Off = dormant (idle), and
  /// logic testing cannot accidentally reveal the trojan.
  void set_kill_switch(bool on) noexcept { killsw_ = on; }
  [[nodiscard]] bool kill_switch() const noexcept { return killsw_; }

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] int payload_state() const noexcept { return payload_state_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const TaspParams& params() const noexcept { return params_; }

  /// Install the trace tap plus the implant site's link identity (source
  /// router + direction code) so trigger/FSM events land on that track.
  void set_trace(trace::Tap tap, std::uint16_t node, std::int8_t port) {
    tap_ = tap;
    trace_node_ = node;
    trace_port_ = port;
  }

  /// True when the wire word matches the tuned target (the comparator
  /// output, exposed for tests and the detection-probability benches).
  [[nodiscard]] bool matches(std::uint64_t wire_word) const noexcept;

  /// The two (or one/three, per pattern) codeword wire positions the XOR
  /// tree would flip in the given payload state. Exposed for tests.
  [[nodiscard]] std::vector<unsigned> payload_wires(int state) const;

  // --- LinkFaultInjector ---
  void on_traverse(Cycle now, LinkPhit& phit) override;
  /// A dormant or untargeted trojan never answers BIST probes.
  void probe(Codeword72& cw) const override { (void)cw; }
  [[nodiscard]] std::string name() const override { return "tasp"; }

 private:
  friend struct htnoc::verify::StateCodec;

  [[nodiscard]] int flips_per_injection() const noexcept {
    switch (params_.pattern) {
      case PayloadPattern::kSingleCorrectable: return 1;
      case PayloadPattern::kTripleSdc: return 3;
      case PayloadPattern::kDoubleDetectable:
      default: return 2;
    }
  }

  TaspParams params_;
  bool killsw_ = false;
  State state_ = State::kIdle;
  int payload_state_ = 0;
  Cycle last_injection_ = 0;
  bool injected_once_ = false;
  std::vector<unsigned> tap_wires_;  ///< Wires the XOR tree can reach.
  trace::Tap tap_;
  std::uint16_t trace_node_ = 0;
  std::int8_t trace_port_ = -1;
  Stats stats_;
};

}  // namespace htnoc::trojan
