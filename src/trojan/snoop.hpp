// A snooping (data-theft) link trojan in the mold the paper's related work
// analyzes (Fort-NoCs / DAC'14 [19]): instead of corrupting traffic, it
// covertly copies the wire images of matching flits for later
// exfiltration. It shares TASP's target comparator and kill switch but has
// no payload — electrically it is even quieter than TASP.
//
// The paper's e2e-obfuscation discussion is really about this attacker:
// scrambled payloads defeat a mem/data-keyed snoop, while routing fields
// (src/dest/vc) can never be hidden from an in-network observer.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "noc/fault_model.hpp"
#include "trojan/tasp.hpp"

namespace htnoc::trojan {

class SnoopingTrojan final : public LinkFaultInjector {
 public:
  struct Stats {
    std::uint64_t flits_inspected = 0;
    std::uint64_t flits_captured = 0;
  };

  /// `exfil_capacity`: how many captured words the trojan can stage before
  /// old captures are overwritten (its covert buffer is tiny by design).
  explicit SnoopingTrojan(TaspParams params, std::size_t exfil_capacity = 16)
      : comparator_(std::move(params)), capacity_(exfil_capacity) {
    HTNOC_EXPECT(exfil_capacity >= 1);
  }

  void set_kill_switch(bool on) noexcept { comparator_.set_kill_switch(on); }
  [[nodiscard]] bool kill_switch() const noexcept {
    return comparator_.kill_switch();
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// The staged stolen words, oldest first.
  [[nodiscard]] const std::deque<std::uint64_t>& captured() const noexcept {
    return captured_;
  }

  // --- LinkFaultInjector ---
  void on_traverse(Cycle now, LinkPhit& phit) override {
    (void)now;
    if (!comparator_.kill_switch()) return;
    ++stats_.flits_inspected;
    const std::uint64_t w =
        ecc::codec_for(comparator_.params().ecc).extract_data(phit.codeword);
    if (!comparator_.matches(w)) return;
    ++stats_.flits_captured;
    captured_.push_back(w);
    if (captured_.size() > capacity_) captured_.pop_front();
    // Purely passive: the codeword is never touched, so ECC sees nothing.
  }
  void probe(Codeword72&) const override {}
  [[nodiscard]] std::string name() const override { return "snoop"; }

 private:
  // Reuse TASP's comparator/kill-switch machinery without its payload; the
  // Tasp member is never given fault opportunities (we don't call its
  // on_traverse).
  Tasp comparator_;
  std::size_t capacity_;
  std::deque<std::uint64_t> captured_;
  Stats stats_;
};

}  // namespace htnoc::trojan
