#include "trojan/tasp.hpp"

#include <algorithm>

namespace htnoc::trojan {

std::string to_string(TargetKind k) {
  switch (k) {
    case TargetKind::kFull: return "full";
    case TargetKind::kDest: return "dest";
    case TargetKind::kSrc: return "src";
    case TargetKind::kDestSrc: return "dest_src";
    case TargetKind::kMem: return "mem";
    case TargetKind::kVc: return "vc";
    case TargetKind::kThread: return "thread";
  }
  return "?";
}

unsigned target_width(TargetKind k) {
  switch (k) {
    case TargetKind::kFull: return 42;
    case TargetKind::kDest: return 4;
    case TargetKind::kSrc: return 4;
    case TargetKind::kDestSrc: return 8;
    case TargetKind::kMem: return 32;
    case TargetKind::kVc: return 2;
    case TargetKind::kThread: return 6;
  }
  return 0;
}

Tasp::Tasp(TaspParams params) : params_(params) {
  HTNOC_EXPECT(params_.payload_states >= 2 &&
               params_.payload_states <= static_cast<int>(Codeword72::kBits));
  HTNOC_EXPECT(params_.min_gap >= 1);
  // The XOR tree taps Y wires spread evenly across the wires the link code
  // actually uses (the attacker knows the ECC, Sec. III-B) — the design-
  // time choice that maximizes location diversity for a given flip-flop
  // budget without wasting taps on dead wires.
  const unsigned span = ecc::codec_for(params_.ecc).used_wires();
  tap_wires_.reserve(static_cast<std::size_t>(params_.payload_states));
  for (int i = 0; i < params_.payload_states; ++i) {
    tap_wires_.push_back(static_cast<unsigned>(
        (static_cast<std::uint64_t>(i) * span) /
        static_cast<std::uint64_t>(params_.payload_states)));
  }
}

bool Tasp::matches(std::uint64_t w) const noexcept {
  // Deep packet inspection keys on header flits; the flit-type wire bits
  // gate the comparator.
  if (params_.only_head_flits && !is_head(wire::type_of(w))) return false;

  const auto src = static_cast<RouterId>(extract_bits(w, wire::kSrcPos, wire::kSrcWidth));
  const auto dest =
      static_cast<RouterId>(extract_bits(w, wire::kDestPos, wire::kDestWidth));
  const auto vc = static_cast<VcId>(extract_bits(w, wire::kVcPos, wire::kVcWidth));
  const auto mem =
      static_cast<std::uint32_t>(extract_bits(w, wire::kMemPos, wire::kMemWidth));

  switch (params_.kind) {
    case TargetKind::kFull:
      return src == params_.target_src && dest == params_.target_dest &&
             vc == params_.target_vc &&
             (mem & params_.mem_mask) == (params_.target_mem & params_.mem_mask);
    case TargetKind::kDest: return dest == params_.target_dest;
    case TargetKind::kSrc: return src == params_.target_src;
    case TargetKind::kDestSrc:
      return src == params_.target_src && dest == params_.target_dest;
    case TargetKind::kMem:
      return (mem & params_.mem_mask) == (params_.target_mem & params_.mem_mask);
    case TargetKind::kVc: return vc == params_.target_vc;
    case TargetKind::kThread:
      return static_cast<std::uint8_t>(
                 extract_bits(w, wire::kThreadPos, wire::kThreadWidth)) ==
             (params_.target_thread & 0x3F);
  }
  return false;
}

std::vector<unsigned> Tasp::payload_wires(int state) const {
  HTNOC_EXPECT(state >= 0 && state < params_.payload_states);
  const int y = params_.payload_states;
  const int flips = flips_per_injection();
  // Stride at least 1 so the wires of one injection are always distinct.
  const int stride = std::max(1, y / 2 - 1);
  std::vector<unsigned> wires;
  wires.reserve(static_cast<std::size_t>(flips));
  for (int i = 0; i < flips; ++i) {
    wires.push_back(tap_wires_[static_cast<std::size_t>((state + i * stride) % y)]);
  }
  // Deduplicate defensively (possible only for tiny Y with 3-bit payloads).
  for (std::size_t i = 1; i < wires.size(); ++i) {
    while (true) {
      bool dup = false;
      for (std::size_t j = 0; j < i; ++j) {
        if (wires[j] == wires[i]) {
          dup = true;
          break;
        }
      }
      if (!dup) break;
      wires[i] = (wires[i] + 1) % Codeword72::kBits;
    }
  }
  return wires;
}

void Tasp::on_traverse(Cycle now, LinkPhit& phit) {
  if (!killsw_) {
    state_ = State::kIdle;
    return;
  }
  if (state_ == State::kIdle) state_ = State::kActive;

  ++stats_.flits_inspected;
  const std::uint64_t w =
      ecc::codec_for(params_.ecc).extract_data(phit.codeword);
  if (!matches(w)) return;

  ++stats_.target_sightings;
  // Hold fire inside the minimum gap: the payload counter holds its state
  // (less switching power, fewer repeats on the same wires).
  if (injected_once_ && now < last_injection_ + params_.min_gap) return;

  state_ = State::kAttacking;
  for (const unsigned wire_pos : payload_wires(payload_state_)) {
    phit.codeword.flip(wire_pos);
  }
  if (tap_.on(trace::Category::kTrojan)) {
    trace::Event e = trace::make_event(trace::EventType::kTrojanTriggered, now,
                                       trace::Scope::kLink, trace_node_,
                                       trace_port_);
    e.packet = phit.flit.packet;
    e.seq = static_cast<std::uint32_t>(phit.flit.seq);
    e.vc = static_cast<std::uint8_t>(phit.flit.vc);
    e.aux = static_cast<std::uint8_t>(payload_state_);
    e.arg = w;
    tap_.emit(e);
    e.type = trace::EventType::kTrojanPayloadAdvance;
    e.aux = static_cast<std::uint8_t>((payload_state_ + 1) %
                                      params_.payload_states);
    tap_.emit(e);
  }
  payload_state_ = (payload_state_ + 1) % params_.payload_states;
  last_injection_ = now;
  injected_once_ = true;
  ++stats_.injections;
}

}  // namespace htnoc::trojan
