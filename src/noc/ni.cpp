#include "noc/ni.hpp"

#include "noc/flit.hpp"

namespace htnoc {

bool NetworkInterface::try_inject(Cycle now, const PacketInfo& info,
                                  const std::vector<std::uint64_t>& payload) {
  DomainStream& s = stream_of(info.domain);
  if (static_cast<int>(s.queue.size()) + info.length >
      cfg_.injection_queue_depth) {
    ++stats_.inject_rejects;
    if (!saturated_ && tap_.on(trace::Category::kInjection)) {
      trace::Event e = trace::make_event(trace::EventType::kInjectionBlocked,
                                         now, trace::Scope::kCore, core_);
      e.packet = info.id;
      tap_.emit(e);
    }
    saturated_ = true;
    return false;
  }
  for (Flit& f : packetize(info, payload)) s.queue.push_back(std::move(f));
#ifdef HTNOC_MUTATION_PHANTOM_FLIT
  // Mutation self-test: conjure a head-flit clone under a packet id the
  // traffic layer never allocated. It flows (and wedges a VC downstream)
  // like a real flit, but no injection was ever recorded for it (verify:
  // kUnknownFlit).
  // (Bit 40, not something higher: flit_uid() shifts the packet id left by
  // 8, so a flipped bit must survive the shift to give the ghost a uid of
  // its own.)
  if ((info.id & 0x7) == 4) {
    Flit ghost = s.queue[s.queue.size() - static_cast<std::size_t>(info.length)];
    ghost.packet ^= PacketId{1} << 40;
    s.queue.push_back(std::move(ghost));
  }
#endif
  ++stats_.packets_injected;
  if (audit_ != nullptr) audit_->on_packet_injected(now, info);
  if (saturated_ && tap_.on(trace::Category::kInjection)) {
    trace::Event e = trace::make_event(trace::EventType::kInjectionUnblocked,
                                       now, trace::Scope::kCore, core_);
    e.packet = info.id;
    tap_.emit(e);
  }
  saturated_ = false;
  return true;
}

void NetworkInterface::drain(Cycle now) {
  out_.drain_control(now);
  in_.drain_link(now);
}

void NetworkInterface::compute(Cycle now) {
  out_.process_staged_control(now);
  step_ejection(now);
  step_injection(now);
  out_.step_lt(now);
}

void NetworkInterface::step(Cycle now) {
  drain(now);
  compute(now);
  flush_ejections(now);
}

void NetworkInterface::flush_ejections(Cycle now) {
  for (const PendingEjection& pe : pending_ejections_) {
    if (audit_ != nullptr) {
      for (int k = 0; k < pe.audit_calls; ++k) {
        audit_->on_flit_delivered(now, pe.flit);
      }
    }
    if (pe.deliver_tail && on_delivery_) {
      const Flit& f = pe.flit;
      PacketInfo info;
      info.id = f.packet;
      info.src_core = f.src_core;
      info.dest_core = f.dest_core;
      info.src_router = f.src_router;
      info.dest_router = f.dest_router;
      info.mem_addr = f.mem_addr;
      info.pclass = f.pclass;
      info.domain = f.domain;
      info.length = f.length;
      info.inject_cycle = f.inject_cycle;
      on_delivery_(now, info, now - f.inject_cycle);
    }
  }
  pending_ejections_.clear();
}

void NetworkInterface::step_injection(Cycle now) {
  if (!cfg_.tdm_enabled) {
    step_domain_injection(now, streams_[0]);
    return;
  }
  // Both domains drain independently; their flits ride disjoint VCs and the
  // link's TDM schedule interleaves them downstream.
  step_domain_injection(now, streams_[0]);
  step_domain_injection(now, streams_[1]);
}

void NetworkInterface::step_domain_injection(Cycle now, DomainStream& s) {
  if (s.queue.empty()) return;
  Flit& front = s.queue.front();

  // Head flits must first win a (trivial, single-requester) VC allocation
  // for the router's local input port.
  if (front.is_head() && s.out_vc < 0) {
    const auto [lo, hi] = allowed_vc_range(front.pclass, front.domain, cfg_);
    for (int vc = lo; vc <= hi; ++vc) {
      if (out_.vc_free(vc)) {
        out_.allocate_vc(vc);
        s.out_vc = vc;
        s.packet = front.packet;
        break;
      }
    }
    if (s.out_vc < 0) return;  // all VCs of the class are held
  }
  HTNOC_EXPECT(s.out_vc >= 0);

  if (!out_.can_accept(s.out_vc, front.domain) || out_.credits(s.out_vc) <= 0) {
    return;
  }

  Flit f = std::move(front);
  s.queue.pop_front();
  f.vc = static_cast<VcId>(s.out_vc);
  const bool tail = f.is_tail();
  out_.accept(now, std::move(f), now + 1);
  if (tail) {
    s.out_vc = -1;  // accept() released the VC allocation
    s.packet = kInvalidPacket;
  }
}

void NetworkInterface::step_ejection(Cycle now) {
  in_.process_staged(now);
  // Drain everything forwardable; the NI consumes flits as fast as the
  // router can deliver them (reassembly buffers are not the bottleneck the
  // paper studies). Audit/delivery notifications are staged, not invoked —
  // they touch shared observer state (see flush_ejections).
  for (int vc = 0; vc < cfg_.vcs_per_port; ++vc) {
    while (in_.front_flit_ready(now, vc)) {
      PendingEjection pe;
      pe.flit = in_.pop_front_flit(now, vc);
      ++stats_.flits_delivered;
#ifdef HTNOC_MUTATION_DOUBLE_DELIVER
      // Mutation self-test: the sink consumes a slice of the tail flits
      // twice — duplicated delivery accounting (verify: kDuplicateDelivery).
      if (pe.flit.is_tail() && (pe.flit.packet & 0x7) == 2) {
        ++stats_.flits_delivered;
        pe.audit_calls = 2;
      }
#endif
      if (pe.flit.is_tail()) {
        ++stats_.packets_delivered;
        pe.deliver_tail = true;
      }
      if (audit_ != nullptr || on_delivery_) {
        pending_ejections_.push_back(std::move(pe));
      }
    }
  }
}

int NetworkInterface::purge_injection(
    Cycle now, PacketId p, const std::vector<std::uint64_t>& buffered_uids,
    std::vector<std::uint64_t>* removed_uids) {
  (void)now;
  int purged = 0;
  for (auto& s : streams_) {
    for (std::size_t i = 0; i < s.queue.size();) {
      if (s.queue[i].packet == p) {
        if (removed_uids != nullptr) {
          removed_uids->push_back(s.queue[i].flit_uid());
        }
        s.queue.erase_at(i);
        ++purged;
      } else {
        ++i;
      }
    }
    if (s.packet == p && s.out_vc >= 0) {
      out_.release_vc_if_allocated(s.out_vc);
      s.out_vc = -1;
      s.packet = kInvalidPacket;
    }
  }
  purged += out_.purge_packet(p, buffered_uids, removed_uids);
  return purged;
}

}  // namespace htnoc
