// Pluggable link fault injectors. Figure 2 of the paper distinguishes three
// fault sources on a link: transient (random, correctable or not), permanent
// (stuck-at wires, must be rerouted around), and hardware-trojan (targeted,
// deliberately uncorrectable-but-detectable). The first two live here; the
// TASP trojan implements the same interface in src/trojan/tasp.hpp.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "noc/flit.hpp"

namespace htnoc::verify {
struct StateCodec;  // snapshot/restore (src/verify/snapshot.cpp)
}

namespace htnoc {

/// Interface every on-link fault source implements. on_traverse may mutate
/// the codeword of the phit crossing the link and may keep internal state
/// (the trojan's FSM advances here). probe() applies only the *passive*,
/// deterministic faults (stuck-at wires) so BIST test patterns behave as on
/// real hardware: a dormant or untargeted trojan does not reveal itself.
class LinkFaultInjector {
 public:
  virtual ~LinkFaultInjector() = default;
  virtual void on_traverse(Cycle now, LinkPhit& phit) = 0;
  virtual void probe(Codeword72& cw) const { (void)cw; }
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Random transient faults: each traversing phit is struck with probability
/// `phit_fault_prob`; a struck phit has 1, 2 or 3 random bits flipped with
/// the given conditional weights (defaults: mostly single-bit upsets).
class TransientFaultInjector final : public LinkFaultInjector {
 public:
  struct Params {
    double phit_fault_prob = 1e-4;
    double weight_1bit = 0.95;
    double weight_2bit = 0.04;
    double weight_3bit = 0.01;
  };

  TransientFaultInjector(Params p, std::uint64_t seed) : params_(p), rng_(seed) {}

  void on_traverse(Cycle now, LinkPhit& phit) override {
    (void)now;
    if (!rng_.next_bool(params_.phit_fault_prob)) return;
    const double total =
        params_.weight_1bit + params_.weight_2bit + params_.weight_3bit;
    const double u = rng_.next_double() * total;
    int flips = 1;
    if (u >= params_.weight_1bit + params_.weight_2bit) {
      flips = 3;
    } else if (u >= params_.weight_1bit) {
      flips = 2;
    }
    // Flip `flips` distinct random wire positions.
    unsigned first = 72;  // sentinel: none yet
    for (int i = 0; i < flips; ++i) {
      unsigned pos;
      do {
        pos = static_cast<unsigned>(rng_.next_below(Codeword72::kBits));
      } while (pos == first);
      if (i == 0) first = pos;
      phit.codeword.flip(pos);
    }
    ++faults_injected_;
  }

  [[nodiscard]] std::string name() const override { return "transient"; }
  [[nodiscard]] std::uint64_t faults_injected() const noexcept {
    return faults_injected_;
  }

 private:
  friend struct htnoc::verify::StateCodec;

  Params params_;
  Rng rng_;
  std::uint64_t faults_injected_ = 0;
};

/// Deterministic stuck-at faults on a set of wires. Visible to BIST probes.
class PermanentFaultInjector final : public LinkFaultInjector {
 public:
  /// wire position -> stuck value
  explicit PermanentFaultInjector(std::map<unsigned, bool> stuck)
      : stuck_(std::move(stuck)) {
    for (const auto& [pos, val] : stuck_) {
      (void)val;
      HTNOC_EXPECT(pos < Codeword72::kBits);
    }
  }

  void on_traverse(Cycle now, LinkPhit& phit) override {
    (void)now;
    bool changed = false;
    for (const auto& [pos, val] : stuck_) {
      if (phit.codeword.get(pos) != val) {
        phit.codeword.set(pos, val);
        changed = true;
      }
    }
    if (changed) ++faults_injected_;
  }

  void probe(Codeword72& cw) const override {
    for (const auto& [pos, val] : stuck_) cw.set(pos, val);
  }

  [[nodiscard]] std::string name() const override { return "permanent"; }
  [[nodiscard]] std::uint64_t faults_injected() const noexcept {
    return faults_injected_;
  }

 private:
  friend struct htnoc::verify::StateCodec;

  std::map<unsigned, bool> stuck_;
  std::uint64_t faults_injected_ = 0;
};

}  // namespace htnoc
