// Up*/down* table-based routing with runtime reconfiguration around
// disabled links — our stand-in for the paper's "Rerouting (Ariadne)"
// baseline (Fig. 10). Ariadne reconfigures a NoC after faults using
// up*/down* routing; we compute the same routing function centrally.
//
// A breadth-first spanning tree is built over the healthy topology. A link
// points "up" when it moves toward the root (lower BFS level; id as the
// tie-break). A legal route is zero or more up hops followed by zero or
// more down hops — a packet that has taken a down hop may never go up
// again, which provably breaks all cyclic channel dependencies.
//
// The per-packet phase bit ("has gone down yet") rides in
// Flit::route_phase_down, exactly as a real implementation would carry it
// in a header bit.
#pragma once

#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "noc/routing.hpp"

namespace htnoc {

/// A unidirectional inter-router link identified by its source router and
/// exit direction.
struct LinkRef {
  RouterId from = kInvalidRouter;
  Direction dir = Direction::kNorth;

  [[nodiscard]] constexpr auto operator<=>(const LinkRef&) const noexcept = default;
};

/// Dense index for LinkRef: from * 4 + dir. Only N/S/E/W links are indexed.
[[nodiscard]] constexpr int link_index(const LinkRef& l) noexcept {
  return static_cast<int>(l.from) * 4 + static_cast<int>(l.dir);
}

class UpDownRouting final : public RoutingFunction {
 public:
  /// Build routing tables over the topology minus `disabled_links`.
  /// Throws ContractViolation when the surviving directed graph leaves some
  /// router unable to reach another (the network is then unusable anyway).
  UpDownRouting(const MeshGeometry& geom, const std::set<LinkRef>& disabled_links);

  [[nodiscard]] RouteDecision route(RouterId here, const Flit& f) const override;
  [[nodiscard]] std::string name() const override { return "updown"; }

  /// True when a packet at `from` (fresh, phase-up) can legally reach `to`.
  [[nodiscard]] bool reachable(RouterId from, RouterId to) const;

  /// BFS level of a router in the spanning tree (root = 0). For tests.
  [[nodiscard]] int level(RouterId r) const {
    return levels_[static_cast<std::size_t>(r)];
  }

  /// True when traversing (from, dir) is an "up" hop. For tests.
  [[nodiscard]] bool is_up(RouterId from, Direction dir) const;

  [[nodiscard]] bool link_enabled(RouterId from, Direction dir) const {
    return enabled_[static_cast<std::size_t>(link_index({from, dir}))];
  }

 private:
  static constexpr int kUnreachable = 1 << 20;

  [[nodiscard]] RouteDecision route_with_phase(RouterId here, RouterId dest,
                                               int phase) const;

  // dist_[dest][router*2 + phase]: legal hops from (router, phase) to dest;
  // phase 0 = may still go up, phase 1 = down-only.
  [[nodiscard]] int dist(RouterId dest, RouterId r, int phase) const {
    return dist_[static_cast<std::size_t>(dest)]
                [static_cast<std::size_t>(r) * 2 + static_cast<std::size_t>(phase)];
  }

  MeshGeometry geom_;
  std::vector<bool> enabled_;       // per link_index
  std::vector<int> levels_;         // per router
  std::vector<std::vector<int>> dist_;
};

}  // namespace htnoc
