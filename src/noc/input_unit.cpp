#include "noc/input_unit.hpp"

#include <algorithm>

namespace htnoc {

namespace {
/// Clears the staged batch on scope exit, including on a thrown contract
/// violation — mid-batch messages must not be re-consumed next cycle (the
/// pre-staging code drained them into a discarded local vector).
template <typename T>
struct ScopedClear {
  std::vector<T>& v;
  ~ScopedClear() { v.clear(); }
};
}  // namespace

void InputUnit::process_staged(Cycle now,
                               const ecc::DecodeResult* predecoded) {
  if (link_ == nullptr || staged_arrivals_.empty()) return;
  ScopedClear<LinkPhit> clear{staged_arrivals_};
  std::size_t lane = 0;
  for (LinkPhit& phit : staged_arrivals_) {
    ++stats_.flits_received;
    const ecc::DecodeResult res =
        predecoded != nullptr ? predecoded[lane++] : codec_.decode(phit.codeword);

    FaultObservation obs;
    obs.now = now;
    obs.receiver = router_;
    obs.in_port = port_;
    obs.flit = phit.flit;
    obs.ecc = res;
    obs.obf = phit.obf;
    obs.attempt = phit.attempt;

    if (ecc::needs_retransmission(res.status)) {
      NackAdvice advice;
      if (detector_ != nullptr) advice = detector_->on_uncorrectable(obs);
      AckMsg nack;
      nack.packet = phit.flit.packet;
      nack.seq = phit.flit.seq;
      nack.attempt = phit.attempt;
      nack.ok = false;
      nack.escalate_obfuscation = advice.escalate_obfuscation;
      nack.bist_requested = advice.request_bist;
      link_->send_ack(now, nack);
      ++stats_.nacks_sent;
      if (tap_.on(trace::Category::kEcc)) {
        trace::Event e =
            trace::make_event(trace::EventType::kEccUncorrectable, now,
                              trace_scope_, trace_node_,
                              static_cast<std::int8_t>(port_));
        e.packet = phit.flit.packet;
        e.seq = static_cast<std::uint32_t>(phit.flit.seq);
        e.vc = static_cast<std::uint8_t>(phit.flit.vc);
        e.arg = static_cast<std::uint64_t>(phit.attempt);
        tap_.emit(e);
        e.type = trace::EventType::kNackSent;
        e.aux = static_cast<std::uint8_t>(
            (advice.escalate_obfuscation ? 1u : 0u) |
            (advice.request_bist ? 2u : 0u));
        tap_.emit(e);
      }
      continue;
    }

    if (res.status == ecc::DecodeStatus::kCorrectedSingle) {
      ++stats_.corrected_singles;
      if (detector_ != nullptr) detector_->on_corrected(obs);
      if (tap_.on(trace::Category::kEcc)) {
        trace::Event e =
            trace::make_event(trace::EventType::kEccCorrected, now,
                              trace_scope_, trace_node_,
                              static_cast<std::int8_t>(port_));
        e.packet = phit.flit.packet;
        e.seq = static_cast<std::uint32_t>(phit.flit.seq);
        e.vc = static_cast<std::uint8_t>(phit.flit.vc);
        e.arg = static_cast<std::uint64_t>(phit.attempt);
        tap_.emit(e);
      }
    } else if (detector_ != nullptr) {
      detector_->on_clean(obs);
    }

    AckMsg ack;
    ack.packet = phit.flit.packet;
    ack.seq = phit.flit.seq;
    ack.attempt = phit.attempt;
    ack.ok = true;
    link_->send_ack(now, ack);

#ifdef HTNOC_MUTATION_LOSE_FLIT
    // Mutation self-test: ACK and credit a slice of clean arrivals but never
    // buffer them. Credit conservation stays balanced — the flit simply
    // ceases to exist (verify: kFlitLoss).
    // (Keyed on packet + seq, not the uid's low bits: those are just the
    // seq, which short packets never take past 8.)
    if (((phit.flit.packet + static_cast<PacketId>(phit.flit.seq)) & 0xF) ==
        9) {
      link_->send_credit(now, CreditMsg{phit.flit.vc});
      continue;
    }
#endif

    const std::uint64_t decoded = res.data;
    if (phit.obf.method == ObfMethod::kScramble) {
      // Recover the true word once the partner's wire image is known.
      const auto it = std::find_if(
          wire_cache_.begin(), wire_cache_.end(), [&](const CachedWire& c) {
            return c.packet == phit.obf.partner_packet &&
                   c.seq == phit.obf.partner_seq;
          });
      if (it != wire_cache_.end()) {
        const std::uint64_t word = obf::undo(decoded, phit.obf, it->wire);
        if (word != phit.flit.wire) ++stats_.silent_corruptions;
        Flit f = phit.flit;
        note_clean_wire(now, f.packet, f.seq, word);
        deliver(now + obf::undo_penalty_cycles(phit.obf.method), std::move(f));
      } else {
        // Partner not seen yet: hold in the scramble station (paper: the
        // 1-2 cycle penalty when one of the pair is absent).
        ++stats_.scramble_stalls;
        StationEntry e;
        e.phit = std::move(phit);
        e.decoded_word = decoded;
        e.arrived = now;
        station_.push_back(std::move(e));
        // Every stationed flit still owns its upstream credit (returned only
        // after delivery + pop), so the station can never outgrow the port's
        // credit capacity.
        HTNOC_INVARIANT(station_.size() <=
                        static_cast<std::size_t>(cfg_.vcs_per_port) *
                            static_cast<std::size_t>(cfg_.buffer_depth));
      }
      continue;
    }

    std::uint64_t word = decoded;
    Cycle effective = now;
    if (phit.obf.active()) {
      word = obf::undo(decoded, phit.obf);
      effective = now + obf::undo_penalty_cycles(phit.obf.method);
    }
    if (word != phit.flit.wire) ++stats_.silent_corruptions;
    Flit f = phit.flit;
    note_clean_wire(now, f.packet, f.seq, word);
    deliver(effective, std::move(f));
  }
}

void InputUnit::note_clean_wire(Cycle now, PacketId packet, int seq,
                                std::uint64_t wire_word) {
  // A recovered word is itself a clean wire and may be the partner of
  // further phits parked in the station (the L-Ob controller never chains
  // scrambles, but a forced-scramble configuration can), so resolution must
  // cascade. A worklist keeps the cascade out of the station walk: resolving
  // recursively while holding a station_ iterator erases from the vector
  // under the walk and invalidates it.
  std::vector<CachedWire> pending{{packet, seq, wire_word}};
  while (!pending.empty()) {
    const CachedWire w = pending.back();
    pending.pop_back();
    wire_cache_.push_back(w);
    if (wire_cache_.size() > kWireCacheSize) wire_cache_.pop_front();

    // Resolve any scrambled phits that were waiting for this partner.
    for (auto it = station_.begin(); it != station_.end();) {
      if (it->phit.obf.partner_packet == w.packet &&
          it->phit.obf.partner_seq == w.seq) {
        const std::uint64_t word =
            obf::undo(it->decoded_word, it->phit.obf, w.wire);
        if (word != it->phit.flit.wire) ++stats_.silent_corruptions;
        Flit f = it->phit.flit;
        const Cycle effective =
            now + obf::undo_penalty_cycles(it->phit.obf.method);
        it = station_.erase(it);
        pending.push_back({f.packet, f.seq, word});
        deliver(effective, std::move(f));
      } else {
        ++it;
      }
    }
  }
}

void InputUnit::stream_insert(PacketStream& s, const Flit& f, Cycle arrival) {
  const pool::FlitHandle h = arena_.alloc(f, arrival);
  if (s.flit_count == 0) {
    s.head = s.tail = h;
    s.front_seq = f.seq;
  } else if (f.seq < s.front_seq) {
    arena_.set_next(h, s.head);
    s.head = h;
    s.front_seq = f.seq;
  } else {
    // Walk to the last node with seq < f.seq; duplicates are protocol
    // violations (same invariant the sorted-deque insert asserted).
    HTNOC_INVARIANT(arena_.flit(s.head).seq != f.seq);
    pool::FlitHandle prev = s.head;
    for (pool::FlitHandle nxt = arena_.next(prev); !nxt.null();
         nxt = arena_.next(prev)) {
      if (arena_.flit(nxt).seq >= f.seq) break;
      prev = nxt;
    }
    const pool::FlitHandle nxt = arena_.next(prev);
    HTNOC_INVARIANT(nxt.null() || arena_.flit(nxt).seq != f.seq);
    arena_.set_next(h, nxt);
    arena_.set_next(prev, h);
    if (nxt.null()) s.tail = h;
  }
  ++s.flit_count;
}

void InputUnit::deliver(Cycle effective_arrival, Flit f) {
  HTNOC_EXPECT(f.vc < cfg_.vcs_per_port);
  VcBuf& b = vcs_[static_cast<std::size_t>(f.vc)];
  HTNOC_INVARIANT(b.occupancy < cfg_.buffer_depth * 4);  // generous sanity bound

  // Find or create the packet's stream.
  PacketStream* stream = nullptr;
  for (auto& s : b.streams) {
    if (s.packet == f.packet) {
      stream = &s;
      break;
    }
  }
  if (stream == nullptr) {
    stream = &b.streams.emplace_back();
    stream->packet = f.packet;
  }

  stream_insert(*stream, f, effective_arrival);
  ++b.occupancy;
}

InputUnit::PurgeResult InputUnit::purge_packet(Cycle now, PacketId p) {
  PurgeResult res;
  for (int vc = 0; vc < cfg_.vcs_per_port; ++vc) {
    VcBuf& b = vcs_[static_cast<std::size_t>(vc)];
    for (std::size_t si = 0; si < b.streams.size();) {
      PacketStream& s = b.streams[si];
      if (s.packet != p) {
        ++si;
        continue;
      }
      for (pool::FlitHandle h = s.head; !h.null();) {
        const pool::FlitHandle nxt = arena_.next(h);
        res.buffered_uids.push_back(arena_.flit(h).flit_uid());
        ++res.flits_purged;
        --b.occupancy;
        if (link_ != nullptr) {
          link_->send_credit(now, CreditMsg{static_cast<VcId>(vc)});
        }
        arena_.release(h);
        h = nxt;
      }
      if (s.state == PacketStream::State::kActive) {
        res.held_out_port = s.out_port;
        res.held_out_vc = s.out_vc;
      }
      b.streams.erase_at(si);
    }
  }
  // Scramble station: entries of the packet itself, and entries stranded by
  // the loss of their partner.
  for (auto it = station_.begin(); it != station_.end();) {
    if (it->phit.flit.packet == p) {
      res.buffered_uids.push_back(it->phit.flit.flit_uid());
      ++res.flits_purged;
      if (link_ != nullptr) {
        link_->send_credit(now, CreditMsg{it->phit.flit.vc});
      }
      it = station_.erase(it);
    } else if (it->phit.obf.partner_packet == p) {
      // Partner gone before arrival: the scrambled data is unrecoverable;
      // escalate the purge to that packet.
      res.dependent_packets.push_back(it->phit.flit.packet);
      ++it;
    } else {
      ++it;
    }
  }
  return res;
}

Flit InputUnit::pop_front_flit(Cycle now, int vc) {
  VcBuf& b = vcs_[static_cast<std::size_t>(vc)];
  HTNOC_EXPECT(!b.streams.empty());
  PacketStream& s = b.streams.front();
  HTNOC_EXPECT(s.next_flit_present());

  const pool::FlitHandle h = s.head;
  Flit f = std::move(arena_.flit(h));
  s.head = arena_.next(h);
  s.front_seq = s.head.null() ? -1 : arena_.flit(s.head).seq;
  if (s.head.null()) s.tail = pool::FlitHandle{};
  --s.flit_count;
  arena_.release(h);
  ++s.next_seq;
  --b.occupancy;

  // Return the buffer slot upstream.
#ifdef HTNOC_MUTATION_SKIP_CREDIT
  // Mutation self-test: swallow a slice of the credit returns. The upstream
  // credit counter drifts low (verify: kCreditConservation).
  const bool skip_credit =
      ((f.packet + static_cast<PacketId>(f.seq)) & 0x7) == 5;
#else
  const bool skip_credit = false;
#endif
  if (!skip_credit && link_ != nullptr) {
    link_->send_credit(now, CreditMsg{static_cast<VcId>(vc)});
  }

  if (f.is_tail()) {
    HTNOC_INVARIANT(s.next_seq == f.length);
    HTNOC_INVARIANT(s.flit_count == 0);
    b.streams.pop_front();
  }
  return f;
}

}  // namespace htnoc
