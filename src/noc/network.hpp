// The complete NoC fabric: routers, inter-router links, local links and
// network interfaces, plus the aggregate utilization metrics the paper's
// Figs. 11/12 sample. The link graph and default routing come from the
// Topology named by NocConfig (concentrated mesh, plain mesh or torus);
// everything below this class is topology-agnostic.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/config.hpp"
#include "common/geometry.hpp"
#include "noc/link.hpp"
#include "noc/ni.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "noc/updown.hpp"
#include "topology/topology.hpp"

namespace htnoc::verify {
struct StateCodec;  // snapshot/restore (src/verify/snapshot.cpp)
}

namespace htnoc {

class StepPool;

class Network {
 public:
  /// Snapshot of the buffer-utilization metrics plotted in Figs. 11/12.
  struct UtilizationSample {
    Cycle cycle = 0;
    int input_port_flits = 0;      ///< Flits in router input buffers.
    int output_port_flits = 0;     ///< Flits in retransmission buffers.
    int injection_port_flits = 0;  ///< Flits queued at NIs.
    int routers_all_cores_full = 0;
    int routers_majority_cores_full = 0;  ///< > 50% of local cores full.
    int routers_with_blocked_port = 0;
  };

  explicit Network(const NocConfig& cfg);
  ~Network();  ///< Out-of-line: owns the (forward-declared) StepPool.

  [[nodiscard]] const MeshGeometry& geometry() const noexcept { return geom_; }
  [[nodiscard]] const Topology& topology() const noexcept { return *topo_; }
  [[nodiscard]] const NocConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] Cycle now() const noexcept { return now_; }

  /// Advance the whole network by one clock cycle.
  ///
  /// Runs as two phases over all routers and NIs. Phase 1 evaluates the
  /// active set (cfg.active_step) against the cycle-start fixed point and
  /// drains every due link message into unit-local staging; phase 2 runs
  /// each active unit's full pipeline over the staged input. Because link
  /// forward latency is >= 1 and the reverse channel delays by exactly 1,
  /// nothing sent during a cycle is visible within it — so with
  /// cfg.step_threads > 1 the phases shard across a persistent worker pool
  /// (contiguous router/NI ranges, one barrier between the phases) and the
  /// result is bit-identical to serial: every deque has one drainer in
  /// phase 1 and one writer in phase 2, trace events stage per shard and
  /// merge in unit order, and delivery/audit callbacks stage per NI and
  /// flush in core order on the calling thread. See docs/SCALING.md and
  /// docs/ARCHITECTURE.md §11.
  void step();
  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) step();
  }

  /// Active-set stepping accounting: units stepped vs provably-idle units
  /// skipped (cfg.active_step). With active_step off, skips stay zero.
  struct StepStats {
    std::uint64_t router_steps = 0;
    std::uint64_t router_skips = 0;
    std::uint64_t ni_steps = 0;
    std::uint64_t ni_skips = 0;
  };
  [[nodiscard]] const StepStats& step_stats() const noexcept {
    return step_stats_;
  }

  // --- traffic-facing API ---

  [[nodiscard]] PacketId next_packet_id() noexcept { return next_packet_id_++; }
  /// Read-only view of the id the next injection will receive (so tooling
  /// can pick a random live packet without consuming an id).
  [[nodiscard]] PacketId peek_next_packet_id() const noexcept {
    return next_packet_id_;
  }

  /// Inject a packet at its source core's NI. Returns false when the
  /// injection queue cannot take the whole packet.
  bool try_inject(const PacketInfo& info, const std::vector<std::uint64_t>& payload);

  /// Register a delivery callback on every NI (replaces any previous one).
  void set_delivery_callback(NetworkInterface::DeliveryCallback cb);

  // --- topology access ---

  [[nodiscard]] Router& router(RouterId r) {
    return *routers_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] NetworkInterface& ni(NodeId core) {
    return *nis_[static_cast<std::size_t>(core)];
  }
  /// The unidirectional inter-router link leaving `from` in direction `dir`.
  [[nodiscard]] Link& link(RouterId from, Direction dir);
  [[nodiscard]] bool has_link(RouterId from, Direction dir) const;
  /// All inter-router links (for sweep experiments).
  [[nodiscard]] std::vector<LinkRef> all_links() const;

  /// Disable a link and (lazily) mark the routing as needing reconfiguration.
  void disable_link(const LinkRef& l);

  /// True when disabling `l` (bidirectionally, on top of the already
  /// disabled set) would disconnect the mesh — i.e. up*/down*
  /// reconfiguration would be impossible and the link must stay in service.
  [[nodiscard]] bool would_disconnect(const LinkRef& l) const;

  /// Remove every flit of packet `p` from the whole network — buffers,
  /// retransmission slots, links in flight, NI queues — restoring credits
  /// and VC allocations. This is the recovery step of link-disable
  /// rerouting: packets stranded toward a disabled link are purged and
  /// re-injected end-to-end by the traffic layer. Scrambled flits whose
  /// partner is purged become unrecoverable; their packets are purged too
  /// (ids appended to the return value). Returns all purged packet ids.
  std::vector<PacketId> purge_packet(PacketId p);

  /// Flits of `p` anywhere in the network (for tests).
  [[nodiscard]] bool packet_in_flight(PacketId p) const;

  /// Cumulative purge accounting: packets purged and the distinct flits
  /// actually removed (buffers + retransmission slots + in-flight phits +
  /// NI queues, deduplicated by flit uid).
  struct PurgeTotals {
    std::uint64_t packets = 0;
    std::uint64_t flits = 0;
  };
  [[nodiscard]] const PurgeTotals& purge_totals() const noexcept {
    return purge_totals_;
  }

  /// Install (or clear, with nullptr) the flit-accounting observer:
  /// distributes it to every NI (injection/delivery events) and notifies it
  /// of every purge. See FlitAuditObserver / verify::NetworkInvariantAuditor.
  void set_audit(FlitAuditObserver* audit);

  /// Audit census: append every flit currently resident anywhere in the
  /// fabric — router input buffers and scramble stations, retransmission
  /// slots, link phits, NI source queues and ejection buffers. A flit may
  /// appear at several sites (see ResidentFlit).
  void collect_resident(std::vector<ResidentFlit>& out) const;

  /// Install (or clear, with nullptr) the trace sink: distributes an
  /// identity-stamped tap to every link, router unit and NI, and enables
  /// the per-cycle saturation-wavefront scan when that category is on.
  void set_trace(trace::TraceSink* sink);

  /// Verify the credit-conservation invariant on every (link, VC): for
  /// each hop, buffer_depth equals the upstream credit counter plus credits
  /// on the reverse wire plus occupied resources (retransmission slots and
  /// receiver buffers, with ACK-in-flight overlap removed). Returns an
  /// empty string when consistent, else a description of the first
  /// violation. Intended for tests and debug assertions.
  [[nodiscard]] std::string check_invariants() const;
  [[nodiscard]] const std::set<LinkRef>& disabled_links() const noexcept {
    return disabled_;
  }

  // --- routing control ---

  /// Switch every router back to the topology's default dimension-order
  /// routing — x-y on meshes, ring-shortest x-y on the torus (only valid
  /// with no disabled links).
  void use_xy_routing();
  /// Switch to West-First adaptive routing with live congestion feedback
  /// (only valid with no disabled links, on a topology whose turn model is
  /// sound — i.e. not the torus).
  void use_west_first_routing();
  /// Recompute up*/down* tables around the currently disabled links and
  /// switch every router to them (the Ariadne-style reconfiguration).
  void use_updown_routing();
  [[nodiscard]] const RoutingFunction& routing() const { return *routing_; }

  // --- mitigation wiring ---

  void set_detector(RouterId r, ThreatDetector* det) {
    router(r).set_detector(det);
  }
  void set_lob(RouterId r, int port, LObController* lob) {
    router(r).set_lob(port, lob);
  }

  // --- paper metrics ---

  [[nodiscard]] UtilizationSample sample_utilization() const;

  /// Total packets delivered across all NIs.
  [[nodiscard]] std::uint64_t packets_delivered() const;
  [[nodiscard]] std::uint64_t packets_injected() const;

  /// True when every flit has drained: no buffered flits anywhere, no
  /// in-flight phits, empty injection queues.
  [[nodiscard]] bool quiescent() const;

 private:
  friend struct htnoc::verify::StateCodec;

  /// Which routing installer is active — snapshot/restore re-runs the same
  /// installer on the restored `disabled_` set instead of serializing the
  /// routing tables themselves (they are a pure function of topology +
  /// disabled links).
  enum class RoutingMode : std::uint8_t { kDefault, kWestFirst, kUpDown };

  [[nodiscard]] static std::string link_name(RouterId from, Direction d);
  /// Emit router blocked/unblocked transitions (kSaturation category). Runs
  /// after ++now_ so its view matches sample_utilization at the same cycle.
  void trace_saturation();
  /// Effective parallel-step shard count: cfg.step_threads clamped to the
  /// router count (and >= 1).
  [[nodiscard]] int step_shards() const noexcept;
  /// Phase 1 for units [rlo,rhi) x [clo,chi): active-set evaluation at the
  /// cycle-start fixed point, then drain.
  void drain_range(std::size_t rlo, std::size_t rhi, std::size_t clo,
                   std::size_t chi);
  /// Phase 2 for the same ranges: compute every active unit.
  void compute_range(std::size_t rlo, std::size_t rhi, std::size_t clo,
                     std::size_t chi);

  NocConfig cfg_;
  std::unique_ptr<Topology> topo_;
  MeshGeometry geom_;  ///< Copy of topo_->geometry() (hot-path access).
  Cycle now_ = 0;
  PacketId next_packet_id_ = 1;

  std::unique_ptr<RoutingFunction> routing_;
  RoutingMode routing_mode_ = RoutingMode::kDefault;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  // Inter-router links indexed by link_index(LinkRef).
  std::vector<std::unique_ptr<Link>> mesh_links_;
  // Local links: [core] -> NI->router and router->NI.
  std::vector<std::unique_ptr<Link>> inj_links_;
  std::vector<std::unique_ptr<Link>> ej_links_;

  std::set<LinkRef> disabled_;
  PurgeTotals purge_totals_;
  StepStats step_stats_;
  // Reusable purge scratch (link-disable recovery purges packets in bursts;
  // the former per-packet std::set allocations dominated its cost).
  std::vector<std::uint64_t> purge_buffered_scratch_;
  std::vector<std::uint64_t> purge_removed_scratch_;
  trace::Tap tap_;
  FlitAuditObserver* audit_ = nullptr;
  std::vector<char> router_blocked_;  ///< Last traced blocked state.

  // Parallel-step state. The active bitmaps are written by phase 1 (each
  // shard its own range) and tallied into step_stats_ on the main thread;
  // the event buffers hold each shard's staged trace records (router-range
  // and NI-range separately so the merge reproduces the serial router-0..N,
  // NI-0..M emission order).
  std::vector<char> router_active_;
  std::vector<char> ni_active_;
  std::unique_ptr<StepPool> pool_;  ///< Lazily created when step_threads > 1.
  std::vector<std::vector<trace::Event>> shard_router_events_;
  std::vector<std::vector<trace::Event>> shard_ni_events_;
};

}  // namespace htnoc
