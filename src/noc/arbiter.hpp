// Arbiters used by the VC and switch allocators.
//
// The paper's router uses round-robin arbitration; a matrix (least-recently-
// served) arbiter is provided as an ablation alternative. Both expose the
// same interface: present a request bitmap, receive at most one grant, and
// update priority state only when a grant is accepted.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/expect.hpp"

namespace htnoc::verify {
struct StateCodec;  // snapshot/restore (src/verify/snapshot.cpp)
}

namespace htnoc {

/// Abstract N-way single-resource arbiter.
class Arbiter {
 public:
  explicit Arbiter(int num_inputs) : num_inputs_(num_inputs) {
    HTNOC_EXPECT(num_inputs > 0);
  }
  virtual ~Arbiter() = default;

  Arbiter(const Arbiter&) = delete;
  Arbiter& operator=(const Arbiter&) = delete;

  /// Pick a winner among the set request lines, or -1 when none requested.
  /// Does not commit priority state; call update(winner) when the grant is
  /// actually used.
  [[nodiscard]] virtual int arbitrate(const std::vector<bool>& requests) = 0;

  /// Commit the grant so the next arbitration round deprioritizes `winner`.
  virtual void update(int winner) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] int num_inputs() const noexcept { return num_inputs_; }

 protected:
  int num_inputs_;
};

/// Classic rotating-priority round-robin arbiter.
class RoundRobinArbiter final : public Arbiter {
 public:
  explicit RoundRobinArbiter(int num_inputs) : Arbiter(num_inputs) {}

  [[nodiscard]] int arbitrate(const std::vector<bool>& requests) override {
    HTNOC_EXPECT(static_cast<int>(requests.size()) == num_inputs_);
    for (int i = 0; i < num_inputs_; ++i) {
      const int idx = (next_ + i) % num_inputs_;
      if (requests[static_cast<std::size_t>(idx)]) return idx;
    }
    return -1;
  }

  void update(int winner) override {
    HTNOC_EXPECT(winner >= 0 && winner < num_inputs_);
    next_ = (winner + 1) % num_inputs_;
  }

  [[nodiscard]] std::string name() const override { return "round_robin"; }

 private:
  friend struct htnoc::verify::StateCodec;

  int next_ = 0;
};

/// Matrix (least-recently-served) arbiter: w[i][j] == true means input i has
/// priority over input j. Strong fairness; costs N^2 state bits.
class MatrixArbiter final : public Arbiter {
 public:
  explicit MatrixArbiter(int num_inputs)
      : Arbiter(num_inputs),
        prio_(static_cast<std::size_t>(num_inputs),
              std::vector<bool>(static_cast<std::size_t>(num_inputs), false)) {
    // Initial total order: lower index wins.
    for (int i = 0; i < num_inputs; ++i)
      for (int j = i + 1; j < num_inputs; ++j)
        prio_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
  }

  [[nodiscard]] int arbitrate(const std::vector<bool>& requests) override {
    HTNOC_EXPECT(static_cast<int>(requests.size()) == num_inputs_);
    for (int i = 0; i < num_inputs_; ++i) {
      if (!requests[static_cast<std::size_t>(i)]) continue;
      bool wins = true;
      for (int j = 0; j < num_inputs_; ++j) {
        if (j == i || !requests[static_cast<std::size_t>(j)]) continue;
        if (prio_[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)]) {
          wins = false;
          break;
        }
      }
      if (wins) return i;
    }
    return -1;  // unreachable for non-empty request sets; defensive
  }

  void update(int winner) override {
    HTNOC_EXPECT(winner >= 0 && winner < num_inputs_);
    const auto w = static_cast<std::size_t>(winner);
    for (int j = 0; j < num_inputs_; ++j) {
      prio_[w][static_cast<std::size_t>(j)] = false;
      prio_[static_cast<std::size_t>(j)][w] = true;
    }
    prio_[w][w] = false;
  }

  [[nodiscard]] std::string name() const override { return "matrix"; }

 private:
  friend struct htnoc::verify::StateCodec;

  std::vector<std::vector<bool>> prio_;
};

enum class ArbiterKind : std::uint8_t { kRoundRobin, kMatrix };

[[nodiscard]] inline std::unique_ptr<Arbiter> make_arbiter(ArbiterKind kind,
                                                           int num_inputs) {
  switch (kind) {
    case ArbiterKind::kMatrix:
      return std::make_unique<MatrixArbiter>(num_inputs);
    case ArbiterKind::kRoundRobin:
    default:
      return std::make_unique<RoundRobinArbiter>(num_inputs);
  }
}

}  // namespace htnoc
