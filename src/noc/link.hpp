// A unidirectional inter-router (or router-NI) link: one phit per cycle
// forward, plus a trusted reverse control channel for credits and ACK/NACK.
// Fault injectors (transient, permanent, trojan) attach to the forward data
// wires and mutate codewords in flight.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"
#include "noc/fault_model.hpp"
#include "noc/flit.hpp"
#include "noc/pool.hpp"
#include "noc/hooks.hpp"
#include "noc/protocol.hpp"
#include "trace/sink.hpp"

namespace htnoc::verify {
struct StateCodec;  // snapshot/restore (src/verify/snapshot.cpp)
}

namespace htnoc {

class Link {
 public:
  struct Stats {
    std::uint64_t phits_sent = 0;
    std::uint64_t phits_with_injected_faults = 0;
    std::uint64_t credits_sent = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t nacks_sent = 0;
  };

  Link(std::string name, int latency) : name_(std::move(name)), latency_(latency) {
    HTNOC_EXPECT(latency >= 1);
  }

  /// One phit per cycle; disabled links reject all traffic.
  [[nodiscard]] bool can_send(Cycle now) const noexcept {
    return !disabled_ && last_send_cycle_ != static_cast<std::int64_t>(now);
  }

  /// Start link traversal at cycle `now`; the phit arrives at now + latency.
  /// Fault injectors run in attach order.
  void send(Cycle now, LinkPhit phit) {
    HTNOC_EXPECT(can_send(now));
    last_send_cycle_ = static_cast<std::int64_t>(now);
    phit.sent_cycle = now;
    const Codeword72 before = phit.codeword;
    for (const auto& inj : injectors_) inj->on_traverse(now, phit);
    ++stats_.phits_sent;
    const bool faulted = !(phit.codeword == before);
    if (faulted) ++stats_.phits_with_injected_faults;
    if (tap_.on(trace::Category::kLink)) {
      trace::Event e = trace::make_event(trace::EventType::kLinkTraversal, now,
                                         trace::Scope::kLink, trace_node_,
                                         trace_port_);
      e.packet = phit.flit.packet;
      e.seq = phit.flit.seq;
      e.vc = static_cast<std::uint8_t>(phit.flit.vc);
      e.aux = static_cast<std::uint8_t>(
          phit.attempt > 255 ? 255 : phit.attempt);
      e.arg = phit.flit.wire;
      tap_.emit(e);
      if (faulted) {
        e.type = trace::EventType::kLinkFaultInjected;
        tap_.emit(e);
      }
    }
    in_flight_.push_back({now + static_cast<Cycle>(latency_), std::move(phit)});
  }

  /// Pop all phits whose traversal completes at cycle `now`, appending to
  /// `out`. The drain-phase primitive of the two-phase parallel step: with
  /// forward latency >= 1 nothing sent during cycle `now` is due at `now`,
  /// so draining before any unit computes picks up exactly what the serial
  /// interleaved pull would, and phase-2 sends become the only in_flight_
  /// mutations (single writer per deque).
  void drain_arrivals(Cycle now, std::vector<LinkPhit>& out) {
    while (!in_flight_.empty() && in_flight_.front().arrive <= now) {
      HTNOC_INVARIANT(in_flight_.front().arrive == now);
      out.push_back(std::move(in_flight_.front().phit));
      in_flight_.pop_front();
    }
  }

  /// Pop all phits whose traversal completes at cycle `now`.
  [[nodiscard]] std::vector<LinkPhit> take_arrivals(Cycle now) {
    std::vector<LinkPhit> out;
    drain_arrivals(now, out);
    return out;
  }

  // --- reverse control channel (delay 1 cycle, trusted) ---

  void send_credit(Cycle now, CreditMsg c) {
    credits_.push_back({now + 1, c});
    ++stats_.credits_sent;
  }
  void send_ack(Cycle now, AckMsg a) {
#ifdef HTNOC_MUTATION_DROP_ACK
    // Mutation self-test: silently drop a slice of the ok-ACKs. The sender's
    // retransmission slot is never released (verify: kAckSlotLeak).
    if (a.ok && ((a.packet + static_cast<PacketId>(a.seq)) & 0x1F) == 3) {
      return;
    }
#endif
    if (a.ok) {
      ++stats_.acks_sent;
    } else {
      ++stats_.nacks_sent;
    }
    acks_.push_back({now + 1, a});
  }

  /// Credits currently travelling the reverse channel for `vc` (invariant
  /// checking).
  [[nodiscard]] int pending_credit_count(VcId vc) const {
    int n = 0;
    for (const auto& c : credits_) {
      if (c.msg.vc == vc) ++n;
    }
    return n;
  }

  /// Appending drain variants of take_credits/take_acks (see
  /// drain_arrivals; the reverse channel's fixed 1-cycle delay gives the
  /// same no-same-cycle-visibility guarantee).
  void drain_credits(Cycle now, std::vector<CreditMsg>& out) {
    while (!credits_.empty() && credits_.front().arrive <= now) {
      out.push_back(credits_.front().msg);
      credits_.pop_front();
    }
  }
  void drain_acks(Cycle now, std::vector<AckMsg>& out) {
    while (!acks_.empty() && acks_.front().arrive <= now) {
      out.push_back(acks_.front().msg);
      acks_.pop_front();
    }
  }

  [[nodiscard]] std::vector<CreditMsg> take_credits(Cycle now) {
    std::vector<CreditMsg> out;
    drain_credits(now, out);
    return out;
  }
  [[nodiscard]] std::vector<AckMsg> take_acks(Cycle now) {
    std::vector<AckMsg> out;
    drain_acks(now, out);
    return out;
  }

  // --- fault attachment & BIST ---

  void attach_injector(std::shared_ptr<LinkFaultInjector> inj) {
    HTNOC_EXPECT(inj != nullptr);
    injectors_.push_back(std::move(inj));
  }

  /// Run a BIST test pattern through the passive fault models only. A clean
  /// return equal to the input means no permanent fault is visible.
  [[nodiscard]] Codeword72 probe(Codeword72 pattern) const {
    for (const auto& inj : injectors_) inj->probe(pattern);
    return pattern;
  }

  /// Remove all in-flight forward phits of a packet (part of the network-
  /// wide packet purge that link-disabling recovery performs). Returns the
  /// flit uids removed.
  std::vector<std::uint64_t> purge_packet(PacketId p) {
    std::vector<std::uint64_t> uids;
    for (std::size_t i = 0; i < in_flight_.size();) {
      if (in_flight_[i].phit.flit.packet == p) {
        uids.push_back(in_flight_[i].phit.flit.flit_uid());
        in_flight_.erase_at(i);
      } else {
        ++i;
      }
    }
    return uids;
  }

  [[nodiscard]] bool has_packet(PacketId p) const {
    for (const auto& f : in_flight_) {
      if (f.phit.flit.packet == p) return true;
    }
    return false;
  }

  /// Audit census: append every in-flight forward phit, labelled with the
  /// caller-supplied identity (tracing may be off, so the trace identity
  /// cannot be relied on here).
  void collect_resident(std::vector<ResidentFlit>& out, std::uint16_t node,
                        std::int8_t port) const {
    for (const auto& f : in_flight_) {
      out.push_back({f.phit.flit.flit_uid(), f.phit.flit.packet,
                     FlitSite::kLinkPhit, node, port});
    }
  }

  void set_disabled(bool d) noexcept { disabled_ = d; }
  [[nodiscard]] bool disabled() const noexcept { return disabled_; }

  /// Install the trace tap plus this link's track identity: `node` is the
  /// source router (mesh links) or core (local links), `port` a direction
  /// code 0..3 or trace::kLinkPortInjection / kLinkPortEjection.
  void set_trace(trace::Tap tap, std::uint16_t node, std::int8_t port) {
    tap_ = tap;
    trace_node_ = node;
    trace_port_ = port;
  }
  [[nodiscard]] std::uint16_t trace_node() const noexcept {
    return trace_node_;
  }
  [[nodiscard]] std::int8_t trace_port() const noexcept { return trace_port_; }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int latency() const noexcept { return latency_; }
  [[nodiscard]] bool idle() const noexcept { return in_flight_.empty(); }
  /// Credits or ACK/NACKs travelling the reverse channel. The sender-side
  /// active-set check: a unit with no buffered work still must step while
  /// its output link owes it control messages.
  [[nodiscard]] bool has_reverse_traffic() const noexcept {
    return !credits_.empty() || !acks_.empty();
  }

 private:
  friend struct htnoc::verify::StateCodec;

  struct InFlight {
    Cycle arrive;
    LinkPhit phit;
  };
  struct PendingCredit {
    Cycle arrive;
    CreditMsg msg;
  };
  struct PendingAck {
    Cycle arrive;
    AckMsg msg;
  };

  std::string name_;
  int latency_;
  bool disabled_ = false;
  std::int64_t last_send_cycle_ = -1;
  // Contiguous rings (src/noc/pool.hpp): FIFO in steady state, allocation-
  // free once warmed; serialized with the same layout the deques had.
  pool::Ring<InFlight> in_flight_;
  pool::Ring<PendingCredit> credits_;
  pool::Ring<PendingAck> acks_;
  std::vector<std::shared_ptr<LinkFaultInjector>> injectors_;
  Stats stats_;
  trace::Tap tap_;
  std::uint16_t trace_node_ = 0;
  std::int8_t trace_port_ = -1;
};

}  // namespace htnoc
