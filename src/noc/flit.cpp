#include "noc/flit.hpp"

#include "common/expect.hpp"

namespace htnoc {

std::vector<Flit> packetize(const PacketInfo& info,
                            const std::vector<std::uint64_t>& payload) {
  HTNOC_EXPECT(info.length >= 1);
  HTNOC_EXPECT(static_cast<int>(payload.size()) + 1 >= info.length);

  // Thread id defaults to the source core (one pinned thread per core).
  const std::uint8_t thread =
      info.thread == PacketInfo::kAutoThread
          ? static_cast<std::uint8_t>(info.src_core & 0x3F)
          : static_cast<std::uint8_t>(info.thread & 0x3F);

  std::vector<Flit> flits;
  flits.reserve(static_cast<std::size_t>(info.length));
  for (int i = 0; i < info.length; ++i) {
    Flit f;
    f.packet = info.id;
    f.seq = i;
    f.src_core = info.src_core;
    f.dest_core = info.dest_core;
    f.src_router = info.src_router;
    f.dest_router = info.dest_router;
    f.thread = thread;
    f.mem_addr = info.mem_addr;
    f.pclass = info.pclass;
    f.domain = info.domain;
    f.length = info.length;
    f.inject_cycle = info.inject_cycle;

    if (info.length == 1) {
      f.type = FlitType::kHeadTail;
    } else if (i == 0) {
      f.type = FlitType::kHead;
    } else if (i == info.length - 1) {
      f.type = FlitType::kTail;
    } else {
      f.type = FlitType::kBody;
    }

    if (f.is_head()) {
      wire::HeaderFields h;
      h.src = info.src_router;
      h.dest = info.dest_router;
      h.vc = 0;  // VC class is assigned per hop; wire carries injection class.
      h.mem_addr = info.mem_addr;
      h.length = static_cast<unsigned>(info.length);
      h.pclass = info.pclass;
      h.thread = thread;
      h.pid_low = info.id;
      h.type = f.type;
      f.wire = wire::pack_header(h);
    } else {
      f.wire = wire::stamp_type(payload[static_cast<std::size_t>(i - 1)], f.type);
    }
    flits.push_back(f);
  }
  return flits;
}

std::string to_string(ObfMethod m) {
  switch (m) {
    case ObfMethod::kNone: return "none";
    case ObfMethod::kInvert: return "invert";
    case ObfMethod::kShuffle: return "shuffle";
    case ObfMethod::kScramble: return "scramble";
    case ObfMethod::kReorder: return "reorder";
  }
  return "?";
}

std::string to_string(ObfGranularity g) {
  switch (g) {
    case ObfGranularity::kFlit: return "flit";
    case ObfGranularity::kHeader: return "header";
    case ObfGranularity::kPayload: return "payload";
  }
  return "?";
}

}  // namespace htnoc
