// Link-level protocol messages (reverse control channel) and virtual-channel
// class policy.
//
// The forward channel carries one LinkPhit per cycle; the reverse channel
// carries credits (buffer-slot returns) and ACK/NACK responses for the
// switch-to-switch retransmission protocol, each with a one-cycle delay.
// Following the paper, the reverse control channel is assumed trusted and
// fault-free (the trojan sits on the data wires).
#pragma once

#include <cstdint>
#include <utility>

#include "common/config.hpp"
#include "common/types.hpp"

namespace htnoc {

/// Returns one downstream buffer slot for virtual channel `vc`.
struct CreditMsg {
  VcId vc = 0;
};

/// ACK/NACK for one transmission attempt of one flit, with the threat
/// detector's advice piggybacked for the upstream L-Ob module.
struct AckMsg {
  PacketId packet = kInvalidPacket;
  int seq = 0;
  int attempt = 0;
  bool ok = true;  ///< true = ACK (clear the retransmission slot), false = NACK.
  /// Threat detector advice (NACK only): the repeated fault pattern looks
  /// targeted; enable or advance switch-to-switch obfuscation on the resend.
  bool escalate_obfuscation = false;
  /// Threat detector has dispatched a BIST scan of this link (informational).
  bool bist_requested = false;
};

/// Inclusive VC range [first, last] a packet may use, by class and domain.
///
/// Protocol deadlock between requests and replies is broken by giving each
/// class a disjoint VC partition; TDM further splits VCs between the two
/// time domains (paper Fig. 12a evaluates two TDM domains).
[[nodiscard]] inline std::pair<int, int> allowed_vc_range(PacketClass pclass,
                                                          TdmDomain domain,
                                                          const NocConfig& cfg) {
  int lo = 0;
  int hi = cfg.vcs_per_port - 1;
  if (cfg.tdm_enabled) {
    const int half = cfg.vcs_per_port / 2;
    if (domain == TdmDomain::kD1) {
      hi = half - 1;
    } else {
      lo = half;
    }
  }
  // Within the (possibly domain-restricted) range, replies take the upper
  // half so a full request path can never block reply delivery.
  const int span = hi - lo + 1;
  if (span >= 2) {
    const int mid = lo + span / 2;
    if (pclass == PacketClass::kReply) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return {lo, hi};
}

/// TDM link schedule: domain D1 owns even cycles, D2 odd cycles.
[[nodiscard]] constexpr bool tdm_slot_allows(TdmDomain domain, Cycle now) noexcept {
  const bool even = (now % 2) == 0;
  return domain == TdmDomain::kD1 ? even : !even;
}

}  // namespace htnoc
