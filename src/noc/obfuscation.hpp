// Pure, invertible bit transforms used by the L-Ob switch-to-switch
// obfuscation module. These are the link-level *mechanisms*; the decision
// logic (which method to try next, per-link method log) lives in
// src/mitigation/lob.hpp.
//
// Every transform is an involution or has an explicit inverse, verified by
// property tests: deobfuscate(obfuscate(w)) == w for all methods,
// granularities and w.
#pragma once

#include <cstdint>

#include "common/bits.hpp"
#include "noc/flit.hpp"
#include "noc/wire.hpp"

namespace htnoc::obf {

/// [first_bit, width) window each granularity operates on.
struct Window {
  unsigned pos;
  unsigned width;
};

[[nodiscard]] constexpr Window window_of(ObfGranularity g) noexcept {
  switch (g) {
    case ObfGranularity::kHeader: return {0, wire::kHeaderBits};
    case ObfGranularity::kPayload:
      return {wire::kHeaderBits, 64 - wire::kHeaderBits};
    case ObfGranularity::kFlit:
    default: return {0, 64};
  }
}

/// Amount shuffle rotates within its window. Chosen so that the rotation is
/// never an identity for any supported window width (42, 22, 64).
inline constexpr unsigned kShuffleRotate = 13;

namespace detail {
[[nodiscard]] constexpr std::uint64_t rotl_window(std::uint64_t field, unsigned width,
                                                  unsigned k) noexcept {
  k %= width;
  if (k == 0) return field;
  const std::uint64_t mask =
      (width >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  return ((field << k) | (field >> (width - k))) & mask;
}
}  // namespace detail

/// Invert: complement all bits in the window. Self-inverse.
[[nodiscard]] constexpr std::uint64_t invert(std::uint64_t w, ObfGranularity g) noexcept {
  const Window win = window_of(g);
  const std::uint64_t field = extract_bits(w, win.pos, win.width);
  const std::uint64_t mask =
      (win.width >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << win.width) - 1);
  return deposit_bits(w, win.pos, win.width, field ^ mask);
}

/// Shuffle: rotate the window left by kShuffleRotate bits.
[[nodiscard]] constexpr std::uint64_t shuffle(std::uint64_t w, ObfGranularity g) noexcept {
  const Window win = window_of(g);
  const std::uint64_t field = extract_bits(w, win.pos, win.width);
  return deposit_bits(w, win.pos, win.width,
                      detail::rotl_window(field, win.width, kShuffleRotate));
}

/// Inverse of shuffle: rotate right by the same amount.
[[nodiscard]] constexpr std::uint64_t unshuffle(std::uint64_t w, ObfGranularity g) noexcept {
  const Window win = window_of(g);
  const std::uint64_t field = extract_bits(w, win.pos, win.width);
  return deposit_bits(
      w, win.pos, win.width,
      detail::rotl_window(field, win.width, win.width - (kShuffleRotate % win.width)));
}

/// Scramble: XOR the window with the partner flit's corresponding window.
/// Self-inverse given the same partner word.
[[nodiscard]] constexpr std::uint64_t scramble(std::uint64_t w, std::uint64_t partner,
                                               ObfGranularity g) noexcept {
  const Window win = window_of(g);
  const std::uint64_t field = extract_bits(w, win.pos, win.width);
  const std::uint64_t key = extract_bits(partner, win.pos, win.width);
  return deposit_bits(w, win.pos, win.width, field ^ key);
}

/// Apply a tagged obfuscation to a wire word. `partner` is only read for
/// kScramble.
[[nodiscard]] constexpr std::uint64_t apply(std::uint64_t w, const ObfuscationTag& tag,
                                            std::uint64_t partner = 0) noexcept {
  switch (tag.method) {
    case ObfMethod::kInvert: return invert(w, tag.granularity);
    case ObfMethod::kShuffle: return shuffle(w, tag.granularity);
    case ObfMethod::kScramble: return scramble(w, partner, tag.granularity);
    case ObfMethod::kReorder:  // scheduling-only; wires untouched
    case ObfMethod::kNone:
    default: return w;
  }
}

/// Undo a tagged obfuscation.
[[nodiscard]] constexpr std::uint64_t undo(std::uint64_t w, const ObfuscationTag& tag,
                                           std::uint64_t partner = 0) noexcept {
  switch (tag.method) {
    case ObfMethod::kInvert: return invert(w, tag.granularity);
    case ObfMethod::kShuffle: return unshuffle(w, tag.granularity);
    case ObfMethod::kScramble: return scramble(w, partner, tag.granularity);
    case ObfMethod::kReorder:
    case ObfMethod::kNone:
    default: return w;
  }
}

/// Cycle penalty the receiver pays to undo this obfuscation (paper: 1 cycle
/// for invert/shuffle, 1-2 cycles for scramble while waiting on the partner).
[[nodiscard]] constexpr int undo_penalty_cycles(ObfMethod m) noexcept {
  switch (m) {
    case ObfMethod::kInvert:
    case ObfMethod::kShuffle: return 1;
    case ObfMethod::kScramble: return 1;  // +stall until partner arrives
    case ObfMethod::kReorder: return 0;   // no wire transform to undo
    case ObfMethod::kNone:
    default: return 0;
  }
}

}  // namespace htnoc::obf
