#include "noc/network.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <utility>

#include "common/expect.hpp"
#include "noc/adaptive.hpp"
#include "noc/step_pool.hpp"

namespace htnoc {

namespace {
constexpr std::array<Direction, 4> kDirs = {Direction::kNorth, Direction::kSouth,
                                            Direction::kEast, Direction::kWest};

std::unique_ptr<Topology> validated_topology(const NocConfig& cfg) {
  cfg.validate();
  return make_topology(cfg);
}
}  // namespace

std::string Network::link_name(RouterId from, Direction d) {
  return "link.r" + std::to_string(from) + "." + to_string(d);
}

Network::Network(const NocConfig& cfg)
    : cfg_(cfg), topo_(validated_topology(cfg)), geom_(topo_->geometry()) {
  routing_ = topo_->make_default_routing();

  const int nr = geom_.num_routers();
  const int nc = geom_.num_cores();

  routers_.reserve(static_cast<std::size_t>(nr));
  for (RouterId r = 0; r < nr; ++r) {
    routers_.push_back(std::make_unique<Router>(cfg_, r, routing_.get()));
  }

  // Inter-router links, wired in the topology's canonical enumeration
  // order (routers ascending, N,S,E,W) — the legacy hard-coded order.
  mesh_links_.resize(static_cast<std::size_t>(nr) * 4);
  for (const TopoLink& tl : topo_->links()) {
    auto lnk =
        std::make_unique<Link>(link_name(tl.from, tl.dir), cfg_.stage_lt);
    routers_[static_cast<std::size_t>(tl.from)]
        ->output(direction_port(tl.dir))
        .connect(lnk.get());
    routers_[static_cast<std::size_t>(tl.to)]
        ->input(direction_port(opposite(tl.dir)))
        .connect(lnk.get());
    mesh_links_[static_cast<std::size_t>(link_index({tl.from, tl.dir}))] =
        std::move(lnk);
  }

  // NIs and local links.
  nis_.reserve(static_cast<std::size_t>(nc));
  inj_links_.resize(static_cast<std::size_t>(nc));
  ej_links_.resize(static_cast<std::size_t>(nc));
  for (NodeId c = 0; c < nc; ++c) {
    nis_.push_back(std::make_unique<NetworkInterface>(cfg_, c));
    const RouterId r = geom_.router_of_core(c);
    const int slot = geom_.local_slot_of_core(c);
    const int port = kPortLocalBase + slot;
    auto inj = std::make_unique<Link>("inj.c" + std::to_string(c), 1);
    auto ej = std::make_unique<Link>("ej.c" + std::to_string(c), 1);
    routers_[static_cast<std::size_t>(r)]->input(port).connect(inj.get());
    routers_[static_cast<std::size_t>(r)]->output(port).connect(ej.get());
    nis_.back()->connect(inj.get(), ej.get());
    inj_links_[static_cast<std::size_t>(c)] = std::move(inj);
    ej_links_[static_cast<std::size_t>(c)] = std::move(ej);
  }
}

Network::~Network() = default;

int Network::step_shards() const noexcept {
  int t = cfg_.step_threads;
  const int nr = static_cast<int>(routers_.size());
  if (t > nr) t = nr;
  return t < 1 ? 1 : t;
}

void Network::drain_range(std::size_t rlo, std::size_t rhi, std::size_t clo,
                          std::size_t chi) {
  // Active-set evaluation happens before any drain, at the cycle-start
  // fixed point: every queue a unit's has_work() reads is drained only by
  // that unit, so the evaluation is race-free and — unlike the former
  // mid-loop evaluation — independent of unit order and thread count.
  // (A unit woken only by a same-cycle send would have been a no-op step
  // anyway: its due queues are empty. It wakes next cycle instead.)
  for (std::size_t i = rlo; i < rhi; ++i) {
    Router& r = *routers_[i];
    router_active_[i] = (!cfg_.active_step || r.has_work()) ? 1 : 0;
    if (router_active_[i] != 0) r.drain(now_);
  }
  for (std::size_t i = clo; i < chi; ++i) {
    NetworkInterface& ni = *nis_[i];
    ni_active_[i] = (!cfg_.active_step || ni.has_work()) ? 1 : 0;
    if (ni_active_[i] != 0) ni.drain(now_);
  }
}

void Network::compute_range(std::size_t rlo, std::size_t rhi, std::size_t clo,
                            std::size_t chi) {
  for (std::size_t i = rlo; i < rhi; ++i) {
    if (router_active_[i] != 0) routers_[i]->compute(now_);
  }
  for (std::size_t i = clo; i < chi; ++i) {
    if (ni_active_[i] != 0) nis_[i]->compute(now_);
  }
}

void Network::step() {
  const std::size_t nr = routers_.size();
  const std::size_t nc = nis_.size();
  if (router_active_.size() != nr) router_active_.assign(nr, 0);
  if (ni_active_.size() != nc) ni_active_.assign(nc, 0);

  const int shards = step_shards();
  if (shards <= 1) {
    drain_range(0, nr, 0, nc);
    compute_range(0, nr, 0, nc);
  } else {
    if (pool_ == nullptr) pool_ = std::make_unique<StepPool>(shards);
    if (shard_router_events_.size() != static_cast<std::size_t>(shards)) {
      shard_router_events_.resize(static_cast<std::size_t>(shards));
      shard_ni_events_.resize(static_cast<std::size_t>(shards));
    }
    const std::size_t sh = static_cast<std::size_t>(shards);
    const auto rrange = [&](std::size_t s) {
      return std::pair{nr * s / sh, nr * (s + 1) / sh};
    };
    const auto crange = [&](std::size_t s) {
      return std::pair{nc * s / sh, nc * (s + 1) / sh};
    };
    pool_->run([&](int s) {
      const auto [rlo, rhi] = rrange(static_cast<std::size_t>(s));
      const auto [clo, chi] = crange(static_cast<std::size_t>(s));
      drain_range(rlo, rhi, clo, chi);
    });
    // Phase barrier: every due message is staged, nothing more arrives
    // this cycle. Phase 2's link interactions are pushes only.
    pool_->run([&](int s) {
      const auto su = static_cast<std::size_t>(s);
      const auto [rlo, rhi] = rrange(su);
      const auto [clo, chi] = crange(su);
      // Stage this worker's trace records per shard; reset on every exit
      // path so a contract violation cannot leave a dangling redirect.
      struct StageReset {
        ~StageReset() { trace::TraceSink::set_thread_stage(nullptr); }
      } reset;
      trace::TraceSink::set_thread_stage(&shard_router_events_[su]);
      for (std::size_t i = rlo; i < rhi; ++i) {
        if (router_active_[i] != 0) routers_[i]->compute(now_);
      }
      trace::TraceSink::set_thread_stage(&shard_ni_events_[su]);
      for (std::size_t i = clo; i < chi; ++i) {
        if (ni_active_[i] != 0) nis_[i]->compute(now_);
      }
    });
    // Deterministic trace merge: shards own contiguous ascending unit
    // ranges, so router buffers in shard order then NI buffers in shard
    // order reproduce the serial emission order exactly.
    if (trace::TraceSink* sink = tap_.sink()) {
      for (auto& buf : shard_router_events_) {
        for (const trace::Event& e : buf) sink->record(e);
        buf.clear();
      }
      for (auto& buf : shard_ni_events_) {
        for (const trace::Event& e : buf) sink->record(e);
        buf.clear();
      }
    }
  }

  // Staged delivery/audit notifications flush on this thread in core order
  // — the serial call sequence (callbacks mutate traffic-layer state the
  // workers must not touch).
  for (auto& ni : nis_) ni->flush_ejections(now_);

  for (std::size_t i = 0; i < nr; ++i) {
    if (router_active_[i] != 0) {
      ++step_stats_.router_steps;
    } else {
      ++step_stats_.router_skips;
    }
  }
  for (std::size_t i = 0; i < nc; ++i) {
    if (ni_active_[i] != 0) {
      ++step_stats_.ni_steps;
    } else {
      ++step_stats_.ni_skips;
    }
  }

  ++now_;
  if (tap_.on(trace::Category::kSaturation)) trace_saturation();
}

void Network::trace_saturation() {
  const std::size_t nr = routers_.size();
  if (router_blocked_.size() != nr) router_blocked_.assign(nr, 0);
  for (std::size_t i = 0; i < nr; ++i) {
    const bool blocked = routers_[i]->any_port_blocked(now_);
    if (blocked == (router_blocked_[i] != 0)) continue;
    router_blocked_[i] = blocked ? 1 : 0;
    tap_.emit(trace::make_event(blocked ? trace::EventType::kRouterBlocked
                                        : trace::EventType::kRouterUnblocked,
                                now_, trace::Scope::kRouter,
                                static_cast<std::uint16_t>(i)));
  }
}

void Network::set_audit(FlitAuditObserver* audit) {
  audit_ = audit;
  for (auto& ni : nis_) ni->set_audit(audit);
}

void Network::collect_resident(std::vector<ResidentFlit>& out) const {
  for (RouterId r = 0; r < geom_.num_routers(); ++r) {
    const Router& rt = *routers_[static_cast<std::size_t>(r)];
    for (int port = 0; port < rt.num_ports(); ++port) {
      rt.input(port).collect_resident(out, r, static_cast<std::int8_t>(port));
      rt.output(port).collect_resident(out, r, static_cast<std::int8_t>(port));
    }
    for (Direction d : kDirs) {
      if (!has_link(r, d)) continue;
      mesh_links_[static_cast<std::size_t>(link_index({r, d}))]
          ->collect_resident(out, r,
                             static_cast<std::int8_t>(direction_port(d)));
    }
  }
  for (NodeId c = 0; c < geom_.num_cores(); ++c) {
    const NetworkInterface& ni = *nis_[static_cast<std::size_t>(c)];
    ni.collect_source_resident(out);
    // NI-side ports reuse the router unit types; file them under the core.
    ni.injection_port().collect_resident(out, c, trace::kLinkPortInjection);
    ni.ejection_port().collect_resident(out, c, trace::kLinkPortEjection);
    inj_links_[static_cast<std::size_t>(c)]->collect_resident(
        out, c, trace::kLinkPortInjection);
    ej_links_[static_cast<std::size_t>(c)]->collect_resident(
        out, c, trace::kLinkPortEjection);
  }
}

void Network::set_trace(trace::TraceSink* sink) {
  tap_ = trace::Tap(sink);
  router_blocked_.assign(routers_.size(), 0);
  if (sink != nullptr) {
    sink->set_topology(static_cast<std::uint16_t>(geom_.num_routers()),
                       static_cast<std::uint8_t>(cfg_.mesh_width),
                       static_cast<std::uint8_t>(cfg_.mesh_height),
                       static_cast<std::uint8_t>(cfg_.concentration),
                       static_cast<std::uint8_t>(cfg_.topology));
  }
  for (RouterId r = 0; r < geom_.num_routers(); ++r) {
    for (Direction d : kDirs) {
      if (!has_link(r, d)) continue;
      link(r, d).set_trace(tap_, r, static_cast<std::int8_t>(direction_port(d)));
    }
  }
  for (NodeId c = 0; c < geom_.num_cores(); ++c) {
    inj_links_[static_cast<std::size_t>(c)]->set_trace(
        tap_, c, trace::kLinkPortInjection);
    ej_links_[static_cast<std::size_t>(c)]->set_trace(tap_, c,
                                                      trace::kLinkPortEjection);
  }
  for (auto& r : routers_) r->set_trace(tap_);
  for (auto& ni : nis_) ni->set_trace(tap_);
}

bool Network::try_inject(const PacketInfo& info,
                         const std::vector<std::uint64_t>& payload) {
  HTNOC_EXPECT(info.src_core < geom_.num_cores());
  HTNOC_EXPECT(info.dest_core < geom_.num_cores());
  return nis_[static_cast<std::size_t>(info.src_core)]->try_inject(now_, info,
                                                                   payload);
}

void Network::set_delivery_callback(NetworkInterface::DeliveryCallback cb) {
  for (auto& ni : nis_) ni->set_delivery_callback(cb);
}

Link& Network::link(RouterId from, Direction dir) {
  HTNOC_EXPECT(has_link(from, dir));
  return *mesh_links_[static_cast<std::size_t>(link_index({from, dir}))];
}

bool Network::has_link(RouterId from, Direction dir) const {
  if (from >= geom_.num_routers() || !geom_.has_neighbor(from, dir)) return false;
  return mesh_links_[static_cast<std::size_t>(link_index({from, dir}))] != nullptr;
}

std::vector<LinkRef> Network::all_links() const {
  std::vector<LinkRef> out;
  for (RouterId r = 0; r < geom_.num_routers(); ++r) {
    for (Direction d : kDirs) {
      if (has_link(r, d)) out.push_back({r, d});
    }
  }
  return out;
}

void Network::disable_link(const LinkRef& l) {
  HTNOC_EXPECT(has_link(l.from, l.dir));
  link(l.from, l.dir).set_disabled(true);
  disabled_.insert(l);
  if (tap_.on(trace::Category::kReroute)) {
    tap_.emit(trace::make_event(
        trace::EventType::kLinkDisabled, now_, trace::Scope::kLink, l.from,
        static_cast<std::int8_t>(direction_port(l.dir))));
  }
}

bool Network::would_disconnect(const LinkRef& l) const {
  // Undirected connectivity over healthy edges, treating an edge as dead
  // when either direction is disabled (matching UpDownRouting's rule) and
  // with `l` (both directions) additionally removed.
  const RouterId lfrom = l.from;
  const RouterId lto = geom_.neighbor(l.from, l.dir);
  std::vector<bool> seen(static_cast<std::size_t>(geom_.num_routers()), false);
  std::deque<RouterId> q{0};
  seen[0] = true;
  int reached = 1;
  while (!q.empty()) {
    const RouterId r = q.front();
    q.pop_front();
    for (const Direction d : {Direction::kNorth, Direction::kSouth,
                              Direction::kEast, Direction::kWest}) {
      if (!geom_.has_neighbor(r, d)) continue;
      const RouterId nb = geom_.neighbor(r, d);
      if (seen[static_cast<std::size_t>(nb)]) continue;
      if (disabled_.contains({r, d}) || disabled_.contains({nb, opposite(d)})) {
        continue;
      }
      if ((r == lfrom && nb == lto) || (r == lto && nb == lfrom)) continue;
      seen[static_cast<std::size_t>(nb)] = true;
      ++reached;
      q.push_back(nb);
    }
  }
  return reached != geom_.num_routers();
}

void Network::use_xy_routing() {
  HTNOC_EXPECT(disabled_.empty());
  routing_ = topo_->make_default_routing();
  routing_mode_ = RoutingMode::kDefault;
  for (auto& r : routers_) r->set_routing(routing_.get());
}

void Network::use_west_first_routing() {
  HTNOC_EXPECT(disabled_.empty());
  // West-first's deadlock argument needs the mesh's acyclic channel
  // dependency graph; wrap-around links break it.
  HTNOC_EXPECT(topo_->supports_turn_model());
  // Congestion score of an output: occupied downstream buffer slots plus
  // waiting retransmission slots.
  auto probe = [this](RouterId r, int port) {
    const OutputUnit& out = routers_[static_cast<std::size_t>(r)]->output(port);
    int credits = 0;
    for (int vc = 0; vc < cfg_.vcs_per_port; ++vc) credits += out.credits(vc);
    return cfg_.vcs_per_port * cfg_.buffer_depth - credits + out.occupancy();
  };
  routing_ = std::make_unique<WestFirstRouting>(geom_, probe);
  routing_mode_ = RoutingMode::kWestFirst;
  for (auto& r : routers_) r->set_routing(routing_.get());
}

void Network::use_updown_routing() {
  routing_ = std::make_unique<UpDownRouting>(geom_, disabled_);
  routing_mode_ = RoutingMode::kUpDown;
  for (auto& r : routers_) r->set_routing(routing_.get());
}

std::vector<PacketId> Network::purge_packet(PacketId p) {
  // `work` is both the FIFO worklist and the returned purge order; a packet
  // appears at most once (membership checked on insert, sizes are tiny).
  std::vector<PacketId> work{p};
  // Reusable scratch, cleared per packet. `removed` collects every flit of
  // `cur` removed anywhere; a flit can exist in several places at once
  // (in-flight slot + link phit, or slot + receiver buffer with the ACK in
  // flight), so accounting sorts and deduplicates by uid at the end.
  std::vector<std::uint64_t>& buffered = purge_buffered_scratch_;
  std::vector<std::uint64_t>& removed = purge_removed_scratch_;

  for (std::size_t wi = 0; wi < work.size(); ++wi) {
    const PacketId cur = work[wi];
    buffered.clear();
    removed.clear();

    // Pass 1: sweep phits off every link.
    for (auto& l : mesh_links_) {
      if (l) {
        for (const auto uid : l->purge_packet(cur)) removed.push_back(uid);
      }
    }
    for (auto& l : inj_links_) {
      if (l) {
        for (const auto uid : l->purge_packet(cur)) removed.push_back(uid);
      }
    }
    for (auto& l : ej_links_) {
      if (l) {
        for (const auto uid : l->purge_packet(cur)) removed.push_back(uid);
      }
    }

    // Pass 2: inputs (router ports and NI ejection). Credits return through
    // the normal reverse channels; held output VCs are released here.
    auto absorb = [&](const InputUnit::PurgeResult& res, Router* owner) {
      for (const auto uid : res.buffered_uids) {
        buffered.push_back(uid);
        removed.push_back(uid);
      }
      if (owner != nullptr && res.held_out_port >= 0) {
        owner->output(res.held_out_port).release_vc_if_allocated(res.held_out_vc);
      }
      for (const PacketId dep : res.dependent_packets) {
        if (std::find(work.begin(), work.end(), dep) == work.end()) {
          work.push_back(dep);
        }
      }
    };
    for (auto& r : routers_) {
      for (int port = 0; port < r->num_ports(); ++port) {
        absorb(r->input(port).purge_packet(now_, cur), r.get());
      }
    }
    for (auto& ni : nis_) {
      absorb(ni->purge_ejection(now_, cur), nullptr);
    }

    // Pass 3: outputs (retransmission buffers) and NI source queues, which
    // binary-search `buffered` for ACK-in-flight overlap.
    std::sort(buffered.begin(), buffered.end());
    for (auto& r : routers_) {
      for (int port = 0; port < r->num_ports(); ++port) {
        (void)r->output(port).purge_packet(cur, buffered, &removed);
      }
    }
    for (auto& ni : nis_) {
      (void)ni->purge_injection(now_, cur, buffered, &removed);
    }

    std::sort(removed.begin(), removed.end());
    removed.erase(std::unique(removed.begin(), removed.end()), removed.end());
    const auto distinct = static_cast<std::uint64_t>(removed.size());
    ++purge_totals_.packets;
    purge_totals_.flits += distinct;
    if (audit_ != nullptr) audit_->on_flits_purged(now_, cur, removed);
    if (tap_.on(trace::Category::kPurge)) {
      trace::Event e = trace::make_event(trace::EventType::kPacketPurged, now_,
                                         trace::Scope::kNetwork, 0);
      e.packet = cur;
      e.arg = distinct;
      tap_.emit(e);
    }
  }
  return work;
}

bool Network::packet_in_flight(PacketId p) const {
  for (const auto& r : routers_) {
    for (int port = 0; port < r->num_ports(); ++port) {
      if (r->input(port).has_packet(p) || r->output(port).has_packet(p)) {
        return true;
      }
    }
  }
  for (const auto& l : mesh_links_) {
    if (l && l->has_packet(p)) return true;
  }
  for (const auto& l : inj_links_) {
    if (l && l->has_packet(p)) return true;
  }
  for (const auto& l : ej_links_) {
    if (l && l->has_packet(p)) return true;
  }
  return false;
}

namespace {

/// One hop's credit-conservation check (see Network::check_invariants).
std::string check_hop(const OutputUnit& out, const Link& link,
                      const InputUnit& in, int vcs, int depth,
                      const std::string& where) {
  for (int vc = 0; vc < vcs; ++vc) {
    const int credits = out.credits(vc);
    const int wire_credits = link.pending_credit_count(static_cast<VcId>(vc));
    const int slots = out.slots_with_vc(vc);
    const int buffered = in.count_buffered(vc);
    int overlap = 0;
    for (const std::uint64_t uid : out.inflight_uids(vc)) {
      if (in.has_buffered_uid(uid)) ++overlap;
    }
    const int total = credits + wire_credits + slots + buffered - overlap;
    if (total != depth) {
      return where + " vc" + std::to_string(vc) + ": credits " +
             std::to_string(credits) + " + wire " +
             std::to_string(wire_credits) + " + slots " +
             std::to_string(slots) + " + buffered " +
             std::to_string(buffered) + " - overlap " +
             std::to_string(overlap) + " != depth " + std::to_string(depth);
    }
  }
  return {};
}

}  // namespace

std::string Network::check_invariants() const {
  const int vcs = cfg_.vcs_per_port;
  const int depth = cfg_.buffer_depth;
  // Inter-router hops.
  for (RouterId r = 0; r < geom_.num_routers(); ++r) {
    for (const Direction d :
         {Direction::kNorth, Direction::kSouth, Direction::kEast,
          Direction::kWest}) {
      if (!has_link(r, d)) continue;
      const Link& l = *mesh_links_[static_cast<std::size_t>(link_index({r, d}))];
      const RouterId nb = geom_.neighbor(r, d);
      const std::string err = check_hop(
          routers_[static_cast<std::size_t>(r)]->output(direction_port(d)), l,
          routers_[static_cast<std::size_t>(nb)]->input(
              direction_port(opposite(d))),
          vcs, depth, "r" + std::to_string(r) + "->" + to_string(d));
      if (!err.empty()) return err;
    }
  }
  // NI injection and ejection hops.
  for (NodeId c = 0; c < geom_.num_cores(); ++c) {
    const RouterId r = geom_.router_of_core(c);
    const int port = kPortLocalBase + geom_.local_slot_of_core(c);
    auto& ni = *nis_[static_cast<std::size_t>(c)];
    std::string err =
        check_hop(ni.injection_port(), *inj_links_[static_cast<std::size_t>(c)],
                  routers_[static_cast<std::size_t>(r)]->input(port), vcs,
                  depth, "inj.c" + std::to_string(c));
    if (!err.empty()) return err;
    err = check_hop(routers_[static_cast<std::size_t>(r)]->output(port),
                    *ej_links_[static_cast<std::size_t>(c)],
                    ni.ejection_port(), vcs, depth,
                    "ej.c" + std::to_string(c));
    if (!err.empty()) return err;
  }
  return {};
}

Network::UtilizationSample Network::sample_utilization() const {
  UtilizationSample s;
  s.cycle = now_;
  for (const auto& r : routers_) {
    s.input_port_flits += r->input_occupancy();
    s.output_port_flits += r->output_occupancy();
    if (r->any_port_blocked(now_)) ++s.routers_with_blocked_port;
  }
  for (RouterId r = 0; r < geom_.num_routers(); ++r) {
    int full = 0;
    for (int slot = 0; slot < geom_.concentration(); ++slot) {
      const auto& ni = *nis_[static_cast<std::size_t>(geom_.core_at(r, slot))];
      if (ni.injection_full()) ++full;
    }
    if (full == geom_.concentration()) ++s.routers_all_cores_full;
    if (2 * full > geom_.concentration()) ++s.routers_majority_cores_full;
  }
  for (const auto& ni : nis_) s.injection_port_flits += ni->injection_occupancy();
  return s;
}

std::uint64_t Network::packets_delivered() const {
  std::uint64_t n = 0;
  for (const auto& ni : nis_) n += ni->stats().packets_delivered;
  return n;
}

std::uint64_t Network::packets_injected() const {
  std::uint64_t n = 0;
  for (const auto& ni : nis_) n += ni->stats().packets_injected;
  return n;
}

bool Network::quiescent() const {
  for (const auto& r : routers_) {
    if (r->input_occupancy() != 0 || r->output_occupancy() != 0) return false;
  }
  for (const auto& ni : nis_) {
    if (ni->injection_occupancy() != 0) return false;
  }
  for (const auto& l : mesh_links_) {
    if (l && !l->idle()) return false;
  }
  for (const auto& l : inj_links_) {
    if (l && !l->idle()) return false;
  }
  for (const auto& l : ej_links_) {
    if (l && !l->idle()) return false;
  }
  return true;
}

}  // namespace htnoc
