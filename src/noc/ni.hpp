// Network interface (NI): the injection/ejection endpoint for one core.
//
// Injection uses the same OutputUnit + link machinery as a router output
// port (ECC, retransmission, credits), so a trojan attached to a local link
// is handled uniformly. The injection queue in front of it is the paper's
// "injection port"; Fig. 11/12 classify routers by how many of their cores'
// injection queues are full.
//
// Under TDM QoS each domain owns its own source queue and VC-allocation
// cursor so a wedged domain cannot head-of-line-block the other (the
// SurfNoC-style non-interference Fig. 12a depends on).
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "common/config.hpp"
#include "noc/input_unit.hpp"
#include "noc/output_unit.hpp"
#include "noc/pool.hpp"
#include "noc/protocol.hpp"

namespace htnoc::verify {
struct StateCodec;  // snapshot/restore (src/verify/snapshot.cpp)
}

namespace htnoc {

class NetworkInterface {
 public:
  /// Invoked when a packet fully reassembles at its destination.
  using DeliveryCallback =
      std::function<void(Cycle now, const PacketInfo& info, Cycle latency)>;

  struct Stats {
    std::uint64_t packets_injected = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t flits_delivered = 0;
    std::uint64_t inject_rejects = 0;  ///< try_inject refused: queue full.
  };

  NetworkInterface(const NocConfig& cfg, NodeId core)
      : cfg_(cfg),
        core_(core),
        out_(cfg, "ni" + std::to_string(core) + ".inj"),
        in_(cfg, kInvalidRouter, /*port=*/-1) {}

  /// Wire the NI to its router's local port pair.
  void connect(Link* to_router, Link* from_router) {
    out_.connect(to_router);
    in_.connect(from_router);
  }

  void set_delivery_callback(DeliveryCallback cb) { on_delivery_ = std::move(cb); }

  /// Install (or clear) the flit-accounting observer (see FlitAuditObserver).
  void set_audit(FlitAuditObserver* audit) { audit_ = audit; }

  /// Queue a packet for injection. Atomic: either all flits fit in the
  /// (per-domain) source queue or the call is rejected (the paper's "core
  /// full" state).
  bool try_inject(Cycle now, const PacketInfo& info,
                  const std::vector<std::uint64_t>& payload);

  /// Flits waiting at the injection port (source queues + retransmission
  /// buffer of the local link) — the paper's injection-port utilization.
  [[nodiscard]] int injection_occupancy() const {
    int n = out_.occupancy();
    for (const auto& s : streams_) n += static_cast<int>(s.queue.size());
    return n;
  }

  /// True while the injection port is refusing work: the last try_inject
  /// bounced and nothing has been accepted since (the paper's "core full"
  /// deadlock condition for Figs. 11/12).
  [[nodiscard]] bool injection_full() const { return saturated_; }

  /// Drain phase of the two-phase step (see Router::drain).
  void drain(Cycle now);
  /// Compute phase: control, ejection, injection, LT over the staged
  /// messages. Delivery effects that touch shared state — the audit
  /// observer and the delivery callback, both of which reach into
  /// traffic-layer/auditor state owned by the main thread — are staged
  /// per-NI; the network flushes them in core order (flush_ejections).
  void compute(Cycle now);
  /// Invoke the staged audit/delivery notifications in ejection order.
  /// Called by Network::step on the main thread, NIs in core order, which
  /// reproduces the serial interleaved call sequence exactly (delivery
  /// callbacks never feed back into same-cycle NI state: replies go to the
  /// generator backlog and inject on a later generator step).
  void flush_ejections(Cycle now);

  /// Advance one cycle (serial drain + compute + flush, for standalone
  /// use; Network sequences the three explicitly).
  void step(Cycle now);

  /// Active-set check (see Router::has_work): false only when stepping
  /// would be a no-op — empty source queues, no retransmission slots, no
  /// buffered ejection flits, no phit inbound on the ejection link, no
  /// credit/ACK inbound on the injection link.
  [[nodiscard]] bool has_work() const {
    if (injection_occupancy() != 0 || in_.occupancy() != 0) return true;
    const Link* ej = in_.link();
    if (ej != nullptr && !ej->idle()) return true;
    const Link* inj = out_.link();
    return inj != nullptr && inj->has_reverse_traffic();
  }

  /// Purge pass over the ejection input (run before purge_injection so the
  /// buffered-uid set is complete).
  [[nodiscard]] InputUnit::PurgeResult purge_ejection(Cycle now, PacketId p) {
    return in_.purge_packet(now, p);
  }
  /// Purge pass over the source queues and local-link retransmission buffer.
  /// `buffered_uids` must be sorted ascending (see OutputUnit::purge_packet).
  /// Appends purged flit uids to `removed_uids` when non-null.
  int purge_injection(Cycle now, PacketId p,
                      const std::vector<std::uint64_t>& buffered_uids,
                      std::vector<std::uint64_t>* removed_uids = nullptr);

  /// Install the trace tap: injection block/unblock transitions plus the
  /// NI-side ECC/retransmission machinery, filed under this core's track.
  void set_trace(trace::Tap tap) {
    tap_ = tap;
    out_.set_trace(tap, trace::Scope::kCore, core_, /*port=*/-1);
    in_.set_trace(tap, trace::Scope::kCore, core_);
  }

  /// Audit census: append every flit waiting in the source queues. The
  /// injection-port OutputUnit and ejection-port InputUnit are walked
  /// separately by the network.
  void collect_source_resident(std::vector<ResidentFlit>& out) const {
    for (const auto& s : streams_) {
      for (const Flit& f : s.queue) {
        out.push_back({f.flit_uid(), f.packet, FlitSite::kNiSourceQueue,
                       core_, -1});
      }
    }
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] NodeId core() const noexcept { return core_; }
  [[nodiscard]] OutputUnit& injection_port() noexcept { return out_; }
  [[nodiscard]] InputUnit& ejection_port() noexcept { return in_; }
  [[nodiscard]] const OutputUnit& injection_port() const noexcept {
    return out_;
  }
  [[nodiscard]] const InputUnit& ejection_port() const noexcept { return in_; }

 private:
  friend struct htnoc::verify::StateCodec;

  /// Per-domain injection stream (index 0 also serves non-TDM operation).
  struct DomainStream {
    pool::Ring<Flit> queue;  ///< Contiguous source queue (src/noc/pool.hpp).
    int out_vc = -1;                      ///< VC held by the streaming packet.
    PacketId packet = kInvalidPacket;     ///< Packet holding that VC.
  };

  [[nodiscard]] DomainStream& stream_of(TdmDomain d) {
    return streams_[cfg_.tdm_enabled && d == TdmDomain::kD2 ? 1 : 0];
  }

  void step_injection(Cycle now);
  void step_domain_injection(Cycle now, DomainStream& s);
  void step_ejection(Cycle now);

  /// One delivered flit's deferred shared-state effects (see compute()).
  /// `audit_calls` is normally 1; the DOUBLE_DELIVER mutation stages the
  /// duplicated observer call so the self-test still fires under staging.
  struct PendingEjection {
    Flit flit;
    std::uint8_t audit_calls = 1;
    bool deliver_tail = false;  ///< Invoke the delivery callback.
  };

  const NocConfig& cfg_;
  NodeId core_;
  OutputUnit out_;  ///< Toward the router's local input port.
  InputUnit in_;    ///< From the router's local output port.
  std::array<DomainStream, 2> streams_;
  std::vector<PendingEjection> pending_ejections_;
  bool saturated_ = false;  ///< Last try_inject was rejected.
  trace::Tap tap_;
  DeliveryCallback on_delivery_;
  FlitAuditObserver* audit_ = nullptr;
  Stats stats_;
};

}  // namespace htnoc
