// Persistent worker pool for the intra-cycle parallel step. One dispatch
// runs a shard function over every shard and joins — Network::step issues
// two dispatches per cycle (drain, compute), which gives the phase barrier
// the determinism contract needs. The caller thread executes shard 0, so a
// pool of N shards spawns N-1 threads.
//
// Wake-up and completion use a mutex + condition variables rather than spin
// barriers: the per-phase work on meshes worth parallelizing is tens of
// microseconds per shard, so a few microseconds of wake latency is noise,
// while spinning would burn whole scheduler quanta when step-level threads
// share cores with sweep-level workers (see docs/SCALING.md).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace htnoc {

class StepPool {
 public:
  /// A pool of `shards` shards (>= 1); spawns shards - 1 worker threads.
  explicit StepPool(int shards);
  ~StepPool();

  StepPool(const StepPool&) = delete;
  StepPool& operator=(const StepPool&) = delete;

  /// Execute fn(shard) for every shard in [0, shards()) and join. The
  /// first exception in shard order is rethrown after all shards finish
  /// (deterministic: the same scenario throws the same violation whichever
  /// worker hits it first).
  void run(const std::function<void(int)>& fn);

  [[nodiscard]] int shards() const noexcept { return shards_; }

 private:
  void worker_main(int shard);
  void execute(int shard, const std::function<void(int)>& fn);

  int shards_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* task_ = nullptr;  // valid for one epoch
  std::uint64_t epoch_ = 0;
  int pending_ = 0;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;  // slot per shard
  std::vector<std::thread> threads_;
};

}  // namespace htnoc
