// Input port of a router (or network interface): ECC decoding, ACK/NACK
// generation, threat-detector observation, de-obfuscation (including the
// scramble station that waits for partner flits), and the per-VC buffers.
//
// Because the link-level retransmission protocol can legally reorder flits
// (a NACKed flit is overtaken by its successors, paper Fig. 7), each VC
// buffer holds per-packet streams with flits kept sorted by sequence
// number; only the in-order next flit of the front stream is forwardable.
//
// Storage is data-oriented (docs/PERFORMANCE.md): every buffered flit lives
// in this port's FlitArena and streams thread through it as seq-sorted
// intrusive lists of generation-checked handles, so stepping never
// allocates and the stream metadata the router's RC/VA/SA stages scan every
// cycle is a small contiguous ring per VC.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/expect.hpp"
#include "ecc/codec.hpp"
#include "noc/hooks.hpp"
#include "noc/link.hpp"
#include "noc/obfuscation.hpp"
#include "noc/pool.hpp"

namespace htnoc::verify {
struct StateCodec;  // snapshot/restore (src/verify/snapshot.cpp)
}

namespace htnoc {

class InputUnit {
 public:
  /// All buffered flits of one packet within one VC. The flits themselves
  /// sit in the port's FlitArena; the stream holds the head/tail of a
  /// seq-sorted intrusive list plus mirrored head-of-list facts
  /// (`front_seq`) so the allocator stages can test forwardability without
  /// touching the arena.
  struct PacketStream {
    enum class State : std::uint8_t {
      kNeedRoute,  ///< Head flit not yet routed.
      kWaitVA,     ///< Routed; waiting for an output VC.
      kActive,     ///< Output VC held; flits forwardable in order.
    };

    PacketId packet = kInvalidPacket;
    pool::FlitHandle head;  ///< First buffered flit (lowest seq), or null.
    pool::FlitHandle tail;  ///< Last buffered flit (highest seq), or null.
    int flit_count = 0;
    int front_seq = -1;  ///< Seq of the head flit; -1 when empty.
    int next_seq = 0;    ///< Next sequence number to forward.
    State state = State::kNeedRoute;
    int out_port = -1;
    bool phase_down_next = false;  ///< up*/down* phase after the routed hop.
    int out_vc = -1;
    Cycle va_eligible = 0;
    Cycle sa_eligible = 0;

    /// True when the in-order next flit is buffered at the front.
    [[nodiscard]] bool next_flit_present() const {
      return flit_count > 0 && front_seq == next_seq;
    }
    [[nodiscard]] bool head_present() const {
      return flit_count > 0 && front_seq == 0 && next_seq == 0;
    }
  };

  struct VcBuf {
    pool::Ring<PacketStream> streams;
    int occupancy = 0;  ///< Buffered flits, including scramble-station holds.
  };

  struct Stats {
    std::uint64_t flits_received = 0;
    std::uint64_t nacks_sent = 0;
    std::uint64_t corrected_singles = 0;
    std::uint64_t silent_corruptions = 0;
    std::uint64_t scramble_stalls = 0;
  };

  InputUnit(const NocConfig& cfg, RouterId router, int port)
      : cfg_(cfg),
        codec_(cfg.ecc_scheme),
        router_(router),
        port_(port),
        vcs_(static_cast<std::size_t>(cfg.vcs_per_port)) {}

  void connect(Link* in_link) {
    HTNOC_EXPECT(in_link != nullptr);
    link_ = in_link;
  }
  void set_detector(ThreatDetector* det) { detector_ = det; }

  /// Install the trace tap with this unit's track identity (router port or
  /// NI core — NIs reuse InputUnit with an invalid router id).
  void set_trace(trace::Tap tap, trace::Scope scope, std::uint16_t node) {
    tap_ = tap;
    trace_scope_ = scope;
    trace_node_ = node;
  }

  /// Drain phase of the two-phase step: pop this cycle's due phits off the
  /// link into unit-local staging. Pure pops — no decoding, no sends, no
  /// trace events — so concurrent shards never write a queue another shard
  /// reads (see Network::step).
  void drain_link(Cycle now) {
    if (link_ != nullptr) link_->drain_arrivals(now, staged_arrivals_);
  }

  /// Compute phase: decode, ack/nack, de-obfuscate and buffer the staged
  /// phits. All link interactions here are sends (single writer). When the
  /// router batch-decoded this port's staged codewords already (the SECDED
  /// lane batching in Router::compute), `predecoded` points at one
  /// DecodeResult per staged phit, in staging order; null means decode
  /// inline per phit (NI path, standalone units).
  void process_staged(Cycle now,
                      const ecc::DecodeResult* predecoded = nullptr);

  /// Pull this cycle's phit arrivals off the link: decode, ack/nack,
  /// de-obfuscate, buffer. Serial convenience wrapper (drain + compute) for
  /// standalone unit use.
  void process_arrivals(Cycle now) {
    drain_link(now);
    process_staged(now);
  }

  /// Staged phits awaiting the compute phase (the router's batched-decode
  /// gather reads the codewords out in staging order).
  [[nodiscard]] std::size_t staged_count() const noexcept {
    return staged_arrivals_.size();
  }
  void append_staged_codewords(std::vector<Codeword72>& out) const {
    for (const LinkPhit& p : staged_arrivals_) out.push_back(p.codeword);
  }

  [[nodiscard]] int num_vcs() const { return cfg_.vcs_per_port; }
  [[nodiscard]] VcBuf& vcbuf(int vc) { return vcs_[static_cast<std::size_t>(vc)]; }
  [[nodiscard]] const VcBuf& vcbuf(int vc) const {
    return vcs_[static_cast<std::size_t>(vc)];
  }

  /// Head flit of the front stream of `vc` (RC/VA/SA stages). The front
  /// stream must be non-empty.
  [[nodiscard]] const Flit& front_flit(int vc) const {
    const PacketStream& s = vcs_[static_cast<std::size_t>(vc)].streams.front();
    return arena_.flit(s.head);
  }
  /// Effective arrival cycle of that head flit (BW-stage gate).
  [[nodiscard]] Cycle front_arrival(int vc) const {
    const PacketStream& s = vcs_[static_cast<std::size_t>(vc)].streams.front();
    return arena_.arrival(s.head);
  }

  /// Total buffered flits across VCs (the paper's input-port utilization).
  [[nodiscard]] int occupancy() const {
    int n = 0;
    for (const auto& v : vcs_) n += v.occupancy;
    return static_cast<int>(n + station_.size());
  }

  /// True when the front stream of `vc` has its in-order flit ready for SA
  /// (buffer-write stage complete) this cycle.
  [[nodiscard]] bool front_flit_ready(Cycle now, int vc) const {
    const VcBuf& b = vcs_[static_cast<std::size_t>(vc)];
    if (b.streams.empty()) return false;
    const PacketStream& s = b.streams.front();
    return s.next_flit_present() &&
           arena_.arrival(s.head) + static_cast<Cycle>(cfg_.stage_bw_rc) <= now;
  }

  /// Pop the in-order next flit of the front stream of `vc` (ST stage).
  /// Returns the flit and sends a credit upstream; completed streams are
  /// retired.
  [[nodiscard]] Flit pop_front_flit(Cycle now, int vc);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] RouterId router() const noexcept { return router_; }
  [[nodiscard]] int port() const noexcept { return port_; }
  [[nodiscard]] Link* link() const noexcept { return link_; }
  [[nodiscard]] const pool::FlitArena& arena() const noexcept { return arena_; }

  /// Result of purging one packet from this input (link-disable recovery).
  struct PurgeResult {
    int flits_purged = 0;
    std::vector<std::uint64_t> buffered_uids;  ///< uids removed from buffers.
    /// Output VC the purged stream held (kActive), to be released by the
    /// router: (out_port, out_vc); (-1,-1) when none.
    int held_out_port = -1;
    int held_out_vc = -1;
    /// Packets whose scrambled phits were waiting on a purged partner and
    /// are now unrecoverable; the caller must purge them too.
    std::vector<PacketId> dependent_packets;
  };

  /// Remove all flits of `p` from buffers and the scramble station. Each
  /// removed flit returns its credit upstream through the normal reverse
  /// channel.
  [[nodiscard]] PurgeResult purge_packet(Cycle now, PacketId p);

  /// Buffered flits charged against VC `vc`'s credits (streams + scramble
  /// station holds).
  [[nodiscard]] int count_buffered(int vc) const {
    int n = vcs_[static_cast<std::size_t>(vc)].occupancy;
    for (const auto& e : station_) {
      if (e.phit.flit.vc == vc) ++n;
    }
    return n;
  }

  [[nodiscard]] bool has_buffered_uid(std::uint64_t uid) const {
    for (const auto& v : vcs_) {
      for (const auto& s : v.streams) {
        for (pool::FlitHandle h = s.head; !h.null(); h = arena_.next(h)) {
          if (arena_.flit(h).flit_uid() == uid) return true;
        }
      }
    }
    for (const auto& e : station_) {
      if (e.phit.flit.flit_uid() == uid) return true;
    }
    return false;
  }

  /// Audit census: append every buffered flit (VC streams + scramble
  /// station), labelled with the caller-supplied identity. Iteration order
  /// — VCs ascending, streams FIFO, flits seq-ascending — is part of the
  /// census-digest contract and matches the pre-pool deque layout.
  void collect_resident(std::vector<ResidentFlit>& out, std::uint16_t node,
                        std::int8_t port) const {
    for (const auto& v : vcs_) {
      for (const auto& s : v.streams) {
        for (pool::FlitHandle h = s.head; !h.null(); h = arena_.next(h)) {
          const Flit& f = arena_.flit(h);
          out.push_back(
              {f.flit_uid(), f.packet, FlitSite::kInputBuffer, node, port});
        }
      }
    }
    for (const auto& e : station_) {
      out.push_back({e.phit.flit.flit_uid(), e.phit.flit.packet,
                     FlitSite::kScrambleStation, node, port});
    }
  }

  [[nodiscard]] bool has_packet(PacketId p) const {
    for (const auto& v : vcs_) {
      for (const auto& s : v.streams) {
        if (s.packet == p && s.flit_count > 0) return true;
      }
    }
    for (const auto& e : station_) {
      if (e.phit.flit.packet == p) return true;
    }
    return false;
  }

 private:
  friend struct htnoc::verify::StateCodec;

  /// Insert a fully recovered flit into its VC buffer.
  void deliver(Cycle effective_arrival, Flit f);
  /// Record a clean wire word and resolve any scrambled phits waiting on it.
  void note_clean_wire(Cycle now, PacketId packet, int seq, std::uint64_t wire);
  /// Seq-sorted insertion into a stream's arena list.
  void stream_insert(PacketStream& s, const Flit& f, Cycle arrival);

  struct StationEntry {
    LinkPhit phit;
    std::uint64_t decoded_word = 0;
    Cycle arrived = 0;
  };
  struct CachedWire {
    PacketId packet = kInvalidPacket;
    int seq = 0;
    std::uint64_t wire = 0;
  };

  static constexpr std::size_t kWireCacheSize = 32;

  const NocConfig& cfg_;
  ecc::CodecDispatch codec_;  ///< Scheme resolved once; no per-phit vcall.
  RouterId router_;
  int port_;
  Link* link_ = nullptr;
  ThreatDetector* detector_ = nullptr;
  trace::Tap tap_;
  trace::Scope trace_scope_ = trace::Scope::kRouter;
  std::uint16_t trace_node_ = 0;
  pool::FlitArena arena_;  ///< Owns every VC-buffered flit of this port.
  std::vector<VcBuf> vcs_;
  std::vector<LinkPhit> staged_arrivals_;  ///< Drained, not yet processed.
  std::vector<StationEntry> station_;
  pool::Ring<CachedWire> wire_cache_;
  Stats stats_;
};

}  // namespace htnoc
