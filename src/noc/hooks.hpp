// Interfaces through which the mitigation layer (threat detector, L-Ob
// controller) plugs into the router datapath. The NoC substrate only knows
// these interfaces; the real implementations live in src/mitigation and are
// wired in by the simulator, keeping the layering acyclic (noc <- mitigation).
#pragma once

#include "common/types.hpp"
#include "ecc/secded.hpp"
#include "noc/flit.hpp"

namespace htnoc {

/// Everything the receiving router knows about one faulty/clean arrival:
/// the decode report (syndrome), the flit's packet characteristics, how it
/// was obfuscated and which transmission attempt this was. Mirrors the
/// fields the paper's threat detector records (Sec. IV-B).
struct FaultObservation {
  Cycle now = 0;
  RouterId receiver = kInvalidRouter;
  int in_port = 0;
  Flit flit;
  ecc::DecodeResult ecc;
  ObfuscationTag obf;
  int attempt = 0;
};

/// What the threat detector piggybacks on a NACK for the upstream router.
struct NackAdvice {
  /// Enable (or advance to the next) switch-to-switch obfuscation method on
  /// the retransmission — the fault pattern looks targeted, not random.
  bool escalate_obfuscation = false;
  /// A BIST scan of the link has been dispatched (repetitive faults might be
  /// a permanent wire failure).
  bool request_bist = false;
};

/// Receiver-side threat detection (Fig. 6 decision flow).
class ThreatDetector {
 public:
  virtual ~ThreatDetector() = default;
  /// ECC detected an uncorrectable error; decide the NACK advice.
  virtual NackAdvice on_uncorrectable(const FaultObservation& obs) = 0;
  /// ECC corrected a single-bit error (transient-fault bookkeeping).
  virtual void on_corrected(const FaultObservation& obs) = 0;
  /// Flit arrived clean (possibly obfuscated; success is logged upstream
  /// through the ACK, this is for receiver-side statistics).
  virtual void on_clean(const FaultObservation& obs) = 0;
};

/// Upstream-side L-Ob obfuscation planner attached to an output port's
/// retransmission buffers (Fig. 4 decision flow).
class LObController {
 public:
  virtual ~LObController() = default;
  /// Choose the obfuscation for one transmission attempt. `escalate` is the
  /// accumulated advice from NACKs of this flit; `partner_available` tells
  /// whether the retransmission buffer holds another flit to scramble with.
  /// When the returned tag is kScramble the caller fills in the partner id.
  [[nodiscard]] virtual ObfuscationTag plan(Cycle now, const Flit& flit, int attempt,
                                            bool escalate, bool partner_available) = 0;
  /// Transmission attempt was ACKed; a non-none tag means the method worked
  /// and is logged for future flits with the same characteristics.
  virtual void on_ack(Cycle now, const Flit& flit, const ObfuscationTag& tag) = 0;
  /// Transmission attempt was NACKed with this tag.
  virtual void on_nack(Cycle now, const Flit& flit, const ObfuscationTag& tag) = 0;
};

/// No-op detector: plain retransmission forever (the paper's "no
/// mitigation" configuration, Fig. 11a).
class NullThreatDetector final : public ThreatDetector {
 public:
  NackAdvice on_uncorrectable(const FaultObservation&) override { return {}; }
  void on_corrected(const FaultObservation&) override {}
  void on_clean(const FaultObservation&) override {}
};

/// No-op L-Ob: never obfuscates.
class NullLObController final : public LObController {
 public:
  ObfuscationTag plan(Cycle, const Flit&, int, bool, bool) override { return {}; }
  void on_ack(Cycle, const Flit&, const ObfuscationTag&) override {}
  void on_nack(Cycle, const Flit&, const ObfuscationTag&) override {}
};

}  // namespace htnoc
