// Interfaces through which the mitigation layer (threat detector, L-Ob
// controller) and the verification layer (invariant auditor) plug into the
// router datapath. The NoC substrate only knows these interfaces; the real
// implementations live in src/mitigation and src/verify and are wired in by
// the simulator, keeping the layering acyclic (noc <- mitigation, verify).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "ecc/secded.hpp"
#include "noc/flit.hpp"

namespace htnoc {

/// Everything the receiving router knows about one faulty/clean arrival:
/// the decode report (syndrome), the flit's packet characteristics, how it
/// was obfuscated and which transmission attempt this was. Mirrors the
/// fields the paper's threat detector records (Sec. IV-B).
struct FaultObservation {
  Cycle now = 0;
  RouterId receiver = kInvalidRouter;
  int in_port = 0;
  Flit flit;
  ecc::DecodeResult ecc;
  ObfuscationTag obf;
  int attempt = 0;
};

/// What the threat detector piggybacks on a NACK for the upstream router.
struct NackAdvice {
  /// Enable (or advance to the next) switch-to-switch obfuscation method on
  /// the retransmission — the fault pattern looks targeted, not random.
  bool escalate_obfuscation = false;
  /// A BIST scan of the link has been dispatched (repetitive faults might be
  /// a permanent wire failure).
  bool request_bist = false;
};

/// Receiver-side threat detection (Fig. 6 decision flow).
class ThreatDetector {
 public:
  virtual ~ThreatDetector() = default;
  /// ECC detected an uncorrectable error; decide the NACK advice.
  virtual NackAdvice on_uncorrectable(const FaultObservation& obs) = 0;
  /// ECC corrected a single-bit error (transient-fault bookkeeping).
  virtual void on_corrected(const FaultObservation& obs) = 0;
  /// Flit arrived clean (possibly obfuscated; success is logged upstream
  /// through the ACK, this is for receiver-side statistics).
  virtual void on_clean(const FaultObservation& obs) = 0;
};

/// Upstream-side L-Ob obfuscation planner attached to an output port's
/// retransmission buffers (Fig. 4 decision flow).
class LObController {
 public:
  virtual ~LObController() = default;
  /// Choose the obfuscation for one transmission attempt. `escalate` is the
  /// accumulated advice from NACKs of this flit; `partner_available` tells
  /// whether the retransmission buffer holds another flit to scramble with.
  /// When the returned tag is kScramble the caller fills in the partner id.
  [[nodiscard]] virtual ObfuscationTag plan(Cycle now, const Flit& flit, int attempt,
                                            bool escalate, bool partner_available) = 0;
  /// Transmission attempt was ACKed; a non-none tag means the method worked
  /// and is logged for future flits with the same characteristics.
  virtual void on_ack(Cycle now, const Flit& flit, const ObfuscationTag& tag) = 0;
  /// Transmission attempt was NACKed with this tag.
  virtual void on_nack(Cycle now, const Flit& flit, const ObfuscationTag& tag) = 0;
};

/// Where a resident flit was found during an audit census walk over the
/// whole fabric (see Network::collect_resident).
enum class FlitSite : std::uint8_t {
  kInputBuffer,      ///< Router/NI input VC buffer.
  kScrambleStation,  ///< Held awaiting its scramble partner.
  kRetransSlot,      ///< Output-port retransmission buffer.
  kLinkPhit,         ///< In flight on a link's forward wires.
  kNiSourceQueue,    ///< Queued at an NI injection port.
};

[[nodiscard]] constexpr const char* to_string(FlitSite s) noexcept {
  switch (s) {
    case FlitSite::kInputBuffer: return "input_buffer";
    case FlitSite::kScrambleStation: return "scramble_station";
    case FlitSite::kRetransSlot: return "retrans_slot";
    case FlitSite::kLinkPhit: return "link_phit";
    case FlitSite::kNiSourceQueue: return "ni_source_queue";
  }
  return "?";
}

/// One census observation: flit `uid` of `packet` found at `site`.
/// `node` is the owning router (or core for NI/local-link sites), `port`
/// the router port or direction, -1 when not applicable. A flit may
/// legitimately appear at several sites at once (retransmission slot +
/// link phit, or slot + receiver buffer with the ACK in flight).
struct ResidentFlit {
  std::uint64_t uid = 0;
  PacketId packet = kInvalidPacket;
  FlitSite site = FlitSite::kInputBuffer;
  std::uint16_t node = 0;
  std::int8_t port = -1;
};

/// Exactly-once flit accounting hooks. The network and its NIs notify the
/// observer of every event that changes a flit's lifecycle state; the
/// census walk (Network::collect_resident) provides the other half of the
/// ledger. Implemented by verify::NetworkInvariantAuditor; the substrate
/// only pays a null-pointer check when no auditor is installed.
class FlitAuditObserver {
 public:
  virtual ~FlitAuditObserver() = default;
  /// A packet was accepted into an NI source queue; all `info.length`
  /// flit uids become resident.
  virtual void on_packet_injected(Cycle now, const PacketInfo& info) = 0;
  /// One flit was consumed by the destination NI's ejection sink.
  virtual void on_flit_delivered(Cycle now, const Flit& flit) = 0;
  /// Packet `p` was purged network-wide; `uids` lists the distinct flits
  /// actually removed (sorted ascending, deduplicated).
  virtual void on_flits_purged(Cycle now, PacketId p,
                               const std::vector<std::uint64_t>& uids) = 0;
};

/// No-op detector: plain retransmission forever (the paper's "no
/// mitigation" configuration, Fig. 11a).
class NullThreatDetector final : public ThreatDetector {
 public:
  NackAdvice on_uncorrectable(const FaultObservation&) override { return {}; }
  void on_corrected(const FaultObservation&) override {}
  void on_clean(const FaultObservation&) override {}
};

/// No-op L-Ob: never obfuscates.
class NullLObController final : public LObController {
 public:
  ObfuscationTag plan(Cycle, const Flit&, int, bool, bool) override { return {}; }
  void on_ack(Cycle, const Flit&, const ObfuscationTag&) override {}
  void on_nack(Cycle, const Flit&, const ObfuscationTag&) override {}
};

}  // namespace htnoc
