#include "noc/step_pool.hpp"

#include "common/expect.hpp"

namespace htnoc {

StepPool::StepPool(int shards) : shards_(shards) {
  HTNOC_EXPECT(shards >= 1);
  errors_.resize(static_cast<std::size_t>(shards_));
  threads_.reserve(static_cast<std::size_t>(shards_ - 1));
  for (int s = 1; s < shards_; ++s) {
    threads_.emplace_back([this, s] { worker_main(s); });
  }
}

StepPool::~StepPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void StepPool::execute(int shard, const std::function<void(int)>& fn) {
  try {
    fn(shard);
  } catch (...) {
    // Slot write is per-shard; the pending_ handshake under mu_ publishes
    // it to the dispatcher.
    errors_[static_cast<std::size_t>(shard)] = std::current_exception();
  }
}

void StepPool::worker_main(int shard) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      fn = task_;
    }
    execute(shard, *fn);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void StepPool::run(const std::function<void(int)>& fn) {
  if (shards_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &fn;
    pending_ = shards_ - 1;
    ++epoch_;
  }
  cv_work_.notify_all();
  execute(0, fn);
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    task_ = nullptr;
  }
  for (std::exception_ptr& e : errors_) {
    if (e) {
      const std::exception_ptr first = e;
      for (std::exception_ptr& r : errors_) r = nullptr;
      std::rethrow_exception(first);
    }
  }
}

}  // namespace htnoc
