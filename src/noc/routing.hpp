// Routing functions. Output-port numbering convention used across the
// router: 0..3 = N,S,E,W; 4+k = local (ejection) port for concentration
// slot k.
#pragma once

#include <memory>
#include <string>

#include "common/geometry.hpp"
#include "common/types.hpp"
#include "noc/flit.hpp"

namespace htnoc {

inline constexpr int kPortNorth = 0;
inline constexpr int kPortSouth = 1;
inline constexpr int kPortEast = 2;
inline constexpr int kPortWest = 3;
inline constexpr int kPortLocalBase = 4;

[[nodiscard]] constexpr Direction port_direction(int port) noexcept {
  return static_cast<Direction>(port);
}
[[nodiscard]] constexpr int direction_port(Direction d) noexcept {
  return static_cast<int>(d);
}
[[nodiscard]] constexpr bool is_local_port(int port) noexcept {
  return port >= kPortLocalBase;
}

/// Result of a route computation.
struct RouteDecision {
  int out_port = -1;          ///< -1 when unroutable (link failures cut the path).
  bool next_phase_down = false;  ///< up*/down* phase after taking this hop.
};

/// Pure routing function interface (RC stage).
class RoutingFunction {
 public:
  virtual ~RoutingFunction() = default;
  /// Decide the output port at router `here` for flit `f`.
  [[nodiscard]] virtual RouteDecision route(RouterId here, const Flit& f) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Deterministic dimension-order (x then y) routing — the paper's baseline.
class XyRouting final : public RoutingFunction {
 public:
  explicit XyRouting(const MeshGeometry& geom) : geom_(geom) {}

  [[nodiscard]] RouteDecision route(RouterId here, const Flit& f) const override {
    if (f.dest_router == here) {
      return {kPortLocalBase + geom_.local_slot_of_core(f.dest_core), false};
    }
    const MeshCoord c = geom_.coord_of(here);
    const MeshCoord d = geom_.coord_of(f.dest_router);
    if (d.x > c.x) return {kPortEast, false};
    if (d.x < c.x) return {kPortWest, false};
    if (d.y > c.y) return {kPortSouth, false};
    return {kPortNorth, false};
  }

  [[nodiscard]] std::string name() const override { return "xy"; }

 private:
  MeshGeometry geom_;
};

}  // namespace htnoc
