#include "noc/output_unit.hpp"

#include <algorithm>

#include "noc/protocol.hpp"

namespace htnoc {

int OutputUnit::purge_packet(PacketId p,
                             const std::vector<std::uint64_t>& buffered_uids,
                             std::vector<std::uint64_t>* removed_uids) {
  int purged = 0;
#ifdef HTNOC_MUTATION_PURGE_SLOT_LEAK
  // Mutation self-test: leave the first matching slot behind — no erase, no
  // credit restore, no accounting. Credit conservation stays balanced (the
  // slot still "owns" its consumed credit); the stale slot is the leak
  // (verify: kPurgeLeak).
  bool leaked_one = false;
#endif
  for (std::size_t i = 0; i < meta_.size();) {
    if (meta_[i].packet != p) {
      ++i;
      continue;
    }
#ifdef HTNOC_MUTATION_PURGE_SLOT_LEAK
    if (!leaked_one) {
      leaked_one = true;
      ++i;
      continue;
    }
#endif
    const std::uint64_t uid = payload_[i].flit.flit_uid();
    if (removed_uids != nullptr) {
      removed_uids->push_back(uid);
    }
    // A waiting slot's flit exists only here; an in-flight one is either on
    // the link / NACK-pending (credit restored directly) or buffered at the
    // receiver (credit returns via the reverse channel during its purge).
    const bool credit_via_receiver =
        meta_[i].state == SlotState::kInFlight &&
        std::binary_search(buffered_uids.begin(), buffered_uids.end(), uid);
    if (!credit_via_receiver) {
      auto& c = credits_[static_cast<std::size_t>(meta_[i].vc)];
      HTNOC_INVARIANT(c < cfg_.buffer_depth);
      ++c;
    }
    erase_slot(i);
    ++purged;
  }
  return purged;
}

int OutputUnit::find_slot(PacketId packet, int seq, SlotState state) {
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    const SlotMeta& m = meta_[i];
    if (m.packet == packet && m.seq == seq && m.state == state) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool OutputUnit::plan_lt(Cycle now) {
  planned_slot_ = -1;
  if (link_ == nullptr || !link_->can_send(now)) return false;

  // Oldest eligible waiting slot wins; retransmissions are naturally the
  // oldest entries, giving them the priority the protocol needs.
  int chosen = -1;
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    const SlotMeta& m = meta_[i];
    if (m.state != SlotState::kWaiting || m.eligible > now) continue;
    if (cfg_.tdm_enabled && !tdm_slot_allows(m.domain, now)) continue;
    chosen = static_cast<int>(i);
    break;
  }
  if (chosen < 0) return false;
  SlotMeta& m = meta_[static_cast<std::size_t>(chosen)];
  const Flit& flit = payload_[static_cast<std::size_t>(chosen)].flit;

  // A scramble partner must be another waiting slot behind this one.
  int partner_idx = -1;
  if (!m.forced_plain) {
    for (std::size_t j = static_cast<std::size_t>(chosen) + 1; j < meta_.size();
         ++j) {
      const SlotMeta& pm = meta_[j];
      if (pm.state == SlotState::kWaiting && !pm.forced_plain &&
          !(cfg_.tdm_enabled && pm.domain != m.domain)) {
        partner_idx = static_cast<int>(j);
        break;
      }
    }
  }

  ObfuscationTag tag;
  if (lob_ != nullptr && !m.forced_plain) {
    tag = lob_->plan(now, flit, m.attempt, m.escalate, partner_idx >= 0);
  }

  if (tag.method == ObfMethod::kReorder) {
    // Scheduling-only method: hold this flit so later flits go first,
    // breaking transmission-order-keyed triggers. No link traversal yet.
    m.eligible = now + kReorderHold;
    ++stats_.reorder_holds;
    return false;
  }

  std::uint64_t word = flit.wire;
  if (tag.method == ObfMethod::kScramble) {
    HTNOC_EXPECT(partner_idx >= 0);
    SlotMeta& pm = meta_[static_cast<std::size_t>(partner_idx)];
    const Flit& pf = payload_[static_cast<std::size_t>(partner_idx)].flit;
    tag.partner_packet = pm.packet;
    tag.partner_seq = pm.seq;
    // The partner must cross the link un-obfuscated so the receiver can
    // undo the XOR (paper Fig. 7: flit #4 is sent plain after (2+4)).
    pm.forced_plain = true;
    word = obf::scramble(word, pf.wire, tag.granularity);
  } else if (tag.method != ObfMethod::kNone) {
    word = obf::apply(word, tag);
  }

  planned_slot_ = chosen;
  planned_word_ = word;
  planned_tag_ = tag;
  return true;
}

void OutputUnit::commit_lt(Cycle now, Codeword72 cw) {
  HTNOC_EXPECT(planned_slot_ >= 0);
  SlotMeta& m = meta_[static_cast<std::size_t>(planned_slot_)];
  SlotPayload& p = payload_[static_cast<std::size_t>(planned_slot_)];
  planned_slot_ = -1;
  const ObfuscationTag tag = planned_tag_;

  LinkPhit phit;
  phit.flit = p.flit;
  phit.codeword = cw;
  phit.obf = tag;
  phit.attempt = m.attempt;
  link_->send(now, std::move(phit));

  if (m.attempt > 0 && tap_.on(trace::Category::kRetransmission)) {
    trace::Event e =
        trace::make_event(trace::EventType::kRetransmission, now, trace_scope_,
                          trace_node_, trace_port_);
    e.packet = m.packet;
    e.seq = static_cast<std::uint32_t>(m.seq);
    e.vc = static_cast<std::uint8_t>(m.vc);
    e.aux = static_cast<std::uint8_t>(m.attempt > 255 ? 255 : m.attempt);
    e.arg = p.flit.wire;
    tap_.emit(e);
  }

  m.state = SlotState::kInFlight;
  p.last_tag = tag;
  // A scramble-partner reservation only covers this transmission; if it gets
  // NACKed, the retransmission is free to obfuscate (the receiver caches the
  // de-obfuscated wire word for the pending unscramble either way).
  m.forced_plain = false;
  ++stats_.transmissions;
  if (m.attempt > 0) ++stats_.retransmissions;
  if (tag.active()) ++stats_.obfuscated_sends;
}

namespace {
/// Clears a staged batch on scope exit, including on a thrown contract
/// violation — mid-batch messages must not be re-consumed next cycle.
template <typename T>
struct ScopedClear {
  std::vector<T>& v;
  ~ScopedClear() { v.clear(); }
};
}  // namespace

void OutputUnit::process_staged_control(Cycle now) {
  if (link_ == nullptr) return;
  ScopedClear<CreditMsg> clear_credits{staged_credits_};
  ScopedClear<AckMsg> clear_acks{staged_acks_};
  for (const CreditMsg& c : staged_credits_) {
    auto& cr = credits_[static_cast<std::size_t>(c.vc)];
#ifdef HTNOC_MUTATION_EXTRA_CREDIT
    // Mutation self-test: double-count a slice of the credit returns. The
    // local contract below goes with it — once the counter drifts high a
    // legitimate return would trip it first, and the exercise is proving
    // the auditor's fabric-wide census catches what a deleted local
    // assertion no longer can (verify: kCreditConservation).
    ++cr;
    if ((c.vc & 1) != 0) ++cr;
#else
    HTNOC_INVARIANT(cr < cfg_.buffer_depth);
    ++cr;
#endif
    last_credit_gain_[static_cast<std::size_t>(c.vc)] = now;
  }
  for (const AckMsg& a : staged_acks_) {
    const int idx = find_slot(a.packet, a.seq, SlotState::kInFlight);
    // Unmatched responses are possible only after a purge removed the slot
    // while its ACK/NACK was in flight; drop them.
    if (idx < 0) continue;
    SlotMeta& m = meta_[static_cast<std::size_t>(idx)];
    HTNOC_INVARIANT(m.attempt == a.attempt);
    if (a.ok) {
      if (lob_ != nullptr) {
        lob_->on_ack(now, payload_[static_cast<std::size_t>(idx)].flit,
                     payload_[static_cast<std::size_t>(idx)].last_tag);
      }
      ++stats_.acks;
      stats_.last_successful_lt = now;
      erase_slot(static_cast<std::size_t>(idx));
    } else {
      if (lob_ != nullptr) {
        lob_->on_nack(now, payload_[static_cast<std::size_t>(idx)].flit,
                      payload_[static_cast<std::size_t>(idx)].last_tag);
      }
      ++stats_.nacks;
      m.state = SlotState::kWaiting;
      m.eligible = now + 1;
      ++m.attempt;
      m.escalate = m.escalate || a.escalate_obfuscation;
    }
  }
}

}  // namespace htnoc
