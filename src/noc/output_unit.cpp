#include "noc/output_unit.hpp"

#include <algorithm>

#include "noc/protocol.hpp"

namespace htnoc {

int OutputUnit::purge_packet(PacketId p,
                             const std::vector<std::uint64_t>& buffered_uids,
                             std::vector<std::uint64_t>* removed_uids) {
  int purged = 0;
#ifdef HTNOC_MUTATION_PURGE_SLOT_LEAK
  // Mutation self-test: leave the first matching slot behind — no erase, no
  // credit restore, no accounting. Credit conservation stays balanced (the
  // slot still "owns" its consumed credit); the stale slot is the leak
  // (verify: kPurgeLeak).
  bool leaked_one = false;
#endif
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->flit.packet != p) {
      ++it;
      continue;
    }
#ifdef HTNOC_MUTATION_PURGE_SLOT_LEAK
    if (!leaked_one) {
      leaked_one = true;
      ++it;
      continue;
    }
#endif
    if (removed_uids != nullptr) {
      removed_uids->push_back(it->flit.flit_uid());
    }
    // A waiting slot's flit exists only here; an in-flight one is either on
    // the link / NACK-pending (credit restored directly) or buffered at the
    // receiver (credit returns via the reverse channel during its purge).
    const bool credit_via_receiver =
        it->state == Slot::State::kInFlight &&
        std::binary_search(buffered_uids.begin(), buffered_uids.end(),
                           it->flit.flit_uid());
    if (!credit_via_receiver) {
      auto& c = credits_[static_cast<std::size_t>(it->flit.vc)];
      HTNOC_INVARIANT(c < cfg_.buffer_depth);
      ++c;
    }
    it = slots_.erase(it);
    ++purged;
  }
  return purged;
}

int OutputUnit::find_slot(PacketId packet, int seq, Slot::State state) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.flit.packet == packet && s.flit.seq == seq && s.state == state) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void OutputUnit::step_lt(Cycle now) {
  if (link_ == nullptr || !link_->can_send(now)) return;

  // Oldest eligible waiting slot wins; retransmissions are naturally the
  // oldest entries, giving them the priority the protocol needs.
  int chosen = -1;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.state != Slot::State::kWaiting || s.eligible > now) continue;
    if (cfg_.tdm_enabled && !tdm_slot_allows(s.flit.domain, now)) continue;
    chosen = static_cast<int>(i);
    break;
  }
  if (chosen < 0) return;
  Slot& s = slots_[static_cast<std::size_t>(chosen)];

  // A scramble partner must be another waiting slot behind this one.
  int partner_idx = -1;
  if (!s.forced_plain) {
    for (std::size_t j = static_cast<std::size_t>(chosen) + 1; j < slots_.size();
         ++j) {
      const Slot& p = slots_[j];
      if (p.state == Slot::State::kWaiting && !p.forced_plain &&
          !(cfg_.tdm_enabled && p.flit.domain != s.flit.domain)) {
        partner_idx = static_cast<int>(j);
        break;
      }
    }
  }

  ObfuscationTag tag;
  if (lob_ != nullptr && !s.forced_plain) {
    tag = lob_->plan(now, s.flit, s.attempt, s.escalate, partner_idx >= 0);
  }

  if (tag.method == ObfMethod::kReorder) {
    // Scheduling-only method: hold this flit so later flits go first,
    // breaking transmission-order-keyed triggers. No link traversal yet.
    s.eligible = now + kReorderHold;
    ++stats_.reorder_holds;
    return;
  }

  std::uint64_t word = s.flit.wire;
  if (tag.method == ObfMethod::kScramble) {
    HTNOC_EXPECT(partner_idx >= 0);
    Slot& p = slots_[static_cast<std::size_t>(partner_idx)];
    tag.partner_packet = p.flit.packet;
    tag.partner_seq = p.flit.seq;
    // The partner must cross the link un-obfuscated so the receiver can
    // undo the XOR (paper Fig. 7: flit #4 is sent plain after (2+4)).
    p.forced_plain = true;
    word = obf::scramble(word, p.flit.wire, tag.granularity);
  } else if (tag.method != ObfMethod::kNone) {
    word = obf::apply(word, tag);
  }

  LinkPhit phit;
  phit.flit = s.flit;
  phit.codeword = codec_.encode(word);
  phit.obf = tag;
  phit.attempt = s.attempt;
  link_->send(now, std::move(phit));

  if (s.attempt > 0 && tap_.on(trace::Category::kRetransmission)) {
    trace::Event e =
        trace::make_event(trace::EventType::kRetransmission, now, trace_scope_,
                          trace_node_, trace_port_);
    e.packet = s.flit.packet;
    e.seq = static_cast<std::uint32_t>(s.flit.seq);
    e.vc = static_cast<std::uint8_t>(s.flit.vc);
    e.aux = static_cast<std::uint8_t>(s.attempt > 255 ? 255 : s.attempt);
    e.arg = s.flit.wire;
    tap_.emit(e);
  }

  s.state = Slot::State::kInFlight;
  s.last_tag = tag;
  // A scramble-partner reservation only covers this transmission; if it gets
  // NACKed, the retransmission is free to obfuscate (the receiver caches the
  // de-obfuscated wire word for the pending unscramble either way).
  s.forced_plain = false;
  ++stats_.transmissions;
  if (s.attempt > 0) ++stats_.retransmissions;
  if (tag.active()) ++stats_.obfuscated_sends;
}

namespace {
/// Clears a staged batch on scope exit, including on a thrown contract
/// violation — mid-batch messages must not be re-consumed next cycle.
template <typename T>
struct ScopedClear {
  std::vector<T>& v;
  ~ScopedClear() { v.clear(); }
};
}  // namespace

void OutputUnit::process_staged_control(Cycle now) {
  if (link_ == nullptr) return;
  ScopedClear<CreditMsg> clear_credits{staged_credits_};
  ScopedClear<AckMsg> clear_acks{staged_acks_};
  for (const CreditMsg& c : staged_credits_) {
    auto& cr = credits_[static_cast<std::size_t>(c.vc)];
#ifdef HTNOC_MUTATION_EXTRA_CREDIT
    // Mutation self-test: double-count a slice of the credit returns. The
    // local contract below goes with it — once the counter drifts high a
    // legitimate return would trip it first, and the exercise is proving
    // the auditor's fabric-wide census catches what a deleted local
    // assertion no longer can (verify: kCreditConservation).
    ++cr;
    if ((c.vc & 1) != 0) ++cr;
#else
    HTNOC_INVARIANT(cr < cfg_.buffer_depth);
    ++cr;
#endif
    last_credit_gain_[static_cast<std::size_t>(c.vc)] = now;
  }
  for (const AckMsg& a : staged_acks_) {
    const int idx = find_slot(a.packet, a.seq, Slot::State::kInFlight);
    // Unmatched responses are possible only after a purge removed the slot
    // while its ACK/NACK was in flight; drop them.
    if (idx < 0) continue;
    Slot& s = slots_[static_cast<std::size_t>(idx)];
    HTNOC_INVARIANT(s.attempt == a.attempt);
    if (a.ok) {
      if (lob_ != nullptr) lob_->on_ack(now, s.flit, s.last_tag);
      ++stats_.acks;
      stats_.last_successful_lt = now;
      slots_.erase(slots_.begin() + idx);
    } else {
      if (lob_ != nullptr) lob_->on_nack(now, s.flit, s.last_tag);
      ++stats_.nacks;
      s.state = Slot::State::kWaiting;
      s.eligible = now + 1;
      ++s.attempt;
      s.escalate = s.escalate || a.escalate_obfuscation;
    }
  }
}

}  // namespace htnoc
