// Output port of a router (or network interface): downstream-VC credit and
// allocation state, the retransmission buffer (paper Fig. 5, output-buffer
// variant), the L-Ob obfuscation attachment point, ECC encoding and link
// transmission (ST -> LT boundary).
//
// The retransmission buffer is stored struct-of-arrays (docs/PERFORMANCE.md):
// the per-cycle scans — slot selection, TDM quota counting, the blocked()
// saturation probe, ACK matching — read a compact SlotMeta lane, while the
// full Flit and obfuscation tag live in a parallel payload lane touched only
// when a slot actually transmits or retires.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/expect.hpp"
#include "ecc/codec.hpp"
#include "noc/hooks.hpp"
#include "noc/link.hpp"
#include "noc/obfuscation.hpp"

namespace htnoc::verify {
struct StateCodec;  // snapshot/restore (src/verify/snapshot.cpp)
}

namespace htnoc {

class OutputUnit {
 public:
  struct Stats {
    std::uint64_t flits_accepted = 0;
    std::uint64_t transmissions = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t acks = 0;
    std::uint64_t nacks = 0;
    std::uint64_t obfuscated_sends = 0;
    std::uint64_t reorder_holds = 0;  ///< kReorder scheduling deferrals.
    Cycle last_successful_lt = 0;  ///< Cycle of the most recent ACK.
  };

  /// Cycles a kReorder-tagged flit is held so later flits overtake it.
  static constexpr Cycle kReorderHold = 3;

  OutputUnit(const NocConfig& cfg, std::string name)
      : cfg_(cfg),
        codec_(cfg.ecc_scheme),
        name_(std::move(name)),
        vc_allocated_(static_cast<std::size_t>(cfg.vcs_per_port), false),
        credits_(static_cast<std::size_t>(cfg.vcs_per_port), cfg.buffer_depth),
        last_credit_gain_(static_cast<std::size_t>(cfg.vcs_per_port), 0) {}

  void connect(Link* link) {
    HTNOC_EXPECT(link != nullptr);
    link_ = link;
  }
  void set_lob(LObController* lob) { lob_ = lob; }

  /// Install the trace tap with this unit's track identity (router port or
  /// NI core).
  void set_trace(trace::Tap tap, trace::Scope scope, std::uint16_t node,
                 std::int8_t port) {
    tap_ = tap;
    trace_scope_ = scope;
    trace_node_ = node;
    trace_port_ = port;
  }

  // --- downstream VC allocation (VA stage bookkeeping) ---

  [[nodiscard]] bool vc_free(int vc) const {
    return !vc_allocated_[static_cast<std::size_t>(vc)];
  }
  void allocate_vc(int vc) {
    HTNOC_EXPECT(vc_free(vc));
    vc_allocated_[static_cast<std::size_t>(vc)] = true;
  }
  void release_vc(int vc) {
    HTNOC_EXPECT(!vc_free(vc));
    vc_allocated_[static_cast<std::size_t>(vc)] = false;
  }

  [[nodiscard]] int credits(int vc) const {
    return credits_[static_cast<std::size_t>(vc)];
  }

  // --- retransmission buffer (ST writes, LT reads) ---

  [[nodiscard]] bool has_free_slot() const {
    return static_cast<int>(meta_.size()) < total_capacity();
  }

  /// Whether a flit heading to `vc` in `domain` may enter the
  /// retransmission buffer this cycle.
  ///
  /// kOutputBuffer: one shared pool; under TDM each domain owns half of it
  /// so a wedged domain cannot starve the other (SurfNoC-style
  /// non-interference, Fig. 12a).
  /// kPerVcBuffer: dedicated slots per VC — a wedged flit confines its
  /// damage to its own VC (the paper's alternative Fig. 5 placement).
  [[nodiscard]] bool can_accept(int vc, TdmDomain domain) const {
    if (cfg_.retrans_scheme == RetransmissionScheme::kPerVcBuffer) {
      int used = 0;
      for (const SlotMeta& m : meta_) {
        if (m.vc == vc) ++used;
      }
      return used < cfg_.retrans_per_vc_depth;
    }
    if (!cfg_.tdm_enabled) return has_free_slot();
    int used = 0;
    for (const SlotMeta& m : meta_) {
      if (m.domain == domain) ++used;
    }
    // Odd depths give the spare slot to D1.
    const int quota =
        (cfg_.retrans_depth + (domain == TdmDomain::kD1 ? 1 : 0)) / 2;
    return has_free_slot() && used < quota;
  }

  [[nodiscard]] int total_capacity() const {
    return cfg_.retrans_scheme == RetransmissionScheme::kPerVcBuffer
               ? cfg_.retrans_per_vc_depth * cfg_.vcs_per_port
               : cfg_.retrans_depth;
  }
  [[nodiscard]] int occupancy() const { return static_cast<int>(meta_.size()); }
  [[nodiscard]] int capacity() const { return total_capacity(); }

  /// Accept a flit from the crossbar (ST). Consumes one downstream credit
  /// for the flit's VC; tail flits release the output VC allocation.
  void accept(Cycle now, Flit flit, Cycle lt_eligible) {
    HTNOC_EXPECT(can_accept(flit.vc, flit.domain));
    auto& c = credits_[static_cast<std::size_t>(flit.vc)];
    HTNOC_EXPECT(c > 0);
    --c;
    if (flit.is_tail()) release_vc(flit.vc);
    // The header's VC field names the downstream VC the flit was allocated
    // to this hop (what a real router transmits, and what a VC-keyed DPI
    // trojan actually sees on the wires).
    if (flit.is_head()) {
      flit.wire = deposit_bits(flit.wire, wire::kVcPos, wire::kVcWidth, flit.vc);
    }
    SlotMeta m;
    m.packet = flit.packet;
    m.seq = flit.seq;
    m.vc = flit.vc;
    m.domain = flit.domain;
    m.state = SlotState::kWaiting;
    m.eligible = lt_eligible;
    m.entered = now;
    meta_.push_back(m);
    payload_.push_back({std::move(flit), ObfuscationTag{}});
    ++stats_.flits_accepted;
  }

  /// LT stage, plan half: pick this cycle's slot, run the obfuscation
  /// planner and produce the pre-ECC wire word. Returns true when a
  /// transmission is planned; the caller MUST then encode planned_word()
  /// and call commit_lt with the codeword (the router batches the encodes
  /// of all its ports into one SECDED lane pass). Planning performs no link
  /// sends and emits no trace events, so planning all ports before
  /// committing any is order-equivalent to the old per-port step_lt loop.
  [[nodiscard]] bool plan_lt(Cycle now);
  [[nodiscard]] std::uint64_t planned_word() const noexcept {
    return planned_word_;
  }
  /// LT stage, commit half: transmit the planned slot with its encoded
  /// codeword (trace events, link send, state flip).
  void commit_lt(Cycle now, Codeword72 cw);

  /// LT stage: try to start one link traversal this cycle. Standalone
  /// (non-batched) form: plan, self-encode, commit.
  void step_lt(Cycle now) {
    if (plan_lt(now)) commit_lt(now, codec_.encode(planned_word_));
  }

  /// Drain phase of the two-phase step: pop this cycle's due credits and
  /// ACK/NACKs off the reverse channel into unit-local staging (pure pops;
  /// see Network::step).
  void drain_control(Cycle now) {
    if (link_ == nullptr) return;
    link_->drain_credits(now, staged_credits_);
    link_->drain_acks(now, staged_acks_);
  }

  /// Compute phase: apply the staged credit returns and ACK/NACKs.
  void process_staged_control(Cycle now);

  /// Drain + apply the reverse control channel: ACKs/NACKs and credit
  /// returns. Serial convenience wrapper for standalone unit use.
  void process_control(Cycle now) {
    drain_control(now);
    process_staged_control(now);
  }

  /// Remove every slot of packet `p` (link-disable recovery). Credits are
  /// restored directly except for flits known to be buffered at the
  /// receiver (`buffered_uids`, which MUST be sorted ascending) — those
  /// return their credit through the normal reverse channel when the
  /// receiver purges them. Returns the number of slots removed; when
  /// `removed_uids` is non-null the purged flit uids are appended (the
  /// network-level purge accounting).
  int purge_packet(PacketId p, const std::vector<std::uint64_t>& buffered_uids,
                   std::vector<std::uint64_t>* removed_uids = nullptr);

  /// Release the VC only if currently allocated (purge recovery path).
  void release_vc_if_allocated(int vc) {
    if (!vc_free(vc)) release_vc(vc);
  }

  [[nodiscard]] bool has_packet(PacketId p) const {
    for (const SlotMeta& m : meta_) {
      if (m.packet == p) return true;
    }
    return false;
  }

  /// Slots currently holding flits bound for downstream VC `vc`.
  [[nodiscard]] int slots_with_vc(int vc) const {
    int n = 0;
    for (const SlotMeta& m : meta_) {
      if (m.vc == vc) ++n;
    }
    return n;
  }

  /// Flit uids of in-flight (sent, unacknowledged) slots on VC `vc` —
  /// used by the credit-conservation checker to find flits that are
  /// simultaneously here and buffered at the receiver (ACK in flight).
  [[nodiscard]] std::vector<std::uint64_t> inflight_uids(int vc) const {
    std::vector<std::uint64_t> uids;
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      if (meta_[i].state == SlotState::kInFlight && meta_[i].vc == vc) {
        uids.push_back(payload_[i].flit.flit_uid());
      }
    }
    return uids;
  }

  /// Audit census: append every retransmission-slot flit, labelled with
  /// the caller-supplied identity.
  void collect_resident(std::vector<ResidentFlit>& out, std::uint16_t node,
                        std::int8_t port) const {
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      out.push_back({payload_[i].flit.flit_uid(), meta_[i].packet,
                     FlitSite::kRetransSlot, node, port});
    }
  }

  /// Distinct packets with at least one slot here (purge planning).
  [[nodiscard]] std::vector<PacketId> packets_in_slots() const {
    std::vector<PacketId> ids;
    for (const SlotMeta& m : meta_) {
      bool found = false;
      for (const PacketId id : ids) {
        if (id == m.packet) {
          found = true;
          break;
        }
      }
      if (!found) ids.push_back(m.packet);
    }
    return ids;
  }

  /// The paper's "port blocked" (tree-saturation) condition: either a flit
  /// has sat un-ACKed in the retransmission buffer for `stall_window`
  /// cycles (the trojan's NACK loop), or a VC has been credit-starved that
  /// long (back-pressure from a jam further downstream).
  [[nodiscard]] bool blocked(Cycle now, Cycle stall_window = 32) const {
#ifdef HTNOC_MUTATION_BLIND_SATURATION
    // Mutation self-test: the saturation detector goes blind. Routers can
    // now starve indefinitely without anything firing (verify:
    // kSilentStarvation).
    (void)now;
    (void)stall_window;
    return false;
#else
    if (link_ == nullptr) return false;
    for (const SlotMeta& m : meta_) {
      if (now >= m.entered + stall_window) return true;
    }
    for (int vc = 0; vc < cfg_.vcs_per_port; ++vc) {
      // Per VC: gains on a healthy VC must not mask a starved sibling (a
      // TDM domain jammed by the trojan while the other flows freely).
      if (credits_[static_cast<std::size_t>(vc)] == 0 &&
          now >= last_credit_gain_[static_cast<std::size_t>(vc)] +
                     stall_window) {
        return true;
      }
    }
    return false;
#endif
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Link* link() const noexcept { return link_; }

 private:
  friend struct htnoc::verify::StateCodec;

  enum class SlotState : std::uint8_t { kWaiting, kInFlight };

  /// Scan-hot half of a retransmission slot; mirrors the identity fields of
  /// the payload flit (packet/seq/vc/domain) so selection, quota and ACK
  /// matching never touch the payload lane.
  struct SlotMeta {
    PacketId packet = kInvalidPacket;
    int seq = 0;
    Cycle eligible = 0;
    Cycle entered = 0;  ///< Cycle the flit was accepted (staleness tracking).
    int attempt = 0;
    SlotState state = SlotState::kWaiting;
    VcId vc = 0;
    TdmDomain domain = TdmDomain::kD1;
    bool escalate = false;        ///< Accumulated NACK advice.
    bool forced_plain = false;    ///< Reserved as a scramble partner; send plain.
  };
  struct SlotPayload {
    Flit flit;
    ObfuscationTag last_tag;
  };

  [[nodiscard]] int find_slot(PacketId packet, int seq, SlotState state);
  void erase_slot(std::size_t i) {
    meta_.erase(meta_.begin() + static_cast<std::ptrdiff_t>(i));
    payload_.erase(payload_.begin() + static_cast<std::ptrdiff_t>(i));
  }

  const NocConfig& cfg_;
  ecc::CodecDispatch codec_;  ///< Scheme resolved once; no per-phit vcall.
  std::string name_;
  Link* link_ = nullptr;
  LObController* lob_ = nullptr;
  trace::Tap tap_;
  trace::Scope trace_scope_ = trace::Scope::kRouter;
  std::uint16_t trace_node_ = 0;
  std::int8_t trace_port_ = -1;
  std::vector<bool> vc_allocated_;
  std::vector<int> credits_;
  std::vector<Cycle> last_credit_gain_;  // per VC, indexed like credits_
  std::vector<CreditMsg> staged_credits_;  ///< Drained, not yet applied.
  std::vector<AckMsg> staged_acks_;        ///< Drained, not yet applied.
  // FIFO by entry (retransmissions are oldest first); parallel lanes.
  std::vector<SlotMeta> meta_;
  std::vector<SlotPayload> payload_;
  // Plan/commit hand-off (transient within one compute() call; never
  // serialized — a snapshot can only happen between cycles).
  int planned_slot_ = -1;
  std::uint64_t planned_word_ = 0;
  ObfuscationTag planned_tag_;
  Stats stats_;
};

}  // namespace htnoc
