// West-First adaptive routing (Glass & Ni turn model).
//
// The paper's motivation section observes that deterministic x-y routing
// out-performs adaptive algorithms under flood-style DoS until very high
// injection rates; this implementation provides the adaptive comparator for
// that claim (exercised in bench_ablation). Rule: all westward hops are
// taken first (while any are needed, no other direction may be chosen);
// afterwards the packet routes adaptively among the minimal productive
// directions {E, N, S}, picking the least congested. Prohibiting the two
// turns into the west direction breaks every cycle in the channel
// dependency graph, so the algorithm is deadlock-free without extra VCs.
#pragma once

#include <functional>

#include "common/geometry.hpp"
#include "noc/routing.hpp"

namespace htnoc {

class WestFirstRouting final : public RoutingFunction {
 public:
  /// Congestion score for an output port of a router; higher = worse.
  /// When absent, ties resolve deterministically (E before N before S).
  using CongestionProbe = std::function<int(RouterId, int out_port)>;

  explicit WestFirstRouting(const MeshGeometry& geom,
                            CongestionProbe probe = {})
      : geom_(geom), probe_(std::move(probe)) {}

  [[nodiscard]] RouteDecision route(RouterId here, const Flit& f) const override {
    if (f.dest_router == here) {
      return {kPortLocalBase + geom_.local_slot_of_core(f.dest_core), false};
    }
    const MeshCoord c = geom_.coord_of(here);
    const MeshCoord d = geom_.coord_of(f.dest_router);

    // West-first: finish all westward movement before anything else.
    if (d.x < c.x) return {kPortWest, false};

    int best_port = -1;
    int best_score = 0;
    const auto consider = [&](int port) {
      const int score =
          probe_ ? probe_(here, port) : 0;  // 0 keeps deterministic order
      if (best_port < 0 || score < best_score) {
        best_port = port;
        best_score = score;
      }
    };
    if (d.x > c.x) consider(kPortEast);
    if (d.y < c.y) consider(kPortNorth);
    if (d.y > c.y) consider(kPortSouth);
    HTNOC_ENSURE(best_port >= 0);
    return {best_port, false};
  }

  [[nodiscard]] std::string name() const override { return "west_first"; }

 private:
  MeshGeometry geom_;
  CongestionProbe probe_;
};

}  // namespace htnoc
