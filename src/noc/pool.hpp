// Data-oriented storage substrate for the per-cycle hot path
// (docs/PERFORMANCE.md): a contiguous ring replacing the per-unit
// std::deque queues, and a generation-checked struct-of-arrays arena that
// owns every VC-buffered flit of an input port.
//
// Design constraints (why these containers look the way they do):
//  * Snapshot compatibility — verify::StateCodec's io_seq walks containers
//    through size()/clear()/resize()/range-for, so Ring provides exactly
//    that surface and serializes with the same byte layout as the deques it
//    replaced.
//  * Census/golden compatibility — iteration is strictly FIFO order, so
//    collect_resident() and the per-cycle FNV-1a digests see the identical
//    logical sequence the deque-based code produced.
//  * Deterministic growth — arenas and rings regrow by doubling at exact,
//    state-dependent points; no allocator decision depends on addresses or
//    time, so serial and sharded runs (and snapshot-restored runs) allocate
//    identically. Arenas must regrow rather than assert: mutation self-tests
//    (e.g. HTNOC_MUTATION_EXTRA_CREDIT) deliberately break the credit bounds
//    that normally cap occupancy, and the auditor — not an allocator crash —
//    is what must catch them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"
#include "noc/flit.hpp"

namespace htnoc::pool {

/// Contiguous power-of-two circular buffer with the deque surface the hot
/// path uses: FIFO push_back/pop_front plus (cold) ordered mid-erase for the
/// purge paths. Steady-state traffic allocates nothing — the backing store
/// grows by doubling and is then reused forever; a pop is one index bump
/// instead of a deque chunk bookkeeping step.
template <typename T>
class Ring {
 public:
  Ring() = default;

  [[nodiscard]] bool empty() const noexcept { return len_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return len_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  [[nodiscard]] T& front() {
    HTNOC_EXPECT(len_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    HTNOC_EXPECT(len_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] T& back() { return (*this)[len_ - 1]; }
  [[nodiscard]] const T& back() const { return (*this)[len_ - 1]; }

  [[nodiscard]] T& operator[](std::size_t i) {
    HTNOC_EXPECT(i < len_);
    return buf_[(head_ + i) & (buf_.size() - 1)];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    HTNOC_EXPECT(i < len_);
    return buf_[(head_ + i) & (buf_.size() - 1)];
  }

  void push_back(T v) {
    if (len_ == buf_.size()) grow(len_ + 1);
    buf_[(head_ + len_) & (buf_.size() - 1)] = std::move(v);
    ++len_;
  }
  [[nodiscard]] T& emplace_back() {
    push_back(T{});
    return back();
  }

  void pop_front() {
    HTNOC_EXPECT(len_ > 0);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --len_;
  }

  /// Ordered erase of logical index `i` (purge paths; cold). Shifts the
  /// shorter side so FIFO order is preserved.
  void erase_at(std::size_t i) {
    HTNOC_EXPECT(i < len_);
    if (i == 0) {
      pop_front();
      return;
    }
    for (std::size_t j = i; j + 1 < len_; ++j) {
      (*this)[j] = std::move((*this)[j + 1]);
    }
    --len_;
  }

  void clear() noexcept {
    head_ = 0;
    len_ = 0;
  }

  /// Snapshot-load surface (io_seq): value-initialized elements in FIFO
  /// order. Only ever called on a cleared ring.
  void resize(std::size_t n) {
    if (n > buf_.size()) grow(n);
    head_ = 0;
    len_ = n;
    for (std::size_t i = 0; i < n; ++i) buf_[i] = T{};
  }

  template <bool Const>
  class Iter {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using Parent = std::conditional_t<Const, const Ring, Ring>;
    using reference = std::conditional_t<Const, const T&, T&>;
    using pointer = std::conditional_t<Const, const T*, T*>;

    Iter() = default;
    Iter(Parent* r, std::size_t i) : r_(r), i_(i) {}
    reference operator*() const { return (*r_)[i_]; }
    pointer operator->() const { return &(*r_)[i_]; }
    Iter& operator++() {
      ++i_;
      return *this;
    }
    Iter operator++(int) {
      Iter t = *this;
      ++i_;
      return t;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.i_ == b.i_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.i_ != b.i_;
    }

   private:
    Parent* r_ = nullptr;
    std::size_t i_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;
  [[nodiscard]] iterator begin() { return {this, 0}; }
  [[nodiscard]] iterator end() { return {this, len_}; }
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, len_}; }

 private:
  void grow(std::size_t min_cap) {
    std::size_t cap = buf_.empty() ? 4 : buf_.size() * 2;
    while (cap < min_cap) cap *= 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < len_; ++i) next[i] = std::move((*this)[i]);
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;  // capacity is 0 or a power of two
  std::size_t head_ = 0;
  std::size_t len_ = 0;
};

/// Handle into a FlitArena: 24-bit slot index + 8-bit generation. A handle
/// outliving its flit (e.g. held across a purge) goes stale — the slot's
/// generation advanced on release — and every dereference checks for that,
/// so handle-reuse ABA against retransmission/purge races is a contract
/// violation instead of silent corruption.
struct FlitHandle {
  static constexpr std::uint32_t kNullBits = 0xFFFFFFFFu;
  static constexpr std::uint32_t kIndexBits = 24;
  static constexpr std::uint32_t kIndexMask = (1u << kIndexBits) - 1;

  std::uint32_t bits = kNullBits;

  [[nodiscard]] bool null() const noexcept { return bits == kNullBits; }
  [[nodiscard]] std::uint32_t index() const noexcept {
    return bits & kIndexMask;
  }
  [[nodiscard]] std::uint32_t generation() const noexcept {
    return bits >> kIndexBits;
  }
  [[nodiscard]] static FlitHandle make(std::uint32_t index,
                                       std::uint8_t gen) noexcept {
    return {(static_cast<std::uint32_t>(gen) << kIndexBits) |
            (index & kIndexMask)};
  }
  friend bool operator==(FlitHandle a, FlitHandle b) noexcept {
    return a.bits == b.bits;
  }
  friend bool operator!=(FlitHandle a, FlitHandle b) noexcept {
    return a.bits != b.bits;
  }
};

/// Struct-of-arrays arena owning every VC-buffered flit of one input port.
/// Lanes are parallel vectors indexed by handle slot: the fat Flit payload
/// sits apart from the cycle-hot arrival/next-link lanes, so walking a
/// packet stream touches small contiguous metadata until the flit body is
/// actually needed.
///
/// Per-VC occupancy is credit-bounded (buffer_depth per VC), so the arena's
/// steady-state footprint is vcs_per_port * buffer_depth slots; it regrows
/// deterministically (doubling) when a mutation self-test overdrives the
/// bound. The free list is LIFO and every mutation is an explicit data
/// operation, so allocation order is a pure function of simulation state.
class FlitArena {
 public:
  [[nodiscard]] FlitHandle alloc(const Flit& f, Cycle arrival) {
    if (free_.empty()) grow();
    const std::uint32_t i = free_.back();
    free_.pop_back();
    flit_[i] = f;
    arrival_[i] = arrival;
    next_[i] = FlitHandle{};
    live_[i] = 1;
    ++live_count_;
    return FlitHandle::make(i, gen_[i]);
  }

  /// Release a slot; its generation advances so stale handles are caught.
  void release(FlitHandle h) {
    const std::uint32_t i = checked(h);
    live_[i] = 0;
    ++gen_[i];  // wraps mod 256 by design
    --live_count_;
    free_.push_back(i);
  }

  [[nodiscard]] bool valid(FlitHandle h) const noexcept {
    return !h.null() && h.index() < flit_.size() && live_[h.index()] != 0 &&
           gen_[h.index()] == static_cast<std::uint8_t>(h.generation());
  }

  [[nodiscard]] Flit& flit(FlitHandle h) { return flit_[checked(h)]; }
  [[nodiscard]] const Flit& flit(FlitHandle h) const {
    return flit_[checked(h)];
  }
  [[nodiscard]] Cycle arrival(FlitHandle h) const {
    return arrival_[checked(h)];
  }
  [[nodiscard]] FlitHandle next(FlitHandle h) const {
    return next_[checked(h)];
  }
  void set_next(FlitHandle h, FlitHandle n) { next_[checked(h)] = n; }

  [[nodiscard]] std::size_t live() const noexcept { return live_count_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return flit_.size(); }

  /// Drop everything (snapshot restore rebuilds streams from scratch).
  /// Generations restart too: restored handles are freshly allocated in
  /// stream order, so no pre-reset handle may survive a reset.
  void reset() {
    flit_.clear();
    arrival_.clear();
    next_.clear();
    gen_.clear();
    live_.clear();
    free_.clear();
    live_count_ = 0;
  }

 private:
  [[nodiscard]] std::uint32_t checked(FlitHandle h) const {
    HTNOC_EXPECT(valid(h));
    return h.index();
  }

  void grow() {
    const std::size_t old = flit_.size();
    const std::size_t cap = old == 0 ? 16 : old * 2;
    HTNOC_EXPECT(cap <= (std::size_t{1} << FlitHandle::kIndexBits));
    flit_.resize(cap);
    arrival_.resize(cap, 0);
    next_.resize(cap);
    gen_.resize(cap, 0);
    live_.resize(cap, 0);
    // Reverse push so allocation pops slots in ascending index order.
    free_.reserve(cap);
    for (std::size_t i = cap; i > old; --i) {
      free_.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }

  std::vector<Flit> flit_;           // fat payload lane
  std::vector<Cycle> arrival_;       // hot: effective arrival (BW stage gate)
  std::vector<FlitHandle> next_;     // hot: intrusive seq-ordered list link
  std::vector<std::uint8_t> gen_;    // slot generation (ABA guard)
  std::vector<std::uint8_t> live_;   // slot liveness (double-free guard)
  std::vector<std::uint32_t> free_;  // LIFO free list
  std::size_t live_count_ = 0;
};

}  // namespace htnoc::pool
